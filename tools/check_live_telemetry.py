#!/usr/bin/env python3
"""Integration check for the live telemetry plane (DESIGN.md section 14).

Drives an audited `dasc_cli simulate ... --serve-metrics=0` run and, while
it is still running, scrapes the exposition endpoint the way a monitoring
agent would:

  * /metrics (Prometheus text): parsed for the sim_batch_allocator_ms
    histogram and the sim_batch_allocator_ms_window summary, whose p95
    estimates must agree within the documented bound
        sketch_p95 in [hist_p95 / growth * (1 - alpha),
                       hist_p95 * (1 + alpha)]
    (hist_p95 is a bucket upper bound with growth-factor spacing; the
    sketch is alpha-relative around the true value — both defaults, 2.0
    and 0.01, are pinned here and in DESIGN.md);
  * /window and /snapshot: well-formed JSON with the expected blocks;
  * `dasc_report live <port> --iterations=1 --no-ansi`: the terminal
    dashboard renders one frame from the same server and exits 0.

Stdlib only (subprocess + urllib); exits nonzero with a reason on any
violation.
"""

import argparse
import json
import re
import subprocess
import sys
import tempfile
import urllib.error
import urllib.request

HISTOGRAM = "sim_batch_allocator_ms"
SKETCH = HISTOGRAM + "_window"
HIST_GROWTH = 2.0  # HistogramOptions default bucket growth factor
SKETCH_ALPHA = 0.01  # QuantileSketchOptions default relative error


def fail(message):
    print(f"check_live_telemetry: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def fetch(port, path, timeout=5.0):
    url = f"http://127.0.0.1:{port}{path}"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def parse_histogram_p95(metrics_text):
    """Cumulative-le p95 upper bound, mirroring util::HistogramQuantile."""
    buckets = []  # (le, cumulative_count), +Inf last
    count = None
    pattern = re.compile(
        rf'^{HISTOGRAM}_bucket{{le="([^"]+)"}} (\d+)$', re.MULTILINE
    )
    for le, cumulative in pattern.findall(metrics_text):
        buckets.append((le, int(cumulative)))
    match = re.search(rf"^{HISTOGRAM}_count (\d+)$", metrics_text, re.MULTILINE)
    if match:
        count = int(match.group(1))
    if not buckets or count is None:
        return None, 0
    if buckets[-1][0] != "+Inf":
        fail(f"{HISTOGRAM} buckets do not end at +Inf")
    if buckets[-1][1] != count:
        fail(f"{HISTOGRAM} +Inf bucket {buckets[-1][1]} != _count {count}")
    if count == 0:
        return None, 0
    target = 0.95 * count
    largest_finite = float(buckets[-2][0]) if len(buckets) > 1 else 0.0
    for le, cumulative in buckets:
        if cumulative >= target:
            return (largest_finite if le == "+Inf" else float(le)), count
    return largest_finite, count


def parse_sketch_p95(metrics_text):
    match = re.search(
        rf'^{SKETCH}{{quantile="0\.95"}} ([0-9.eE+-]+)$',
        metrics_text,
        re.MULTILINE,
    )
    return float(match.group(1)) if match else None


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--cli", required=True, help="path to dasc_cli")
    parser.add_argument("--report", required=True, help="path to dasc_report")
    parser.add_argument("--workers", type=int, default=300)
    parser.add_argument("--tasks", type=int, default=400)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        workload = f"{tmp}/live_telemetry.dasc"
        generate = subprocess.run(
            [
                args.cli,
                "generate",
                "synthetic",
                workload,
                f"--workers={args.workers}",
                f"--tasks={args.tasks}",
                "--skills=10",
                "--dep-max=6",
            ],
            capture_output=True,
            text=True,
        )
        if generate.returncode != 0:
            fail(f"generate failed: {generate.stderr}")

        # A big enough audited gg run that the scrapes below land mid-run.
        simulate = subprocess.Popen(
            [
                args.cli,
                "simulate",
                workload,
                "gg",
                "--audit",
                "--serve-metrics=0",
            ],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            port = None
            for line in simulate.stdout:
                match = re.match(
                    r"serving telemetry on 127\.0\.0\.1:(\d+)", line
                )
                if match:
                    port = int(match.group(1))
                    break
            if port is None:
                fail("simulate never announced the telemetry port")

            # One dashboard frame from the same live server.
            live = subprocess.run(
                [
                    args.report,
                    "live",
                    str(port),
                    "--iterations=1",
                    "--no-ansi",
                ],
                capture_output=True,
                text=True,
            )
            if live.returncode != 0:
                fail(f"dasc_report live exited {live.returncode}: {live.stderr}")
            if "dasc live telemetry" not in live.stdout:
                fail("dasc_report live rendered no frame header")

            # Scrape until the run finishes, keeping the freshest payloads.
            metrics_text = window_text = snapshot_text = None
            scrapes = 0
            while True:
                try:
                    fetched = (
                        fetch(port, "/metrics"),
                        fetch(port, "/window"),
                        fetch(port, "/snapshot"),
                    )
                except (urllib.error.URLError, ConnectionError, OSError):
                    break  # server stopped: run is over
                metrics_text, window_text, snapshot_text = fetched
                scrapes += 1
                if simulate.poll() is not None:
                    break
            if scrapes == 0:
                fail("no successful scrape before the server stopped")
        finally:
            simulate.stdout.close()
            returncode = simulate.wait(timeout=600)
        if returncode != 0:
            fail(f"simulate exited {returncode}")

    if "# TYPE" not in metrics_text:
        fail("/metrics carries no TYPE lines")
    window = json.loads(window_text)
    sketch_names = [s.get("name") for s in window.get("sketches", [])]
    if SKETCH not in sketch_names:
        fail(f"/window lacks {SKETCH} (saw {sketch_names})")
    snapshot = json.loads(snapshot_text)
    for block in ("counters", "gauges", "histograms", "sketches"):
        if block not in snapshot:
            fail(f"/snapshot lacks the {block} block")

    # The acceptance bound: both estimators over the same samples, read
    # from one atomically-consistent /metrics payload.
    hist_p95, count = parse_histogram_p95(metrics_text)
    sketch_p95 = parse_sketch_p95(metrics_text)
    if hist_p95 is None or count == 0:
        fail(f"scraped no timed batches in {HISTOGRAM}")
    if sketch_p95 is None:
        fail(f"/metrics lacks the {SKETCH} p95 sample")
    lower = hist_p95 / HIST_GROWTH * (1.0 - SKETCH_ALPHA)
    upper = hist_p95 * (1.0 + SKETCH_ALPHA)
    if not lower <= sketch_p95 <= upper:
        fail(
            f"p95 disagreement: sketch {sketch_p95:.6g} outside "
            f"[{lower:.6g}, {upper:.6g}] from histogram p95 {hist_p95:.6g} "
            f"({count} samples)"
        )

    print(
        f"check_live_telemetry: OK ({scrapes} mid-run scrapes; "
        f"sketch p95 {sketch_p95:.4g} vs histogram p95 {hist_p95:.4g} "
        f"over {count} batches)"
    )


if __name__ == "__main__":
    main()
