// dasc_report — offline analysis of dasc-run-report JSONL files.
//
//   dasc_report summarize <report.jsonl> [--csv]
//   dasc_report explain <report.jsonl> [--batch-rows=N]
//   dasc_report trace <report.jsonl> [--top=N] [--reason=all|head|tail|flagged]
//            [--max-residual=0.10]
//   dasc_report diff <baseline.jsonl> <candidate.jsonl>
//            [--score-tol=0.02] [--gap-tol=0.05] [--latency-tol=F]
//            [--min-gap=F] [--gate]
//   dasc_report trajectory <report.jsonl> <trajectory.json> [--label=STR]
//   dasc_report live <port> [--interval-ms=500] [--iterations=0] [--no-ansi]
//            [--once]
//   dasc_report load summarize <load.jsonl>
//   dasc_report load diff <baseline.jsonl> <candidate.jsonl>
//            [--latency-tol=0.10] [--rate-tol=0.02] [--gate]
//   dasc_report load gate <load.jsonl> [--require-reconcile]
//            [--min-rate-ratio=F]
//
// summarize prints one table row per algorithm in the report: score, batch
// shape, allocator latency distribution, and (for audited runs) the
// optimality-gap block the allocation auditor measured.
//
// explain reads a /3 report's lifecycle-ledger block and answers "why did
// the unserved tasks go unserved": a top-failure-reasons table, a per-batch
// starvation table (which final reasons the open-but-unserved tasks of each
// batch range ended with), and the dependency-chain-depth distribution of
// expired vs served tasks. Every aggregate is recomputed from the per-task
// lines and cross-checked against the report's own ledger summary — a
// disagreement (writer bug or hand-edited report) exits 1. A legacy /1 or /2
// report cannot carry a ledger, so explain degrades gracefully there: it
// says so and exits 0. A /3 report without a ledger block (run without
// --ledger) exits 1 — that run could have recorded one.
//
// diff compares every algorithm of the baseline report against the candidate
// and classifies each metric movement:
//   * score — relative drop beyond --score-tol is a regression (gains pass);
//   * approx_ratio / min_batch_gap — drop beyond --gap-tol is a regression,
//     compared only when both runs were audited;
//   * audit_violations — any nonzero candidate count is a regression
//     regardless of tolerances (a constraint violation is never noise);
//   * --min-gap — absolute floor on the candidate's approx_ratio (audited
//     runs only), e.g. 0.5 to hold DASC_Game to the paper's bound;
//   * allocator_ms / p95_batch_ms — compared only when --latency-tol is
//     given, because wall times are machine-dependent and a checked-in
//     baseline would otherwise gate on the build machine's mood.
// With --gate the exit code becomes the CI signal: 0 clean, 1 on any
// regression. Without it diff always exits 0 (informational).
//
// trace reads a /5 report's causal-trace block and prints the critical-path
// breakdown of the retained (head/tail/flagged-sampled) traces: where each
// slow task's end-to-end latency actually went, decomposed into queue
// residency before first batch admission, cross-batch dependency wait
// (gaps between the batches the task stayed open across), and the per-phase
// self-time of every batch the task rode through (matching, best_response,
// candidate_build, problem_build, commit, ... plus batch_other for
// unattributed batch time). The walk telescopes from submit to decision, so
// the attributed components sum to the e2e latency; the residual per trace
// is reported and gated (--max-residual, default 10%). Every trace is also
// cross-checked against the lifecycle ledger when the report carries one
// (trace id, served/unserved agreement, assignment batch) — a disagreement
// exits 1.
//
// trajectory appends one typed entry per algorithm to a JSON array file —
// the longitudinal quality record BENCH_trajectory.json, written via a
// parse-modify-rewrite so the file stays a valid JSON document (unlike a
// JSONL log, it can be consumed directly by plotting notebooks).
//
// live polls the /snapshot endpoint of a process started with
// --serve-metrics and redraws a one-screen table (windowed latency
// quantiles, progress counters, queue gauges, watchdog anomaly totals)
// every --interval-ms. With --iterations=0 it watches until the server goes
// away (a finished run exits 0); --no-ansi appends frames for logs/tests;
// --once renders exactly one plain-text frame and exits (shorthand for
// --iterations=1 --no-ansi — the scriptable "what is it doing right now").
//
// load operates on dasc-load-report/1 artifacts from dasc_loadgen:
// summarize prints the run's rate/latency/SLO story as tables; diff
// compares two runs (rate ratio, CO-corrected latency quantiles, SLO
// breaches — with --gate regressions exit 1); gate is the CI teeth — exits
// 1 iff the report records a breached SLO (and, with --require-reconcile,
// if the two latency estimators disagreed; with --min-rate-ratio, if the
// generator failed to keep up with the offered rate).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/load_report.h"
#include "sim/run_report_reader.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/http_server.h"
#include "util/json.h"

namespace {

using namespace dasc;
using sim::RunReport;
using sim::RunStats;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  dasc_report summarize <report.jsonl> [--csv]\n"
      "  dasc_report explain <report.jsonl> [--batch-rows=]\n"
      "  dasc_report trace <report.jsonl> [--top= --reason= "
      "--max-residual=]\n"
      "  dasc_report diff <baseline.jsonl> <candidate.jsonl> [--score-tol= "
      "--gap-tol= --latency-tol= --min-gap= --gate]\n"
      "  dasc_report trajectory <report.jsonl> <trajectory.json> "
      "[--label=]\n"
      "  dasc_report live <port> [--interval-ms=500] [--iterations=0] "
      "[--no-ansi] [--once]\n"
      "  dasc_report load summarize <load.jsonl>\n"
      "  dasc_report load diff <baseline.jsonl> <candidate.jsonl> "
      "[--latency-tol= --rate-tol= --gate]\n"
      "  dasc_report load gate <load.jsonl> [--require-reconcile "
      "--min-rate-ratio=]\n");
  return 2;
}

bool ParseSubcommand(util::FlagParser& parser, int argc, char** argv,
                     size_t num_positional) {
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
  const util::Status status = parser.Parse(args);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return false;
  }
  return parser.positional().size() == num_positional;
}

util::Result<RunReport> LoadOrComplain(const std::string& path) {
  util::Result<RunReport> report = sim::ReadRunReportFile(path);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
  }
  return report;
}

std::string Num(double value, int precision = 2) {
  return util::TablePrinter::Num(value, precision);
}

int Summarize(int argc, char** argv) {
  util::FlagParser parser;
  bool csv = false;
  parser.AddBool("csv", &csv, "emit CSV instead of an aligned table");
  if (!ParseSubcommand(parser, argc, argv, 1)) return Usage();
  util::Result<RunReport> report = LoadOrComplain(parser.positional()[0]);
  if (!report.ok()) return 1;

  std::printf("report: kind=%s instance=%s schema=dasc-run-report/%d\n",
              report->header.kind.c_str(), report->header.instance.c_str(),
              report->schema_version);
  util::TablePrinter table;
  table.AddRow({"algorithm", "score", "batches", "nonempty", "empty",
                "completed", "wasted", "alloc_ms", "p95_ms", "latency",
                "audited", "approx", "min_gap", "violations"});
  for (const RunStats& s : report->stats) {
    const bool audited = s.audited_batches > 0;
    table.AddRow({s.algorithm, std::to_string(s.score),
                  std::to_string(s.batches), std::to_string(s.nonempty_batches),
                  std::to_string(s.empty_batches),
                  std::to_string(s.completed_tasks),
                  std::to_string(s.wasted_dispatches), Num(s.millis),
                  Num(s.p95_batch_ms, 3), Num(s.mean_assignment_latency),
                  std::to_string(s.audited_batches),
                  audited ? Num(s.approx_ratio, 3) : "-",
                  audited ? Num(s.min_batch_gap, 3) : "-",
                  std::to_string(s.audit_violations)});
  }
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  return 0;
}

// Explains one algorithm's ledger block; returns false when the aggregates
// recomputed from the per-task lines disagree with the report's own summary.
bool ExplainStats(const RunStats& s, int batch_rows) {
  std::printf("\n=== %s: %d of %d tasks unserved ===\n", s.algorithm.c_str(),
              s.total_tasks - s.completed_tasks, s.total_tasks);

  // Recompute the per-reason totals from the per-task lines and cross-check
  // them against the "ledger" summary the writer emitted.
  std::vector<int64_t> counts(sim::kNumUnservedReasons, 0);
  for (const sim::TaskLedgerEntry& e : s.ledger) {
    ++counts[static_cast<size_t>(e.reason)];
  }
  bool consistent = true;
  auto complain = [&](const std::string& message) {
    std::fprintf(stderr, "explain: %s: %s\n", s.algorithm.c_str(),
                 message.c_str());
    consistent = false;
  };
  if (static_cast<int>(s.ledger.size()) != s.total_tasks) {
    complain("report has " + std::to_string(s.ledger.size()) +
             " task lines but stats declare total_tasks=" +
             std::to_string(s.total_tasks));
  }
  if (counts[0] != s.completed_tasks) {
    complain("task lines show " + std::to_string(counts[0]) +
             " served tasks but stats declare completed_tasks=" +
             std::to_string(s.completed_tasks));
  }
  for (size_t r = 0; r < counts.size(); ++r) {
    const int64_t declared = r < s.unserved_by_reason.size()
                                 ? s.unserved_by_reason[r]
                                 : 0;
    if (counts[r] != declared) {
      complain(std::string("reason ") +
               sim::UnservedReasonName(static_cast<sim::UnservedReason>(r)) +
               ": task lines sum to " + std::to_string(counts[r]) +
               " but the ledger summary says " + std::to_string(declared));
    }
  }

  // Top failure reasons, largest first.
  std::vector<size_t> order;
  for (size_t r = 1; r < counts.size(); ++r) {
    if (counts[r] > 0) order.push_back(r);
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return counts[a] > counts[b]; });
  const int64_t unserved = s.total_tasks - s.completed_tasks;
  util::TablePrinter reasons;
  reasons.AddRow({"reason", "tasks", "share"});
  for (size_t r : order) {
    const double share =
        unserved > 0 ? 100.0 * static_cast<double>(counts[r]) /
                           static_cast<double>(unserved)
                     : 0.0;
    reasons.AddRow(
        {sim::UnservedReasonName(static_cast<sim::UnservedReason>(r)),
         std::to_string(counts[r]), Num(share, 1) + "%"});
  }
  if (order.empty()) {
    std::printf("every task was served; nothing to explain\n");
  } else {
    reasons.Print(std::cout);
    // Sample tasks per failure reason with their causal-trace ids: the
    // trace id on the report's task line is a pure function of the task id
    // (sim/task_trace.h), so these ids resolve against the same report's
    // "trace" lines and against /debug/flight dumps from the same run.
    std::printf("sample unserved tasks (trace ids join the /5 trace block):\n");
    util::TablePrinter samples;
    samples.AddRow({"task", "reason", "trace_id"});
    for (size_t r : order) {
      int shown = 0;
      for (const sim::TaskLedgerEntry& e : s.ledger) {
        if (static_cast<size_t>(e.reason) != r) continue;
        samples.AddRow(
            {std::to_string(e.task),
             sim::UnservedReasonName(static_cast<sim::UnservedReason>(r)),
             util::FormatTraceId(sim::TaskTraceId(e.task))});
        if (++shown >= 3) break;
      }
    }
    samples.Print(std::cout);
  }

  // Per-batch starvation: for each batch range, how many tasks that were
  // open there ended unserved, split by their final reason. This is where
  // dependency-induced starvation shows up as a dependency_unmet band that
  // persists across batches.
  int last_batch = 0;
  for (const sim::TaskLedgerEntry& e : s.ledger) {
    last_batch = std::max(last_batch, e.last_open_batch);
  }
  if (!order.empty() && last_batch >= 0) {
    const int num_batches = last_batch + 1;
    const int want_rows = std::max(1, std::min(batch_rows, num_batches));
    const int width = (num_batches + want_rows - 1) / want_rows;
    const int rows = (num_batches + width - 1) / width;
    // starved[row][reason]
    std::vector<std::vector<int64_t>> starved(
        static_cast<size_t>(rows),
        std::vector<int64_t>(sim::kNumUnservedReasons, 0));
    std::vector<int64_t> open_total(static_cast<size_t>(rows), 0);
    for (const sim::TaskLedgerEntry& e : s.ledger) {
      if (e.first_open_batch < 0) continue;
      for (int row = 0; row < rows; ++row) {
        const int lo = row * width;
        const int hi = std::min(num_batches, lo + width) - 1;
        if (e.last_open_batch < lo || e.first_open_batch > hi) continue;
        ++open_total[static_cast<size_t>(row)];
        if (e.reason != sim::UnservedReason::kServed) {
          ++starved[static_cast<size_t>(row)]
                   [static_cast<size_t>(e.reason)];
        }
      }
    }
    std::printf("starvation by batch (open-but-eventually-unserved tasks):\n");
    util::TablePrinter batches;
    std::vector<std::string> head = {"batches", "open"};
    for (size_t r : order) {
      head.push_back(
          sim::UnservedReasonName(static_cast<sim::UnservedReason>(r)));
    }
    batches.AddRow(head);
    for (int row = 0; row < rows; ++row) {
      const int lo = row * width;
      const int hi = std::min(num_batches, lo + width) - 1;
      std::vector<std::string> cells = {
          lo == hi ? std::to_string(lo)
                   : std::to_string(lo) + "-" + std::to_string(hi),
          std::to_string(open_total[static_cast<size_t>(row)])};
      for (size_t r : order) {
        cells.push_back(
            std::to_string(starved[static_cast<size_t>(row)][r]));
      }
      batches.AddRow(cells);
    }
    batches.Print(std::cout);
  }

  // Dependency-chain depth of expired tasks vs served ones: dependency-heavy
  // instances starve deep tasks first.
  int max_depth = 0;
  for (const sim::TaskLedgerEntry& e : s.ledger) {
    max_depth = std::max(max_depth, e.dep_depth);
  }
  if (!order.empty() && max_depth > 0) {
    std::printf("dependency-chain depth of unserved vs served tasks:\n");
    std::vector<int64_t> unserved_by_depth(static_cast<size_t>(max_depth) + 1,
                                           0);
    std::vector<int64_t> served_by_depth(static_cast<size_t>(max_depth) + 1,
                                         0);
    for (const sim::TaskLedgerEntry& e : s.ledger) {
      if (e.reason == sim::UnservedReason::kServed) {
        ++served_by_depth[static_cast<size_t>(e.dep_depth)];
      } else {
        ++unserved_by_depth[static_cast<size_t>(e.dep_depth)];
      }
    }
    util::TablePrinter depth;
    depth.AddRow({"dep_depth", "unserved", "served", "unserved_share"});
    for (int d = 0; d <= max_depth; ++d) {
      const int64_t u = unserved_by_depth[static_cast<size_t>(d)];
      const int64_t v = served_by_depth[static_cast<size_t>(d)];
      if (u == 0 && v == 0) continue;
      const double share =
          100.0 * static_cast<double>(u) / static_cast<double>(u + v);
      depth.AddRow({std::to_string(d), std::to_string(u), std::to_string(v),
                    Num(share, 1) + "%"});
    }
    depth.Print(std::cout);
  }
  return consistent;
}

int Explain(int argc, char** argv) {
  util::FlagParser parser;
  int64_t batch_rows = 12;
  parser.AddInt("batch-rows", &batch_rows,
                "max rows in the per-batch starvation table (batches are "
                "grouped into equal-width ranges)");
  if (!ParseSubcommand(parser, argc, argv, 1)) return Usage();
  util::Result<RunReport> report = LoadOrComplain(parser.positional()[0]);
  if (!report.ok()) return 1;

  bool any_ledger = false;
  bool consistent = true;
  for (const RunStats& s : report->stats) {
    if (s.ledger.empty()) continue;
    any_ledger = true;
    if (!ExplainStats(s, static_cast<int>(batch_rows))) consistent = false;
  }
  if (!any_ledger) {
    // Legacy schemas predate the lifecycle ledger entirely: nothing to
    // explain is the expected outcome, not an error.
    if (report->schema_version < 3) {
      std::printf(
          "%s: schema dasc-run-report/%d predates the lifecycle ledger; "
          "nothing to explain. Re-run the experiment with --ledger (schema "
          "dasc-run-report/3) for per-task attribution.\n",
          parser.positional()[0].c_str(), report->schema_version);
      return 0;
    }
    std::fprintf(stderr,
                 "%s: no lifecycle-ledger block (re-run the experiment with "
                 "--ledger and schema dasc-run-report/3)\n",
                 parser.positional()[0].c_str());
    return 1;
  }
  return consistent ? 0 : 1;
}

// Critical-path attribution of one retained trace: the telescoping walk
// from submit to decision over the batch records the task rode through.
struct TraceAttribution {
  const sim::TaskTraceRecord* trace = nullptr;
  double e2e_ms = 0.0;
  double pre_admission_ms = 0.0;    // submit -> begin of first covered batch
  double cross_batch_wait_ms = 0.0; // gaps between covered batches
  std::map<std::string, double> phase_ms;  // per-phase self time + batch_other
  double attributed_ms = 0.0;
  double residual_ms = 0.0;  // e2e - attributed (clipped waits, lost records)
  int covered_batches = 0;
  int missing_batches = 0;  // in range but evicted from the batch ring
};

TraceAttribution AttributeTrace(
    const sim::TaskTraceRecord& t,
    const std::map<int64_t, const sim::TraceBatchRecord*>& by_seq) {
  TraceAttribution a;
  a.trace = &t;
  a.e2e_ms = t.e2e_ms();
  const int64_t first =
      t.first_admit_batch >= 0 ? t.first_admit_batch : t.decide_batch;
  double cursor = t.submit_wall_s;
  bool first_hop = true;
  for (int64_t seq = first; seq >= 0 && seq < t.decide_batch; ++seq) {
    const auto it = by_seq.find(seq);
    if (it == by_seq.end()) {
      ++a.missing_batches;
      continue;
    }
    const sim::TraceBatchRecord& b = *it->second;
    const double wait_ms = (b.begin_wall_s - cursor) * 1e3;
    if (wait_ms > 0.0) {
      (first_hop ? a.pre_admission_ms : a.cross_batch_wait_ms) += wait_ms;
    }
    first_hop = false;
    // The in-batch budget is the batch's wall extent; phase self-times are
    // scaled down to it when they exceed it (replay-mode reports stamp
    // batches with model time, where a batch is instantaneous and the
    // critical path is pure waiting). In service reports the named phases
    // fit inside the extent and the remainder is batch_other.
    const double extent_ms = (b.end_wall_s - b.begin_wall_s) * 1e3;
    double named_ms = 0.0;
    for (const sim::TraceBatchPhase& p : b.phases) named_ms += p.ms;
    if (extent_ms > 0.0) {
      const double scale = named_ms > extent_ms ? extent_ms / named_ms : 1.0;
      for (const sim::TraceBatchPhase& p : b.phases) {
        a.phase_ms[p.label] += p.ms * scale;
      }
      if (named_ms < extent_ms) {
        a.phase_ms["batch_other"] += extent_ms - named_ms;
      }
    }
    ++a.covered_batches;
    cursor = std::max(cursor, b.end_wall_s);
  }
  const double final_wait_ms = (t.decide_wall_s - cursor) * 1e3;
  if (final_wait_ms > 0.0) {
    (first_hop ? a.pre_admission_ms : a.cross_batch_wait_ms) += final_wait_ms;
  }
  a.attributed_ms = a.pre_admission_ms + a.cross_batch_wait_ms;
  for (const auto& [label, ms] : a.phase_ms) {
    (void)label;
    a.attributed_ms += ms;
  }
  a.residual_ms = a.e2e_ms - a.attributed_ms;
  return a;
}

int TraceCmd(int argc, char** argv) {
  util::FlagParser parser;
  int64_t top = 10;
  std::string reason = "all";
  double max_residual = 0.10;
  parser.AddInt("top", &top, "rows in the per-trace table (sorted by e2e)");
  parser.AddString("reason", &reason,
                   "analyze only traces retained for this reason "
                   "(all|head|tail|flagged)");
  parser.AddDouble("max-residual", &max_residual,
                   "max tolerated unattributed share of a trace's e2e "
                   "latency before the exit code turns 1");
  if (!ParseSubcommand(parser, argc, argv, 1)) return Usage();
  util::Result<RunReport> report = LoadOrComplain(parser.positional()[0]);
  if (!report.ok()) return 1;

  if (!report->traces.present) {
    if (report->schema_version < 5) {
      std::printf(
          "%s: schema dasc-run-report/%d predates causal traces; nothing to "
          "attribute. Re-run with a TaskTracer attached (dasc_cli simulate "
          "--metrics-out / dasc_loadgen --trace-out) for /5 trace blocks.\n",
          parser.positional()[0].c_str(), report->schema_version);
      return 0;
    }
    std::fprintf(stderr,
                 "%s: no trace block (the run had no TaskTracer attached)\n",
                 parser.positional()[0].c_str());
    return 1;
  }

  const sim::TaskTracerStats& sum = report->traces.summary;
  std::printf(
      "traces: %lld started, %lld decided, %lld retained "
      "(%lld head, %lld tail, %lld flagged); %lld batches seen, "
      "%lld flagged, %lld dropped from the ring; %zu batch records\n",
      static_cast<long long>(sum.traces_started),
      static_cast<long long>(sum.traces_decided),
      static_cast<long long>(sum.traces_retained),
      static_cast<long long>(sum.head_retained),
      static_cast<long long>(sum.tail_retained),
      static_cast<long long>(sum.flagged_retained),
      static_cast<long long>(sum.batches),
      static_cast<long long>(sum.flagged_batches),
      static_cast<long long>(sum.dropped_batches),
      report->traces.batches.size());

  std::map<int64_t, const sim::TraceBatchRecord*> by_seq;
  for (const sim::TraceBatchRecord& b : report->traces.batches) {
    by_seq[b.seq] = &b;
  }

  // Ledger cross-check: every analyzed trace must agree with the lifecycle
  // ledger (when the report carries one) on identity and outcome.
  std::map<int64_t, const sim::TaskLedgerEntry*> ledger_by_task;
  for (const RunStats& s : report->stats) {
    for (const sim::TaskLedgerEntry& e : s.ledger) {
      ledger_by_task[e.task] = &e;
    }
  }

  int mismatches = 0;
  auto complain = [&](const sim::TaskTraceRecord& t,
                      const std::string& message) {
    std::fprintf(stderr, "trace %s (task %lld): %s\n",
                 util::FormatTraceId(t.trace_id).c_str(),
                 static_cast<long long>(t.task), message.c_str());
    ++mismatches;
  };

  std::vector<TraceAttribution> analyzed;
  for (const sim::TaskTraceRecord& t : report->traces.traces) {
    if (reason != "all" && t.retained_reason != reason) continue;
    if (t.trace_id != sim::TaskTraceId(t.task)) {
      complain(t, "trace_id is not TaskTraceId(task) — corrupt report");
    }
    const auto it = ledger_by_task.find(t.task);
    if (it != ledger_by_task.end()) {
      const sim::TaskLedgerEntry& e = *it->second;
      const bool ledger_served = e.reason == sim::UnservedReason::kServed;
      if (t.served != ledger_served) {
        complain(t, std::string("trace says ") +
                        (t.served ? "served" : "unserved") +
                        " but the ledger says " +
                        sim::UnservedReasonName(e.reason));
      }
      if (t.served && e.assigned_batch >= 0 &&
          e.assigned_batch != t.decide_batch &&
          e.assigned_batch != t.camp_batch) {
        complain(t, "ledger assigned_batch " +
                        std::to_string(e.assigned_batch) +
                        " matches neither decide_batch " +
                        std::to_string(t.decide_batch) + " nor camp_batch " +
                        std::to_string(t.camp_batch));
      }
    }
    analyzed.push_back(AttributeTrace(t, by_seq));
  }
  if (analyzed.empty()) {
    std::printf("no retained traces match --reason=%s\n", reason.c_str());
    return mismatches > 0 ? 1 : 0;
  }
  std::sort(analyzed.begin(), analyzed.end(),
            [](const TraceAttribution& a, const TraceAttribution& b) {
              return a.e2e_ms > b.e2e_ms;
            });

  int residual_breaches = 0;
  util::TablePrinter table;
  table.AddRow({"trace_id", "task", "why", "e2e_ms", "pre_admit", "xbatch",
                "in_batch", "batches", "lost", "residual"});
  int rows = 0;
  for (const TraceAttribution& a : analyzed) {
    double in_batch = 0.0;
    for (const auto& [label, ms] : a.phase_ms) {
      (void)label;
      in_batch += ms;
    }
    const double residual_share =
        a.e2e_ms > 0.0 ? std::abs(a.residual_ms) / a.e2e_ms : 0.0;
    if (residual_share > max_residual) ++residual_breaches;
    if (rows++ < top) {
      table.AddRow({util::FormatTraceId(a.trace->trace_id),
                    std::to_string(a.trace->task),
                    a.trace->retained_reason, Num(a.e2e_ms, 3),
                    Num(a.pre_admission_ms, 3), Num(a.cross_batch_wait_ms, 3),
                    Num(in_batch, 3), std::to_string(a.covered_batches),
                    std::to_string(a.missing_batches),
                    Num(100.0 * residual_share, 1) + "%"});
    }
  }
  table.Print(std::cout);

  // Aggregate critical path across all analyzed traces: where did the tail
  // latency go, phase by phase.
  double total_e2e = 0.0, total_pre = 0.0, total_xbatch = 0.0,
         total_residual = 0.0;
  std::map<std::string, double> agg_phase;
  for (const TraceAttribution& a : analyzed) {
    total_e2e += a.e2e_ms;
    total_pre += a.pre_admission_ms;
    total_xbatch += a.cross_batch_wait_ms;
    total_residual += std::abs(a.residual_ms);
    for (const auto& [label, ms] : a.phase_ms) agg_phase[label] += ms;
  }
  std::printf("aggregate critical path (%zu traces, %.3f ms total e2e):\n",
              analyzed.size(), total_e2e);
  util::TablePrinter agg;
  agg.AddRow({"component", "ms", "share"});
  auto agg_row = [&](const std::string& name, double ms) {
    if (ms <= 0.0) return;
    const double share = total_e2e > 0.0 ? 100.0 * ms / total_e2e : 0.0;
    agg.AddRow({name, Num(ms, 3), Num(share, 1) + "%"});
  };
  agg_row("pre_admission_wait", total_pre);
  agg_row("cross_batch_wait", total_xbatch);
  for (const auto& [label, ms] : agg_phase) agg_row("phase:" + label, ms);
  agg_row("residual", total_residual);
  agg.Print(std::cout);

  if (mismatches > 0) {
    std::fprintf(stderr, "trace: %d ledger cross-check mismatch(es)\n",
                 mismatches);
    return 1;
  }
  if (residual_breaches > 0) {
    std::fprintf(stderr,
                 "trace: %d trace(s) with more than %.0f%% of e2e latency "
                 "unattributed\n",
                 residual_breaches, max_residual * 100.0);
    return 1;
  }
  return 0;
}

// One metric comparison in `diff`: what moved, by how much, and whether the
// movement breaches its threshold.
struct Finding {
  std::string algorithm;
  std::string metric;
  double baseline = 0.0;
  double candidate = 0.0;
  bool regression = false;
  std::string note;
};

// Relative change of `candidate` vs `baseline` with a sign such that
// positive = worse for a higher-is-better metric when `higher_is_better`.
double RelativeDrop(double baseline, double candidate, bool higher_is_better) {
  if (baseline == 0.0) return 0.0;
  const double delta = (baseline - candidate) / baseline;
  return higher_is_better ? delta : -delta;
}

int Diff(int argc, char** argv) {
  util::FlagParser parser;
  double score_tol = 0.02;
  double gap_tol = 0.05;
  double latency_tol = 0.0;
  double min_gap = 0.0;
  bool gate = false;
  parser.AddDouble("score-tol", &score_tol,
                   "max relative score drop before a regression");
  parser.AddDouble("gap-tol", &gap_tol,
                   "max relative approx-ratio / min-gap drop");
  parser.AddDouble("latency-tol", &latency_tol,
                   "max relative latency increase (0 = don't compare "
                   "wall times; they are machine-dependent)");
  parser.AddDouble("min-gap", &min_gap,
                   "absolute floor on the candidate approx_ratio "
                   "(0 = no floor)");
  parser.AddBool("gate", &gate, "exit nonzero when any regression is found");
  if (!ParseSubcommand(parser, argc, argv, 2)) return Usage();
  util::Result<RunReport> baseline = LoadOrComplain(parser.positional()[0]);
  if (!baseline.ok()) return 1;
  util::Result<RunReport> candidate = LoadOrComplain(parser.positional()[1]);
  if (!candidate.ok()) return 1;

  std::vector<Finding> findings;
  auto compare = [&](const std::string& algorithm, const std::string& metric,
                     double base, double cand, double tol,
                     bool higher_is_better, const std::string& note) {
    Finding f;
    f.algorithm = algorithm;
    f.metric = metric;
    f.baseline = base;
    f.candidate = cand;
    f.regression = RelativeDrop(base, cand, higher_is_better) > tol;
    f.note = note;
    findings.push_back(f);
  };

  int missing = 0;
  for (const RunStats& base : baseline->stats) {
    const RunStats* cand = sim::FindStats(*candidate, base.algorithm);
    if (cand == nullptr) {
      Finding f;
      f.algorithm = base.algorithm;
      f.metric = "presence";
      f.regression = true;
      f.note = "algorithm missing from candidate report";
      findings.push_back(f);
      ++missing;
      continue;
    }
    compare(base.algorithm, "score", base.score, cand->score, score_tol,
            /*higher_is_better=*/true, "");
    const bool both_audited =
        base.audited_batches > 0 && cand->audited_batches > 0;
    if (both_audited) {
      compare(base.algorithm, "approx_ratio", base.approx_ratio,
              cand->approx_ratio, gap_tol, /*higher_is_better=*/true, "");
      compare(base.algorithm, "min_batch_gap", base.min_batch_gap,
              cand->min_batch_gap, gap_tol, /*higher_is_better=*/true, "");
    }
    if (cand->audit_violations > 0) {
      Finding f;
      f.algorithm = base.algorithm;
      f.metric = "audit_violations";
      f.baseline = base.audit_violations;
      f.candidate = cand->audit_violations;
      f.regression = true;
      f.note = "constraint violations are never tolerated";
      findings.push_back(f);
    }
    if (min_gap > 0.0 && cand->audited_batches > 0 &&
        cand->approx_ratio < min_gap) {
      Finding f;
      f.algorithm = base.algorithm;
      f.metric = "approx_ratio_floor";
      f.baseline = min_gap;
      f.candidate = cand->approx_ratio;
      f.regression = true;
      f.note = "below the --min-gap floor";
      findings.push_back(f);
    }
    if (latency_tol > 0.0) {
      compare(base.algorithm, "allocator_ms", base.millis, cand->millis,
              latency_tol, /*higher_is_better=*/false, "");
      compare(base.algorithm, "p95_batch_ms", base.p95_batch_ms,
              cand->p95_batch_ms, latency_tol, /*higher_is_better=*/false, "");
    }
  }

  util::TablePrinter table;
  table.AddRow({"algorithm", "metric", "baseline", "candidate", "verdict"});
  int regressions = 0;
  for (const Finding& f : findings) {
    if (f.regression) ++regressions;
    std::string verdict = f.regression ? "REGRESSION" : "ok";
    if (!f.note.empty()) verdict += " (" + f.note + ")";
    table.AddRow({f.algorithm, f.metric, Num(f.baseline, 3),
                  Num(f.candidate, 3), verdict});
  }
  table.Print(std::cout);
  if (regressions > 0) {
    std::printf("%d regression(s) against %s\n", regressions,
                parser.positional()[0].c_str());
    return gate ? 1 : 0;
  }
  std::printf("no regressions (%zu comparisons, %d missing)\n",
              findings.size(), missing);
  return 0;
}

int Trajectory(int argc, char** argv) {
  util::FlagParser parser;
  std::string label;
  parser.AddString("label", &label,
                   "entry label (e.g. a commit id or bench run name)");
  if (!ParseSubcommand(parser, argc, argv, 2)) return Usage();
  util::Result<RunReport> report = LoadOrComplain(parser.positional()[0]);
  if (!report.ok()) return 1;
  const std::string& trajectory_path = parser.positional()[1];

  // Load the existing trajectory (missing file = empty array); the file is a
  // real JSON array, so append means parse + push + rewrite.
  util::JsonValue trajectory = util::JsonValue::Array();
  {
    std::ifstream in(trajectory_path);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      util::Result<util::JsonValue> parsed = util::ParseJson(buffer.str());
      if (!parsed.ok() || !parsed.value().is_array()) {
        std::fprintf(stderr, "%s: not a JSON array trajectory file%s%s\n",
                     trajectory_path.c_str(), parsed.ok() ? "" : ": ",
                     parsed.ok() ? "" : parsed.status().message().c_str());
        return 1;
      }
      trajectory = std::move(parsed.value());
    }
  }

  for (const RunStats& s : report->stats) {
    util::JsonValue entry = util::JsonValue::Object();
    entry.Set("label", util::JsonValue::String(label));
    entry.Set("kind", util::JsonValue::String(report->header.kind));
    entry.Set("instance", util::JsonValue::String(report->header.instance));
    entry.Set("algorithm", util::JsonValue::String(s.algorithm));
    entry.Set("score", util::JsonValue::Number(s.score));
    entry.Set("completed_tasks", util::JsonValue::Number(s.completed_tasks));
    entry.Set("wasted_dispatches",
              util::JsonValue::Number(s.wasted_dispatches));
    entry.Set("allocator_ms", util::JsonValue::Number(s.millis));
    entry.Set("p95_batch_ms", util::JsonValue::Number(s.p95_batch_ms));
    entry.Set("audited_batches", util::JsonValue::Number(s.audited_batches));
    entry.Set("audit_violations",
              util::JsonValue::Number(s.audit_violations));
    entry.Set("approx_ratio", util::JsonValue::Number(s.approx_ratio));
    entry.Set("min_batch_gap", util::JsonValue::Number(s.min_batch_gap));
    trajectory.Append(std::move(entry));
  }

  std::ofstream out(trajectory_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", trajectory_path.c_str());
    return 1;
  }
  trajectory.Write(out, 0);
  out << "\n";
  std::printf("appended %zu entr%s to %s (%zu total)\n",
              report->stats.size(), report->stats.size() == 1 ? "y" : "ies",
              trajectory_path.c_str(), trajectory.items().size());
  return 0;
}

// One refresh of the live view: scrape /snapshot from a --serve-metrics
// process and render a one-screen table of the windowed latency quantiles,
// progress counters, queue gauges, and anomaly totals.
int RenderLiveFrame(int port, int iteration, bool ansi) {
  util::Result<std::string> body = util::HttpGetLocal(port, "/snapshot");
  if (!body.ok()) {
    std::fprintf(stderr, "scrape 127.0.0.1:%d/snapshot failed: %s\n", port,
                 body.status().message().c_str());
    return 1;
  }
  util::Result<util::JsonValue> parsed = util::ParseJson(*body);
  if (!parsed.ok() || !parsed->is_object()) {
    std::fprintf(stderr, "/snapshot is not a JSON object\n");
    return 1;
  }

  if (ansi) std::printf("\033[H\033[J");  // home + clear to end of screen
  std::printf("dasc live telemetry  127.0.0.1:%d  frame %d\n\n", port,
              iteration);

  const util::JsonValue* sketches = parsed->Find("sketches");
  if (sketches != nullptr && sketches->is_array() &&
      !sketches->items().empty()) {
    util::TablePrinter table;
    table.AddRow({"sketch", "win_n", "p50", "p90", "p95", "p99"});
    for (const util::JsonValue& s : sketches->items()) {
      const util::JsonValue* window = s.Find("window");
      if (window == nullptr) continue;
      std::vector<std::string> row = {s.GetString("name"),
                                      Num(window->GetNumber("count"), 0)};
      const util::JsonValue* quantiles = window->Find("quantiles");
      std::map<int, double> by_pct;
      if (quantiles != nullptr) {
        for (const util::JsonValue& q : quantiles->items()) {
          by_pct[static_cast<int>(q.GetNumber("q") * 100 + 0.5)] =
              q.GetNumber("value");
        }
      }
      for (int pct : {50, 90, 95, 99}) {
        row.push_back(by_pct.count(pct) != 0u ? Num(by_pct[pct], 3) : "-");
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
    std::printf("\n");
  }

  const util::JsonValue* counters = parsed->Find("counters");
  const util::JsonValue* gauges = parsed->Find("gauges");
  util::TablePrinter table;
  table.AddRow({"signal", "value"});
  if (counters != nullptr) {
    for (const char* name :
         {"sim_batches_total", "sim_score_total", "sim_completions_total",
          "service_batches_total", "service_decisions_total",
          "service_tasks_served_total",
          "service_tasks_expired_total", "service_camp_dispatches_total",
          "audit_batches_total", "audit_violations_total"}) {
      const util::JsonValue* v = counters->Find(name);
      if (v != nullptr) table.AddRow({name, Num(v->AsDouble(), 0)});
    }
    int64_t anomalies = 0;
    for (const auto& [name, value] : counters->members()) {
      if (name.rfind("watchdog_anomalies_total", 0) == 0) {
        anomalies += value.AsInt64();
        table.AddRow({name, Num(value.AsDouble(), 0)});
      }
    }
    if (anomalies == 0) table.AddRow({"watchdog_anomalies_total", "0"});
  }
  if (gauges != nullptr) {
    for (const char* name :
         {"sim_queue_depth_workers", "sim_queue_depth_tasks",
          "service_ingest_queue_depth", "service_queue_depth_workers",
          "service_queue_depth_tasks", "threadpool_queue_depth",
          "audit_last_batch_gap"}) {
      const util::JsonValue* v = gauges->Find(name);
      if (v != nullptr) table.AddRow({name, Num(v->AsDouble(), 3)});
    }
  }
  table.Print(std::cout);
  std::fflush(stdout);
  return 0;
}

int Live(int argc, char** argv) {
  util::FlagParser parser;
  int64_t interval_ms = 500;
  int64_t iterations = 0;
  bool no_ansi = false;
  bool once = false;
  parser.AddInt("interval-ms", &interval_ms, "delay between refreshes");
  parser.AddInt("iterations", &iterations,
                "number of frames to render; 0 = until the scrape fails");
  parser.AddBool("no-ansi", &no_ansi,
                 "append frames instead of redrawing in place");
  parser.AddBool("once", &once,
                 "render one plain-text frame and exit "
                 "(= --iterations=1 --no-ansi)");
  if (!ParseSubcommand(parser, argc, argv, 1)) return Usage();
  if (once) {
    iterations = 1;
    no_ansi = true;
  }
  const int port = std::atoi(parser.positional()[0].c_str());
  if (port <= 0) {
    std::fprintf(stderr, "live: '%s' is not a port\n",
                 parser.positional()[0].c_str());
    return 2;
  }
  for (int frame = 1; iterations <= 0 || frame <= iterations; ++frame) {
    const int status = RenderLiveFrame(port, frame, !no_ansi);
    if (status != 0) {
      // An unbounded watch ends when the server goes away — that's the
      // normal exit, not an error.
      return iterations <= 0 && frame > 1 ? 0 : status;
    }
    if (iterations > 0 && frame == iterations) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}

util::Result<sim::LoadReport> LoadReportOrComplain(const std::string& path) {
  util::Result<sim::LoadReport> report = sim::ReadLoadReportFile(path);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
  }
  return report;
}

void PrintLoadReport(const sim::LoadReport& r) {
  std::printf(
      "load run: algorithm=%s process=%s instance=%s seed=%llu build=%s@%s\n",
      r.header.algorithm.c_str(), r.header.process.c_str(),
      r.header.instance.c_str(),
      static_cast<unsigned long long>(r.header.seed),
      r.header.version.c_str(), r.header.git_sha.c_str());
  std::printf(
      "rates: offered=%.0f/min achieved=%.0f/min ratio=%.3f sent=%lld "
      "over %.2fs (time_scale %.2f)\n",
      r.rates.offered_per_min, r.rates.achieved_per_min, r.rates.ratio,
      static_cast<long long>(r.rates.sent), r.rates.duration_s,
      r.rates.time_scale);

  util::TablePrinter latency;
  latency.AddRow({"series", "count", "mean", "p50", "p95", "p99", "p99.9",
                  "max"});
  for (const sim::LatencySeriesSummary& s : r.latency) {
    latency.AddRow({s.series, std::to_string(s.count), Num(s.mean_ms, 3),
                    Num(s.p50_ms, 3), Num(s.p95_ms, 3), Num(s.p99_ms, 3),
                    Num(s.p999_ms, 3), Num(s.max_ms, 3)});
  }
  latency.Print(std::cout);

  std::printf(
      "service: batches=%lld (nonempty %lld) served=%lld expired=%lld "
      "unserved_rate=%.3f allocator=%.3fs\n",
      static_cast<long long>(r.service.batches),
      static_cast<long long>(r.service.nonempty_batches),
      static_cast<long long>(r.service.served),
      static_cast<long long>(r.service.expired), r.service.unserved_rate,
      r.service.allocator_seconds);
  std::printf(
      "reconcile: loadgen p95=%.3fms vs service %s p95=%.3fms (%s; "
      "diff %.2f%% tol %.2f%%)\n",
      r.reconcile.loadgen_p95_ms, r.sketch.scraped ? "scrape" : "in-process",
      r.reconcile.service_p95_ms, r.reconcile.agree ? "agree" : "DISAGREE",
      r.reconcile.rel_diff * 100.0, r.reconcile.tolerance * 100.0);

  util::TablePrinter slos;
  slos.AddRow({"slo", "budget", "long_bad", "short_bad", "long_burn",
               "short_burn", "verdict"});
  for (const sim::LoadSloResult& s : r.slos) {
    slos.AddRow({s.def.name, Num(s.def.budget, 4), Num(s.long_bad, 4),
                 Num(s.short_bad, 4), Num(s.long_burn, 2),
                 Num(s.short_burn, 2), s.breached ? "BREACHED" : "ok"});
  }
  slos.Print(std::cout);

  double max_depth = 0.0;
  for (const sim::QueueDepthSample& q : r.queue_depth) {
    max_depth = std::max(max_depth, q.depth);
  }
  std::printf("queue depth: %zu samples, max %.0f; anomalies: %zu\n",
              r.queue_depth.size(), max_depth, r.anomalies.size());
}

int LoadSummarize(util::FlagParser& parser) {
  util::Result<sim::LoadReport> report =
      LoadReportOrComplain(parser.positional()[0]);
  if (!report.ok()) return 1;
  PrintLoadReport(*report);
  return 0;
}

const sim::LatencySeriesSummary* FindSeries(const sim::LoadReport& r,
                                            const std::string& name) {
  for (const sim::LatencySeriesSummary& s : r.latency) {
    if (s.series == name) return &s;
  }
  return nullptr;
}

int LoadDiff(util::FlagParser& parser, double latency_tol, double rate_tol,
             bool gate) {
  util::Result<sim::LoadReport> base =
      LoadReportOrComplain(parser.positional()[0]);
  if (!base.ok()) return 1;
  util::Result<sim::LoadReport> cand =
      LoadReportOrComplain(parser.positional()[1]);
  if (!cand.ok()) return 1;

  util::TablePrinter table;
  table.AddRow({"metric", "baseline", "candidate", "verdict"});
  int regressions = 0;
  auto row = [&](const std::string& metric, double b, double c,
                 bool regression, const std::string& note = "") {
    if (regression) ++regressions;
    std::string verdict = regression ? "REGRESSION" : "ok";
    if (!note.empty()) verdict += " (" + note + ")";
    table.AddRow({metric, Num(b, 3), Num(c, 3), verdict});
  };

  // Rate-keeping: the candidate must pace the offered load as well as the
  // baseline did, within --rate-tol (absolute, the ratio is already
  // normalized).
  row("rate_ratio", base->rates.ratio, cand->rates.ratio,
      cand->rates.ratio < base->rates.ratio - rate_tol);
  row("unserved_rate", base->service.unserved_rate,
      cand->service.unserved_rate,
      cand->service.unserved_rate >
          base->service.unserved_rate + rate_tol);

  // CO-corrected latency, quantile by quantile, relative tolerance. Wall
  // times are machine-dependent, so this diff only means something between
  // runs on the same machine — the tolerance default is loose accordingly.
  const sim::LatencySeriesSummary* base_lat = FindSeries(*base, "e2e_intended");
  const sim::LatencySeriesSummary* cand_lat = FindSeries(*cand, "e2e_intended");
  if (base_lat != nullptr && cand_lat != nullptr) {
    auto lat_row = [&](const std::string& name, double b, double c) {
      row(name, b, c, b > 0.0 && (c - b) / b > latency_tol);
    };
    lat_row("e2e_p50_ms", base_lat->p50_ms, cand_lat->p50_ms);
    lat_row("e2e_p95_ms", base_lat->p95_ms, cand_lat->p95_ms);
    lat_row("e2e_p99_ms", base_lat->p99_ms, cand_lat->p99_ms);
  }

  // SLO breaches: a newly-breached SLO is a regression regardless of
  // tolerances.
  for (const sim::LoadSloResult& c : cand->slos) {
    bool base_breached = false;
    for (const sim::LoadSloResult& b : base->slos) {
      if (b.def.name == c.def.name) base_breached = b.breached;
    }
    if (c.breached && !base_breached) {
      row("slo:" + c.def.name, 0.0, c.short_burn, true, "newly breached");
    }
  }

  table.Print(std::cout);
  if (regressions > 0) {
    std::printf("%d load regression(s) against %s\n", regressions,
                parser.positional()[0].c_str());
    return gate ? 1 : 0;
  }
  std::printf("no load regressions\n");
  return 0;
}

int LoadGate(util::FlagParser& parser, bool require_reconcile,
             double min_rate_ratio) {
  util::Result<sim::LoadReport> report =
      LoadReportOrComplain(parser.positional()[0]);
  if (!report.ok()) return 1;
  int failures = 0;
  for (const sim::LoadSloResult& s : report->slos) {
    if (s.breached) {
      std::printf(
          "gate: SLO %s breached (long_burn %.2fx, short_burn %.2fx)\n",
          s.def.name.c_str(), s.long_burn, s.short_burn);
      ++failures;
    }
  }
  if (require_reconcile && !report->reconcile.agree) {
    std::printf(
        "gate: estimator reconciliation failed (loadgen p95 %.3fms vs "
        "service %.3fms, diff %.2f%% > tol %.2f%%)\n",
        report->reconcile.loadgen_p95_ms, report->reconcile.service_p95_ms,
        report->reconcile.rel_diff * 100.0,
        report->reconcile.tolerance * 100.0);
    ++failures;
  }
  if (min_rate_ratio > 0.0 && report->rates.ratio < min_rate_ratio) {
    std::printf("gate: achieved/offered rate %.3f below floor %.3f\n",
                report->rates.ratio, min_rate_ratio);
    ++failures;
  }
  if (failures > 0) {
    std::printf("gate: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("gate: clean\n");
  return 0;
}

int Load(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string verb = argv[2];
  util::FlagParser parser;
  double latency_tol = 0.10;
  double rate_tol = 0.02;
  bool gate = false;
  bool require_reconcile = false;
  double min_rate_ratio = 0.0;
  parser.AddDouble("latency-tol", &latency_tol,
                   "diff: max relative CO-corrected latency increase");
  parser.AddDouble("rate-tol", &rate_tol,
                   "diff: max absolute rate-ratio / unserved-rate slip");
  parser.AddBool("gate", &gate, "diff: exit nonzero on any regression");
  parser.AddBool("require-reconcile", &require_reconcile,
                 "gate: also fail when the estimators disagreed");
  parser.AddDouble("min-rate-ratio", &min_rate_ratio,
                   "gate: floor on achieved/offered (0 = no floor)");
  std::vector<std::string> args;
  for (int i = 3; i < argc; ++i) args.emplace_back(argv[i]);
  const util::Status status = parser.Parse(args);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return Usage();
  }
  if (verb == "summarize" && parser.positional().size() == 1) {
    return LoadSummarize(parser);
  }
  if (verb == "diff" && parser.positional().size() == 2) {
    return LoadDiff(parser, latency_tol, rate_tol, gate);
  }
  if (verb == "gate" && parser.positional().size() == 1) {
    return LoadGate(parser, require_reconcile, min_rate_ratio);
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "summarize") return Summarize(argc, argv);
  if (command == "explain") return Explain(argc, argv);
  if (command == "trace") return TraceCmd(argc, argv);
  if (command == "diff") return Diff(argc, argv);
  if (command == "trajectory") return Trajectory(argc, argv);
  if (command == "live") return Live(argc, argv);
  if (command == "load") return Load(argc, argv);
  return Usage();
}
