#!/usr/bin/env bash
# Nightly property-stress driver: the long conformance tier plus sanitizer
# sweeps, with a base seed derived from the date so every night covers a
# fresh seed window while any single night stays exactly reproducible.
#
#   tools/run_stress.sh [YYYY-MM-DD] [--seeds N] [--out DIR]
#                       [--skip-sanitizers]
#
# The date argument (default: today, UTC) determines the base seed:
# base_seed = days-since-epoch * 100000 + 1, so consecutive nights use
# disjoint windows as long as N <= 100000 / num-families. Repro files from
# any failing stage are collected ("uploaded") into the --out directory
# (default stress-artifacts/<date>), which CI publishes as the job artifact;
# the script exits nonzero so the nightly goes red.
#
# Stages:
#   1. release build  — dasc_stress --seeds N over all families and oracles
#   2. UBSan build    — same sweep at N/10 (sanitizer-throttled)
#   3. ASan build     — same sweep at N/10
#   4. release build  — incremental-candidates-equivalence focused sweep at N
#                       on a disjoint seed window (the oracle also runs in
#                       stages 1-3; this stage buys the differential
#                       candidate check its own nightly coverage)
#   5./6. UBSan/ASan  — same focused sweep at N/10
# Sanitizer stages build into build-stress-{ubsan,asan} via DASC_SANITIZE
# and are skipped with --skip-sanitizers (or individually when the
# toolchain lacks the runtime; cmake configuration failure is treated as
# "unavailable", not an error).
set -euo pipefail

root=$(cd "$(dirname "$0")/.." && pwd)
date_arg=""
seeds=1000
out_dir=""
skip_sanitizers=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --seeds) seeds=$2; shift 2 ;;
    --seeds=*) seeds=${1#*=}; shift ;;
    --out) out_dir=$2; shift 2 ;;
    --out=*) out_dir=${1#*=}; shift ;;
    --skip-sanitizers) skip_sanitizers=1; shift ;;
    -*) echo "run_stress: unknown option $1" >&2; exit 2 ;;
    *) date_arg=$1; shift ;;
  esac
done
date_arg=${date_arg:-$(date -u +%F)}
out_dir=${out_dir:-$root/stress-artifacts/$date_arg}

# Fixed seed derivation: days since the Unix epoch for the given date.
days=$(( $(date -u -d "$date_arg" +%s) / 86400 ))
base_seed=$(( days * 100000 + 1 ))
echo "run_stress: date=$date_arg base_seed=$base_seed seeds=$seeds"

failures=0

# run_stage <name> <build_dir> <stage_seeds> <stage_base_seed> <stress_args>
#           [extra cmake args...]
run_stage() {
  local name=$1 build=$2 stage_seeds=$3 stage_base=$4 stress_args=$5; shift 5
  if ! cmake -B "$build" -S "$root" "$@" >/dev/null 2>&1; then
    echo "run_stress: [$name] cmake configure failed; stage skipped"
    return 0
  fi
  cmake --build "$build" -j --target dasc_stress >/dev/null
  local repro_dir="$build/stress-repros-$name"
  rm -rf "$repro_dir"
  # shellcheck disable=SC2086  # stress_args is intentionally word-split
  if "$build/tools/dasc_stress" --seeds="$stage_seeds" \
        --base-seed="$stage_base" --repro-dir="$repro_dir" $stress_args; then
    echo "run_stress: [$name] OK"
  else
    echo "run_stress: [$name] FAILED; collecting repros"
    mkdir -p "$out_dir/$name"
    cp -v "$repro_dir"/*.txt "$out_dir/$name/" 2>/dev/null || true
    failures=$((failures + 1))
  fi
}

# The focused incremental stages take the second half of the night's seed
# window so they exercise cases the full sweeps did not.
inc_seed=$(( base_seed + 50000 ))
inc_oracle="--oracle=incremental-candidates-equivalence"

run_stage release "$root/build-stress" "$seeds" "$base_seed" "" \
    -DCMAKE_BUILD_TYPE=Release
run_stage release-incremental "$root/build-stress" "$seeds" "$inc_seed" \
    "$inc_oracle" -DCMAKE_BUILD_TYPE=Release
if [[ $skip_sanitizers -eq 0 ]]; then
  sanitized_seeds=$(( seeds / 10 > 0 ? seeds / 10 : 1 ))
  run_stage ubsan "$root/build-stress-ubsan" "$sanitized_seeds" \
      "$base_seed" "" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDASC_SANITIZE=undefined
  run_stage ubsan-incremental "$root/build-stress-ubsan" "$sanitized_seeds" \
      "$inc_seed" "$inc_oracle" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDASC_SANITIZE=undefined
  run_stage asan "$root/build-stress-asan" "$sanitized_seeds" \
      "$base_seed" "" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDASC_SANITIZE=address
  run_stage asan-incremental "$root/build-stress-asan" "$sanitized_seeds" \
      "$inc_seed" "$inc_oracle" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDASC_SANITIZE=address
fi

if [[ $failures -gt 0 ]]; then
  echo "run_stress: $failures stage(s) failed; repros under $out_dir"
  exit 1
fi
echo "run_stress: all stages passed"
