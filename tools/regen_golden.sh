#!/usr/bin/env bash
# Regenerates the report-gate goldens in tests/data/.
#
#   tools/regen_golden.sh [build_dir]     (default: build)
#
# The golden must be produced by EXACTLY the invocation tests/CMakeLists.txt
# uses for the report_gate fixture — same generator flags (default seed 42)
# and an audited gg simulate run with default options — so a fresh run on any
# machine reproduces the scores and gap fields bit-for-bit (timing fields
# differ, but `dasc_report diff` only gates on them when --latency-tol is
# given). Run this after an intentional quality or schema change, eyeball the
# diff, and commit both files:
#
#   golden_report.jsonl     the expected audited gg run
#   regressed_report.jsonl  the golden with score and approx_ratio degraded
#                           by 10% — proof the gate actually fires
#                           (report_gate_detects_regression, WILL_FAIL)
set -euo pipefail

root=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-$root/build}
cli="$build/tools/dasc_cli"
data="$root/tests/data"
[[ -x "$cli" ]] || { echo "regen_golden: $cli not built" >&2; exit 1; }
mkdir -p "$data"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Relative paths keep the report's "instance" field (and so the committed
# golden) byte-identical no matter where the temp dir lands.
(cd "$tmp" &&
 "$cli" generate synthetic gate.dasc \
     --workers=30 --tasks=40 --skills=8 --dep-max=4 &&
 "$cli" simulate gate.dasc gg --audit --ledger \
     --metrics-out="$data/golden_report.jsonl" >/dev/null)

# Differential check: the same run under the incremental candidate view must
# reproduce every quality field of the scratch-path golden byte-for-byte
# (timing fields are machine-dependent and excluded). A divergence here means
# the incremental view changed allocation behavior — regen must fail, not
# bless it.
(cd "$tmp" &&
 "$cli" simulate gate.dasc gg --audit --ledger \
     --candidates=incremental --verify-candidates \
     --metrics-out="$tmp/incremental_report.jsonl" >/dev/null)

python3 - "$data/golden_report.jsonl" "$tmp/incremental_report.jsonl" <<'EOF'
import json, sys

TIMING = {"allocator_ms", "p50_batch_ms", "p95_batch_ms", "max_batch_ms"}

def quality_lines(path):
    out = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            obj = json.loads(line)
            if obj.get("type") not in ("stats", "ledger", "task"):
                continue
            out.append({k: v for k, v in obj.items() if k not in TIMING})
    return out

golden, incremental = (quality_lines(p) for p in sys.argv[1:3])
if golden != incremental:
    for g, i in zip(golden, incremental):
        if g != i:
            sys.exit(
                "regen_golden: incremental path diverged from scratch "
                f"golden:\n  scratch:     {g}\n  incremental: {i}")
    sys.exit("regen_golden: incremental path diverged from scratch golden "
             f"(line count {len(golden)} vs {len(incremental)})")
print("regen_golden: incremental candidate path matches the scratch golden")
EOF

python3 - "$data/golden_report.jsonl" "$data/regressed_report.jsonl" <<'EOF'
import json, sys

src, dst = sys.argv[1], sys.argv[2]
with open(src, encoding="utf-8") as f, open(dst, "w", encoding="utf-8") as out:
    for line in f:
        obj = json.loads(line)
        if obj.get("type") == "stats":
            obj["score"] = int(obj["score"] * 0.9)
            obj["approx_ratio"] = round(obj["approx_ratio"] * 0.9, 6)
            obj["min_batch_gap"] = round(obj["min_batch_gap"] * 0.9, 6)
        out.write(json.dumps(obj) + "\n")
EOF

echo "regen_golden: wrote $data/golden_report.jsonl and regressed_report.jsonl"
