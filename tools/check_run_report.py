#!/usr/bin/env python3
"""Validates dasc run-report JSONL files, Perfetto trace JSON, and
dasc-flight/1 flight-recorder dumps.

Used by ctest (see tests/CMakeLists.txt) to check that dasc_cli's
--metrics-out and --trace-out outputs (and dasc_loadgen's --trace-out /
--flight-out artifacts) stay schema-valid and contain the spans/metrics the
observability layer promises:

  check_run_report.py --report=report.jsonl \
      --require-metric=game_rounds --require-metric=candidates_pairs_total
  check_run_report.py --trace=trace.json \
      --require-span=batch --require-span=matching
  check_run_report.py --flight=flight.jsonl \
      --require-flight-kind=anomaly --require-flight-label=inject_delay

A /5 report's causal-trace invariants are enforced: task-line trace ids are
well-formed, sketch exemplars carry valid trace ids, the trace_summary
declares exactly the trace/trace_batch lines present, and every exported
exemplar trace id resolves to a retained "trace" line.

Exits 0 when every check passes, 1 with a message per failure otherwise.
Only the Python 3 standard library is used.
"""

import argparse
import json
import re
import sys

SUPPORTED_VERSIONS = (1, 2, 3, 4, 5)

# 16 lowercase hex chars, never all-zero (0 = "no trace" sentinel).
TRACE_ID_RE = re.compile(r"^[0-9a-f]{16}$")

# The tracer's retention-reason taxonomy (sim/task_trace.h).
TRACE_REASONS = frozenset(("head", "tail", "flagged"))

# The flight recorder's closed event taxonomy (util/flight_recorder.h).
FLIGHT_KINDS = frozenset(("batch_begin", "batch_end", "phase_begin",
                          "phase_end", "decision", "anomaly", "mark"))

# The watchdog's closed anomaly taxonomy (sim/watchdog.h).
ANOMALY_KINDS = frozenset(("heartbeat_stall", "queue_depth", "audit_gap"))

STATS_FIELDS = {
    "algorithm": str,
    "score": int,
    "batches": int,
    "nonempty_batches": int,
    "completed_tasks": int,
    "wasted_dispatches": int,
    "allocator_ms": (int, float),
    "p50_batch_ms": (int, float),
    "p95_batch_ms": (int, float),
    "max_batch_ms": (int, float),
    "mean_assignment_latency": (int, float),
    "last_completion_time": (int, float),
}

# Added by dasc-run-report/2 (quality auditor fields); required there,
# absent in /1.
STATS_FIELDS_V2 = {
    "empty_batches": int,
    "audited_batches": int,
    "audit_violations": int,
    "min_batch_gap": (int, float),
    "mean_batch_gap": (int, float),
    "approx_ratio": (int, float),
}

# Added by dasc-run-report/3 (lifecycle-ledger fields); required there.
STATS_FIELDS_V3 = {
    "total_tasks": int,
    "ledger_mismatches": int,
}

# The closed unserved-task taxonomy (sim/ledger.h); "served" only appears on
# per-task lines, never as a key of a ledger summary's "reasons" object.
UNSERVED_REASONS = frozenset((
    "never_open",
    "worker_exhausted",
    "no_skilled_worker",
    "travel_deadline",
    "out_of_range",
    "arrival_deadline",
    "dependency_unmet",
    "lost_in_matching",
))
TASK_REASONS = UNSERVED_REASONS | {"served"}

TASK_FIELDS = {
    "algorithm": str,
    "task": int,
    "reason": str,
    "arrival": (int, float),
    "expiry": (int, float),
    "dep_depth": int,
    "batches_open": int,
    "candidate_batches": int,
    "first_open_batch": int,
    "last_open_batch": int,
    "assigned_batch": int,
    "camp_expired": bool,
    "completion_time": (int, float),
}


def parse_schema_version(schema):
    """Returns the integer version of a 'dasc-run-report/N' string or None."""
    prefix = "dasc-run-report/"
    if not isinstance(schema, str) or not schema.startswith(prefix):
        return None
    try:
        return int(schema[len(prefix):])
    except ValueError:
        return None


def check_histogram(obj, lineno, errors):
    for field, kind in (("name", str), ("count", int), ("buckets", list)):
        if not isinstance(obj.get(field), kind):
            errors.append(f"line {lineno}: histogram {field!r} missing or "
                          f"not {kind}")
            return
    if not isinstance(obj.get("sum"), (int, float)):
        errors.append(f"line {lineno}: histogram 'sum' missing or not a "
                      "number")
        return
    buckets = obj["buckets"]
    if not buckets or buckets[-1].get("le") != "+Inf":
        errors.append(f"line {lineno}: histogram buckets must end with "
                      "le=\"+Inf\"")
        return
    total = 0
    previous = None
    for i, bucket in enumerate(buckets):
        le = bucket.get("le")
        count = bucket.get("count")
        if not isinstance(count, int) or count < 0:
            errors.append(f"line {lineno}: bucket {i} count invalid")
            return
        total += count
        if i < len(buckets) - 1:
            if not isinstance(le, (int, float)):
                errors.append(f"line {lineno}: bucket {i} le must be a "
                              "number")
                return
            if previous is not None and le <= previous:
                errors.append(f"line {lineno}: bucket bounds not ascending")
                return
            previous = le
    if total != obj["count"]:
        errors.append(f"line {lineno}: bucket counts sum to {total}, "
                      f"histogram count is {obj['count']}")


def check_sketch_side(obj, side, lineno, path, errors):
    """Validates one 'window'/'cumulative' object of a sketch line."""
    block = obj.get(side)
    if not isinstance(block, dict):
        errors.append(f"{path} line {lineno}: sketch {side!r} missing or "
                      "not an object")
        return None
    if not isinstance(block.get("count"), int) or block["count"] < 0:
        errors.append(f"{path} line {lineno}: sketch {side} 'count' invalid")
        return None
    if not isinstance(block.get("sum"), (int, float)):
        errors.append(f"{path} line {lineno}: sketch {side} 'sum' invalid")
        return None
    quantiles = block.get("quantiles")
    if not isinstance(quantiles, list):
        errors.append(f"{path} line {lineno}: sketch {side} 'quantiles' "
                      "missing or not a list")
        return None
    previous_q = None
    previous_v = None
    for i, entry in enumerate(quantiles):
        q = entry.get("q") if isinstance(entry, dict) else None
        value = entry.get("value") if isinstance(entry, dict) else None
        if not isinstance(q, (int, float)) or not 0 <= q <= 1:
            errors.append(f"{path} line {lineno}: sketch {side} quantile "
                          f"{i} 'q' outside [0, 1]")
            return None
        if not isinstance(value, (int, float)) or value < 0:
            errors.append(f"{path} line {lineno}: sketch {side} quantile "
                          f"{i} 'value' invalid")
            return None
        if previous_q is not None and q <= previous_q:
            errors.append(f"{path} line {lineno}: sketch {side} quantile "
                          "ranks not ascending")
            return None
        if previous_v is not None and value < previous_v:
            errors.append(f"{path} line {lineno}: sketch {side} quantile "
                          "values decrease with rank")
            return None
        previous_q, previous_v = q, value
    return block


def check_report(path, require_metrics, errors):
    try:
        with open(path, encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line]
    except OSError as e:
        errors.append(f"{path}: {e}")
        return
    if not lines:
        errors.append(f"{path}: empty report")
        return
    seen_metrics = set()
    num_stats = 0
    version = None
    stats_by_algo = {}
    ledger_by_algo = {}
    task_counts_by_algo = {}
    timeseries_header = None
    num_ts_lines = 0
    anomalies_header = None
    num_anomaly_lines = 0
    trace_summary = None
    num_trace_lines = 0
    num_trace_batch_lines = 0
    retained_trace_ids = set()
    exemplar_trace_ids = {}  # trace_id -> first line it appeared on
    for lineno, line in enumerate(lines, start=1):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{path} line {lineno}: invalid JSON: {e}")
            return
        kind = obj.get("type")
        if lineno == 1:
            if kind != "run":
                errors.append(f"{path}: first line must have type 'run', "
                              f"got {kind!r}")
                return
            version = parse_schema_version(obj.get("schema"))
            if version not in SUPPORTED_VERSIONS:
                supported = ", ".join(f"dasc-run-report/{v}"
                                      for v in SUPPORTED_VERSIONS)
                errors.append(f"{path}: unsupported schema "
                              f"{obj.get('schema')!r} (supported: "
                              f"{supported})")
                return
            for field in ("kind", "instance"):
                if not isinstance(obj.get(field), str):
                    errors.append(f"{path}: run header missing {field!r}")
            if not isinstance(obj.get("runs"), int):
                errors.append(f"{path}: run header missing integer 'runs'")
            continue
        if kind == "stats":
            num_stats += 1
            required = dict(STATS_FIELDS)
            if version >= 2:
                required.update(STATS_FIELDS_V2)
            if version >= 3:
                required.update(STATS_FIELDS_V3)
            for field, types in required.items():
                if not isinstance(obj.get(field), types):
                    errors.append(f"{path} line {lineno}: stats {field!r} "
                                  "missing or mistyped")
            if version >= 2:
                for field in ("min_batch_gap", "mean_batch_gap",
                              "approx_ratio"):
                    value = obj.get(field)
                    if isinstance(value, (int, float)) and not 0 <= value <= 1:
                        errors.append(f"{path} line {lineno}: stats "
                                      f"{field!r} = {value} outside [0, 1]")
            if isinstance(obj.get("algorithm"), str):
                stats_by_algo[obj["algorithm"]] = obj
        elif kind == "ledger":
            if version < 3:
                errors.append(f"{path} line {lineno}: ledger line in a "
                              f"dasc-run-report/{version} report")
                continue
            ok = True
            for field in ("total_tasks", "completed_tasks", "unserved"):
                if not isinstance(obj.get(field), int) or obj[field] < 0:
                    errors.append(f"{path} line {lineno}: ledger {field!r} "
                                  "missing or not a non-negative int")
                    ok = False
            reasons = obj.get("reasons")
            if not isinstance(reasons, dict):
                errors.append(f"{path} line {lineno}: ledger 'reasons' "
                              "missing or not an object")
                continue
            for name, count in reasons.items():
                if name not in UNSERVED_REASONS:
                    errors.append(f"{path} line {lineno}: ledger reason "
                                  f"{name!r} outside the closed taxonomy")
                    ok = False
                if not isinstance(count, int) or count < 0:
                    errors.append(f"{path} line {lineno}: ledger reason "
                                  f"{name!r} count invalid")
                    ok = False
            if ok:
                if sum(reasons.values()) != obj["unserved"]:
                    errors.append(f"{path} line {lineno}: ledger reasons sum "
                                  f"to {sum(reasons.values())} but unserved "
                                  f"is {obj['unserved']}")
                if obj["total_tasks"] - obj["completed_tasks"] != \
                        obj["unserved"]:
                    errors.append(f"{path} line {lineno}: ledger unserved "
                                  f"{obj['unserved']} != total_tasks - "
                                  "completed_tasks")
                ledger_by_algo[obj.get("algorithm")] = obj
        elif kind == "task":
            if version < 3:
                errors.append(f"{path} line {lineno}: task line in a "
                              f"dasc-run-report/{version} report")
                continue
            for field, types in TASK_FIELDS.items():
                if not isinstance(obj.get(field), types):
                    errors.append(f"{path} line {lineno}: task {field!r} "
                                  "missing or mistyped")
            reason = obj.get("reason")
            if isinstance(reason, str) and reason not in TASK_REASONS:
                errors.append(f"{path} line {lineno}: task reason {reason!r} "
                              "outside the closed taxonomy")
            elif isinstance(reason, str):
                counts = task_counts_by_algo.setdefault(
                    obj.get("algorithm"), {})
                counts[reason] = counts.get(reason, 0) + 1
            if version >= 5:
                trace_id = obj.get("trace_id")
                if not isinstance(trace_id, str) or \
                        not TRACE_ID_RE.match(trace_id) or \
                        trace_id == "0" * 16:
                    errors.append(f"{path} line {lineno}: task 'trace_id' "
                                  "missing or not 16 nonzero hex chars")
        elif kind == "counter":
            if not isinstance(obj.get("name"), str) or not isinstance(
                    obj.get("value"), int):
                errors.append(f"{path} line {lineno}: malformed counter")
            else:
                seen_metrics.add(obj["name"])
        elif kind == "gauge":
            if not isinstance(obj.get("name"), str) or not isinstance(
                    obj.get("value"), (int, float)):
                errors.append(f"{path} line {lineno}: malformed gauge")
            else:
                seen_metrics.add(obj["name"])
        elif kind == "histogram":
            check_histogram(obj, lineno, errors)
            if isinstance(obj.get("name"), str):
                seen_metrics.add(obj["name"])
        elif kind == "sketch":
            if version < 4:
                errors.append(f"{path} line {lineno}: sketch line in a "
                              f"dasc-run-report/{version} report")
                continue
            if not isinstance(obj.get("name"), str):
                errors.append(f"{path} line {lineno}: sketch 'name' missing")
                continue
            err = obj.get("relative_error")
            if not isinstance(err, (int, float)) or not 0 < err < 1:
                errors.append(f"{path} line {lineno}: sketch "
                              "'relative_error' outside (0, 1)")
            intervals = obj.get("window_intervals")
            if not isinstance(intervals, int) or intervals < 1:
                errors.append(f"{path} line {lineno}: sketch "
                              "'window_intervals' invalid")
            window = check_sketch_side(obj, "window", lineno, path, errors)
            cumulative = check_sketch_side(obj, "cumulative", lineno, path,
                                           errors)
            if window and cumulative and \
                    window["count"] > cumulative["count"]:
                errors.append(f"{path} line {lineno}: sketch window count "
                              f"{window['count']} exceeds cumulative "
                              f"{cumulative['count']}")
            exemplars = obj.get("exemplars")
            if exemplars is not None:
                if version < 5:
                    errors.append(f"{path} line {lineno}: sketch exemplars "
                                  f"in a dasc-run-report/{version} report")
                elif not isinstance(exemplars, list):
                    errors.append(f"{path} line {lineno}: sketch "
                                  "'exemplars' not a list")
                else:
                    for i, ex in enumerate(exemplars):
                        if not isinstance(ex, dict) or \
                                not isinstance(ex.get("value"),
                                               (int, float)):
                            errors.append(f"{path} line {lineno}: exemplar "
                                          f"{i} missing numeric 'value'")
                            continue
                        tid = ex.get("trace_id")
                        if not isinstance(tid, str) or \
                                not TRACE_ID_RE.match(tid) or \
                                tid == "0" * 16:
                            errors.append(f"{path} line {lineno}: exemplar "
                                          f"{i} 'trace_id' invalid")
                            continue
                        exemplar_trace_ids.setdefault(tid, lineno)
            seen_metrics.add(obj["name"])
        elif kind == "timeseries":
            if version < 4:
                errors.append(f"{path} line {lineno}: timeseries line in a "
                              f"dasc-run-report/{version} report")
                continue
            columns = obj.get("columns")
            if not isinstance(columns, list) or \
                    not all(isinstance(c, str) for c in columns):
                errors.append(f"{path} line {lineno}: timeseries 'columns' "
                              "missing or not a string list")
                continue
            for field in ("samples", "recorded", "dropped", "max_samples"):
                if not isinstance(obj.get(field), int) or obj[field] < 0:
                    errors.append(f"{path} line {lineno}: timeseries "
                                  f"{field!r} missing or invalid")
            timeseries_header = obj
        elif kind == "ts":
            if timeseries_header is None:
                errors.append(f"{path} line {lineno}: ts line before its "
                              "timeseries header")
                continue
            num_ts_lines += 1
            if not isinstance(obj.get("batch"), int) or \
                    not isinstance(obj.get("now"), (int, float)):
                errors.append(f"{path} line {lineno}: ts 'batch'/'now' "
                              "missing or mistyped")
            values = obj.get("v")
            if not isinstance(values, list) or \
                    not all(isinstance(v, (int, float)) for v in values):
                errors.append(f"{path} line {lineno}: ts 'v' missing or not "
                              "a number list")
            elif len(values) != len(timeseries_header.get("columns", [])):
                errors.append(f"{path} line {lineno}: ts row has "
                              f"{len(values)} values for "
                              f"{len(timeseries_header['columns'])} columns")
        elif kind == "anomalies":
            if version < 4:
                errors.append(f"{path} line {lineno}: anomalies line in a "
                              f"dasc-run-report/{version} report")
                continue
            for field in ("count", "recorded"):
                if not isinstance(obj.get(field), int) or obj[field] < 0:
                    errors.append(f"{path} line {lineno}: anomalies "
                                  f"{field!r} missing or invalid")
            by_kind = obj.get("by_kind")
            if not isinstance(by_kind, dict):
                errors.append(f"{path} line {lineno}: anomalies 'by_kind' "
                              "missing or not an object")
                continue
            for name, count in by_kind.items():
                if name not in ANOMALY_KINDS:
                    errors.append(f"{path} line {lineno}: anomaly kind "
                                  f"{name!r} outside the closed taxonomy")
                if not isinstance(count, int) or count < 0:
                    errors.append(f"{path} line {lineno}: anomaly kind "
                                  f"{name!r} count invalid")
            anomalies_header = obj
        elif kind == "anomaly":
            if anomalies_header is None:
                errors.append(f"{path} line {lineno}: anomaly line before "
                              "its anomalies summary")
                continue
            num_anomaly_lines += 1
            if obj.get("kind") not in ANOMALY_KINDS:
                errors.append(f"{path} line {lineno}: anomaly kind "
                              f"{obj.get('kind')!r} outside the closed "
                              "taxonomy")
            if not isinstance(obj.get("batch"), int):
                errors.append(f"{path} line {lineno}: anomaly 'batch' "
                              "missing or mistyped")
            for field in ("value", "threshold", "wall_ms"):
                if not isinstance(obj.get(field), (int, float)):
                    errors.append(f"{path} line {lineno}: anomaly {field!r} "
                                  "missing or mistyped")
        elif kind == "trace_summary":
            if version < 5:
                errors.append(f"{path} line {lineno}: trace_summary line in "
                              f"a dasc-run-report/{version} report")
                continue
            for field in ("started", "decided", "retained", "head", "tail",
                          "flagged", "batches", "flagged_batches",
                          "dropped_batches", "traces", "batch_records"):
                if not isinstance(obj.get(field), int) or obj[field] < 0:
                    errors.append(f"{path} line {lineno}: trace_summary "
                                  f"{field!r} missing or invalid")
            if isinstance(obj.get("retained"), int) and \
                    isinstance(obj.get("head"), int) and \
                    isinstance(obj.get("tail"), int) and \
                    isinstance(obj.get("flagged"), int) and \
                    obj["head"] + obj["tail"] + obj["flagged"] != \
                    obj["retained"]:
                errors.append(f"{path} line {lineno}: trace_summary "
                              "head+tail+flagged != retained")
            trace_summary = obj
        elif kind == "trace":
            if trace_summary is None:
                errors.append(f"{path} line {lineno}: trace line before its "
                              "trace_summary")
                continue
            num_trace_lines += 1
            tid = obj.get("trace_id")
            if not isinstance(tid, str) or not TRACE_ID_RE.match(tid) or \
                    tid == "0" * 16:
                errors.append(f"{path} line {lineno}: trace 'trace_id' "
                              "invalid")
            else:
                retained_trace_ids.add(tid)
            if obj.get("retained") not in TRACE_REASONS:
                errors.append(f"{path} line {lineno}: trace 'retained' "
                              f"{obj.get('retained')!r} outside the closed "
                              "taxonomy")
            for field in ("task", "first_admit_batch", "last_admit_batch",
                          "admitted_batches", "camp_batch", "decide_batch"):
                if not isinstance(obj.get(field), int):
                    errors.append(f"{path} line {lineno}: trace {field!r} "
                                  "missing or mistyped")
            for field in ("submit_s", "decide_s", "e2e_ms"):
                if not isinstance(obj.get(field), (int, float)):
                    errors.append(f"{path} line {lineno}: trace {field!r} "
                                  "missing or mistyped")
            if not isinstance(obj.get("served"), bool):
                errors.append(f"{path} line {lineno}: trace 'served' missing "
                              "or not a bool")
        elif kind == "trace_batch":
            if trace_summary is None:
                errors.append(f"{path} line {lineno}: trace_batch line "
                              "before its trace_summary")
                continue
            num_trace_batch_lines += 1
            if not isinstance(obj.get("seq"), int) or obj["seq"] < 0:
                errors.append(f"{path} line {lineno}: trace_batch 'seq' "
                              "missing or invalid")
            for field in ("begin_s", "end_s"):
                if not isinstance(obj.get(field), (int, float)):
                    errors.append(f"{path} line {lineno}: trace_batch "
                                  f"{field!r} missing or mistyped")
            for field in ("decisions", "open_tasks", "idle_workers"):
                if not isinstance(obj.get(field), int) or obj[field] < 0:
                    errors.append(f"{path} line {lineno}: trace_batch "
                                  f"{field!r} missing or invalid")
            if not isinstance(obj.get("flagged"), bool):
                errors.append(f"{path} line {lineno}: trace_batch 'flagged' "
                              "missing or not a bool")
            phases = obj.get("phases")
            if not isinstance(phases, dict):
                errors.append(f"{path} line {lineno}: trace_batch 'phases' "
                              "missing or not an object")
            else:
                for label, ms in phases.items():
                    if not label or not isinstance(ms, (int, float)) or \
                            ms < 0:
                        errors.append(f"{path} line {lineno}: trace_batch "
                                      f"phase {label!r} invalid")
        else:
            errors.append(f"{path} line {lineno}: unknown type {kind!r}")
    declared = json.loads(lines[0]).get("runs")
    if isinstance(declared, int) and declared != num_stats:
        errors.append(f"{path}: header declares {declared} runs but "
                      f"{num_stats} stats lines found")
    if timeseries_header is not None and \
            timeseries_header.get("samples") != num_ts_lines:
        errors.append(f"{path}: timeseries declares "
                      f"{timeseries_header.get('samples')} samples but "
                      f"{num_ts_lines} ts lines found")
    if anomalies_header is not None and \
            anomalies_header.get("recorded") != num_anomaly_lines:
        errors.append(f"{path}: anomalies summary declares "
                      f"{anomalies_header.get('recorded')} recorded but "
                      f"{num_anomaly_lines} anomaly lines found")
    if trace_summary is not None:
        if trace_summary.get("traces") != num_trace_lines:
            errors.append(f"{path}: trace_summary declares "
                          f"{trace_summary.get('traces')} traces but "
                          f"{num_trace_lines} trace lines found")
        if trace_summary.get("batch_records") != num_trace_batch_lines:
            errors.append(f"{path}: trace_summary declares "
                          f"{trace_summary.get('batch_records')} batch "
                          f"records but {num_trace_batch_lines} trace_batch "
                          "lines found")
    # Exemplar resolution: every trace id a sketch exported must point at a
    # retained trace in the same report — a dangling exemplar means the
    # tail-sampling retention rules regressed.
    for tid, first_line in sorted(exemplar_trace_ids.items()):
        if tid not in retained_trace_ids:
            errors.append(f"{path} line {first_line}: exemplar trace id "
                          f"{tid} does not resolve to a retained trace")
    # Ledger block cross-checks: the per-task lines must reproduce the
    # summary, and both must agree with the stats line's task accounting.
    for algo, ledger in ledger_by_algo.items():
        counts = task_counts_by_algo.get(algo, {})
        if sum(counts.values()) != ledger["total_tasks"]:
            errors.append(f"{path}: {algo}: {sum(counts.values())} task "
                          f"lines but ledger declares "
                          f"{ledger['total_tasks']} tasks")
        if counts.get("served", 0) != ledger["completed_tasks"]:
            errors.append(f"{path}: {algo}: {counts.get('served', 0)} served "
                          f"task lines but ledger declares "
                          f"{ledger['completed_tasks']} completed")
        for name in UNSERVED_REASONS:
            if counts.get(name, 0) != ledger["reasons"].get(name, 0):
                errors.append(f"{path}: {algo}: task lines show "
                              f"{counts.get(name, 0)} x {name} but the "
                              f"ledger summary says "
                              f"{ledger['reasons'].get(name, 0)}")
        stats = stats_by_algo.get(algo)
        if stats is not None and isinstance(stats.get("total_tasks"), int):
            if stats["total_tasks"] != ledger["total_tasks"]:
                errors.append(f"{path}: {algo}: stats total_tasks "
                              f"{stats['total_tasks']} != ledger "
                              f"{ledger['total_tasks']}")
            if stats.get("completed_tasks") != ledger["completed_tasks"]:
                errors.append(f"{path}: {algo}: stats completed_tasks "
                              f"{stats.get('completed_tasks')} != ledger "
                              f"{ledger['completed_tasks']}")
    for algo in task_counts_by_algo:
        if algo not in ledger_by_algo:
            errors.append(f"{path}: {algo}: task lines without a ledger "
                          "summary line")
    for name in require_metrics:
        if name not in seen_metrics:
            errors.append(f"{path}: required metric {name!r} not present")


def check_trace(path, require_spans, errors):
    try:
        with open(path, encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{path}: {e}")
        return
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        errors.append(f"{path}: missing 'traceEvents' list")
        return
    names = set()
    for i, event in enumerate(events):
        for field, kind in (("name", str), ("ph", str), ("pid", int),
                            ("tid", int), ("ts", (int, float))):
            if not isinstance(event.get(field), kind):
                errors.append(f"{path} event {i}: {field!r} missing or "
                              "mistyped")
                return
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{path} event {i}: X event needs dur >= 0")
                return
        if event["ts"] < 0:
            errors.append(f"{path} event {i}: negative ts")
            return
        names.add(event["name"])
    for name in require_spans:
        if name not in names:
            errors.append(f"{path}: required span {name!r} not present")


def check_flight(path, require_kinds, require_labels, errors):
    """Validates a dasc-flight/1 flight-recorder dump."""
    try:
        with open(path, encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line]
    except OSError as e:
        errors.append(f"{path}: {e}")
        return
    if not lines:
        errors.append(f"{path}: empty flight dump")
        return
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        errors.append(f"{path} line 1: invalid JSON: {e}")
        return
    if header.get("type") != "flight" or \
            header.get("schema") != "dasc-flight/1":
        errors.append(f"{path}: first line must be a dasc-flight/1 header")
        return
    if not isinstance(header.get("reason"), str) or not header["reason"]:
        errors.append(f"{path}: flight header 'reason' missing or empty")
    labels = header.get("labels")
    if not isinstance(labels, list) or \
            not all(isinstance(l, str) for l in labels):
        errors.append(f"{path}: flight header 'labels' missing or not a "
                      "string list")
        labels = []
    for field in ("events", "recorded", "dropped", "threads"):
        if not isinstance(header.get(field), int) or header[field] < 0:
            errors.append(f"{path}: flight header {field!r} missing or "
                          "invalid")
    seen_kinds = set()
    seen_labels = set()
    previous_t = None
    num_events = 0
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{path} line {lineno}: invalid JSON: {e}")
            return
        if obj.get("type") != "event":
            errors.append(f"{path} line {lineno}: expected an event line, "
                          f"got type {obj.get('type')!r}")
            continue
        num_events += 1
        kind = obj.get("kind")
        if kind not in FLIGHT_KINDS:
            errors.append(f"{path} line {lineno}: event kind {kind!r} "
                          "outside the closed taxonomy")
        else:
            seen_kinds.add(kind)
        t_ns = obj.get("t_ns")
        if not isinstance(t_ns, int) or t_ns < 0:
            errors.append(f"{path} line {lineno}: event 't_ns' missing or "
                          "invalid")
        elif previous_t is not None and t_ns < previous_t:
            errors.append(f"{path} line {lineno}: events not sorted by t_ns")
        else:
            previous_t = t_ns
        if not isinstance(obj.get("thread"), int) or obj["thread"] < 0:
            errors.append(f"{path} line {lineno}: event 'thread' missing or "
                          "invalid")
        label = obj.get("label")
        if label is not None:
            if not isinstance(label, str) or label not in labels:
                errors.append(f"{path} line {lineno}: event label {label!r} "
                              "not in the header label table")
            else:
                seen_labels.add(label)
    if num_events != header.get("events"):
        errors.append(f"{path}: header declares {header.get('events')} "
                      f"events but {num_events} event lines found")
    for kind in require_kinds:
        if kind not in seen_kinds:
            errors.append(f"{path}: required event kind {kind!r} not present")
    for label in require_labels:
        if label not in seen_labels:
            errors.append(f"{path}: required event label {label!r} not "
                          "present")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", help="run-report JSONL file to validate")
    parser.add_argument("--trace", help="Perfetto trace JSON file to validate")
    parser.add_argument("--flight", help="dasc-flight/1 dump to validate")
    parser.add_argument("--require-metric", action="append", default=[],
                        help="metric name that must appear in the report "
                             "(repeatable)")
    parser.add_argument("--require-span", action="append", default=[],
                        help="span name that must appear in the trace "
                             "(repeatable)")
    parser.add_argument("--require-flight-kind", action="append", default=[],
                        help="event kind that must appear in the flight "
                             "dump (repeatable)")
    parser.add_argument("--require-flight-label", action="append", default=[],
                        help="event label that must appear in the flight "
                             "dump (repeatable)")
    args = parser.parse_args()
    if not args.report and not args.trace and not args.flight:
        parser.error("at least one of --report/--trace/--flight is required")

    errors = []
    if args.report:
        check_report(args.report, args.require_metric, errors)
    if args.trace:
        check_trace(args.trace, args.require_span, errors)
    if args.flight:
        check_flight(args.flight, args.require_flight_kind,
                     args.require_flight_label, errors)
    for message in errors:
        print(f"check_run_report: {message}", file=sys.stderr)
    if errors:
        return 1
    checked = [p for p in (args.report, args.trace, args.flight) if p]
    print(f"check_run_report: OK ({', '.join(checked)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
