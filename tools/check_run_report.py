#!/usr/bin/env python3
"""Validates dasc run-report JSONL files and Perfetto trace JSON.

Used by ctest (see tests/CMakeLists.txt) to check that dasc_cli's
--metrics-out and --trace-out outputs stay schema-valid and contain the
spans/metrics the observability layer promises:

  check_run_report.py --report=report.jsonl \
      --require-metric=game_rounds --require-metric=candidates_pairs_total
  check_run_report.py --trace=trace.json \
      --require-span=batch --require-span=matching

Exits 0 when every check passes, 1 with a message per failure otherwise.
Only the Python 3 standard library is used.
"""

import argparse
import json
import sys

SUPPORTED_VERSIONS = (1, 2, 3, 4)

# The watchdog's closed anomaly taxonomy (sim/watchdog.h).
ANOMALY_KINDS = frozenset(("heartbeat_stall", "queue_depth", "audit_gap"))

STATS_FIELDS = {
    "algorithm": str,
    "score": int,
    "batches": int,
    "nonempty_batches": int,
    "completed_tasks": int,
    "wasted_dispatches": int,
    "allocator_ms": (int, float),
    "p50_batch_ms": (int, float),
    "p95_batch_ms": (int, float),
    "max_batch_ms": (int, float),
    "mean_assignment_latency": (int, float),
    "last_completion_time": (int, float),
}

# Added by dasc-run-report/2 (quality auditor fields); required there,
# absent in /1.
STATS_FIELDS_V2 = {
    "empty_batches": int,
    "audited_batches": int,
    "audit_violations": int,
    "min_batch_gap": (int, float),
    "mean_batch_gap": (int, float),
    "approx_ratio": (int, float),
}

# Added by dasc-run-report/3 (lifecycle-ledger fields); required there.
STATS_FIELDS_V3 = {
    "total_tasks": int,
    "ledger_mismatches": int,
}

# The closed unserved-task taxonomy (sim/ledger.h); "served" only appears on
# per-task lines, never as a key of a ledger summary's "reasons" object.
UNSERVED_REASONS = frozenset((
    "never_open",
    "worker_exhausted",
    "no_skilled_worker",
    "travel_deadline",
    "out_of_range",
    "arrival_deadline",
    "dependency_unmet",
    "lost_in_matching",
))
TASK_REASONS = UNSERVED_REASONS | {"served"}

TASK_FIELDS = {
    "algorithm": str,
    "task": int,
    "reason": str,
    "arrival": (int, float),
    "expiry": (int, float),
    "dep_depth": int,
    "batches_open": int,
    "candidate_batches": int,
    "first_open_batch": int,
    "last_open_batch": int,
    "assigned_batch": int,
    "camp_expired": bool,
    "completion_time": (int, float),
}


def parse_schema_version(schema):
    """Returns the integer version of a 'dasc-run-report/N' string or None."""
    prefix = "dasc-run-report/"
    if not isinstance(schema, str) or not schema.startswith(prefix):
        return None
    try:
        return int(schema[len(prefix):])
    except ValueError:
        return None


def check_histogram(obj, lineno, errors):
    for field, kind in (("name", str), ("count", int), ("buckets", list)):
        if not isinstance(obj.get(field), kind):
            errors.append(f"line {lineno}: histogram {field!r} missing or "
                          f"not {kind}")
            return
    if not isinstance(obj.get("sum"), (int, float)):
        errors.append(f"line {lineno}: histogram 'sum' missing or not a "
                      "number")
        return
    buckets = obj["buckets"]
    if not buckets or buckets[-1].get("le") != "+Inf":
        errors.append(f"line {lineno}: histogram buckets must end with "
                      "le=\"+Inf\"")
        return
    total = 0
    previous = None
    for i, bucket in enumerate(buckets):
        le = bucket.get("le")
        count = bucket.get("count")
        if not isinstance(count, int) or count < 0:
            errors.append(f"line {lineno}: bucket {i} count invalid")
            return
        total += count
        if i < len(buckets) - 1:
            if not isinstance(le, (int, float)):
                errors.append(f"line {lineno}: bucket {i} le must be a "
                              "number")
                return
            if previous is not None and le <= previous:
                errors.append(f"line {lineno}: bucket bounds not ascending")
                return
            previous = le
    if total != obj["count"]:
        errors.append(f"line {lineno}: bucket counts sum to {total}, "
                      f"histogram count is {obj['count']}")


def check_sketch_side(obj, side, lineno, path, errors):
    """Validates one 'window'/'cumulative' object of a sketch line."""
    block = obj.get(side)
    if not isinstance(block, dict):
        errors.append(f"{path} line {lineno}: sketch {side!r} missing or "
                      "not an object")
        return None
    if not isinstance(block.get("count"), int) or block["count"] < 0:
        errors.append(f"{path} line {lineno}: sketch {side} 'count' invalid")
        return None
    if not isinstance(block.get("sum"), (int, float)):
        errors.append(f"{path} line {lineno}: sketch {side} 'sum' invalid")
        return None
    quantiles = block.get("quantiles")
    if not isinstance(quantiles, list):
        errors.append(f"{path} line {lineno}: sketch {side} 'quantiles' "
                      "missing or not a list")
        return None
    previous_q = None
    previous_v = None
    for i, entry in enumerate(quantiles):
        q = entry.get("q") if isinstance(entry, dict) else None
        value = entry.get("value") if isinstance(entry, dict) else None
        if not isinstance(q, (int, float)) or not 0 <= q <= 1:
            errors.append(f"{path} line {lineno}: sketch {side} quantile "
                          f"{i} 'q' outside [0, 1]")
            return None
        if not isinstance(value, (int, float)) or value < 0:
            errors.append(f"{path} line {lineno}: sketch {side} quantile "
                          f"{i} 'value' invalid")
            return None
        if previous_q is not None and q <= previous_q:
            errors.append(f"{path} line {lineno}: sketch {side} quantile "
                          "ranks not ascending")
            return None
        if previous_v is not None and value < previous_v:
            errors.append(f"{path} line {lineno}: sketch {side} quantile "
                          "values decrease with rank")
            return None
        previous_q, previous_v = q, value
    return block


def check_report(path, require_metrics, errors):
    try:
        with open(path, encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line]
    except OSError as e:
        errors.append(f"{path}: {e}")
        return
    if not lines:
        errors.append(f"{path}: empty report")
        return
    seen_metrics = set()
    num_stats = 0
    version = None
    stats_by_algo = {}
    ledger_by_algo = {}
    task_counts_by_algo = {}
    timeseries_header = None
    num_ts_lines = 0
    anomalies_header = None
    num_anomaly_lines = 0
    for lineno, line in enumerate(lines, start=1):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{path} line {lineno}: invalid JSON: {e}")
            return
        kind = obj.get("type")
        if lineno == 1:
            if kind != "run":
                errors.append(f"{path}: first line must have type 'run', "
                              f"got {kind!r}")
                return
            version = parse_schema_version(obj.get("schema"))
            if version not in SUPPORTED_VERSIONS:
                supported = ", ".join(f"dasc-run-report/{v}"
                                      for v in SUPPORTED_VERSIONS)
                errors.append(f"{path}: unsupported schema "
                              f"{obj.get('schema')!r} (supported: "
                              f"{supported})")
                return
            for field in ("kind", "instance"):
                if not isinstance(obj.get(field), str):
                    errors.append(f"{path}: run header missing {field!r}")
            if not isinstance(obj.get("runs"), int):
                errors.append(f"{path}: run header missing integer 'runs'")
            continue
        if kind == "stats":
            num_stats += 1
            required = dict(STATS_FIELDS)
            if version >= 2:
                required.update(STATS_FIELDS_V2)
            if version >= 3:
                required.update(STATS_FIELDS_V3)
            for field, types in required.items():
                if not isinstance(obj.get(field), types):
                    errors.append(f"{path} line {lineno}: stats {field!r} "
                                  "missing or mistyped")
            if version >= 2:
                for field in ("min_batch_gap", "mean_batch_gap",
                              "approx_ratio"):
                    value = obj.get(field)
                    if isinstance(value, (int, float)) and not 0 <= value <= 1:
                        errors.append(f"{path} line {lineno}: stats "
                                      f"{field!r} = {value} outside [0, 1]")
            if isinstance(obj.get("algorithm"), str):
                stats_by_algo[obj["algorithm"]] = obj
        elif kind == "ledger":
            if version < 3:
                errors.append(f"{path} line {lineno}: ledger line in a "
                              f"dasc-run-report/{version} report")
                continue
            ok = True
            for field in ("total_tasks", "completed_tasks", "unserved"):
                if not isinstance(obj.get(field), int) or obj[field] < 0:
                    errors.append(f"{path} line {lineno}: ledger {field!r} "
                                  "missing or not a non-negative int")
                    ok = False
            reasons = obj.get("reasons")
            if not isinstance(reasons, dict):
                errors.append(f"{path} line {lineno}: ledger 'reasons' "
                              "missing or not an object")
                continue
            for name, count in reasons.items():
                if name not in UNSERVED_REASONS:
                    errors.append(f"{path} line {lineno}: ledger reason "
                                  f"{name!r} outside the closed taxonomy")
                    ok = False
                if not isinstance(count, int) or count < 0:
                    errors.append(f"{path} line {lineno}: ledger reason "
                                  f"{name!r} count invalid")
                    ok = False
            if ok:
                if sum(reasons.values()) != obj["unserved"]:
                    errors.append(f"{path} line {lineno}: ledger reasons sum "
                                  f"to {sum(reasons.values())} but unserved "
                                  f"is {obj['unserved']}")
                if obj["total_tasks"] - obj["completed_tasks"] != \
                        obj["unserved"]:
                    errors.append(f"{path} line {lineno}: ledger unserved "
                                  f"{obj['unserved']} != total_tasks - "
                                  "completed_tasks")
                ledger_by_algo[obj.get("algorithm")] = obj
        elif kind == "task":
            if version < 3:
                errors.append(f"{path} line {lineno}: task line in a "
                              f"dasc-run-report/{version} report")
                continue
            for field, types in TASK_FIELDS.items():
                if not isinstance(obj.get(field), types):
                    errors.append(f"{path} line {lineno}: task {field!r} "
                                  "missing or mistyped")
            reason = obj.get("reason")
            if isinstance(reason, str) and reason not in TASK_REASONS:
                errors.append(f"{path} line {lineno}: task reason {reason!r} "
                              "outside the closed taxonomy")
            elif isinstance(reason, str):
                counts = task_counts_by_algo.setdefault(
                    obj.get("algorithm"), {})
                counts[reason] = counts.get(reason, 0) + 1
        elif kind == "counter":
            if not isinstance(obj.get("name"), str) or not isinstance(
                    obj.get("value"), int):
                errors.append(f"{path} line {lineno}: malformed counter")
            else:
                seen_metrics.add(obj["name"])
        elif kind == "gauge":
            if not isinstance(obj.get("name"), str) or not isinstance(
                    obj.get("value"), (int, float)):
                errors.append(f"{path} line {lineno}: malformed gauge")
            else:
                seen_metrics.add(obj["name"])
        elif kind == "histogram":
            check_histogram(obj, lineno, errors)
            if isinstance(obj.get("name"), str):
                seen_metrics.add(obj["name"])
        elif kind == "sketch":
            if version < 4:
                errors.append(f"{path} line {lineno}: sketch line in a "
                              f"dasc-run-report/{version} report")
                continue
            if not isinstance(obj.get("name"), str):
                errors.append(f"{path} line {lineno}: sketch 'name' missing")
                continue
            err = obj.get("relative_error")
            if not isinstance(err, (int, float)) or not 0 < err < 1:
                errors.append(f"{path} line {lineno}: sketch "
                              "'relative_error' outside (0, 1)")
            intervals = obj.get("window_intervals")
            if not isinstance(intervals, int) or intervals < 1:
                errors.append(f"{path} line {lineno}: sketch "
                              "'window_intervals' invalid")
            window = check_sketch_side(obj, "window", lineno, path, errors)
            cumulative = check_sketch_side(obj, "cumulative", lineno, path,
                                           errors)
            if window and cumulative and \
                    window["count"] > cumulative["count"]:
                errors.append(f"{path} line {lineno}: sketch window count "
                              f"{window['count']} exceeds cumulative "
                              f"{cumulative['count']}")
            seen_metrics.add(obj["name"])
        elif kind == "timeseries":
            if version < 4:
                errors.append(f"{path} line {lineno}: timeseries line in a "
                              f"dasc-run-report/{version} report")
                continue
            columns = obj.get("columns")
            if not isinstance(columns, list) or \
                    not all(isinstance(c, str) for c in columns):
                errors.append(f"{path} line {lineno}: timeseries 'columns' "
                              "missing or not a string list")
                continue
            for field in ("samples", "recorded", "dropped", "max_samples"):
                if not isinstance(obj.get(field), int) or obj[field] < 0:
                    errors.append(f"{path} line {lineno}: timeseries "
                                  f"{field!r} missing or invalid")
            timeseries_header = obj
        elif kind == "ts":
            if timeseries_header is None:
                errors.append(f"{path} line {lineno}: ts line before its "
                              "timeseries header")
                continue
            num_ts_lines += 1
            if not isinstance(obj.get("batch"), int) or \
                    not isinstance(obj.get("now"), (int, float)):
                errors.append(f"{path} line {lineno}: ts 'batch'/'now' "
                              "missing or mistyped")
            values = obj.get("v")
            if not isinstance(values, list) or \
                    not all(isinstance(v, (int, float)) for v in values):
                errors.append(f"{path} line {lineno}: ts 'v' missing or not "
                              "a number list")
            elif len(values) != len(timeseries_header.get("columns", [])):
                errors.append(f"{path} line {lineno}: ts row has "
                              f"{len(values)} values for "
                              f"{len(timeseries_header['columns'])} columns")
        elif kind == "anomalies":
            if version < 4:
                errors.append(f"{path} line {lineno}: anomalies line in a "
                              f"dasc-run-report/{version} report")
                continue
            for field in ("count", "recorded"):
                if not isinstance(obj.get(field), int) or obj[field] < 0:
                    errors.append(f"{path} line {lineno}: anomalies "
                                  f"{field!r} missing or invalid")
            by_kind = obj.get("by_kind")
            if not isinstance(by_kind, dict):
                errors.append(f"{path} line {lineno}: anomalies 'by_kind' "
                              "missing or not an object")
                continue
            for name, count in by_kind.items():
                if name not in ANOMALY_KINDS:
                    errors.append(f"{path} line {lineno}: anomaly kind "
                                  f"{name!r} outside the closed taxonomy")
                if not isinstance(count, int) or count < 0:
                    errors.append(f"{path} line {lineno}: anomaly kind "
                                  f"{name!r} count invalid")
            anomalies_header = obj
        elif kind == "anomaly":
            if anomalies_header is None:
                errors.append(f"{path} line {lineno}: anomaly line before "
                              "its anomalies summary")
                continue
            num_anomaly_lines += 1
            if obj.get("kind") not in ANOMALY_KINDS:
                errors.append(f"{path} line {lineno}: anomaly kind "
                              f"{obj.get('kind')!r} outside the closed "
                              "taxonomy")
            if not isinstance(obj.get("batch"), int):
                errors.append(f"{path} line {lineno}: anomaly 'batch' "
                              "missing or mistyped")
            for field in ("value", "threshold", "wall_ms"):
                if not isinstance(obj.get(field), (int, float)):
                    errors.append(f"{path} line {lineno}: anomaly {field!r} "
                                  "missing or mistyped")
        else:
            errors.append(f"{path} line {lineno}: unknown type {kind!r}")
    declared = json.loads(lines[0]).get("runs")
    if isinstance(declared, int) and declared != num_stats:
        errors.append(f"{path}: header declares {declared} runs but "
                      f"{num_stats} stats lines found")
    if timeseries_header is not None and \
            timeseries_header.get("samples") != num_ts_lines:
        errors.append(f"{path}: timeseries declares "
                      f"{timeseries_header.get('samples')} samples but "
                      f"{num_ts_lines} ts lines found")
    if anomalies_header is not None and \
            anomalies_header.get("recorded") != num_anomaly_lines:
        errors.append(f"{path}: anomalies summary declares "
                      f"{anomalies_header.get('recorded')} recorded but "
                      f"{num_anomaly_lines} anomaly lines found")
    # Ledger block cross-checks: the per-task lines must reproduce the
    # summary, and both must agree with the stats line's task accounting.
    for algo, ledger in ledger_by_algo.items():
        counts = task_counts_by_algo.get(algo, {})
        if sum(counts.values()) != ledger["total_tasks"]:
            errors.append(f"{path}: {algo}: {sum(counts.values())} task "
                          f"lines but ledger declares "
                          f"{ledger['total_tasks']} tasks")
        if counts.get("served", 0) != ledger["completed_tasks"]:
            errors.append(f"{path}: {algo}: {counts.get('served', 0)} served "
                          f"task lines but ledger declares "
                          f"{ledger['completed_tasks']} completed")
        for name in UNSERVED_REASONS:
            if counts.get(name, 0) != ledger["reasons"].get(name, 0):
                errors.append(f"{path}: {algo}: task lines show "
                              f"{counts.get(name, 0)} x {name} but the "
                              f"ledger summary says "
                              f"{ledger['reasons'].get(name, 0)}")
        stats = stats_by_algo.get(algo)
        if stats is not None and isinstance(stats.get("total_tasks"), int):
            if stats["total_tasks"] != ledger["total_tasks"]:
                errors.append(f"{path}: {algo}: stats total_tasks "
                              f"{stats['total_tasks']} != ledger "
                              f"{ledger['total_tasks']}")
            if stats.get("completed_tasks") != ledger["completed_tasks"]:
                errors.append(f"{path}: {algo}: stats completed_tasks "
                              f"{stats.get('completed_tasks')} != ledger "
                              f"{ledger['completed_tasks']}")
    for algo in task_counts_by_algo:
        if algo not in ledger_by_algo:
            errors.append(f"{path}: {algo}: task lines without a ledger "
                          "summary line")
    for name in require_metrics:
        if name not in seen_metrics:
            errors.append(f"{path}: required metric {name!r} not present")


def check_trace(path, require_spans, errors):
    try:
        with open(path, encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{path}: {e}")
        return
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        errors.append(f"{path}: missing 'traceEvents' list")
        return
    names = set()
    for i, event in enumerate(events):
        for field, kind in (("name", str), ("ph", str), ("pid", int),
                            ("tid", int), ("ts", (int, float))):
            if not isinstance(event.get(field), kind):
                errors.append(f"{path} event {i}: {field!r} missing or "
                              "mistyped")
                return
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{path} event {i}: X event needs dur >= 0")
                return
        if event["ts"] < 0:
            errors.append(f"{path} event {i}: negative ts")
            return
        names.add(event["name"])
    for name in require_spans:
        if name not in names:
            errors.append(f"{path}: required span {name!r} not present")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", help="run-report JSONL file to validate")
    parser.add_argument("--trace", help="Perfetto trace JSON file to validate")
    parser.add_argument("--require-metric", action="append", default=[],
                        help="metric name that must appear in the report "
                             "(repeatable)")
    parser.add_argument("--require-span", action="append", default=[],
                        help="span name that must appear in the trace "
                             "(repeatable)")
    args = parser.parse_args()
    if not args.report and not args.trace:
        parser.error("at least one of --report/--trace is required")

    errors = []
    if args.report:
        check_report(args.report, args.require_metric, errors)
    if args.trace:
        check_trace(args.trace, args.require_span, errors)
    for message in errors:
        print(f"check_run_report: {message}", file=sys.stderr)
    if errors:
        return 1
    checked = [p for p in (args.report, args.trace) if p]
    print(f"check_run_report: OK ({', '.join(checked)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
