// dasc_loadgen — open-loop load generator for the in-process allocation
// service (sim/service.h).
//
//   dasc_loadgen [--algo=greedy] [--tasks=N] [--workers=N] [--skills=N]
//       [--dep-max=N] [--seed=N] [--instance=in.dasc]
//       [--rate=TASKS_PER_MIN] [--process=uniform|poisson|bursty|diurnal]
//       [--burst-period-s=F] [--burst-duty=F]
//       [--diurnal-amplitude=F] [--diurnal-periods=F]
//       [--report-out=load.jsonl] [--serve-metrics=PORT]
//       [--trace-out=trace.jsonl] [--flight-out=flight.jsonl]
//       [--watchdog-heartbeat-ms=F]
//       [--slo-p99-ms=F] [--slo-unserved-budget=F] [--slo-short-window=F]
//       [--min-batch-gap-ms=F] [--max-batch-gap-ms=F]
//       [--inject-stall-ms=F]
//
// The driver is open-loop: every task's send time is fixed by
// util::BuildArrivalSchedule before the run starts, and the service's
// responsiveness cannot push the timeline back. Per-task end-to-end latency
// is measured against the *intended* send time (decide - intended), so a
// stalled service shows up as large recorded latencies rather than as
// silently missing samples — the coordinated-omission correction (DESIGN.md
// §15.3). The same decisions are also summarized against the actual submit
// time (decide - submit) and the pacing error itself (submit - intended).
//
// The loadgen records into util::LatencyRecorder (HdrHistogram-style) while
// the service feeds the same decide-submit values into its registry
// DDSketch (`service_task_e2e_ms_window`); the run ends by reconciling the
// two estimators' p95 — two structurally different quantile paths over the
// same sample multiset must agree within their combined relative error.
// With --serve-metrics the sketch side is scraped over HTTP from /snapshot
// (exactly what an external Prometheus would see); otherwise it is read
// in-process.
//
// Model time: the instance's task start times are rewritten
// order-preservingly onto the arrival schedule (scaled by time_scale =
// model_span / wall_span), so the service's wall->model mapping lands each
// task's feasibility window at its scheduled arrival. Worker windows and
// wait durations keep their model-time semantics.
//
// The run emits a dasc-load-report/1 JSONL artifact (sim/load_report.h):
// offered vs achieved rate, latency summaries, the reconciliation verdict,
// SLO evaluations with multi-window error-budget burn rates, the
// ingest-queue depth series, and any watchdog anomalies. `dasc_report load`
// summarizes/diffs/gates on it; tools/check_load_report.py validates it.
//
// Causal observability: a sim::TaskTracer rides every run (head/tail/
// flagged sampling of per-task traces plus per-batch phase records).
// --trace-out serializes it as a dasc-run-report/5 artifact whose trace
// block `dasc_report trace` turns into a critical-path breakdown.
// --flight-out arms the anomaly-triggered black box: the watchdog runs even
// without --serve-metrics, and its first anomaly dumps the global flight
// recorder (util/flight_recorder.h) to the given path as dasc-flight/1;
// every anomaly also pins its batch in the tracer so the affected traces
// are tail-retained. --watchdog-heartbeat-ms tightens the stall threshold
// so tests can trip it deterministically with --inject-stall-ms.
//
// --inject-stall-ms is a test-only hook (ServiceOptions::
// inject_batch_delay_ms) that sleeps inside every batch: it
// deterministically seeds an SLO breach for the WILL_FAIL gate test. Never
// set it in real runs.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "algo/registry.h"
#include "gen/synthetic.h"
#include "io/instance_io.h"
#include "sim/load_report.h"
#include "sim/metrics_timeseries.h"
#include "sim/run_report.h"
#include "sim/service.h"
#include "sim/task_trace.h"
#include "sim/watchdog.h"
#include "util/build_info.h"
#include "util/flags.h"
#include "util/flight_recorder.h"
#include "util/http_server.h"
#include "util/json.h"
#include "util/latency_recorder.h"
#include "util/metrics.h"
#include "util/rate_scheduler.h"

namespace {

using namespace dasc;

constexpr const char* kServiceSketchName = "service_task_e2e_ms_window";

int Usage() {
  std::fprintf(
      stderr,
      "usage: dasc_loadgen [--algo=greedy] [--tasks=N] [--workers=N]\n"
      "    [--skills=N] [--dep-max=N] [--seed=N] [--instance=in.dasc]\n"
      "    [--rate=TASKS_PER_MIN] "
      "[--process=uniform|poisson|bursty|diurnal]\n"
      "    [--burst-period-s= --burst-duty=]\n"
      "    [--diurnal-amplitude= --diurnal-periods=]\n"
      "    [--report-out=load.jsonl] [--serve-metrics=PORT]\n"
      "    [--trace-out=trace.jsonl] [--flight-out=flight.jsonl]\n"
      "    [--watchdog-heartbeat-ms=F]\n"
      "    [--slo-p99-ms= --slo-unserved-budget= --slo-short-window=]\n"
      "    [--min-batch-gap-ms= --max-batch-gap-ms=] [--inject-stall-ms=]\n");
  return 2;
}

struct PacedTask {
  core::TaskId id = core::kInvalidId;
  double intended_s = 0.0;  // wall offset from run start
};

// Order-preserving rewrite: the i-th task by original start time gets the
// i-th scheduled arrival (in model units). Returns the rebuilt instance and
// fills the send plan (task ids in send order with intended wall offsets).
util::Result<core::Instance> RewriteOntoSchedule(
    const core::Instance& original, const std::vector<double>& offsets_s,
    double time_scale, std::vector<PacedTask>* plan) {
  std::vector<core::Worker> workers = original.workers();
  std::vector<core::Task> tasks = original.tasks();
  std::vector<int> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return tasks[static_cast<size_t>(a)].start_time <
           tasks[static_cast<size_t>(b)].start_time;
  });
  plan->clear();
  plan->reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    core::Task& task = tasks[static_cast<size_t>(order[i])];
    task.start_time = offsets_s[i] * time_scale;
    plan->push_back({task.id, offsets_s[i]});
  }
  return core::Instance::Create(std::move(workers), std::move(tasks),
                                original.num_skills());
}

sim::LatencySeriesSummary Summarize(const std::string& series,
                                    const util::LatencyRecorder& recorder) {
  sim::LatencySeriesSummary s;
  s.series = series;
  s.count = recorder.count();
  s.mean_ms = recorder.Mean();
  s.p50_ms = recorder.Percentile(0.50);
  s.p95_ms = recorder.Percentile(0.95);
  s.p99_ms = recorder.Percentile(0.99);
  s.p999_ms = recorder.Percentile(0.999);
  s.max_ms = recorder.max();
  return s;
}

// Reads the service-side sketch summary: scraped from /snapshot when a port
// is live (the external-observer path), else straight from the registry.
sim::ServiceSketchSummary ReadServiceSketch(int port) {
  sim::ServiceSketchSummary out;
  out.name = kServiceSketchName;
  if (port > 0) {
    auto body = util::HttpGetLocal(port, "/snapshot");
    if (body.ok()) {
      auto doc = util::ParseJson(*body);
      if (doc.ok()) {
        if (const util::JsonValue* sketches = doc->Find("sketches")) {
          for (const util::JsonValue& sk : sketches->items()) {
            if (sk.GetString("name") != kServiceSketchName) continue;
            if (const util::JsonValue* cum = sk.Find("cumulative")) {
              out.scraped = true;
              out.count = static_cast<int64_t>(cum->GetNumber("count"));
              if (const util::JsonValue* quantiles = cum->Find("quantiles")) {
                for (const util::JsonValue& q : quantiles->items()) {
                  const double rank = q.GetNumber("q");
                  const double value = q.GetNumber("value");
                  if (rank == 0.5) out.p50_ms = value;
                  if (rank == 0.95) out.p95_ms = value;
                  if (rank == 0.99) out.p99_ms = value;
                }
              }
            }
            break;
          }
        }
      }
    }
    if (out.scraped) return out;
  }
  const util::MetricsSnapshot snapshot = util::GlobalMetrics().Snapshot();
  for (const util::SketchSnapshot& sk : snapshot.sketches) {
    if (sk.name != kServiceSketchName) continue;
    out.count = sk.cumulative_count;
    for (const util::SketchQuantile& q : sk.cumulative_quantiles) {
      if (q.q == 0.5) out.p50_ms = q.value;
      if (q.q == 0.95) out.p95_ms = q.value;
      if (q.q == 0.99) out.p99_ms = q.value;
    }
    break;
  }
  return out;
}

int Run(int argc, char** argv) {
  util::FlagParser parser;
  std::string algo_name = "greedy";
  std::string instance_path;
  std::string process_name = "uniform";
  std::string report_out;
  int64_t tasks = 2000;
  int64_t workers = 2000;
  int64_t skills = 50;
  int64_t dep_max = 5;
  int64_t seed = 42;
  double rate = 10000.0;
  double burst_period_s = 2.0;
  double burst_duty = 0.25;
  double diurnal_amplitude = 0.8;
  double diurnal_periods = 2.0;
  int64_t serve_port = -1;
  double slo_p99_ms = 250.0;
  double slo_unserved_budget = 0.9;
  double slo_short_window = 0.25;
  double min_batch_gap_ms = 1.0;
  double max_batch_gap_ms = 25.0;
  double inject_stall_ms = 0.0;
  std::string trace_out;
  std::string flight_out;
  double watchdog_heartbeat_ms = 0.0;
  parser.AddString("algo", &algo_name, "allocator under test");
  parser.AddString("instance", &instance_path,
                   "drive this instance file instead of generating one");
  parser.AddString("process", &process_name,
                   "arrival process: uniform|poisson|bursty|diurnal");
  parser.AddString("report-out", &report_out,
                   "write the dasc-load-report/1 JSONL artifact here");
  parser.AddInt("tasks", &tasks, "generated task count");
  parser.AddInt("workers", &workers, "generated worker count");
  parser.AddInt("skills", &skills, "generated skill universe");
  parser.AddInt("dep-max", &dep_max, "generated max dependency set size");
  parser.AddInt("seed", &seed, "generator/allocator/schedule seed");
  parser.AddDouble("rate", &rate, "offered task rate per minute");
  parser.AddDouble("burst-period-s", &burst_period_s,
                   "bursty: on/off period length");
  parser.AddDouble("burst-duty", &burst_duty,
                   "bursty: fraction of each period spent sending");
  parser.AddDouble("diurnal-amplitude", &diurnal_amplitude,
                   "diurnal: rate modulation amplitude in [0,1)");
  parser.AddDouble("diurnal-periods", &diurnal_periods,
                   "diurnal: sinusoid cycles over the run");
  parser.AddInt("serve-metrics", &serve_port,
                "serve live telemetry on 127.0.0.1:PORT during the run "
                "(0 = ephemeral; scraped for the reconciliation)");
  parser.AddDouble("slo-p99-ms", &slo_p99_ms,
                   "latency SLO: p99 of CO-corrected e2e must stay below");
  parser.AddDouble("slo-unserved-budget", &slo_unserved_budget,
                   "unserved-rate SLO error budget (bad fraction allowed)");
  parser.AddDouble("slo-short-window", &slo_short_window,
                   "burn-rate short window as a fraction of the run");
  parser.AddDouble("min-batch-gap-ms", &min_batch_gap_ms,
                   "service: ingest coalescing window");
  parser.AddDouble("max-batch-gap-ms", &max_batch_gap_ms,
                   "service: idle batch flush interval");
  parser.AddDouble("inject-stall-ms", &inject_stall_ms,
                   "TEST ONLY: sleep inside every service batch");
  parser.AddString("trace-out", &trace_out,
                   "write the causal-trace run report (dasc-run-report/5) "
                   "here; dasc_report trace analyzes it");
  parser.AddString("flight-out", &flight_out,
                   "arm the flight recorder: the first watchdog anomaly "
                   "dumps the black box here as dasc-flight/1");
  parser.AddDouble("watchdog-heartbeat-ms", &watchdog_heartbeat_ms,
                   "override the watchdog heartbeat-stall threshold "
                   "(0 = default 5000 ms)");
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  const util::Status parsed = parser.Parse(args);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return Usage();
  }
  if (!parser.positional().empty()) return Usage();
  if (rate <= 0.0 || tasks <= 0) {
    std::fprintf(stderr, "--rate and --tasks must be positive\n");
    return Usage();
  }

  auto process = util::ParseArrivalProcess(process_name);
  if (!process.ok()) {
    std::fprintf(stderr, "%s\n", process.status().ToString().c_str());
    return Usage();
  }

  // 1. The instance: load or generate the universe.
  util::Result<core::Instance> original =
      util::Status::Internal("unreachable");
  std::string instance_desc;
  if (!instance_path.empty()) {
    original = io::ReadInstanceFile(instance_path);
    instance_desc = instance_path;
  } else {
    gen::SyntheticParams params;
    params.seed = static_cast<uint64_t>(seed);
    params.num_workers = static_cast<int>(workers);
    params.num_tasks = static_cast<int>(tasks);
    params.num_skills = static_cast<int>(skills);
    params.dependency_size.hi = static_cast<int>(dep_max);
    original = gen::GenerateSynthetic(params);
    instance_desc = "synthetic(workers=" + std::to_string(workers) +
                    ",tasks=" + std::to_string(tasks) +
                    ",seed=" + std::to_string(seed) + ")";
  }
  if (!original.ok()) {
    std::fprintf(stderr, "%s\n", original.status().ToString().c_str());
    return 1;
  }
  const int m = original->num_tasks();

  // 2. The fixed timeline, and the wall->model scale that lands each
  // task's rewritten start time at its scheduled arrival.
  util::ArrivalScheduleOptions schedule_options;
  schedule_options.process = *process;
  schedule_options.rate_per_min = rate;
  schedule_options.seed = static_cast<uint64_t>(seed);
  schedule_options.burst_period_s = burst_period_s;
  schedule_options.burst_duty = burst_duty;
  schedule_options.diurnal_amplitude = diurnal_amplitude;
  schedule_options.diurnal_periods = diurnal_periods;
  const std::vector<double> offsets =
      util::BuildArrivalSchedule(schedule_options, m);
  const double wall_span_s =
      std::max(offsets.empty() ? 0.0 : offsets.back(), 1e-6);
  double model_span = 0.0;
  for (const core::Task& t : original->tasks()) {
    model_span = std::max(model_span, t.start_time);
  }
  double model_min = model_span;
  for (const core::Task& t : original->tasks()) {
    model_min = std::min(model_min, t.start_time);
  }
  model_span -= model_min;
  const double time_scale =
      model_span > 0.0 ? model_span / wall_span_s : 1.0;

  std::vector<PacedTask> plan;
  auto instance = RewriteOntoSchedule(*original, offsets, time_scale, &plan);
  if (!instance.ok()) {
    std::fprintf(stderr, "rewrite failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }

  auto allocator =
      algo::CreateAllocator(algo_name, static_cast<uint64_t>(seed));
  if (!allocator.ok()) {
    std::fprintf(stderr, "%s\n", allocator.status().ToString().c_str());
    return Usage();
  }

  // 3. Telemetry plane + optional exposition endpoint.
  util::RegisterBuildInfoMetric();
  sim::MetricsTimeSeries timeseries;
  sim::WatchdogOptions watchdog_options;
  if (watchdog_heartbeat_ms > 0.0) {
    watchdog_options.heartbeat_timeout_ms = watchdog_heartbeat_ms;
  }
  sim::StallWatchdog watchdog(watchdog_options);
  sim::TaskTracer tracer;
  // Anomaly hook: pin the anomalous batch in the tracer so the traces that
  // rode through it are retained, and (with --flight-out) dump the black
  // box exactly once, on the first anomaly — the rings then hold the lead-up
  // to the first failure rather than the tail of the run.
  std::atomic<bool> flight_dumped{false};
  watchdog.SetOnAnomaly([&](const sim::WatchdogAnomaly& a) {
    tracer.FlagBatch(a.batch_seq);
    if (!flight_out.empty() && !flight_dumped.exchange(true)) {
      const util::Status dumped = util::FlightRecorder::Global().DumpToFile(
          flight_out, "watchdog:" + a.kind);
      if (dumped.ok()) {
        std::fprintf(stderr, "flight recorder dumped to %s (anomaly %s)\n",
                     flight_out.c_str(), a.kind.c_str());
      } else {
        std::fprintf(stderr, "%s\n", dumped.ToString().c_str());
      }
    }
  });
  util::MetricsHttpServer::Options server_options;
  server_options.port = static_cast<int>(serve_port);
  util::MetricsHttpServer server(server_options);
  if (serve_port >= 0) {
    const util::Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    std::printf("serving telemetry on 127.0.0.1:%d\n", server.port());
    std::fflush(stdout);
    std::fprintf(stderr, "serve_metrics_port=%d\n", server.port());
    std::fflush(stderr);
  }
  // The watchdog poll thread runs whenever anything can observe it: the
  // exposition endpoint, or the armed flight recorder.
  if (serve_port >= 0 || !flight_out.empty()) watchdog.Start();

  // 4. The service under test.
  sim::ServiceOptions service_options;
  service_options.time_scale = time_scale;
  service_options.min_batch_gap_ms = min_batch_gap_ms;
  service_options.max_batch_gap_ms = max_batch_gap_ms;
  service_options.inject_batch_delay_ms = inject_stall_ms;
  service_options.timeseries = &timeseries;
  service_options.watchdog = &watchdog;
  service_options.tracer = &tracer;
  sim::Service service(*instance, **allocator, service_options);
  service.Start();
  for (int w = 0; w < instance->num_workers(); ++w) {
    const util::Status submitted = service.SubmitWorker(w);
    if (!submitted.ok()) {
      std::fprintf(stderr, "%s\n", submitted.ToString().c_str());
      return 1;
    }
  }

  // 5. The open-loop send loop. The service's steady clock is the one true
  // clock: intended time i is plan[i].intended_s after the loop origin.
  std::vector<double> intended_wall(static_cast<size_t>(m), 0.0);
  util::LatencyRecorder send_lag;
  sim::LoadReport report;
  const double origin_s = service.ElapsedWallSeconds();
  const int depth_stride =
      std::max(1, static_cast<int>(plan.size()) / 256);
  double first_submit_s = 0.0;
  double last_submit_s = 0.0;
  for (size_t i = 0; i < plan.size(); ++i) {
    const double intended = origin_s + plan[i].intended_s;
    double now = service.ElapsedWallSeconds();
    // Coarse sleep to ~1 ms short of the intended instant, then a fine
    // spin; never skip a send, however late (open loop).
    while (now + 1e-3 < intended) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(intended - now - 1e-3, 0.050)));
      now = service.ElapsedWallSeconds();
    }
    while (now < intended) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      now = service.ElapsedWallSeconds();
    }
    const util::Status submitted = service.SubmitTask(plan[i].id);
    if (!submitted.ok()) {
      std::fprintf(stderr, "%s\n", submitted.ToString().c_str());
      return 1;
    }
    const double sent_at = service.ElapsedWallSeconds();
    intended_wall[static_cast<size_t>(plan[i].id)] = intended;
    send_lag.Record((sent_at - intended) * 1e3);
    if (i == 0) first_submit_s = sent_at;
    last_submit_s = sent_at;
    if (i % static_cast<size_t>(depth_stride) == 0) {
      report.queue_depth.push_back(
          {sent_at, static_cast<double>(service.ingest_queue_depth())});
    }
  }
  service.Drain();
  report.queue_depth.push_back(
      {service.ElapsedWallSeconds(),
       static_cast<double>(service.ingest_queue_depth())});

  // 6. Collect decisions and build the latency series.
  const std::vector<sim::DecisionRecord> decisions = service.TakeDecisions();
  util::LatencyRecorder e2e_intended;
  util::LatencyRecorder e2e_submit;
  std::vector<sim::LoadSample> samples;
  samples.reserve(decisions.size());
  for (const sim::DecisionRecord& d : decisions) {
    const double vs_intended =
        (d.decide_wall_s - intended_wall[static_cast<size_t>(d.task)]) * 1e3;
    const double vs_submit = (d.decide_wall_s - d.submit_wall_s) * 1e3;
    e2e_intended.Record(vs_intended);
    e2e_submit.Record(vs_submit);
    samples.push_back({vs_intended, d.served});
  }
  const sim::ServiceStats stats = service.stats();
  service.Shutdown();
  watchdog.Stop();

  // 7. Assemble the report.
  report.header.instance = instance_desc;
  report.header.algorithm = std::string((*allocator)->name());
  report.header.process = util::ArrivalProcessName(*process);
  report.header.seed = static_cast<uint64_t>(seed);
  const util::BuildInfo& build = util::GetBuildInfo();
  report.header.version = build.version;
  report.header.git_sha = build.git_sha;
  report.header.build_type = build.build_type;

  report.rates.offered_per_min = rate;
  report.rates.sent = stats.submitted_tasks;
  report.rates.duration_s = last_submit_s - origin_s;
  report.rates.time_scale = time_scale;
  const double send_span_s = last_submit_s - first_submit_s;
  report.rates.achieved_per_min =
      stats.submitted_tasks > 1 && send_span_s > 0.0
          ? static_cast<double>(stats.submitted_tasks - 1) * 60.0 /
                send_span_s
          : rate;
  report.rates.ratio =
      rate > 0.0 ? report.rates.achieved_per_min / rate : 0.0;

  report.latency.push_back(Summarize("e2e_intended", e2e_intended));
  report.latency.push_back(Summarize("e2e_submit", e2e_submit));
  report.latency.push_back(Summarize("send_lag", send_lag));

  report.service.batches = stats.batches;
  report.service.nonempty_batches = stats.nonempty_batches;
  report.service.served = stats.served;
  report.service.expired = stats.expired;
  report.service.unserved_rate =
      stats.submitted_tasks > 0
          ? static_cast<double>(stats.expired) /
                static_cast<double>(stats.submitted_tasks)
          : 0.0;
  report.service.allocator_seconds = stats.allocator_seconds;

  report.sketch = ReadServiceSketch(serve_port >= 0 ? server.port() : 0);

  // Reconciliation: the loadgen Hdr recorder and the service DDSketch saw
  // the identical decide-submit multiset through two structurally different
  // estimators; their p95s must agree within the combined relative errors
  // (plus slack for the two rank conventions landing one bucket apart).
  report.reconcile.loadgen_p95_ms = e2e_submit.Percentile(0.95);
  report.reconcile.service_p95_ms = report.sketch.p95_ms;
  report.reconcile.tolerance =
      e2e_submit.RelativeError() + 0.01 /* sketch alpha */ + 0.03;
  report.reconcile.rel_diff =
      std::abs(report.reconcile.loadgen_p95_ms -
               report.reconcile.service_p95_ms) /
      std::max(report.reconcile.service_p95_ms, 1e-9);
  report.reconcile.agree =
      report.reconcile.rel_diff <= report.reconcile.tolerance;

  sim::LoadSloDefinition latency_slo;
  latency_slo.name = "p99_e2e_ms";
  latency_slo.kind = sim::LoadSloDefinition::Kind::kLatencyQuantile;
  latency_slo.threshold_ms = slo_p99_ms;
  latency_slo.budget = 0.01;
  latency_slo.short_window = slo_short_window;
  sim::LoadSloDefinition unserved_slo;
  unserved_slo.name = "unserved_rate";
  unserved_slo.kind = sim::LoadSloDefinition::Kind::kUnservedRate;
  unserved_slo.budget = slo_unserved_budget;
  unserved_slo.short_window = slo_short_window;
  report.slos.push_back(sim::EvaluateLoadSlo(latency_slo, samples));
  report.slos.push_back(sim::EvaluateLoadSlo(unserved_slo, samples));

  for (const sim::WatchdogAnomaly& a : watchdog.anomalies()) {
    report.anomalies.push_back(
        {a.kind, a.batch_seq, a.value, a.threshold, a.wall_ms});
  }

  // 8. Emit.
  std::printf(
      "%s over %s: sent=%lld offered=%.0f/min achieved=%.0f/min "
      "(ratio %.3f)\n",
      report.header.algorithm.c_str(), report.header.process.c_str(),
      static_cast<long long>(report.rates.sent), rate,
      report.rates.achieved_per_min, report.rates.ratio);
  std::printf(
      "e2e (vs intended): p50=%.2fms p95=%.2fms p99=%.2fms p99.9=%.2fms "
      "max=%.2fms\n",
      e2e_intended.Percentile(0.5), e2e_intended.Percentile(0.95),
      e2e_intended.Percentile(0.99), e2e_intended.Percentile(0.999),
      e2e_intended.max());
  std::printf(
      "service: batches=%lld served=%lld expired=%lld unserved_rate=%.3f\n",
      static_cast<long long>(stats.batches),
      static_cast<long long>(stats.served),
      static_cast<long long>(stats.expired), report.service.unserved_rate);
  std::printf("reconcile p95: loadgen=%.3fms service=%.3fms (%s, diff %.2f%% "
              "tol %.2f%%)\n",
              report.reconcile.loadgen_p95_ms, report.reconcile.service_p95_ms,
              report.reconcile.agree ? "agree" : "DISAGREE",
              report.reconcile.rel_diff * 100.0,
              report.reconcile.tolerance * 100.0);
  for (const sim::LoadSloResult& slo : report.slos) {
    std::printf("slo %s: long_burn=%.2f short_burn=%.2f %s\n",
                slo.def.name.c_str(), slo.long_burn, slo.short_burn,
                slo.breached ? "BREACHED" : "ok");
  }
  if (!report.anomalies.empty()) {
    std::printf("watchdog anomalies: %zu\n", report.anomalies.size());
  }

  if (!report_out.empty()) {
    std::ofstream out(report_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", report_out.c_str());
      return 1;
    }
    sim::WriteLoadReportJsonl(out, report);
    std::printf("load report written to %s\n", report_out.c_str());
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    sim::RunReportHeader header;
    header.kind = "loadgen";
    header.instance = instance_desc;
    sim::RunStats run_stats;
    run_stats.algorithm = report.header.algorithm;
    run_stats.batches = static_cast<int>(stats.batches);
    run_stats.nonempty_batches = static_cast<int>(stats.nonempty_batches);
    run_stats.completed_tasks = static_cast<int>(stats.served);
    run_stats.score = static_cast<int>(stats.served);
    run_stats.millis = stats.allocator_seconds * 1e3;
    run_stats.total_tasks = static_cast<int>(stats.submitted_tasks);
    sim::RunReportExtras extras;
    extras.timeseries = &timeseries;
    extras.watchdog = &watchdog;
    extras.tracer = &tracer;
    sim::WriteRunReportJsonl(out, header, {run_stats}, util::GlobalMetrics(),
                             extras);
    const sim::TaskTracerStats tstats = tracer.stats();
    std::printf(
        "trace report written to %s (%lld traces retained: %lld head, "
        "%lld tail, %lld flagged)\n",
        trace_out.c_str(), static_cast<long long>(tstats.traces_retained),
        static_cast<long long>(tstats.head_retained),
        static_cast<long long>(tstats.tail_retained),
        static_cast<long long>(tstats.flagged_retained));
  }
  server.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
