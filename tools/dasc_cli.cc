// dasc_cli — command-line front end to the DA-SC library.
//
//   dasc_cli generate synthetic <out.dasc> [--seed=N] [--workers=N]
//            [--tasks=N] [--skills=N] [--dep-max=N]
//   dasc_cli generate meetup <out.dasc> [--seed=N] [--workers=N] [--tasks=N]
//   dasc_cli stats <in.dasc>
//   dasc_cli solve <in.dasc> <algo> [--seed=N] [--out=assignment.csv]
//   dasc_cli simulate <in.dasc> <algo> [--seed=N] [--interval=F]
//
// Instances use the dasc-instance v1 text format (src/io/instance_io.h);
// algorithm names are the registry names (dasc_cli solve --help lists them).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "algo/registry.h"
#include "core/workload_stats.h"
#include "gen/meetup.h"
#include "gen/synthetic.h"
#include "graph/dag_stats.h"
#include "io/instance_io.h"
#include "io/svg_render.h"
#include "sim/metrics.h"
#include "util/timer.h"

namespace {

using namespace dasc;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dasc_cli generate synthetic <out> [--seed= --workers= "
               "--tasks= --skills= --dep-max=]\n"
               "  dasc_cli generate meetup <out> [--seed= --workers= "
               "--tasks=]\n"
               "  dasc_cli stats <in>\n"
               "  dasc_cli solve <in> <algo> [--seed= --out= --now=]\n"
               "  dasc_cli simulate <in> <algo> [--seed= --interval=]\n"
               "  dasc_cli render <in> <out.svg>\n"
               "algorithms:");
  for (const auto& name : algo::KnownAllocatorNames()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

// --key=value flag lookup over argv[from..).
const char* FlagValue(int argc, char** argv, int from, const char* key) {
  const size_t len = std::strlen(key);
  for (int i = from; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

int64_t IntFlag(int argc, char** argv, int from, const char* key,
                int64_t fallback) {
  const char* v = FlagValue(argc, argv, from, key);
  return v ? std::strtoll(v, nullptr, 10) : fallback;
}

double DoubleFlag(int argc, char** argv, int from, const char* key,
                  double fallback) {
  const char* v = FlagValue(argc, argv, from, key);
  return v ? std::strtod(v, nullptr) : fallback;
}

int Generate(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string family = argv[2];
  const std::string out_path = argv[3];
  util::Result<core::Instance> instance =
      util::Status::InvalidArgument("unknown family: " + family);
  if (family == "synthetic") {
    gen::SyntheticParams params;
    params.seed = static_cast<uint64_t>(IntFlag(argc, argv, 4, "--seed", 42));
    params.num_workers =
        static_cast<int>(IntFlag(argc, argv, 4, "--workers", 5000));
    params.num_tasks =
        static_cast<int>(IntFlag(argc, argv, 4, "--tasks", 5000));
    params.num_skills =
        static_cast<int>(IntFlag(argc, argv, 4, "--skills", 1500));
    params.dependency_size.hi =
        static_cast<int>(IntFlag(argc, argv, 4, "--dep-max", 70));
    instance = gen::GenerateSynthetic(params);
  } else if (family == "meetup") {
    gen::MeetupParams params;
    params.seed = static_cast<uint64_t>(IntFlag(argc, argv, 4, "--seed", 42));
    params.num_workers =
        static_cast<int>(IntFlag(argc, argv, 4, "--workers", 3525));
    params.num_tasks =
        static_cast<int>(IntFlag(argc, argv, 4, "--tasks", 1282));
    instance = gen::GenerateMeetup(params);
  }
  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
    return 1;
  }
  const util::Status written = io::WriteInstanceFile(*instance, out_path);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %d workers, %d tasks, %d skills\n", out_path.c_str(),
              instance->num_workers(), instance->num_tasks(),
              instance->num_skills());
  return 0;
}

int Stats(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto instance = io::ReadInstanceFile(argv[2]);
  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n",
              core::AnalyzeWorkload(*instance).ToString().c_str());
  graph::Dag dag(instance->num_tasks());
  for (const core::Task& t : instance->tasks()) {
    for (core::TaskId d : t.dependencies) dag.AddDependency(t.id, d);
  }
  auto stats = graph::ComputeDagStats(dag);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", stats->ToString().c_str());
  return 0;
}

int Solve(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto instance = io::ReadInstanceFile(argv[2]);
  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
    return 1;
  }
  const auto seed =
      static_cast<uint64_t>(IntFlag(argc, argv, 4, "--seed", 42));
  auto allocator = algo::CreateAllocator(argv[3], seed);
  if (!allocator.ok()) {
    std::fprintf(stderr, "%s\n", allocator.status().ToString().c_str());
    return Usage();
  }
  // Single-batch solve at --now (default 0). Tasks/workers that have not
  // arrived by then are excluded — use `simulate` for dynamic timelines.
  const double now = DoubleFlag(argc, argv, 4, "--now", 0.0);
  core::BatchProblem problem = core::BatchProblem::AllAt(*instance, now);
  util::WallTimer timer;
  const core::Assignment raw = (*allocator)->Allocate(problem);
  const double millis = timer.ElapsedMillis();
  const core::Assignment valid = core::ValidPairs(problem, raw);
  std::printf("%s: score=%d (of %d tasks) at t=%g in %.2f ms\n",
              std::string((*allocator)->name()).c_str(), valid.size(),
              instance->num_tasks(), now, millis);
  if (valid.empty()) {
    std::printf(
        "hint: dynamic instances need `simulate`; `solve` only sees tasks "
        "open at t=%g\n",
        now);
  }
  if (const char* out_path = FlagValue(argc, argv, 4, "--out")) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
    io::WriteAssignment(valid, out);
    std::printf("assignment written to %s\n", out_path);
  }
  return 0;
}

int Render(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto instance = io::ReadInstanceFile(argv[2]);
  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
    return 1;
  }
  const util::Status written =
      io::RenderInstanceSvgFile(*instance, argv[3]);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("rendered %d workers / %d tasks to %s\n",
              instance->num_workers(), instance->num_tasks(), argv[3]);
  return 0;
}

int Simulate(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto instance = io::ReadInstanceFile(argv[2]);
  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
    return 1;
  }
  const auto seed =
      static_cast<uint64_t>(IntFlag(argc, argv, 4, "--seed", 42));
  auto allocator = algo::CreateAllocator(argv[3], seed);
  if (!allocator.ok()) {
    std::fprintf(stderr, "%s\n", allocator.status().ToString().c_str());
    return Usage();
  }
  sim::SimulatorOptions options;
  options.batch_interval = DoubleFlag(argc, argv, 4, "--interval", 5.0);
  sim::Simulator simulator(*instance, options);
  const sim::SimulationResult result = simulator.Run(**allocator);
  std::printf(
      "%s: score=%d completed=%d batches=%d (non-empty %d) wasted=%d\n"
      "allocator time=%.2f ms, last completion t=%.2f\n",
      std::string((*allocator)->name()).c_str(), result.score,
      result.completed_tasks, result.batches, result.nonempty_batches,
      result.wasted_dispatches, result.allocator_seconds * 1e3,
      result.last_completion_time);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return Generate(argc, argv);
  if (command == "stats") return Stats(argc, argv);
  if (command == "solve") return Solve(argc, argv);
  if (command == "simulate") return Simulate(argc, argv);
  if (command == "render") return Render(argc, argv);
  return Usage();
}
