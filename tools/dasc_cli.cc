// dasc_cli — command-line front end to the DA-SC library.
//
//   dasc_cli generate synthetic <out.dasc> [--seed=N] [--workers=N]
//            [--tasks=N] [--skills=N] [--dep-max=N]
//   dasc_cli generate meetup <out.dasc> [--seed=N] [--workers=N] [--tasks=N]
//   dasc_cli stats <in.dasc>
//   dasc_cli solve <in.dasc> <algo> [--seed=N] [--out=assignment.csv]
//            [--now=F] [--metrics-out=report.jsonl] [--trace-out=trace.json]
//   dasc_cli simulate <in.dasc> <algo> [--seed=N] [--interval=F] [--audit]
//            [--ledger] [--explain=tasks.jsonl]
//            [--metrics-out=report.jsonl] [--trace-out=trace.json]
//            [--events-out=events.jsonl] [--serve-metrics=PORT]
//   dasc_cli render <in.dasc> <out.svg>
//
// Observability outputs:
//   --audit         run the allocation auditor (sim/audit.h) on every batch:
//                   independent constraint re-validation plus the
//                   dependency-relaxed optimality gap, reported in the run
//                   report's audit fields (and aborting on any violation).
//                   With --ledger it also cross-checks every recorded
//                   unserved reason against its own shadow derivation.
//   --ledger        keep the per-task lifecycle ledger (sim/ledger.h): every
//                   unserved task gets one reason from the closed failure
//                   taxonomy, summarized on stdout and written as the run
//                   report's ledger block.
//   --explain       dump the per-task ledger as JSONL (one "task" line per
//                   task) to the given path; implies --ledger.
//   --metrics-out   JSONL run report (schema dasc-run-report/3): run header,
//                   per-run stats, ledger block (when --ledger), and the
//                   full metrics-registry dump.
//   --trace-out     Chrome/Perfetto trace_event JSON of the instrumented
//                   spans (open at https://ui.perfetto.dev).
//   --events-out    simulation event stream (dispatch/camp/completion plus
//                   arrival/expired lifecycle events) as JSONL, one object
//                   per event with its batch_seq.
//   --serve-metrics serve live telemetry on 127.0.0.1:PORT while the run is
//                   in flight (0 = ephemeral; the resolved port is printed
//                   and flushed before the run starts): Prometheus text at
//                   /metrics, the JSON registry snapshot at /snapshot,
//                   windowed sketch quantiles at /window. Also starts the
//                   stall watchdog poll thread (sim/watchdog.h).
//
// Instances use the dasc-instance v1 text format (src/io/instance_io.h);
// algorithm names are the registry names (dasc_cli solve --help lists them).
// Every subcommand parses flags through one shared util::FlagParser loop, so
// unknown or malformed flags are usage errors rather than silently ignored.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "core/workload_stats.h"
#include "gen/meetup.h"
#include "gen/synthetic.h"
#include "graph/dag_stats.h"
#include "io/instance_io.h"
#include "io/svg_render.h"
#include "sim/metrics.h"
#include "sim/metrics_timeseries.h"
#include "sim/run_report.h"
#include "sim/task_trace.h"
#include "sim/watchdog.h"
#include "util/build_info.h"
#include "util/flags.h"
#include "util/http_server.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/tracing.h"

namespace {

using namespace dasc;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  dasc_cli generate synthetic <out> [--seed= --workers= "
      "--tasks= --skills= --dep-max=]\n"
      "  dasc_cli generate meetup <out> [--seed= --workers= --tasks=]\n"
      "  dasc_cli stats <in>\n"
      "  dasc_cli solve <in> <algo> [--seed= --out= --now= --metrics-out= "
      "--trace-out=]\n"
      "  dasc_cli simulate <in> <algo> [--seed= --interval= --audit --ledger "
      "--explain= --metrics-out= --trace-out= --events-out= "
      "--serve-metrics=]\n"
      "  dasc_cli render <in> <out.svg>\n"
      "algorithms:");
  for (const auto& name : algo::KnownAllocatorNames()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

// Parses argv[2..) (everything after the subcommand) with `parser`, expecting
// exactly `num_positional` positional operands. Prints the parse error on
// failure; callers return Usage(). The single path every subcommand funnels
// through — this is what makes unknown flags hard errors everywhere.
bool ParseSubcommand(util::FlagParser& parser, int argc, char** argv,
                     size_t num_positional) {
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
  const util::Status status = parser.Parse(args);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return false;
  }
  return parser.positional().size() == num_positional;
}

// Opens `path` for writing or reports the failure.
bool OpenOut(const std::string& path, std::ofstream* out) {
  out->open(path);
  if (!*out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

int Generate(int argc, char** argv) {
  util::FlagParser parser;
  int64_t seed = 42;
  int64_t workers = -1;  // -1: family default below
  int64_t tasks = -1;
  int64_t skills = 1500;
  int64_t dep_max = 70;
  parser.AddInt("seed", &seed, "RNG seed");
  parser.AddInt("workers", &workers, "worker count (-1 = family default)");
  parser.AddInt("tasks", &tasks, "task count (-1 = family default)");
  parser.AddInt("skills", &skills, "skill universe size (synthetic)");
  parser.AddInt("dep-max", &dep_max, "max dependency set size (synthetic)");
  if (!ParseSubcommand(parser, argc, argv, 2)) return Usage();
  const std::string& family = parser.positional()[0];
  const std::string& out_path = parser.positional()[1];

  util::Result<core::Instance> instance =
      util::Status::InvalidArgument("unknown family: " + family);
  if (family == "synthetic") {
    gen::SyntheticParams params;
    params.seed = static_cast<uint64_t>(seed);
    params.num_workers = static_cast<int>(workers < 0 ? 5000 : workers);
    params.num_tasks = static_cast<int>(tasks < 0 ? 5000 : tasks);
    params.num_skills = static_cast<int>(skills);
    params.dependency_size.hi = static_cast<int>(dep_max);
    instance = gen::GenerateSynthetic(params);
  } else if (family == "meetup") {
    gen::MeetupParams params;
    params.seed = static_cast<uint64_t>(seed);
    params.num_workers = static_cast<int>(workers < 0 ? 3525 : workers);
    params.num_tasks = static_cast<int>(tasks < 0 ? 1282 : tasks);
    instance = gen::GenerateMeetup(params);
  }
  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
    return 1;
  }
  const util::Status written = io::WriteInstanceFile(*instance, out_path);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %d workers, %d tasks, %d skills\n", out_path.c_str(),
              instance->num_workers(), instance->num_tasks(),
              instance->num_skills());
  return 0;
}

int Stats(int argc, char** argv) {
  util::FlagParser parser;
  if (!ParseSubcommand(parser, argc, argv, 1)) return Usage();
  auto instance = io::ReadInstanceFile(parser.positional()[0]);
  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", core::AnalyzeWorkload(*instance).ToString().c_str());
  graph::Dag dag(instance->num_tasks());
  for (const core::Task& t : instance->tasks()) {
    for (core::TaskId d : t.dependencies) dag.AddDependency(t.id, d);
  }
  auto stats = graph::ComputeDagStats(dag);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", stats->ToString().c_str());
  return 0;
}

int Solve(int argc, char** argv) {
  util::FlagParser parser;
  int64_t seed = 42;
  double now = 0.0;
  std::string out_path;
  std::string metrics_out;
  std::string trace_out;
  parser.AddInt("seed", &seed, "allocator RNG seed");
  parser.AddDouble("now", &now, "solve time (tasks/workers open at t=now)");
  parser.AddString("out", &out_path, "write the valid assignment as CSV");
  parser.AddString("metrics-out", &metrics_out, "write a JSONL run report");
  parser.AddString("trace-out", &trace_out, "write a Perfetto trace JSON");
  if (!ParseSubcommand(parser, argc, argv, 2)) return Usage();
  auto instance = io::ReadInstanceFile(parser.positional()[0]);
  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
    return 1;
  }
  auto allocator =
      algo::CreateAllocator(parser.positional()[1], static_cast<uint64_t>(seed));
  if (!allocator.ok()) {
    std::fprintf(stderr, "%s\n", allocator.status().ToString().c_str());
    return Usage();
  }
  // Single-batch solve at --now (default 0). Tasks/workers that have not
  // arrived by then are excluded — use `simulate` for dynamic timelines.
  if (!trace_out.empty()) util::StartTracing();
  core::BatchProblem problem = core::BatchProblem::AllAt(*instance, now);
  util::WallTimer timer;
  const core::Assignment raw = (*allocator)->Allocate(problem);
  const double millis = timer.ElapsedMillis();
  if (!trace_out.empty()) util::StopTracing();
  const core::Assignment valid = core::ValidPairs(problem, raw);
  std::printf("%s: score=%d (of %d tasks) at t=%g in %.2f ms\n",
              std::string((*allocator)->name()).c_str(), valid.size(),
              instance->num_tasks(), now, millis);
  if (valid.empty()) {
    std::printf(
        "hint: dynamic instances need `simulate`; `solve` only sees tasks "
        "open at t=%g\n",
        now);
  }
  if (!out_path.empty()) {
    std::ofstream out;
    if (!OpenOut(out_path, &out)) return 1;
    io::WriteAssignment(valid, out);
    std::printf("assignment written to %s\n", out_path.c_str());
  }
  if (!trace_out.empty()) {
    std::ofstream out;
    if (!OpenOut(trace_out, &out)) return 1;
    util::WriteChromeTrace(out);
  }
  if (!metrics_out.empty()) {
    std::ofstream out;
    if (!OpenOut(metrics_out, &out)) return 1;
    sim::RunStats stats;
    stats.algorithm = std::string((*allocator)->name());
    stats.score = valid.size();
    stats.millis = millis;
    stats.batches = 1;
    stats.nonempty_batches = 1;
    sim::RunReportHeader header;
    header.kind = "solve";
    header.instance = parser.positional()[0];
    sim::WriteRunReportJsonl(out, header, {stats}, util::GlobalMetrics());
  }
  return 0;
}

int Render(int argc, char** argv) {
  util::FlagParser parser;
  if (!ParseSubcommand(parser, argc, argv, 2)) return Usage();
  auto instance = io::ReadInstanceFile(parser.positional()[0]);
  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
    return 1;
  }
  const util::Status written =
      io::RenderInstanceSvgFile(*instance, parser.positional()[1]);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("rendered %d workers / %d tasks to %s\n",
              instance->num_workers(), instance->num_tasks(),
              parser.positional()[1].c_str());
  return 0;
}

int Simulate(int argc, char** argv) {
  util::FlagParser parser;
  int64_t seed = 42;
  double interval = 5.0;
  bool audit = false;
  bool ledger = false;
  std::string explain_out;
  std::string metrics_out;
  std::string trace_out;
  std::string events_out;
  int64_t serve_port = -1;
  parser.AddInt("seed", &seed, "allocator RNG seed");
  parser.AddDouble("interval", &interval, "platform batch interval");
  parser.AddInt("serve-metrics", &serve_port,
                "serve live telemetry on 127.0.0.1:PORT while the run is in "
                "flight (0 = pick an ephemeral port; printed on stdout)");
  parser.AddBool("audit", &audit,
                 "audit every batch (constraint re-check + optimality gap)");
  parser.AddBool("ledger", &ledger,
                 "keep the per-task lifecycle ledger (unserved-task taxonomy)");
  parser.AddString("explain", &explain_out,
                   "dump the per-task ledger as JSONL (implies --ledger)");
  parser.AddString("metrics-out", &metrics_out, "write a JSONL run report");
  parser.AddString("trace-out", &trace_out, "write a Perfetto trace JSON");
  parser.AddString("events-out", &events_out,
                   "write the simulation event stream as JSONL");
  std::string candidates = "scratch";
  bool verify_candidates = false;
  parser.AddString("candidates", &candidates,
                   "candidate construction: scratch (per-batch rebuild) or "
                   "incremental (O(delta) maintained view, DESIGN.md §17)");
  parser.AddBool("verify-candidates", &verify_candidates,
                 "with --candidates=incremental, cross-check the view "
                 "against a from-scratch rebuild every batch");
  if (!ParseSubcommand(parser, argc, argv, 2)) return Usage();
  auto instance = io::ReadInstanceFile(parser.positional()[0]);
  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
    return 1;
  }
  auto allocator =
      algo::CreateAllocator(parser.positional()[1], static_cast<uint64_t>(seed));
  if (!allocator.ok()) {
    std::fprintf(stderr, "%s\n", allocator.status().ToString().c_str());
    return Usage();
  }
  sim::SimulatorOptions options;
  options.batch_interval = interval;
  options.audit = audit;
  options.ledger = ledger || !explain_out.empty();
  if (candidates == "incremental") {
    options.candidates = sim::SimulatorOptions::CandidateMode::kIncremental;
    options.verify_candidates = verify_candidates;
  } else if (candidates != "scratch") {
    std::fprintf(stderr, "unknown --candidates=%s (scratch|incremental)\n",
                 candidates.c_str());
    return Usage();
  }
  sim::Trace trace;
  if (!events_out.empty()) options.trace = &trace;
  // The live-telemetry plane (DESIGN.md §14): the time series and watchdog
  // ride along on every simulate run (their per-batch cost is a registry
  // snapshot), so the /4 run report always carries both blocks; the HTTP
  // endpoint and the watchdog poll thread only start when requested.
  sim::MetricsTimeSeries timeseries;
  sim::StallWatchdog watchdog;
  options.timeseries = &timeseries;
  options.watchdog = &watchdog;
  // Causal task traces ride along the same way: head/tail/flagged-sampled
  // per-task traces plus per-batch phase records, serialized as the /5
  // trace block of the run report (dasc_report trace analyzes them).
  sim::TaskTracer tracer;
  options.tracer = &tracer;
  util::MetricsHttpServer::Options server_options;
  server_options.port = static_cast<int>(serve_port);
  util::MetricsHttpServer server(server_options);
  if (serve_port >= 0) {
    util::RegisterBuildInfoMetric();
    const util::Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    // Flushed immediately so a scraper launched alongside can read the
    // resolved port while the run is still in flight. The stderr twin is
    // the machine-parsable one (key=value, stable across human-facing
    // wording changes) for wrappers that capture stdout for results.
    std::printf("serving telemetry on 127.0.0.1:%d\n", server.port());
    std::fflush(stdout);
    std::fprintf(stderr, "serve_metrics_port=%d\n", server.port());
    std::fflush(stderr);
    watchdog.Start();
  }
  if (!trace_out.empty()) util::StartTracing();
  const sim::RunStats stats =
      sim::MeasureSimulation(*instance, options, **allocator);
  if (!trace_out.empty()) util::StopTracing();
  watchdog.Stop();
  std::printf(
      "%s: score=%d completed=%d batches=%d (non-empty %d) wasted=%d\n"
      "allocator time=%.2f ms, last completion t=%.2f\n",
      stats.algorithm.c_str(), stats.score, stats.completed_tasks,
      stats.batches, stats.nonempty_batches, stats.wasted_dispatches,
      stats.millis, stats.last_completion_time);
  if (audit) {
    std::printf(
        "audit: batches=%d approx_ratio=%.3f min_gap=%.3f mean_gap=%.3f "
        "violations=%d\n",
        stats.audited_batches, stats.approx_ratio, stats.min_batch_gap,
        stats.mean_batch_gap, stats.audit_violations);
  }
  if (stats.candidate_checks > 0) {
    std::printf("candidates: checks=%lld mismatches=%lld\n",
                static_cast<long long>(stats.candidate_checks),
                static_cast<long long>(stats.candidate_mismatches));
  }
  if (options.ledger) {
    std::printf("unserved: %d of %d tasks",
                stats.total_tasks - stats.completed_tasks, stats.total_tasks);
    for (size_t r = 1; r < stats.unserved_by_reason.size(); ++r) {
      if (stats.unserved_by_reason[r] == 0) continue;
      std::printf(
          " %s=%lld",
          sim::UnservedReasonName(static_cast<sim::UnservedReason>(r)),
          static_cast<long long>(stats.unserved_by_reason[r]));
    }
    if (audit) std::printf(" (ledger mismatches=%d)", stats.ledger_mismatches);
    std::printf("\n");
  }
  if (!explain_out.empty()) {
    std::ofstream out;
    if (!OpenOut(explain_out, &out)) return 1;
    for (const sim::TaskLedgerEntry& entry : stats.ledger) {
      sim::WriteTaskEntryJsonl(out, stats.algorithm, entry);
    }
    std::printf("per-task ledger written to %s\n", explain_out.c_str());
  }
  if (!trace_out.empty()) {
    std::ofstream out;
    if (!OpenOut(trace_out, &out)) return 1;
    util::WriteChromeTrace(out);
  }
  if (!events_out.empty()) {
    std::ofstream out;
    if (!OpenOut(events_out, &out)) return 1;
    trace.WriteJsonl(out);
  }
  if (!metrics_out.empty()) {
    std::ofstream out;
    if (!OpenOut(metrics_out, &out)) return 1;
    sim::RunReportHeader header;
    header.kind = "simulate";
    header.instance = parser.positional()[0];
    sim::RunReportExtras extras;
    extras.timeseries = &timeseries;
    extras.watchdog = &watchdog;
    extras.tracer = &tracer;
    sim::WriteRunReportJsonl(out, header, {stats}, util::GlobalMetrics(),
                             extras);
  }
  server.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return Generate(argc, argv);
  if (command == "stats") return Stats(argc, argv);
  if (command == "solve") return Solve(argc, argv);
  if (command == "simulate") return Simulate(argc, argv);
  if (command == "render") return Render(argc, argv);
  return Usage();
}
