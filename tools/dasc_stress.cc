// dasc_stress: property-based conformance sweep over generated instances.
//
//   dasc_stress --seeds=1000                      # all families, all oracles
//   dasc_stress --family=knife-edge --oracle=validity --allocator=greedy,gg
//   dasc_stress --replay=tests/repros/repro-....txt
//   dasc_stress --list
//
// Exit codes: 0 = every check passed (or a replayed repro no longer fails),
// 1 = property violation (repro paths printed), 2 = usage error.
#include <cstdio>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "testing/harness.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace {

using dasc::testing::AllFamilies;
using dasc::testing::AllOracleNames;
using dasc::testing::AllOracles;
using dasc::testing::Family;
using dasc::testing::FamilyFromName;
using dasc::testing::FamilyName;

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string token =
        csv.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!token.empty()) out.push_back(token);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int ListEverything() {
  std::printf("families:\n");
  for (Family f : AllFamilies()) std::printf("  %s\n", FamilyName(f));
  std::printf("oracles:\n");
  for (const auto& o : AllOracles()) {
    std::printf("  %-18s %s\n", o.name.c_str(), o.description.c_str());
  }
  std::printf("allocators:\n");
  for (const std::string& a : dasc::algo::KnownAllocatorNames()) {
    std::printf("  %s\n", a.c_str());
  }
  return 0;
}

int Replay(const std::string& path) {
  const dasc::util::Status status = dasc::testing::ReplayRepro(path);
  if (status.ok()) {
    std::printf("replay: %s no longer fails\n", path.c_str());
    return 0;
  }
  if (status.code() == dasc::util::StatusCode::kFailedPrecondition) {
    std::printf("replay: %s skipped: %s\n", path.c_str(),
                status.message().c_str());
    return 0;
  }
  std::printf("replay: %s REPRODUCES: %s\n", path.c_str(),
              status.message().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  dasc::util::FlagParser parser;
  int64_t seeds = 200, base_seed = 1, allocator_seed = 42;
  int64_t threads = 0, max_failures = 8, shrink_evals = 4000;
  int64_t dfs_max_tasks = 12;
  double dfs_time_limit = 2.0, tightness = 0.4;
  bool shrink = true, inject_dep_bug = false, inject_stale_candidate = false,
       list = false;
  std::string family_csv = "all", oracle_csv = "all", allocator_csv;
  std::string repro_dir = "tests/repros", replay_path;

  parser.AddInt("seeds", &seeds, "cases per family");
  parser.AddInt("base-seed", &base_seed, "first case seed");
  parser.AddString("family", &family_csv,
                   "comma-separated generator families, or 'all'");
  parser.AddString("oracle", &oracle_csv,
                   "comma-separated oracle names, or 'all'");
  parser.AddString("allocator", &allocator_csv,
                   "comma-separated allocator names (default: all but dfs)");
  parser.AddInt("allocator-seed", &allocator_seed, "allocator RNG seed");
  parser.AddDouble("tightness", &tightness,
                   "spatio-temporal tightness in [0,1]");
  parser.AddBool("shrink", &shrink,
                 "minimize failures and write tests/repros files");
  parser.AddInt("shrink-evals", &shrink_evals,
                "max predicate evaluations per shrink");
  parser.AddString("repro-dir", &repro_dir, "where to write repro files");
  parser.AddInt("max-failures", &max_failures,
                "stop scheduling cases after this many failures");
  parser.AddInt("dfs-max-tasks", &dfs_max_tasks,
                "DFS-backed oracles skip instances above this task count");
  parser.AddDouble("dfs-time-limit", &dfs_time_limit,
                   "DFS search budget in seconds");
  parser.AddBool("inject-dep-bug", &inject_dep_bug,
                 "TEST ONLY: commit pairs without the dependency check");
  parser.AddBool("inject-stale-candidate", &inject_stale_candidate,
                 "TEST ONLY: drop one retraction in the incremental "
                 "candidate view");
  parser.AddInt("threads", &threads, "worker threads (0 = default)");
  parser.AddString("replay", &replay_path,
                   "replay a tests/repros file instead of sweeping");
  parser.AddBool("list", &list, "list families, oracles, and allocators");

  const dasc::util::Status parsed = parser.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n%s", parsed.ToString().c_str(),
                 parser.HelpText().c_str());
    return 2;
  }
  if (list) return ListEverything();
  dasc::util::SetThreads(static_cast<int>(threads));
  if (!replay_path.empty()) return Replay(replay_path);

  dasc::testing::StressOptions options;
  options.seeds = static_cast<int>(seeds);
  options.base_seed = static_cast<uint64_t>(base_seed);
  options.allocator_seed = static_cast<uint64_t>(allocator_seed);
  options.gen.tightness = tightness;
  options.shrink = shrink;
  options.shrink_options.max_predicate_evals = static_cast<int>(shrink_evals);
  options.repro_dir = repro_dir;
  options.max_failures = static_cast<int>(max_failures);
  options.dfs_max_tasks = static_cast<int>(dfs_max_tasks);
  options.dfs_time_limit_seconds = dfs_time_limit;
  options.inject_dependency_bug = inject_dep_bug;
  options.inject_stale_candidate = inject_stale_candidate;

  if (family_csv != "all") {
    options.families.clear();
    for (const std::string& name : SplitCsv(family_csv)) {
      Family family;
      if (!FamilyFromName(name, &family)) {
        std::fprintf(stderr, "unknown family '%s' (see --list)\n",
                     name.c_str());
        return 2;
      }
      options.families.push_back(family);
    }
  }
  if (oracle_csv != "all") {
    for (const std::string& name : SplitCsv(oracle_csv)) {
      if (dasc::testing::FindOracle(name) == nullptr) {
        std::fprintf(stderr, "unknown oracle '%s' (see --list)\n",
                     name.c_str());
        return 2;
      }
      options.oracles.push_back(name);
    }
  }
  if (!allocator_csv.empty()) options.allocators = SplitCsv(allocator_csv);

  const dasc::testing::StressReport report =
      dasc::testing::RunStress(options);
  std::printf("stress: %lld cases, %lld checks, %lld skips, %zu failures\n",
              static_cast<long long>(report.cases),
              static_cast<long long>(report.checks),
              static_cast<long long>(report.skips), report.failures.size());
  for (const auto& f : report.failures) {
    std::printf("FAIL [%s/%s seed=%llu] %s\n", FamilyName(f.family),
                f.oracle.c_str(), static_cast<unsigned long long>(f.case_seed),
                f.message.c_str());
    if (!f.repro_path.empty()) {
      std::printf(
          "     shrunk %dw x %dt -> %dw x %dt, repro: %s\n",
          f.original_workers, f.original_tasks, f.shrunk_workers,
          f.shrunk_tasks, f.repro_path.c_str());
    }
  }
  return report.ok() ? 0 : 1;
}
