#!/usr/bin/env python3
"""Schema and invariant validation for dasc-load-report/1 artifacts
(DESIGN.md section 15.5).

Reads the JSONL file a `dasc_loadgen --report-out=...` run produced and
checks, line by line and across lines:

  * the load_run header leads the file with the exact schema string and a
    build-provenance block (version / git_sha / build_type all non-empty);
  * exactly one rates / service_stats / service_sketch / reconcile line,
    with offered > 0, sent > 0, and achieved/offered consistent with the
    recorded ratio;
  * the three latency series (e2e_intended, e2e_submit, send_lag) each
    present with count == sent and non-decreasing quantile ladders
    p50 <= p95 <= p99 <= p99.9 <= max;
  * coordinated-omission sanity: e2e_intended quantiles dominate
    e2e_submit's (intended time <= submit time for every task, so the
    CO-corrected latency can never be smaller at equal rank);
  * the reconcile verdict recomputes from its own fields (rel_diff vs
    tolerance => agree), and the loadgen/service p95s being compared match
    the latency and sketch lines they came from;
  * every slo line recomputes (burn = bad / budget; breached iff both
    windows burn >= 1) and the anomalies count matches the anomaly lines;
  * at least one queue_depth sample, with finite non-negative depths.

Optional gates for ctest wiring:
  --min-rate-ratio R   fail when achieved/offered < R (open-loop pacing)
  --expect-agree       fail when the reconcile line says the estimators
                       disagreed
  --expect-breach NAME fail unless the named SLO is recorded as breached
                       (used by the seeded-stall test to prove the SLO
                       machinery detects the violation it injected)

Stdlib only; exits nonzero with a reason on the first violation.
"""

import argparse
import json
import math
import sys


def fail(message):
    print(f"check_load_report: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load_lines(path):
    lines = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, raw in enumerate(handle, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError as error:
                fail(f"line {number} is not JSON: {error}")
            if "type" not in obj:
                fail(f"line {number} has no type field")
            lines.append((number, obj))
    if not lines:
        fail("report is empty")
    return lines


def index_by_type(lines):
    by_type = {}
    for number, obj in lines:
        by_type.setdefault(obj["type"], []).append((number, obj))
    return by_type


def single(by_type, kind):
    entries = by_type.get(kind, [])
    if len(entries) != 1:
        fail(f"expected exactly one {kind} line, found {len(entries)}")
    return entries[0][1]


def check_quantile_ladder(series):
    ladder = [
        ("p50_ms", series["p50_ms"]),
        ("p95_ms", series["p95_ms"]),
        ("p99_ms", series["p99_ms"]),
        ("p999_ms", series["p999_ms"]),
        ("max_ms", series["max_ms"]),
    ]
    for (lo_name, lo), (hi_name, hi) in zip(ladder, ladder[1:]):
        if not (math.isfinite(lo) and math.isfinite(hi)):
            fail(f"{series['series']}: non-finite quantile {lo_name}/{hi_name}")
        # max_ms is exact while the quantiles are bucket representatives
        # that can overshoot it by the recorder's relative error.
        slack = 1.01 if hi_name == "max_ms" else 1.0
        if lo > hi * slack:
            fail(
                f"{series['series']}: quantile ladder inverted "
                f"({lo_name}={lo} > {hi_name}={hi})"
            )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", required=True)
    parser.add_argument("--min-rate-ratio", type=float, default=None)
    parser.add_argument("--expect-agree", action="store_true")
    parser.add_argument("--expect-breach", default=None)
    args = parser.parse_args()

    lines = load_lines(args.report)
    first = lines[0][1]
    if first["type"] != "load_run":
        fail(f"first line must be load_run, got {first['type']}")
    if first.get("schema") != "dasc-load-report/1":
        fail(f"unexpected schema {first.get('schema')!r}")
    build = first.get("build")
    if not isinstance(build, dict):
        fail("load_run header has no build block")
    for key in ("version", "git_sha", "build_type"):
        if not build.get(key):
            fail(f"build block missing {key}")
    for key in ("instance", "algorithm", "process"):
        if not first.get(key):
            fail(f"load_run header missing {key}")

    by_type = index_by_type(lines)
    rates = single(by_type, "rates")
    if rates["offered_per_min"] <= 0:
        fail("offered_per_min must be positive")
    if rates["sent"] <= 0:
        fail("sent must be positive")
    ratio = rates["achieved_per_min"] / rates["offered_per_min"]
    if abs(ratio - rates["ratio"]) > 1e-6:
        fail(
            f"rates.ratio {rates['ratio']} inconsistent with "
            f"achieved/offered {ratio}"
        )

    latency = {obj["series"]: obj for _, obj in by_type.get("latency", [])}
    for name in ("e2e_intended", "e2e_submit", "send_lag"):
        if name not in latency:
            fail(f"missing latency series {name}")
        check_quantile_ladder(latency[name])
    for name in ("e2e_intended", "e2e_submit"):
        if latency[name]["count"] != rates["sent"]:
            fail(
                f"{name} count {latency[name]['count']} != sent "
                f"{rates['sent']} (a decision went missing)"
            )
    # Coordinated omission: intended <= submit per task, so at equal rank
    # the CO-corrected series dominates (modulo one bucket of recorder
    # granularity on each estimate).
    for quantile in ("p50_ms", "p95_ms", "p99_ms"):
        corrected = latency["e2e_intended"][quantile]
        uncorrected = latency["e2e_submit"][quantile]
        if corrected < uncorrected * 0.98 - 1e-6:
            fail(
                f"e2e_intended {quantile}={corrected} below e2e_submit's "
                f"{uncorrected}: CO correction cannot shrink latencies"
            )

    service = single(by_type, "service_stats")
    if service["served"] + service["expired"] != rates["sent"]:
        fail(
            f"served {service['served']} + expired {service['expired']} "
            f"!= sent {rates['sent']}"
        )
    unserved = service["expired"] / rates["sent"]
    if abs(unserved - service["unserved_rate"]) > 1e-6:
        fail("unserved_rate inconsistent with expired/sent")

    sketch = single(by_type, "service_sketch")
    if sketch["count"] != rates["sent"]:
        fail(
            f"service sketch count {sketch['count']} != sent "
            f"{rates['sent']} (service-side samples went missing)"
        )

    reconcile = single(by_type, "reconcile")
    if abs(reconcile["loadgen_p95_ms"] - latency["e2e_submit"]["p95_ms"]) > 1e-9:
        fail("reconcile.loadgen_p95_ms does not match the e2e_submit series")
    if abs(reconcile["service_p95_ms"] - sketch["p95_ms"]) > 1e-9:
        fail("reconcile.service_p95_ms does not match the service_sketch line")
    agree = reconcile["rel_diff"] <= reconcile["tolerance"]
    if agree != reconcile["agree"]:
        fail("reconcile.agree inconsistent with rel_diff vs tolerance")

    slos = {obj["name"]: obj for _, obj in by_type.get("slo", [])}
    if not slos:
        fail("no slo lines")
    for name, slo in slos.items():
        for window in ("long", "short"):
            bad = slo[f"{window}_bad"]
            burn = slo[f"{window}_burn"]
            if slo["budget"] > 0 and abs(burn - bad / slo["budget"]) > 1e-6:
                fail(f"slo {name}: {window}_burn != {window}_bad / budget")
        breached = slo["long_burn"] >= 1.0 and slo["short_burn"] >= 1.0
        if breached != slo["breached"]:
            fail(f"slo {name}: breached flag inconsistent with burn rates")

    depths = by_type.get("queue_depth", [])
    if not depths:
        fail("no queue_depth samples")
    for _, sample in depths:
        if not math.isfinite(sample["depth"]) or sample["depth"] < 0:
            fail(f"bad queue depth {sample['depth']}")

    anomalies = single(by_type, "anomalies")
    anomaly_lines = by_type.get("anomaly", [])
    if anomalies["count"] != len(anomaly_lines):
        fail(
            f"anomalies.count {anomalies['count']} != "
            f"{len(anomaly_lines)} anomaly lines"
        )

    if args.min_rate_ratio is not None and rates["ratio"] < args.min_rate_ratio:
        fail(
            f"achieved/offered {rates['ratio']:.4f} below the "
            f"--min-rate-ratio floor {args.min_rate_ratio}"
        )
    if args.expect_agree and not reconcile["agree"]:
        fail(
            f"estimators disagree: loadgen p95 "
            f"{reconcile['loadgen_p95_ms']}ms vs service "
            f"{reconcile['service_p95_ms']}ms "
            f"(diff {reconcile['rel_diff']:.4f} > tol "
            f"{reconcile['tolerance']:.4f})"
        )
    if args.expect_breach is not None:
        slo = slos.get(args.expect_breach)
        if slo is None:
            fail(f"no slo named {args.expect_breach}")
        if not slo["breached"]:
            fail(
                f"expected slo {args.expect_breach} to be breached "
                f"(long_burn {slo['long_burn']}, short_burn "
                f"{slo['short_burn']})"
            )

    print(
        f"check_load_report: OK ({rates['sent']} tasks at ratio "
        f"{rates['ratio']:.4f}, {len(slos)} SLOs, reconcile "
        f"{'agree' if reconcile['agree'] else 'DISAGREE'})"
    )


if __name__ == "__main__":
    main()
