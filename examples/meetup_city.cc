// City-scale scenario: the Meetup-like Hong Kong workload end to end.
//
// Generates the paper's real-data-shaped workload (event-based social
// network, Zipf tag skew, group-structured dependencies), then compares all
// allocation policies over the full dynamic timeline.
//
//   ./meetup_city [workers] [tasks]
#include <cstdio>
#include <cstdlib>

#include "algo/registry.h"
#include "gen/meetup.h"
#include "sim/metrics.h"

int main(int argc, char** argv) {
  dasc::gen::MeetupParams params;
  // Default to a brisk quarter-scale city so the example runs in seconds.
  params.num_workers = 880;
  params.num_tasks = 320;
  params.num_groups = 24;
  if (argc > 1) params.num_workers = std::atoi(argv[1]);
  if (argc > 2) params.num_tasks = std::atoi(argv[2]);

  auto instance = dasc::gen::GenerateMeetup(params);
  if (!instance.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }
  std::printf("Meetup-like Hong Kong workload: %d workers, %d tasks, "
              "%d groups, %d skills\n\n",
              instance->num_workers(), instance->num_tasks(),
              params.num_groups, params.num_skills);

  // The batch interval must sit well below task waiting times (3-5 here);
  // see ablation F in EXPERIMENTS.md.
  dasc::sim::SimulatorOptions options;
  options.batch_interval = 1.0;

  std::printf("%-9s %8s %11s %14s %14s %12s\n", "method", "score",
              "time (ms)", "p95 batch(ms)", "max batch(ms)", "latency");
  for (const char* name :
       {"greedy", "game", "game5", "gg", "closest", "random"}) {
    auto allocator = dasc::algo::CreateAllocator(name, /*seed=*/7);
    DASC_CHECK(allocator.ok());
    const dasc::sim::RunStats stats =
        dasc::sim::MeasureSimulation(*instance, options, **allocator);
    std::printf("%-9s %8d %11.2f %14.3f %14.3f %12.2f\n",
                stats.algorithm.c_str(), stats.score, stats.millis,
                stats.p95_batch_ms, stats.max_batch_ms,
                stats.mean_assignment_latency);
  }
  std::printf(
      "\nThe four dependency-aware methods clear far more of the task-group\n"
      "chains than the two baselines, at higher (Game*) or lower (Greedy)\n"
      "running time - the trade-off of the paper's Section V.\n");
  return 0;
}
