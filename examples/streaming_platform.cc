// Streaming platform: the online embedding API.
//
// Unlike the other examples (which replay a fixed workload through the
// offline Simulator), this drives sim::Platform the way a live service
// would: workers and tasks are injected as they appear, and RunBatch fires
// on a timer. Demonstrates late-arriving dependent tasks being unlocked by
// earlier assignments.
//
//   ./streaming_platform
#include <cstdio>

#include "algo/greedy.h"
#include "sim/platform.h"
#include "util/rng.h"

int main() {
  using dasc::core::Task;
  using dasc::core::Worker;
  dasc::sim::Platform platform(/*num_skills=*/3);
  dasc::algo::GreedyAllocator greedy;
  dasc::util::Rng rng(7);

  auto add_worker = [&](double x, double y, std::vector<int> skills,
                        double start) {
    Worker w;
    w.location = {x, y};
    w.start_time = start;
    w.wait_time = 50.0;
    w.velocity = 1.0;
    w.max_distance = 50.0;
    for (int s : skills) w.skills.push_back(s);
    auto id = platform.AddWorker(std::move(w));
    DASC_CHECK(id.ok()) << id.status().ToString();
    return *id;
  };
  auto add_task = [&](double x, double y, int skill, double start,
                      std::vector<dasc::core::TaskId> deps) {
    Task t;
    t.location = {x, y};
    t.start_time = start;
    t.wait_time = 30.0;
    t.required_skill = skill;
    t.dependencies = std::move(deps);
    auto id = platform.AddTask(std::move(t));
    DASC_CHECK(id.ok()) << id.status().ToString();
    return *id;
  };

  std::printf("streaming DA-SC platform (batches every 2.0)\n\n");

  // t=0: two workers and the head of a job chain appear.
  add_worker(0, 0, {0, 1}, 0.0);
  add_worker(5, 5, {1, 2}, 0.0);
  const auto prep = add_task(1, 1, 0, 0.0, {});
  auto batch = platform.RunBatch(0.0, greedy);
  std::printf("t=0  batch -> %d assignment(s); prep assigned: %s\n",
              batch->size(), platform.TaskAssigned(prep) ? "yes" : "no");

  // t=2: the requester posts the dependent follow-up + an unrelated errand.
  const auto follow_up = add_task(2, 1, 1, 2.0, {prep});
  add_task(6, 6, 2, 2.0, {});
  batch = platform.RunBatch(2.0, greedy);
  std::printf("t=2  batch -> %d assignment(s); follow-up assigned: %s\n",
              batch->size(), platform.TaskAssigned(follow_up) ? "yes" : "no");

  // t=4..10: a trickle of random small tasks and one more worker.
  add_worker(3, 3, {0, 2}, 4.0);
  for (double now = 4.0; now <= 10.0; now += 2.0) {
    if (rng.Bernoulli(0.7)) {
      add_task(rng.UniformDouble(0, 6), rng.UniformDouble(0, 6),
               static_cast<int>(rng.UniformInt(0, 2)), now, {});
    }
    batch = platform.RunBatch(now, greedy);
    std::printf("t=%-3g batch -> %d assignment(s)\n", now, batch->size());
  }

  std::printf("\ntotal valid pairs: %d over %d tasks posted\n",
              platform.total_score(), platform.num_tasks());
  return 0;
}
