// Quickstart: the paper's Example 1 end-to-end through the public API.
//
// Builds the 3-worker / 5-task instance of Figure 1 / Tables I-II, runs every
// allocator on the single batch, and prints the assignments. Shows why
// dependency-oblivious allocation ("Closest") finishes only 1 task while the
// dependency-aware methods finish 3.
//
//   ./quickstart
#include <cstdio>

#include "algo/registry.h"
#include "core/assignment.h"
#include "core/batch.h"
#include "core/instance.h"

namespace {

dasc::core::Instance BuildExample1() {
  using dasc::core::Task;
  using dasc::core::Worker;
  // Skills: ψ1=0, ψ2=1, ψ3=2, ψ4=3. Every worker is fast and far-ranging,
  // as in the example ("maximum moving distance ... large enough").
  auto worker = [](int id, double x, double y,
                   std::vector<dasc::core::SkillId> skills) {
    Worker w;
    w.id = id;
    w.location = {x, y};
    w.start_time = 0.0;
    w.wait_time = 1e6;
    w.velocity = 1e3;
    w.max_distance = 1e6;
    w.skills = std::move(skills);
    return w;
  };
  auto task = [](int id, double x, double y, dasc::core::SkillId skill,
                 std::vector<dasc::core::TaskId> deps) {
    Task t;
    t.id = id;
    t.location = {x, y};
    t.start_time = 0.0;
    t.wait_time = 1e6;
    t.required_skill = skill;
    t.dependencies = std::move(deps);
    return t;
  };
  auto instance = dasc::core::Instance::Create(
      {
          worker(0, 2, 1, {0, 1}),     // w1: {ψ1, ψ2}
          worker(1, 3, 3, {3}),        // w2: {ψ4}
          worker(2, 5, 3, {0, 1, 2}),  // w3: {ψ1, ψ2, ψ3}
      },
      {
          task(0, 4, 1, 0, {}),      // t1
          task(1, 2, 2, 1, {0}),     // t2 <- t1
          task(2, 5, 2, 2, {0, 1}),  // t3 <- t1, t2
          task(3, 3, 4, 3, {}),      // t4
          task(4, 1, 2, 2, {3}),     // t5 <- t4
      },
      /*num_skills=*/4);
  DASC_CHECK(instance.ok()) << instance.status().ToString();
  return std::move(*instance);
}

}  // namespace

int main() {
  const dasc::core::Instance instance = BuildExample1();
  const dasc::core::BatchProblem problem =
      dasc::core::BatchProblem::AllAt(instance, /*now=*/0.0);

  std::printf("DA-SC quickstart: paper Example 1 (%d workers, %d tasks)\n\n",
              instance.num_workers(), instance.num_tasks());
  std::printf("%-15s %-7s %s\n", "method", "score", "valid pairs (worker->task)");

  for (const std::string& name : dasc::algo::KnownAllocatorNames()) {
    auto allocator = dasc::algo::CreateAllocator(name, /*seed=*/1);
    DASC_CHECK(allocator.ok());
    const dasc::core::Assignment raw = (*allocator)->Allocate(problem);
    const dasc::core::Assignment valid = ValidPairs(problem, raw);
    std::string pairs;
    for (const auto& [w, t] : valid.pairs()) {
      pairs += "w" + std::to_string(w + 1) + "->t" + std::to_string(t + 1) + " ";
    }
    std::printf("%-15s %-7d %s\n",
                std::string((*allocator)->name()).c_str(), valid.size(),
                pairs.c_str());
  }
  std::printf(
      "\nDependency-aware methods assign 3 pairs; Closest wastes workers on\n"
      "t2/t3 whose dependencies were never assigned (Figure 1(b) vs 1(c)).\n");
  return 0;
}
