// House repair: the paper's motivating scenario as a dynamic simulation.
//
// A requester posts a house-repair job as dependent subtasks (pipes before
// painting, painting before cleaning, ...) while other small jobs keep
// arriving. Multi-skilled workers come and go; the platform allocates every
// batch. Compares DASC_Greedy against the dependency-oblivious Closest
// baseline over the whole timeline.
//
//   ./house_repair
#include <cstdio>
#include <string>
#include <vector>

#include "algo/baselines.h"
#include "algo/greedy.h"
#include "core/instance.h"
#include "sim/simulator.h"

namespace {

constexpr dasc::core::SkillId kPlumbing = 0;
constexpr dasc::core::SkillId kElectrics = 1;
constexpr dasc::core::SkillId kPainting = 2;
constexpr dasc::core::SkillId kCleaning = 3;
constexpr dasc::core::SkillId kCarpentry = 4;
constexpr int kNumSkills = 5;

struct TaskSpec {
  const char* label;
  double x, y;
  dasc::core::SkillId skill;
  std::vector<dasc::core::TaskId> deps;
  double start, wait;
};

}  // namespace

int main() {
  using dasc::core::Task;
  using dasc::core::Worker;

  // The house sits at (5, 5); errands are scattered around town.
  const std::vector<TaskSpec> specs = {
      {"install pipes", 5.0, 5.0, kPlumbing, {}, 0.0, 40.0},        // 0
      {"wire sockets", 5.1, 5.0, kElectrics, {}, 0.0, 40.0},        // 1
      {"paint walls", 5.0, 5.1, kPainting, {0, 1}, 0.0, 60.0},      // 2
      {"fit cabinets", 5.1, 5.1, kCarpentry, {2}, 0.0, 80.0},       // 3
      {"final cleaning", 5.0, 5.2, kCleaning, {2, 3}, 0.0, 90.0},   // 4
      {"fix cafe sink", 2.0, 8.0, kPlumbing, {}, 5.0, 30.0},        // 5
      {"paint fence", 8.0, 2.0, kPainting, {}, 10.0, 40.0},         // 6
      {"deep-clean office", 1.0, 1.0, kCleaning, {}, 15.0, 50.0},   // 7
  };

  std::vector<Task> tasks;
  for (size_t i = 0; i < specs.size(); ++i) {
    const TaskSpec& s = specs[i];
    Task t;
    t.id = static_cast<dasc::core::TaskId>(i);
    t.location = {s.x, s.y};
    t.start_time = s.start;
    t.wait_time = s.wait;
    t.required_skill = s.skill;
    t.dependencies = s.deps;
    tasks.push_back(std::move(t));
  }

  auto make_worker = [](int id, double x, double y,
                        std::vector<dasc::core::SkillId> skills, double start,
                        double wait) {
    Worker w;
    w.id = id;
    w.location = {x, y};
    w.start_time = start;
    w.wait_time = wait;
    w.velocity = 0.8;
    w.max_distance = 15.0;
    w.skills = std::move(skills);
    return w;
  };
  const std::vector<Worker> workers = {
      make_worker(0, 4.0, 4.0, {kPlumbing, kPainting}, 0.0, 60.0),
      make_worker(1, 6.0, 6.0, {kElectrics, kCarpentry}, 0.0, 60.0),
      make_worker(2, 3.0, 7.0, {kPainting, kCleaning}, 5.0, 70.0),
      make_worker(3, 7.0, 3.0, {kPlumbing, kCleaning}, 10.0, 70.0),
  };

  auto instance =
      dasc::core::Instance::Create(workers, tasks, kNumSkills);
  DASC_CHECK(instance.ok()) << instance.status().ToString();

  dasc::sim::SimulatorOptions options;
  options.batch_interval = 5.0;
  options.service_time = 2.0;  // some minutes of actual work on site

  std::printf("House repair scenario: %d workers, %zu tasks "
              "(5-task dependency chain + 3 independent errands)\n\n",
              instance->num_workers(), specs.size());

  dasc::algo::GreedyAllocator greedy;
  dasc::algo::ClosestAllocator closest;
  for (dasc::core::Allocator* allocator :
       std::initializer_list<dasc::core::Allocator*>{&greedy, &closest}) {
    dasc::sim::Simulator simulator(*instance, options);
    const dasc::sim::SimulationResult result = simulator.Run(*allocator);
    std::printf("%-8s finished %d/%zu tasks over %d batches "
                "(last completion at t=%.1f)\n",
                std::string(allocator->name()).c_str(), result.score,
                specs.size(), result.batches, result.last_completion_time);
    std::printf("         per-batch valid assignments:");
    for (int s : result.per_batch_scores) std::printf(" %d", s);
    std::printf("\n\n");
  }

  std::printf(
      "Greedy sequences the repair chain across batches (pipes & wiring\n"
      "first, then painting, then cabinets and cleaning) while Closest\n"
      "keeps grabbing nearby-but-blocked subtasks and loses them.\n");
  return 0;
}
