// Road-network city: allocation under the paper's suggested alternative
// distance function.
//
// Builds the Meetup-like Hong Kong workload, then compares allocation under
// straight-line Euclidean distance vs. shortest paths through a synthetic
// road network (detoured streets, some blocked), including how much farther
// workers actually travel. Also demonstrates the KD-tree index on the
// clustered task locations.
//
//   ./road_network_city
#include <cstdio>

#include "algo/greedy.h"
#include "gen/meetup.h"
#include "geo/kdtree.h"
#include "geo/road_network.h"
#include "sim/metrics.h"

int main() {
  using namespace dasc;
  gen::MeetupParams params;
  params.num_workers = 880;
  params.num_tasks = 320;
  params.num_groups = 24;
  auto instance = gen::GenerateMeetup(params);
  DASC_CHECK(instance.ok()) << instance.status().ToString();

  std::printf("Road-network city: %d workers, %d tasks in the Hong Kong box\n\n",
              instance->num_workers(), instance->num_tasks());

  // A KD-tree over the clustered task sites: how many tasks sit within a
  // 0.02-degree walk of the city's busiest task?
  std::vector<geo::Point> sites;
  for (const auto& t : instance->tasks()) sites.push_back(t.location);
  geo::KdTree index(sites);
  const auto dense = index.QueryRadius(sites[0], 0.02);
  std::printf("KD-tree: %zu tasks within 0.02 deg of task 0's site\n\n",
              dense.size());

  const geo::RoadNetwork network = geo::RoadNetwork::MakeGrid(
      params.lon_min, params.lat_min, params.lon_max, params.lat_max, {});
  std::printf("road network: %d junctions, %lld streets\n",
              network.num_nodes(),
              static_cast<long long>(network.num_edges()));
  const geo::Point a = instance->worker(0).location;
  const geo::Point b = instance->task(0).location;
  std::printf("worker0 -> task0: euclidean %.4f deg, via roads %.4f deg\n\n",
              geo::EuclideanDistance(a, b), network.Distance(a, b));

  sim::SimulatorOptions euclid;
  euclid.batch_interval = 1.0;
  sim::SimulatorOptions roads = euclid;
  roads.params.distance_kind = geo::DistanceKind::kRoadNetwork;
  roads.params.road_network = &network;

  std::printf("%-14s %8s %12s\n", "distance", "score", "time (ms)");
  {
    algo::GreedyAllocator greedy;
    const auto stats = sim::MeasureSimulation(*instance, euclid, greedy);
    std::printf("%-14s %8d %12.2f\n", "euclidean", stats.score, stats.millis);
  }
  {
    algo::GreedyAllocator greedy;
    const auto stats = sim::MeasureSimulation(*instance, roads, greedy);
    std::printf("%-14s %8d %12.2f\n", "road network", stats.score,
                stats.millis);
  }
  std::printf(
      "\nDetoured, partially blocked streets shrink each worker's effective\n"
      "reach, cutting the feasible pairs — the library's pluggable distance\n"
      "oracle handles it without touching any algorithm code.\n");
  return 0;
}
