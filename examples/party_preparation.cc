// Party preparation: dependency semantics and the game's threshold knob.
//
// The paper's second motivating domain. A party has a deep dependency chain
// (book venue -> set up tables -> decorate -> lay out catering -> sound
// check), and we use it to demonstrate two library features beyond the
// paper's defaults:
//   1. DependencyMode: paper semantics (dependents may start once their
//      dependency is *assigned*) vs. completion-based semantics (dependents
//      wait until the dependency physically finishes);
//   2. the DASC_Game termination threshold (Fig. 2's score/time trade-off).
//
//   ./party_preparation
#include <cstdio>
#include <vector>

#include "algo/game.h"
#include "algo/greedy.h"
#include "core/instance.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace {

dasc::core::Instance BuildParty() {
  using dasc::core::Task;
  using dasc::core::Worker;
  dasc::util::Rng rng(2026);

  // Skills: logistics=0, decoration=1, catering=2, audio=3.
  std::vector<Task> tasks;
  auto add_task = [&](double x, double y, dasc::core::SkillId skill,
                      std::vector<dasc::core::TaskId> deps) {
    Task t;
    t.id = static_cast<dasc::core::TaskId>(tasks.size());
    t.location = {x, y};
    t.start_time = 0.0;
    t.wait_time = 200.0;
    t.required_skill = skill;
    t.dependencies = std::move(deps);
    tasks.push_back(std::move(t));
    return t.id;
  };
  const auto venue = add_task(5, 5, 0, {});
  const auto tables = add_task(5.1, 5, 0, {venue});
  const auto decor = add_task(5, 5.1, 1, {tables});
  const auto catering = add_task(5.1, 5.1, 2, {decor});
  add_task(5.2, 5, 3, {decor});                       // sound check
  add_task(5.2, 5.1, 2, {catering});                  // cake on top of it all
  for (int i = 0; i < 6; ++i) {                       // independent errands
    add_task(rng.UniformDouble(0, 10), rng.UniformDouble(0, 10),
             static_cast<dasc::core::SkillId>(rng.UniformInt(0, 3)), {});
  }

  std::vector<Worker> workers;
  for (int i = 0; i < 5; ++i) {
    Worker w;
    w.id = i;
    w.location = {rng.UniformDouble(3, 7), rng.UniformDouble(3, 7)};
    w.start_time = 0.0;
    w.wait_time = 150.0;
    w.velocity = 0.5;
    w.max_distance = 30.0;
    w.skills = {static_cast<dasc::core::SkillId>(i % 4),
                static_cast<dasc::core::SkillId>((i + 1) % 4)};
    workers.push_back(std::move(w));
  }
  auto instance = dasc::core::Instance::Create(workers, tasks, 4);
  DASC_CHECK(instance.ok()) << instance.status().ToString();
  return std::move(*instance);
}

}  // namespace

int main() {
  const dasc::core::Instance instance = BuildParty();
  std::printf("Party preparation: %d workers, %d tasks "
              "(chain depth 5 + errands)\n\n",
              instance.num_workers(), instance.num_tasks());

  // Part 1: dependency semantics.
  std::printf("-- dependency semantics --\n");
  for (const auto mode :
       {dasc::sim::SimulatorOptions::DependencyMode::kAssigned,
        dasc::sim::SimulatorOptions::DependencyMode::kCompleted}) {
    dasc::sim::SimulatorOptions options;
    options.batch_interval = 4.0;
    options.service_time = 3.0;
    options.dependency_mode = mode;
    dasc::algo::GreedyAllocator greedy;
    dasc::sim::Simulator simulator(instance, options);
    const auto result = simulator.Run(greedy);
    std::printf("%-10s score=%2d  batches=%2d  last completion t=%.1f\n",
                mode == dasc::sim::SimulatorOptions::DependencyMode::kAssigned
                    ? "assigned"
                    : "completed",
                result.score, result.batches, result.last_completion_time);
  }

  // Part 2: game threshold trade-off on a single batch.
  std::printf("\n-- DASC_Game threshold trade-off (single batch) --\n");
  const dasc::core::BatchProblem problem =
      dasc::core::BatchProblem::AllAt(instance, 0.0);
  for (double threshold : {0.0, 0.05, 0.25, 0.5}) {
    dasc::algo::GameOptions options;
    options.threshold = threshold;
    options.seed = 3;
    dasc::algo::GameAllocator game(options);
    const auto assignment = game.Allocate(problem);
    std::printf("threshold=%4.0f%%  score=%2d  best-response rounds=%d\n",
                threshold * 100.0,
                dasc::core::ValidScore(problem, assignment),
                game.last_rounds());
  }
  std::printf(
      "\nLooser thresholds stop the best-response loop earlier: fewer\n"
      "rounds, possibly fewer valid pairs - the Fig. 2 trade-off.\n");
  return 0;
}
