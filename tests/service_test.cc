// Tests for the long-lived in-process allocation service: ingest contract
// (validation, duplicates, lifecycle), the one-decision-per-task guarantee
// under Drain(), latency accounting against the service's wall clock, the
// injected-stall hook the SLO-gate test relies on, and the registry sketch
// the load generator reconciles against. See DESIGN.md §15.
#include "sim/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "algo/registry.h"
#include "gen/synthetic.h"
#include "util/metrics.h"

namespace dasc::sim {
namespace {

core::Instance MakeInstance(int workers, int tasks, uint64_t seed = 17) {
  gen::SyntheticParams params;
  params.seed = seed;
  params.num_workers = workers;
  params.num_tasks = tasks;
  params.num_skills = 6;
  params.dependency_size.hi = 3;
  auto instance = gen::GenerateSynthetic(params);
  EXPECT_TRUE(instance.ok());
  return std::move(*instance);
}

// Synthetic model windows span start times in [0, 75] with waits in
// [10, 15]; at this scale the whole model timeline elapses in well under a
// second of wall time, so Drain() terminates quickly (every task is either
// served or expires).
constexpr double kFastScale = 2000.0;

ServiceOptions FastOptions() {
  ServiceOptions options;
  options.time_scale = kFastScale;
  options.min_batch_gap_ms = 1.0;
  options.max_batch_gap_ms = 5.0;
  return options;
}

TEST(Service, EveryTaskGetsExactlyOneDecision) {
  const core::Instance instance = MakeInstance(40, 60);
  auto allocator = algo::CreateAllocator("greedy", 1);
  ASSERT_TRUE(allocator.ok());
  Service service(instance, **allocator, FastOptions());
  service.Start();
  for (int w = 0; w < instance.num_workers(); ++w) {
    ASSERT_TRUE(service.SubmitWorker(w).ok());
  }
  for (int t = 0; t < instance.num_tasks(); ++t) {
    ASSERT_TRUE(service.SubmitTask(t).ok());
  }
  service.Drain();

  const std::vector<DecisionRecord> decisions = service.TakeDecisions();
  ASSERT_EQ(decisions.size(), static_cast<size_t>(instance.num_tasks()));
  std::map<core::TaskId, int> seen;
  int64_t served = 0;
  for (const DecisionRecord& d : decisions) {
    ++seen[d.task];
    // Latency accounting: decisions happen at batch instants on the same
    // clock the submissions were stamped with.
    EXPECT_GE(d.decide_wall_s, d.submit_wall_s) << "task " << d.task;
    if (d.served) {
      ++served;
      EXPECT_NE(d.worker, core::kInvalidId);
    } else {
      EXPECT_EQ(d.worker, core::kInvalidId);
    }
  }
  for (const auto& [task, count] : seen) {
    EXPECT_EQ(count, 1) << "task " << task << " decided twice";
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted_tasks, instance.num_tasks());
  EXPECT_EQ(stats.submitted_workers, instance.num_workers());
  EXPECT_EQ(stats.served + stats.expired, instance.num_tasks());
  EXPECT_EQ(stats.served, served);
  EXPECT_GT(stats.batches, 0);
  EXPECT_EQ(service.pending_tasks(), 0);
  // TakeDecisions pops: a second call returns nothing new.
  EXPECT_TRUE(service.TakeDecisions().empty());
}

TEST(Service, IngestValidationAndLifecycle) {
  const core::Instance instance = MakeInstance(5, 8);
  auto allocator = algo::CreateAllocator("greedy", 1);
  ASSERT_TRUE(allocator.ok());
  Service service(instance, **allocator, FastOptions());

  // Not started yet: submissions are refused, not queued.
  EXPECT_EQ(service.SubmitTask(0).code(),
            util::StatusCode::kFailedPrecondition);

  service.Start();
  EXPECT_TRUE(service.SubmitWorker(0).ok());
  EXPECT_TRUE(service.SubmitTask(0).ok());
  // Duplicate submission is a caller bug, reported not absorbed.
  EXPECT_EQ(service.SubmitTask(0).code(),
            util::StatusCode::kFailedPrecondition);
  // Catalog range is validated.
  EXPECT_EQ(service.SubmitTask(-1).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(service.SubmitTask(instance.num_tasks()).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(service.SubmitWorker(instance.num_workers()).code(),
            util::StatusCode::kInvalidArgument);

  service.Drain();
  // The loop keeps running after a drain: later work is accepted and also
  // decided (steady-state service shape, not one-shot).
  EXPECT_TRUE(service.SubmitTask(1).ok());
  service.Drain();
  EXPECT_EQ(service.stats().submitted_tasks, 2);
  EXPECT_EQ(service.pending_tasks(), 0);

  service.Shutdown();
  EXPECT_EQ(service.SubmitTask(2).code(),
            util::StatusCode::kFailedPrecondition);
  service.Shutdown();  // idempotent
}

// The --inject-stall-ms hook: with a forced D ms sleep inside every batch,
// consecutive batch instants must be at least D apart (the batch stamp is
// taken before the sleep, and the loop cannot start batch k+1 until batch
// k's sleep finishes). This is the mechanism the WILL_FAIL SLO-gate ctest
// uses to seed a deterministic latency breach.
TEST(Service, InjectedBatchDelaySpacesBatchInstants) {
  const core::Instance instance = MakeInstance(20, 30);
  auto allocator = algo::CreateAllocator("greedy", 1);
  ASSERT_TRUE(allocator.ok());
  ServiceOptions options = FastOptions();
  options.inject_batch_delay_ms = 20.0;
  Service service(instance, **allocator, options);
  service.Start();
  for (int w = 0; w < instance.num_workers(); ++w) {
    ASSERT_TRUE(service.SubmitWorker(w).ok());
  }
  for (int t = 0; t < instance.num_tasks(); ++t) {
    ASSERT_TRUE(service.SubmitTask(t).ok());
  }
  service.Drain();

  // Group decision instants by batch and check consecutive batch spacing.
  std::map<int64_t, double> batch_instant;
  for (const DecisionRecord& d : service.TakeDecisions()) {
    batch_instant[d.batch_seq] = d.decide_wall_s;
  }
  ASSERT_GE(batch_instant.size(), 2u);
  double prev = -1.0;
  for (const auto& [seq, instant] : batch_instant) {
    if (prev >= 0.0) {
      EXPECT_GE(instant - prev, 0.018)
          << "batches " << seq - 1 << " -> " << seq;
    }
    prev = instant;
  }
}

// The reconciliation contract dasc_loadgen relies on: every decision feeds
// exactly one observation into the service_task_e2e_ms_window registry
// sketch, so an external scraper sees the same sample count the caller got
// from TakeDecisions(). (Delta-based: the global registry accumulates
// across tests in this binary.)
TEST(Service, DecisionsFeedTheRegistrySketch) {
  if (!util::MetricsEnabled()) GTEST_SKIP() << "metrics compiled out";
  auto count_sketch = [] {
    for (const util::SketchSnapshot& s :
         util::GlobalMetrics().Snapshot().sketches) {
      if (s.name == "service_task_e2e_ms_window") return s.cumulative_count;
    }
    return int64_t{0};
  };
  const int64_t before = count_sketch();

  const core::Instance instance = MakeInstance(30, 50, /*seed=*/23);
  auto allocator = algo::CreateAllocator("greedy", 1);
  ASSERT_TRUE(allocator.ok());
  Service service(instance, **allocator, FastOptions());
  service.Start();
  for (int w = 0; w < instance.num_workers(); ++w) {
    ASSERT_TRUE(service.SubmitWorker(w).ok());
  }
  for (int t = 0; t < instance.num_tasks(); ++t) {
    ASSERT_TRUE(service.SubmitTask(t).ok());
  }
  service.Drain();
  const size_t decisions = service.TakeDecisions().size();
  EXPECT_EQ(count_sketch() - before, static_cast<int64_t>(decisions));
}

}  // namespace
}  // namespace dasc::sim
