// Tests for the long-lived in-process allocation service: ingest contract
// (validation, duplicates, lifecycle), the one-decision-per-task guarantee
// under Drain(), latency accounting against the service's wall clock, the
// injected-stall hook the SLO-gate test relies on, and the registry sketch
// the load generator reconciles against. See DESIGN.md §15.
#include "sim/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "algo/registry.h"
#include "gen/synthetic.h"
#include "sim/task_trace.h"
#include "sim/watchdog.h"
#include "util/flight_recorder.h"
#include "util/metrics.h"

namespace dasc::sim {
namespace {

core::Instance MakeInstance(int workers, int tasks, uint64_t seed = 17) {
  gen::SyntheticParams params;
  params.seed = seed;
  params.num_workers = workers;
  params.num_tasks = tasks;
  params.num_skills = 6;
  params.dependency_size.hi = 3;
  auto instance = gen::GenerateSynthetic(params);
  EXPECT_TRUE(instance.ok());
  return std::move(*instance);
}

// Synthetic model windows span start times in [0, 75] with waits in
// [10, 15]; at this scale the whole model timeline elapses in well under a
// second of wall time, so Drain() terminates quickly (every task is either
// served or expires).
constexpr double kFastScale = 2000.0;

ServiceOptions FastOptions() {
  ServiceOptions options;
  options.time_scale = kFastScale;
  options.min_batch_gap_ms = 1.0;
  options.max_batch_gap_ms = 5.0;
  return options;
}

TEST(Service, EveryTaskGetsExactlyOneDecision) {
  const core::Instance instance = MakeInstance(40, 60);
  auto allocator = algo::CreateAllocator("greedy", 1);
  ASSERT_TRUE(allocator.ok());
  Service service(instance, **allocator, FastOptions());
  service.Start();
  for (int w = 0; w < instance.num_workers(); ++w) {
    ASSERT_TRUE(service.SubmitWorker(w).ok());
  }
  for (int t = 0; t < instance.num_tasks(); ++t) {
    ASSERT_TRUE(service.SubmitTask(t).ok());
  }
  service.Drain();

  const std::vector<DecisionRecord> decisions = service.TakeDecisions();
  ASSERT_EQ(decisions.size(), static_cast<size_t>(instance.num_tasks()));
  std::map<core::TaskId, int> seen;
  int64_t served = 0;
  for (const DecisionRecord& d : decisions) {
    ++seen[d.task];
    // Latency accounting: decisions happen at batch instants on the same
    // clock the submissions were stamped with.
    EXPECT_GE(d.decide_wall_s, d.submit_wall_s) << "task " << d.task;
    if (d.served) {
      ++served;
      EXPECT_NE(d.worker, core::kInvalidId);
    } else {
      EXPECT_EQ(d.worker, core::kInvalidId);
    }
  }
  for (const auto& [task, count] : seen) {
    EXPECT_EQ(count, 1) << "task " << task << " decided twice";
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted_tasks, instance.num_tasks());
  EXPECT_EQ(stats.submitted_workers, instance.num_workers());
  EXPECT_EQ(stats.served + stats.expired, instance.num_tasks());
  EXPECT_EQ(stats.served, served);
  EXPECT_GT(stats.batches, 0);
  EXPECT_EQ(service.pending_tasks(), 0);
  // TakeDecisions pops: a second call returns nothing new.
  EXPECT_TRUE(service.TakeDecisions().empty());
}

TEST(Service, IngestValidationAndLifecycle) {
  const core::Instance instance = MakeInstance(5, 8);
  auto allocator = algo::CreateAllocator("greedy", 1);
  ASSERT_TRUE(allocator.ok());
  Service service(instance, **allocator, FastOptions());

  // Not started yet: submissions are refused, not queued.
  EXPECT_EQ(service.SubmitTask(0).code(),
            util::StatusCode::kFailedPrecondition);

  service.Start();
  EXPECT_TRUE(service.SubmitWorker(0).ok());
  EXPECT_TRUE(service.SubmitTask(0).ok());
  // Duplicate submission is a caller bug, reported not absorbed.
  EXPECT_EQ(service.SubmitTask(0).code(),
            util::StatusCode::kFailedPrecondition);
  // Catalog range is validated.
  EXPECT_EQ(service.SubmitTask(-1).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(service.SubmitTask(instance.num_tasks()).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(service.SubmitWorker(instance.num_workers()).code(),
            util::StatusCode::kInvalidArgument);

  service.Drain();
  // The loop keeps running after a drain: later work is accepted and also
  // decided (steady-state service shape, not one-shot).
  EXPECT_TRUE(service.SubmitTask(1).ok());
  service.Drain();
  EXPECT_EQ(service.stats().submitted_tasks, 2);
  EXPECT_EQ(service.pending_tasks(), 0);

  service.Shutdown();
  EXPECT_EQ(service.SubmitTask(2).code(),
            util::StatusCode::kFailedPrecondition);
  service.Shutdown();  // idempotent
}

// The --inject-stall-ms hook: with a forced D ms sleep inside every batch,
// consecutive batch instants must be at least D apart (the batch stamp is
// taken before the sleep, and the loop cannot start batch k+1 until batch
// k's sleep finishes). This is the mechanism the WILL_FAIL SLO-gate ctest
// uses to seed a deterministic latency breach.
TEST(Service, InjectedBatchDelaySpacesBatchInstants) {
  const core::Instance instance = MakeInstance(20, 30);
  auto allocator = algo::CreateAllocator("greedy", 1);
  ASSERT_TRUE(allocator.ok());
  ServiceOptions options = FastOptions();
  options.inject_batch_delay_ms = 20.0;
  Service service(instance, **allocator, options);
  service.Start();
  for (int w = 0; w < instance.num_workers(); ++w) {
    ASSERT_TRUE(service.SubmitWorker(w).ok());
  }
  for (int t = 0; t < instance.num_tasks(); ++t) {
    ASSERT_TRUE(service.SubmitTask(t).ok());
  }
  service.Drain();

  // Group decision instants by batch and check consecutive batch spacing.
  std::map<int64_t, double> batch_instant;
  for (const DecisionRecord& d : service.TakeDecisions()) {
    batch_instant[d.batch_seq] = d.decide_wall_s;
  }
  ASSERT_GE(batch_instant.size(), 2u);
  double prev = -1.0;
  for (const auto& [seq, instant] : batch_instant) {
    if (prev >= 0.0) {
      EXPECT_GE(instant - prev, 0.018)
          << "batches " << seq - 1 << " -> " << seq;
    }
    prev = instant;
  }
}

// The reconciliation contract dasc_loadgen relies on: every decision feeds
// exactly one observation into the service_task_e2e_ms_window registry
// sketch, so an external scraper sees the same sample count the caller got
// from TakeDecisions(). (Delta-based: the global registry accumulates
// across tests in this binary.)
TEST(Service, DecisionsFeedTheRegistrySketch) {
  if (!util::MetricsEnabled()) GTEST_SKIP() << "metrics compiled out";
  auto count_sketch = [] {
    for (const util::SketchSnapshot& s :
         util::GlobalMetrics().Snapshot().sketches) {
      if (s.name == "service_task_e2e_ms_window") return s.cumulative_count;
    }
    return int64_t{0};
  };
  const int64_t before = count_sketch();

  const core::Instance instance = MakeInstance(30, 50, /*seed=*/23);
  auto allocator = algo::CreateAllocator("greedy", 1);
  ASSERT_TRUE(allocator.ok());
  Service service(instance, **allocator, FastOptions());
  service.Start();
  for (int w = 0; w < instance.num_workers(); ++w) {
    ASSERT_TRUE(service.SubmitWorker(w).ok());
  }
  for (int t = 0; t < instance.num_tasks(); ++t) {
    ASSERT_TRUE(service.SubmitTask(t).ok());
  }
  service.Drain();
  const size_t decisions = service.TakeDecisions().size();
  EXPECT_EQ(count_sketch() - before, static_cast<int64_t>(decisions));
}

// Causal tracing through the service shape: with head sampling at 1 every
// decision is retained, each retained trace agrees with its DecisionRecord
// (batch, outcome, latency endpoints), and the exemplar ids the service
// threads into service_task_e2e_ms_window resolve through Lookup — the
// exemplar-resolution promise the run-report validator enforces offline.
TEST(Service, TracerRetainsDecisionsAndExemplarsResolve) {
  const core::Instance instance = MakeInstance(30, 50, /*seed=*/29);
  auto allocator = algo::CreateAllocator("greedy", 1);
  ASSERT_TRUE(allocator.ok());

  TaskTracerOptions trace_options;
  trace_options.head_sample_every = 1;
  TaskTracer tracer(trace_options);
  ServiceOptions options = FastOptions();
  options.tracer = &tracer;
  Service service(instance, **allocator, options);
  service.Start();
  for (int w = 0; w < instance.num_workers(); ++w) {
    ASSERT_TRUE(service.SubmitWorker(w).ok());
  }
  for (int t = 0; t < instance.num_tasks(); ++t) {
    ASSERT_TRUE(service.SubmitTask(t).ok());
  }
  service.Drain();

  const std::vector<DecisionRecord> decisions = service.TakeDecisions();
  ASSERT_EQ(decisions.size(), static_cast<size_t>(instance.num_tasks()));
  const TaskTracerStats stats = tracer.stats();
  EXPECT_EQ(stats.traces_started, instance.num_tasks());
  EXPECT_EQ(stats.traces_decided, instance.num_tasks());
  EXPECT_EQ(stats.traces_retained, instance.num_tasks());
  EXPECT_GE(stats.batches, 1);

  for (const DecisionRecord& d : decisions) {
    TaskTraceRecord rec;
    ASSERT_TRUE(tracer.Lookup(TaskTraceId(d.task), &rec)) << "task " << d.task;
    EXPECT_EQ(rec.task, d.task);
    EXPECT_EQ(rec.decide_batch, d.batch_seq);
    EXPECT_EQ(rec.served, d.served);
    EXPECT_DOUBLE_EQ(rec.submit_wall_s, d.submit_wall_s);
    EXPECT_DOUBLE_EQ(rec.decide_wall_s, d.decide_wall_s);
    // first_admit_batch may stay -1 (a window the batch cadence never
    // landed in); when the task was admitted, admission precedes decision.
    if (rec.first_admit_batch >= 0) {
      EXPECT_LE(rec.first_admit_batch, rec.decide_batch) << "task " << d.task;
    }
  }

  // The e2e sketch carries exemplars whose ids resolve in this tracer. (The
  // global registry accumulates across tests, so only exemplars this run's
  // buckets last touched are guaranteed to be ours — require at least one.)
  if (!util::MetricsEnabled()) return;
  int resolved = 0;
  for (const util::SketchSnapshot& s :
       util::GlobalMetrics().Snapshot().sketches) {
    if (s.name != "service_task_e2e_ms_window") continue;
    for (const util::SketchExemplar& e : s.exemplars) {
      EXPECT_NE(e.trace_id, 0u);
      if (tracer.Lookup(e.trace_id, nullptr)) ++resolved;
    }
  }
  EXPECT_GE(resolved, 1);
}

// Deterministic anomaly-to-black-box chain, driven by CheckOnce() instead
// of the poll thread: an injected per-batch stall breaches a microscopic
// heartbeat timeout, the hook pins the stalled batch in the tracer and
// dumps the flight recorder, the dump already shows the injected delay
// phase plus the anomaly event, and every trace retained afterwards is
// retained *because* of the flag (head/tail sampling disabled).
TEST(Service, InjectedStallFlagsTracesAndDumpsFlightRecorder) {
  const core::Instance instance = MakeInstance(20, 30, /*seed=*/31);
  auto allocator = algo::CreateAllocator("greedy", 1);
  ASSERT_TRUE(allocator.ok());

  TaskTracerOptions trace_options;
  trace_options.head_sample_every = 0;  // flagged retention only
  trace_options.tail_k = 0;
  TaskTracer tracer(trace_options);

  util::MetricsRegistry registry;
  WatchdogOptions watchdog_options;
  watchdog_options.heartbeat_timeout_ms = 1e-6;
  StallWatchdog watchdog(watchdog_options, &registry);
  std::vector<WatchdogAnomaly> hooked;
  std::string dump;
  watchdog.SetOnAnomaly([&](const WatchdogAnomaly& anomaly) {
    tracer.FlagBatch(anomaly.batch_seq);
    if (dump.empty()) {
      dump = util::FlightRecorder::Global().DumpJsonl("watchdog:" +
                                                      anomaly.kind);
    }
    hooked.push_back(anomaly);
  });

  ServiceOptions options = FastOptions();
  options.time_scale = 500.0;  // ~180 ms model horizon: several batches
  options.inject_batch_delay_ms = 30.0;
  options.tracer = &tracer;
  options.watchdog = &watchdog;
  Service service(instance, **allocator, options);
  service.Start();
  for (int w = 0; w < instance.num_workers(); ++w) {
    ASSERT_TRUE(service.SubmitWorker(w).ok());
  }
  for (int t = 0; t < instance.num_tasks(); ++t) {
    ASSERT_TRUE(service.SubmitTask(t).ok());
  }

  // Let two stalled batches heartbeat, then evaluate deterministically
  // while tasks are still undecided (the ~180 ms horizon guarantees work
  // outlives batch 1 at 30+ ms per batch).
  for (int i = 0; i < 1000 && service.stats().batches < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(service.stats().batches, 2);
  EXPECT_GT(service.pending_tasks(), 0);
  ASSERT_GE(watchdog.CheckOnce(), 1);
  service.Drain();

  ASSERT_GE(hooked.size(), 1u);
  EXPECT_EQ(hooked[0].kind, "heartbeat_stall");
  EXPECT_GE(hooked[0].batch_seq, 1);

  // The black box taken inside the hook: valid header, the injected-delay
  // phase span from the stalled batch, and the anomaly event itself.
  EXPECT_NE(dump.find("\"schema\":\"dasc-flight/1\""), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"batch_begin\""), std::string::npos);
  EXPECT_NE(dump.find("\"label\":\"inject_delay\""), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"anomaly\",\"label\":\"heartbeat_stall\""),
            std::string::npos);

  // Every trace retained in this run was pinned by the flagged batch.
  const TaskTracerStats stats = tracer.stats();
  EXPECT_EQ(stats.traces_decided, instance.num_tasks());
  EXPECT_GE(stats.flagged_batches, 1);
  EXPECT_GE(stats.flagged_retained, 1);
  EXPECT_EQ(stats.traces_retained, stats.flagged_retained);
  for (const TaskTraceRecord& rec : tracer.RetainedTraces()) {
    EXPECT_EQ(rec.retained_reason, "flagged");
    EXPECT_LE(rec.first_admit_batch, hooked[0].batch_seq);
    EXPECT_GE(rec.decide_batch, hooked[0].batch_seq);
  }
}

}  // namespace
}  // namespace dasc::sim
