// Flight recorder tests: bounded per-thread rings (overwrite + drop
// accounting), span self-time nesting and the snapshot-and-clear phase
// table, label interning, the runtime kill switch, and the dasc-flight/1
// dump format (header fields, label table, ascending t_ns merge). The
// recorder is a process-wide singleton shared by every test in this binary,
// so assertions are delta-based and keyed on test-unique labels. See
// DESIGN.md §16.
#include "util/flight_recorder.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace dasc::util {
namespace {

FlightRecorder& Recorder() { return FlightRecorder::Global(); }

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

int CountOccurrences(const std::string& text, const std::string& needle) {
  int count = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(FlightRecorder, KindNamesCoverTaxonomy) {
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kBatchBegin),
               "batch_begin");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kBatchEnd), "batch_end");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kPhaseBegin),
               "phase_begin");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kPhaseEnd), "phase_end");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kDecision), "decision");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kAnomaly), "anomaly");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kMark), "mark");
}

TEST(FlightRecorder, LabelInterningIsStableAndReserved) {
  const uint32_t id = Recorder().InternLabel("flight_test_label_a");
  EXPECT_NE(id, 0u);  // 0 is reserved for "none"
  EXPECT_EQ(Recorder().InternLabel("flight_test_label_a"), id);
  EXPECT_NE(Recorder().InternLabel("flight_test_label_b"), id);
  EXPECT_EQ(Recorder().LabelName(id), "flight_test_label_a");
  EXPECT_EQ(Recorder().LabelName(0), "");
  EXPECT_EQ(Recorder().LabelName(1u << 30), "");
}

// Nested spans: the parent's accumulated *self* time excludes the child's
// elapsed time. Sleeps give min bounds (safe on loaded machines); the upper
// bound on the parent only fails if the parent's own ~5 ms of work jitters
// past the child's 60 ms sleep.
TEST(FlightRecorder, SpanSelfTimeExcludesNestedChildren) {
  const uint32_t outer = Recorder().InternLabel("flight_test_outer");
  const uint32_t inner = Recorder().InternLabel("flight_test_inner");
  TakeThreadPhaseNanos();  // clear any residue from earlier tests

  {
    FlightSpan outer_span(outer);
    SleepMs(5);
    {
      FlightSpan inner_span(inner);
      SleepMs(60);
    }
  }

  const auto phases = TakeThreadPhaseNanos();
  int64_t outer_ns = -1;
  int64_t inner_ns = -1;
  for (const auto& [label, ns] : phases) {
    if (label == outer) outer_ns = ns;
    if (label == inner) inner_ns = ns;
  }
  ASSERT_GE(inner_ns, 0) << "inner phase missing from the thread table";
  ASSERT_GE(outer_ns, 0) << "outer phase missing from the thread table";
  EXPECT_GE(inner_ns, 55'000'000);
  EXPECT_GE(outer_ns, 4'000'000);
  EXPECT_LT(outer_ns, inner_ns) << "parent self time includes its child";

  // Snapshot-and-clear: the table is empty until new spans close.
  for (const auto& [label, ns] : TakeThreadPhaseNanos()) {
    EXPECT_NE(label, outer);
    EXPECT_NE(label, inner);
  }
}

TEST(FlightRecorder, RingOverwritesOldestAndCountsDrops) {
  // Capacity applies to rings created after the call, so record from a
  // fresh thread (this test thread's ring already exists at default size).
  Recorder().SetRingCapacity(8);
  const uint32_t label = Recorder().InternLabel("flight_test_ring");
  const int64_t recorded_before = Recorder().recorded();
  const int64_t dropped_before = Recorder().dropped();

  std::thread writer([&] {
    for (int i = 0; i < 20; ++i) {
      Recorder().Record(FlightEventKind::kMark, label, i);
    }
  });
  writer.join();
  Recorder().SetRingCapacity(FlightRecorder::kDefaultRingCapacity);

  EXPECT_GE(Recorder().recorded() - recorded_before, 20);
  EXPECT_GE(Recorder().dropped() - dropped_before, 12);

  // Only the newest 8 events survive in the dump, and they are the last 8
  // by payload.
  const std::string dump = Recorder().DumpJsonl("ring_test");
  EXPECT_EQ(CountOccurrences(dump, "\"label\":\"flight_test_ring\""), 8);
  EXPECT_EQ(dump.find("\"label\":\"flight_test_ring\",\"a\":11,"),
            std::string::npos);
  EXPECT_NE(dump.find("\"label\":\"flight_test_ring\",\"a\":12,"),
            std::string::npos);
  EXPECT_NE(dump.find("\"label\":\"flight_test_ring\",\"a\":19,"),
            std::string::npos);
}

TEST(FlightRecorder, DisabledRecorderRecordsNothing) {
  const uint32_t label = Recorder().InternLabel("flight_test_disabled");
  TakeThreadPhaseNanos();
  Recorder().SetEnabled(false);
  EXPECT_FALSE(Recorder().enabled());
  const int64_t recorded_before = Recorder().recorded();

  Recorder().Record(FlightEventKind::kMark, label);
  {
    FlightSpan span(label);
    SleepMs(2);
  }
  Recorder().SetEnabled(true);

  EXPECT_EQ(Recorder().recorded(), recorded_before);
  // The label is interned (it appears in the header table) but no event
  // line may carry it.
  EXPECT_EQ(Recorder().DumpJsonl("disabled_test")
                .find("\"label\":\"flight_test_disabled\""),
            std::string::npos);
  // Disabled spans accumulate no phase time either.
  for (const auto& [l, ns] : TakeThreadPhaseNanos()) EXPECT_NE(l, label);
}

TEST(FlightRecorder, DumpIsValidFlightV1MergedAscending) {
  const uint32_t label = Recorder().InternLabel("flight_test_dump");
  // Events from two threads must merge into one ascending-t_ns stream.
  Recorder().Record(FlightEventKind::kMark, label, 1);
  std::thread other(
      [&] { Recorder().Record(FlightEventKind::kAnomaly, label, 2); });
  other.join();
  Recorder().Record(FlightEventKind::kMark, label, 3);

  const std::string dump = Recorder().DumpJsonl("dump \"format\" test");
  std::istringstream lines(dump);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_NE(header.find("\"type\":\"flight\""), std::string::npos);
  EXPECT_NE(header.find("\"schema\":\"dasc-flight/1\""), std::string::npos);
  EXPECT_NE(header.find("\"reason\":\"dump \\\"format\\\" test\""),
            std::string::npos)
      << header;
  EXPECT_NE(header.find("\"labels\":["), std::string::npos);
  EXPECT_NE(header.find("\"flight_test_dump\""), std::string::npos);

  // Header counts match the body; every event line is well-formed and t_ns
  // never decreases across the merged stream.
  int64_t events_declared = -1;
  {
    const size_t pos = header.find("\"events\":");
    ASSERT_NE(pos, std::string::npos);
    events_declared = std::strtoll(header.c_str() + pos + 9, nullptr, 10);
  }
  int64_t events_seen = 0;
  int64_t prev_t = -1;
  bool saw_anomaly = false;
  for (std::string line; std::getline(lines, line);) {
    ASSERT_NE(line.find("\"type\":\"event\""), std::string::npos) << line;
    const size_t pos = line.find("\"t_ns\":");
    ASSERT_NE(pos, std::string::npos) << line;
    const int64_t t = std::strtoll(line.c_str() + pos + 7, nullptr, 10);
    EXPECT_GE(t, prev_t) << "events out of order: " << line;
    prev_t = t;
    ++events_seen;
    if (line.find("\"kind\":\"anomaly\"") != std::string::npos &&
        line.find("flight_test_dump") != std::string::npos) {
      saw_anomaly = true;
    }
  }
  EXPECT_EQ(events_seen, events_declared);
  EXPECT_TRUE(saw_anomaly);
  EXPECT_GE(events_seen, 3);
}

}  // namespace
}  // namespace dasc::util
