// Prometheus text exposition format (0.0.4) conformance: parses the
// /metrics payload with a small line-grammar parser and checks the
// invariants a real scraper relies on — exactly one # TYPE line per family,
// emitted before and contiguous with that family's samples; histogram
// buckets cumulative and ascending in `le`, terminated by +Inf whose count
// equals _count; summary (sketch) quantile labels in [0,1] with monotone
// values. See DESIGN.md §14.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace dasc::util {
namespace {

struct Sample {
  std::string name;    // full series name, labels included
  std::string family;  // name with labels and histogram/summary suffix cut
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

struct Family {
  std::string type;  // counter | gauge | histogram | summary
  std::vector<Sample> samples;
};

// Family of a series name: strip the {label} block, then a _bucket/_sum/
// _count suffix (histogram and summary child series).
std::string FamilyOf(std::string name) {
  const size_t brace = name.find('{');
  if (brace != std::string::npos) name.resize(brace);
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s(suffix);
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      return name.substr(0, name.size() - s.size());
    }
  }
  return name;
}

std::map<std::string, std::string> ParseLabels(const std::string& name) {
  std::map<std::string, std::string> labels;
  const size_t open = name.find('{');
  if (open == std::string::npos) return labels;
  const size_t close = name.rfind('}');
  EXPECT_NE(close, std::string::npos) << "unterminated label block: " << name;
  std::string body = name.substr(open + 1, close - open - 1);
  std::istringstream in(body);
  std::string pair;
  while (std::getline(in, pair, ',')) {
    const size_t eq = pair.find('=');
    EXPECT_NE(eq, std::string::npos) << "label without '=': " << pair;
    if (eq == std::string::npos) continue;
    std::string key = pair.substr(0, eq);
    std::string value = pair.substr(eq + 1);
    EXPECT_GE(value.size(), 2u) << "unquoted label value: " << pair;
    if (value.size() < 2) continue;
    EXPECT_EQ(value.front(), '"') << pair;
    EXPECT_EQ(value.back(), '"') << pair;
    labels[key] = value.substr(1, value.size() - 2);
  }
  return labels;
}

// Parses exposition text into families, enforcing the line grammar and the
// TYPE-before-samples + contiguity rules as it goes.
std::map<std::string, Family> ParseExposition(const std::string& text) {
  std::map<std::string, Family> families;
  std::istringstream in(text);
  std::string line;
  std::string current_family;  // family opened by the most recent TYPE line
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream header(line.substr(7));
      std::string family, type;
      header >> family >> type;
      EXPECT_FALSE(family.empty()) << line;
      EXPECT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram" || type == "summary")
          << "unknown type: " << line;
      EXPECT_EQ(families.count(family), 0u)
          << "duplicate # TYPE line for family " << family;
      families[family].type = type;
      current_family = family;
      continue;
    }
    EXPECT_NE(line[0], '#') << "only # TYPE comments are emitted: " << line;
    // Sample line: <name>[{labels}] <value>
    const size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << line;
    Sample sample;
    sample.name = line.substr(0, space);
    sample.family = FamilyOf(sample.name);
    sample.labels = ParseLabels(sample.name);
    char* end = nullptr;
    sample.value = std::strtod(line.c_str() + space + 1, &end);
    EXPECT_EQ(*end, '\0') << "trailing junk after value: " << line;
    // TYPE precedes its samples, and a family's samples are contiguous:
    // every sample belongs to the family opened by the last TYPE line.
    EXPECT_EQ(sample.family, current_family)
        << "sample " << sample.name << " outside its family's TYPE block";
    families[sample.family].samples.push_back(std::move(sample));
  }
  return families;
}

// MetricsRegistry is pinned (mutex + stable metric addresses), so callers
// pass one in rather than receiving it by value.
void Populate(MetricsRegistry& registry) {
  registry.GetCounter("alloc_total")->Increment(42);
  registry.GetCounter("watchdog_anomalies_total{kind=\"heartbeat_stall\"}")
      ->Increment(3);
  registry.GetCounter("watchdog_anomalies_total{kind=\"queue_depth\"}")
      ->Increment(1);
  registry.GetGauge("threadpool_queue_depth")->Set(7.5);
  Histogram* histogram = registry.GetHistogram("batch_ms");
  WindowedQuantileSketch* sketch =
      registry.GetSketch("batch_ms_window", /*window_intervals=*/4);
  for (int i = 1; i <= 500; ++i) {
    histogram->Observe(0.01 * i);
    sketch->Observe(0.01 * i);
  }
}

std::string PopulatedExposition() {
  MetricsRegistry registry;
  Populate(registry);
  std::ostringstream out;
  registry.WritePrometheus(out);
  return out.str();
}

TEST(PrometheusConformance, EveryFamilyHasOneTypeLineBeforeItsSamples) {
  // ParseExposition enforces TYPE-before-samples, contiguity, no duplicate
  // TYPE lines, and the line grammar via EXPECT as it parses.
  const auto families = ParseExposition(PopulatedExposition());
  ASSERT_EQ(families.count("alloc_total"), 1u);
  EXPECT_EQ(families.at("alloc_total").type, "counter");
  ASSERT_EQ(families.count("watchdog_anomalies_total"), 1u);
  ASSERT_EQ(families.count("threadpool_queue_depth"), 1u);
  EXPECT_EQ(families.at("threadpool_queue_depth").type, "gauge");
  ASSERT_EQ(families.count("batch_ms"), 1u);
  EXPECT_EQ(families.at("batch_ms").type, "histogram");
  ASSERT_EQ(families.count("batch_ms_window"), 1u);
  EXPECT_EQ(families.at("batch_ms_window").type, "summary");
}

TEST(PrometheusConformance, LabeledSeriesShareOneFamilyTypeLine) {
  const auto families = ParseExposition(PopulatedExposition());
  const Family& family = families.at("watchdog_anomalies_total");
  EXPECT_EQ(family.type, "counter");
  ASSERT_EQ(family.samples.size(), 2u);
  std::map<std::string, double> by_kind;
  for (const Sample& s : family.samples) {
    ASSERT_EQ(s.labels.count("kind"), 1u) << s.name;
    by_kind[s.labels.at("kind")] = s.value;
  }
  EXPECT_DOUBLE_EQ(by_kind.at("heartbeat_stall"), 3.0);
  EXPECT_DOUBLE_EQ(by_kind.at("queue_depth"), 1.0);
}

TEST(PrometheusConformance, HistogramBucketsAreCumulativeAndEndAtInf) {
  const auto families = ParseExposition(PopulatedExposition());
  const Family& family = families.at("batch_ms");
  double last_le = 0.0;
  double last_cumulative = -1.0;
  double inf_count = -1.0;
  double sum = -1.0;
  double count = -1.0;
  bool after_inf = false;
  for (const Sample& s : family.samples) {
    if (s.name.rfind("batch_ms_bucket", 0) == 0) {
      EXPECT_FALSE(after_inf) << "+Inf must be the last bucket";
      ASSERT_EQ(s.labels.count("le"), 1u);
      const std::string& le = s.labels.at("le");
      if (le == "+Inf") {
        inf_count = s.value;
        after_inf = true;
      } else {
        const double bound = std::strtod(le.c_str(), nullptr);
        EXPECT_GT(bound, last_le) << "le bounds must ascend";
        last_le = bound;
      }
      EXPECT_GE(s.value, last_cumulative) << "bucket counts are cumulative";
      last_cumulative = s.value;
    } else if (s.name == "batch_ms_sum") {
      sum = s.value;
    } else if (s.name == "batch_ms_count") {
      count = s.value;
    }
  }
  EXPECT_TRUE(after_inf) << "missing le=\"+Inf\" bucket";
  EXPECT_DOUBLE_EQ(count, 500.0);
  EXPECT_DOUBLE_EQ(inf_count, count) << "+Inf bucket must equal _count";
  // Σ 0.01..5.00 = 0.01 * 500*501/2 = 1252.5 (fp tolerance).
  EXPECT_NEAR(sum, 1252.5, 1e-6);
}

TEST(PrometheusConformance, SummaryQuantilesAreValidAndMonotone) {
  const auto families = ParseExposition(PopulatedExposition());
  const Family& family = families.at("batch_ms_window");
  double last_q = -1.0;
  double last_value = -1.0;
  int quantile_samples = 0;
  bool saw_sum = false;
  bool saw_count = false;
  for (const Sample& s : family.samples) {
    if (s.labels.count("quantile") != 0u) {
      const double q = std::strtod(s.labels.at("quantile").c_str(), nullptr);
      EXPECT_GE(q, 0.0);
      EXPECT_LE(q, 1.0);
      EXPECT_GT(q, last_q) << "quantile labels must ascend";
      last_q = q;
      EXPECT_GE(s.value, last_value) << "quantile values must be monotone";
      last_value = s.value;
      ++quantile_samples;
    } else if (s.name == "batch_ms_window_sum") {
      saw_sum = true;
    } else if (s.name == "batch_ms_window_count") {
      saw_count = true;
      EXPECT_DOUBLE_EQ(s.value, 500.0);
    }
  }
  EXPECT_EQ(quantile_samples, 4);  // the documented p50/p90/p95/p99 set
  EXPECT_TRUE(saw_sum);
  EXPECT_TRUE(saw_count);
}

TEST(PrometheusConformance, EmptyRegistryProducesEmptyExposition) {
  MetricsRegistry registry;
  std::ostringstream out;
  registry.WritePrometheus(out);
  EXPECT_TRUE(out.str().empty());
}

}  // namespace
}  // namespace dasc::util
