// Differential tests: two independent implementations of the batch state
// machine (the replay Simulator and the online Platform) must agree when
// driven identically, and algorithm invariants must hold across random
// workloads end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/registry.h"
#include "gen/meetup.h"
#include "gen/synthetic.h"
#include "sim/platform.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace dasc {
namespace {

gen::SyntheticParams SmallWorkload(uint64_t seed) {
  gen::SyntheticParams params;
  params.seed = seed;
  params.num_workers = 60;
  params.num_tasks = 80;
  params.num_skills = 10;
  params.dependency_size = {0, 4};
  params.worker_skills = {1, 3};
  params.start_time = {0.0, 30.0};
  params.wait_time = {5.0, 10.0};
  params.velocity = {0.05, 0.1};
  params.max_distance = {0.2, 0.4};
  return params;
}

// Drives Platform with the same fixed cadence as Simulator. For allocators
// that never emit dependency-invalid pairs (greedy, urgency), the two state
// machines are equivalent: identical per-batch scores.
class SimulatorPlatformDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimulatorPlatformDifferentialTest, GreedyScoresMatch) {
  auto instance = gen::GenerateSynthetic(SmallWorkload(GetParam()));
  ASSERT_TRUE(instance.ok());

  sim::SimulatorOptions sim_options;
  sim_options.batch_interval = 2.0;
  auto sim_alloc = algo::CreateAllocator("greedy");
  ASSERT_TRUE(sim_alloc.ok());
  const sim::SimulationResult sim_result =
      sim::Simulator(*instance, sim_options).Run(**sim_alloc);

  sim::Platform platform(instance->num_skills());
  for (const auto& w : instance->workers()) {
    ASSERT_TRUE(platform.AddWorker(w).ok());
  }
  for (const auto& t : instance->tasks()) {
    ASSERT_TRUE(platform.AddTask(t).ok());
  }
  auto platform_alloc = algo::CreateAllocator("greedy");
  ASSERT_TRUE(platform_alloc.ok());
  // Same cadence: from the earliest start time, every 2.0.
  double begin = 1e18, end = -1e18;
  for (const auto& w : instance->workers()) {
    begin = std::min(begin, w.start_time);
    end = std::max(end, w.Deadline());
  }
  for (const auto& t : instance->tasks()) {
    begin = std::min(begin, t.start_time);
    end = std::max(end, t.Expiry());
  }
  for (double now = begin; now <= end + 1e-9; now += 2.0) {
    ASSERT_TRUE(platform.RunBatch(now, **platform_alloc).ok());
  }
  EXPECT_EQ(platform.total_score(), sim_result.score);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorPlatformDifferentialTest,
                         ::testing::Range<uint64_t>(0, 8));

// End-to-end invariants over random workloads and every registered
// allocator (except DFS, which is exponential).
class EndToEndInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EndToEndInvariantTest, AllAllocatorsRespectConservation) {
  auto instance = gen::GenerateSynthetic(SmallWorkload(GetParam() + 500));
  ASSERT_TRUE(instance.ok());
  for (const std::string& name : algo::KnownAllocatorNames()) {
    if (name == "dfs") continue;
    auto allocator = algo::CreateAllocator(name, GetParam());
    ASSERT_TRUE(allocator.ok());
    sim::SimulatorOptions options;
    options.batch_interval = 2.0;
    options.paranoid_checks = true;  // audits every committed batch
    const sim::SimulationResult result =
        sim::Simulator(*instance, options).Run(**allocator);
    EXPECT_LE(result.score, instance->num_tasks()) << name;
    EXPECT_EQ(result.score, result.completed_tasks) << name;
    int sum = 0;
    for (int s : result.per_batch_scores) sum += s;
    EXPECT_EQ(sum, result.score) << name;
  }
}

TEST_P(EndToEndInvariantTest, DependencyAwareBeatBaselinesOnChainWorkloads) {
  gen::SyntheticParams params = SmallWorkload(GetParam() + 900);
  params.num_tasks = 150;
  params.dependency_size = {2, 8};  // force chains
  auto instance = gen::GenerateSynthetic(params);
  ASSERT_TRUE(instance.ok());
  sim::SimulatorOptions options;
  options.batch_interval = 2.0;
  auto score_of = [&](const char* name) {
    auto allocator = algo::CreateAllocator(name, GetParam());
    DASC_CHECK(allocator.ok());
    return sim::Simulator(*instance, options).Run(**allocator).score;
  };
  const int greedy = score_of("greedy");
  const int closest = score_of("closest");
  EXPECT_GE(greedy, closest);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndInvariantTest,
                         ::testing::Range<uint64_t>(0, 6));

// The Meetup generator feeds the same invariants.
TEST(EndToEndMeetupTest, FullPipelineOnMeetupWorkload) {
  gen::MeetupParams params;
  params.num_workers = 300;
  params.num_tasks = 150;
  params.num_groups = 12;
  auto instance = gen::GenerateMeetup(params);
  ASSERT_TRUE(instance.ok());
  sim::SimulatorOptions options;
  options.batch_interval = 1.0;
  options.paranoid_checks = true;
  for (const char* name : {"greedy", "gg", "urgency", "maxmatch"}) {
    auto allocator = algo::CreateAllocator(name, 4);
    ASSERT_TRUE(allocator.ok());
    const sim::SimulationResult result =
        sim::Simulator(*instance, options).Run(**allocator);
    EXPECT_GT(result.score, 0) << name;
  }
}

}  // namespace
}  // namespace dasc
