// Unit tests for util: Status/Result, Rng, TablePrinter/CSV, leveled logging.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/csv.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/timer.h"

namespace dasc::util {
namespace {

// ---------------------------------------------------------------- Status ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad worker id");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad worker id");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad worker id");
}

TEST(StatusTest, AllConstructorsSetMatchingCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// ------------------------------------------------------------------- Rng ---

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // all 8 values hit in 1000 draws w.h.p.
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble(2.0, 3.0);
    ASSERT_GE(v, 2.0);
    ASSERT_LT(v, 3.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 2.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ZipfSkewsTowardSmallRanks) {
  Rng rng(19);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[static_cast<size_t>(rng.Zipf(10, 1.0))];
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
  // Rank 0 should get roughly 1/H_10 ~ 34% of the mass.
  EXPECT_NEAR(counts[0] / 20000.0, 0.34, 0.05);
}

TEST(RngTest, ZipfBoundsRespected) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Zipf(7, 1.5);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(29);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.06);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.06);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(37);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<size_t>(i)] = i;
  auto orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng parent(41);
  Rng child = parent.Fork();
  // The child's stream differs from the parent's continued stream.
  EXPECT_NE(parent.Next(), child.Next());
}

// ----------------------------------------------------------------- Table ---

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table("demo");
  table.AddRow({"alg", "score"});
  table.AddRow({"greedy", "10"});
  table.AddRow({"g", "7"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("greedy"), std::string::npos);
  EXPECT_NE(text.find("score"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table;
  table.AddRow({"a", "b"});
  table.AddRow({"1", "x,y"});
  std::ostringstream out;
  table.PrintCsv(out);
  EXPECT_EQ(out.str(), "a,b\n1,\"x,y\"\n");
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
}

TEST(CsvEscapeTest, QuotesSpecials) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

// ----------------------------------------------------------------- Timer ---

TEST(WallTimerTest, MeasuresElapsedMonotonically) {
  WallTimer timer;
  const double first = timer.ElapsedSeconds();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(static_cast<double>(i));
  const double second = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), second + 1.0);
}

// --------------------------------------------------------------- Logging ---

TEST(LoggingTest, BelowMinLevelIsSuppressedAndUnevaluated) {
  ASSERT_EQ(MinLogLevel(), LogLevel::WARNING);  // library default
  int evaluations = 0;
  ::testing::internal::CaptureStderr();
  DASC_LOG(INFO) << "info " << ++evaluations;
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
  EXPECT_EQ(evaluations, 0);  // streamed operands must stay unevaluated
}

TEST(LoggingTest, WarningPrintsLevelLocationAndMessage) {
  ::testing::internal::CaptureStderr();
  DASC_LOG(WARNING) << "audit drift: " << 93 << "%";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[WARNING]"), std::string::npos) << out;
  EXPECT_NE(out.find("util_test.cc"), std::string::npos) << out;
  EXPECT_NE(out.find("audit drift: 93%"), std::string::npos) << out;
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), '\n');
}

TEST(LoggingTest, MinLevelIsRuntimeAdjustable) {
  SetMinLogLevel(LogLevel::INFO);
  ::testing::internal::CaptureStderr();
  DASC_LOG(INFO) << "now visible";
  EXPECT_NE(::testing::internal::GetCapturedStderr().find("[INFO]"),
            std::string::npos);
  SetMinLogLevel(LogLevel::ERROR);
  ::testing::internal::CaptureStderr();
  DASC_LOG(WARNING) << "suppressed";
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
  SetMinLogLevel(LogLevel::WARNING);  // restore the default for other tests
}

TEST(LoggingTest, LevelNamesAreStable) {
  EXPECT_STREQ(LogLevelName(LogLevel::INFO), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::WARNING), "WARNING");
  EXPECT_STREQ(LogLevelName(LogLevel::ERROR), "ERROR");
}

}  // namespace
}  // namespace dasc::util
