// Tests for the batch platform simulator and metrics helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "algo/baselines.h"
#include "algo/greedy.h"
#include "algo/registry.h"
#include "gen/synthetic.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "util/metrics.h"

namespace dasc::sim {
namespace {

using testing::MakeTask;
using testing::MakeWorker;

// A 2-batch scenario: t0 must be assigned in batch 1 before its dependent t1
// becomes assignable (single worker, so they cannot go in one batch).
core::Instance TwoPhaseInstance() {
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}, /*start=*/0.0, /*wait=*/100.0,
                  /*velocity=*/10.0, /*max_distance=*/100.0)},
      {MakeTask(0, 1, 0, 0, {}, 0.0, 100.0),
       MakeTask(1, 2, 0, 0, {0}, 0.0, 100.0)},
      1);
  DASC_CHECK(instance.ok());
  return std::move(*instance);
}

TEST(SimulatorTest, EmptyInstanceNoBatches) {
  auto instance = core::Instance::Create({}, {}, 1);
  ASSERT_TRUE(instance.ok());
  Simulator simulator(*instance, SimulatorOptions{});
  algo::GreedyAllocator greedy;
  const SimulationResult result = simulator.Run(greedy);
  EXPECT_EQ(result.score, 0);
  EXPECT_EQ(result.batches, 0);
}

TEST(SimulatorTest, SequentialDependencyAcrossBatches) {
  const core::Instance instance = TwoPhaseInstance();
  SimulatorOptions options;
  options.batch_interval = 1.0;
  options.paranoid_checks = true;
  Simulator simulator(instance, options);
  algo::GreedyAllocator greedy;
  const SimulationResult result = simulator.Run(greedy);
  // Batch 1: worker takes t0 (t1's dependency unmet in the same batch would
  // need a second worker). Batch 2+: worker free again, t0 assigned -> t1.
  EXPECT_EQ(result.score, 2);
  EXPECT_EQ(result.completed_tasks, 2);
  EXPECT_GE(result.nonempty_batches, 2);
}

TEST(SimulatorTest, ScoreMatchesPerBatchSum) {
  const core::Instance instance = TwoPhaseInstance();
  SimulatorOptions options;
  options.batch_interval = 1.0;
  Simulator simulator(instance, options);
  algo::GreedyAllocator greedy;
  const SimulationResult result = simulator.Run(greedy);
  int sum = 0;
  for (int s : result.per_batch_scores) sum += s;
  EXPECT_EQ(sum, result.score);
}

TEST(SimulatorTest, BusyWorkerNotReassigned) {
  // Slow worker: serving t0 takes 10 time units; t1 expires meanwhile.
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}, 0.0, 100.0, /*velocity=*/0.1,
                  /*max_distance=*/100.0)},
      {MakeTask(0, 1, 0, 0, {}, 0.0, 100.0),
       MakeTask(1, 0, 0, 0, {}, 0.0, /*wait=*/5.0)},
      1);
  ASSERT_TRUE(instance.ok());
  SimulatorOptions options;
  options.batch_interval = 1.0;
  Simulator simulator(*instance, options);
  algo::ClosestAllocator closest;
  const SimulationResult result = simulator.Run(closest);
  // Closest grabs t1 at t=0 (distance 0); while serving... t1 is at the
  // worker's own location, so it completes instantly; then t0 (10 units
  // away, reachable well within its deadline) is taken in a later batch.
  EXPECT_EQ(result.score, 2);
}

TEST(SimulatorTest, WorkerRetiresAfterDeadline) {
  // Worker waits only 2 time units; the late task never gets served.
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}, 0.0, /*wait=*/2.0, 10.0, 100.0)},
      {MakeTask(0, 0, 0, 0, {}, /*start=*/5.0, /*wait=*/10.0)},
      1);
  ASSERT_TRUE(instance.ok());
  SimulatorOptions options;
  options.batch_interval = 1.0;
  Simulator simulator(*instance, options);
  algo::GreedyAllocator greedy;
  EXPECT_EQ(simulator.Run(greedy).score, 0);
}

TEST(SimulatorTest, TaskExpiresUnserved) {
  // Task expires before the worker arrives on the platform.
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}, /*start=*/10.0, 100.0, 10.0, 100.0)},
      {MakeTask(0, 0, 0, 0, {}, 0.0, /*wait=*/3.0)},
      1);
  ASSERT_TRUE(instance.ok());
  SimulatorOptions options;
  options.batch_interval = 1.0;
  Simulator simulator(*instance, options);
  algo::GreedyAllocator greedy;
  EXPECT_EQ(simulator.Run(greedy).score, 0);
}

TEST(SimulatorTest, CumulativeBudgetLimitsTrips) {
  // Budget 3 with two tasks 2.0 apart each: per-trip mode serves both,
  // cumulative mode only one.
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}, 0.0, 100.0, /*velocity=*/10.0,
                  /*max_distance=*/3.0)},
      {MakeTask(0, 2, 0, 0, {}, 0.0, 100.0),
       MakeTask(1, 4, 0, 0, {}, 0.0, 100.0)},
      1);
  ASSERT_TRUE(instance.ok());
  SimulatorOptions per_trip;
  per_trip.batch_interval = 1.0;
  SimulatorOptions cumulative = per_trip;
  cumulative.budget_mode = SimulatorOptions::BudgetMode::kCumulative;
  algo::GreedyAllocator g1, g2;
  EXPECT_EQ(Simulator(*instance, per_trip).Run(g1).score, 2);
  EXPECT_EQ(Simulator(*instance, cumulative).Run(g2).score, 1);
}

TEST(SimulatorTest, CompletedDependencyModeDelaysDependents) {
  // t1 (skill B, at w1's doorstep) depends on t0 (skill A, 10 away from the
  // slow w0, completing at t=20). Paper semantics (kAssigned) co-assigns
  // both in batch 0; completion-based mode must hold t1 back until t0 has
  // physically completed.
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}, 0.0, 1000.0, /*velocity=*/0.5, 1000.0),
       MakeWorker(1, 0, 2, {1}, 0.0, 1000.0, /*velocity=*/0.5, 1000.0)},
      {MakeTask(0, 10, 0, 0, {}, 0.0, 1000.0),
       MakeTask(1, 0, 2, 1, {0}, 0.0, 1000.0)},
      2);
  ASSERT_TRUE(instance.ok());
  SimulatorOptions assigned_mode;
  assigned_mode.batch_interval = 1.0;
  assigned_mode.paranoid_checks = true;
  SimulatorOptions completed_mode = assigned_mode;
  completed_mode.dependency_mode =
      SimulatorOptions::DependencyMode::kCompleted;
  algo::GreedyAllocator g1, g2;
  const SimulationResult a = Simulator(*instance, assigned_mode).Run(g1);
  const SimulationResult b = Simulator(*instance, completed_mode).Run(g2);
  EXPECT_EQ(a.score, 2);
  EXPECT_EQ(b.score, 2);
  // kAssigned: both pairs land in the first non-empty batch.
  ASSERT_FALSE(a.per_batch_scores.empty());
  EXPECT_EQ(a.per_batch_scores[0], 2);
  // kCompleted: the first batch can only carry t0; t1 lands once t0 is done.
  ASSERT_GE(b.per_batch_scores.size(), 2u);
  EXPECT_EQ(b.per_batch_scores[0], 1);
}

TEST(SimulatorTest, ConservationLaws) {
  // On a generated workload with all algorithms: every task served at most
  // once, completed == score, and score <= number of tasks.
  gen::SyntheticParams params;
  params.seed = 21;
  params.num_workers = 80;
  params.num_tasks = 100;
  params.num_skills = 10;
  params.dependency_size = {0, 4};
  params.worker_skills = {1, 3};
  params.start_time = {0.0, 20.0};
  params.wait_time = {5.0, 10.0};
  params.velocity = {0.05, 0.1};
  params.max_distance = {0.2, 0.4};
  auto instance = gen::GenerateSynthetic(params);
  ASSERT_TRUE(instance.ok());
  for (const char* name : {"greedy", "game5", "closest", "random"}) {
    auto allocator = algo::CreateAllocator(name, 5);
    ASSERT_TRUE(allocator.ok());
    SimulatorOptions options;
    options.batch_interval = 2.0;
    options.paranoid_checks = true;
    Simulator simulator(*instance, options);
    const SimulationResult result = simulator.Run(**allocator);
    EXPECT_EQ(result.completed_tasks, result.score) << name;
    EXPECT_LE(result.score, instance->num_tasks()) << name;
    EXPECT_GT(result.score, 0) << name;
  }
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  gen::SyntheticParams params;
  params.seed = 33;
  params.num_workers = 50;
  params.num_tasks = 60;
  params.num_skills = 8;
  params.dependency_size = {0, 3};
  auto instance = gen::GenerateSynthetic(params);
  ASSERT_TRUE(instance.ok());
  SimulatorOptions options;
  options.batch_interval = 5.0;
  auto a1 = algo::CreateAllocator("game5", 7);
  auto a2 = algo::CreateAllocator("game5", 7);
  ASSERT_TRUE(a1.ok() && a2.ok());
  const SimulationResult r1 = Simulator(*instance, options).Run(**a1);
  const SimulationResult r2 = Simulator(*instance, options).Run(**a2);
  EXPECT_EQ(r1.score, r2.score);
  EXPECT_EQ(r1.per_batch_scores, r2.per_batch_scores);
}

// Batches that commit nothing (empty market, or a live market the allocator
// returned nothing for) are tallied in empty_batches and excluded from the
// per-batch timing samples, so the latency percentiles only see batches that
// did allocator work that mattered.
TEST(SimulatorTest, EmptyBatchesCountedAndExcludedFromTimings) {
  const core::Instance instance = TwoPhaseInstance();
  SimulatorOptions options;
  options.batch_interval = 1.0;
  Simulator simulator(instance, options);
  algo::GreedyAllocator greedy;
  const SimulationResult result = simulator.Run(greedy);
  // Both tasks complete early; the long tail of the run is empty batches.
  EXPECT_EQ(result.completed_tasks, 2);
  EXPECT_GT(result.empty_batches, 0);
  EXPECT_EQ(static_cast<int>(result.per_batch_allocator_ms.size()),
            result.batches - result.empty_batches);
}

// ------------------------------------------------------------ Event-driven ---

TEST(EventDrivenTest, FiresExactlyAtArrivalsAndCompletions) {
  // Worker arrives at t=0, tasks at t=0 and t=7.3; fixed intervals of 5
  // would see the second task only at t=10, event-driven at 7.3 sharp.
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}, 0.0, 100.0, /*velocity=*/100.0, 100.0)},
      {MakeTask(0, 1, 0, 0, {}, 0.0, 100.0),
       MakeTask(1, 2, 0, 0, {}, /*start=*/7.3, /*wait=*/100.0)},
      1);
  ASSERT_TRUE(instance.ok());
  SimulatorOptions options;
  options.batch_trigger = SimulatorOptions::BatchTrigger::kEventDriven;
  Trace trace;
  options.trace = &trace;
  Simulator simulator(*instance, options);
  algo::GreedyAllocator greedy;
  const SimulationResult result = simulator.Run(greedy);
  EXPECT_EQ(result.score, 2);
  bool dispatched_at_arrival = false;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind == TraceEventKind::kDispatch && e.task == 1) {
      dispatched_at_arrival = std::abs(e.time - 7.3) < 1e-6;
    }
  }
  EXPECT_TRUE(dispatched_at_arrival);
}

TEST(EventDrivenTest, NeverWorseThanCoarseFixedInterval) {
  // A coarse fixed interval misses short-lived tasks; the event-driven
  // trigger cannot (it fires at every arrival).
  gen::SyntheticParams params;
  params.seed = 9;
  params.num_workers = 60;
  params.num_tasks = 80;
  params.num_skills = 8;
  params.dependency_size = {0, 3};
  params.worker_skills = {1, 3};
  params.wait_time = {2.0, 4.0};
  params.start_time = {0.0, 40.0};
  params.velocity = {0.05, 0.1};
  params.max_distance = {0.3, 0.5};
  auto instance = gen::GenerateSynthetic(params);
  ASSERT_TRUE(instance.ok());
  SimulatorOptions coarse;
  coarse.batch_interval = 5.0;  // > task windows: many tasks never sampled
  SimulatorOptions eventful = coarse;
  eventful.batch_trigger = SimulatorOptions::BatchTrigger::kEventDriven;
  algo::GreedyAllocator g1, g2;
  const int coarse_score = Simulator(*instance, coarse).Run(g1).score;
  const int event_score = Simulator(*instance, eventful).Run(g2).score;
  EXPECT_GT(event_score, coarse_score);
}

TEST(EventDrivenTest, CampedPairResolvesAtCompletionInstant) {
  // One worker camps on a dependent task; the dependency completes at t=2;
  // the event-driven trigger must resolve the camp at that instant.
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}, 0.0, 100.0, /*velocity=*/0.5, 100.0),
       MakeWorker(1, 0, 2, {1}, 0.0, 100.0, /*velocity=*/100.0, 100.0)},
      {MakeTask(0, 1, 0, 0, {}, 0.0, 100.0),        // served by w0, done t=2
       MakeTask(1, 0, 2, 1, {0}, 0.0, 100.0)},      // w1 camps until then
      2);
  ASSERT_TRUE(instance.ok());
  SimulatorOptions options;
  options.batch_trigger = SimulatorOptions::BatchTrigger::kEventDriven;
  options.dependency_mode = SimulatorOptions::DependencyMode::kCompleted;
  Trace trace;
  options.trace = &trace;
  algo::ClosestAllocator closest;
  const SimulationResult result = Simulator(*instance, options).Run(closest);
  EXPECT_EQ(result.score, 2);
  EXPECT_GE(trace.Count(TraceEventKind::kCampResolved), 1);
}

TEST(EventDrivenTest, LowerAssignmentLatencyThanCoarseIntervals) {
  // Event-driven batches react instantly to arrivals; a coarse fixed
  // interval makes tasks wait up to a full interval.
  gen::SyntheticParams params;
  params.seed = 15;
  params.num_workers = 60;
  params.num_tasks = 80;
  params.num_skills = 8;
  params.dependency_size = {0, 3};
  params.worker_skills = {1, 3};
  auto instance = gen::GenerateSynthetic(params);
  ASSERT_TRUE(instance.ok());
  SimulatorOptions coarse;
  coarse.batch_interval = 5.0;
  SimulatorOptions eventful = coarse;
  eventful.batch_trigger = SimulatorOptions::BatchTrigger::kEventDriven;
  algo::GreedyAllocator g1, g2;
  const SimulationResult coarse_result =
      Simulator(*instance, coarse).Run(g1);
  const SimulationResult event_result =
      Simulator(*instance, eventful).Run(g2);
  ASSERT_GT(coarse_result.completed_tasks, 0);
  ASSERT_GT(event_result.completed_tasks, 0);
  EXPECT_LT(event_result.mean_assignment_latency,
            coarse_result.mean_assignment_latency);
}

TEST(EventDrivenTest, DeterministicAndTerminates) {
  gen::SyntheticParams params;
  params.seed = 11;
  params.num_workers = 50;
  params.num_tasks = 60;
  params.num_skills = 8;
  params.dependency_size = {0, 3};
  auto instance = gen::GenerateSynthetic(params);
  ASSERT_TRUE(instance.ok());
  SimulatorOptions options;
  options.batch_trigger = SimulatorOptions::BatchTrigger::kEventDriven;
  auto a1 = algo::CreateAllocator("game5", 3);
  auto a2 = algo::CreateAllocator("game5", 3);
  ASSERT_TRUE(a1.ok() && a2.ok());
  const SimulationResult r1 = Simulator(*instance, options).Run(**a1);
  const SimulationResult r2 = Simulator(*instance, options).Run(**a2);
  EXPECT_EQ(r1.score, r2.score);
  EXPECT_EQ(r1.batches, r2.batches);
}

// ------------------------------------------------------------------- Trace ---

TEST(TraceTest, RecordsDispatchAndCompletion) {
  const core::Instance instance = TwoPhaseInstance();
  SimulatorOptions options;
  options.batch_interval = 1.0;
  Trace trace;
  options.trace = &trace;
  Simulator simulator(instance, options);
  algo::GreedyAllocator greedy;
  const SimulationResult result = simulator.Run(greedy);
  EXPECT_EQ(trace.Count(TraceEventKind::kDispatch), result.score);
  EXPECT_EQ(trace.Count(TraceEventKind::kCompletion), result.completed_tasks);
  EXPECT_GT(trace.Count(TraceEventKind::kBatch), 0);
}

TEST(TraceTest, CampEventsForBaselines) {
  // Closest on Example 1 camps on dependency-blocked tasks.
  const core::Instance instance = testing::Example1();
  SimulatorOptions options;
  options.batch_interval = 1.0;
  Trace trace;
  options.trace = &trace;
  Simulator simulator(instance, options);
  algo::ClosestAllocator closest;
  const SimulationResult result = simulator.Run(closest);
  EXPECT_EQ(trace.Count(TraceEventKind::kCamp), result.wasted_dispatches);
  EXPECT_GT(result.wasted_dispatches, 0);
  // Camped pairs either resolve or expire, never both for the same pair.
  EXPECT_LE(trace.Count(TraceEventKind::kCampResolved) +
                trace.Count(TraceEventKind::kCampExpired),
            result.wasted_dispatches);
}

TEST(TraceTest, CsvRoundContainsHeaderAndRows) {
  Trace trace;
  trace.Record({1.0, TraceEventKind::kDispatch, 2, 3, 4.5});
  std::ostringstream out;
  trace.WriteCsv(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("time,kind,worker,task,detail"), std::string::npos);
  EXPECT_NE(text.find("1,dispatch,2,3,4.5"), std::string::npos);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceTest, WriteJsonlIncludesBatchSeq) {
  Trace trace;
  trace.Record({1.0, TraceEventKind::kDispatch, 2, 3, 4.5, 7});
  std::ostringstream out;
  trace.WriteJsonl(out);
  EXPECT_EQ(out.str(),
            "{\"time\":1,\"kind\":\"dispatch\",\"worker\":2,\"task\":3,"
            "\"detail\":4.5,\"batch_seq\":7}\n");
  // The CSV column set stays byte-identical to the pre-batch_seq format.
  std::ostringstream csv;
  trace.WriteCsv(csv);
  EXPECT_EQ(csv.str(), "time,kind,worker,task,detail\n1,dispatch,2,3,4.5\n");
}

TEST(TraceTest, EventsCarryBatchSeq) {
  const core::Instance instance = TwoPhaseInstance();
  SimulatorOptions options;
  options.batch_interval = 1.0;
  Trace trace;
  options.trace = &trace;
  Simulator simulator(instance, options);
  algo::GreedyAllocator greedy;
  const SimulationResult result = simulator.Run(greedy);
  ASSERT_GT(trace.size(), 0u);
  int max_seq = 0;
  for (const TraceEvent& e : trace.events()) {
    EXPECT_GE(e.batch_seq, 0);
    EXPECT_LT(e.batch_seq, result.batches);
    max_seq = std::max(max_seq, e.batch_seq);
    if (e.kind == TraceEventKind::kBatch) {
      // Batch markers appear in batch order at monotone times.
      EXPECT_GE(e.batch_seq, 0);
    }
  }
  // The dependent task's dispatch happens in a later batch than the first.
  EXPECT_GT(max_seq, 0);
}

// ----------------------------------------------------------------- Metrics ---

TEST(MetricsTest, MeasureSimulationPopulatesStats) {
  const core::Instance instance = TwoPhaseInstance();
  SimulatorOptions options;
  options.batch_interval = 1.0;
  algo::GreedyAllocator greedy;
  const RunStats stats = MeasureSimulation(instance, options, greedy);
  EXPECT_EQ(stats.algorithm, "Greedy");
  EXPECT_EQ(stats.score, 2);
  EXPECT_GE(stats.millis, 0.0);
  EXPECT_GT(stats.batches, 0);
}

TEST(MetricsTest, MeasureSingleBatchMatchesOfflineScore) {
  const core::Instance instance = testing::Example1();
  algo::GreedyAllocator greedy;
  const RunStats stats =
      MeasureSingleBatch(instance, 0.0, core::FeasibilityParams{}, greedy);
  EXPECT_EQ(stats.score, 3);
  EXPECT_EQ(stats.batches, 1);
}

TEST(MetricsTest, MeasureSimulationPopulatesPlatformFields) {
  const core::Instance instance = TwoPhaseInstance();
  SimulatorOptions options;
  options.batch_interval = 1.0;
  algo::GreedyAllocator greedy;
  const RunStats stats = MeasureSimulation(instance, options, greedy);
  EXPECT_EQ(stats.completed_tasks, 2);
  EXPECT_GE(stats.nonempty_batches, 2);
  EXPECT_LE(stats.nonempty_batches, stats.batches);
  EXPECT_EQ(stats.wasted_dispatches, 0);
  EXPECT_GT(stats.last_completion_time, 0.0);
}

#if DASC_METRICS_ENABLED

// The registry's simulator counters must agree exactly with the
// SimulationResult the same run returned.
TEST(MetricsTest, SimulatorCountersMatchResult) {
  util::GlobalMetrics().Reset();
  util::SetMetricsEnabled(true);
  const core::Instance instance = TwoPhaseInstance();
  SimulatorOptions options;
  options.batch_interval = 1.0;
  Simulator simulator(instance, options);
  algo::GreedyAllocator greedy;
  const SimulationResult result = simulator.Run(greedy);
  auto counter = [](const char* name) {
    return util::GlobalMetrics().GetCounter(name)->value();
  };
  EXPECT_EQ(counter("sim_batches_total"), result.batches);
  EXPECT_EQ(counter("sim_nonempty_batches_total"), result.nonempty_batches);
  EXPECT_EQ(counter("sim_score_total"), result.score);
  EXPECT_EQ(counter("sim_completions_total"), result.completed_tasks);
  EXPECT_EQ(counter("sim_camp_dispatches_total"), result.wasted_dispatches);
  EXPECT_EQ(counter("sim_empty_batches_total"), result.empty_batches);
  EXPECT_EQ(
      util::GlobalMetrics().GetHistogram("sim_batch_allocator_ms")->count(),
      static_cast<int64_t>(result.per_batch_allocator_ms.size()));
}

TEST(MetricsTest, CampCountersMatchWastedDispatches) {
  util::GlobalMetrics().Reset();
  util::SetMetricsEnabled(true);
  const core::Instance instance = testing::Example1();
  SimulatorOptions options;
  options.batch_interval = 1.0;
  Simulator simulator(instance, options);
  algo::ClosestAllocator closest;
  const SimulationResult result = simulator.Run(closest);
  ASSERT_GT(result.wasted_dispatches, 0);
  EXPECT_EQ(
      util::GlobalMetrics().GetCounter("sim_camp_dispatches_total")->value(),
      result.wasted_dispatches);
}

#endif  // DASC_METRICS_ENABLED

}  // namespace
}  // namespace dasc::sim
