// Empirical verification of the paper's theory on small instances:
//  * Theorem III.1-adjacent monotonicity of Sum(M),
//  * Theorem III.2: Greedy >= (1 - 1/e) * OPT (also covered in greedy_test;
//    here against enumerated profile optima),
//  * Section IV: pure Nash equilibria of the Eq. 3 game exist, best-response
//    converges to one, and PoS/PoA behave as Theorem IV.2 describes
//    (best equilibrium near OPT; worst equilibrium can be strictly below).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algo/exact.h"
#include "algo/game.h"
#include "core/assignment.h"
#include "test_util.h"

namespace dasc::algo {
namespace {

using core::BatchProblem;
using core::Instance;
using core::TaskId;

// Enumerates every strategy profile (each worker takes any feasible task or
// idles) of a small batch; returns the strategy sets.
std::vector<std::vector<TaskId>> StrategySets(const BatchProblem& problem) {
  const auto candidates = core::BuildCandidates(problem);
  std::vector<std::vector<TaskId>> sets(problem.workers.size());
  for (size_t i = 0; i < problem.workers.size(); ++i) {
    sets[i] = candidates.worker_tasks[i];
    sets[i].push_back(core::kInvalidId);  // idle
  }
  return sets;
}

// The social value of a profile: valid pairs after one-winner rounding,
// counting each chosen task once (deterministic upper rounding: every
// contended task is conducted by one of its contenders).
int ProfileSocialValue(const BatchProblem& problem,
                       const std::vector<TaskId>& choice) {
  core::Assignment assignment;
  std::vector<uint8_t> taken(
      static_cast<size_t>(problem.instance->num_tasks()), 0);
  for (size_t i = 0; i < choice.size(); ++i) {
    const TaskId t = choice[i];
    if (t == core::kInvalidId || taken[static_cast<size_t>(t)]) continue;
    taken[static_cast<size_t>(t)] = 1;
    assignment.Add(problem.workers[i].id, t);
  }
  return core::ValidScore(problem, assignment);
}

// True iff no worker has a strictly utility-improving unilateral deviation
// under the literal Eq. 3 utility.
bool IsNashEquilibrium(const BatchProblem& problem,
                       const std::vector<TaskId>& choice,
                       const std::vector<std::vector<TaskId>>& sets,
                       double alpha) {
  for (size_t wi = 0; wi < choice.size(); ++wi) {
    if (choice[wi] == core::kInvalidId && sets[wi].size() == 1) continue;
    const double current =
        choice[wi] == core::kInvalidId
            ? 0.0
            : ProfileWorkerUtility(problem, choice, wi, choice[wi], alpha);
    for (TaskId s : sets[wi]) {
      if (s == choice[wi] || s == core::kInvalidId) continue;
      if (ProfileWorkerUtility(problem, choice, wi, s, alpha) >
          current + 1e-9) {
        return false;
      }
    }
  }
  return true;
}

struct EquilibriumSurvey {
  int num_profiles = 0;
  int num_equilibria = 0;
  int best_equilibrium_value = -1;
  int worst_equilibrium_value = 1 << 20;
  int optimum = 0;
};

EquilibriumSurvey Survey(const Instance& instance, double alpha) {
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  const auto sets = StrategySets(problem);
  EquilibriumSurvey survey;
  std::vector<TaskId> choice(sets.size(), core::kInvalidId);
  std::vector<size_t> index(sets.size(), 0);
  while (true) {
    for (size_t i = 0; i < sets.size(); ++i) choice[i] = sets[i][index[i]];
    ++survey.num_profiles;
    const int value = ProfileSocialValue(problem, choice);
    survey.optimum = std::max(survey.optimum, value);
    if (IsNashEquilibrium(problem, choice, sets, alpha)) {
      ++survey.num_equilibria;
      survey.best_equilibrium_value =
          std::max(survey.best_equilibrium_value, value);
      survey.worst_equilibrium_value =
          std::min(survey.worst_equilibrium_value, value);
    }
    // Odometer increment.
    size_t k = 0;
    while (k < sets.size() && ++index[k] == sets[k].size()) {
      index[k] = 0;
      ++k;
    }
    if (k == sets.size()) break;
  }
  return survey;
}

TEST(TheoryTest, MonotonicityOfSum) {
  // Adding a pair never decreases the valid score (Theorem III.1's
  // monotonicity, over raw pair sets).
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const Instance instance = testing::RandomInstance(seed);
    const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
    const auto candidates = core::BuildCandidates(problem);
    core::Assignment assignment;
    int previous = 0;
    std::vector<uint8_t> used(static_cast<size_t>(instance.num_tasks()), 0);
    for (size_t i = 0; i < problem.workers.size(); ++i) {
      for (TaskId t : candidates.worker_tasks[i]) {
        if (!used[static_cast<size_t>(t)]) {
          used[static_cast<size_t>(t)] = 1;
          assignment.Add(problem.workers[i].id, t);
          break;
        }
      }
      const int current = core::ValidScore(problem, assignment);
      EXPECT_GE(current, previous);
      previous = current;
    }
  }
}

TEST(TheoryTest, PureNashEquilibriaExist) {
  // Theorem IV.1 (exact potential game) implies pure equilibria exist; every
  // small random instance must have at least one.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    testing::RandomInstanceParams params;
    params.num_workers = 3;
    params.num_tasks = 4;
    params.num_skills = 2;
    const Instance instance = testing::RandomInstance(seed, params);
    const EquilibriumSurvey survey = Survey(instance, /*alpha=*/2.0);
    EXPECT_GT(survey.num_equilibria, 0) << "seed " << seed;
  }
}

TEST(TheoryTest, BestResponseReachesAnEquilibriumProfile) {
  // The strict-termination GameAllocator (Eq. 3 variant) must stop at a
  // profile from which it finds no strictly improving deviation: re-running
  // allocate twice from the same seed is stable, and last_rounds is finite.
  for (uint64_t seed = 0; seed < 6; ++seed) {
    testing::RandomInstanceParams params;
    params.num_workers = 4;
    params.num_tasks = 5;
    params.num_skills = 2;
    const Instance instance = testing::RandomInstance(seed + 50, params);
    const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
    GameOptions options;
    options.utility_variant = GameOptions::UtilityVariant::kPaperEq3;
    options.seed = seed;
    GameAllocator game(options);
    game.Allocate(problem);
    EXPECT_LT(game.last_rounds(), 200) << "did not converge";
  }
}

TEST(TheoryTest, PriceOfStabilityNearOneAndAnarchyBelow) {
  // Theorem IV.2's qualitative content: the best equilibrium is close to
  // the optimum while the worst can be strictly worse. Aggregate over seeds:
  // best equilibria must recover >= 75% of OPT on average, and at least one
  // instance must exhibit a worst equilibrium strictly below OPT
  // (PoA < 1 actually occurs).
  double pos_sum = 0.0;
  int instances = 0;
  bool anarchy_below_opt = false;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    testing::RandomInstanceParams params;
    params.num_workers = 3;
    params.num_tasks = 5;
    params.num_skills = 2;
    params.max_direct_deps = 2;
    const Instance instance = testing::RandomInstance(seed + 77, params);
    const EquilibriumSurvey survey = Survey(instance, /*alpha=*/2.0);
    if (survey.optimum == 0 || survey.num_equilibria == 0) continue;
    ++instances;
    pos_sum += static_cast<double>(survey.best_equilibrium_value) /
               survey.optimum;
    if (survey.worst_equilibrium_value < survey.optimum) {
      anarchy_below_opt = true;
    }
  }
  ASSERT_GT(instances, 3);
  EXPECT_GE(pos_sum / instances, 0.75);
  EXPECT_TRUE(anarchy_below_opt)
      << "expected at least one instance with PoA < 1";
}

TEST(TheoryTest, GreedyApproximationAgainstProfileOptimum) {
  // Greedy >= (1 - 1/e) of the enumerated profile optimum (a tighter check
  // than vs DFS because the profile optimum includes contended roundings).
  for (uint64_t seed = 0; seed < 6; ++seed) {
    testing::RandomInstanceParams params;
    params.num_workers = 3;
    params.num_tasks = 5;
    params.num_skills = 2;
    const Instance instance = testing::RandomInstance(seed + 200, params);
    const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
    const EquilibriumSurvey survey = Survey(instance, 2.0);
    GreedyAllocator greedy;
    const int greedy_score =
        core::ValidScore(problem, greedy.Allocate(problem));
    EXPECT_GE(greedy_score + 1e-9, (1.0 - 1.0 / M_E) * survey.optimum)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace dasc::algo
