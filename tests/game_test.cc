// Tests for DASC_Game (Algorithm 3) and the potential-game properties.
#include <gtest/gtest.h>

#include "algo/game.h"
#include "core/assignment.h"
#include "test_util.h"

namespace dasc::algo {
namespace {

using core::BatchProblem;
using core::Instance;
using testing::Example1;
using testing::MakeTask;
using testing::MakeWorker;

TEST(GameTest, SolvesPaperExample) {
  const Instance instance = Example1();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  GameAllocator game(GameOptions{});
  const core::Assignment raw = game.Allocate(problem);
  EXPECT_EQ(core::ValidScore(problem, raw), 3);
}

TEST(GameTest, NamesFollowOptions) {
  EXPECT_EQ(GameAllocator(GameOptions{}).name(), "Game");
  GameOptions with_threshold;
  with_threshold.threshold = 0.05;
  EXPECT_EQ(GameAllocator(with_threshold).name(), "Game-5%");
  GameOptions gg;
  gg.greedy_init = true;
  EXPECT_EQ(GameAllocator(gg).name(), "G-G");
  GameOptions custom;
  custom.display_name = "MyGame";
  EXPECT_EQ(GameAllocator(custom).name(), "MyGame");
}

TEST(GameTest, EmptyProblem) {
  auto instance = core::Instance::Create({}, {}, 1);
  ASSERT_TRUE(instance.ok());
  const BatchProblem problem = BatchProblem::AllAt(*instance, 0.0);
  GameAllocator game(GameOptions{});
  EXPECT_TRUE(game.Allocate(problem).empty());
  EXPECT_EQ(game.last_rounds(), 0);
}

TEST(GameTest, SingleWorkerPicksItsOnlyTask) {
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0})}, {MakeTask(0, 1, 1, 0)}, 1);
  ASSERT_TRUE(instance.ok());
  const BatchProblem problem = BatchProblem::AllAt(*instance, 0.0);
  GameAllocator game(GameOptions{});
  const core::Assignment assignment = game.Allocate(problem);
  ASSERT_EQ(assignment.size(), 1);
  EXPECT_EQ(assignment.pairs()[0], (std::pair<core::WorkerId, core::TaskId>{0, 0}));
}

TEST(GameTest, ContendersSpreadAcrossTasks) {
  // Two identical workers, two identical independent tasks: at equilibrium
  // they must take distinct tasks (sharing one task halves both utilities).
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}), MakeWorker(1, 0, 0, {0})},
      {MakeTask(0, 1, 0, 0), MakeTask(1, 0, 1, 0)}, 1);
  ASSERT_TRUE(instance.ok());
  const BatchProblem problem = BatchProblem::AllAt(*instance, 0.0);
  GameAllocator game(GameOptions{});
  const core::Assignment assignment = game.Allocate(problem);
  EXPECT_EQ(core::ValidScore(problem, assignment), 2);
}

TEST(GameTest, RespectsDependencyIncentives) {
  // One worker with both skills; t1 (no deps) and t2 (dep on unassignable
  // t0). Rational play: take t1, whose utility is positive.
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {1})},
      {MakeTask(0, 0, 0, 0), MakeTask(1, 0.1, 0, 1), MakeTask(2, 0, 0.1, 1, {0})},
      2);
  ASSERT_TRUE(instance.ok());
  const BatchProblem problem = BatchProblem::AllAt(*instance, 0.0);
  GameAllocator game(GameOptions{});
  const core::Assignment assignment = game.Allocate(problem);
  ASSERT_EQ(assignment.size(), 1);
  EXPECT_EQ(assignment.pairs()[0].second, 1);
  EXPECT_EQ(core::ValidScore(problem, assignment), 1);
}

TEST(GameTest, GreedyInitSolvesPaperExample) {
  const Instance instance = Example1();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  GameOptions options;
  options.greedy_init = true;
  GameAllocator game(options);
  EXPECT_EQ(core::ValidScore(problem, game.Allocate(problem)), 3);
}

TEST(GameTest, ThresholdTerminatesNoLaterThanStrict) {
  const Instance instance = testing::RandomInstance(7);
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  GameOptions strict;
  strict.seed = 5;
  GameAllocator strict_game(strict);
  strict_game.Allocate(problem);
  GameOptions loose;
  loose.threshold = 0.5;
  loose.seed = 5;
  GameAllocator loose_game(loose);
  loose_game.Allocate(problem);
  EXPECT_LE(loose_game.last_rounds(), strict_game.last_rounds());
  EXPECT_GE(loose_game.last_rounds(), 1);
}

TEST(GameTest, MaxRoundsCapRespected) {
  const Instance instance = testing::RandomInstance(11);
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  GameOptions options;
  options.max_rounds = 1;
  GameAllocator game(options);
  game.Allocate(problem);
  EXPECT_EQ(game.last_rounds(), 1);
}

TEST(GameTest, DeterministicUnderSameSeed) {
  const Instance instance = testing::RandomInstance(13);
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  GameOptions options;
  options.seed = 99;
  GameAllocator a(options), b(options);
  const auto pa = a.Allocate(problem).pairs();
  const auto pb = b.Allocate(problem).pairs();
  EXPECT_EQ(pa, pb);
}

TEST(GameUtilityTest, ProfileSumEqualsValidScoreAtConsistentProfiles) {
  // Paper observation: Sum(M) = Σ_w U_w at one-worker-per-task profiles.
  const Instance instance = Example1();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  // Profile: w1->t1, w3->t2, w2->t4 (all valid).
  std::vector<core::TaskId> choice = {0, 3, 1};
  EXPECT_NEAR(ProfileUtilitySum(problem, choice, 2.0), 3.0, 1e-9);
  // Profile with an invalid pick (w1->t2 alone, dep t1 unassigned; w2 idle,
  // w3 idle): utility 0.
  choice = {1, core::kInvalidId, core::kInvalidId};
  EXPECT_NEAR(ProfileUtilitySum(problem, choice, 2.0), 0.0, 1e-9);
}

TEST(GameUtilityTest, ProfileSumMatchesValidScoreOnRandomEquilibria) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const Instance instance = testing::RandomInstance(seed);
    const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
    GameOptions options;
    options.seed = seed;
    GameAllocator game(options);
    const core::Assignment assignment = game.Allocate(problem);
    // Rebuild the rounded (one worker per task) profile.
    std::vector<core::TaskId> choice(problem.workers.size(),
                                     core::kInvalidId);
    for (const auto& [w, t] : assignment.pairs()) {
      choice[static_cast<size_t>(w)] = t;  // AllAt: worker id == index
    }
    const double utility = ProfileUtilitySum(problem, choice, options.alpha);
    EXPECT_NEAR(utility, core::ValidScore(problem, assignment), 1e-9)
        << "seed " << seed;
  }
}

TEST(GameUtilityTest, AlphaSplitsSelfAndForwardedShares) {
  // Chain t0 <- t1, two workers, both assigned: worker on t1 earns
  // (α-1)/α; worker on t0 earns 1 (self) + 1/α (forwarded).
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}), MakeWorker(1, 0, 0, {0})},
      {MakeTask(0, 0, 0, 0), MakeTask(1, 0, 0, 0, {0})}, 1);
  ASSERT_TRUE(instance.ok());
  const BatchProblem problem = BatchProblem::AllAt(*instance, 0.0);
  const double alpha = 4.0;
  const double total = ProfileUtilitySum(problem, {0, 1}, alpha);
  EXPECT_NEAR(total, 2.0, 1e-9);  // decomposition must still sum to 2
}

// Property: every game variant emits assignments that, after ValidPairs,
// audit clean; and the equilibrium's valid score is never worse than a
// random profile's.
struct GameCase {
  uint64_t seed;
  double threshold;
  bool greedy_init;
};

class GamePropertyTest : public ::testing::TestWithParam<GameCase> {};

TEST_P(GamePropertyTest, OutputValidAndReasonable) {
  const auto& param = GetParam();
  const Instance instance = testing::RandomInstance(param.seed);
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  GameOptions options;
  options.seed = param.seed;
  options.threshold = param.threshold;
  options.greedy_init = param.greedy_init;
  GameAllocator game(options);
  const core::Assignment raw = game.Allocate(problem);
  const core::Assignment valid = ValidPairs(problem, raw);
  EXPECT_TRUE(core::ValidateAssignment(problem, valid).ok());
  EXPECT_GE(game.last_rounds(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, GamePropertyTest,
    ::testing::Values(GameCase{1, 0.0, false}, GameCase{2, 0.0, false},
                      GameCase{3, 0.05, false}, GameCase{4, 0.05, false},
                      GameCase{5, 0.0, true}, GameCase{6, 0.0, true},
                      GameCase{7, 0.2, true}, GameCase{8, 0.1, false}));

}  // namespace
}  // namespace dasc::algo
