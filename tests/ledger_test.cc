// Tests for the per-task lifecycle ledger (sim/ledger.h): the closed
// unserved-reason taxonomy, the ServeFailure folding, dependency depths,
// per-reason attribution on purpose-built instances, and the dep-heavy
// end-to-end contract (exactly one reason per unserved task, audit
// cross-check clean, trace events consistent with the ledger).
#include "sim/ledger.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "algo/game.h"
#include "algo/greedy.h"
#include "core/feasibility.h"
#include "core/instance.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "test_util.h"
#include "util/metrics.h"

namespace dasc::sim {
namespace {

using core::ServeFailure;

TEST(UnservedReasonTest, NamesRoundTripTheClosedTaxonomy) {
  for (int r = 0; r < kNumUnservedReasons; ++r) {
    const auto reason = static_cast<UnservedReason>(r);
    UnservedReason back;
    ASSERT_TRUE(UnservedReasonFromName(UnservedReasonName(reason), &back))
        << UnservedReasonName(reason);
    EXPECT_EQ(back, reason);
  }
  UnservedReason ignored;
  EXPECT_FALSE(UnservedReasonFromName("skill_mismatch", &ignored));
  EXPECT_FALSE(UnservedReasonFromName("", &ignored));
  EXPECT_STREQ(UnservedReasonName(UnservedReason::kServed), "served");
  EXPECT_STREQ(UnservedReasonName(UnservedReason::kLostInMatching),
               "lost_in_matching");
}

// The fold must be monotone in the ServeFailure progress order so that
// max-over-workers commutes with the mapping; the three worker/task window
// failures all collapse onto travel_deadline.
TEST(UnservedReasonTest, ServeFailureFoldIsMonotone) {
  const std::vector<std::pair<ServeFailure, UnservedReason>> expected = {
      {ServeFailure::kSkillMismatch, UnservedReason::kNoSkilledWorker},
      {ServeFailure::kWorkerDeparted, UnservedReason::kTravelDeadline},
      {ServeFailure::kWindowMismatch, UnservedReason::kTravelDeadline},
      {ServeFailure::kTaskNotArrived, UnservedReason::kTravelDeadline},
      {ServeFailure::kOutOfRange, UnservedReason::kOutOfRange},
      {ServeFailure::kArrivalDeadline, UnservedReason::kArrivalDeadline},
  };
  UnservedReason prev = UnservedReason::kServed;
  for (const auto& [failure, reason] : expected) {
    EXPECT_EQ(UnservedReasonFromServeFailure(failure), reason)
        << core::ServeFailureName(failure);
    EXPECT_GE(static_cast<int>(reason), static_cast<int>(prev));
    prev = reason;
  }
}

// A statically window-mismatched pair (task appears after the worker left)
// classifies as kWindowMismatch offline and folds to travel_deadline.
TEST(UnservedReasonTest, WindowMismatchFoldsToTravelDeadline) {
  std::vector<core::Worker> workers = {
      testing::MakeWorker(0, 0, 0, {0}, /*start=*/0.0, /*wait=*/1.0)};
  std::vector<core::Task> tasks = {
      testing::MakeTask(0, 0, 0, 0, {}, /*start=*/5.0, /*wait=*/10.0)};
  auto instance = core::Instance::Create(std::move(workers), std::move(tasks),
                                         /*num_skills=*/1);
  ASSERT_TRUE(instance.ok());
  const ServeFailure failure =
      core::ClassifyServeOffline(*instance, 0, 0, core::FeasibilityParams{});
  EXPECT_EQ(failure, ServeFailure::kWindowMismatch);
  EXPECT_EQ(UnservedReasonFromServeFailure(failure),
            UnservedReason::kTravelDeadline);
}

// Example 1's dependency DAG: t1,t4 roots; t2 <- t1; t5 <- t4;
// t3 <- {t1, t2} so its longest chain is 2.
TEST(DependencyDepthsTest, Example1Chains) {
  const core::Instance instance = testing::Example1();
  const std::vector<int> depths = DependencyDepths(instance);
  EXPECT_EQ(depths, (std::vector<int>{0, 1, 2, 0, 1}));
}

// Runs a tiny instance to completion with the ledger on and returns the
// result; all scenario tests below share this shape.
SimulationResult RunWithLedger(const core::Instance& instance,
                               double batch_interval = 5.0,
                               Trace* trace = nullptr) {
  SimulatorOptions options;
  options.batch_interval = batch_interval;
  options.ledger = true;
  options.audit = true;
  options.trace = trace;
  Simulator simulator(instance, options);
  algo::GreedyAllocator greedy;
  return simulator.Run(greedy);
}

UnservedReason ReasonOf(const SimulationResult& result, core::TaskId task) {
  return result.ledger_entries[static_cast<size_t>(task)].reason;
}

// A task whose whole lifetime falls strictly between batch instants is never
// seen by any allocator: never_open.
TEST(LedgerScenarioTest, NeverOpen) {
  std::vector<core::Worker> workers = {testing::MakeWorker(0, 0, 0, {0})};
  std::vector<core::Task> tasks = {
      testing::MakeTask(0, 0, 0, 0, {}, /*start=*/1.0, /*wait=*/2.0)};
  auto instance =
      core::Instance::Create(std::move(workers), std::move(tasks), 1);
  ASSERT_TRUE(instance.ok());
  const SimulationResult result = RunWithLedger(*instance, 5.0);
  EXPECT_EQ(result.completed_tasks, 0);
  EXPECT_EQ(ReasonOf(result, 0), UnservedReason::kNeverOpen);
  EXPECT_EQ(result.ledger_entries[0].first_open_batch, -1);
  EXPECT_EQ(result.audit.ledger_mismatches, 0);
}

// The task is open only while no worker is on the platform at all.
TEST(LedgerScenarioTest, WorkerExhausted) {
  std::vector<core::Worker> workers = {
      testing::MakeWorker(0, 0, 0, {0}, /*start=*/50.0)};
  std::vector<core::Task> tasks = {
      testing::MakeTask(0, 0, 0, 0, {}, /*start=*/0.0, /*wait=*/10.0)};
  auto instance =
      core::Instance::Create(std::move(workers), std::move(tasks), 1);
  ASSERT_TRUE(instance.ok());
  const SimulationResult result = RunWithLedger(*instance, 5.0);
  EXPECT_EQ(result.completed_tasks, 0);
  EXPECT_EQ(ReasonOf(result, 0), UnservedReason::kWorkerExhausted);
  EXPECT_EQ(result.ledger_entries[0].candidate_batches, 0);
  EXPECT_GT(result.ledger_entries[0].batches_open, 0);
  EXPECT_EQ(result.audit.ledger_mismatches, 0);
}

TEST(LedgerScenarioTest, NoSkilledWorker) {
  std::vector<core::Worker> workers = {testing::MakeWorker(0, 0, 0, {0})};
  std::vector<core::Task> tasks = {
      testing::MakeTask(0, 0, 0, /*skill=*/1, {}, 0.0, /*wait=*/10.0)};
  auto instance =
      core::Instance::Create(std::move(workers), std::move(tasks), 2);
  ASSERT_TRUE(instance.ok());
  const SimulationResult result = RunWithLedger(*instance, 5.0);
  EXPECT_EQ(ReasonOf(result, 0), UnservedReason::kNoSkilledWorker);
  EXPECT_EQ(result.audit.ledger_mismatches, 0);
}

TEST(LedgerScenarioTest, OutOfRange) {
  std::vector<core::Worker> workers = {testing::MakeWorker(
      0, 0, 0, {0}, 0.0, 1e6, /*velocity=*/1e3, /*max_distance=*/1.0)};
  std::vector<core::Task> tasks = {
      testing::MakeTask(0, 100, 0, 0, {}, 0.0, /*wait=*/10.0)};
  auto instance =
      core::Instance::Create(std::move(workers), std::move(tasks), 1);
  ASSERT_TRUE(instance.ok());
  const SimulationResult result = RunWithLedger(*instance, 5.0);
  EXPECT_EQ(ReasonOf(result, 0), UnservedReason::kOutOfRange);
  EXPECT_EQ(result.audit.ledger_mismatches, 0);
}

TEST(LedgerScenarioTest, ArrivalDeadline) {
  std::vector<core::Worker> workers = {testing::MakeWorker(
      0, 0, 0, {0}, 0.0, 1e6, /*velocity=*/1.0, /*max_distance=*/1e6)};
  std::vector<core::Task> tasks = {
      testing::MakeTask(0, 100, 0, 0, {}, 0.0, /*wait=*/10.0)};
  auto instance =
      core::Instance::Create(std::move(workers), std::move(tasks), 1);
  ASSERT_TRUE(instance.ok());
  const SimulationResult result = RunWithLedger(*instance, 5.0);
  EXPECT_EQ(ReasonOf(result, 0), UnservedReason::kArrivalDeadline);
  EXPECT_EQ(result.audit.ledger_mismatches, 0);
}

// t1 depends on a task nobody can serve: t0 ends no_skilled_worker, t1 had a
// perfectly feasible worker but dies dependency_unmet.
TEST(LedgerScenarioTest, DependencyUnmet) {
  std::vector<core::Worker> workers = {testing::MakeWorker(0, 0, 0, {0})};
  std::vector<core::Task> tasks = {
      testing::MakeTask(0, 0, 0, /*skill=*/1, {}, 0.0, /*wait=*/10.0),
      testing::MakeTask(1, 0, 0, /*skill=*/0, {0}, 0.0, /*wait=*/10.0)};
  auto instance =
      core::Instance::Create(std::move(workers), std::move(tasks), 2);
  ASSERT_TRUE(instance.ok());
  const SimulationResult result = RunWithLedger(*instance, 5.0);
  EXPECT_EQ(result.completed_tasks, 0);
  EXPECT_EQ(ReasonOf(result, 0), UnservedReason::kNoSkilledWorker);
  EXPECT_EQ(ReasonOf(result, 1), UnservedReason::kDependencyUnmet);
  EXPECT_GT(result.ledger_entries[1].candidate_batches, 0);
  EXPECT_EQ(result.audit.ledger_mismatches, 0);
}

// One worker, two independent feasible tasks, windows too short for a second
// batch: whichever task the allocator passes over is lost_in_matching.
TEST(LedgerScenarioTest, LostInMatching) {
  std::vector<core::Worker> workers = {testing::MakeWorker(0, 0, 0, {0})};
  std::vector<core::Task> tasks = {
      testing::MakeTask(0, 0, 0, 0, {}, 0.0, /*wait=*/4.0),
      testing::MakeTask(1, 0, 0, 0, {}, 0.0, /*wait=*/4.0)};
  auto instance =
      core::Instance::Create(std::move(workers), std::move(tasks), 1);
  ASSERT_TRUE(instance.ok());
  const SimulationResult result = RunWithLedger(*instance, 5.0);
  ASSERT_EQ(result.completed_tasks, 1);
  const int served = ReasonOf(result, 0) == UnservedReason::kServed ? 0 : 1;
  const int lost = 1 - served;
  EXPECT_EQ(ReasonOf(result, served), UnservedReason::kServed);
  EXPECT_TRUE(result.ledger_entries[static_cast<size_t>(served)].completed);
  EXPECT_EQ(ReasonOf(result, lost), UnservedReason::kLostInMatching);
  EXPECT_EQ(result.audit.ledger_mismatches, 0);
  EXPECT_EQ(result.unserved_by_reason[static_cast<size_t>(
                UnservedReason::kLostInMatching)],
            1);
  EXPECT_EQ(result.unserved_by_reason[0], 1);  // index 0 = served
}

// The acceptance contract on the dep-heavy family: every unserved task
// carries exactly one reason from the closed taxonomy, the per-reason counts
// sum to total - completed, the independent audit shadow agrees with zero
// mismatches, and the trace's kArrival/kExpired stream is consistent with
// the ledger entries.
TEST(LedgerEndToEndTest, DepHeavyFamilyFullyAttributed) {
  testing::RandomInstanceParams params;
  params.num_workers = 5;
  params.num_tasks = 24;
  params.max_direct_deps = 3;
  params.task_wait = 7.0;  // tight windows force starvation
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const core::Instance instance = testing::RandomInstance(seed, params);
    Trace trace;
    SimulatorOptions options;
    options.batch_interval = 2.0;
    options.ledger = true;
    options.audit = true;
    options.trace = &trace;
    Simulator simulator(instance, options);
    algo::GameOptions game_options;
    game_options.greedy_init = true;
    algo::GameAllocator gg(game_options);
    const SimulationResult result = simulator.Run(gg);

    ASSERT_EQ(result.ledger_entries.size(),
              static_cast<size_t>(instance.num_tasks()));
    ASSERT_EQ(result.unserved_by_reason.size(),
              static_cast<size_t>(kNumUnservedReasons));
    EXPECT_EQ(result.audit.ledger_mismatches, 0) << "seed " << seed;

    std::vector<int64_t> recount(static_cast<size_t>(kNumUnservedReasons), 0);
    for (const TaskLedgerEntry& e : result.ledger_entries) {
      const int code = static_cast<int>(e.reason);
      ASSERT_GE(code, 0);
      ASSERT_LT(code, kNumUnservedReasons);
      EXPECT_EQ(e.completed, e.reason == UnservedReason::kServed)
          << "task " << e.task << " seed " << seed;
      ++recount[static_cast<size_t>(code)];
    }
    EXPECT_EQ(recount, result.unserved_by_reason) << "seed " << seed;
    EXPECT_EQ(result.unserved_by_reason[0], result.completed_tasks);
    const int64_t unserved =
        std::accumulate(result.unserved_by_reason.begin() + 1,
                        result.unserved_by_reason.end(), int64_t{0});
    EXPECT_EQ(unserved, instance.num_tasks() - result.completed_tasks);

    // Every unserved task leaves via exactly one kExpired event carrying its
    // final reason code; kArrival fires once per ever-open task.
    EXPECT_EQ(trace.Count(TraceEventKind::kExpired), unserved);
    int ever_open = 0;
    for (const TaskLedgerEntry& e : result.ledger_entries) {
      if (e.first_open_batch >= 0) ++ever_open;
    }
    EXPECT_EQ(trace.Count(TraceEventKind::kArrival), ever_open);
    for (const TraceEvent& e : trace.events()) {
      if (e.kind != TraceEventKind::kExpired) continue;
      EXPECT_EQ(e.reason,
                static_cast<int>(ReasonOf(result, e.task)))
          << "task " << e.task << " seed " << seed;
    }
  }
}

// The historical CSV column set must stay byte-identical even when the
// stream contains the new kArrival/kExpired kinds; JSONL carries the reason
// code only on events that have one.
TEST(LedgerTraceFormatTest, CsvHeaderStableAndJsonlCarriesReason) {
  Trace trace;
  trace.Record({0.0, TraceEventKind::kArrival, core::kInvalidId, 3, 2.0, 0});
  TraceEvent expired{4.0, TraceEventKind::kExpired, core::kInvalidId, 3, 7.0,
                     1};
  expired.reason = static_cast<int>(UnservedReason::kDependencyUnmet);
  trace.Record(expired);

  std::ostringstream csv;
  trace.WriteCsv(csv);
  EXPECT_EQ(csv.str().substr(0, csv.str().find('\n')),
            "time,kind,worker,task,detail");
  EXPECT_NE(csv.str().find("arrival"), std::string::npos);
  EXPECT_NE(csv.str().find("expired"), std::string::npos);
  EXPECT_EQ(csv.str().find("reason"), std::string::npos);

  std::ostringstream jsonl;
  trace.WriteJsonl(jsonl);
  std::istringstream lines(jsonl.str());
  std::string arrival_line, expired_line;
  ASSERT_TRUE(std::getline(lines, arrival_line));
  ASSERT_TRUE(std::getline(lines, expired_line));
  EXPECT_NE(arrival_line.find("\"kind\":\"arrival\""), std::string::npos);
  EXPECT_EQ(arrival_line.find("\"reason\""), std::string::npos)
      << arrival_line;
  EXPECT_NE(expired_line.find("\"kind\":\"expired\""), std::string::npos);
  EXPECT_NE(expired_line.find("\"reason\":7"), std::string::npos)
      << expired_line;
}

#if DASC_METRICS_ENABLED
// Finalize must mirror the per-reason counts into sim_unserved_total and its
// {reason=...} children.
TEST(LedgerMetricsTest, UnservedCountersMatchLedger) {
  util::GlobalMetrics().Reset();
  util::SetMetricsEnabled(true);
  std::vector<core::Worker> workers = {testing::MakeWorker(0, 0, 0, {0})};
  std::vector<core::Task> tasks = {
      testing::MakeTask(0, 0, 0, /*skill=*/1, {}, 0.0, /*wait=*/10.0),
      testing::MakeTask(1, 0, 0, /*skill=*/0, {0}, 0.0, /*wait=*/10.0)};
  auto instance =
      core::Instance::Create(std::move(workers), std::move(tasks), 2);
  ASSERT_TRUE(instance.ok());
  const SimulationResult result = RunWithLedger(*instance, 5.0);
  EXPECT_EQ(result.completed_tasks, 0);
  auto counter = [](const std::string& name) {
    return util::GlobalMetrics().GetCounter(name)->value();
  };
  EXPECT_EQ(counter("sim_unserved_total"), 2);
  EXPECT_EQ(counter("sim_unserved_total{reason=no_skilled_worker}"), 1);
  EXPECT_EQ(counter("sim_unserved_total{reason=dependency_unmet}"), 1);
}
#endif  // DASC_METRICS_ENABLED

}  // namespace
}  // namespace dasc::sim
