// Unit tests for the core DA-SC model: Instance validation, feasibility,
// batch candidate construction, assignment validity and audits.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/assignment.h"
#include "core/batch.h"
#include "core/feasibility.h"
#include "core/instance.h"
#include "test_util.h"

namespace dasc::core {
namespace {

using testing::Example1;
using testing::MakeTask;
using testing::MakeWorker;

// -------------------------------------------------------------- Instance ---

TEST(InstanceTest, CreateValid) {
  auto instance = Instance::Create({MakeWorker(0, 0, 0, {0})},
                                   {MakeTask(0, 1, 1, 0)}, 1);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->num_workers(), 1);
  EXPECT_EQ(instance->num_tasks(), 1);
  EXPECT_EQ(instance->num_skills(), 1);
}

TEST(InstanceTest, EmptyInstanceIsValid) {
  auto instance = Instance::Create({}, {}, 1);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->num_workers(), 0);
  EXPECT_EQ(instance->num_tasks(), 0);
}

TEST(InstanceTest, RejectsNonDenseWorkerIds) {
  auto instance =
      Instance::Create({MakeWorker(5, 0, 0, {0})}, {}, 1);
  EXPECT_FALSE(instance.ok());
  EXPECT_EQ(instance.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(InstanceTest, RejectsNonDenseTaskIds) {
  auto instance = Instance::Create({}, {MakeTask(1, 0, 0, 0)}, 1);
  EXPECT_FALSE(instance.ok());
}

TEST(InstanceTest, RejectsZeroVelocity) {
  auto worker = MakeWorker(0, 0, 0, {0});
  worker.velocity = 0.0;
  EXPECT_FALSE(Instance::Create({worker}, {}, 1).ok());
}

TEST(InstanceTest, RejectsNegativeWait) {
  auto worker = MakeWorker(0, 0, 0, {0});
  worker.wait_time = -1.0;
  EXPECT_FALSE(Instance::Create({worker}, {}, 1).ok());
}

TEST(InstanceTest, RejectsEmptySkillSet) {
  auto worker = MakeWorker(0, 0, 0, {});
  EXPECT_FALSE(Instance::Create({worker}, {}, 1).ok());
}

TEST(InstanceTest, RejectsOutOfRangeSkill) {
  EXPECT_FALSE(Instance::Create({MakeWorker(0, 0, 0, {7})}, {}, 3).ok());
  EXPECT_FALSE(Instance::Create({}, {MakeTask(0, 0, 0, 3)}, 3).ok());
  EXPECT_FALSE(Instance::Create({}, {MakeTask(0, 0, 0, -1)}, 3).ok());
}

TEST(InstanceTest, RejectsUnknownDependency) {
  EXPECT_FALSE(Instance::Create({}, {MakeTask(0, 0, 0, 0, {4})}, 1).ok());
}

TEST(InstanceTest, RejectsSelfDependency) {
  EXPECT_FALSE(Instance::Create({}, {MakeTask(0, 0, 0, 0, {0})}, 1).ok());
}

TEST(InstanceTest, RejectsDependencyCycle) {
  // 0 -> 1 -> 0 (ids are dense but deps form a cycle).
  auto instance = Instance::Create(
      {}, {MakeTask(0, 0, 0, 0, {1}), MakeTask(1, 0, 0, 0, {0})}, 1);
  EXPECT_FALSE(instance.ok());
}

TEST(InstanceTest, CanonicalizesSkills) {
  auto instance =
      Instance::Create({MakeWorker(0, 0, 0, {2, 0, 2, 1})}, {}, 3);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->worker(0).skills,
            (std::vector<SkillId>{0, 1, 2}));
}

TEST(InstanceTest, ComputesClosureAndDependents) {
  const Instance instance = Example1();
  EXPECT_EQ(instance.DepClosure(2), (std::vector<TaskId>{0, 1}));
  EXPECT_EQ(instance.DepClosure(4), (std::vector<TaskId>{3}));
  EXPECT_EQ(instance.Dependents(0), (std::vector<TaskId>{1, 2}));
  EXPECT_EQ(instance.Dependents(3), (std::vector<TaskId>{4}));
  EXPECT_EQ(instance.total_closure_size(), 4);
}

TEST(InstanceTest, ClosureExpandsIndirectDeps) {
  // Direct lists only mention the parent; closure must pull ancestors.
  auto instance = Instance::Create(
      {}, {MakeTask(0, 0, 0, 0), MakeTask(1, 0, 0, 0, {0}),
           MakeTask(2, 0, 0, 0, {1})}, 1);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->DepClosure(2), (std::vector<TaskId>{0, 1}));
}

// ----------------------------------------------------------- Feasibility ---

TEST(FeasibilityTest, SkillMismatchRejected) {
  const Instance instance = Example1();
  const WorkerState w2 = WorkerState::Initial(instance.worker(1));  // ψ4 only
  FeasibilityParams params;
  EXPECT_FALSE(CanServe(instance, w2, 0, 0.0, params));  // t1 needs ψ1
  EXPECT_TRUE(CanServe(instance, w2, 3, 0.0, params));   // t4 needs ψ4
}

TEST(FeasibilityTest, WorkerDeadlineRespected) {
  auto instance = Instance::Create(
      {MakeWorker(0, 0, 0, {0}, /*start=*/0.0, /*wait=*/10.0)},
      {MakeTask(0, 0, 0, 0, {}, /*start=*/0.0, /*wait=*/100.0)}, 1);
  ASSERT_TRUE(instance.ok());
  const WorkerState state = WorkerState::Initial(instance->worker(0));
  FeasibilityParams params;
  EXPECT_TRUE(CanServe(*instance, state, 0, 5.0, params));
  EXPECT_FALSE(CanServe(*instance, state, 0, 11.0, params));  // worker left
}

TEST(FeasibilityTest, TaskAppearingAfterWorkerLeavesRejected) {
  auto instance = Instance::Create(
      {MakeWorker(0, 0, 0, {0}, 0.0, 10.0)},
      {MakeTask(0, 0, 0, 0, {}, /*start=*/20.0, /*wait=*/100.0)}, 1);
  ASSERT_TRUE(instance.ok());
  const WorkerState state = WorkerState::Initial(instance->worker(0));
  FeasibilityParams params;
  EXPECT_FALSE(CanServe(*instance, state, 0, 25.0, params));
}

TEST(FeasibilityTest, TaskNotYetArrivedRejected) {
  auto instance = Instance::Create(
      {MakeWorker(0, 0, 0, {0})},
      {MakeTask(0, 0, 0, 0, {}, /*start=*/5.0)}, 1);
  ASSERT_TRUE(instance.ok());
  const WorkerState state = WorkerState::Initial(instance->worker(0));
  FeasibilityParams params;
  EXPECT_FALSE(CanServe(*instance, state, 0, 1.0, params));
  EXPECT_TRUE(CanServe(*instance, state, 0, 5.0, params));
}

TEST(FeasibilityTest, TravelTimeAgainstTaskExpiry) {
  // Worker at origin, v=1; task at distance 10 expiring at t=8: unreachable.
  auto instance = Instance::Create(
      {MakeWorker(0, 0, 0, {0}, 0.0, 100.0, /*velocity=*/1.0,
                  /*max_distance=*/100.0)},
      {MakeTask(0, 10, 0, 0, {}, 0.0, /*wait=*/8.0)}, 1);
  ASSERT_TRUE(instance.ok());
  const WorkerState state = WorkerState::Initial(instance->worker(0));
  FeasibilityParams params;
  EXPECT_FALSE(CanServe(*instance, state, 0, 0.0, params));
}

TEST(FeasibilityTest, TravelTimeWithinTaskExpiry) {
  auto instance = Instance::Create(
      {MakeWorker(0, 0, 0, {0}, 0.0, 100.0, 1.0, 100.0)},
      {MakeTask(0, 5, 0, 0, {}, 0.0, 8.0)}, 1);
  ASSERT_TRUE(instance.ok());
  const WorkerState state = WorkerState::Initial(instance->worker(0));
  FeasibilityParams params;
  EXPECT_TRUE(CanServe(*instance, state, 0, 0.0, params));
  EXPECT_TRUE(CanServe(*instance, state, 0, 3.0, params));   // 3 + 5 = 8
  EXPECT_FALSE(CanServe(*instance, state, 0, 3.1, params));  // just too late
}

TEST(FeasibilityTest, DistanceBudgetRespected) {
  auto instance = Instance::Create(
      {MakeWorker(0, 0, 0, {0}, 0.0, 100.0, 1.0, /*max_distance=*/3.0)},
      {MakeTask(0, 5, 0, 0)}, 1);
  ASSERT_TRUE(instance.ok());
  WorkerState state = WorkerState::Initial(instance->worker(0));
  FeasibilityParams params;
  EXPECT_FALSE(CanServe(*instance, state, 0, 0.0, params));
  state.remaining_distance = 10.0;  // e.g., per-trip mode override
  EXPECT_TRUE(CanServe(*instance, state, 0, 0.0, params));
}

TEST(FeasibilityTest, OfflineFormMatchesPaperFormula) {
  // w_t - max(s_w - s_t, 0) - ct >= 0 with s_w=4, s_t=1, w_t=6, ct=dist/v.
  auto instance = Instance::Create(
      {MakeWorker(0, 0, 0, {0}, /*start=*/4.0, /*wait=*/100.0, 1.0, 100.0)},
      {MakeTask(0, 3, 0, 0, {}, /*start=*/1.0, /*wait=*/6.0)}, 1);
  ASSERT_TRUE(instance.ok());
  FeasibilityParams params;
  // depart at max(4,1)=4, ct=3 -> arrival 7 == s_t + w_t = 7: feasible.
  EXPECT_TRUE(CanServeOffline(*instance, 0, 0, params));
}

TEST(FeasibilityTest, OfflineRejectsLateWorker) {
  auto instance = Instance::Create(
      {MakeWorker(0, 0, 0, {0}, /*start=*/5.0, 100.0, 1.0, 100.0)},
      {MakeTask(0, 3, 0, 0, {}, /*start=*/1.0, /*wait=*/6.0)}, 1);
  ASSERT_TRUE(instance.ok());
  FeasibilityParams params;
  // depart 5, arrival 8 > 7.
  EXPECT_FALSE(CanServeOffline(*instance, 0, 0, params));
}

TEST(FeasibilityTest, RoadNetworkDistanceUsed) {
  // Straight-line reachable, but the road network detour is too long.
  auto instance = Instance::Create(
      {MakeWorker(0, 0, 0, {0}, 0.0, 100.0, 1.0, /*max_distance=*/1.1)},
      {MakeTask(0, 1, 1, 0)}, 1);
  ASSERT_TRUE(instance.ok());
  geo::RoadNetwork::Options net_options;
  net_options.grid_width = 4;
  net_options.grid_height = 4;
  net_options.detour_min = 2.0;  // every street twice its straight length
  net_options.detour_max = 2.0;
  net_options.blocked_fraction = 0.0;
  const geo::RoadNetwork network =
      geo::RoadNetwork::MakeGrid(0, 0, 1, 1, net_options);
  FeasibilityParams euclid;  // dist ~1.41 > 1.1 — actually infeasible too;
  // use a generous straight-line variant to contrast:
  auto far_worker = MakeWorker(0, 0, 0, {0}, 0.0, 100.0, 1.0, 3.0);
  auto contrast = Instance::Create({far_worker}, {MakeTask(0, 1, 1, 0)}, 1);
  ASSERT_TRUE(contrast.ok());
  const WorkerState contrast_state =
      WorkerState::Initial(contrast->worker(0));
  EXPECT_TRUE(CanServe(*contrast, contrast_state, 0, 0.0, euclid));
  FeasibilityParams road;
  road.distance_kind = geo::DistanceKind::kRoadNetwork;
  road.road_network = &network;
  // Road distance = 2 * Manhattan = 4 > 3.
  EXPECT_FALSE(CanServe(*contrast, contrast_state, 0, 0.0, road));
  EXPECT_NEAR(PairDistance(road, {0, 0}, {1, 1}), 4.0, 1e-9);
}

TEST(FeasibilityTest, ManhattanDistanceKindUsed) {
  auto instance = Instance::Create(
      {MakeWorker(0, 0, 0, {0}, 0.0, 100.0, 1.0, /*max_distance=*/5.5)},
      {MakeTask(0, 3, 3, 0)}, 1);
  ASSERT_TRUE(instance.ok());
  const WorkerState state = WorkerState::Initial(instance->worker(0));
  FeasibilityParams euclid;  // dist ~ 4.24 <= 5.5
  EXPECT_TRUE(CanServe(*instance, state, 0, 0.0, euclid));
  FeasibilityParams manhattan;
  manhattan.distance_kind = geo::DistanceKind::kManhattan;  // dist 6 > 5.5
  EXPECT_FALSE(CanServe(*instance, state, 0, 0.0, manhattan));
}

// ----------------------------------------------------------------- Batch ---

TEST(BatchTest, AllAtContainsEverything) {
  const Instance instance = Example1();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  EXPECT_EQ(problem.workers.size(), 3u);
  EXPECT_EQ(problem.open_tasks.size(), 5u);
  EXPECT_FALSE(problem.TaskAssignedBefore(0));
}

TEST(BatchTest, CandidatesMatchBruteForce) {
  const Instance instance = testing::RandomInstance(77);
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  const CandidateSets sets = BuildCandidates(problem);
  for (size_t i = 0; i < problem.workers.size(); ++i) {
    std::vector<TaskId> expected;
    for (TaskId t : problem.open_tasks) {
      if (CanServe(instance, problem.workers[i], t, 0.0, problem.params)) {
        expected.push_back(t);
      }
    }
    EXPECT_EQ(sets.worker_tasks[i], expected) << "worker " << i;
  }
}

TEST(BatchTest, CandidatesGridAndScanAgree) {
  // Whichever path the probe-count model picks, the output must equal a
  // direct CanServe scan.
  testing::RandomInstanceParams params;
  params.num_tasks = 200;
  params.num_workers = 30;
  params.max_distance = 0.3;  // makes the radius query selective
  params.velocity = 1.0;
  params.task_wait = 0.4;
  const Instance instance = testing::RandomInstance(88, params);
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  const CandidateSets sets = BuildCandidates(problem);
  int64_t pairs = 0;
  for (size_t i = 0; i < problem.workers.size(); ++i) {
    std::vector<TaskId> expected;
    for (TaskId t : problem.open_tasks) {
      if (CanServe(instance, problem.workers[i], t, 0.0, problem.params)) {
        expected.push_back(t);
      }
    }
    pairs += static_cast<int64_t>(expected.size());
    EXPECT_EQ(sets.worker_tasks[i], expected) << "worker " << i;
  }
  EXPECT_EQ(sets.num_pairs, pairs);
}

TEST(BatchTest, TaskWorkersIsInverse) {
  const Instance instance = testing::RandomInstance(99);
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  const CandidateSets sets = BuildCandidates(problem);
  for (int t = 0; t < instance.num_tasks(); ++t) {
    for (int wi : sets.task_workers[static_cast<size_t>(t)]) {
      const auto& tasks = sets.worker_tasks[static_cast<size_t>(wi)];
      EXPECT_TRUE(std::binary_search(tasks.begin(), tasks.end(), t));
    }
  }
}

// ------------------------------------------------------------ Assignment ---

TEST(AssignmentTest, ValidPairsKeepsDependencyClosedSubset) {
  const Instance instance = Example1();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  Assignment assignment;
  assignment.Add(0, 1);  // w1 -> t2, dep t1 NOT assigned
  assignment.Add(1, 3);  // w2 -> t4, no deps
  const Assignment valid = ValidPairs(problem, assignment);
  ASSERT_EQ(valid.size(), 1);
  EXPECT_EQ(valid.pairs()[0], (std::pair<WorkerId, TaskId>{1, 3}));
}

TEST(AssignmentTest, ValidPairsAcceptsInBatchDependency) {
  const Instance instance = Example1();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  Assignment assignment;
  assignment.Add(0, 0);  // t1
  assignment.Add(2, 1);  // t2 (dep t1 in batch)
  EXPECT_EQ(ValidScore(problem, assignment), 2);
}

TEST(AssignmentTest, ValidPairsAcceptsPriorBatchCredit) {
  const Instance instance = Example1();
  BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  problem.assigned_before[0] = 1;  // t1 assigned in an earlier batch
  Assignment assignment;
  assignment.Add(0, 1);  // t2 now valid
  EXPECT_EQ(ValidScore(problem, assignment), 1);
}

TEST(AssignmentTest, ValidPairsTransitiveChain) {
  const Instance instance = Example1();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  Assignment assignment;
  assignment.Add(2, 2);  // t3 needs t1 AND t2
  assignment.Add(0, 1);  // t2 needs t1 -- missing!
  EXPECT_EQ(ValidScore(problem, assignment), 0);
  assignment.Add(1, 0);  // worker 1 lacks skill ψ1 but validity here only
                         // filters dependencies; all three become closed.
  EXPECT_EQ(ValidScore(problem, assignment), 3);
}

TEST(AssignmentTest, ExclusivityFirstPairWins) {
  const Instance instance = Example1();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  Assignment assignment;
  assignment.Add(0, 0);
  assignment.Add(0, 3);  // same worker again: dropped
  assignment.Add(1, 0);  // same task again: dropped
  const Assignment valid = ValidPairs(problem, assignment);
  ASSERT_EQ(valid.size(), 1);
  EXPECT_EQ(valid.pairs()[0], (std::pair<WorkerId, TaskId>{0, 0}));
}

TEST(AssignmentTest, ValidateCatchesSkillViolation) {
  const Instance instance = Example1();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  Assignment assignment;
  assignment.Add(1, 0);  // w2 (ψ4) on t1 (ψ1)
  EXPECT_FALSE(ValidateAssignment(problem, assignment).ok());
}

TEST(AssignmentTest, ValidateCatchesDuplicateWorker) {
  const Instance instance = Example1();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  Assignment assignment;
  assignment.Add(0, 0);
  assignment.Add(0, 1);
  EXPECT_FALSE(ValidateAssignment(problem, assignment).ok());
}

TEST(AssignmentTest, ValidateCatchesMissingDependency) {
  const Instance instance = Example1();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  Assignment assignment;
  assignment.Add(0, 1);  // t2 without t1
  EXPECT_FALSE(ValidateAssignment(problem, assignment).ok());
}

TEST(AssignmentTest, ValidateAcceptsPaperSolution) {
  const Instance instance = Example1();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  Assignment assignment;
  assignment.Add(0, 0);  // w1 -> t1
  assignment.Add(2, 1);  // w3 -> t2
  assignment.Add(1, 3);  // w2 -> t4
  EXPECT_TRUE(ValidateAssignment(problem, assignment).ok());
  EXPECT_EQ(ValidScore(problem, assignment), 3);
}

TEST(AssignmentTest, ValidateRejectsUnknownWorkerOrClosedTask) {
  const Instance instance = Example1();
  BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  problem.workers.pop_back();  // w3 not in batch
  Assignment a1;
  a1.Add(2, 0);
  EXPECT_FALSE(ValidateAssignment(problem, a1).ok());
  problem = BatchProblem::AllAt(instance, 0.0);
  problem.open_tasks.erase(problem.open_tasks.begin());  // t0 not open
  Assignment a2;
  a2.Add(0, 0);
  EXPECT_FALSE(ValidateAssignment(problem, a2).ok());
}

// ClassifyServe is CanServe refactored into classify-then-compare form; the
// equivalence CanServe == (ClassifyServe == kNone) must hold pointwise (and
// likewise for the offline twins) or the ledger's reason attribution would
// diverge from the allocator's feasibility decisions. Property-checked over
// random tightened instances so every failure branch is exercised.
TEST(FeasibilityTest, ClassifyAgreesWithCanServeEverywhere) {
  testing::RandomInstanceParams params;
  params.num_workers = 6;
  params.num_tasks = 10;
  params.worker_wait = 4.0;
  params.task_wait = 3.0;
  params.velocity = 0.2;
  params.max_distance = 0.5;
  FeasibilityParams feas;
  int classified[7] = {0};
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const Instance instance = testing::RandomInstance(seed, params);
    for (WorkerId w = 0; w < instance.num_workers(); ++w) {
      const WorkerState state = WorkerState::Initial(instance.worker(w));
      for (TaskId t = 0; t < instance.num_tasks(); ++t) {
        for (double now : {0.0, 2.0, 5.0}) {
          const ServeFailure f = ClassifyServe(instance, state, t, now, feas);
          EXPECT_EQ(CanServe(instance, state, t, now, feas),
                    f == ServeFailure::kNone);
          ++classified[static_cast<int>(f)];
        }
        const ServeFailure off = ClassifyServeOffline(instance, w, t, feas);
        EXPECT_EQ(CanServeOffline(instance, w, t, feas),
                  off == ServeFailure::kNone);
      }
    }
  }
  // The tightened parameters must actually reach every dynamic failure kind
  // reachable with simultaneous arrivals (kWindowMismatch and
  // kTaskNotArrived need staggered task starts, which RandomInstance does
  // not generate; the scenario tests above cover those branches).
  for (const ServeFailure f :
       {ServeFailure::kNone, ServeFailure::kSkillMismatch,
        ServeFailure::kWorkerDeparted, ServeFailure::kOutOfRange,
        ServeFailure::kArrivalDeadline}) {
    EXPECT_GT(classified[static_cast<int>(f)], 0) << ServeFailureName(f);
  }
}

}  // namespace
}  // namespace dasc::core
