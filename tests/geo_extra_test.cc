// Tests for the KD-tree index and the road network distance substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "geo/distance.h"
#include "geo/kdtree.h"
#include "geo/road_network.h"
#include "util/rng.h"

namespace dasc::geo {
namespace {

// ---------------------------------------------------------------- KdTree ---

TEST(KdTreeTest, EmptyTree) {
  KdTree tree({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.QueryRadius({0, 0}, 1.0).empty());
  EXPECT_EQ(tree.Nearest({0, 0}), -1);
}

TEST(KdTreeTest, SinglePoint) {
  KdTree tree({{0.5, 0.5}});
  EXPECT_EQ(tree.Nearest({0, 0}), 0);
  EXPECT_EQ(tree.QueryRadius({0.5, 0.5}, 0.0).size(), 1u);
  EXPECT_TRUE(tree.QueryRadius({0, 0}, 0.1).empty());
}

TEST(KdTreeTest, DuplicatePoints) {
  KdTree tree({{1, 1}, {1, 1}, {1, 1}});
  EXPECT_EQ(tree.QueryRadius({1, 1}, 0.5).size(), 3u);
}

TEST(KdTreeTest, RadiusMatchesBruteForce) {
  util::Rng rng(7);
  std::vector<Point> points(400);
  for (auto& p : points) {
    p = {rng.UniformDouble(0, 1), rng.UniformDouble(0, 1)};
  }
  KdTree tree(points);
  for (int iter = 0; iter < 60; ++iter) {
    const Point center{rng.UniformDouble(-0.2, 1.2),
                       rng.UniformDouble(-0.2, 1.2)};
    const double radius = rng.UniformDouble(0, 0.4);
    auto got = tree.QueryRadius(center, radius);
    std::sort(got.begin(), got.end());
    std::vector<int32_t> want;
    for (size_t i = 0; i < points.size(); ++i) {
      if (EuclideanDistance(points[i], center) <= radius) {
        want.push_back(static_cast<int32_t>(i));
      }
    }
    EXPECT_EQ(got, want) << "iter " << iter;
  }
}

TEST(KdTreeTest, NearestMatchesBruteForce) {
  util::Rng rng(9);
  std::vector<Point> points(300);
  for (auto& p : points) {
    p = {rng.UniformDouble(0, 1), rng.UniformDouble(0, 1)};
  }
  KdTree tree(points);
  for (int iter = 0; iter < 100; ++iter) {
    const Point center{rng.UniformDouble(0, 1), rng.UniformDouble(0, 1)};
    const int32_t got = tree.Nearest(center);
    double best = std::numeric_limits<double>::infinity();
    for (const auto& p : points) {
      best = std::min(best, EuclideanDistance(p, center));
    }
    EXPECT_NEAR(EuclideanDistance(points[static_cast<size_t>(got)], center),
                best, 1e-12);
  }
}

TEST(KdTreeTest, ClusteredDataStillCorrect) {
  // Grids degrade on clusters; the tree must stay exact.
  util::Rng rng(11);
  std::vector<Point> points;
  for (int c = 0; c < 5; ++c) {
    const Point center{rng.UniformDouble(0, 1), rng.UniformDouble(0, 1)};
    for (int i = 0; i < 50; ++i) {
      points.push_back({rng.Gaussian(center.x, 0.01),
                        rng.Gaussian(center.y, 0.01)});
    }
  }
  KdTree tree(points);
  auto hits = tree.QueryRadius(points[0], 0.05);
  std::vector<int32_t> want;
  for (size_t i = 0; i < points.size(); ++i) {
    if (EuclideanDistance(points[i], points[0]) <= 0.05) {
      want.push_back(static_cast<int32_t>(i));
    }
  }
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, want);
}

// ----------------------------------------------------------- RoadNetwork ---

RoadNetwork::Options SmallOptions() {
  RoadNetwork::Options options;
  options.grid_width = 8;
  options.grid_height = 8;
  options.seed = 5;
  return options;
}

TEST(RoadNetworkTest, BuildsConnectedGraph) {
  const RoadNetwork network =
      RoadNetwork::MakeGrid(0, 0, 1, 1, SmallOptions());
  EXPECT_EQ(network.num_nodes(), 64);
  // Spanning tree guarantees >= n-1 edges.
  EXPECT_GE(network.num_edges(), 63);
  // Every pair of corners must be reachable (finite distance).
  EXPECT_TRUE(std::isfinite(network.Distance({0, 0}, {1, 1})));
  EXPECT_TRUE(std::isfinite(network.Distance({1, 0}, {0, 1})));
}

TEST(RoadNetworkTest, DistanceAtLeastEuclideanBetweenJunctions) {
  const RoadNetwork network =
      RoadNetwork::MakeGrid(0, 0, 1, 1, SmallOptions());
  util::Rng rng(13);
  for (int iter = 0; iter < 50; ++iter) {
    // Query at junction coordinates so snapping adds nothing.
    const int a = static_cast<int>(rng.UniformInt(0, 63));
    const int b = static_cast<int>(rng.UniformInt(0, 63));
    const double road = network.Distance(network.node(a), network.node(b));
    const double euclid = EuclideanDistance(network.node(a), network.node(b));
    EXPECT_GE(road, euclid - 1e-9);
  }
}

TEST(RoadNetworkTest, SymmetricDistances) {
  const RoadNetwork network =
      RoadNetwork::MakeGrid(0, 0, 2, 1, SmallOptions());
  util::Rng rng(17);
  for (int iter = 0; iter < 30; ++iter) {
    const Point a{rng.UniformDouble(0, 2), rng.UniformDouble(0, 1)};
    const Point b{rng.UniformDouble(0, 2), rng.UniformDouble(0, 1)};
    EXPECT_NEAR(network.Distance(a, b), network.Distance(b, a), 1e-9);
  }
}

TEST(RoadNetworkTest, SamePointNearZero) {
  const RoadNetwork network =
      RoadNetwork::MakeGrid(0, 0, 1, 1, SmallOptions());
  const Point p{0.31, 0.77};
  // Walking to the nearest junction and back: 2x the snap distance.
  EXPECT_LE(network.Distance(p, p), 2.0 * 0.2);
}

TEST(RoadNetworkTest, SnapToNodeFindsNearestJunction) {
  const RoadNetwork network =
      RoadNetwork::MakeGrid(0, 0, 1, 1, SmallOptions());
  for (int id = 0; id < network.num_nodes(); ++id) {
    EXPECT_EQ(network.SnapToNode(network.node(id)), id);
  }
  // Points outside the box clamp to boundary junctions.
  EXPECT_EQ(network.SnapToNode({-5, -5}), network.SnapToNode({0, 0}));
}

TEST(RoadNetworkTest, NoDetourEqualsManhattanLowerBound) {
  // With detour 1.0 and nothing blocked, a full grid's junction-to-junction
  // distance equals the Manhattan distance.
  RoadNetwork::Options options;
  options.grid_width = 6;
  options.grid_height = 6;
  options.detour_min = 1.0;
  options.detour_max = 1.0;
  options.blocked_fraction = 0.0;
  const RoadNetwork network = RoadNetwork::MakeGrid(0, 0, 5, 5, options);
  for (int a = 0; a < 36; a += 7) {
    for (int b = 0; b < 36; b += 5) {
      EXPECT_NEAR(network.Distance(network.node(a), network.node(b)),
                  ManhattanDistance(network.node(a), network.node(b)), 1e-9);
    }
  }
}

TEST(RoadNetworkTest, BlockedStreetsLengthenPaths) {
  RoadNetwork::Options open = SmallOptions();
  open.blocked_fraction = 0.0;
  open.detour_min = open.detour_max = 1.0;
  RoadNetwork::Options blocked = open;
  blocked.blocked_fraction = 0.9;
  const RoadNetwork free_net = RoadNetwork::MakeGrid(0, 0, 1, 1, open);
  const RoadNetwork blocked_net = RoadNetwork::MakeGrid(0, 0, 1, 1, blocked);
  double free_total = 0, blocked_total = 0;
  util::Rng rng(23);
  for (int iter = 0; iter < 40; ++iter) {
    const int a = static_cast<int>(rng.UniformInt(0, 63));
    const int b = static_cast<int>(rng.UniformInt(0, 63));
    free_total += free_net.Distance(free_net.node(a), free_net.node(b));
    blocked_total +=
        blocked_net.Distance(blocked_net.node(a), blocked_net.node(b));
  }
  EXPECT_GE(blocked_total, free_total);
}

}  // namespace
}  // namespace dasc::geo
