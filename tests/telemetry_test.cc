// Live-telemetry plane tests: the exposition endpoint scraped during a
// running simulation, the stall watchdog's threshold/re-arm semantics
// (injected stalls via CheckOnce, plus the background poll thread), the
// metrics time-series retention bound, and the documented agreement between
// sketch and histogram p95 estimates. See DESIGN.md §14.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "algo/registry.h"
#include "core/instance.h"
#include "gen/params.h"
#include "gen/synthetic.h"
#include "sim/metrics_timeseries.h"
#include "sim/simulator.h"
#include "sim/watchdog.h"
#include "util/flight_recorder.h"
#include "util/http_server.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/quantile_sketch.h"

namespace dasc {
namespace {

using sim::MetricsTimeSeries;
using sim::SimulatorOptions;
using sim::StallWatchdog;
using sim::WatchdogOptions;
using util::HttpGetLocal;
using util::MetricsHttpServer;
using util::MetricsRegistry;

core::Instance SmallInstance(uint64_t seed) {
  gen::SyntheticParams params;
  params.seed = seed;
  params.num_workers = 30;
  params.num_tasks = 40;
  params.num_skills = 8;
  params.dependency_size = {0, 4};
  auto instance = gen::GenerateSynthetic(params);
  DASC_CHECK(instance.ok());
  return *std::move(instance);
}

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// End-to-end: an audited gg simulation runs with the telemetry hooks
// attached while the exposition server is scraped live from this thread.
TEST(LiveTelemetry, EndpointsServeDuringSimulation) {
  const core::Instance instance = SmallInstance(17);
  auto allocator = algo::CreateAllocator("gg", 17);
  ASSERT_TRUE(allocator.ok());

  MetricsTimeSeries timeseries;
  StallWatchdog watchdog;  // default thresholds: nothing should fire
  SimulatorOptions options;
  options.audit = true;
  options.timeseries = &timeseries;
  options.watchdog = &watchdog;

  MetricsHttpServer::Options server_options;
  server_options.port = 0;  // ephemeral
  MetricsHttpServer server(server_options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  watchdog.Start();

  std::atomic<bool> done{false};
  sim::SimulationResult result;
  std::thread runner([&] {
    sim::Simulator simulator(instance, options);
    result = simulator.Run(**allocator);
    done.store(true);
  });

  // Scrape all endpoints while the simulation runs: every response must be
  // HTTP-well-formed at any run phase (a scrape can race the very first
  // metric registration, so content is only pinned after the run below).
  int scrapes = 0;
  while (!done.load() || scrapes == 0) {
    auto metrics = HttpGetLocal(server.port(), "/metrics");
    ASSERT_TRUE(metrics.ok()) << metrics.status().message();
    auto snapshot = HttpGetLocal(server.port(), "/snapshot");
    ASSERT_TRUE(snapshot.ok());
    EXPECT_NE(snapshot->find("\"counters\""), std::string::npos);
    auto window = HttpGetLocal(server.port(), "/window");
    ASSERT_TRUE(window.ok());
    EXPECT_NE(window->find("\"sketches\""), std::string::npos);
    ++scrapes;
  }
  runner.join();
  watchdog.Stop();

  // Post-run scrape: the registry now holds the sim's metrics families.
  auto metrics = HttpGetLocal(server.port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("# TYPE"), std::string::npos);
  EXPECT_NE(metrics->find("sim_batches_total"), std::string::npos);

  EXPECT_GT(result.batches, 0);
  EXPECT_GT(result.score, 0);
  EXPECT_GT(timeseries.recorded(), 0);
  EXPECT_GE(scrapes, 1);

  // /healthz is a JSON liveness document: status plus uptime, the request
  // sequence number, and build provenance.
  auto health = HttpGetLocal(server.port(), "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->find("\"status\":\"ok\""), std::string::npos) << *health;
  EXPECT_NE(health->find("\"uptime_s\""), std::string::npos);
  EXPECT_NE(health->find("\"seq\""), std::string::npos);
  EXPECT_NE(health->find("\"build\""), std::string::npos);
  EXPECT_NE(health->find("\"git_sha\""), std::string::npos);
  EXPECT_FALSE(HttpGetLocal(server.port(), "/no-such-path").ok());

  server.Stop();
  EXPECT_FALSE(server.running());
  // After Stop() the port no longer answers.
  EXPECT_FALSE(HttpGetLocal(server.port(), "/healthz", 200).ok());
}

TEST(LiveTelemetry, ServerStartStopIsIdempotent) {
  MetricsRegistry registry;
  MetricsHttpServer::Options options;
  options.registry = &registry;
  MetricsHttpServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();
  ASSERT_GT(port, 0);
  server.Stop();
  server.Stop();  // second stop is a no-op
  EXPECT_FALSE(server.running());
}

// A taken port is a configuration problem, not an internal fault: the
// error must be FailedPrecondition and must name the address, the errno,
// and the remedy — not a bare strerror string.
TEST(LiveTelemetry, BindFailureIsStructuredAndActionable) {
  MetricsRegistry registry;
  MetricsHttpServer::Options options;
  options.registry = &registry;
  options.port = 0;
  MetricsHttpServer first(options);
  ASSERT_TRUE(first.Start().ok());

  MetricsHttpServer::Options clash = options;
  clash.port = first.port();
  MetricsHttpServer second(clash);
  const util::Status status = second.Start();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition)
      << status.ToString();
  const std::string& message = status.message();
  EXPECT_NE(message.find("127.0.0.1:" + std::to_string(first.port())),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("EADDRINUSE"), std::string::npos) << message;
  EXPECT_NE(message.find("--serve-metrics"), std::string::npos) << message;
  first.Stop();
}

// Injected stall: a microscopic heartbeat timeout makes every measurable
// heartbeat age a breach. The breach is edge-triggered per heartbeat seq —
// one anomaly per stalled heartbeat, re-armed only by the next heartbeat.
TEST(StallWatchdogTest, HeartbeatStallFiresOncePerSeq) {
  MetricsRegistry registry;
  WatchdogOptions options;
  options.heartbeat_timeout_ms = 1e-6;
  StallWatchdog watchdog(options, &registry);

  // Unarmed before the first heartbeat: no breach however long we wait.
  EXPECT_EQ(watchdog.CheckOnce(), 0);

  watchdog.Heartbeat(3);
  SleepMs(2);
  EXPECT_EQ(watchdog.CheckOnce(), 1);
  EXPECT_EQ(watchdog.CheckOnce(), 0);  // same excursion, no re-fire

  watchdog.Heartbeat(4);  // progress re-arms the breach
  SleepMs(2);
  EXPECT_EQ(watchdog.CheckOnce(), 1);

  EXPECT_EQ(watchdog.anomaly_count(), 2);
  const auto anomalies = watchdog.anomalies();
  ASSERT_EQ(anomalies.size(), 2u);
  EXPECT_EQ(anomalies[0].kind, "heartbeat_stall");
  EXPECT_EQ(anomalies[0].batch_seq, 3);
  EXPECT_EQ(anomalies[1].batch_seq, 4);
  EXPECT_GT(anomalies[0].value, anomalies[0].threshold);

  EXPECT_EQ(
      registry.GetCounter("watchdog_anomalies_total{kind=\"heartbeat_stall\"}")
          ->value(),
      2);
}

TEST(StallWatchdogTest, QueueDepthBreachRearmsOnRecovery) {
  MetricsRegistry registry;
  WatchdogOptions options;
  options.queue_depth_limit = 10.0;
  StallWatchdog watchdog(options, &registry);

  registry.GetGauge("threadpool_queue_depth")->Set(50.0);
  EXPECT_EQ(watchdog.CheckOnce(), 1);
  EXPECT_EQ(watchdog.CheckOnce(), 0);  // still deep: same excursion

  registry.GetGauge("threadpool_queue_depth")->Set(2.0);
  EXPECT_EQ(watchdog.CheckOnce(), 0);  // recovered, re-armed

  registry.GetGauge("threadpool_queue_depth")->Set(99.0);
  EXPECT_EQ(watchdog.CheckOnce(), 1);  // new excursion fires again

  EXPECT_EQ(
      registry.GetCounter("watchdog_anomalies_total{kind=\"queue_depth\"}")
          ->value(),
      2);
}

// The audit-gap check only applies while the auditor is actually running
// (audit_batches_total > 0) — a zero gap gauge on a non-audited run is
// just an unregistered default, not a quality collapse.
TEST(StallWatchdogTest, AuditGapGatedOnAuditorActivity) {
  MetricsRegistry registry;
  WatchdogOptions options;
  options.min_audit_gap = 0.25;
  StallWatchdog watchdog(options, &registry);

  registry.GetGauge("audit_last_batch_gap")->Set(0.05);
  EXPECT_EQ(watchdog.CheckOnce(), 0);  // auditor not running: ignored

  registry.GetCounter("audit_batches_total")->Increment(1);
  EXPECT_EQ(watchdog.CheckOnce(), 1);  // now it counts
  EXPECT_EQ(watchdog.CheckOnce(), 0);

  registry.GetGauge("audit_last_batch_gap")->Set(0.9);
  EXPECT_EQ(watchdog.CheckOnce(), 0);  // recovery re-arms
  registry.GetGauge("audit_last_batch_gap")->Set(0.1);
  EXPECT_EQ(watchdog.CheckOnce(), 1);

  EXPECT_EQ(registry.GetCounter("watchdog_anomalies_total{kind=\"audit_gap\"}")
                ->value(),
            2);
}

// The background poll thread is CheckOnce() in a loop: with a microscopic
// timeout and a fast poll it must record the injected stall on its own.
TEST(StallWatchdogTest, BackgroundThreadDetectsInjectedStall) {
  MetricsRegistry registry;
  WatchdogOptions options;
  options.poll_interval_ms = 5;
  options.heartbeat_timeout_ms = 1e-6;
  StallWatchdog watchdog(options, &registry);
  watchdog.Heartbeat(1);
  watchdog.Start();
  watchdog.Start();  // idempotent
  for (int i = 0; i < 100 && watchdog.anomaly_count() == 0; ++i) SleepMs(5);
  watchdog.Stop();
  watchdog.Stop();  // idempotent
  EXPECT_GE(watchdog.anomaly_count(), 1);
  EXPECT_GE(
      registry.GetCounter("watchdog_anomalies_total{kind=\"heartbeat_stall\"}")
          ->value(),
      1);
}

TEST(StallWatchdogTest, AnomalyListIsBoundedButCounterKeepsCounting) {
  MetricsRegistry registry;
  WatchdogOptions options;
  options.heartbeat_timeout_ms = 1e-6;
  options.max_anomalies = 2;
  StallWatchdog watchdog(options, &registry);
  for (int64_t seq = 0; seq < 5; ++seq) {
    watchdog.Heartbeat(seq);
    SleepMs(2);
    ASSERT_EQ(watchdog.CheckOnce(), 1) << "seq " << seq;
  }
  EXPECT_EQ(watchdog.anomaly_count(), 5);
  EXPECT_EQ(watchdog.anomalies().size(), 2u);  // retention bound
}

TEST(MetricsTimeSeriesTest, RetentionBoundEvictsOldestSamples) {
  MetricsRegistry registry;
  util::Counter* counter = registry.GetCounter("evict_total");
  MetricsTimeSeries timeseries(/*max_samples=*/2);
  counter->Increment(1);
  timeseries.RecordBatch(0, 0.0, registry);
  counter->Increment(2);
  timeseries.RecordBatch(1, 5.0, registry);
  counter->Increment(3);
  timeseries.RecordBatch(2, 10.0, registry);

  EXPECT_EQ(timeseries.recorded(), 3);
  EXPECT_EQ(timeseries.dropped(), 1);
  const auto samples = timeseries.Samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].batch_seq, 1);  // batch 0 evicted
  EXPECT_EQ(samples[1].batch_seq, 2);

  // Deltas, not cumulative levels.
  const auto columns = timeseries.Columns();
  size_t col = columns.size();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == "evict_total") col = i;
  }
  ASSERT_LT(col, columns.size());
  EXPECT_DOUBLE_EQ(samples[0].values[col], 2.0);
  EXPECT_DOUBLE_EQ(samples[1].values[col], 3.0);
}

// The acceptance contract for the mid-run /window check: a sketch p95 and
// a cumulative histogram p95 over the same samples agree within
//   [hist_p95 / growth * (1 - alpha), hist_p95 * (1 + alpha)]
// because HistogramQuantile returns the upper bound of a growth-factor
// bucket while the sketch is alpha-relative around the true value.
TEST(LiveTelemetry, SketchAndHistogramP95AgreeWithinDocumentedBound) {
  util::HistogramOptions hist_options;  // growth 2.0
  util::Histogram histogram(hist_options);
  util::QuantileSketchOptions sketch_options;  // alpha 0.01
  util::QuantileSketch sketch(sketch_options);

  std::mt19937_64 rng(23);
  std::lognormal_distribution<double> lognormal(1.0, 1.2);
  for (int i = 0; i < 50000; ++i) {
    const double v = lognormal(rng);
    histogram.Observe(v);
    sketch.Observe(v);
  }
  const double hist_p95 = util::HistogramQuantile(histogram.Snapshot(), 0.95);
  const double sketch_p95 = sketch.Quantile(0.95);
  ASSERT_GT(hist_p95, 0.0);
  const double alpha = sketch_options.relative_error;
  EXPECT_GE(sketch_p95, hist_p95 / hist_options.growth * (1.0 - alpha));
  EXPECT_LE(sketch_p95, hist_p95 * (1.0 + alpha));
}

// A client that connects and then never finishes its request must not
// wedge the single-threaded exposition loop: the per-connection socket
// timeout reclaims the connection, the io_timeouts counter records it, and
// the next well-behaved scrape succeeds. Regression test for the hung-
// scraper stall (DESIGN.md §16).
TEST(LiveTelemetry, HungClientCannotStallTheServer) {
  MetricsRegistry registry;
  MetricsHttpServer::Options options;
  options.registry = &registry;
  options.port = 0;
  options.io_timeout_ms = 100;
  MetricsHttpServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  // Raw socket: connect, send a partial request head (no terminating blank
  // line), and hang. Accepts are FIFO, so the server meets this connection
  // before the healthy scrape below.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  const char partial[] = "GET /healthz HTTP/1.1\r\n";
  ASSERT_GT(::send(fd, partial, sizeof(partial) - 1, 0), 0);

  // The healthy scrape queues behind the hung connection and must still be
  // answered once the 100 ms recv timeout reclaims it.
  auto health = HttpGetLocal(server.port(), "/healthz", /*timeout_ms=*/5000);
  ASSERT_TRUE(health.ok()) << health.status().message();
  EXPECT_NE(health->find("\"status\":\"ok\""), std::string::npos);

  // The timeout is an observable, structured event, not a silent drop.
  for (int i = 0; i < 100 && server.io_timeouts() == 0; ++i) SleepMs(5);
  EXPECT_GE(server.io_timeouts(), 1);
  EXPECT_GE(registry.GetCounter("http_server_io_timeouts_total")->value(), 1);

  ::close(fd);
  server.Stop();
}

// /debug/flight serves the always-on flight recorder as a dasc-flight/1
// JSONL document on demand — no anomaly required.
TEST(LiveTelemetry, DebugFlightEndpointDumpsTheRecorder) {
  util::FlightRecorder& recorder = util::FlightRecorder::Global();
  const uint32_t label = recorder.InternLabel("telemetry_test_debug_mark");
  recorder.Record(util::FlightEventKind::kMark, label, 42);

  MetricsRegistry registry;
  MetricsHttpServer::Options options;
  options.registry = &registry;
  options.port = 0;
  MetricsHttpServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto dump = HttpGetLocal(server.port(), "/debug/flight");
  ASSERT_TRUE(dump.ok()) << dump.status().message();
  EXPECT_NE(dump->find("\"schema\":\"dasc-flight/1\""), std::string::npos);
  EXPECT_NE(dump->find("\"reason\":\"http_debug_flight\""), std::string::npos);
  EXPECT_NE(dump->find("\"label\":\"telemetry_test_debug_mark\",\"a\":42"),
            std::string::npos);
  server.Stop();
}

// The anomaly hook contract the loadgen/service wiring relies on: the hook
// fires once per recorded anomaly, after CheckOnce's evaluation and with no
// watchdog lock held (re-entering watchdog accessors from the hook must not
// deadlock), and a flight dump taken inside the hook already contains the
// anomaly event RecordAnomaly appended.
TEST(StallWatchdogTest, AnomalyHookFiresUnlockedAndFlightDumpValidates) {
  MetricsRegistry registry;
  WatchdogOptions options;
  options.heartbeat_timeout_ms = 1e-6;
  StallWatchdog watchdog(options, &registry);

  std::vector<sim::WatchdogAnomaly> hooked;
  std::string dump;
  watchdog.SetOnAnomaly([&](const sim::WatchdogAnomaly& anomaly) {
    hooked.push_back(anomaly);
    // No lock held: watchdog accessors are safe from inside the hook.
    EXPECT_GE(watchdog.anomaly_count(), 1);
    dump = util::FlightRecorder::Global().DumpJsonl("watchdog:" +
                                                    anomaly.kind);
  });

  watchdog.Heartbeat(7);
  SleepMs(2);
  EXPECT_EQ(watchdog.CheckOnce(), 1);
  EXPECT_EQ(watchdog.CheckOnce(), 0);  // same excursion: hook not re-fired

  ASSERT_EQ(hooked.size(), 1u);
  EXPECT_EQ(hooked[0].kind, "heartbeat_stall");
  EXPECT_EQ(hooked[0].batch_seq, 7);
  EXPECT_NE(dump.find("\"schema\":\"dasc-flight/1\""), std::string::npos);
  EXPECT_NE(dump.find("\"reason\":\"watchdog:heartbeat_stall\""),
            std::string::npos);
  // RecordAnomaly's own flight event, labeled with the anomaly kind and
  // carrying the stalled heartbeat seq.
  EXPECT_NE(
      dump.find("\"kind\":\"anomaly\",\"label\":\"heartbeat_stall\",\"a\":7"),
      std::string::npos)
      << dump.substr(0, 400);
}

// The simulator wiring: batch boundaries advance sketch windows, feed the
// time series, and heartbeat the watchdog without any server attached.
TEST(LiveTelemetry, SimulatorFeedsHooksAtBatchBoundaries) {
  const core::Instance instance = SmallInstance(29);
  auto allocator = algo::CreateAllocator("greedy", 29);
  ASSERT_TRUE(allocator.ok());

  MetricsTimeSeries timeseries;
  StallWatchdog watchdog;
  SimulatorOptions options;
  options.timeseries = &timeseries;
  options.watchdog = &watchdog;
  sim::Simulator simulator(instance, options);
  const sim::SimulationResult result = simulator.Run(**allocator);

  EXPECT_EQ(timeseries.recorded(), result.batches);
  EXPECT_EQ(static_cast<int>(timeseries.Samples().size()), result.batches);
  // Default thresholds: a healthy run records no anomalies.
  EXPECT_EQ(watchdog.CheckOnce(), 0);
  EXPECT_EQ(watchdog.anomaly_count(), 0);

  // The allocator sketch saw every timed batch; its window quantiles are
  // live in the global registry for /window to serve.
  if (!util::MetricsEnabled()) GTEST_SKIP() << "metrics compiled out";
  const util::MetricsSnapshot snapshot = util::GlobalMetrics().Snapshot();
  bool found = false;
  for (const util::SketchSnapshot& s : snapshot.sketches) {
    if (s.name == "sim_batch_allocator_ms_window") {
      found = true;
      EXPECT_GE(s.cumulative_count,
                static_cast<int64_t>(result.per_batch_allocator_ms.size()));
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace dasc
