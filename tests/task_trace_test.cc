// Causal task tracer tests: deterministic trace ids, the three retention
// rules (head sampling, top-K-so-far tail windows, watchdog-flagged batch
// ranges), the monotone once-retained-never-evicted promise exemplars rely
// on, the retained-trace cap, and the batch-record ring bound. See
// DESIGN.md §16.
#include "sim/task_trace.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/flight_recorder.h"

namespace dasc::sim {
namespace {

// A tracer with every retention rule off; tests switch on exactly the rule
// under test so retention reasons are unambiguous.
TaskTracerOptions QuietOptions() {
  TaskTracerOptions options;
  options.head_sample_every = 0;
  options.tail_k = 0;
  return options;
}

// Submits, admits (batch 0), and decides one task with the given e2e.
uint64_t DecideTask(TaskTracer& tracer, core::TaskId task, int64_t seq,
                    double e2e_ms, bool served = true) {
  tracer.OnSubmit(task, 0.0);
  tracer.OnAdmit(task, seq);
  return tracer.OnDecision(task, seq, e2e_ms * 1e-3, served);
}

TEST(TaskTraceId, DeterministicNonzeroAndDistinct) {
  std::set<uint64_t> seen;
  for (core::TaskId t = 0; t < 1000; ++t) {
    const uint64_t id = TaskTraceId(t);
    EXPECT_NE(id, 0u) << "task " << t;
    EXPECT_EQ(id, TaskTraceId(t));  // pure function of the task id
    EXPECT_TRUE(seen.insert(id).second) << "collision at task " << t;
  }
}

TEST(TaskTracer, HeadSamplingRetainsEveryNthSubmission) {
  TaskTracerOptions options = QuietOptions();
  options.head_sample_every = 4;
  TaskTracer tracer(options);
  tracer.OnBatchBegin(0, 0.0);

  std::vector<core::TaskId> retained;
  for (core::TaskId t = 0; t < 8; ++t) {
    if (DecideTask(tracer, t, 0, 1.0) != 0) retained.push_back(t);
  }
  // Sampling is by submission order: the 1st and 5th submissions.
  EXPECT_EQ(retained, (std::vector<core::TaskId>{0, 4}));

  const TaskTracerStats stats = tracer.stats();
  EXPECT_EQ(stats.traces_started, 8);
  EXPECT_EQ(stats.traces_decided, 8);
  EXPECT_EQ(stats.traces_retained, 2);
  EXPECT_EQ(stats.head_retained, 2);
  EXPECT_EQ(stats.tail_retained, 0);
  EXPECT_EQ(stats.flagged_retained, 0);
  for (const TaskTraceRecord& rec : tracer.RetainedTraces()) {
    EXPECT_EQ(rec.retained_reason, "head");
    EXPECT_TRUE(rec.decided);
  }
}

TEST(TaskTracer, TailRetainsTopKSoFarPerWindow) {
  TaskTracerOptions options = QuietOptions();
  options.tail_k = 2;
  options.window_batches = 64;
  TaskTracer tracer(options);
  tracer.OnBatchBegin(0, 0.0);

  // Descending latencies: the first K seed the window top and every later
  // (faster) decision falls below it, so exactly K tail traces survive.
  int retained = 0;
  for (core::TaskId t = 0; t < 6; ++t) {
    const double e2e_ms = 100.0 - 10.0 * t;
    if (DecideTask(tracer, t, 0, e2e_ms) != 0) ++retained;
  }
  EXPECT_EQ(retained, 2);
  EXPECT_EQ(tracer.stats().tail_retained, 2);

  // Ascending latencies over-retain (each decision is a new top-K-so-far
  // entry) — the documented trade that keeps retention monotone.
  TaskTracer ascending(options);
  ascending.OnBatchBegin(0, 0.0);
  retained = 0;
  for (core::TaskId t = 0; t < 6; ++t) {
    if (DecideTask(ascending, t, 0, 10.0 + 10.0 * t) != 0) ++retained;
  }
  EXPECT_EQ(retained, 6);

  // A new window clears the top: a modest latency qualifies again.
  EXPECT_NE(DecideTask(tracer, 100, options.window_batches, 5.0), 0u);
  EXPECT_EQ(tracer.stats().tail_retained, 3);
}

TEST(TaskTracer, FlaggedBatchRangeRetainsSpanningTraces) {
  TaskTracer tracer(QuietOptions());
  tracer.OnBatchBegin(0, 0.0);

  // Task 1 spans batches [0, 2]; task 2 lives entirely in batch 4.
  tracer.OnSubmit(1, 0.0);
  tracer.OnAdmit(1, 0);
  tracer.OnSubmit(2, 0.0);

  tracer.FlagBatch(1);
  EXPECT_EQ(tracer.stats().flagged_batches, 1);
  tracer.FlagBatch(1);  // idempotent
  EXPECT_EQ(tracer.stats().flagged_batches, 1);

  const uint64_t spanning = tracer.OnDecision(1, 2, 0.010, true);
  EXPECT_EQ(spanning, TaskTraceId(1));
  tracer.OnAdmit(2, 4);
  EXPECT_EQ(tracer.OnDecision(2, 4, 0.012, false), 0u)
      << "batch 4 was never flagged";

  const std::vector<TaskTraceRecord> retained = tracer.RetainedTraces();
  ASSERT_EQ(retained.size(), 1u);
  EXPECT_EQ(retained[0].task, 1);
  EXPECT_EQ(retained[0].retained_reason, "flagged");
  EXPECT_EQ(tracer.stats().flagged_retained, 1);
}

TEST(TaskTracer, FlagBatchSetsRingRecordRetroactively) {
  TaskTracer tracer(QuietOptions());
  tracer.OnBatchBegin(0, 0.0);
  tracer.OnBatchEnd(0, 0.005, /*decisions=*/0, /*open_tasks=*/1,
                    /*idle_workers=*/2, {});
  tracer.FlagBatch(0);  // after the record closed

  const std::vector<TraceBatchRecord> batches = tracer.BatchRecords();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_TRUE(batches[0].flagged);

  // And forward: a batch flagged before it begins starts flagged.
  tracer.FlagBatch(1);
  tracer.OnBatchBegin(1, 0.005);
  tracer.OnBatchEnd(1, 0.010, 0, 0, 0, {});
  EXPECT_TRUE(tracer.BatchRecords()[1].flagged);
}

TEST(TaskTracer, OnDecisionReturnsTraceIdOnlyWhenRetained) {
  TaskTracerOptions options = QuietOptions();
  options.head_sample_every = 2;
  TaskTracer tracer(options);
  tracer.OnBatchBegin(0, 0.0);

  EXPECT_EQ(DecideTask(tracer, 0, 0, 1.0), TaskTraceId(0));
  EXPECT_EQ(DecideTask(tracer, 1, 0, 1.0), 0u);
  // Unknown task (never submitted): no decision, no retention.
  EXPECT_EQ(tracer.OnDecision(99, 0, 0.001, true), 0u);
  // Double decision: the pending record is gone after the first.
  EXPECT_EQ(tracer.OnDecision(0, 0, 0.002, true), 0u);
  EXPECT_EQ(tracer.stats().traces_decided, 2);
}

TEST(TaskTracer, MaxTracesCapStopsRetentionNotCounting) {
  TaskTracerOptions options = QuietOptions();
  options.head_sample_every = 1;  // would retain everything
  options.max_traces = 2;
  TaskTracer tracer(options);
  tracer.OnBatchBegin(0, 0.0);
  for (core::TaskId t = 0; t < 5; ++t) DecideTask(tracer, t, 0, 1.0);

  EXPECT_EQ(tracer.RetainedTraces().size(), 2u);
  EXPECT_EQ(tracer.stats().traces_retained, 2);
  EXPECT_EQ(tracer.stats().traces_decided, 5);
}

TEST(TaskTracer, LookupResolvesEveryRetainedId) {
  TaskTracerOptions options = QuietOptions();
  options.head_sample_every = 1;
  TaskTracer tracer(options);
  tracer.OnBatchBegin(0, 0.0);
  tracer.OnSubmit(7, 0.5);
  tracer.OnAdmit(7, 0);
  tracer.OnCamp(7, 0);
  const uint64_t id = tracer.OnDecision(7, 3, 1.5, true);
  ASSERT_EQ(id, TaskTraceId(7));

  TaskTraceRecord rec;
  ASSERT_TRUE(tracer.Lookup(id, &rec));
  EXPECT_EQ(rec.task, 7);
  EXPECT_EQ(rec.first_admit_batch, 0);
  EXPECT_EQ(rec.camp_batch, 0);
  EXPECT_EQ(rec.decide_batch, 3);
  EXPECT_TRUE(rec.served);
  EXPECT_DOUBLE_EQ(rec.e2e_ms(), 1000.0);

  EXPECT_FALSE(tracer.Lookup(TaskTraceId(8), nullptr));
  EXPECT_FALSE(tracer.Lookup(0, nullptr));
}

TEST(TaskTracer, BatchRingEvictsOldestAndCountsDrops) {
  TaskTracerOptions options = QuietOptions();
  options.max_batches = 2;
  TaskTracer tracer(options);
  for (int64_t seq = 0; seq < 5; ++seq) {
    tracer.OnBatchBegin(seq, 0.01 * seq);
    tracer.OnBatchEnd(seq, 0.01 * seq + 0.005, seq, 0, 0, {});
  }

  const std::vector<TraceBatchRecord> batches = tracer.BatchRecords();
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].seq, 3);
  EXPECT_EQ(batches[1].seq, 4);
  EXPECT_EQ(batches[1].decisions, 4);
  const TaskTracerStats stats = tracer.stats();
  EXPECT_EQ(stats.batches, 5);
  EXPECT_EQ(stats.dropped_batches, 3);
}

TEST(TaskTracer, BatchEndResolvesPhaseLabelsAndDropsEmpties) {
  util::FlightRecorder& recorder = util::FlightRecorder::Global();
  const uint32_t label = recorder.InternLabel("task_trace_test_phase");
  TaskTracer tracer(QuietOptions());
  tracer.OnBatchBegin(0, 0.0);
  tracer.OnBatchEnd(0, 0.010, 1, 2, 3,
                    {{label, 2'000'000}, {label + 1000, 1'000'000}, {label, 0}});

  const std::vector<TraceBatchRecord> batches = tracer.BatchRecords();
  ASSERT_EQ(batches.size(), 1u);
  // The unknown interned id and the zero-time entry are dropped.
  ASSERT_EQ(batches[0].phases.size(), 1u);
  EXPECT_EQ(batches[0].phases[0].label, "task_trace_test_phase");
  EXPECT_DOUBLE_EQ(batches[0].phases[0].ms, 2.0);
  EXPECT_EQ(batches[0].decisions, 1);
  EXPECT_EQ(batches[0].open_tasks, 2);
  EXPECT_EQ(batches[0].idle_workers, 3);
}

}  // namespace
}  // namespace dasc::sim
