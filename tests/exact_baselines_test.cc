// Tests for the exact DFS solver and the Closest/Random baselines.
#include <gtest/gtest.h>

#include "algo/baselines.h"
#include "algo/exact.h"
#include "algo/greedy.h"
#include "core/assignment.h"
#include "test_util.h"

namespace dasc::algo {
namespace {

using core::BatchProblem;
using core::Instance;
using testing::Example1;
using testing::MakeTask;
using testing::MakeWorker;

// ----------------------------------------------------------------- Exact ---

TEST(ExactTest, SolvesPaperExampleOptimally) {
  const Instance instance = Example1();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  ExactAllocator exact;
  const core::Assignment assignment = exact.Allocate(problem);
  EXPECT_TRUE(exact.last_run_complete());
  EXPECT_EQ(core::ValidScore(problem, assignment), 3);
  EXPECT_TRUE(core::ValidateAssignment(problem, assignment).ok());
}

TEST(ExactTest, EmptyProblem) {
  auto instance = core::Instance::Create({}, {}, 1);
  ASSERT_TRUE(instance.ok());
  ExactAllocator exact;
  EXPECT_TRUE(
      exact.Allocate(BatchProblem::AllAt(*instance, 0.0)).empty());
  EXPECT_TRUE(exact.last_run_complete());
}

TEST(ExactTest, PruningPreservesOptimum) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    testing::RandomInstanceParams params;
    params.num_workers = 4;
    params.num_tasks = 6;
    const Instance instance = testing::RandomInstance(seed, params);
    const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
    ExactOptions pruned;
    pruned.prune = true;
    ExactOptions plain;
    plain.prune = false;
    ExactAllocator a(pruned), b(plain);
    const int sa = core::ValidScore(problem, a.Allocate(problem));
    const int sb = core::ValidScore(problem, b.Allocate(problem));
    EXPECT_TRUE(a.last_run_complete());
    EXPECT_TRUE(b.last_run_complete());
    EXPECT_EQ(sa, sb) << "seed " << seed;
    EXPECT_LE(a.last_nodes(), b.last_nodes());
  }
}

TEST(ExactTest, DominatesGreedy) {
  for (uint64_t seed = 20; seed < 28; ++seed) {
    testing::RandomInstanceParams params;
    params.num_workers = 5;
    params.num_tasks = 6;
    const Instance instance = testing::RandomInstance(seed, params);
    const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
    ExactAllocator exact;
    GreedyAllocator greedy;
    EXPECT_GE(core::ValidScore(problem, exact.Allocate(problem)),
              core::ValidScore(problem, greedy.Allocate(problem)))
        << "seed " << seed;
  }
}

TEST(ExactTest, TimeLimitReturnsIncumbent) {
  testing::RandomInstanceParams params;
  params.num_workers = 10;
  params.num_tasks = 14;
  const Instance instance = testing::RandomInstance(3, params);
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  ExactOptions options;
  options.time_limit_seconds = 1e-5;  // practically immediate
  ExactAllocator exact(options);
  const core::Assignment assignment = exact.Allocate(problem);
  // Whatever came back must still be valid.
  EXPECT_TRUE(core::ValidateAssignment(problem, assignment).ok());
}

// -------------------------------------------------------------- Baselines ---

TEST(ClosestTest, PicksNearestFeasibleTask) {
  // Worker can reach both tasks; the nearer one must be chosen.
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0})},
      {MakeTask(0, 5, 0, 0), MakeTask(1, 1, 0, 0)}, 1);
  ASSERT_TRUE(instance.ok());
  const BatchProblem problem = BatchProblem::AllAt(*instance, 0.0);
  ClosestAllocator closest;
  const core::Assignment assignment = closest.Allocate(problem);
  ASSERT_EQ(assignment.size(), 1);
  EXPECT_EQ(assignment.pairs()[0].second, 1);
}

TEST(ClosestTest, IgnoresDependenciesAndLosesScore) {
  // The paper's Figure 1(b) narrative: Closest picks t2/t3 style pairs whose
  // dependencies are unmet; only 1 valid pair results on Example 1.
  const Instance instance = Example1();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  ClosestAllocator closest;
  const core::Assignment raw = closest.Allocate(problem);
  EXPECT_EQ(raw.size(), 3);  // every worker grabbed something
  EXPECT_EQ(core::ValidScore(problem, raw), 1);
}

TEST(ClosestTest, TasksNotDoubleBooked) {
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}), MakeWorker(1, 0.1, 0, {0})},
      {MakeTask(0, 0.05, 0, 0)}, 1);
  ASSERT_TRUE(instance.ok());
  const BatchProblem problem = BatchProblem::AllAt(*instance, 0.0);
  ClosestAllocator closest;
  EXPECT_EQ(closest.Allocate(problem).size(), 1);
}

TEST(RandomTest, OnlyFeasiblePairsEmitted) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const Instance instance = testing::RandomInstance(seed);
    const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
    RandomAllocator random(seed);
    const core::Assignment raw = random.Allocate(problem);
    for (const auto& [w, t] : raw.pairs()) {
      EXPECT_TRUE(core::CanServe(instance,
                                 problem.workers[static_cast<size_t>(w)], t,
                                 problem.now, problem.params));
    }
    // Dedup must hold even before ValidPairs.
    std::set<core::TaskId> tasks;
    std::set<core::WorkerId> workers;
    for (const auto& [w, t] : raw.pairs()) {
      EXPECT_TRUE(tasks.insert(t).second);
      EXPECT_TRUE(workers.insert(w).second);
    }
  }
}

TEST(RandomTest, DeterministicPerSeed) {
  const Instance instance = testing::RandomInstance(50);
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  RandomAllocator a(7), b(7), c(8);
  EXPECT_EQ(a.Allocate(problem).pairs(), b.Allocate(problem).pairs());
  // A different seed is very likely to differ on a 12-task instance.
  (void)c;
}

// Ordering property on random instances: DFS >= Game/Greedy >= baselines
// does not always hold pairwise for baselines (they can get lucky), but DFS
// must upper-bound everything.
class OrderingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OrderingPropertyTest, ExactUpperBoundsHeuristics) {
  testing::RandomInstanceParams params;
  params.num_workers = 5;
  params.num_tasks = 7;
  const Instance instance = testing::RandomInstance(GetParam(), params);
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  ExactAllocator exact;
  const int opt = core::ValidScore(problem, exact.Allocate(problem));
  GreedyAllocator greedy;
  ClosestAllocator closest;
  RandomAllocator random(GetParam());
  EXPECT_LE(core::ValidScore(problem, greedy.Allocate(problem)), opt);
  EXPECT_LE(core::ValidScore(problem, closest.Allocate(problem)), opt);
  EXPECT_LE(core::ValidScore(problem, random.Allocate(problem)), opt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingPropertyTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace dasc::algo
