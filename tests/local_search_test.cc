// Tests for the local-search post-optimizer.
#include <gtest/gtest.h>

#include "algo/baselines.h"
#include "algo/exact.h"
#include "algo/greedy.h"
#include "algo/local_search.h"
#include "core/assignment.h"
#include "test_util.h"

namespace dasc::algo {
namespace {

using core::BatchProblem;
using core::Instance;
using testing::Example1;
using testing::MakeTask;
using testing::MakeWorker;

TEST(LocalSearchTest, NeverDecreasesValidScore) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    const Instance instance = testing::RandomInstance(seed);
    const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
    ClosestAllocator closest;
    core::Assignment assignment = closest.Allocate(problem);
    const int before = core::ValidScore(problem, assignment);
    const LocalSearchStats stats =
        ImproveAssignment(problem, {}, &assignment);
    const int after = core::ValidScore(problem, assignment);
    EXPECT_GE(after, before) << seed;
    EXPECT_EQ(after - before, stats.score_gain) << seed;
  }
}

TEST(LocalSearchTest, RepairsBaselineOnPaperExample) {
  // Closest scores 1 on Example 1; relocation moves must recover some of the
  // dependency-closed value.
  const Instance instance = Example1();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  ClosestAllocator closest;
  core::Assignment assignment = closest.Allocate(problem);
  ASSERT_EQ(core::ValidScore(problem, assignment), 1);
  ImproveAssignment(problem, {}, &assignment);
  EXPECT_GE(core::ValidScore(problem, assignment), 2);
}

TEST(LocalSearchTest, FixedPointOnOptimalAssignment) {
  // A provably optimal assignment admits no improving relocation.
  const Instance instance = Example1();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  ExactAllocator exact;
  core::Assignment assignment = exact.Allocate(problem);
  const int optimal = core::ValidScore(problem, assignment);
  const LocalSearchStats stats = ImproveAssignment(problem, {}, &assignment);
  EXPECT_EQ(core::ValidScore(problem, assignment), optimal);
  EXPECT_EQ(stats.score_gain, 0);
}

TEST(LocalSearchTest, SwapReducesTravel) {
  // Crossed assignment: w0 at x=0 serving the far task, w1 at x=10 serving
  // the near one. A swap halves total travel without changing the score.
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}, 0, 1e6, 1.0, 1e6),
       MakeWorker(1, 10, 0, {0}, 0, 1e6, 1.0, 1e6)},
      {MakeTask(0, 1, 0, 0), MakeTask(1, 9, 0, 0)}, 1);
  ASSERT_TRUE(instance.ok());
  const BatchProblem problem = BatchProblem::AllAt(*instance, 0.0);
  core::Assignment crossed;
  crossed.Add(0, 1);  // w0 -> far task
  crossed.Add(1, 0);  // w1 -> far task
  const LocalSearchStats stats = ImproveAssignment(problem, {}, &crossed);
  EXPECT_EQ(stats.swaps, 1);
  EXPECT_GT(stats.travel_saved, 0.0);
  for (const auto& [w, t] : crossed.pairs()) {
    if (w == 0) {
      EXPECT_EQ(t, 0);
    }
    if (w == 1) {
      EXPECT_EQ(t, 1);
    }
  }
}

TEST(LocalSearchTest, OutputSatisfiesExclusivity) {
  for (uint64_t seed = 30; seed < 36; ++seed) {
    const Instance instance = testing::RandomInstance(seed);
    const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
    RandomAllocator random(seed);
    core::Assignment assignment = random.Allocate(problem);
    ImproveAssignment(problem, {}, &assignment);
    std::set<core::WorkerId> workers;
    std::set<core::TaskId> tasks;
    for (const auto& [w, t] : assignment.pairs()) {
      EXPECT_TRUE(workers.insert(w).second);
      EXPECT_TRUE(tasks.insert(t).second);
    }
  }
}

TEST(LocalSearchTest, AllocatorDecoratorNames) {
  LocalSearchAllocator ls(
      std::unique_ptr<core::Allocator>(new GreedyAllocator()));
  EXPECT_EQ(ls.name(), "Greedy+LS");
}

TEST(LocalSearchTest, DecoratorNeverWorseThanInner) {
  for (uint64_t seed = 80; seed < 86; ++seed) {
    const Instance instance = testing::RandomInstance(seed);
    const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
    GreedyAllocator plain;
    LocalSearchAllocator ls(
        std::unique_ptr<core::Allocator>(new GreedyAllocator()));
    EXPECT_GE(core::ValidScore(problem, ls.Allocate(problem)),
              core::ValidScore(problem, plain.Allocate(problem)))
        << seed;
  }
}

TEST(LocalSearchTest, DisabledPassesAreNoOps) {
  const Instance instance = Example1();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  ClosestAllocator closest;
  core::Assignment assignment = closest.Allocate(problem);
  const auto before = assignment.pairs();
  LocalSearchOptions off;
  off.max_relocate_passes = 0;
  off.max_swap_passes = 0;
  const LocalSearchStats stats = ImproveAssignment(problem, off, &assignment);
  EXPECT_EQ(stats.relocations, 0);
  EXPECT_EQ(stats.swaps, 0);
  EXPECT_EQ(assignment.pairs(), before);
}

}  // namespace
}  // namespace dasc::algo
