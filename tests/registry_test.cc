// Tests for the allocator registry.
#include <gtest/gtest.h>

#include "algo/registry.h"
#include "core/assignment.h"
#include "test_util.h"

namespace dasc::algo {
namespace {

TEST(RegistryTest, CreatesAllKnownNames) {
  for (const std::string& name : KnownAllocatorNames()) {
    auto allocator = CreateAllocator(name);
    ASSERT_TRUE(allocator.ok()) << name;
    EXPECT_NE(*allocator, nullptr);
  }
}

TEST(RegistryTest, DisplayNamesAreStable) {
  EXPECT_EQ(CreateAllocator("greedy").value()->name(), "Greedy");
  EXPECT_EQ(CreateAllocator("game").value()->name(), "Game");
  EXPECT_EQ(CreateAllocator("game5").value()->name(), "Game-5%");
  EXPECT_EQ(CreateAllocator("gg").value()->name(), "G-G");
  EXPECT_EQ(CreateAllocator("closest").value()->name(), "Closest");
  EXPECT_EQ(CreateAllocator("random").value()->name(), "Random");
  EXPECT_EQ(CreateAllocator("dfs").value()->name(), "DFS");
}

TEST(RegistryTest, UnknownNameFails) {
  auto allocator = CreateAllocator("nope");
  EXPECT_FALSE(allocator.ok());
  EXPECT_EQ(allocator.status().code(), util::StatusCode::kNotFound);
}

TEST(RegistryTest, ParsesCommaSeparatedList) {
  auto allocators = CreateAllocators("greedy,game5,closest");
  ASSERT_TRUE(allocators.ok());
  ASSERT_EQ(allocators->size(), 3u);
  EXPECT_EQ((*allocators)[0]->name(), "Greedy");
  EXPECT_EQ((*allocators)[1]->name(), "Game-5%");
  EXPECT_EQ((*allocators)[2]->name(), "Closest");
}

TEST(RegistryTest, ListWithUnknownEntryFails) {
  EXPECT_FALSE(CreateAllocators("greedy,bogus").ok());
}

TEST(RegistryTest, EmptyTokensIgnored) {
  auto allocators = CreateAllocators(",greedy,,random,");
  ASSERT_TRUE(allocators.ok());
  EXPECT_EQ(allocators->size(), 2u);
}

TEST(RegistryTest, EveryAllocatorRunsOnExample1) {
  const core::Instance instance = testing::Example1();
  const core::BatchProblem problem =
      core::BatchProblem::AllAt(instance, 0.0);
  for (const std::string& name : KnownAllocatorNames()) {
    auto allocator = CreateAllocator(name, /*seed=*/3);
    ASSERT_TRUE(allocator.ok());
    const core::Assignment raw = (*allocator)->Allocate(problem);
    const core::Assignment valid = core::ValidPairs(problem, raw);
    EXPECT_TRUE(core::ValidateAssignment(problem, valid).ok()) << name;
    if (name != "closest" && name != "random") {
      EXPECT_EQ(valid.size(), 3) << name;  // all proposed methods hit OPT
    }
  }
}

}  // namespace
}  // namespace dasc::algo
