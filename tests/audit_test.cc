// Tests for the allocation auditor (sim/audit.h): the independent constraint
// re-check, the dependency-relaxed Hopcroft-Karp upper bound, and the
// simulator wiring.
#include "sim/audit.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "algo/game.h"
#include "algo/greedy.h"
#include "algo/registry.h"
#include "core/assignment.h"
#include "core/batch.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "util/metrics.h"

namespace dasc::sim {
namespace {

AuditOptions Soft() {
  AuditOptions options;
  options.fail_hard = false;
  return options;
}

// Example 1 has 3 workers, so no assignment can exceed 3 pairs; the exact
// dependency-aware optimum for the offline batch is 3 (Section II). The
// relaxed bound must land exactly there: >= the optimum by construction,
// <= 3 because the matching cannot use a worker twice.
TEST(RelaxedUpperBoundTest, Example1IsExactlyOptimal) {
  const core::Instance instance = testing::Example1();
  const core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
  EXPECT_EQ(RelaxedBatchUpperBound(problem), 3);
}

// Without in-batch dependency credit only dependency-free tasks (t1, t4) are
// credible, so the bound collapses to 2.
TEST(RelaxedUpperBoundTest, NoCreditKeepsOnlyDependencyFreeTasks) {
  const core::Instance instance = testing::Example1();
  core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
  problem.in_batch_dependency_credit = false;
  EXPECT_EQ(RelaxedBatchUpperBound(problem), 2);
}

// The skip threshold only ever suppresses tightening: the returned value can
// grow, never shrink, and a threshold below the probed bound is a no-op.
TEST(RelaxedUpperBoundTest, SkipThresholdNeverLowersTheBound) {
  const core::Instance instance = testing::RandomInstance(3);
  const core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
  const int probed = RelaxedBatchUpperBound(problem, {}, -1);
  EXPECT_GE(RelaxedBatchUpperBound(problem, {}, 1 << 20), probed);
  EXPECT_EQ(RelaxedBatchUpperBound(problem, {}, probed - 1), probed);
}

// Disabling the closure probes can only loosen the bound.
TEST(RelaxedUpperBoundTest, ClosureFilterOnlyTightens) {
  AuditOptions no_probes;
  no_probes.closure_feasibility_filter = false;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const core::Instance instance = testing::RandomInstance(seed);
    const core::BatchProblem problem =
        core::BatchProblem::AllAt(instance, 0.0);
    EXPECT_LE(RelaxedBatchUpperBound(problem, {}, -1),
              RelaxedBatchUpperBound(problem, no_probes, -1))
        << "seed " << seed;
  }
}

// The bound's whole point: no allocator, on any instance, may score above
// it. Every registered allocator (the exact DFS included) is checked on a
// batch of small random instances, and the valid pairs each commits must
// re-validate cleanly.
TEST(RelaxedUpperBoundTest, DominatesEveryRegisteredAllocator) {
  testing::RandomInstanceParams params;
  params.num_workers = 5;
  params.num_tasks = 8;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    const core::Instance instance = testing::RandomInstance(seed, params);
    const core::BatchProblem problem =
        core::BatchProblem::AllAt(instance, 0.0);
    const int bound = RelaxedBatchUpperBound(problem, {}, -1);
    for (const std::string& name : algo::KnownAllocatorNames()) {
      auto allocator = algo::CreateAllocator(name, seed);
      ASSERT_TRUE(allocator.ok()) << name;
      const core::Assignment valid =
          core::ValidPairs(problem, (*allocator)->Allocate(problem));
      BatchAuditor auditor;  // fail_hard: a violation aborts the test
      const BatchAudit audit = auditor.AuditBatch(problem, valid, 0);
      EXPECT_EQ(audit.violations, 0) << name << " seed " << seed;
      EXPECT_EQ(audit.achieved, valid.size()) << name << " seed " << seed;
      EXPECT_LE(audit.achieved, bound) << name << " seed " << seed;
    }
  }
}

TEST(BatchAuditorTest, CleanAssignmentHasNoViolations) {
  const core::Instance instance = testing::Example1();
  const core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
  algo::GreedyAllocator greedy;
  const core::Assignment valid =
      core::ValidPairs(problem, greedy.Allocate(problem));
  ASSERT_GT(valid.size(), 0);
  BatchAuditor auditor;
  const BatchAudit audit = auditor.AuditBatch(problem, valid, 7);
  EXPECT_EQ(audit.batch_seq, 7);
  EXPECT_EQ(audit.violations, 0);
  EXPECT_TRUE(audit.first_violation.empty());
  EXPECT_EQ(audit.achieved, valid.size());
  EXPECT_GE(audit.upper_bound, audit.achieved);
  EXPECT_GT(audit.gap, 0.0);
  EXPECT_LE(audit.gap, 1.0);
  EXPECT_EQ(auditor.summary().audited_batches, 1);
  EXPECT_EQ(auditor.summary().violations, 0);
}

// w2 (id 1) only practices ψ4 but is paired with t1 (requires ψ1): the
// checker must flag the skill constraint even though the pair is
// dependency-clean.
TEST(BatchAuditorTest, DetectsSkillViolation) {
  const core::Instance instance = testing::Example1();
  const core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
  core::Assignment bad;
  bad.Add(1, 0);
  BatchAuditor auditor(Soft());
  const BatchAudit audit = auditor.AuditBatch(problem, bad, 0);
  EXPECT_EQ(audit.violations, 1);
  EXPECT_NE(audit.first_violation.find("skill"), std::string::npos)
      << audit.first_violation;
  EXPECT_EQ(audit.achieved, 0);
}

// w1 (id 0) practices both ψ1 and ψ2 and is assigned twice: the second pair
// breaks exclusivity.
TEST(BatchAuditorTest, DetectsExclusivityViolation) {
  const core::Instance instance = testing::Example1();
  const core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
  core::Assignment bad;
  bad.Add(0, 0);
  bad.Add(0, 1);
  BatchAuditor auditor(Soft());
  const BatchAudit audit = auditor.AuditBatch(problem, bad, 0);
  EXPECT_EQ(audit.violations, 1);
  EXPECT_NE(audit.first_violation.find("exclusivity"), std::string::npos)
      << audit.first_violation;
  EXPECT_EQ(audit.achieved, 1);  // the first pair is valid
}

// t3 (id 2) transitively depends on t1 and t2; assigning it alone violates
// the dependency constraint.
TEST(BatchAuditorTest, DetectsDependencyViolation) {
  const core::Instance instance = testing::Example1();
  const core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
  core::Assignment bad;
  bad.Add(2, 2);
  BatchAuditor auditor(Soft());
  const BatchAudit audit = auditor.AuditBatch(problem, bad, 0);
  EXPECT_EQ(audit.violations, 1);
  EXPECT_NE(audit.first_violation.find("dependency"), std::string::npos)
      << audit.first_violation;
}

TEST(BatchAuditorTest, DetectsOutOfScopePair) {
  const core::Instance instance = testing::Example1();
  const core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
  core::Assignment bad;
  bad.Add(99, 0);
  BatchAuditor auditor(Soft());
  const BatchAudit audit = auditor.AuditBatch(problem, bad, 0);
  EXPECT_EQ(audit.violations, 1);
  EXPECT_NE(audit.first_violation.find("not in batch"), std::string::npos)
      << audit.first_violation;
}

// End-to-end through the simulator: a gg run over a random dynamic workload
// must audit cleanly, and the measured per-batch gap must sit at or above
// the paper's 1/2 guarantee for DASC_Game.
TEST(SimulatorAuditTest, GameGreedyMeetsTheHalfBound) {
  const core::Instance instance = testing::RandomInstance(11);
  SimulatorOptions options;
  options.batch_interval = 1.0;
  options.audit = true;
  Simulator simulator(instance, options);
  algo::GameOptions game_options;
  game_options.greedy_init = true;
  algo::GameAllocator gg(game_options);
  const SimulationResult result = simulator.Run(gg);
  EXPECT_EQ(result.audit.violations, 0);
  ASSERT_GT(result.audit.audited_batches, 0);
  EXPECT_GE(result.audit.min_gap, 0.5);
  EXPECT_GE(result.audit.ApproxRatio(), 0.5);
  EXPECT_LE(result.audit.ApproxRatio(), 1.0);
  EXPECT_GE(result.audit.MeanGap(), result.audit.min_gap);
}

// MeasureSimulation must surface the audit block in RunStats (the fields the
// /2 run-report schema and dasc_report's gate consume).
TEST(SimulatorAuditTest, MeasureSimulationExportsAuditFields) {
  const core::Instance instance = testing::RandomInstance(11);
  SimulatorOptions options;
  options.batch_interval = 1.0;
  options.audit = true;
  algo::GreedyAllocator greedy;
  const RunStats stats = MeasureSimulation(instance, options, greedy);
  EXPECT_GT(stats.audited_batches, 0);
  EXPECT_EQ(stats.audit_violations, 0);
  EXPECT_GT(stats.approx_ratio, 0.0);
  EXPECT_LE(stats.approx_ratio, 1.0);
  EXPECT_GT(stats.min_batch_gap, 0.0);
  EXPECT_GE(stats.mean_batch_gap, stats.min_batch_gap);
}

TEST(SimulatorAuditTest, AuditOffLeavesStatsZero) {
  const core::Instance instance = testing::RandomInstance(11);
  SimulatorOptions options;
  options.batch_interval = 1.0;
  algo::GreedyAllocator greedy;
  const RunStats stats = MeasureSimulation(instance, options, greedy);
  EXPECT_EQ(stats.audited_batches, 0);
  EXPECT_EQ(stats.approx_ratio, 0.0);
  EXPECT_EQ(stats.min_batch_gap, 0.0);
}

#if DASC_METRICS_ENABLED
TEST(SimulatorAuditTest, AuditCountersMatchSummary) {
  util::GlobalMetrics().Reset();
  util::SetMetricsEnabled(true);
  const core::Instance instance = testing::RandomInstance(5);
  SimulatorOptions options;
  options.batch_interval = 1.0;
  options.audit = true;
  Simulator simulator(instance, options);
  algo::GreedyAllocator greedy;
  const SimulationResult result = simulator.Run(greedy);
  auto counter = [](const char* name) {
    return util::GlobalMetrics().GetCounter(name)->value();
  };
  EXPECT_EQ(counter("audit_achieved_total"), result.audit.achieved_total);
  EXPECT_EQ(counter("audit_upper_bound_total"),
            result.audit.upper_bound_total);
  EXPECT_EQ(counter("audit_violations_total"), 0);
  EXPECT_EQ(util::GlobalMetrics().GetHistogram("audit_batch_gap")->count(),
            result.audit.audited_batches);
}
#endif  // DASC_METRICS_ENABLED

}  // namespace
}  // namespace dasc::sim
