// Parallel execution layer: determinism of BuildCandidates and full
// simulations across thread counts, the BatchProblem candidate cache, and
// ThreadPool / ParallelFor behavior. Also the target of the TSan-enabled
// ctest entry (parallel_test_tsan), so every assertion here doubles as a
// race detector for the pool and merge paths.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "algo/game.h"
#include "algo/greedy.h"
#include "algo/registry.h"
#include "core/batch.h"
#include "gen/synthetic.h"
#include "sim/simulator.h"
#include "util/thread_pool.h"

namespace dasc {
namespace {

// Restores the global thread setting on scope exit so tests do not leak
// their overrides into each other.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) { util::SetThreads(n); }
  ~ScopedThreads() { util::SetThreads(0); }
};

// spread_start = true staggers arrivals over time (for full-simulation
// tests); false puts everything on the platform at t = 0 so the offline
// AllAt(instance, 0) batch has feasible pairs.
core::Instance MakeInstance(uint64_t seed, int workers = 300, int tasks = 300,
                            bool spread_start = false) {
  gen::SyntheticParams params;
  params.seed = seed;
  params.num_workers = workers;
  params.num_tasks = tasks;
  params.num_skills = 40;
  params.dependency_size = {0, 6};
  params.worker_skills = {1, 4};
  params.start_time = spread_start ? gen::Range{0.0, 30.0}
                                   : gen::Range{0.0, 0.0};
  params.wait_time = {10.0, 15.0};
  auto instance = gen::GenerateSynthetic(params);
  DASC_CHECK(instance.ok());
  return std::move(*instance);
}

bool SameCandidates(const core::CandidateSets& a,
                    const core::CandidateSets& b) {
  return a.worker_tasks == b.worker_tasks && a.task_workers == b.task_workers &&
         a.num_pairs == b.num_pairs;
}

TEST(ThreadPoolTest, RunsEverySubmittedJob) {
  util::ThreadPool pool(4);
  std::atomic<int> count{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] {
      count.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < 100) std::this_thread::yield();
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelForTest, CoversRangeExactlyOnceAnyThreadCount) {
  for (int threads : {1, 2, 3, 8}) {
    ScopedThreads scoped(threads);
    constexpr int64_t kN = 10007;
    std::vector<std::atomic<int>> touched(kN);
    util::ParallelFor(0, kN, 64, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) touched[static_cast<size_t>(i)]++;
    });
    for (int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(touched[static_cast<size_t>(i)].load(), 1)
          << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, EmptyAndTinyRanges) {
  ScopedThreads scoped(4);
  int calls = 0;
  util::ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int64_t> sum{0};
  util::ParallelFor(3, 4, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelForTest, NestedOnPoolThreadsCompletes) {
  ScopedThreads scoped(4);
  std::atomic<int64_t> total{0};
  // Outer cells run on the pool; each runs an inner ParallelFor on the same
  // pool. The caller-participates design must finish without deadlock.
  util::ParallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t c = lo; c < hi; ++c) {
      util::ParallelFor(0, 1000, 10, [&](int64_t ilo, int64_t ihi) {
        total.fetch_add(ihi - ilo);
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 1000);
}

TEST(ThreadsConfigTest, ZeroMeansHardwareConcurrency) {
  util::SetThreads(0);
  EXPECT_EQ(util::Threads(), util::HardwareThreads());
  util::SetThreads(3);
  EXPECT_EQ(util::Threads(), 3);
  util::SetThreads(0);
}

// --- Determinism: BuildCandidates across thread counts and both paths. ---

// Broadly-skilled, spatially-confined workers: the probe-count model picks
// the grid (spatial selectivity ~4% of the area beats skill selectivity
// ~75% of the open tasks).
core::Instance GridFavoringInstance() {
  gen::SyntheticParams params;
  params.seed = 29;
  params.num_workers = 300;
  params.num_tasks = 300;
  params.num_skills = 4;
  params.worker_skills = {2, 4};
  params.max_distance = {0.05, 0.06};
  params.dependency_size = {0, 6};
  params.start_time = {0.0, 0.0};
  params.wait_time = {10.0, 15.0};
  auto instance = gen::GenerateSynthetic(params);
  DASC_CHECK(instance.ok());
  return std::move(*instance);
}

void CheckBuildDeterminism(const core::Instance& instance) {
  const core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
  util::SetThreads(1);
  const core::CandidateSets serial = core::BuildCandidates(problem);
  EXPECT_GT(serial.num_pairs, 0);
  for (int threads : {2, 8}) {
    ScopedThreads scoped(threads);
    const core::CandidateSets parallel = core::BuildCandidates(problem);
    EXPECT_TRUE(SameCandidates(serial, parallel)) << "threads " << threads;
  }
  // Either path must equal a plain CanServe scan in content and order
  // (open_tasks order — the pre-parallelism serial output).
  for (size_t i = 0; i < problem.workers.size(); ++i) {
    std::vector<core::TaskId> expected;
    for (core::TaskId t : problem.open_tasks) {
      if (core::CanServe(instance, problem.workers[i], t, problem.now,
                         problem.params)) {
        expected.push_back(t);
      }
    }
    EXPECT_EQ(serial.worker_tasks[i], expected) << "worker " << i;
  }
}

TEST(ParallelDeterminismTest, GridPathIdenticalAcrossThreadCounts) {
  CheckBuildDeterminism(GridFavoringInstance());
}

TEST(ParallelDeterminismTest, SkillPathIdenticalAcrossThreadCounts) {
  // Table V-like selectivity (few skills per worker out of many, broad
  // reach): the probe-count model picks the skill inverted index.
  CheckBuildDeterminism(MakeInstance(7));
}

TEST(ParallelDeterminismTest, SmallBatchIdenticalAcrossThreadCounts) {
  CheckBuildDeterminism(MakeInstance(11, 60, 20));
}

// --- Candidate cache. ---

TEST(CandidateCacheTest, CachedEqualsFreshBuildAndIsMemoized) {
  const core::Instance instance = MakeInstance(13);
  const core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
  const core::CandidateSets fresh = core::BuildCandidates(problem);
  const core::CandidateSets& cached = problem.Candidates();
  EXPECT_TRUE(SameCandidates(fresh, cached));
  // Memoized: same object on every call.
  EXPECT_EQ(&cached, &problem.Candidates());
}

TEST(CandidateCacheTest, InvalidateRebuilds) {
  const core::Instance instance = MakeInstance(17);
  core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
  const int64_t before = problem.Candidates().num_pairs;
  problem.open_tasks.resize(problem.open_tasks.size() / 2);
  problem.InvalidateCandidates();
  const int64_t after = problem.Candidates().num_pairs;
  EXPECT_LT(after, before);
}

TEST(CandidateCacheTest, GameAndGreedyShareOneBuild) {
  // G-G routed through the cache: a greedy run followed by a game run on the
  // same problem must reuse the same CandidateSets object.
  const core::Instance instance = MakeInstance(19);
  core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
  algo::GreedyAllocator greedy;
  (void)greedy.Allocate(problem);
  const core::CandidateSets* built = problem.candidates_cache.get();
  ASSERT_NE(built, nullptr);
  algo::GameOptions options;
  options.greedy_init = true;
  algo::GameAllocator gg(options);
  (void)gg.Allocate(problem);
  EXPECT_EQ(problem.candidates_cache.get(), built);
}

// --- Determinism: full simulations across thread counts. ---

TEST(ParallelDeterminismTest, FullSimulationIdenticalAcrossThreadCounts) {
  const core::Instance instance =
      MakeInstance(23, 300, 300, /*spread_start=*/true);
  sim::SimulatorOptions options;
  options.batch_interval = 5.0;
  options.paranoid_checks = true;
  for (const char* name : {"greedy", "gg", "game5"}) {
    util::SetThreads(1);
    std::vector<int> serial_scores;
    int serial_score = 0;
    {
      auto allocator = algo::CreateAllocator(name, 42);
      ASSERT_TRUE(allocator.ok());
      sim::Simulator simulator(instance, options);
      const sim::SimulationResult result = simulator.Run(**allocator);
      serial_scores = result.per_batch_scores;
      serial_score = result.score;
    }
    for (int threads : {2, 8}) {
      ScopedThreads scoped(threads);
      auto allocator = algo::CreateAllocator(name, 42);
      ASSERT_TRUE(allocator.ok());
      sim::Simulator simulator(instance, options);
      const sim::SimulationResult result = simulator.Run(**allocator);
      EXPECT_EQ(result.score, serial_score)
          << name << " threads " << threads;
      EXPECT_EQ(result.per_batch_scores, serial_scores)
          << name << " threads " << threads;
    }
  }
}

}  // namespace
}  // namespace dasc
