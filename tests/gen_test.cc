// Tests for the synthetic and Meetup-like workload generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/meetup.h"
#include "gen/synthetic.h"

namespace dasc::gen {
namespace {

SyntheticParams SmallSynthetic(uint64_t seed = 42) {
  SyntheticParams params;
  params.seed = seed;
  params.num_workers = 60;
  params.num_tasks = 80;
  params.num_skills = 12;
  params.dependency_size = {0, 6};
  params.worker_skills = {1, 4};
  return params;
}

MeetupParams SmallMeetup(uint64_t seed = 42) {
  MeetupParams params;
  params.seed = seed;
  params.num_workers = 120;
  params.num_tasks = 60;
  params.num_groups = 8;
  params.num_skills = 40;
  return params;
}

// --------------------------------------------------------------- Synthetic ---

TEST(SyntheticTest, ProducesRequestedCounts) {
  auto instance = GenerateSynthetic(SmallSynthetic());
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  EXPECT_EQ(instance->num_workers(), 60);
  EXPECT_EQ(instance->num_tasks(), 80);
  EXPECT_EQ(instance->num_skills(), 12);
}

TEST(SyntheticTest, Deterministic) {
  auto a = GenerateSynthetic(SmallSynthetic(7));
  auto b = GenerateSynthetic(SmallSynthetic(7));
  ASSERT_TRUE(a.ok() && b.ok());
  for (int i = 0; i < a->num_workers(); ++i) {
    EXPECT_EQ(a->worker(i).location, b->worker(i).location);
    EXPECT_EQ(a->worker(i).skills, b->worker(i).skills);
  }
  for (int t = 0; t < a->num_tasks(); ++t) {
    EXPECT_EQ(a->task(t).dependencies, b->task(t).dependencies);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  auto a = GenerateSynthetic(SmallSynthetic(1));
  auto b = GenerateSynthetic(SmallSynthetic(2));
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_diff = false;
  for (int i = 0; i < a->num_workers() && !any_diff; ++i) {
    any_diff = !(a->worker(i).location == b->worker(i).location);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, ValuesWithinConfiguredRanges) {
  const SyntheticParams params = SmallSynthetic();
  auto instance = GenerateSynthetic(params);
  ASSERT_TRUE(instance.ok());
  for (const auto& w : instance->workers()) {
    EXPECT_GE(w.location.x, 0.0);
    EXPECT_LE(w.location.x, params.area_side);
    EXPECT_GE(w.start_time, params.start_time.lo);
    EXPECT_LE(w.start_time, params.start_time.hi);
    EXPECT_GE(w.velocity, params.velocity.lo);
    EXPECT_LE(w.velocity, params.velocity.hi);
    EXPECT_GE(w.max_distance, params.max_distance.lo);
    EXPECT_LE(w.max_distance, params.max_distance.hi);
    EXPECT_GE(static_cast<int>(w.skills.size()), 1);
    EXPECT_LE(static_cast<int>(w.skills.size()), params.worker_skills.hi);
  }
  for (const auto& t : instance->tasks()) {
    EXPECT_GE(t.required_skill, 0);
    EXPECT_LT(t.required_skill, params.num_skills);
    EXPECT_GE(t.wait_time, params.wait_time.lo);
    EXPECT_LE(t.wait_time, params.wait_time.hi);
  }
}

TEST(SyntheticTest, DependenciesPointBackwardsAndAreClosed) {
  auto instance = GenerateSynthetic(SmallSynthetic(3));
  ASSERT_TRUE(instance.ok());
  for (const auto& t : instance->tasks()) {
    for (core::TaskId d : t.dependencies) {
      EXPECT_LT(d, t.id);  // generation order guarantees acyclicity
    }
    // The generator stores transitively closed sets: the stored direct list
    // equals the instance's computed closure.
    EXPECT_EQ(t.dependencies, instance->DepClosure(t.id));
  }
}

TEST(SyntheticTest, DependencySizeRangeRoughlyRespected) {
  SyntheticParams params = SmallSynthetic(4);
  params.num_tasks = 400;
  params.dependency_size = {0, 10};
  auto instance = GenerateSynthetic(params);
  ASSERT_TRUE(instance.ok());
  int64_t total = 0;
  for (const auto& t : instance->tasks()) {
    total += static_cast<int64_t>(instance->DepClosure(t.id).size());
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(params.num_tasks);
  // Target mean is ~5; union overshoot can push it somewhat higher.
  EXPECT_GT(mean, 2.0);
  EXPECT_LT(mean, 14.0);
}

TEST(SyntheticTest, ZeroDependencyRangeMeansNoDeps) {
  SyntheticParams params = SmallSynthetic(5);
  params.dependency_size = {0, 0};
  auto instance = GenerateSynthetic(params);
  ASSERT_TRUE(instance.ok());
  for (const auto& t : instance->tasks()) {
    EXPECT_TRUE(t.dependencies.empty());
  }
}

TEST(SyntheticTest, RejectsBadParams) {
  SyntheticParams params = SmallSynthetic();
  params.num_skills = 0;
  EXPECT_FALSE(GenerateSynthetic(params).ok());
  params = SmallSynthetic();
  params.worker_skills = {0, 3};
  EXPECT_FALSE(GenerateSynthetic(params).ok());
  params = SmallSynthetic();
  params.num_workers = -1;
  EXPECT_FALSE(GenerateSynthetic(params).ok());
}

TEST(SyntheticTest, EmptyWorkloadAllowed) {
  SyntheticParams params = SmallSynthetic();
  params.num_workers = 0;
  params.num_tasks = 0;
  auto instance = GenerateSynthetic(params);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->num_workers(), 0);
}

// ----------------------------------------------------------------- Meetup ---

TEST(MeetupTest, ProducesRequestedCounts) {
  auto instance = GenerateMeetup(SmallMeetup());
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  EXPECT_EQ(instance->num_workers(), 120);
  EXPECT_EQ(instance->num_tasks(), 60);
}

TEST(MeetupTest, Deterministic) {
  auto a = GenerateMeetup(SmallMeetup(9));
  auto b = GenerateMeetup(SmallMeetup(9));
  ASSERT_TRUE(a.ok() && b.ok());
  for (int t = 0; t < a->num_tasks(); ++t) {
    EXPECT_EQ(a->task(t).location, b->task(t).location);
    EXPECT_EQ(a->task(t).dependencies, b->task(t).dependencies);
  }
}

TEST(MeetupTest, LocationsInsideHongKongBox) {
  const MeetupParams params = SmallMeetup();
  auto instance = GenerateMeetup(params);
  ASSERT_TRUE(instance.ok());
  for (const auto& w : instance->workers()) {
    EXPECT_GE(w.location.x, params.lon_min);
    EXPECT_LE(w.location.x, params.lon_max);
    EXPECT_GE(w.location.y, params.lat_min);
    EXPECT_LE(w.location.y, params.lat_max);
  }
  for (const auto& t : instance->tasks()) {
    EXPECT_GE(t.location.x, params.lon_min);
    EXPECT_LE(t.location.x, params.lon_max);
  }
}

TEST(MeetupTest, TagPopularityIsSkewed) {
  MeetupParams params = SmallMeetup(11);
  params.num_workers = 800;
  auto instance = GenerateMeetup(params);
  ASSERT_TRUE(instance.ok());
  std::vector<int> frequency(static_cast<size_t>(params.num_skills), 0);
  for (const auto& w : instance->workers()) {
    for (core::SkillId s : w.skills) ++frequency[static_cast<size_t>(s)];
  }
  std::sort(frequency.rbegin(), frequency.rend());
  // Zipf: the top decile of tags should dominate the bottom half.
  int top = 0, bottom = 0;
  for (size_t i = 0; i < frequency.size() / 10; ++i) top += frequency[i];
  for (size_t i = frequency.size() / 2; i < frequency.size(); ++i) {
    bottom += frequency[i];
  }
  EXPECT_GT(top, bottom);
}

TEST(MeetupTest, DependenciesStayWithinTaskGroupAndAreClosed) {
  auto instance = GenerateMeetup(SmallMeetup(13));
  ASSERT_TRUE(instance.ok());
  int with_deps = 0;
  for (const auto& t : instance->tasks()) {
    for (core::TaskId d : t.dependencies) EXPECT_LT(d, t.id);
    EXPECT_EQ(t.dependencies, instance->DepClosure(t.id));
    if (!t.dependencies.empty()) ++with_deps;
  }
  EXPECT_GT(with_deps, 0);
}

TEST(MeetupTest, WorkersSometimesShareSkillWithTasks) {
  // The whole point of group-structured skills: a decent fraction of tasks
  // must have at least one skill-compatible worker.
  auto instance = GenerateMeetup(SmallMeetup(17));
  ASSERT_TRUE(instance.ok());
  int coverable = 0;
  for (const auto& t : instance->tasks()) {
    for (const auto& w : instance->workers()) {
      if (w.HasSkill(t.required_skill)) {
        ++coverable;
        break;
      }
    }
  }
  EXPECT_GT(coverable, instance->num_tasks() / 2);
}

TEST(MeetupTest, RejectsBadParams) {
  MeetupParams params = SmallMeetup();
  params.num_groups = 0;
  EXPECT_FALSE(GenerateMeetup(params).ok());
  params = SmallMeetup();
  params.group_tags = {0, 5};
  EXPECT_FALSE(GenerateMeetup(params).ok());
  params = SmallMeetup();
  params.num_skills = 0;
  EXPECT_FALSE(GenerateMeetup(params).ok());
}

}  // namespace
}  // namespace dasc::gen
