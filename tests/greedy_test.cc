// Tests for DASC_Greedy (Algorithm 1).
#include <gtest/gtest.h>

#include <cmath>

#include "algo/exact.h"
#include "algo/greedy.h"
#include "core/assignment.h"
#include "test_util.h"

namespace dasc::algo {
namespace {

using core::BatchProblem;
using core::Instance;
using testing::Example1;
using testing::MakeTask;
using testing::MakeWorker;

int RunGreedyScore(const Instance& instance, GreedyOptions options = {}) {
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  GreedyAllocator greedy(options);
  const core::Assignment assignment = greedy.Allocate(problem);
  // Greedy output must already be dependency-closed and fully constraint-
  // valid: commit logic only ever assigns whole associative sets.
  EXPECT_TRUE(core::ValidateAssignment(problem, assignment).ok());
  EXPECT_EQ(core::ValidScore(problem, assignment), assignment.size());
  return assignment.size();
}

TEST(GreedyTest, SolvesPaperExample) {
  EXPECT_EQ(RunGreedyScore(Example1()), 3);
}

TEST(GreedyTest, HopcroftKarpBackendSolvesPaperExample) {
  GreedyOptions options;
  options.backend = GreedyOptions::MatchingBackend::kHopcroftKarp;
  EXPECT_EQ(RunGreedyScore(Example1(), options), 3);
}

TEST(GreedyTest, AuctionBackendSolvesPaperExample) {
  GreedyOptions options;
  options.backend = GreedyOptions::MatchingBackend::kAuction;
  EXPECT_EQ(RunGreedyScore(Example1(), options), 3);
}

TEST(GreedyTest, AuctionBackendMatchesHungarianScores) {
  for (uint64_t seed = 70; seed < 76; ++seed) {
    const Instance instance = testing::RandomInstance(seed);
    const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
    GreedyOptions auction_options;
    auction_options.backend = GreedyOptions::MatchingBackend::kAuction;
    GreedyAllocator hungarian, auction(auction_options);
    // Same committed set sizes (cost ties may differ, validity must hold).
    const core::Assignment a = auction.Allocate(problem);
    EXPECT_TRUE(core::ValidateAssignment(problem, a).ok());
    EXPECT_EQ(a.size(), hungarian.Allocate(problem).size()) << seed;
  }
}

TEST(GreedyTest, EmptyProblem) {
  auto instance = core::Instance::Create({}, {}, 1);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(RunGreedyScore(*instance), 0);
}

TEST(GreedyTest, NoFeasibleWorkers) {
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {1})}, {MakeTask(0, 1, 1, 0)}, 2);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(RunGreedyScore(*instance), 0);
}

TEST(GreedyTest, SingleFeasiblePair) {
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0})}, {MakeTask(0, 1, 1, 0)}, 1);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(RunGreedyScore(*instance), 1);
}

TEST(GreedyTest, PrefersLargerAssociativeSet) {
  // Two independent chains; two workers each with the universal skill.
  // Chain A: a0 <- a1 (size-2 set); chain B: b0 alone. With 2 workers,
  // greedy must take the chain of size 2, not two singletons... both give 2;
  // make B require a skill nobody has except one worker already needed:
  // workers: u (skill 0) and v (skill 0). tasks: 0:skill0; 1:skill0 dep{0};
  // 2:skill0. Greedy picks set {0,1} (size 2) over singletons.
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}), MakeWorker(1, 0, 0, {0})},
      {MakeTask(0, 0, 0, 0), MakeTask(1, 0, 0, 0, {0}), MakeTask(2, 0, 0, 0)},
      1);
  ASSERT_TRUE(instance.ok());
  const BatchProblem problem = BatchProblem::AllAt(*instance, 0.0);
  GreedyAllocator greedy;
  const core::Assignment assignment = greedy.Allocate(problem);
  EXPECT_EQ(assignment.size(), 2);
  bool assigned_t1 = false;
  for (const auto& [w, t] : assignment.pairs()) assigned_t1 |= (t == 1);
  EXPECT_TRUE(assigned_t1) << "the size-2 associative set {t0,t1} must win";
}

TEST(GreedyTest, SkipsRootWithUnsatisfiableDependency) {
  // t1 depends on t0, but no worker has t0's skill: t1's associative set is
  // unservable; only independent t2 can be assigned.
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {1})},
      {MakeTask(0, 0, 0, 0), MakeTask(1, 0, 0, 1, {0}), MakeTask(2, 1, 1, 1)},
      2);
  ASSERT_TRUE(instance.ok());
  const BatchProblem problem = BatchProblem::AllAt(*instance, 0.0);
  GreedyAllocator greedy;
  const core::Assignment assignment = greedy.Allocate(problem);
  ASSERT_EQ(assignment.size(), 1);
  EXPECT_EQ(assignment.pairs()[0].second, 2);
}

TEST(GreedyTest, DependencyCreditFromEarlierBatch) {
  // Same instance as above, but t0 was assigned in a prior batch: now the
  // worker can serve t1 directly.
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {1})},
      {MakeTask(0, 0, 0, 0), MakeTask(1, 0, 0, 1, {0})}, 2);
  ASSERT_TRUE(instance.ok());
  BatchProblem problem = BatchProblem::AllAt(*instance, 0.0);
  problem.assigned_before[0] = 1;
  problem.open_tasks = {1};
  GreedyAllocator greedy;
  const core::Assignment assignment = greedy.Allocate(problem);
  ASSERT_EQ(assignment.size(), 1);
  EXPECT_EQ(assignment.pairs()[0].second, 1);
}

TEST(GreedyTest, HungarianTieBreaksTowardCheaperTravel) {
  // Two singleton tasks, two workers; both orderings are feasible, the
  // cheaper total-travel assignment should be chosen for the committed set.
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}, 0, 1e6, 1.0, 1e6),
       MakeWorker(1, 10, 0, {0}, 0, 1e6, 1.0, 1e6)},
      {MakeTask(0, 1, 0, 0), MakeTask(1, 9, 0, 0)}, 1);
  ASSERT_TRUE(instance.ok());
  const BatchProblem problem = BatchProblem::AllAt(*instance, 0.0);
  GreedyAllocator greedy;
  const core::Assignment assignment = greedy.Allocate(problem);
  ASSERT_EQ(assignment.size(), 2);
  for (const auto& [w, t] : assignment.pairs()) {
    if (w == 0) {
      EXPECT_EQ(t, 0);
    }
    if (w == 1) {
      EXPECT_EQ(t, 1);
    }
  }
}

TEST(GreedyTest, IterationsWithinLemmaBound) {
  // Lemma III.1: the commit loop runs at most min(n_b, m_b) times.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const Instance instance = testing::RandomInstance(seed + 300);
    const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
    GreedyAllocator greedy;
    greedy.Allocate(problem);
    EXPECT_LE(greedy.last_iterations(),
              std::min<int>(static_cast<int>(problem.workers.size()),
                            static_cast<int>(problem.open_tasks.size())))
        << seed;
    EXPECT_GE(greedy.last_match_attempts(), greedy.last_iterations());
  }
}

TEST(GreedyTest, MoreWorkersNeverHurts) {
  // Monotonicity sanity: adding a worker cannot reduce greedy's score.
  for (uint64_t seed = 0; seed < 5; ++seed) {
    testing::RandomInstanceParams params;
    params.num_workers = 6;
    const Instance small = testing::RandomInstance(seed, params);
    // Rebuild with one extra omnipotent worker.
    std::vector<core::Worker> workers = small.workers();
    std::vector<core::SkillId> all_skills;
    for (int s = 0; s < small.num_skills(); ++s) all_skills.push_back(s);
    workers.push_back(MakeWorker(static_cast<core::WorkerId>(workers.size()),
                                 0.5, 0.5, all_skills));
    auto larger = core::Instance::Create(workers, small.tasks(),
                                         small.num_skills());
    ASSERT_TRUE(larger.ok());
    EXPECT_GE(RunGreedyScore(*larger), RunGreedyScore(small)) << seed;
  }
}

// Property sweep: greedy output is always valid, and both backends agree on
// validity (scores may differ slightly in pathological ties but both must be
// dependency-closed).
class GreedyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedyPropertyTest, OutputAlwaysValid) {
  const Instance instance = testing::RandomInstance(GetParam());
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  for (auto backend : {GreedyOptions::MatchingBackend::kHungarian,
                       GreedyOptions::MatchingBackend::kHopcroftKarp}) {
    GreedyOptions options;
    options.backend = backend;
    GreedyAllocator greedy(options);
    const core::Assignment assignment = greedy.Allocate(problem);
    EXPECT_TRUE(core::ValidateAssignment(problem, assignment).ok());
  }
}

TEST_P(GreedyPropertyTest, WithinApproximationBoundOfExact) {
  // Theorem III.2: greedy >= (1 - 1/e) * OPT per batch.
  testing::RandomInstanceParams params;
  params.num_workers = 5;
  params.num_tasks = 7;
  const Instance instance = testing::RandomInstance(GetParam(), params);
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  GreedyAllocator greedy;
  ExactAllocator exact;
  const int greedy_score =
      core::ValidScore(problem, greedy.Allocate(problem));
  const int opt = core::ValidScore(problem, exact.Allocate(problem));
  EXPECT_GE(greedy_score + 1e-9, (1.0 - 1.0 / M_E) * opt)
      << "greedy=" << greedy_score << " opt=" << opt;
  EXPECT_LE(greedy_score, opt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyPropertyTest,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace dasc::algo
