// Tests for the MaxMatching and Urgency allocators.
#include <gtest/gtest.h>

#include "algo/baselines.h"
#include "algo/exact.h"
#include "algo/greedy.h"
#include "algo/heuristics.h"
#include "core/assignment.h"
#include "test_util.h"

namespace dasc::algo {
namespace {

using core::BatchProblem;
using core::Instance;
using testing::Example1;
using testing::MakeTask;
using testing::MakeWorker;

// ------------------------------------------------------------ MaxMatching ---

TEST(MaxMatchingTest, MatchesAllWhenPossible) {
  // Conflicted preferences that defeat per-worker greedy: both prefer t0.
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0, 1}), MakeWorker(1, 0, 0, {0})},
      {MakeTask(0, 0.1, 0, 0), MakeTask(1, 5, 5, 1)}, 2);
  ASSERT_TRUE(instance.ok());
  const BatchProblem problem = BatchProblem::AllAt(*instance, 0.0);
  MaxMatchingAllocator max_match;
  EXPECT_EQ(max_match.Allocate(problem).size(), 2);
  // Closest would give w0 -> t0 (nearest) and strand w1.
  ClosestAllocator closest;
  EXPECT_EQ(closest.Allocate(problem).size(), 1);
}

TEST(MaxMatchingTest, IgnoresDependencies) {
  const Instance instance = Example1();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  MaxMatchingAllocator max_match;
  const core::Assignment raw = max_match.Allocate(problem);
  EXPECT_EQ(raw.size(), 3);  // pairs every worker
  // But validity can be lower: it does not coordinate chains.
  EXPECT_LE(core::ValidScore(problem, raw), 3);
}

TEST(MaxMatchingTest, PairCountUpperBoundsOtherPolicies) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const Instance instance = testing::RandomInstance(seed);
    const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
    MaxMatchingAllocator max_match;
    GreedyAllocator greedy;
    ClosestAllocator closest;
    const int max_pairs = max_match.Allocate(problem).size();
    EXPECT_GE(max_pairs, greedy.Allocate(problem).size()) << seed;
    EXPECT_GE(max_pairs, closest.Allocate(problem).size()) << seed;
  }
}

TEST(MaxMatchingTest, EmptyProblem) {
  auto instance = core::Instance::Create({}, {}, 1);
  ASSERT_TRUE(instance.ok());
  MaxMatchingAllocator max_match;
  EXPECT_TRUE(
      max_match.Allocate(BatchProblem::AllAt(*instance, 0.0)).empty());
}

// --------------------------------------------------------------- Urgency ---

TEST(UrgencyTest, SolvesPaperExample) {
  const Instance instance = Example1();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  UrgencyAllocator urgency;
  const core::Assignment assignment = urgency.Allocate(problem);
  EXPECT_TRUE(core::ValidateAssignment(problem, assignment).ok());
  EXPECT_EQ(core::ValidScore(problem, assignment), 3);
}

TEST(UrgencyTest, OutputAlwaysDependencyClosed) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const Instance instance = testing::RandomInstance(seed + 40);
    const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
    UrgencyAllocator urgency;
    const core::Assignment assignment = urgency.Allocate(problem);
    EXPECT_TRUE(core::ValidateAssignment(problem, assignment).ok()) << seed;
    EXPECT_EQ(core::ValidScore(problem, assignment), assignment.size());
  }
}

TEST(UrgencyTest, PrefersUnlockingTasks) {
  // One worker, two ready tasks: t0 unlocks t1 (another worker can then do
  // it); t2 unlocks nothing. Urgency must take t0 first.
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}), MakeWorker(1, 0, 0, {1})},
      {MakeTask(0, 0, 0, 0), MakeTask(1, 0, 0, 1, {0}), MakeTask(2, 0, 0, 0)},
      2);
  ASSERT_TRUE(instance.ok());
  const BatchProblem problem = BatchProblem::AllAt(*instance, 0.0);
  UrgencyAllocator urgency;
  const core::Assignment assignment = urgency.Allocate(problem);
  EXPECT_EQ(core::ValidScore(problem, assignment), 2);
  bool t0_assigned = false;
  for (const auto& [w, t] : assignment.pairs()) t0_assigned |= (t == 0);
  EXPECT_TRUE(t0_assigned);
}

TEST(UrgencyTest, BreaksTiesByExpiry) {
  // Both tasks unlock nothing; the one expiring sooner must win the only
  // worker.
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0})},
      {MakeTask(0, 0, 0, 0, {}, 0.0, /*wait=*/100.0),
       MakeTask(1, 0, 0, 0, {}, 0.0, /*wait=*/5.0)},
      1);
  ASSERT_TRUE(instance.ok());
  const BatchProblem problem = BatchProblem::AllAt(*instance, 0.0);
  UrgencyAllocator urgency;
  const core::Assignment assignment = urgency.Allocate(problem);
  ASSERT_EQ(assignment.size(), 1);
  EXPECT_EQ(assignment.pairs()[0].second, 1);
}

TEST(UrgencyTest, RespectsCompletedDependencyMode) {
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}), MakeWorker(1, 0, 0, {0})},
      {MakeTask(0, 0, 0, 0), MakeTask(1, 0, 0, 0, {0})}, 1);
  ASSERT_TRUE(instance.ok());
  BatchProblem problem = BatchProblem::AllAt(*instance, 0.0);
  problem.in_batch_dependency_credit = false;
  UrgencyAllocator urgency;
  const core::Assignment assignment = urgency.Allocate(problem);
  // Only the dependency-free task may go this batch.
  ASSERT_EQ(assignment.size(), 1);
  EXPECT_EQ(assignment.pairs()[0].second, 0);
}

TEST(UrgencyTest, BoundedByExactOptimum) {
  for (uint64_t seed = 60; seed < 66; ++seed) {
    testing::RandomInstanceParams params;
    params.num_workers = 5;
    params.num_tasks = 7;
    const Instance instance = testing::RandomInstance(seed, params);
    const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
    UrgencyAllocator urgency;
    ExactAllocator exact;
    EXPECT_LE(core::ValidScore(problem, urgency.Allocate(problem)),
              core::ValidScore(problem, exact.Allocate(problem)))
        << seed;
  }
}

}  // namespace
}  // namespace dasc::algo
