// Deterministic pseudo-fuzzing of the instance parser: random corruptions of
// a valid serialization must never crash — they either parse to a valid
// instance or return a clean Status.
#include <gtest/gtest.h>

#include <sstream>

#include "gen/synthetic.h"
#include "io/instance_io.h"
#include "test_util.h"
#include "util/rng.h"

namespace dasc::io {
namespace {

std::string BaseSerialization() {
  gen::SyntheticParams params;
  params.seed = 17;
  params.num_workers = 12;
  params.num_tasks = 16;
  params.num_skills = 5;
  params.dependency_size = {0, 3};
  params.worker_skills = {1, 2};
  auto instance = gen::GenerateSynthetic(params);
  DASC_CHECK(instance.ok());
  std::ostringstream out;
  WriteInstance(*instance, out);
  return out.str();
}

class IoFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IoFuzzTest, ByteMutationsNeverCrash) {
  const std::string base = BaseSerialization();
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    std::string corrupted = base;
    const int mutations = static_cast<int>(rng.UniformInt(1, 8));
    for (int k = 0; k < mutations; ++k) {
      dasc::testing::MutateByte(rng, corrupted);
    }
    std::istringstream in(corrupted);
    const auto result = ReadInstance(in);  // must not crash
    if (result.ok()) {
      EXPECT_GE(result->num_skills(), 1);
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST_P(IoFuzzTest, TruncationsNeverCrash) {
  const std::string base = BaseSerialization();
  util::Rng rng(GetParam() + 999);
  for (int iter = 0; iter < 60; ++iter) {
    const auto cut = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(base.size())));
    std::istringstream in(base.substr(0, cut));
    const auto result = ReadInstance(in);
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST_P(IoFuzzTest, AssignmentCsvMutationsNeverCrash) {
  util::Rng rng(GetParam() + 5);
  const std::string base = "worker_id,task_id\n1,2\n3,4\n5,6\n";
  for (int iter = 0; iter < 150; ++iter) {
    std::string corrupted = base;
    dasc::testing::MutateByte(rng, corrupted);
    std::istringstream in(corrupted);
    const auto result = ReadAssignment(in);  // must not crash
    (void)result;
  }
}

// Regression: the mutation loop used to compute UniformInt(0, size()-1)
// before checking for emptiness, underflowing (and tripping the Rng's
// lo <= hi precondition) once deletions drained the buffer. Driving the
// helper from a 1-byte seed forces it through the empty state repeatedly.
TEST_P(IoFuzzTest, EmptyBufferMutationsAreSafe) {
  util::Rng rng(GetParam() + 31);
  std::string tiny = "#";
  for (int iter = 0; iter < 500; ++iter) {
    dasc::testing::MutateByte(rng, tiny);
    ASSERT_LE(tiny.size(), 502u);
    std::istringstream in(tiny);
    const auto result = ReadInstance(in);  // must not crash, even on ""
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzzTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dasc::io
