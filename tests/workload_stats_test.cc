// Tests for instance-level workload analysis.
#include <gtest/gtest.h>

#include "core/workload_stats.h"
#include "gen/synthetic.h"
#include "test_util.h"

namespace dasc::core {
namespace {

using testing::Example1;
using testing::MakeTask;
using testing::MakeWorker;

TEST(WorkloadStatsTest, EmptyInstance) {
  auto instance = Instance::Create({}, {}, 2);
  ASSERT_TRUE(instance.ok());
  const WorkloadStats stats = AnalyzeWorkload(*instance);
  EXPECT_EQ(stats.num_workers, 0);
  EXPECT_EQ(stats.num_tasks, 0);
  EXPECT_EQ(stats.feasible_tasks, 0);
}

TEST(WorkloadStatsTest, Example1Numbers) {
  const Instance instance = Example1();
  const WorkloadStats stats = AnalyzeWorkload(instance);
  EXPECT_EQ(stats.num_workers, 3);
  EXPECT_EQ(stats.num_tasks, 5);
  // Skill sets: {ψ1,ψ2}, {ψ4}, {ψ1,ψ2,ψ3} -> mean 2.
  EXPECT_DOUBLE_EQ(stats.mean_worker_skills, 2.0);
  // Every skill is practiced by someone; every task skill-coverable.
  EXPECT_EQ(stats.skill_coverable_tasks, 5);
  // Generous mobility: every task has at least one offline-feasible worker.
  EXPECT_EQ(stats.feasible_tasks, 5);
  EXPECT_EQ(stats.dependency_free_tasks, 2);  // t1 and t4
  EXPECT_EQ(stats.max_closure, 2);            // t3 depends on {t1, t2}
  // All start times equal -> all closures temporally ordered.
  EXPECT_EQ(stats.temporally_ordered_tasks, 5);
}

TEST(WorkloadStatsTest, DetectsSkillGap) {
  // Task requires skill 1; only worker practices skill 0.
  auto instance = Instance::Create({MakeWorker(0, 0, 0, {0})},
                                   {MakeTask(0, 0, 0, 1)}, 2);
  ASSERT_TRUE(instance.ok());
  const WorkloadStats stats = AnalyzeWorkload(*instance);
  EXPECT_EQ(stats.skill_coverable_tasks, 0);
  EXPECT_EQ(stats.feasible_tasks, 0);
}

TEST(WorkloadStatsTest, DetectsTemporalDisorder) {
  // t1 depends on t0 but t0 starts later.
  auto instance = Instance::Create(
      {MakeWorker(0, 0, 0, {0})},
      {MakeTask(0, 0, 0, 0, {}, /*start=*/10.0),
       MakeTask(1, 0, 0, 0, {0}, /*start=*/0.0)},
      1);
  ASSERT_TRUE(instance.ok());
  const WorkloadStats stats = AnalyzeWorkload(*instance);
  EXPECT_EQ(stats.temporally_ordered_tasks, 1);  // only t0 itself
}

TEST(WorkloadStatsTest, HorizonCoversEverything) {
  auto instance = Instance::Create(
      {MakeWorker(0, 0, 0, {0}, /*start=*/5.0, /*wait=*/10.0)},
      {MakeTask(0, 0, 0, 0, {}, /*start=*/1.0, /*wait=*/3.0)}, 1);
  ASSERT_TRUE(instance.ok());
  const WorkloadStats stats = AnalyzeWorkload(*instance);
  EXPECT_DOUBLE_EQ(stats.horizon_begin, 1.0);
  EXPECT_DOUBLE_EQ(stats.horizon_end, 15.0);
  EXPECT_DOUBLE_EQ(stats.mean_task_window, 3.0);
  EXPECT_DOUBLE_EQ(stats.mean_worker_window, 10.0);
}

TEST(WorkloadStatsTest, SyntheticGeneratorIsTemporallyOrdered) {
  // The generator sorts task start times before wiring dependencies, so
  // every closure must be temporally ordered.
  gen::SyntheticParams params;
  params.num_workers = 40;
  params.num_tasks = 120;
  params.num_skills = 10;
  params.dependency_size = {0, 6};
  params.worker_skills = {1, 3};
  auto instance = gen::GenerateSynthetic(params);
  ASSERT_TRUE(instance.ok());
  const WorkloadStats stats = AnalyzeWorkload(*instance);
  EXPECT_EQ(stats.temporally_ordered_tasks, 120);
  EXPECT_GT(stats.mean_closure, 0.0);
}

TEST(WorkloadStatsTest, ToStringMentionsKeyFields) {
  const WorkloadStats stats = AnalyzeWorkload(Example1());
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("workers=3"), std::string::npos);
  EXPECT_NE(text.find("dep-free=2"), std::string::npos);
}

}  // namespace
}  // namespace dasc::core
