// Tests for the auction assignment solver, cross-validated against the
// Hungarian algorithm.
#include <gtest/gtest.h>

#include <cmath>

#include "matching/auction.h"
#include "matching/hungarian.h"
#include "util/rng.h"

namespace dasc::matching {
namespace {

TEST(AuctionTest, EmptyMatrix) {
  auto result = AuctionAssignment({});
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.cost, 0.0);
}

TEST(AuctionTest, SingleCell) {
  auto result = AuctionAssignment({{2.5}});
  ASSERT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.cost, 2.5);
}

TEST(AuctionTest, SimpleOptimal) {
  std::vector<std::vector<double>> cost = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  AuctionOptions options;
  options.epsilon = 1e-4;
  auto auction = AuctionAssignment(cost, options);
  auto hungarian = SolveAssignment(cost);
  ASSERT_TRUE(auction.feasible);
  EXPECT_NEAR(auction.cost, hungarian.cost, 3 * options.epsilon * 3);
}

TEST(AuctionTest, InfeasibleRowDetected) {
  std::vector<std::vector<double>> cost = {{kInfeasible, kInfeasible},
                                           {1.0, 2.0}};
  EXPECT_FALSE(AuctionAssignment(cost).feasible);
}

TEST(AuctionTest, StructuralInfeasibilityDetected) {
  // Both rows can only use column 0: prices must blow past the bound.
  std::vector<std::vector<double>> cost = {{1.0, kInfeasible},
                                           {2.0, kInfeasible}};
  EXPECT_FALSE(AuctionAssignment(cost).feasible);
}

TEST(AuctionTest, RectangularFeasible) {
  std::vector<std::vector<double>> cost = {{10, 1, 10, 10}, {1, 10, 10, 10}};
  auto result = AuctionAssignment(cost);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.row_to_col[0], 1);
  EXPECT_EQ(result.row_to_col[1], 0);
}

TEST(AuctionTest, MatchingIsInjective) {
  util::Rng rng(3);
  std::vector<std::vector<double>> cost(6, std::vector<double>(9));
  for (auto& row : cost) {
    for (auto& c : row) c = rng.UniformDouble(0, 10);
  }
  auto result = AuctionAssignment(cost);
  ASSERT_TRUE(result.feasible);
  std::set<int> used(result.row_to_col.begin(), result.row_to_col.end());
  EXPECT_EQ(used.size(), 6u);
}

TEST(AuctionTest, MaxBidsCapReturnsInfeasible) {
  std::vector<std::vector<double>> cost(8, std::vector<double>(8, 1.0));
  AuctionOptions options;
  options.max_bids = 2;
  EXPECT_FALSE(AuctionAssignment(cost, options).feasible);
}

// Property: for integer costs and epsilon < 1/n the auction is exactly
// optimal; cross-check against Hungarian on random matrices.
class AuctionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AuctionPropertyTest, OptimalOnIntegerCosts) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    const int rows = static_cast<int>(rng.UniformInt(1, 7));
    const int cols = static_cast<int>(rng.UniformInt(rows, 9));
    std::vector<std::vector<double>> cost(
        static_cast<size_t>(rows),
        std::vector<double>(static_cast<size_t>(cols)));
    for (auto& row : cost) {
      for (auto& c : row) {
        c = rng.Bernoulli(0.2) ? kInfeasible
                               : std::floor(rng.UniformDouble(0, 30));
      }
    }
    AuctionOptions options;
    options.epsilon = 1.0 / (rows + 1) / 2.0;
    auto auction = AuctionAssignment(cost, options);
    auto hungarian = SolveAssignment(cost);
    ASSERT_EQ(auction.feasible, hungarian.feasible) << "iter " << iter;
    if (auction.feasible) {
      EXPECT_DOUBLE_EQ(auction.cost, hungarian.cost) << "iter " << iter;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuctionPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace dasc::matching
