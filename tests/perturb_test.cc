// Tests for workload perturbation and allocator robustness under it.
#include <gtest/gtest.h>

#include "algo/greedy.h"
#include "gen/perturb.h"
#include "gen/synthetic.h"
#include "sim/metrics.h"
#include "test_util.h"

namespace dasc::gen {
namespace {

core::Instance BaseInstance() {
  SyntheticParams params;
  params.seed = 3;
  params.num_workers = 50;
  params.num_tasks = 60;
  params.num_skills = 8;
  params.dependency_size = {0, 4};
  params.worker_skills = {1, 3};
  auto instance = GenerateSynthetic(params);
  DASC_CHECK(instance.ok());
  return std::move(*instance);
}

TEST(PerturbTest, IdentityWhenNoKnobsSet) {
  const core::Instance base = BaseInstance();
  auto copy = Perturb(base, PerturbParams{});
  ASSERT_TRUE(copy.ok());
  ASSERT_EQ(copy->num_workers(), base.num_workers());
  ASSERT_EQ(copy->num_tasks(), base.num_tasks());
  for (int i = 0; i < base.num_workers(); ++i) {
    EXPECT_EQ(copy->worker(i).location, base.worker(i).location);
    EXPECT_EQ(copy->worker(i).wait_time, base.worker(i).wait_time);
  }
  for (int t = 0; t < base.num_tasks(); ++t) {
    EXPECT_EQ(copy->task(t).dependencies, base.task(t).dependencies);
  }
}

TEST(PerturbTest, DropsWorkersApproximatelyAtRate) {
  const core::Instance base = BaseInstance();
  PerturbParams params;
  params.worker_drop_probability = 0.5;
  auto perturbed = Perturb(base, params);
  ASSERT_TRUE(perturbed.ok());
  EXPECT_LT(perturbed->num_workers(), base.num_workers());
  EXPECT_GT(perturbed->num_workers(), 5);
  // Dense ids must be restored.
  for (int i = 0; i < perturbed->num_workers(); ++i) {
    EXPECT_EQ(perturbed->worker(i).id, i);
  }
}

TEST(PerturbTest, TaskDropsRemapDependencies) {
  const core::Instance base = BaseInstance();
  PerturbParams params;
  params.task_drop_probability = 0.4;
  auto perturbed = Perturb(base, params);
  ASSERT_TRUE(perturbed.ok()) << perturbed.status().ToString();
  EXPECT_LT(perturbed->num_tasks(), base.num_tasks());
  for (const auto& t : perturbed->tasks()) {
    for (core::TaskId d : t.dependencies) {
      EXPECT_GE(d, 0);
      EXPECT_LT(d, t.id);  // order preserved -> still acyclic
    }
  }
}

TEST(PerturbTest, WaitFactorScalesWindows) {
  const core::Instance base = BaseInstance();
  PerturbParams params;
  params.wait_time_factor = 0.5;
  auto perturbed = Perturb(base, params);
  ASSERT_TRUE(perturbed.ok());
  for (int t = 0; t < base.num_tasks(); ++t) {
    EXPECT_DOUBLE_EQ(perturbed->task(t).wait_time,
                     base.task(t).wait_time * 0.5);
  }
}

TEST(PerturbTest, RejectsNonPositiveWaitFactor) {
  PerturbParams params;
  params.wait_time_factor = 0.0;
  EXPECT_FALSE(Perturb(BaseInstance(), params).ok());
}

TEST(PerturbTest, DeterministicPerSeed) {
  const core::Instance base = BaseInstance();
  PerturbParams params;
  params.location_stddev = 0.05;
  params.worker_drop_probability = 0.2;
  auto a = Perturb(base, params);
  auto b = Perturb(base, params);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_workers(), b->num_workers());
  for (int i = 0; i < a->num_workers(); ++i) {
    EXPECT_EQ(a->worker(i).location, b->worker(i).location);
  }
}

TEST(PerturbTest, GreedyDegradesGracefullyUnderChurn) {
  // Removing 30% of workers must not collapse the score to zero and must
  // not increase it.
  const core::Instance base = BaseInstance();
  sim::SimulatorOptions options;
  options.batch_interval = 5.0;
  algo::GreedyAllocator g1, g2;
  const int base_score = sim::MeasureSimulation(base, options, g1).score;
  PerturbParams params;
  params.worker_drop_probability = 0.3;
  auto perturbed = Perturb(base, params);
  ASSERT_TRUE(perturbed.ok());
  const int perturbed_score =
      sim::MeasureSimulation(*perturbed, options, g2).score;
  EXPECT_LE(perturbed_score, base_score);
  EXPECT_GT(perturbed_score, base_score / 4);
}

}  // namespace
}  // namespace dasc::gen
