// Unit + cross-validation tests for the matching library.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <vector>

#include "matching/hopcroft_karp.h"
#include "matching/hungarian.h"
#include "util/rng.h"

namespace dasc::matching {
namespace {

// Brute force min-cost assignment over all column permutations (rows <= 8).
std::pair<bool, double> BruteForceAssignment(
    const std::vector<std::vector<double>>& cost) {
  const int rows = static_cast<int>(cost.size());
  if (rows == 0) return {true, 0.0};
  const int cols = static_cast<int>(cost[0].size());
  std::vector<int> columns(static_cast<size_t>(cols));
  std::iota(columns.begin(), columns.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  // Enumerate ordered selections of `rows` columns via permutations of all
  // columns, considering the first `rows` entries.
  std::sort(columns.begin(), columns.end());
  std::set<std::vector<int>> seen;
  do {
    std::vector<int> pick(columns.begin(), columns.begin() + rows);
    if (!seen.insert(pick).second) continue;
    double total = 0.0;
    bool ok = true;
    for (int i = 0; i < rows; ++i) {
      const double c =
          cost[static_cast<size_t>(i)][static_cast<size_t>(pick[static_cast<size_t>(i)])];
      if (c == kInfeasible) {
        ok = false;
        break;
      }
      total += c;
    }
    if (ok) best = std::min(best, total);
  } while (std::next_permutation(columns.begin(), columns.end()));
  if (best == std::numeric_limits<double>::infinity()) return {false, 0.0};
  return {true, best};
}

// ------------------------------------------------------------- Hungarian ---

TEST(HungarianTest, EmptyMatrix) {
  auto result = SolveAssignment({});
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.cost, 0.0);
}

TEST(HungarianTest, SingleCell) {
  auto result = SolveAssignment({{3.5}});
  ASSERT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.cost, 3.5);
  EXPECT_EQ(result.row_to_col, (std::vector<int>{0}));
}

TEST(HungarianTest, ClassicSquare) {
  // Known optimum: 1 + 2 + 1 = 4 via (0,1), (1,0)... verify by brute force.
  std::vector<std::vector<double>> cost = {
      {4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  auto result = SolveAssignment(cost);
  ASSERT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.cost, BruteForceAssignment(cost).second);
  EXPECT_DOUBLE_EQ(result.cost, 5.0);
}

TEST(HungarianTest, RectangularPicksCheapColumns) {
  std::vector<std::vector<double>> cost = {{10, 1, 10, 10}, {1, 10, 10, 10}};
  auto result = SolveAssignment(cost);
  ASSERT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.cost, 2.0);
  EXPECT_EQ(result.row_to_col[0], 1);
  EXPECT_EQ(result.row_to_col[1], 0);
}

TEST(HungarianTest, InfeasibleWhenRowHasNoEdges) {
  std::vector<std::vector<double>> cost = {{kInfeasible, kInfeasible},
                                           {1.0, 2.0}};
  auto result = SolveAssignment(cost);
  EXPECT_FALSE(result.feasible);
}

TEST(HungarianTest, InfeasibleByConflict) {
  // Both rows can only use column 0.
  std::vector<std::vector<double>> cost = {{1.0, kInfeasible},
                                           {2.0, kInfeasible}};
  auto result = SolveAssignment(cost);
  EXPECT_FALSE(result.feasible);
}

TEST(HungarianTest, FeasibleThroughForbiddenLayout) {
  // A perfect matching exists but the naive greedy diagonal uses forbidden
  // cells.
  std::vector<std::vector<double>> cost = {{kInfeasible, 1.0, kInfeasible},
                                           {2.0, kInfeasible, kInfeasible},
                                           {kInfeasible, kInfeasible, 3.0}};
  auto result = SolveAssignment(cost);
  ASSERT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.cost, 6.0);
  EXPECT_EQ(result.row_to_col, (std::vector<int>{1, 0, 2}));
}

TEST(HungarianTest, ZeroCosts) {
  std::vector<std::vector<double>> cost = {{0, 0}, {0, 0}};
  auto result = SolveAssignment(cost);
  ASSERT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
}

TEST(HungarianTest, MatchingIsAPermutation) {
  util::Rng rng(2024);
  std::vector<std::vector<double>> cost(5, std::vector<double>(7));
  for (auto& row : cost) {
    for (auto& c : row) c = rng.UniformDouble(0, 100);
  }
  auto result = SolveAssignment(cost);
  ASSERT_TRUE(result.feasible);
  std::set<int> used(result.row_to_col.begin(), result.row_to_col.end());
  EXPECT_EQ(used.size(), 5u);
}

// Property: Hungarian equals brute force on random matrices with random
// forbidden cells, across shapes and densities.
struct HungarianCase {
  int rows;
  int cols;
  double forbid_prob;
  uint64_t seed;
};

class HungarianPropertyTest : public ::testing::TestWithParam<HungarianCase> {};

TEST_P(HungarianPropertyTest, MatchesBruteForce) {
  const auto& param = GetParam();
  util::Rng rng(param.seed);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<std::vector<double>> cost(
        static_cast<size_t>(param.rows),
        std::vector<double>(static_cast<size_t>(param.cols)));
    for (auto& row : cost) {
      for (auto& c : row) {
        c = rng.Bernoulli(param.forbid_prob)
                ? kInfeasible
                : std::floor(rng.UniformDouble(0, 50));
      }
    }
    auto got = SolveAssignment(cost);
    auto want = BruteForceAssignment(cost);
    ASSERT_EQ(got.feasible, want.first) << "iter " << iter;
    if (got.feasible) {
      EXPECT_DOUBLE_EQ(got.cost, want.second) << "iter " << iter;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HungarianPropertyTest,
    ::testing::Values(HungarianCase{3, 3, 0.0, 1}, HungarianCase{4, 4, 0.3, 2},
                      HungarianCase{5, 5, 0.5, 3}, HungarianCase{3, 6, 0.2, 4},
                      HungarianCase{5, 7, 0.4, 5}, HungarianCase{2, 8, 0.6, 6},
                      HungarianCase{6, 6, 0.7, 7}));

// ----------------------------------------------------------- HopcroftKarp ---

TEST(HopcroftKarpTest, EmptyGraph) {
  HopcroftKarp hk(0, 0);
  EXPECT_EQ(hk.MaxMatching(), 0);
}

TEST(HopcroftKarpTest, NoEdges) {
  HopcroftKarp hk(3, 3);
  EXPECT_EQ(hk.MaxMatching(), 0);
  EXPECT_EQ(hk.MatchOfLeft(0), -1);
  EXPECT_EQ(hk.MatchOfRight(2), -1);
}

TEST(HopcroftKarpTest, PerfectMatching) {
  HopcroftKarp hk(3, 3);
  hk.AddEdge(0, 1);
  hk.AddEdge(1, 0);
  hk.AddEdge(2, 2);
  EXPECT_EQ(hk.MaxMatching(), 3);
  EXPECT_EQ(hk.MatchOfLeft(0), 1);
  EXPECT_EQ(hk.MatchOfLeft(1), 0);
  EXPECT_EQ(hk.MatchOfLeft(2), 2);
}

TEST(HopcroftKarpTest, RequiresAugmentingPath) {
  // Greedy matching picks (0,0) first and must be augmented for both rows to
  // match.
  HopcroftKarp hk(2, 2);
  hk.AddEdge(0, 0);
  hk.AddEdge(0, 1);
  hk.AddEdge(1, 0);
  EXPECT_EQ(hk.MaxMatching(), 2);
}

TEST(HopcroftKarpTest, MatchingConsistentBothSides) {
  HopcroftKarp hk(4, 5);
  hk.AddEdge(0, 0);
  hk.AddEdge(1, 0);
  hk.AddEdge(1, 1);
  hk.AddEdge(2, 2);
  hk.AddEdge(3, 2);
  hk.AddEdge(3, 4);
  const int size = hk.MaxMatching();
  EXPECT_EQ(size, 4);
  for (int u = 0; u < 4; ++u) {
    const int v = hk.MatchOfLeft(u);
    if (v != -1) {
      EXPECT_EQ(hk.MatchOfRight(v), u);
    }
  }
}

TEST(HopcroftKarpTest, IdempotentMaxMatching) {
  HopcroftKarp hk(2, 2);
  hk.AddEdge(0, 0);
  hk.AddEdge(1, 1);
  EXPECT_EQ(hk.MaxMatching(), 2);
  EXPECT_EQ(hk.MaxMatching(), 2);
}

// Property: HK matching size equals Hungarian feasibility count on random
// bipartite graphs (match all rows possible iff HK size == rows).
class HopcroftKarpPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HopcroftKarpPropertyTest, AgreesWithHungarianFeasibility) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 30; ++iter) {
    const int rows = static_cast<int>(rng.UniformInt(1, 6));
    const int cols = static_cast<int>(rng.UniformInt(rows, 8));
    HopcroftKarp hk(rows, cols);
    std::vector<std::vector<double>> cost(
        static_cast<size_t>(rows),
        std::vector<double>(static_cast<size_t>(cols), kInfeasible));
    for (int u = 0; u < rows; ++u) {
      for (int v = 0; v < cols; ++v) {
        if (rng.Bernoulli(0.4)) {
          hk.AddEdge(u, v);
          cost[static_cast<size_t>(u)][static_cast<size_t>(v)] = 1.0;
        }
      }
    }
    const bool hk_perfect = hk.MaxMatching() == rows;
    const bool hungarian_perfect = SolveAssignment(cost).feasible;
    EXPECT_EQ(hk_perfect, hungarian_perfect) << "iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HopcroftKarpPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace dasc::matching
