// Tests for instance/assignment (de)serialization, including failure
// injection on malformed inputs.
#include <gtest/gtest.h>

#include <sstream>

#include "gen/synthetic.h"
#include "io/instance_io.h"
#include "io/svg_render.h"
#include "test_util.h"

namespace dasc::io {
namespace {

TEST(InstanceIoTest, RoundTripExample1) {
  const core::Instance original = testing::Example1();
  std::stringstream buffer;
  WriteInstance(original, buffer);
  auto loaded = ReadInstance(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_workers(), original.num_workers());
  EXPECT_EQ(loaded->num_tasks(), original.num_tasks());
  EXPECT_EQ(loaded->num_skills(), original.num_skills());
  for (int i = 0; i < original.num_workers(); ++i) {
    EXPECT_EQ(loaded->worker(i).location, original.worker(i).location);
    EXPECT_EQ(loaded->worker(i).skills, original.worker(i).skills);
    EXPECT_DOUBLE_EQ(loaded->worker(i).velocity, original.worker(i).velocity);
  }
  for (int t = 0; t < original.num_tasks(); ++t) {
    EXPECT_EQ(loaded->task(t).dependencies, original.task(t).dependencies);
    EXPECT_EQ(loaded->task(t).required_skill, original.task(t).required_skill);
  }
}

TEST(InstanceIoTest, RoundTripPreservesDoublesExactly) {
  // max_digits10 precision must survive the text round trip bit-for-bit.
  gen::SyntheticParams params;
  params.num_workers = 20;
  params.num_tasks = 30;
  params.num_skills = 5;
  params.dependency_size = {0, 4};
  params.worker_skills = {1, 3};
  auto original = gen::GenerateSynthetic(params);
  ASSERT_TRUE(original.ok());
  std::stringstream buffer;
  WriteInstance(*original, buffer);
  auto loaded = ReadInstance(buffer);
  ASSERT_TRUE(loaded.ok());
  for (int i = 0; i < original->num_workers(); ++i) {
    EXPECT_EQ(loaded->worker(i).location.x, original->worker(i).location.x);
    EXPECT_EQ(loaded->worker(i).start_time, original->worker(i).start_time);
    EXPECT_EQ(loaded->worker(i).max_distance,
              original->worker(i).max_distance);
  }
}

TEST(InstanceIoTest, EmptyInstanceRoundTrips) {
  auto empty = core::Instance::Create({}, {}, 3);
  ASSERT_TRUE(empty.ok());
  std::stringstream buffer;
  WriteInstance(*empty, buffer);
  auto loaded = ReadInstance(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_workers(), 0);
  EXPECT_EQ(loaded->num_skills(), 3);
}

TEST(InstanceIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n\nskills 2\n# another\nworker 0 1 2 0 10 1 5 1 0\n"
      "task 0 3 4 0 10 1 0\n");
  auto loaded = ReadInstance(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_workers(), 1);
  EXPECT_EQ(loaded->num_tasks(), 1);
}

TEST(InstanceIoTest, MissingSkillsRecordFails) {
  std::stringstream in("worker 0 1 2 0 10 1 5 1 0\n");
  auto loaded = ReadInstance(in);
  EXPECT_FALSE(loaded.ok());
}

TEST(InstanceIoTest, MalformedWorkerLineFails) {
  std::stringstream in("skills 2\nworker 0 1 2\n");
  auto loaded = ReadInstance(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

TEST(InstanceIoTest, TruncatedSkillListFails) {
  std::stringstream in("skills 2\nworker 0 1 2 0 10 1 5 3 0 1\n");
  EXPECT_FALSE(ReadInstance(in).ok());
}

TEST(InstanceIoTest, TruncatedDependencyListFails) {
  std::stringstream in("skills 2\ntask 0 1 2 0 10 1 2 0\n");
  EXPECT_FALSE(ReadInstance(in).ok());
}

TEST(InstanceIoTest, UnknownRecordKindFails) {
  std::stringstream in("skills 2\nbanana 1 2 3\n");
  auto loaded = ReadInstance(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("banana"), std::string::npos);
}

TEST(InstanceIoTest, SemanticValidationStillApplies) {
  // Parses fine but violates Instance::Create invariants (cyclic deps).
  std::stringstream in(
      "skills 1\ntask 0 0 0 0 10 0 1 1\ntask 1 0 0 0 10 0 1 0\n");
  EXPECT_FALSE(ReadInstance(in).ok());
}

TEST(InstanceIoTest, FileNotFound) {
  auto loaded = ReadInstanceFile("/nonexistent/path.dasc");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
  EXPECT_FALSE(
      WriteInstanceFile(testing::Example1(), "/nonexistent/dir/x.dasc").ok());
}

TEST(AssignmentIoTest, RoundTrip) {
  core::Assignment assignment;
  assignment.Add(3, 7);
  assignment.Add(1, 2);
  std::stringstream buffer;
  WriteAssignment(assignment, buffer);
  auto loaded = ReadAssignment(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->pairs(), assignment.pairs());
}

TEST(AssignmentIoTest, EmptyAssignment) {
  core::Assignment assignment;
  std::stringstream buffer;
  WriteAssignment(assignment, buffer);
  auto loaded = ReadAssignment(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST(SvgRenderTest, ContainsAllEntities) {
  const core::Instance instance = testing::Example1();
  const std::string svg = RenderInstanceSvg(instance);
  // 3 worker triangles, 5 task circles, 4 dependency arcs.
  size_t polygons = 0, circles = 0;
  for (size_t pos = 0; (pos = svg.find("<polygon", pos)) != std::string::npos;
       ++pos) {
    ++polygons;
  }
  for (size_t pos = 0; (pos = svg.find("<circle", pos)) != std::string::npos;
       ++pos) {
    ++circles;
  }
  EXPECT_EQ(polygons, 3u);
  EXPECT_EQ(circles, 5u);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgRenderTest, AssignmentLinesDrawn) {
  const core::Instance instance = testing::Example1();
  core::Assignment assignment;
  assignment.Add(0, 0);
  assignment.Add(1, 3);
  const std::string with = RenderInstanceSvg(instance, &assignment);
  const std::string without = RenderInstanceSvg(instance);
  EXPECT_GT(with.size(), without.size());
  EXPECT_NE(with.find("#2563eb"), std::string::npos);
}

TEST(SvgRenderTest, EmptyInstanceStillValidSvg) {
  auto instance = core::Instance::Create({}, {}, 1);
  ASSERT_TRUE(instance.ok());
  const std::string svg = RenderInstanceSvg(*instance);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgRenderTest, DependencyEdgeCapRespected) {
  const core::Instance instance = testing::Example1();
  SvgOptions options;
  options.max_dependency_edges = 1;
  const std::string capped = RenderInstanceSvg(instance, nullptr, options);
  size_t lines = 0;
  for (size_t pos = 0; (pos = capped.find("<line", pos)) != std::string::npos;
       ++pos) {
    ++lines;
  }
  EXPECT_EQ(lines, 1u);
}

TEST(SvgRenderTest, FileWriting) {
  EXPECT_FALSE(
      RenderInstanceSvgFile(testing::Example1(), "/nonexistent/x.svg").ok());
}

TEST(AssignmentIoTest, MalformedLinesRejected) {
  {
    std::stringstream in("worker_id,task_id\n1;2\n");
    EXPECT_FALSE(ReadAssignment(in).ok());
  }
  {
    std::stringstream in("worker_id,task_id\nx,2\n");
    EXPECT_FALSE(ReadAssignment(in).ok());
  }
  {
    std::stringstream in("worker_id,task_id\n1,2extra\n");
    EXPECT_FALSE(ReadAssignment(in).ok());
  }
}

}  // namespace
}  // namespace dasc::io
