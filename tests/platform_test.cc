// Tests for the online Platform API.
#include <gtest/gtest.h>

#include "algo/greedy.h"
#include "sim/platform.h"
#include "test_util.h"

namespace dasc::sim {
namespace {

using testing::MakeTask;
using testing::MakeWorker;

TEST(PlatformTest, AssignsIdsSequentially) {
  Platform platform(3);
  auto w0 = platform.AddWorker(MakeWorker(99, 0, 0, {0}));
  auto w1 = platform.AddWorker(MakeWorker(-5, 1, 1, {1}));
  ASSERT_TRUE(w0.ok() && w1.ok());
  EXPECT_EQ(*w0, 0);
  EXPECT_EQ(*w1, 1);  // caller-provided ids are overwritten
  auto t0 = platform.AddTask(MakeTask(7, 0, 0, 2));
  ASSERT_TRUE(t0.ok());
  EXPECT_EQ(*t0, 0);
}

TEST(PlatformTest, RejectsInvalidInputs) {
  Platform platform(2);
  auto bad_velocity = MakeWorker(0, 0, 0, {0});
  bad_velocity.velocity = 0.0;
  EXPECT_FALSE(platform.AddWorker(bad_velocity).ok());
  EXPECT_FALSE(platform.AddWorker(MakeWorker(0, 0, 0, {5})).ok());
  EXPECT_FALSE(platform.AddWorker(MakeWorker(0, 0, 0, {})).ok());
  EXPECT_FALSE(platform.AddTask(MakeTask(0, 0, 0, 9)).ok());
  // Dependency on a not-yet-registered task.
  EXPECT_FALSE(platform.AddTask(MakeTask(0, 0, 0, 0, {3})).ok());
}

TEST(PlatformTest, SingleBatchAssignment) {
  Platform platform(1);
  ASSERT_TRUE(platform.AddWorker(MakeWorker(0, 0, 0, {0})).ok());
  ASSERT_TRUE(platform.AddTask(MakeTask(0, 1, 1, 0)).ok());
  algo::GreedyAllocator greedy;
  auto result = platform.RunBatch(0.0, greedy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1);
  EXPECT_EQ(platform.total_score(), 1);
  EXPECT_TRUE(platform.TaskAssigned(0));
  EXPECT_LT(platform.TaskCompletionTime(0), 1.0);
}

TEST(PlatformTest, StreamingDependencyAcrossBatches) {
  Platform platform(1);
  ASSERT_TRUE(platform.AddWorker(MakeWorker(0, 0, 0, {0}, 0.0, 1e6,
                                            /*velocity=*/10.0, 1e6))
                  .ok());
  auto head = platform.AddTask(MakeTask(0, 1, 0, 0));
  ASSERT_TRUE(head.ok());
  algo::GreedyAllocator greedy;
  ASSERT_TRUE(platform.RunBatch(0.0, greedy).ok());
  EXPECT_TRUE(platform.TaskAssigned(*head));

  // A dependent task arrives later; its dependency is already credited.
  auto tail = platform.AddTask(MakeTask(0, 2, 0, 0, {*head}, /*start=*/1.0));
  ASSERT_TRUE(tail.ok());
  auto batch2 = platform.RunBatch(1.0, greedy);
  ASSERT_TRUE(batch2.ok());
  EXPECT_EQ(batch2->size(), 1);
  EXPECT_EQ(platform.total_score(), 2);
}

TEST(PlatformTest, BusyWorkerSkipsBatch) {
  Platform platform(1);
  // Slow worker: serving the first task takes 10 time units.
  ASSERT_TRUE(platform.AddWorker(MakeWorker(0, 0, 0, {0}, 0.0, 1e6,
                                            /*velocity=*/0.1, 1e6))
                  .ok());
  ASSERT_TRUE(platform.AddTask(MakeTask(0, 1, 0, 0)).ok());
  ASSERT_TRUE(platform.AddTask(MakeTask(0, 0.5, 0, 0)).ok());
  algo::GreedyAllocator greedy;
  ASSERT_TRUE(platform.RunBatch(0.0, greedy).ok());
  EXPECT_TRUE(platform.WorkerBusy(0, 1.0));
  auto mid = platform.RunBatch(1.0, greedy);
  ASSERT_TRUE(mid.ok());
  EXPECT_TRUE(mid->empty());  // the only worker is traveling
  auto late = platform.RunBatch(20.0, greedy);
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(late->size(), 1);
}

TEST(PlatformTest, RejectsTimeTravel) {
  Platform platform(1);
  ASSERT_TRUE(platform.AddWorker(MakeWorker(0, 0, 0, {0})).ok());
  ASSERT_TRUE(platform.AddTask(MakeTask(0, 0, 0, 0)).ok());
  algo::GreedyAllocator greedy;
  ASSERT_TRUE(platform.RunBatch(5.0, greedy).ok());
  EXPECT_FALSE(platform.RunBatch(4.0, greedy).ok());
  EXPECT_TRUE(platform.RunBatch(5.0, greedy).ok());  // equal is fine
}

TEST(PlatformTest, CompletionCreditMode) {
  Platform::Options options;
  options.credit_requires_completion = true;
  Platform platform(2, options);
  // Slow worker on the head task (completion at t=10); fast worker for the
  // dependent.
  ASSERT_TRUE(platform.AddWorker(MakeWorker(0, 0, 0, {0}, 0, 1e6, 0.1, 1e6))
                  .ok());
  ASSERT_TRUE(platform.AddWorker(MakeWorker(0, 5, 5, {1}, 0, 1e6, 10, 1e6))
                  .ok());
  auto head = platform.AddTask(MakeTask(0, 1, 0, 0));
  auto tail = platform.AddTask(MakeTask(0, 5, 5, 1, {*head}));
  ASSERT_TRUE(head.ok() && tail.ok());
  algo::GreedyAllocator greedy;
  ASSERT_TRUE(platform.RunBatch(0.0, greedy).ok());
  EXPECT_TRUE(platform.TaskAssigned(*head));
  EXPECT_FALSE(platform.TaskAssigned(*tail));  // dependency not completed
  ASSERT_TRUE(platform.RunBatch(5.0, greedy).ok());
  EXPECT_FALSE(platform.TaskAssigned(*tail));  // still in transit (t=10)
  ASSERT_TRUE(platform.RunBatch(11.0, greedy).ok());
  EXPECT_TRUE(platform.TaskAssigned(*tail));
}

TEST(PlatformTest, MatchesSimulatorOnSharedWorkload) {
  // Driving the platform with the same batch cadence as the Simulator over
  // the same instance must give the same score (kDrop handling).
  const core::Instance instance = testing::Example1();
  Platform platform(instance.num_skills());
  for (const auto& w : instance.workers()) {
    ASSERT_TRUE(platform.AddWorker(w).ok());
  }
  for (const auto& t : instance.tasks()) {
    ASSERT_TRUE(platform.AddTask(t).ok());
  }
  algo::GreedyAllocator platform_greedy;
  ASSERT_TRUE(platform.RunBatch(0.0, platform_greedy).ok());
  EXPECT_EQ(platform.total_score(), 3);
}

}  // namespace
}  // namespace dasc::sim
