// Tests for the HdrHistogram-style latency recorder: the relative-error
// guarantee across the trackable range, the shared rank convention that
// makes it comparable to util::Percentiles / util::QuantileSketch, clamping
// at both range ends, and merge/clear semantics.
#include "util/latency_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

namespace dasc::util {
namespace {

// Exact quantile under the recorder's rank convention: 0-based rank
// ceil(q * (n - 1)) of the sorted sample.
double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(values.size() - 1)));
  return values[rank];
}

TEST(LatencyRecorder, RelativeErrorBoundHoldsAcrossScales) {
  LatencyRecorder recorder;
  std::vector<double> values;
  std::mt19937_64 rng(5);
  // Latencies spanning five orders of magnitude, the realistic e2e shape
  // (microseconds of pacing jitter up to multi-second stalls, in ms).
  std::lognormal_distribution<double> lognormal(1.0, 2.0);
  for (int i = 0; i < 30000; ++i) {
    const double v = lognormal(rng);
    values.push_back(v);
    recorder.Record(v);
  }
  EXPECT_EQ(recorder.count(), 30000);
  const double bound = recorder.RelativeError();
  EXPECT_GT(bound, 0.0);
  EXPECT_LE(bound, 1.0 / 128.0);
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    const double exact = ExactQuantile(values, q);
    const double estimate = recorder.Percentile(q);
    // Relative bound above the linear region's halfway point; absolute
    // half-unit resolution below it (see RelativeError()).
    const double tolerance =
        std::max(bound * exact, recorder.options().min_value * 0.5);
    EXPECT_LE(std::abs(estimate - exact), tolerance)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate;
  }
}

TEST(LatencyRecorder, MeanMaxAndSumAreExact) {
  LatencyRecorder recorder;
  recorder.Record(1.0);
  recorder.Record(2.0);
  recorder.Record(9.0);
  EXPECT_EQ(recorder.count(), 3);
  EXPECT_DOUBLE_EQ(recorder.sum(), 12.0);
  EXPECT_DOUBLE_EQ(recorder.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(recorder.max(), 9.0);
}

TEST(LatencyRecorder, OutOfRangeValuesAreClampedNotLost) {
  LatencyRecorderOptions options;
  options.max_value = 1000.0;
  LatencyRecorder recorder(options);
  recorder.Record(-5.0);   // below min: first sub-bucket
  recorder.Record(0.0);    // likewise
  recorder.Record(1e12);   // above max: top bucket, counted and capped
  EXPECT_EQ(recorder.count(), 3);
  EXPECT_LE(recorder.Percentile(0.0), options.min_value);
  EXPECT_LE(recorder.Percentile(1.0),
            options.max_value * (1.0 + recorder.RelativeError()));
  EXPECT_GT(recorder.Percentile(1.0), 0.0);
}

TEST(LatencyRecorder, EmptyRecorderReportsZero) {
  LatencyRecorder recorder;
  EXPECT_EQ(recorder.count(), 0);
  EXPECT_DOUBLE_EQ(recorder.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(recorder.Mean(), 0.0);
}

// Merging sharded recorders must be bucket-exact equivalent to recording
// the union into one recorder — what makes per-thread recorders safe to
// combine before summarization.
TEST(LatencyRecorder, MergeMatchesUnionRecording) {
  LatencyRecorder a, b, both;
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> uniform(0.05, 4000.0);
  for (int i = 0; i < 8000; ++i) {
    const double v = uniform(rng);
    both.Record(v);
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_NEAR(a.sum(), both.sum(), 1e-9 * both.sum());
  EXPECT_DOUBLE_EQ(a.max(), both.max());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(a.Percentile(q), both.Percentile(q)) << "q=" << q;
  }
}

TEST(LatencyRecorder, ClearResetsEverything) {
  LatencyRecorder recorder;
  recorder.Record(3.0);
  recorder.Record(400.0);
  recorder.Clear();
  EXPECT_EQ(recorder.count(), 0);
  EXPECT_DOUBLE_EQ(recorder.sum(), 0.0);
  EXPECT_DOUBLE_EQ(recorder.max(), 0.0);
  EXPECT_DOUBLE_EQ(recorder.Percentile(0.99), 0.0);
  recorder.Record(7.0);
  EXPECT_EQ(recorder.count(), 1);
  EXPECT_NEAR(recorder.Percentile(0.5), 7.0, 7.0 * recorder.RelativeError());
}

}  // namespace
}  // namespace dasc::util
