// Tests for the incremental matching kernel (DESIGN.md §13): the sparse
// assignment solver's bitwise contract against the dense Hungarian, delta
// repair's optimality, warm/cold equivalence of DASC_Greedy across every
// stress family and backend (single batch and full multi-batch simulation),
// the parallel class-evaluation determinism contract, and the reuse-split
// observability counters. The TSan duplicate of this binary exercises the
// parallel solve phase under the race detector.
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "algo/game.h"
#include "algo/greedy.h"
#include "core/batch.h"
#include "matching/hungarian.h"
#include "matching/sparse_assignment.h"
#include "sim/simulator.h"
#include "testing/generator.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dasc {
namespace {

using matching::SparseAssignmentResult;
using matching::SparseAssignmentSolver;
using matching::SparseDuals;
using matching::SparseRow;

// A random sparse problem in CSR-ish shape over `num_cols` global columns.
struct RandomProblem {
  std::vector<std::vector<int32_t>> cols;
  std::vector<std::vector<double>> costs;
  std::vector<SparseRow> rows;

  RandomProblem(util::Rng& rng, int num_rows, int num_cols, double density) {
    cols.resize(num_rows);
    costs.resize(num_rows);
    for (int r = 0; r < num_rows; ++r) {
      for (int c = 0; c < num_cols; ++c) {
        if (rng.UniformDouble(0.0, 1.0) >= density) continue;
        cols[r].push_back(c);
        costs[r].push_back(rng.UniformDouble(0.0, 100.0));
      }
    }
    for (int r = 0; r < num_rows; ++r) {
      rows.push_back({cols[r].data(), costs[r].data(),
                      static_cast<int64_t>(cols[r].size())});
    }
  }
};

// Densifies `rows` over the availability-filtered column union in
// first-appearance order — the exact matrix the historical dense path built.
std::vector<std::vector<double>> Densify(const std::vector<SparseRow>& rows,
                                         const std::vector<uint8_t>& avail,
                                         std::vector<int32_t>* union_cols) {
  std::vector<int> rank(avail.size(), -1);
  union_cols->clear();
  for (const SparseRow& row : rows) {
    for (int64_t e = 0; e < row.size; ++e) {
      const int32_t c = row.cols[e];
      if (!avail[static_cast<size_t>(c)]) continue;
      if (rank[static_cast<size_t>(c)] >= 0) continue;
      rank[static_cast<size_t>(c)] = static_cast<int>(union_cols->size());
      union_cols->push_back(c);
    }
  }
  std::vector<std::vector<double>> dense(
      rows.size(),
      std::vector<double>(union_cols->size(), matching::kInfeasible));
  for (size_t r = 0; r < rows.size(); ++r) {
    for (int64_t e = 0; e < rows[r].size; ++e) {
      const int32_t c = rows[r].cols[e];
      if (!avail[static_cast<size_t>(c)]) continue;
      dense[r][static_cast<size_t>(rank[static_cast<size_t>(c)])] =
          rows[r].costs[e];
    }
  }
  return dense;
}

TEST(SparseAssignmentTest, MatchesDenseHungarianBitwise) {
  util::Rng rng(20260808);
  SparseAssignmentSolver solver;
  for (int trial = 0; trial < 200; ++trial) {
    const int num_cols = 3 + static_cast<int>(rng.UniformInt(0, 12));
    const int num_rows = 1 + static_cast<int>(rng.UniformInt(0, 7));
    const double density = rng.UniformDouble(0.15, 0.9);
    RandomProblem problem(rng, num_rows, num_cols, density);
    std::vector<uint8_t> avail(static_cast<size_t>(num_cols), 1);
    for (int c = 0; c < num_cols; ++c) {
      if (rng.UniformDouble(0.0, 1.0) < 0.2) avail[static_cast<size_t>(c)] = 0;
    }

    solver.Reset(num_cols);
    const SparseAssignmentResult sparse =
        solver.Solve(problem.rows.data(), num_rows, avail.data());

    std::vector<int32_t> union_cols;
    const auto dense = Densify(problem.rows, avail, &union_cols);
    if (union_cols.size() < static_cast<size_t>(num_rows)) {
      EXPECT_FALSE(sparse.feasible) << "trial " << trial;
      continue;
    }
    const matching::HungarianResult reference =
        matching::SolveAssignment(dense);
    ASSERT_EQ(sparse.feasible, reference.feasible) << "trial " << trial;
    if (!reference.feasible) continue;
    // Bitwise contract: same cost double, same matched column per row.
    EXPECT_EQ(sparse.cost, reference.cost) << "trial " << trial;
    for (int r = 0; r < num_rows; ++r) {
      EXPECT_EQ(sparse.row_to_col[static_cast<size_t>(r)],
                union_cols[static_cast<size_t>(reference.row_to_col[r])])
          << "trial " << trial << " row " << r;
    }
  }
}

TEST(SparseAssignmentTest, RepairMatchesColdResolve) {
  util::Rng rng(77);
  SparseAssignmentSolver solver;
  int repaired_at_least_once = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const int num_cols = 6 + static_cast<int>(rng.UniformInt(0, 10));
    const int num_rows = 2 + static_cast<int>(rng.UniformInt(0, 4));
    RandomProblem problem(rng, num_rows, num_cols, 0.7);
    std::vector<uint8_t> avail(static_cast<size_t>(num_cols), 1);

    solver.Reset(num_cols);
    SparseDuals duals;
    SparseAssignmentResult prev =
        solver.Solve(problem.rows.data(), num_rows, avail.data(), &duals);
    if (!prev.feasible) continue;

    // Shrink the world: drop a row and a couple of columns (possibly
    // matched ones), exactly what a greedy commit does to a cached attempt.
    std::vector<uint8_t> row_live(static_cast<size_t>(num_rows), 1);
    row_live[static_cast<size_t>(rng.UniformInt(0, num_rows - 1))] = 0;
    for (int k = 0; k < 2; ++k) {
      avail[static_cast<size_t>(rng.UniformInt(0, num_cols - 1))] = 0;
    }

    const int repaired = solver.Repair(problem.rows.data(), num_rows,
                                       avail.data(), row_live.data(), &prev,
                                       &duals);
    // Cold re-solve over the shrunken problem as the reference.
    std::vector<SparseRow> live_rows;
    std::vector<int> live_index;
    for (int r = 0; r < num_rows; ++r) {
      if (row_live[static_cast<size_t>(r)]) {
        live_rows.push_back(problem.rows[static_cast<size_t>(r)]);
        live_index.push_back(r);
      }
    }
    SparseAssignmentSolver cold;
    cold.Reset(num_cols);
    const SparseAssignmentResult reference = cold.Solve(
        live_rows.data(), static_cast<int>(live_rows.size()), avail.data());
    ASSERT_EQ(prev.feasible, reference.feasible) << "trial " << trial;
    if (!reference.feasible) continue;
    ASSERT_GE(repaired, 0);
    if (repaired > 0) ++repaired_at_least_once;
    // Same optimal cost (near-equality: an equal-cost alternate optimum may
    // sum its edges in a different order).
    EXPECT_NEAR(prev.cost, reference.cost, 1e-9) << "trial " << trial;
    for (int r = 0; r < num_rows; ++r) {
      if (!row_live[static_cast<size_t>(r)]) {
        EXPECT_EQ(prev.row_to_col[static_cast<size_t>(r)], -1);
      } else {
        EXPECT_GE(prev.row_to_col[static_cast<size_t>(r)], 0);
      }
    }
  }
  EXPECT_GT(repaired_at_least_once, 0)
      << "the shrink never invalidated a matched edge; weak test";
}

// ---------------------------------------------------------------------------
// DASC_Greedy warm/cold equivalence.
// ---------------------------------------------------------------------------

algo::GreedyOptions ColdOptions(algo::GreedyOptions::MatchingBackend backend =
                                    algo::GreedyOptions::MatchingBackend::
                                        kHungarian) {
  algo::GreedyOptions options;
  options.backend = backend;
  options.incremental_cache = false;
  options.warm_start = false;
  options.parallel_solve_threshold = 0;
  return options;
}

TEST(GreedyWarmColdTest, SingleBatchBitIdenticalAcrossFamiliesAndBackends) {
  const testing::GenParams params;
  for (testing::Family family : testing::AllFamilies()) {
    for (uint64_t seed = 1; seed <= 25; ++seed) {
      const core::Instance instance =
          testing::GenerateCase(family, params, seed);
      const core::BatchProblem problem =
          core::BatchProblem::AllAt(instance, 0.0);
      for (auto backend :
           {algo::GreedyOptions::MatchingBackend::kHungarian,
            algo::GreedyOptions::MatchingBackend::kHopcroftKarp,
            algo::GreedyOptions::MatchingBackend::kAuction}) {
        algo::GreedyAllocator cold(ColdOptions(backend));
        const core::Assignment reference = cold.Allocate(problem);

        algo::GreedyOptions incremental_options;
        incremental_options.backend = backend;
        algo::GreedyAllocator incremental(incremental_options);
        const core::Assignment first = incremental.Allocate(problem);
        EXPECT_EQ(first.pairs(), reference.pairs())
            << testing::FamilyName(family) << " seed " << seed;
        // Re-allocating the identical batch replays from the warm store.
        const core::Assignment replay = incremental.Allocate(problem);
        EXPECT_EQ(replay.pairs(), reference.pairs())
            << testing::FamilyName(family) << " seed " << seed << " (warm)";
      }
    }
  }
}

TEST(GreedyWarmColdTest, DeltaRepairPreservesScore) {
  const testing::GenParams params;
  for (testing::Family family : testing::AllFamilies()) {
    for (uint64_t seed = 1; seed <= 25; ++seed) {
      const core::Instance instance =
          testing::GenerateCase(family, params, seed);
      const core::BatchProblem problem =
          core::BatchProblem::AllAt(instance, 0.0);
      algo::GreedyAllocator plain;
      algo::GreedyOptions delta_options;
      delta_options.delta_repair = true;
      algo::GreedyAllocator delta(delta_options);
      EXPECT_EQ(delta.Allocate(problem).size(), plain.Allocate(problem).size())
          << testing::FamilyName(family) << " seed " << seed;
    }
  }
}

TEST(GreedyWarmColdTest, MultiBatchSimulationIdentical) {
  testing::GenParams params;
  params.num_workers = {8, 14};
  params.num_tasks = {15, 30};
  sim::SimulatorOptions sim_options;
  sim_options.batch_interval = 2.0;
  for (testing::Family family : testing::AllFamilies()) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      const core::Instance instance =
          testing::GenerateCase(family, params, seed);
      const sim::Simulator simulator(instance, sim_options);

      algo::GreedyAllocator cold(ColdOptions());
      const sim::SimulationResult reference = simulator.Run(cold);
      // Cross-batch warm starts kick in here: later batches re-present
      // roots whose rows did not change.
      algo::GreedyAllocator warm;
      const sim::SimulationResult incremental = simulator.Run(warm);
      EXPECT_EQ(incremental.score, reference.score)
          << testing::FamilyName(family) << " seed " << seed;
      EXPECT_EQ(incremental.per_batch_scores, reference.per_batch_scores)
          << testing::FamilyName(family) << " seed " << seed;
      EXPECT_EQ(incremental.completed_tasks, reference.completed_tasks)
          << testing::FamilyName(family) << " seed " << seed;

      // G-G with its persistent warm-started seed allocator must match a
      // G-G whose seed runs every batch cold.
      algo::GameOptions gg_cold;
      gg_cold.greedy_init = true;
      gg_cold.greedy_options = ColdOptions();
      algo::GameAllocator gg_cold_alloc(gg_cold);
      const sim::SimulationResult gg_reference = simulator.Run(gg_cold_alloc);
      algo::GameOptions gg_warm;
      gg_warm.greedy_init = true;
      algo::GameAllocator gg_warm_alloc(gg_warm);
      const sim::SimulationResult gg_incremental = simulator.Run(gg_warm_alloc);
      EXPECT_EQ(gg_incremental.score, gg_reference.score)
          << testing::FamilyName(family) << " seed " << seed;
      EXPECT_EQ(gg_incremental.per_batch_scores, gg_reference.per_batch_scores)
          << testing::FamilyName(family) << " seed " << seed;
    }
  }
}

// The parallel solve phase must be bit-identical to the serial path at any
// thread count (per-chunk solver scratch, serial selection). Threshold 1
// forces the parallel path onto every size class.
TEST(GreedyWarmColdTest, ParallelSolveBitIdentical) {
  testing::GenParams params;
  params.num_workers = {30, 40};
  params.num_tasks = {50, 70};
  const int saved_threads = util::Threads();
  for (testing::Family family : testing::AllFamilies()) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      const core::Instance instance =
          testing::GenerateCase(family, params, seed);
      const core::BatchProblem problem =
          core::BatchProblem::AllAt(instance, 0.0);

      util::SetThreads(1);
      algo::GreedyOptions serial_options;
      serial_options.parallel_solve_threshold = 1;
      algo::GreedyAllocator serial(serial_options);
      const core::Assignment reference = serial.Allocate(problem);

      util::SetThreads(4);
      algo::GreedyOptions parallel_options;
      parallel_options.parallel_solve_threshold = 1;
      algo::GreedyAllocator parallel(parallel_options);
      const core::Assignment threaded = parallel.Allocate(problem);
      util::SetThreads(saved_threads);

      EXPECT_EQ(threaded.pairs(), reference.pairs())
          << testing::FamilyName(family) << " seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Observability: reuse-split counters and the delta-repair histogram.
// ---------------------------------------------------------------------------

TEST(GreedyWarmColdTest, ReuseCountersSplitWarmFromCold) {
  testing::GenParams params;
  params.num_workers = {10, 14};
  params.num_tasks = {20, 30};
  const core::Instance instance =
      testing::GenerateCase(testing::Family::kUniform, params, 3);
  const core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);

#if DASC_METRICS_ENABLED
  util::Counter* warm_counter =
      util::GlobalMetrics().GetCounter("matching_warm_start_hits_total");
  util::Counter* cold_counter =
      util::GlobalMetrics().GetCounter("matching_cold_solves_total");
  const int64_t warm_before = warm_counter->value();
  const int64_t cold_before = cold_counter->value();
#endif  // DASC_METRICS_ENABLED

  algo::GreedyAllocator greedy;
  greedy.Allocate(problem);
  const int64_t first_warm = greedy.last_warm_hits();
  const int64_t first_cold = greedy.last_cold_solves();
  EXPECT_GT(first_cold, 0);
  greedy.Allocate(problem);
  // The replay's first evaluation of every root hits the warm store.
  EXPECT_GT(greedy.last_warm_hits(), 0);
#if DASC_METRICS_ENABLED
  // Global counters are flushed once per Allocate and must agree exactly
  // with the per-run accessors.
  EXPECT_EQ(warm_counter->value() - warm_before,
            first_warm + greedy.last_warm_hits());
  EXPECT_EQ(cold_counter->value() - cold_before,
            first_cold + greedy.last_cold_solves());
#endif  // DASC_METRICS_ENABLED

  // A cold-configured allocator never reports warm activity.
  algo::GreedyAllocator cold(ColdOptions());
  cold.Allocate(problem);
  EXPECT_EQ(cold.last_warm_hits(), 0);
  EXPECT_GT(cold.last_cold_solves(), 0);
}

TEST(GreedyWarmColdTest, DeltaRepairHistogramRecords) {
  testing::GenParams params;
  params.num_workers = {12, 16};
  params.num_tasks = {25, 35};
#if DASC_METRICS_ENABLED
  util::Histogram* histogram =
      util::GlobalMetrics().GetHistogram("matching_delta_repair_ms");
  const int64_t before = histogram->count();
#endif  // DASC_METRICS_ENABLED
  algo::GreedyOptions options;
  options.delta_repair = true;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const core::Instance instance =
        testing::GenerateCase(testing::Family::kUniform, params, seed);
    const core::BatchProblem problem =
        core::BatchProblem::AllAt(instance, 0.0);
    algo::GreedyAllocator delta(options);
    delta.Allocate(problem);
  }
#if DASC_METRICS_ENABLED
  EXPECT_GT(histogram->count(), before)
      << "no commit ever invalidated a cached feasible attempt; the repair "
         "path went unexercised";
#endif  // DASC_METRICS_ENABLED
}

}  // namespace
}  // namespace dasc
