// Shared fixtures for DA-SC tests: compact instance builders, the paper's
// Example 1, and a small random-instance generator for property tests.
#ifndef DASC_TESTS_TEST_UTIL_H_
#define DASC_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "core/instance.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dasc::testing {

// One random byte mutation (flip to printable / delete / duplicate) for the
// pseudo-fuzz tests. Safe on empty buffers: a delete that empties the string
// is fine, and mutating an already-empty string inserts a byte instead —
// callers must not index into `s` or compute size()-1 themselves (that
// underflow is exactly the bug this helper centralizes the guard for).
inline void MutateByte(util::Rng& rng, std::string& s) {
  if (s.empty()) {
    s.push_back(static_cast<char>(rng.UniformInt(32, 126)));
    return;
  }
  const auto pos = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(s.size()) - 1));
  switch (rng.UniformInt(0, 2)) {
    case 0:  // flip to random printable byte
      s[pos] = static_cast<char>(rng.UniformInt(32, 126));
      break;
    case 1:  // delete a byte
      s.erase(pos, 1);
      break;
    default:  // duplicate a byte
      s.insert(pos, 1, s[pos]);
      break;
  }
}

// Worker present from t=0 for a long time, fast and far-ranging by default.
inline core::Worker MakeWorker(core::WorkerId id, double x, double y,
                               std::vector<core::SkillId> skills,
                               double start = 0.0, double wait = 1e6,
                               double velocity = 1e3,
                               double max_distance = 1e6) {
  core::Worker w;
  w.id = id;
  w.location = {x, y};
  w.start_time = start;
  w.wait_time = wait;
  w.velocity = velocity;
  w.max_distance = max_distance;
  w.skills = std::move(skills);
  return w;
}

inline core::Task MakeTask(core::TaskId id, double x, double y,
                           core::SkillId skill,
                           std::vector<core::TaskId> deps = {},
                           double start = 0.0, double wait = 1e6) {
  core::Task t;
  t.id = id;
  t.location = {x, y};
  t.start_time = start;
  t.wait_time = wait;
  t.required_skill = skill;
  t.dependencies = std::move(deps);
  return t;
}

// The paper's Example 1 (Tables I & II): skills ψ1..ψ4 -> 0..3.
// Optimal dependency-aware score is 3; dependency-oblivious Closest gets 1.
inline core::Instance Example1() {
  std::vector<core::Worker> workers = {
      MakeWorker(0, 2, 1, {0, 1}),     // w1: ψ1, ψ2
      MakeWorker(1, 3, 3, {3}),        // w2: ψ4
      MakeWorker(2, 5, 3, {0, 1, 2}),  // w3: ψ1, ψ2, ψ3
  };
  std::vector<core::Task> tasks = {
      MakeTask(0, 4, 1, 0),             // t1: ψ1
      MakeTask(1, 2, 2, 1, {0}),        // t2: ψ2, dep {t1}
      MakeTask(2, 5, 2, 2, {0, 1}),     // t3: ψ3, dep {t1, t2}
      MakeTask(3, 3, 4, 3),             // t4: ψ4
      MakeTask(4, 1, 2, 2, {3}),        // t5: ψ3, dep {t4}
  };
  auto instance = core::Instance::Create(std::move(workers), std::move(tasks),
                                         /*num_skills=*/4);
  DASC_CHECK(instance.ok()) << instance.status().ToString();
  return std::move(*instance);
}

struct RandomInstanceParams {
  int num_workers = 8;
  int num_tasks = 12;
  int num_skills = 4;
  int max_worker_skills = 3;
  int max_direct_deps = 3;
  double area = 1.0;
  // Generous defaults keep most pairs feasible; tighten to stress deadlines.
  double worker_wait = 1e6;
  double task_wait = 1e6;
  double velocity = 1e3;
  double max_distance = 1e6;
};

// Random valid instance (acyclic deps by construction: deps point to lower
// ids).
inline core::Instance RandomInstance(uint64_t seed,
                                     RandomInstanceParams params = {}) {
  util::Rng rng(seed);
  std::vector<core::Worker> workers;
  for (int i = 0; i < params.num_workers; ++i) {
    const int count =
        static_cast<int>(rng.UniformInt(1, params.max_worker_skills));
    std::vector<core::SkillId> skills;
    for (int k = 0; k < count; ++k) {
      skills.push_back(
          static_cast<core::SkillId>(rng.UniformInt(0, params.num_skills - 1)));
    }
    workers.push_back(MakeWorker(i, rng.UniformDouble(0, params.area),
                                 rng.UniformDouble(0, params.area), skills,
                                 0.0, params.worker_wait, params.velocity,
                                 params.max_distance));
  }
  std::vector<core::Task> tasks;
  for (int i = 0; i < params.num_tasks; ++i) {
    std::vector<core::TaskId> deps;
    if (i > 0) {
      const int count =
          static_cast<int>(rng.UniformInt(0, params.max_direct_deps));
      for (int k = 0; k < count; ++k) {
        deps.push_back(static_cast<core::TaskId>(rng.UniformInt(0, i - 1)));
      }
    }
    tasks.push_back(MakeTask(
        i, rng.UniformDouble(0, params.area), rng.UniformDouble(0, params.area),
        static_cast<core::SkillId>(rng.UniformInt(0, params.num_skills - 1)),
        deps, 0.0, params.task_wait));
  }
  auto instance = core::Instance::Create(std::move(workers), std::move(tasks),
                                         params.num_skills);
  DASC_CHECK(instance.ok()) << instance.status().ToString();
  return std::move(*instance);
}

}  // namespace dasc::testing

#endif  // DASC_TESTS_TEST_UTIL_H_
