// Round-trip and schema-handling tests for the run-report writer
// (sim/run_report.h) and reader (sim/run_report_reader.h).
#include "sim/run_report.h"
#include "sim/run_report_reader.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/metrics_timeseries.h"
#include "sim/watchdog.h"
#include "util/metrics.h"

namespace dasc::sim {
namespace {

RunStats SampleStats(const std::string& algorithm, int base) {
  RunStats s;
  s.algorithm = algorithm;
  s.score = base + 1;
  s.millis = base + 0.25;
  s.batches = base + 2;
  s.nonempty_batches = base + 3;
  s.empty_batches = base + 4;
  s.completed_tasks = base + 5;
  s.wasted_dispatches = base + 6;
  s.p50_batch_ms = base + 0.5;
  s.p95_batch_ms = base + 0.75;
  s.max_batch_ms = base + 0.875;
  s.mean_assignment_latency = base + 1.5;
  s.last_completion_time = base + 2.5;
  s.audited_batches = base + 7;
  s.audit_violations = 0;
  s.min_batch_gap = 0.625;
  s.mean_batch_gap = 0.75;
  s.approx_ratio = 0.875;
  s.total_tasks = base + 8;
  s.ledger_mismatches = 0;
  return s;
}

// A small but fully consistent ledger block: 3 tasks, 2 served, 1 expired
// with a dependency_unmet final reason.
void AttachSampleLedger(RunStats* s) {
  s->total_tasks = 3;
  s->completed_tasks = 2;
  s->unserved_by_reason.assign(static_cast<size_t>(kNumUnservedReasons), 0);
  s->unserved_by_reason[static_cast<size_t>(UnservedReason::kServed)] = 2;
  s->unserved_by_reason[static_cast<size_t>(UnservedReason::kDependencyUnmet)] =
      1;
  s->ledger.clear();
  for (int t = 0; t < 3; ++t) {
    TaskLedgerEntry e;
    e.task = t;
    e.arrival = t * 2.0;
    e.expiry = t * 2.0 + 10.0;
    e.dep_depth = t;
    e.batches_open = 2 + t;
    e.candidate_batches = 1 + t;
    e.first_open_batch = t;
    e.last_open_batch = t + 2;
    s->ledger.push_back(e);
  }
  s->ledger[0].completed = true;
  s->ledger[0].reason = UnservedReason::kServed;
  s->ledger[0].assigned_batch = 1;
  s->ledger[0].completion_time = 4.5;
  s->ledger[1].completed = true;
  s->ledger[1].reason = UnservedReason::kServed;
  s->ledger[1].assigned_batch = 2;
  s->ledger[1].completion_time = 7.25;
  s->ledger[2].reason = UnservedReason::kDependencyUnmet;
  s->ledger[2].camp_expired = true;
}

// Writer -> reader -> field-for-field equality, including the registry dump
// (per-bucket histogram counts) and an instance string that needs JSON
// escaping.
TEST(RunReportRoundTrip, FieldForField) {
  util::MetricsRegistry registry;
  registry.GetCounter("alpha_total")->Increment(7);
  registry.GetGauge("beta_depth")->Set(2.5);
  util::Histogram* h =
      registry.GetHistogram("gamma_ms", util::HistogramOptions{0.5, 2.0, 4});
  h->Observe(0.25);
  h->Observe(3.0);
  h->Observe(1e6);  // lands in the +Inf overflow bucket

  RunReportHeader header;
  header.kind = "simulate";
  header.instance = "path with \"quotes\", a \\ backslash and a\nnewline";
  const std::vector<RunStats> written = {SampleStats("greedy", 10),
                                         SampleStats("gg", 20)};

  std::ostringstream out;
  WriteRunReportJsonl(out, header, written, registry);
  std::istringstream in(out.str());
  auto report = ParseRunReport(in);
  ASSERT_TRUE(report.ok()) << report.status().message();

  EXPECT_EQ(report->schema_version, 5);
  EXPECT_EQ(report->header.kind, header.kind);
  EXPECT_EQ(report->header.instance, header.instance);
  EXPECT_EQ(report->declared_runs, 2);
  ASSERT_EQ(report->stats.size(), written.size());
  for (size_t i = 0; i < written.size(); ++i) {
    const RunStats& a = written[i];
    const RunStats& b = report->stats[i];
    EXPECT_EQ(b.algorithm, a.algorithm);
    EXPECT_EQ(b.score, a.score);
    EXPECT_EQ(b.batches, a.batches);
    EXPECT_EQ(b.nonempty_batches, a.nonempty_batches);
    EXPECT_EQ(b.empty_batches, a.empty_batches);
    EXPECT_EQ(b.completed_tasks, a.completed_tasks);
    EXPECT_EQ(b.wasted_dispatches, a.wasted_dispatches);
    EXPECT_DOUBLE_EQ(b.millis, a.millis);
    EXPECT_DOUBLE_EQ(b.p50_batch_ms, a.p50_batch_ms);
    EXPECT_DOUBLE_EQ(b.p95_batch_ms, a.p95_batch_ms);
    EXPECT_DOUBLE_EQ(b.max_batch_ms, a.max_batch_ms);
    EXPECT_DOUBLE_EQ(b.mean_assignment_latency, a.mean_assignment_latency);
    EXPECT_DOUBLE_EQ(b.last_completion_time, a.last_completion_time);
    EXPECT_EQ(b.audited_batches, a.audited_batches);
    EXPECT_EQ(b.audit_violations, a.audit_violations);
    EXPECT_DOUBLE_EQ(b.min_batch_gap, a.min_batch_gap);
    EXPECT_DOUBLE_EQ(b.mean_batch_gap, a.mean_batch_gap);
    EXPECT_DOUBLE_EQ(b.approx_ratio, a.approx_ratio);
    EXPECT_EQ(b.total_tasks, a.total_tasks);
    EXPECT_EQ(b.ledger_mismatches, a.ledger_mismatches);
  }

  const util::MetricsSnapshot want = registry.Snapshot();
  const util::MetricsSnapshot& got = report->metrics;
  ASSERT_EQ(got.counters.size(), want.counters.size());
  EXPECT_EQ(got.counters[0].first, "alpha_total");
  EXPECT_EQ(got.counters[0].second, 7);
  ASSERT_EQ(got.gauges.size(), want.gauges.size());
  EXPECT_EQ(got.gauges[0].first, "beta_depth");
  EXPECT_DOUBLE_EQ(got.gauges[0].second, 2.5);
  ASSERT_EQ(got.histograms.size(), 1u);
  const util::HistogramSnapshot& wh = want.histograms[0];
  const util::HistogramSnapshot& gh = got.histograms[0];
  EXPECT_EQ(gh.name, wh.name);
  EXPECT_EQ(gh.count, wh.count);
  EXPECT_DOUBLE_EQ(gh.sum, wh.sum);
  ASSERT_EQ(gh.bounds.size(), wh.bounds.size());
  for (size_t i = 0; i < wh.bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(gh.bounds[i], wh.bounds[i]) << "bound " << i;
  }
  ASSERT_EQ(gh.counts, wh.counts);  // per-bucket, overflow bucket last
}

TEST(RunReportRoundTrip, FindStatsLooksUpByAlgorithm) {
  util::MetricsRegistry registry;
  std::ostringstream out;
  WriteRunReportJsonl(out, {"bench", "x.dasc"}, {SampleStats("gg", 1)},
                      registry);
  std::istringstream in(out.str());
  auto report = ParseRunReport(in);
  ASSERT_TRUE(report.ok()) << report.status().message();
  ASSERT_NE(FindStats(*report, "gg"), nullptr);
  EXPECT_EQ(FindStats(*report, "gg")->score, 2);
  EXPECT_EQ(FindStats(*report, "closest"), nullptr);
}

// The per-task ledger block (one "ledger" summary line plus one "task" line
// per task) survives a writer -> reader round trip field for field.
TEST(RunReportRoundTrip, LedgerBlockRoundTrips) {
  util::MetricsRegistry registry;
  RunStats written = SampleStats("gg", 1);
  AttachSampleLedger(&written);

  std::ostringstream out;
  WriteRunReportJsonl(out, {"simulate", "dep.dasc"}, {written}, registry);
  EXPECT_NE(out.str().find("\"type\":\"ledger\""), std::string::npos);
  EXPECT_NE(out.str().find("\"reason\":\"dependency_unmet\""),
            std::string::npos);

  std::istringstream in(out.str());
  auto report = ParseRunReport(in);
  ASSERT_TRUE(report.ok()) << report.status().message();
  ASSERT_EQ(report->stats.size(), 1u);
  const RunStats& got = report->stats[0];
  ASSERT_EQ(got.unserved_by_reason.size(),
            static_cast<size_t>(kNumUnservedReasons));
  EXPECT_EQ(got.unserved_by_reason, written.unserved_by_reason);
  ASSERT_EQ(got.ledger.size(), written.ledger.size());
  for (size_t i = 0; i < written.ledger.size(); ++i) {
    const TaskLedgerEntry& a = written.ledger[i];
    const TaskLedgerEntry& b = got.ledger[i];
    EXPECT_EQ(b.task, a.task);
    EXPECT_EQ(b.reason, a.reason) << "task " << a.task;
    EXPECT_EQ(b.completed, a.completed);
    EXPECT_EQ(b.camp_expired, a.camp_expired);
    EXPECT_DOUBLE_EQ(b.arrival, a.arrival);
    EXPECT_DOUBLE_EQ(b.expiry, a.expiry);
    EXPECT_EQ(b.dep_depth, a.dep_depth);
    EXPECT_EQ(b.batches_open, a.batches_open);
    EXPECT_EQ(b.candidate_batches, a.candidate_batches);
    EXPECT_EQ(b.first_open_batch, a.first_open_batch);
    EXPECT_EQ(b.last_open_batch, a.last_open_batch);
    EXPECT_EQ(b.assigned_batch, a.assigned_batch);
    EXPECT_DOUBLE_EQ(b.completion_time, a.completion_time);
  }
}

// The /4 telemetry blocks — sketch lines in the registry dump, the
// timeseries block, and the anomalies block — survive a writer -> reader
// round trip.
TEST(RunReportRoundTrip, TelemetryBlocksRoundTrip) {
  util::MetricsRegistry registry;
  registry.GetCounter("alpha_total")->Increment(3);
  util::WindowedQuantileSketch* sketch =
      registry.GetSketch("delta_ms_window", /*window_intervals=*/4);
  for (int i = 1; i <= 100; ++i) sketch->Observe(static_cast<double>(i));

  MetricsTimeSeries timeseries(/*max_samples=*/8);
  registry.GetCounter("alpha_total")->Increment(2);
  timeseries.RecordBatch(/*batch_seq=*/0, /*sim_now=*/5.0, registry);
  registry.GetCounter("alpha_total")->Increment(4);
  timeseries.RecordBatch(/*batch_seq=*/1, /*sim_now=*/10.0, registry);

  WatchdogOptions wd_options;
  wd_options.heartbeat_timeout_ms = 1e-6;  // any measurable age breaches
  StallWatchdog watchdog(wd_options, &registry);
  watchdog.Heartbeat(7);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_GE(watchdog.CheckOnce(), 1);

  RunReportExtras extras;
  extras.timeseries = &timeseries;
  extras.watchdog = &watchdog;
  std::ostringstream out;
  WriteRunReportJsonl(out, {"simulate", "a.dasc"}, {SampleStats("gg", 1)},
                      registry, extras);

  std::istringstream in(out.str());
  auto report = ParseRunReport(in);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->schema_version, 5);

  ASSERT_EQ(report->metrics.sketches.size(), 1u);
  const util::SketchSnapshot& got = report->metrics.sketches[0];
  const util::SketchSnapshot want = sketch->Snapshot();
  EXPECT_EQ(got.name, want.name);
  EXPECT_DOUBLE_EQ(got.relative_error, want.relative_error);
  EXPECT_EQ(got.window_intervals, want.window_intervals);
  EXPECT_EQ(got.window_count, want.window_count);
  EXPECT_DOUBLE_EQ(got.window_sum, want.window_sum);
  EXPECT_EQ(got.cumulative_count, want.cumulative_count);
  ASSERT_EQ(got.window_quantiles.size(), want.window_quantiles.size());
  for (size_t i = 0; i < want.window_quantiles.size(); ++i) {
    EXPECT_DOUBLE_EQ(got.window_quantiles[i].q, want.window_quantiles[i].q);
    // Values round-trip through %.12g JSON serialization, so compare to a
    // matching relative tolerance rather than bit-exactly.
    EXPECT_NEAR(got.window_quantiles[i].value, want.window_quantiles[i].value,
                1e-11 * std::abs(want.window_quantiles[i].value));
  }

  ASSERT_TRUE(report->timeseries.present);
  EXPECT_EQ(report->timeseries.recorded, 2);
  EXPECT_EQ(report->timeseries.dropped, 0);
  EXPECT_EQ(report->timeseries.max_samples, 8);
  ASSERT_EQ(report->timeseries.samples.size(), 2u);
  ASSERT_EQ(report->timeseries.columns, timeseries.Columns());
  const size_t alpha = static_cast<size_t>(
      std::find(report->timeseries.columns.begin(),
                report->timeseries.columns.end(),
                "alpha_total") -
      report->timeseries.columns.begin());
  ASSERT_LT(alpha, report->timeseries.columns.size());
  EXPECT_EQ(report->timeseries.samples[0].batch_seq, 0);
  EXPECT_DOUBLE_EQ(report->timeseries.samples[0].sim_now, 5.0);
  EXPECT_DOUBLE_EQ(report->timeseries.samples[0].values[alpha], 5.0);
  EXPECT_DOUBLE_EQ(report->timeseries.samples[1].values[alpha], 4.0);

  ASSERT_TRUE(report->anomalies.present);
  EXPECT_GE(report->anomalies.count, 1);
  ASSERT_GE(report->anomalies.entries.size(), 1u);
  EXPECT_EQ(report->anomalies.entries[0].kind, "heartbeat_stall");
  EXPECT_EQ(report->anomalies.entries[0].batch_seq, 7);
  EXPECT_GE(report->anomalies.by_kind.at("heartbeat_stall"), 1);
}

// The retention bound: once the ring is full, every further RecordBatch
// evicts the oldest sample and counts it in dropped(). The retained window
// is exactly the newest max_samples batches, and eviction must not corrupt
// the delta baseline — each surviving sample still carries its own batch's
// counter increment, not an accumulated smear.
TEST(MetricsTimeSeriesRetention, DroppedSamplesAreCountedAndDeltasSurvive) {
  util::MetricsRegistry registry;
  MetricsTimeSeries timeseries(/*max_samples=*/8);
  constexpr int kBatches = 20;
  for (int batch = 0; batch < kBatches; ++batch) {
    // Batch b increments by b+1, so every sample's delta identifies it.
    registry.GetCounter("beta_total")->Increment(batch + 1);
    timeseries.RecordBatch(batch, /*sim_now=*/batch * 2.0, registry);
  }

  EXPECT_EQ(timeseries.recorded(), kBatches);
  EXPECT_EQ(timeseries.dropped(), kBatches - 8);
  const std::vector<TimeSeriesSample> samples = timeseries.Samples();
  ASSERT_EQ(samples.size(), 8u);
  const std::vector<std::string> columns = timeseries.Columns();
  const size_t beta = static_cast<size_t>(
      std::find(columns.begin(), columns.end(), "beta_total") -
      columns.begin());
  ASSERT_LT(beta, columns.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    const int batch = kBatches - 8 + static_cast<int>(i);
    EXPECT_EQ(samples[i].batch_seq, batch);
    EXPECT_DOUBLE_EQ(samples[i].sim_now, batch * 2.0);
    ASSERT_GT(samples[i].values.size(), beta);
    EXPECT_DOUBLE_EQ(samples[i].values[beta],
                     static_cast<double>(batch + 1));
  }

  // The serialized block reports the same accounting, so a report reader
  // can tell "8 samples because the run was short" from "8 samples because
  // 12 were evicted".
  std::ostringstream out;
  timeseries.WriteJsonl(out);
  EXPECT_NE(out.str().find("\"recorded\":20"), std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("\"dropped\":12"), std::string::npos);
  EXPECT_NE(out.str().find("\"samples\":8"), std::string::npos);
}

// A task line whose reason is outside the closed taxonomy must fail parsing.
TEST(RunReportSchema, RejectsUnknownLedgerReason) {
  util::MetricsRegistry registry;
  RunStats written = SampleStats("gg", 1);
  AttachSampleLedger(&written);
  std::ostringstream out;
  WriteRunReportJsonl(out, {"simulate", "dep.dasc"}, {written}, registry);
  std::string text = out.str();
  const size_t pos = text.find("\"reason\":\"dependency_unmet\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 27, "\"reason\":\"cosmic_rays_maybe\"");
  std::istringstream in(text);
  auto report = ParseRunReport(in);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("cosmic_rays_maybe"),
            std::string::npos)
      << report.status().message();
}

// A /1 report (no empty-batch or audit fields) still parses; the v2 fields
// default to zero.
TEST(RunReportSchema, AcceptsVersion1WithDefaults) {
  const std::string v1 =
      "{\"type\":\"run\",\"schema\":\"dasc-run-report/1\",\"kind\":\"sim\","
      "\"instance\":\"a.dasc\",\"runs\":1}\n"
      "{\"type\":\"stats\",\"algorithm\":\"greedy\",\"score\":5,"
      "\"batches\":3,\"nonempty_batches\":2,\"completed_tasks\":4,"
      "\"wasted_dispatches\":0,\"allocator_ms\":1.5,\"p50_batch_ms\":0.5,"
      "\"p95_batch_ms\":0.7,\"max_batch_ms\":0.9,"
      "\"mean_assignment_latency\":2.5,\"last_completion_time\":9}\n";
  std::istringstream in(v1);
  auto report = ParseRunReport(in);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->schema_version, 1);
  ASSERT_EQ(report->stats.size(), 1u);
  EXPECT_EQ(report->stats[0].score, 5);
  EXPECT_EQ(report->stats[0].empty_batches, 0);
  EXPECT_EQ(report->stats[0].audited_batches, 0);
  EXPECT_DOUBLE_EQ(report->stats[0].approx_ratio, 0.0);
}

TEST(RunReportSchema, RejectsUnknownVersionNamingSupportedOnes) {
  const std::string v9 =
      "{\"type\":\"run\",\"schema\":\"dasc-run-report/9\",\"kind\":\"sim\","
      "\"instance\":\"a.dasc\",\"runs\":0}\n";
  std::istringstream in(v9);
  auto report = ParseRunReport(in);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("dasc-run-report/1"),
            std::string::npos)
      << report.status().message();
  EXPECT_NE(report.status().message().find("dasc-run-report/5"),
            std::string::npos)
      << report.status().message();
}

// A /2 stats line missing a v2-required field must fail, not half-parse.
TEST(RunReportSchema, Version2RequiresAuditFields) {
  const std::string v2 =
      "{\"type\":\"run\",\"schema\":\"dasc-run-report/2\",\"kind\":\"sim\","
      "\"instance\":\"a.dasc\",\"runs\":1}\n"
      "{\"type\":\"stats\",\"algorithm\":\"greedy\",\"score\":5,"
      "\"batches\":3,\"nonempty_batches\":2,\"completed_tasks\":4,"
      "\"wasted_dispatches\":0,\"allocator_ms\":1.5,\"p50_batch_ms\":0.5,"
      "\"p95_batch_ms\":0.7,\"max_batch_ms\":0.9,"
      "\"mean_assignment_latency\":2.5,\"last_completion_time\":9}\n";
  std::istringstream in(v2);
  auto report = ParseRunReport(in);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("empty_batches"),
            std::string::npos)
      << report.status().message();
}

TEST(RunReportSchema, RejectsDeclaredRunsMismatch) {
  util::MetricsRegistry registry;
  std::ostringstream out;
  WriteRunReportJsonl(out, {"sim", "a.dasc"}, {SampleStats("greedy", 1)},
                      registry);
  std::string text = out.str();
  const size_t pos = text.find("\"runs\":1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 8, "\"runs\":3");
  std::istringstream in(text);
  auto report = ParseRunReport(in);
  ASSERT_FALSE(report.ok());
}

TEST(RunReportSchema, RejectsMissingFile) {
  auto report = ReadRunReportFile("/definitely/not/a/report.jsonl");
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("report.jsonl"), std::string::npos);
}

}  // namespace
}  // namespace dasc::sim
