// Tests for the DASC_Game utility variants and their dynamics properties.
#include <gtest/gtest.h>

#include "algo/game.h"
#include "algo/greedy.h"
#include "core/assignment.h"
#include "test_util.h"

namespace dasc::algo {
namespace {

using core::BatchProblem;
using core::Instance;
using testing::MakeTask;
using testing::MakeWorker;

GameOptions WithVariant(GameOptions::UtilityVariant variant,
                        uint64_t seed = 1) {
  GameOptions options;
  options.utility_variant = variant;
  options.seed = seed;
  return options;
}

// A workload where the literal Eq. 3 dynamics abandon chains: one 3-chain
// plus dependency-free decoys, exactly enough workers for the chain.
Instance ChainWithDecoys() {
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}), MakeWorker(1, 0, 0, {0}),
       MakeWorker(2, 0, 0, {0})},
      {MakeTask(0, 0, 0, 0),                 // chain head
       MakeTask(1, 0, 0, 0, {0}),            // interior
       MakeTask(2, 0, 0, 0, {1}),            // tail
       MakeTask(3, 1, 1, 0),                 // decoy (dep-free)
       MakeTask(4, 1, 0, 0)},                // decoy (dep-free)
      1);
  DASC_CHECK(instance.ok());
  return std::move(*instance);
}

TEST(GameVariantTest, MarginalKeepsGreedySeedValue) {
  // With marginal utilities Φ = Sum(M): best response can only improve on
  // the greedy seed's valid score.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const Instance instance = testing::RandomInstance(seed);
    const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
    GreedyAllocator greedy;
    const int greedy_score =
        core::ValidScore(problem, greedy.Allocate(problem));
    GameOptions options = WithVariant(GameOptions::UtilityVariant::kMarginal,
                                      seed);
    options.greedy_init = true;
    GameAllocator game(options);
    const int game_score = core::ValidScore(problem, game.Allocate(problem));
    EXPECT_GE(game_score, greedy_score) << "seed " << seed;
  }
}

TEST(GameVariantTest, MarginalSolvesChainWithDecoys) {
  const Instance instance = ChainWithDecoys();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  GameAllocator game(WithVariant(GameOptions::UtilityVariant::kMarginal));
  EXPECT_EQ(core::ValidScore(problem, game.Allocate(problem)), 3);
}

TEST(GameVariantTest, Eq3LiteralAbandonsChainTail) {
  // Documented behavior of the literal formula: a free dependency-free task
  // pays 1 while a chain task pays (α-1)/α, so the chain tail is abandoned
  // for a decoy and at most 2 + decoys... with 3 workers and 2 decoys the
  // equilibrium covers head + two decoys (score 3 only if the chain is kept
  // intact, which Eq. 3 does not do deterministically — assert the score is
  // never *above* the marginal variant's).
  const Instance instance = ChainWithDecoys();
  const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
  GameAllocator eq3(WithVariant(GameOptions::UtilityVariant::kPaperEq3));
  GameAllocator marginal(
      WithVariant(GameOptions::UtilityVariant::kMarginal));
  EXPECT_LE(core::ValidScore(problem, eq3.Allocate(problem)),
            core::ValidScore(problem, marginal.Allocate(problem)));
}

TEST(GameVariantTest, AllVariantsProduceValidAssignments) {
  for (auto variant : {GameOptions::UtilityVariant::kMarginal,
                       GameOptions::UtilityVariant::kUniformSelf,
                       GameOptions::UtilityVariant::kPaperEq3}) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      const Instance instance = testing::RandomInstance(seed + 100);
      const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
      GameAllocator game(WithVariant(variant, seed));
      const core::Assignment assignment = game.Allocate(problem);
      EXPECT_TRUE(core::ValidateAssignment(problem, assignment).ok());
      // The allocator filters invalid pairs itself (Algorithm 3 last step).
      EXPECT_EQ(core::ValidScore(problem, assignment), assignment.size());
    }
  }
}

TEST(GameVariantTest, VariantsConvergeWithinCap) {
  for (auto variant : {GameOptions::UtilityVariant::kMarginal,
                       GameOptions::UtilityVariant::kUniformSelf,
                       GameOptions::UtilityVariant::kPaperEq3}) {
    const Instance instance = testing::RandomInstance(55);
    const BatchProblem problem = BatchProblem::AllAt(instance, 0.0);
    GameAllocator game(WithVariant(variant));
    game.Allocate(problem);
    EXPECT_LT(game.last_rounds(), 200) << "variant did not converge";
  }
}

TEST(GameVariantTest, MarginalIgnoresContendedTasks) {
  // Two workers, one shared feasible task plus a private one for worker 1.
  // Marginal utility of joining the occupied task is 0, so worker 1 must
  // take its private task.
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}), MakeWorker(1, 0, 0, {0, 1})},
      {MakeTask(0, 0, 0, 0), MakeTask(1, 1, 1, 1)}, 2);
  ASSERT_TRUE(instance.ok());
  const BatchProblem problem = BatchProblem::AllAt(*instance, 0.0);
  GameAllocator game(WithVariant(GameOptions::UtilityVariant::kMarginal, 3));
  const core::Assignment assignment = game.Allocate(problem);
  EXPECT_EQ(core::ValidScore(problem, assignment), 2);
}

TEST(GameVariantTest, MarginalCountsUnblockedDependents) {
  // Worker 0 can do head t0 or decoy t2; worker 1 can only do t1 (depends on
  // t0). If w1 already contends t1, w0's marginal utility of t0 is 2 (t0 +
  // unblocking t1) vs 1 for the decoy: w0 must pick the head.
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}), MakeWorker(1, 0, 0, {1})},
      {MakeTask(0, 0, 0, 0), MakeTask(1, 0, 0, 1, {0}),
       MakeTask(2, 1, 1, 0)},
      2);
  ASSERT_TRUE(instance.ok());
  const BatchProblem problem = BatchProblem::AllAt(*instance, 0.0);
  GameAllocator game(WithVariant(GameOptions::UtilityVariant::kMarginal, 9));
  const core::Assignment assignment = game.Allocate(problem);
  EXPECT_EQ(core::ValidScore(problem, assignment), 2);
  bool head_assigned = false;
  for (const auto& [w, t] : assignment.pairs()) head_assigned |= (t == 0);
  EXPECT_TRUE(head_assigned);
}

}  // namespace
}  // namespace dasc::algo
