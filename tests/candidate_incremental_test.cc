// Tests for the incrementally maintained candidate view (DESIGN.md §17).
//
// The contract under test is *bit-identity*: after every Update the
// published CandidateSets/CandidateEdges must equal what the from-scratch
// build would produce — same orders, same travel-time bits — so every
// allocator downstream behaves identically. Each scenario therefore runs
// the full simulator twice (incremental + differential verifier vs plain
// scratch) and asserts zero conformance mismatches plus identical
// allocation outcomes; the view-level tests additionally pin the escape
// hatch and counter semantics, and the injection test proves the
// differential layer actually catches a dropped retraction.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "algo/baselines.h"
#include "algo/greedy.h"
#include "core/batch.h"
#include "core/candidate_view.h"
#include "core/instance.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "testing/generator.h"

namespace dasc::sim {
namespace {

using testing::MakeTask;
using testing::MakeWorker;

SimulatorOptions IncrementalOptions(SimulatorOptions options) {
  options.candidates = SimulatorOptions::CandidateMode::kIncremental;
  options.verify_candidates = true;
  return options;
}

// Runs `instance` once per mode with a fresh allocator of type A and
// asserts: the differential verifier checked at least one batch and found
// no divergence, and the two runs' allocation outcomes are identical.
template <typename A>
void ExpectModesEquivalent(const core::Instance& instance,
                           const SimulatorOptions& options,
                           int min_checked_batches = 1) {
  A scratch_alloc;
  Simulator scratch_sim(instance, options);
  const SimulationResult scratch = scratch_sim.Run(scratch_alloc);

  A incremental_alloc;
  Simulator incremental_sim(instance, IncrementalOptions(options));
  const SimulationResult incremental = incremental_sim.Run(incremental_alloc);

  EXPECT_GE(incremental.audit.candidate_checks, min_checked_batches);
  EXPECT_EQ(incremental.audit.candidate_mismatches, 0)
      << incremental.audit.first_candidate_mismatch;
  EXPECT_EQ(incremental.score, scratch.score);
  EXPECT_EQ(incremental.completed_tasks, scratch.completed_tasks);
  EXPECT_EQ(incremental.wasted_dispatches, scratch.wasted_dispatches);
  EXPECT_EQ(incremental.per_batch_scores, scratch.per_batch_scores);
}

// A dependency-oblivious allocator assigns w0 to t0 although t0's
// dependency (t1, a skill nobody holds) can never be met: w0 travels there
// and camps (kWait). When t0 expires the camp dissolves and w0 re-enters
// the market *at t0's location* — the view must pick up the release as a
// worker-state change (retract + re-probe), and w0 must then serve the
// late-arriving t2.
TEST(CandidateIncrementalTest, WorkerReleasedMidCamp) {
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}, /*start=*/0.0, /*wait=*/100.0,
                  /*velocity=*/10.0, /*max_distance=*/100.0)},
      {MakeTask(0, 3, 0, /*skill=*/0, /*deps=*/{1}, /*start=*/0.0,
                /*wait=*/5.0),
       MakeTask(1, 1, 1, /*skill=*/1, /*deps=*/{}, /*start=*/0.0,
                /*wait=*/5.0),
       MakeTask(2, 4, 0, /*skill=*/0, /*deps=*/{}, /*start=*/8.0,
                /*wait=*/20.0)},
      2);
  ASSERT_TRUE(instance.ok());
  SimulatorOptions options;
  options.batch_interval = 1.0;
  ExpectModesEquivalent<algo::ClosestAllocator>(*instance, options,
                                                /*min_checked_batches=*/2);

  // Pin the scenario itself: the camp dissolved (one wasted dispatch) and
  // the released worker still served t2.
  algo::ClosestAllocator closest;
  Simulator sim(*instance, IncrementalOptions(options));
  const SimulationResult result = sim.Run(closest);
  EXPECT_EQ(result.wasted_dispatches, 1);
  EXPECT_EQ(result.completed_tasks, 1);
}

// t0 expires at t=2 while the market is empty (the only worker arrives at
// t=5, so every earlier batch is skipped and the view's diff spans the
// whole gap). The first non-empty batch must publish no trace of t0.
TEST(CandidateIncrementalTest, TaskExpiresDuringEmptyBatches) {
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}, /*start=*/5.0, /*wait=*/100.0,
                  /*velocity=*/10.0, /*max_distance=*/100.0)},
      {MakeTask(0, 1, 0, /*skill=*/0, /*deps=*/{}, /*start=*/0.0,
                /*wait=*/2.0),
       MakeTask(1, 2, 0, /*skill=*/0, /*deps=*/{}, /*start=*/0.0,
                /*wait=*/100.0)},
      1);
  ASSERT_TRUE(instance.ok());
  SimulatorOptions options;
  options.batch_interval = 1.0;
  ExpectModesEquivalent<algo::GreedyAllocator>(*instance, options);
}

// Knife-edge arrivals around one batch boundary: t1 arrives and expires
// strictly between two batch instants (never published), t2 becomes open
// exactly at a batch instant (deferred-arrival path), and t3's deadline
// passes between batches (edge expiry without a task close).
TEST(CandidateIncrementalTest, SameBatchArrivalAndExpiry) {
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}, /*start=*/0.0, /*wait=*/100.0,
                  /*velocity=*/10.0, /*max_distance=*/100.0),
       MakeWorker(1, 5, 5, {0}, /*start=*/0.0, /*wait=*/100.0,
                  /*velocity=*/0.01, /*max_distance=*/100.0)},
      {MakeTask(0, 1, 0, /*skill=*/0, /*deps=*/{}, /*start=*/0.0,
                /*wait=*/100.0),
       MakeTask(1, 2, 0, /*skill=*/0, /*deps=*/{}, /*start=*/1.25,
                /*wait=*/0.5),
       MakeTask(2, 3, 0, /*skill=*/0, /*deps=*/{}, /*start=*/2.0,
                /*wait=*/50.0),
       MakeTask(3, 4.9, 5, /*skill=*/0, /*deps=*/{}, /*start=*/0.0,
                /*wait=*/12.5)},
      1);
  ASSERT_TRUE(instance.ok());
  SimulatorOptions options;
  options.batch_interval = 1.0;
  ExpectModesEquivalent<algo::GreedyAllocator>(*instance, options,
                                               /*min_checked_batches=*/2);
}

// The greedy warm store consumes the view's prefilled row_unchanged bits
// when publish_seq is consecutive (algo/greedy.cc); warm-started greedy
// over a multi-batch generated run must stay bit-identical to the scratch
// path across every family.
TEST(CandidateIncrementalTest, GreedyWarmStoreAcrossFamilies) {
  for (const testing::Family family : testing::AllFamilies()) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      const core::Instance instance =
          testing::GenerateCase(family, testing::GenParams{}, seed);
      SimulatorOptions options;
      options.batch_trigger = SimulatorOptions::BatchTrigger::kEventDriven;
      SCOPED_TRACE(std::string(testing::FamilyName(family)) + " seed " +
                   std::to_string(seed));
      ExpectModesEquivalent<algo::GreedyAllocator>(instance, options,
                                                   /*min_checked_batches=*/0);
    }
  }
}

// Fixed-interval variant of the sweep (the empty-batch cadence differs, so
// the diff spans change).
TEST(CandidateIncrementalTest, FixedIntervalFamiliesSweep) {
  for (const testing::Family family : testing::AllFamilies()) {
    const core::Instance instance =
        testing::GenerateCase(family, testing::GenParams{}, /*seed=*/99);
    SimulatorOptions options;
    options.batch_interval = 0.5;
    SCOPED_TRACE(testing::FamilyName(family));
    ExpectModesEquivalent<algo::GreedyAllocator>(instance, options,
                                                 /*min_checked_batches=*/0);
  }
}

// Dropping a single retraction must be caught by the differential layer:
// w0 serves t0 (co-located, so w0's batch state stays bitwise unchanged and
// the worker diff has no legitimate reason to clean the row) in the first
// batch; when the diff sees t0 close, the injected fault skips the row
// clear, so the very next publish carries a stale t0 row the scratch
// rebuild does not have.
TEST(CandidateIncrementalTest, InjectedStaleRetractionIsCaught) {
  auto instance = core::Instance::Create(
      {MakeWorker(0, 0, 0, {0}, /*start=*/0.0, /*wait=*/100.0,
                  /*velocity=*/10.0, /*max_distance=*/100.0)},
      {MakeTask(0, 0, 0, /*skill=*/0, /*deps=*/{}, /*start=*/0.0,
                /*wait=*/100.0),
       MakeTask(1, 2, 0, /*skill=*/0, /*deps=*/{}, /*start=*/3.0,
                /*wait=*/100.0)},
      1);
  ASSERT_TRUE(instance.ok());
  SimulatorOptions options;
  options.batch_interval = 1.0;
  options.candidates = SimulatorOptions::CandidateMode::kIncremental;
  options.verify_candidates = true;
  options.inject_stale_candidate = true;
  algo::GreedyAllocator greedy;
  Simulator sim(*instance, options);
  const SimulationResult result = sim.Run(greedy);
  EXPECT_GT(result.audit.candidate_mismatches, 0);
  EXPECT_FALSE(result.audit.first_candidate_mismatch.empty());
}

// View-level contract: the first Update resyncs from scratch (one counted
// rebuild), subsequent monotone updates stay on the O(delta) path, every
// publish is bit-identical to the scratch build at the same instant, and
// publish_seq increments by one per Update.
TEST(CandidateIncrementalTest, ViewLevelBitIdentityAndCounters) {
  const core::Instance instance =
      testing::RandomInstance(7, testing::RandomInstanceParams{
                                     .num_workers = 6,
                                     .num_tasks = 10,
                                     .task_wait = 3.0,
                                     .velocity = 2.0,
                                 });
  core::IncrementalCandidateView view(instance);
  int64_t expected_seq = -1;
  for (double now = 0.0; now <= 5.0; now += 0.5) {
    core::BatchProblem problem = core::BatchProblem::AllAt(instance, now);
    view.Update(problem);
    ++expected_seq;
    EXPECT_EQ(view.publish_seq(), expected_seq);
    EXPECT_EQ(view.rebuilds_total(), 1) << "now=" << now;

    core::BatchProblem scratch = core::BatchProblem::AllAt(instance, now);
    const core::CandidateSets& got = problem.Candidates();
    const core::CandidateSets& want = scratch.Candidates();
    ASSERT_EQ(got.num_pairs, want.num_pairs) << "now=" << now;
    EXPECT_EQ(got.worker_tasks, want.worker_tasks) << "now=" << now;
    EXPECT_EQ(got.task_workers, want.task_workers) << "now=" << now;
    const core::CandidateEdges& got_e = problem.Edges();
    const core::CandidateEdges& want_e = scratch.Edges();
    EXPECT_EQ(got_e.num_workers, want_e.num_workers);
    EXPECT_EQ(got_e.row_begin, want_e.row_begin) << "now=" << now;
    EXPECT_EQ(got_e.workers, want_e.workers) << "now=" << now;
    // Bitwise, not approximate: operator== on the vectors compares every
    // travel_time double exactly, which is the published contract.
    EXPECT_EQ(got_e.travel_time, want_e.travel_time) << "now=" << now;
  }
  EXPECT_GT(view.retracts_total(), 0);  // task_wait=3 forces edge expiries
}

// Non-monotone time is outside the O(delta) preconditions: the view must
// take the escape hatch (counted rebuild), not publish garbage.
TEST(CandidateIncrementalTest, NonMonotoneNowTriggersRebuild) {
  const core::Instance instance = testing::RandomInstance(11);
  core::IncrementalCandidateView view(instance);
  core::BatchProblem p1 = core::BatchProblem::AllAt(instance, 2.0);
  view.Update(p1);
  EXPECT_EQ(view.rebuilds_total(), 1);
  core::BatchProblem p2 = core::BatchProblem::AllAt(instance, 1.0);
  view.Update(p2);
  EXPECT_EQ(view.rebuilds_total(), 2);
  core::BatchProblem scratch = core::BatchProblem::AllAt(instance, 1.0);
  EXPECT_EQ(p2.Candidates().worker_tasks, scratch.Candidates().worker_tasks);
}

}  // namespace
}  // namespace dasc::sim
