// Unit + property tests for the dependency DAG utilities.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/dag.h"
#include "util/rng.h"

namespace dasc::graph {
namespace {

TEST(DagTest, EmptyGraph) {
  Dag dag(0);
  EXPECT_FALSE(dag.HasCycle());
  EXPECT_TRUE(dag.TopologicalOrder()->empty());
  EXPECT_TRUE(dag.TransitiveClosure()->empty());
}

TEST(DagTest, NoEdges) {
  Dag dag(5);
  EXPECT_FALSE(dag.HasCycle());
  auto order = dag.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order->size(), 5u);
  auto closure = dag.TransitiveClosure();
  ASSERT_TRUE(closure.ok());
  for (const auto& deps : *closure) EXPECT_TRUE(deps.empty());
}

TEST(DagTest, PaperExampleClosure) {
  // Example 1 of the paper: t3 depends on {t1, t2}, t2 on {t1}, t5 on {t4}.
  Dag dag(5);
  dag.AddDependency(1, 0);
  dag.AddDependency(2, 0);
  dag.AddDependency(2, 1);
  dag.AddDependency(4, 3);
  auto closure = dag.TransitiveClosure();
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ((*closure)[0], (std::vector<NodeId>{}));
  EXPECT_EQ((*closure)[1], (std::vector<NodeId>{0}));
  EXPECT_EQ((*closure)[2], (std::vector<NodeId>{0, 1}));
  EXPECT_EQ((*closure)[3], (std::vector<NodeId>{}));
  EXPECT_EQ((*closure)[4], (std::vector<NodeId>{3}));
}

TEST(DagTest, ClosureIsTransitive) {
  // Chain 3 -> 2 -> 1 -> 0 with only direct arcs; closure must include all
  // ancestors.
  Dag dag(4);
  dag.AddDependency(3, 2);
  dag.AddDependency(2, 1);
  dag.AddDependency(1, 0);
  auto closure = dag.TransitiveClosure();
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ((*closure)[3], (std::vector<NodeId>{0, 1, 2}));
}

TEST(DagTest, SelfLoopIsCycle) {
  Dag dag(3);
  dag.AddDependency(1, 1);
  EXPECT_TRUE(dag.HasCycle());
  EXPECT_FALSE(dag.TopologicalOrder().ok());
  EXPECT_FALSE(dag.TransitiveClosure().ok());
}

TEST(DagTest, TwoCycleDetected) {
  Dag dag(2);
  dag.AddDependency(0, 1);
  dag.AddDependency(1, 0);
  EXPECT_TRUE(dag.HasCycle());
}

TEST(DagTest, LongCycleDetected) {
  Dag dag(6);
  for (int i = 0; i < 5; ++i) dag.AddDependency(i + 1, i);
  EXPECT_FALSE(dag.HasCycle());
  dag.AddDependency(0, 5);  // close the loop
  EXPECT_TRUE(dag.HasCycle());
}

TEST(DagTest, TopologicalOrderRespectsDependencies) {
  Dag dag(6);
  dag.AddDependency(3, 1);
  dag.AddDependency(3, 2);
  dag.AddDependency(1, 0);
  dag.AddDependency(2, 0);
  dag.AddDependency(5, 4);
  auto order = dag.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  std::vector<int> pos(6);
  for (size_t i = 0; i < order->size(); ++i) {
    pos[static_cast<size_t>((*order)[i])] = static_cast<int>(i);
  }
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
  EXPECT_LT(pos[4], pos[5]);
}

TEST(DagTest, CanonicalizeDeduplicates) {
  Dag dag(3);
  dag.AddDependency(2, 1);
  dag.AddDependency(2, 1);
  dag.AddDependency(2, 0);
  EXPECT_EQ(dag.num_edges(), 3);
  dag.Canonicalize();
  EXPECT_EQ(dag.num_edges(), 2);
  EXPECT_EQ(dag.DepsOf(2), (std::vector<NodeId>{0, 1}));
}

TEST(DagTest, DependentsInvertsClosure) {
  Dag dag(4);
  dag.AddDependency(2, 0);
  dag.AddDependency(3, 2);  // closure(3) = {0, 2}
  auto closure = dag.TransitiveClosure();
  ASSERT_TRUE(closure.ok());
  auto dependents = Dag::Dependents(*closure);
  EXPECT_EQ(dependents[0], (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(dependents[2], (std::vector<NodeId>{3}));
  EXPECT_TRUE(dependents[1].empty());
  EXPECT_TRUE(dependents[3].empty());
}

// Property: on random DAGs (edges only from higher to lower index, so acyclic
// by construction), closure equals DFS reachability.
class DagClosurePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DagClosurePropertyTest, ClosureMatchesReachability) {
  util::Rng rng(static_cast<uint64_t>(GetParam()));
  const int n = 40;
  Dag dag(n);
  std::vector<std::vector<NodeId>> direct(static_cast<size_t>(n));
  for (int u = 1; u < n; ++u) {
    const int degree = static_cast<int>(rng.UniformInt(0, 4));
    for (int k = 0; k < degree; ++k) {
      const auto v = static_cast<NodeId>(rng.UniformInt(0, u - 1));
      dag.AddDependency(u, v);
      direct[static_cast<size_t>(u)].push_back(v);
    }
  }
  auto closure = dag.TransitiveClosure();
  ASSERT_TRUE(closure.ok());
  // Brute-force reachability per node.
  for (int u = 0; u < n; ++u) {
    std::set<NodeId> reach;
    std::vector<NodeId> stack(direct[static_cast<size_t>(u)]);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      if (!reach.insert(v).second) continue;
      for (NodeId w : direct[static_cast<size_t>(v)]) stack.push_back(w);
    }
    std::vector<NodeId> want(reach.begin(), reach.end());
    EXPECT_EQ((*closure)[static_cast<size_t>(u)], want) << "node " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagClosurePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dasc::graph
