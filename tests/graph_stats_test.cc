// Tests for DAG analytics (depths, widths, closure statistics).
#include <gtest/gtest.h>

#include "graph/dag_stats.h"

namespace dasc::graph {
namespace {

TEST(DagStatsTest, EmptyGraph) {
  Dag dag(0);
  auto stats = ComputeDagStats(dag);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_nodes, 0);
  EXPECT_EQ(stats->max_depth, 0);
  EXPECT_TRUE(stats->width_by_depth.empty());
}

TEST(DagStatsTest, NoEdges) {
  Dag dag(4);
  auto stats = ComputeDagStats(dag);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_roots, 4);
  EXPECT_EQ(stats->num_leaves, 4);
  EXPECT_EQ(stats->max_depth, 0);
  EXPECT_EQ(stats->width_by_depth, (std::vector<int>{4}));
}

TEST(DagStatsTest, ChainDepths) {
  // 3 -> 2 -> 1 -> 0 (each depends on the previous).
  Dag dag(4);
  dag.AddDependency(1, 0);
  dag.AddDependency(2, 1);
  dag.AddDependency(3, 2);
  auto depths = DependencyDepths(dag);
  ASSERT_TRUE(depths.ok());
  EXPECT_EQ(*depths, (std::vector<int>{0, 1, 2, 3}));
  auto stats = ComputeDagStats(dag);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->max_depth, 3);
  EXPECT_EQ(stats->num_roots, 1);
  EXPECT_EQ(stats->num_leaves, 1);  // only node 3 has no dependents
  EXPECT_EQ(stats->width_by_depth, (std::vector<int>{1, 1, 1, 1}));
  EXPECT_EQ(stats->max_closure, 3);
  EXPECT_EQ(stats->max_dependents, 3);  // node 0 is in everyone's closure
}

TEST(DagStatsTest, DiamondWidths) {
  // 3 depends on 1 and 2; both depend on 0.
  Dag dag(4);
  dag.AddDependency(1, 0);
  dag.AddDependency(2, 0);
  dag.AddDependency(3, 1);
  dag.AddDependency(3, 2);
  auto stats = ComputeDagStats(dag);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->width_by_depth, (std::vector<int>{1, 2, 1}));
  EXPECT_EQ(stats->mean_depth, 1.0);
  EXPECT_EQ(stats->total_closure_size, 0 + 1 + 1 + 3);
}

TEST(DagStatsTest, CyclicGraphRejected) {
  Dag dag(2);
  dag.AddDependency(0, 1);
  dag.AddDependency(1, 0);
  EXPECT_FALSE(ComputeDagStats(dag).ok());
  EXPECT_FALSE(DependencyDepths(dag).ok());
}

TEST(DagStatsTest, ToStringContainsKeyNumbers) {
  Dag dag(3);
  dag.AddDependency(2, 0);
  auto stats = ComputeDagStats(dag);
  ASSERT_TRUE(stats.ok());
  const std::string text = stats->ToString();
  EXPECT_NE(text.find("nodes=3"), std::string::npos);
  EXPECT_NE(text.find("roots=2"), std::string::npos);
}

}  // namespace
}  // namespace dasc::graph
