// Unit + property tests for geo: distances and the grid index.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "geo/distance.h"
#include "geo/grid_index.h"
#include "util/rng.h"

namespace dasc::geo {
namespace {

// -------------------------------------------------------------- Distance ---

TEST(DistanceTest, EuclideanBasics) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1, 1}, {1, 1}), 0.0);
}

TEST(DistanceTest, ManhattanBasics) {
  EXPECT_DOUBLE_EQ(ManhattanDistance({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(ManhattanDistance({-1, -1}, {1, 1}), 4.0);
}

TEST(DistanceTest, HaversineKnownDistance) {
  // Hong Kong Central (114.158, 22.285) to Tsim Sha Tsui (114.172, 22.297):
  // roughly 1.9-2.0 km.
  const double d = HaversineDistanceKm({114.158, 22.285}, {114.172, 22.297});
  EXPECT_GT(d, 1.5);
  EXPECT_LT(d, 2.5);
}

TEST(DistanceTest, HaversineZero) {
  EXPECT_NEAR(HaversineDistanceKm({114.0, 22.0}, {114.0, 22.0}), 0.0, 1e-9);
}

TEST(DistanceTest, DispatchMatchesDirectCalls) {
  const Point a{0.1, 0.2}, b{0.5, 0.9};
  EXPECT_DOUBLE_EQ(Distance(DistanceKind::kEuclidean, a, b),
                   EuclideanDistance(a, b));
  EXPECT_DOUBLE_EQ(Distance(DistanceKind::kManhattan, a, b),
                   ManhattanDistance(a, b));
  EXPECT_DOUBLE_EQ(Distance(DistanceKind::kHaversineKm, a, b),
                   HaversineDistanceKm(a, b));
}

// Metric properties on random points.
class DistancePropertyTest : public ::testing::TestWithParam<DistanceKind> {};

TEST_P(DistancePropertyTest, SymmetryAndTriangleInequality) {
  util::Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    const Point a{rng.UniformDouble(0, 1), rng.UniformDouble(0, 1)};
    const Point b{rng.UniformDouble(0, 1), rng.UniformDouble(0, 1)};
    const Point c{rng.UniformDouble(0, 1), rng.UniformDouble(0, 1)};
    const double ab = Distance(GetParam(), a, b);
    const double ba = Distance(GetParam(), b, a);
    const double ac = Distance(GetParam(), a, c);
    const double cb = Distance(GetParam(), c, b);
    EXPECT_NEAR(ab, ba, 1e-12);
    EXPECT_LE(ab, ac + cb + 1e-9);
    EXPECT_GE(ab, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DistancePropertyTest,
                         ::testing::Values(DistanceKind::kEuclidean,
                                           DistanceKind::kManhattan,
                                           DistanceKind::kHaversineKm));

// ------------------------------------------------------------- GridIndex ---

TEST(GridIndexTest, EmptyIndex) {
  GridIndex index({});
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.QueryRadius({0, 0}, 10.0).empty());
}

TEST(GridIndexTest, SinglePoint) {
  GridIndex index({{0.5, 0.5}});
  EXPECT_EQ(index.QueryRadius({0.5, 0.5}, 0.0).size(), 1u);
  EXPECT_EQ(index.QueryRadius({0.6, 0.5}, 0.05).size(), 0u);
  EXPECT_EQ(index.QueryRadius({0.6, 0.5}, 0.2).size(), 1u);
}

TEST(GridIndexTest, NegativeRadiusReturnsNothing) {
  GridIndex index({{0, 0}});
  EXPECT_TRUE(index.QueryRadius({0, 0}, -1.0).empty());
}

TEST(GridIndexTest, DuplicatePointsAllReturned) {
  GridIndex index({{1, 1}, {1, 1}, {1, 1}});
  EXPECT_EQ(index.QueryRadius({1, 1}, 0.1).size(), 3u);
}

TEST(GridIndexTest, BoundaryInclusive) {
  GridIndex index({{0, 0}, {1, 0}});
  // Radius exactly equal to the distance includes the point.
  auto hits = index.QueryRadius({0, 0}, 1.0);
  EXPECT_EQ(hits.size(), 2u);
}

// Grid query must agree with brute force on random data, across cell sizes.
class GridIndexPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(GridIndexPropertyTest, MatchesBruteForce) {
  util::Rng rng(1234);
  std::vector<Point> points(500);
  for (auto& p : points) {
    p = {rng.UniformDouble(0, 0.5), rng.UniformDouble(0, 0.5)};
  }
  GridIndex index(points, GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    const Point center{rng.UniformDouble(-0.1, 0.6),
                       rng.UniformDouble(-0.1, 0.6)};
    const double radius = rng.UniformDouble(0.0, 0.3);
    auto got = index.QueryRadius(center, radius);
    std::sort(got.begin(), got.end());
    std::vector<int32_t> want;
    for (size_t i = 0; i < points.size(); ++i) {
      if (EuclideanDistance(points[i], center) <= radius) {
        want.push_back(static_cast<int32_t>(i));
      }
    }
    EXPECT_EQ(got, want) << "cell_size=" << GetParam() << " radius=" << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(CellSizes, GridIndexPropertyTest,
                         ::testing::Values(0.0, 0.01, 0.05, 0.2, 1.0));

TEST(GridIndexTest, CollinearPointsDegenerateBox) {
  // All points on a horizontal line: bounding box has zero height.
  std::vector<Point> points;
  for (int i = 0; i < 20; ++i) points.push_back({0.1 * i, 3.0});
  GridIndex index(points);
  auto hits = index.QueryRadius({0.95, 3.0}, 0.16);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<int32_t>{8, 9, 10, 11}));
}

TEST(GridIndexTest, LargeRadiusReturnsEverything) {
  util::Rng rng(5);
  std::vector<Point> points(100);
  for (auto& p : points) {
    p = {rng.UniformDouble(0, 1), rng.UniformDouble(0, 1)};
  }
  GridIndex index(points);
  EXPECT_EQ(index.QueryRadius({0.5, 0.5}, 10.0).size(), 100u);
}

}  // namespace
}  // namespace dasc::geo
