// Tests for the property-testing subsystem: generator families, instance
// editing, the shrinker, the oracle catalogue, and the stress harness
// end-to-end (including the injected-dependency-bug acceptance path:
// failure -> shrink -> repro file -> replay).
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/instance.h"
#include "io/instance_io.h"
#include "testing/generator.h"
#include "testing/harness.h"
#include "testing/instance_edit.h"
#include "testing/oracles.h"
#include "testing/shrink.h"

namespace dasc {
namespace {

using testing::AllFamilies;
using testing::AllOracleNames;
using testing::Family;
using testing::FamilyFromName;
using testing::FamilyName;
using testing::GenerateCase;
using testing::GenParams;
using testing::InstanceParts;

std::string Serialized(const core::Instance& instance) {
  std::ostringstream os;
  io::WriteInstance(instance, os);
  return os.str();
}

TEST(GeneratorTest, FamilyNamesRoundTrip) {
  for (Family family : AllFamilies()) {
    Family parsed;
    ASSERT_TRUE(FamilyFromName(FamilyName(family), &parsed))
        << FamilyName(family);
    EXPECT_EQ(parsed, family);
  }
  Family parsed;
  EXPECT_FALSE(FamilyFromName("no-such-family", &parsed));
}

TEST(GeneratorTest, DeterministicPerSeed) {
  const GenParams params;
  for (Family family : AllFamilies()) {
    const core::Instance a = GenerateCase(family, params, 7);
    const core::Instance b = GenerateCase(family, params, 7);
    EXPECT_EQ(Serialized(a), Serialized(b)) << FamilyName(family);
    const core::Instance c = GenerateCase(family, params, 8);
    EXPECT_NE(Serialized(a), Serialized(c)) << FamilyName(family);
  }
}

TEST(GeneratorTest, RespectsCountRanges) {
  GenParams params;
  params.num_workers = {2, 4};
  params.num_tasks = {5, 8};
  for (Family family : AllFamilies()) {
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      const core::Instance inst = GenerateCase(family, params, seed);
      EXPECT_GE(inst.num_workers(), 2) << FamilyName(family);
      EXPECT_LE(inst.num_workers(), 4) << FamilyName(family);
      EXPECT_GE(inst.num_tasks(), 5) << FamilyName(family);
      EXPECT_LE(inst.num_tasks(), 8) << FamilyName(family);
    }
  }
}

TEST(GeneratorTest, DeepChainHasLongClosure) {
  const GenParams params;
  int longest = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const core::Instance inst =
        GenerateCase(Family::kDeepChain, params, seed);
    for (core::TaskId t = 0; t < inst.num_tasks(); ++t) {
      longest = std::max(longest,
                         static_cast<int>(inst.DepClosure(t).size()));
    }
  }
  EXPECT_GE(longest, 3);
}

TEST(GeneratorTest, DiamondHasFanInTask) {
  const GenParams params;
  bool fan_in = false;
  for (uint64_t seed = 1; seed <= 10 && !fan_in; ++seed) {
    const core::Instance inst = GenerateCase(Family::kDiamond, params, seed);
    for (const core::Task& t : inst.tasks()) {
      if (t.dependencies.size() >= 2) fan_in = true;
    }
  }
  EXPECT_TRUE(fan_in);
}

TEST(GeneratorTest, SkillStarvedLeavesUnservableSkills) {
  const GenParams params;
  bool starved = false;
  for (uint64_t seed = 1; seed <= 10 && !starved; ++seed) {
    const core::Instance inst =
        GenerateCase(Family::kSkillStarved, params, seed);
    std::set<core::SkillId> practiced;
    for (const core::Worker& w : inst.workers()) {
      practiced.insert(w.skills.begin(), w.skills.end());
    }
    for (const core::Task& t : inst.tasks()) {
      if (practiced.count(t.required_skill) == 0) starved = true;
    }
  }
  EXPECT_TRUE(starved);
}

TEST(InstanceEditTest, WithoutTasksRemapsDependencies) {
  const core::Instance inst =
      GenerateCase(Family::kDeepChain, GenParams(), 3);
  InstanceParts parts = testing::PartsOf(inst);
  std::vector<uint8_t> drop(parts.tasks.size(), 0);
  drop[0] = 1;  // drop the first chain root
  const InstanceParts fewer = testing::WithoutTasks(parts, drop);
  ASSERT_EQ(fewer.tasks.size(), parts.tasks.size() - 1);
  for (size_t i = 0; i < fewer.tasks.size(); ++i) {
    EXPECT_EQ(fewer.tasks[i].id, static_cast<core::TaskId>(i));
    for (core::TaskId d : fewer.tasks[i].dependencies) {
      EXPECT_GE(d, 0);
      EXPECT_LT(d, static_cast<core::TaskId>(fewer.tasks.size()));
    }
  }
  EXPECT_TRUE(testing::BuildParts(fewer).ok());
}

TEST(ShrinkTest, ReducesToMinimalDependencyPair) {
  // Property: "the instance contains at least one dependency edge". The
  // local minimum is exactly one dependent task and its prerequisite.
  const core::Instance failing =
      GenerateCase(Family::kUniform, GenParams(), 11);
  int edges = 0;
  for (const core::Task& t : failing.tasks()) {
    edges += static_cast<int>(t.dependencies.size());
  }
  ASSERT_GT(edges, 0);
  const testing::FailPredicate has_edge = [](const core::Instance& inst) {
    for (const core::Task& t : inst.tasks()) {
      if (!t.dependencies.empty()) return true;
    }
    return false;
  };
  const testing::ShrinkResult shrunk = testing::Shrink(failing, has_edge);
  EXPECT_EQ(shrunk.instance.num_tasks(), 2);
  EXPECT_LE(shrunk.instance.num_workers(), 1);
  EXPECT_TRUE(has_edge(shrunk.instance));
  EXPECT_GT(shrunk.predicate_evals, 0);
}

TEST(ShrinkTest, NonReproducingPredicateReturnsOriginal) {
  const core::Instance inst = GenerateCase(Family::kUniform, GenParams(), 5);
  const testing::ShrinkResult shrunk =
      testing::Shrink(inst, [](const core::Instance&) { return false; });
  EXPECT_EQ(shrunk.instance.num_tasks(), inst.num_tasks());
  EXPECT_EQ(shrunk.instance.num_workers(), inst.num_workers());
}

TEST(ShrinkTest, RespectsEvaluationBudget) {
  const core::Instance inst = GenerateCase(Family::kUniform, GenParams(), 5);
  testing::ShrinkOptions options;
  options.max_predicate_evals = 10;
  const testing::ShrinkResult shrunk = testing::Shrink(
      inst, [](const core::Instance&) { return true; }, options);
  EXPECT_LE(shrunk.predicate_evals, 10);
}

TEST(OracleTest, CatalogueIsWellFormed) {
  const std::vector<std::string> names = AllOracleNames();
  EXPECT_GE(names.size(), 8u);
  for (const std::string& name : names) {
    const testing::Oracle* oracle = testing::FindOracle(name);
    ASSERT_NE(oracle, nullptr) << name;
    EXPECT_EQ(oracle->name, name);
    EXPECT_FALSE(oracle->description.empty()) << name;
  }
  EXPECT_EQ(testing::FindOracle("no-such-oracle"), nullptr);
}

TEST(OracleTest, AllOraclesPassOnGeneratedCases) {
  GenParams params;
  params.num_tasks = {4, 9};  // keep DFS-backed oracles applicable
  for (Family family : AllFamilies()) {
    const core::Instance inst = GenerateCase(family, params, 21);
    testing::OracleContext ctx;
    ctx.instance = &inst;
    ctx.allocators = {"greedy", "gg", "game", "closest", "maxmatch"};
    for (const auto& oracle : testing::AllOracles()) {
      const util::Status status = oracle.check(ctx);
      EXPECT_TRUE(status.ok() ||
                  status.code() == util::StatusCode::kFailedPrecondition)
          << FamilyName(family) << "/" << oracle.name << ": "
          << status.ToString();
    }
  }
}

// A worker that cannot serve task 0 (wrong skill) but can serve task 1,
// which depends on task 0: any dependency-oblivious allocator assigns the
// premature pair, so skipping the platform's dependency filter must trip the
// validity oracle.
TEST(OracleTest, InjectedDependencyBugTripsValidity) {
  std::vector<core::Worker> workers(1);
  workers[0].id = 0;
  workers[0].location = {0.0, 0.0};
  workers[0].wait_time = 100.0;
  workers[0].velocity = 1.0;
  workers[0].max_distance = 100.0;
  workers[0].skills = {0};
  std::vector<core::Task> tasks(2);
  tasks[0].id = 0;
  tasks[0].location = {1.0, 0.0};
  tasks[0].wait_time = 100.0;
  tasks[0].required_skill = 1;
  tasks[1].id = 1;
  tasks[1].location = {2.0, 0.0};
  tasks[1].wait_time = 100.0;
  tasks[1].required_skill = 0;
  tasks[1].dependencies = {0};
  auto inst = core::Instance::Create(workers, tasks, 2);
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();

  testing::OracleContext ctx;
  ctx.instance = &*inst;
  ctx.allocators = {"closest"};
  const testing::Oracle* validity = testing::FindOracle("validity");
  ASSERT_NE(validity, nullptr);
  EXPECT_TRUE(validity->check(ctx).ok());
  ctx.inject_dependency_bug = true;
  const util::Status bugged = validity->check(ctx);
  EXPECT_FALSE(bugged.ok());
  EXPECT_NE(bugged.message().find("dependency"), std::string::npos)
      << bugged.ToString();
}

TEST(HarnessTest, CleanSweepPassesAndIsDeterministic) {
  testing::StressOptions options;
  options.seeds = 5;
  options.families = {Family::kUniform, Family::kKnifeEdge};
  options.oracles = {"validity", "determinism", "gg-seed-monotone"};
  options.allocators = {"greedy", "gg", "closest"};
  options.shrink = false;
  const testing::StressReport a = testing::RunStress(options);
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.cases, 10);
  EXPECT_EQ(a.checks, 30);
  const testing::StressReport b = testing::RunStress(options);
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.skips, b.skips);
}

TEST(HarnessTest, InjectedBugShrinksToTinyReproThatReplays) {
  const std::string repro_dir =
      (std::filesystem::path(::testing::TempDir()) / "dasc_stress_repros")
          .string();
  std::filesystem::remove_all(repro_dir);

  testing::StressOptions options;
  options.seeds = 5;
  options.families = {Family::kUniform};
  options.oracles = {"validity"};
  options.inject_dependency_bug = true;
  options.repro_dir = repro_dir;
  const testing::StressReport report = testing::RunStress(options);
  ASSERT_FALSE(report.ok());
  const testing::StressFailure& failure = report.failures.front();
  EXPECT_EQ(failure.oracle, "validity");
  ASSERT_FALSE(failure.repro_path.empty());
  // The acceptance bar: the minimized counterexample is tiny.
  EXPECT_LE(failure.shrunk_tasks, 6);
  EXPECT_GE(failure.shrunk_tasks, 2);  // needs a dependency edge

  // The written file replays to the same class of failure on its own.
  const util::Status replay = testing::ReplayRepro(failure.repro_path);
  EXPECT_FALSE(replay.ok());
  EXPECT_NE(replay.message().find("violation"), std::string::npos)
      << replay.ToString();

  // And it is a loadable, valid instance for every other tool.
  auto loaded = io::ReadInstanceFile(failure.repro_path);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
}

TEST(HarnessTest, ReplayRejectsMissingOrMetadatalessFiles) {
  EXPECT_EQ(testing::ReplayRepro("/no/such/file.txt").code(),
            util::StatusCode::kNotFound);
  const std::string plain =
      (std::filesystem::path(::testing::TempDir()) / "plain_instance.txt")
          .string();
  const core::Instance inst = GenerateCase(Family::kUniform, GenParams(), 1);
  ASSERT_TRUE(io::WriteInstanceFile(inst, plain).ok());
  EXPECT_EQ(testing::ReplayRepro(plain).code(),
            util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dasc
