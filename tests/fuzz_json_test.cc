// Deterministic pseudo-fuzzing of the util::JsonValue DOM parser and the
// run-report reader built on it, mirroring fuzz_io_test.cc: random byte
// mutations and truncations of valid run-report JSON must either parse
// cleanly or return a clean error Status — never crash. PR 3's tests only
// covered round-trips of well-formed documents.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/run_report_reader.h"
#include "test_util.h"
#include "util/json.h"
#include "util/rng.h"

namespace dasc::util {
namespace {

// Representative run-report lines (dasc-run-report/3 shapes): header, stats,
// ledger aggregate, per-task lifecycle line, and a metrics dump. Together
// they exercise every DOM kind — nested objects, arrays, strings with
// escapes, signed/float/exponent numbers, booleans, and null.
const char* const kReportLines[] = {
    R"({"type":"run","schema":"dasc-run-report/3","kind":"simulate","instance":"gate.dasc","runs":1})",
    R"({"type":"stats","algorithm":"G-G","score":20,"batches":17,"nonempty_batches":16,"empty_batches":8,"completed_tasks":20,"wasted_dispatches":0,"allocator_ms":0.251747,"p50_batch_ms":0.015137,"p95_batch_ms":0.0212712,"max_batch_ms":0.022212,"mean_assignment_latency":4.01984756866,"last_completion_time":78.6022049714,"audited_batches":9,"audit_violations":0,"min_batch_gap":1,"mean_batch_gap":1,"approx_ratio":1,"total_tasks":40,"ledger_mismatches":0})",
    R"({"type":"ledger","algorithm":"G-G","total_tasks":40,"completed_tasks":20,"unserved":20,"reasons":{"out_of_range":1,"arrival_deadline":2,"dependency_unmet":17}})",
    R"({"type":"task","algorithm":"G-G","task":0,"reason":"out_of_range","arrival":2.96392808649,"expiry":-1.5e3,"dep_depth":0,"batches_open":2,"candidate_batches":0,"first_open_batch":1,"last_open_batch":2,"assigned_batch":-1,"camp_expired":false,"completion_time":0})",
    R"({"type":"metrics","counters":[{"name":"sim_batches_total","value":17}],"histograms":[{"name":"batch_ms","buckets":[1,2,3],"extra":null,"quoted":"a\"b\\c"}],"flag":true})",
};

std::string WholeReport() {
  std::string all;
  for (const char* line : kReportLines) {
    all += line;
    all += '\n';
  }
  return all;
}

class JsonFuzzTest : public ::testing::TestWithParam<uint64_t> {};

// Every base line must actually be valid JSON, or the fuzz below tests
// nothing.
TEST(JsonFuzzBase, BaseLinesParse) {
  for (const char* line : kReportLines) {
    const auto parsed = ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << line << ": " << parsed.status().ToString();
    EXPECT_TRUE(parsed->is_object());
  }
  std::istringstream in(WholeReport());
  // The trailing metrics line is not part of the reader's schema, but the
  // reader must reject or tolerate it cleanly rather than crash.
  const auto report = sim::ParseRunReport(in);
  if (!report.ok()) {
    EXPECT_FALSE(report.status().message().empty());
  }
}

TEST_P(JsonFuzzTest, DomMutationsNeverCrash) {
  util::Rng rng(GetParam());
  for (const char* line : kReportLines) {
    for (int iter = 0; iter < 200; ++iter) {
      std::string corrupted = line;
      const int mutations = static_cast<int>(rng.UniformInt(1, 8));
      for (int k = 0; k < mutations; ++k) {
        dasc::testing::MutateByte(rng, corrupted);
      }
      const auto result = ParseJson(corrupted);  // must not crash
      if (result.ok()) {
        // A surviving document must also serialize without crashing, and
        // re-parse to itself (writer/parser agreement under fuzz).
        const std::string round = result->ToString();
        const auto again = ParseJson(round);
        ASSERT_TRUE(again.ok()) << round;
        EXPECT_EQ(again->ToString(), round);
      } else {
        EXPECT_FALSE(result.status().message().empty());
      }
    }
  }
}

TEST_P(JsonFuzzTest, DomTruncationsNeverCrash) {
  util::Rng rng(GetParam() + 999);
  for (const char* line : kReportLines) {
    const std::string base = line;
    for (int iter = 0; iter < 80; ++iter) {
      const auto cut = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(base.size())));
      const auto result = ParseJson(base.substr(0, cut));
      if (!result.ok()) {
        EXPECT_FALSE(result.status().message().empty());
      }
    }
  }
}

// Deeply nested but balanced input: the parser must handle it (or reject it
// cleanly), not overflow the stack.
TEST(JsonFuzzBase, DeepNestingIsHandled) {
  std::string deep;
  constexpr int kDepth = 2000;
  for (int i = 0; i < kDepth; ++i) deep += "[";
  deep += "0";
  for (int i = 0; i < kDepth; ++i) deep += "]";
  const auto result = ParseJson(deep);
  if (!result.ok()) {
    EXPECT_FALSE(result.status().message().empty());
  }
}

// Whole-report fuzz through the run-report reader: mutate the multi-line
// JSONL document, feed it to ParseRunReport, and require a clean verdict.
TEST_P(JsonFuzzTest, ReportMutationsNeverCrashTheReader) {
  const std::string base = WholeReport();
  util::Rng rng(GetParam() + 77);
  for (int iter = 0; iter < 150; ++iter) {
    std::string corrupted = base;
    const int mutations = static_cast<int>(rng.UniformInt(1, 12));
    for (int k = 0; k < mutations; ++k) {
      dasc::testing::MutateByte(rng, corrupted);
    }
    std::istringstream in(corrupted);
    const auto report = sim::ParseRunReport(in);  // must not crash
    if (!report.ok()) {
      EXPECT_FALSE(report.status().message().empty());
    }
  }
}

TEST_P(JsonFuzzTest, ReportTruncationsNeverCrashTheReader) {
  const std::string base = WholeReport();
  util::Rng rng(GetParam() + 4242);
  for (int iter = 0; iter < 80; ++iter) {
    const auto cut = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(base.size())));
    std::istringstream in(base.substr(0, cut));
    const auto report = sim::ParseRunReport(in);
    if (!report.ok()) {
      EXPECT_FALSE(report.status().message().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzzTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dasc::util
