// Tests for the flag parser.
#include <gtest/gtest.h>

#include "util/flags.h"

namespace dasc::util {
namespace {

TEST(FlagsTest, ParsesAllTypes) {
  FlagParser parser;
  int64_t count = 5;
  double scale = 1.0;
  std::string name = "x";
  bool verbose = false;
  parser.AddInt("count", &count, "a count");
  parser.AddDouble("scale", &scale, "a scale");
  parser.AddString("name", &name, "a name");
  parser.AddBool("verbose", &verbose, "verbosity");
  const Status status = parser.Parse(
      {"--count=42", "--scale=0.25", "--name=hello", "--verbose"});
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(count, 42);
  EXPECT_DOUBLE_EQ(scale, 0.25);
  EXPECT_EQ(name, "hello");
  EXPECT_TRUE(verbose);
}

TEST(FlagsTest, DefaultsSurviveWhenUnset) {
  FlagParser parser;
  int64_t count = 7;
  parser.AddInt("count", &count, "");
  ASSERT_TRUE(parser.Parse(std::vector<std::string>{}).ok());
  EXPECT_EQ(count, 7);
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  FlagParser parser;
  bool flag = false;
  parser.AddBool("flag", &flag, "");
  ASSERT_TRUE(parser.Parse({"generate", "--flag", "out.dasc"}).ok());
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"generate", "out.dasc"}));
}

TEST(FlagsTest, UnknownFlagRejected) {
  FlagParser parser;
  const Status status = parser.Parse({"--nope=1"});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("--nope"), std::string::npos);
}

TEST(FlagsTest, MalformedValuesRejected) {
  FlagParser parser;
  int64_t count = 0;
  double scale = 0;
  bool flag = false;
  parser.AddInt("count", &count, "");
  parser.AddDouble("scale", &scale, "");
  parser.AddBool("flag", &flag, "");
  EXPECT_FALSE(parser.Parse({"--count=abc"}).ok());
  EXPECT_FALSE(parser.Parse({"--count=12x"}).ok());
  EXPECT_FALSE(parser.Parse({"--scale=1.2.3"}).ok());
  EXPECT_FALSE(parser.Parse({"--flag=maybe"}).ok());
}

TEST(FlagsTest, NonBoolNeedsValue) {
  FlagParser parser;
  int64_t count = 0;
  parser.AddInt("count", &count, "");
  EXPECT_FALSE(parser.Parse({"--count"}).ok());
}

TEST(FlagsTest, BoolAcceptsExplicitValues) {
  FlagParser parser;
  bool flag = false;
  parser.AddBool("flag", &flag, "");
  ASSERT_TRUE(parser.Parse({"--flag=true"}).ok());
  EXPECT_TRUE(flag);
  ASSERT_TRUE(parser.Parse({"--flag=0"}).ok());
  EXPECT_FALSE(flag);
}

TEST(FlagsTest, NegativeNumbers) {
  FlagParser parser;
  int64_t count = 0;
  double scale = 0;
  parser.AddInt("count", &count, "");
  parser.AddDouble("scale", &scale, "");
  ASSERT_TRUE(parser.Parse({"--count=-3", "--scale=-0.5"}).ok());
  EXPECT_EQ(count, -3);
  EXPECT_DOUBLE_EQ(scale, -0.5);
}

TEST(FlagsTest, HelpTextListsFlags) {
  FlagParser parser;
  int64_t count = 9;
  parser.AddInt("count", &count, "how many");
  const std::string help = parser.HelpText();
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("how many"), std::string::npos);
  EXPECT_NE(help.find("default: 9"), std::string::npos);
}

}  // namespace
}  // namespace dasc::util
