// Tests for the observability substrate: metrics registry semantics,
// histogram bucketing, Prometheus/JSONL exposition, concurrency under
// ParallelFor (also compiled into metrics_test_tsan), and span tracing.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/tracing.h"

namespace dasc::util {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.Set(2.5);
  gauge.Set(-1.25);
  EXPECT_EQ(gauge.value(), -1.25);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

HistogramOptions SmallOptions() {
  // Bounds: 1, 2, 4 (+Inf overflow).
  return HistogramOptions{.start = 1.0, .growth = 2.0, .num_buckets = 3};
}

TEST(HistogramTest, BucketEdgesUseLeSemantics) {
  Histogram histogram(SmallOptions());
  histogram.Observe(0.5);  // <= 1
  histogram.Observe(1.0);  // == bound -> le bucket 1 (Prometheus semantics)
  histogram.Observe(1.5);  // <= 2
  histogram.Observe(2.0);  // == bound
  histogram.Observe(4.0);  // == last finite bound
  histogram.Observe(5.0);  // overflow
  const HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_EQ(snapshot.bounds, (std::vector<double>{1.0, 2.0, 4.0}));
  ASSERT_EQ(snapshot.counts, (std::vector<int64_t>{2, 2, 1, 1}));
  EXPECT_EQ(snapshot.count, 6);
  EXPECT_DOUBLE_EQ(snapshot.sum, 14.0);
  EXPECT_EQ(histogram.count(), 6);
}

TEST(HistogramTest, ResetZeroesCountsAndSum) {
  Histogram histogram(SmallOptions());
  histogram.Observe(3.0);
  histogram.Reset();
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 0);
  EXPECT_EQ(snapshot.sum, 0.0);
}

TEST(HistogramTest, QuantileReturnsBucketUpperBound) {
  Histogram histogram(SmallOptions());
  for (int i = 0; i < 8; ++i) histogram.Observe(0.5);  // bucket le=1
  for (int i = 0; i < 2; ++i) histogram.Observe(3.0);  // bucket le=4
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(HistogramQuantile(snapshot, 0.5), 1.0);
  EXPECT_EQ(HistogramQuantile(snapshot, 0.95), 4.0);
  // Overflow samples clamp to the largest finite bound.
  Histogram overflow(SmallOptions());
  overflow.Observe(100.0);
  EXPECT_EQ(HistogramQuantile(overflow.Snapshot(), 1.0), 4.0);
  // Empty histogram.
  Histogram empty(SmallOptions());
  EXPECT_EQ(HistogramQuantile(empty.Snapshot(), 0.5), 0.0);
}

TEST(MetricsRegistryTest, SameNameSamePointer) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("a");
  Counter* c2 = registry.GetCounter("a");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(registry.GetCounter("b"), c1);
  Gauge* g1 = registry.GetGauge("a");  // separate namespace from counters
  EXPECT_EQ(registry.GetGauge("a"), g1);
  Histogram* h1 = registry.GetHistogram("h", SmallOptions());
  // First registration wins: later options are ignored.
  Histogram* h2 = registry.GetHistogram(
      "h", HistogramOptions{.start = 100.0, .growth = 10.0, .num_buckets = 1});
  EXPECT_EQ(h1, h2);
  h1->Observe(0.5);
  EXPECT_EQ(h1->Snapshot().bounds.size(), 3u);
}

TEST(MetricsRegistryTest, ResetKeepsPointersValid) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hits");
  counter->Increment(7);
  Gauge* gauge = registry.GetGauge("depth");
  gauge->Set(3.0);
  Histogram* histogram = registry.GetHistogram("lat", SmallOptions());
  histogram->Observe(1.0);
  registry.Reset();
  // Same objects, zeroed values — cached macro pointers stay usable.
  EXPECT_EQ(registry.GetCounter("hits"), counter);
  EXPECT_EQ(counter->value(), 0);
  EXPECT_EQ(gauge->value(), 0.0);
  EXPECT_EQ(histogram->count(), 0);
  counter->Increment();
  EXPECT_EQ(registry.GetCounter("hits")->value(), 1);
}

TEST(MetricsRegistryTest, PrometheusExposition) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total")->Increment(3);
  registry.GetGauge("queue_depth")->Set(1.5);
  Histogram* histogram = registry.GetHistogram("latency", SmallOptions());
  histogram->Observe(0.5);
  histogram->Observe(3.0);
  histogram->Observe(99.0);
  std::ostringstream out;
  registry.WritePrometheus(out);
  EXPECT_EQ(out.str(),
            "# TYPE requests_total counter\n"
            "requests_total 3\n"
            "# TYPE queue_depth gauge\n"
            "queue_depth 1.5\n"
            "# TYPE latency histogram\n"
            "latency_bucket{le=\"1\"} 1\n"
            "latency_bucket{le=\"2\"} 1\n"
            "latency_bucket{le=\"4\"} 2\n"
            "latency_bucket{le=\"+Inf\"} 3\n"
            "latency_sum 102.5\n"
            "latency_count 3\n");
}

TEST(MetricsRegistryTest, JsonlExposition) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total")->Increment(3);
  registry.GetGauge("queue_depth")->Set(1.5);
  Histogram* histogram = registry.GetHistogram("latency", SmallOptions());
  histogram->Observe(0.5);
  histogram->Observe(99.0);
  std::ostringstream out;
  registry.WriteJsonl(out);
  EXPECT_EQ(out.str(),
            "{\"type\":\"counter\",\"name\":\"requests_total\",\"value\":3}\n"
            "{\"type\":\"gauge\",\"name\":\"queue_depth\",\"value\":1.5}\n"
            "{\"type\":\"histogram\",\"name\":\"latency\",\"count\":2,"
            "\"sum\":99.5,\"buckets\":[{\"le\":1,\"count\":1},"
            "{\"le\":2,\"count\":0},{\"le\":4,\"count\":0},"
            "{\"le\":\"+Inf\",\"count\":1}]}\n");
}

TEST(MetricsRegistryTest, SnapshotSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zebra")->Increment();
  registry.GetCounter("apple")->Increment(2);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "apple");
  EXPECT_EQ(snapshot.counters[0].second, 2);
  EXPECT_EQ(snapshot.counters[1].first, "zebra");
}

// Exercised by metrics_test_tsan too: concurrent increments from pool
// threads must be exact (atomic) and race-free.
TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  SetThreads(4);
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("parallel_hits");
  Histogram* histogram = registry.GetHistogram("parallel_lat", SmallOptions());
  constexpr int64_t kItems = 10000;
  ParallelFor(0, kItems, 64, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      counter->Increment();
      histogram->Observe(static_cast<double>(i % 5));
    }
  });
  EXPECT_EQ(counter->value(), kItems);
  EXPECT_EQ(histogram->count(), kItems);
  SetThreads(0);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationSingleInstance) {
  SetThreads(4);
  MetricsRegistry registry;
  std::vector<Counter*> seen(64, nullptr);
  ParallelFor(0, 64, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      Counter* c = registry.GetCounter("shared");
      c->Increment();
      seen[static_cast<size_t>(i)] = c;
    }
  });
  for (Counter* c : seen) EXPECT_EQ(c, seen[0]);
  EXPECT_EQ(seen[0]->value(), 64);
  SetThreads(0);
}

#if DASC_METRICS_ENABLED

TEST(MetricsMacroTest, MacrosHitGlobalRegistry) {
  GlobalMetrics().Reset();
  SetMetricsEnabled(true);
  for (int i = 0; i < 3; ++i) DASC_METRIC_COUNTER_INC("macro_test_counter");
  DASC_METRIC_COUNTER_ADD("macro_test_counter", 2);
  DASC_METRIC_GAUGE_SET("macro_test_gauge", 7.5);
  DASC_METRIC_HISTOGRAM_OBSERVE(
      "macro_test_histogram", 1.5,
      (HistogramOptions{.start = 1.0, .growth = 2.0, .num_buckets = 3}));
  EXPECT_EQ(GlobalMetrics().GetCounter("macro_test_counter")->value(), 5);
  EXPECT_EQ(GlobalMetrics().GetGauge("macro_test_gauge")->value(), 7.5);
  EXPECT_EQ(GlobalMetrics().GetHistogram("macro_test_histogram")->count(), 1);
}

TEST(MetricsMacroTest, KillSwitchSuppressesUpdates) {
  GlobalMetrics().Reset();
  SetMetricsEnabled(false);
  DASC_METRIC_COUNTER_INC("macro_kill_counter");
  DASC_METRIC_GAUGE_SET("macro_kill_gauge", 1.0);
  DASC_METRIC_HISTOGRAM_OBSERVE("macro_kill_histogram", 1.0);
  SetMetricsEnabled(true);
  EXPECT_EQ(GlobalMetrics().GetCounter("macro_kill_counter")->value(), 0);
  EXPECT_EQ(GlobalMetrics().GetGauge("macro_kill_gauge")->value(), 0.0);
  DASC_METRIC_COUNTER_INC("macro_kill_counter");
  EXPECT_EQ(GlobalMetrics().GetCounter("macro_kill_counter")->value(), 1);
}

// The pool publishes its queue depth and per-task wait time. The dtor
// drains the queue, so by the time the scope closes every submitted job has
// been dequeued exactly once: the wait histogram count equals the number of
// submissions and the last depth write is the drained queue's zero. Also
// compiled into metrics_test_tsan so the instrumentation is race-checked
// against the pool's own locking.
TEST(ThreadPoolMetricsTest, PublishesQueueDepthAndWaitHistogram) {
  GlobalMetrics().Reset();
  SetMetricsEnabled(true);
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(ran.load(), 16);
  const HistogramSnapshot wait =
      GlobalMetrics().GetHistogram("threadpool_task_wait_ms")->Snapshot();
  EXPECT_EQ(wait.count, 16);
  EXPECT_GE(wait.sum, 0.0);
  EXPECT_EQ(GlobalMetrics().GetGauge("threadpool_queue_depth")->value(), 0.0);
}

TEST(TracingTest, RecordsNestedSpans) {
  StartTracing();
  {
    DASC_TRACE_SPAN("outer");
    {
      DASC_TRACE_SPAN_N("inner", 42);
    }
  }
  StopTracing();
  EXPECT_EQ(TraceEventCount(), 2u);
  std::ostringstream out;
  WriteChromeTrace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"n\":42"), std::string::npos);
  ClearTraceEvents();
  EXPECT_EQ(TraceEventCount(), 0u);
}

TEST(TracingTest, InactiveRecordsNothing) {
  ClearTraceEvents();
  EXPECT_FALSE(TracingActive());
  {
    DASC_TRACE_SPAN("ignored");
  }
  EXPECT_EQ(TraceEventCount(), 0u);
}

TEST(TracingTest, StartClearsPreviousEvents) {
  StartTracing();
  {
    DASC_TRACE_SPAN("first");
  }
  StopTracing();
  EXPECT_EQ(TraceEventCount(), 1u);
  StartTracing();
  StopTracing();
  EXPECT_EQ(TraceEventCount(), 0u);
}

// Also compiled into metrics_test_tsan: spans recorded from pool threads
// land in per-thread buffers without racing.
TEST(TracingTest, SpansOnPoolThreads) {
  SetThreads(4);
  StartTracing();
  ParallelFor(0, 32, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      DASC_TRACE_SPAN("chunk");
    }
  });
  StopTracing();
  EXPECT_EQ(TraceEventCount(), 32u);
  std::ostringstream out;
  WriteChromeTrace(out);
  EXPECT_NE(out.str().find("\"name\":\"chunk\""), std::string::npos);
  ClearTraceEvents();
  SetThreads(0);
}

#endif  // DASC_METRICS_ENABLED

}  // namespace
}  // namespace dasc::util
