// Tests for the DDSketch-style streaming quantile sketch (error bounds,
// merge, zero bucket) and its sliding-window wrapper (ring rotation,
// window-vs-cumulative semantics). See DESIGN.md §14.
#include "util/quantile_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

namespace dasc::util {
namespace {

// Exact quantile under the sketch's rank convention: 0-based rank
// ceil(q * (n - 1)) of the sorted sample.
double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(values.size() - 1)));
  return values[rank];
}

TEST(QuantileSketch, RelativeErrorBoundHolds) {
  QuantileSketchOptions options;
  options.relative_error = 0.01;
  QuantileSketch sketch(options);
  std::vector<double> values;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> uniform(0.1, 5000.0);
  for (int i = 0; i < 20000; ++i) {
    const double v = uniform(rng);
    values.push_back(v);
    sketch.Observe(v);
  }
  EXPECT_EQ(sketch.count(), 20000);
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const double exact = ExactQuantile(values, q);
    const double estimate = sketch.Quantile(q);
    EXPECT_LE(std::abs(estimate - exact), options.relative_error * exact)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate;
  }
}

TEST(QuantileSketch, HeavyTailedDistributionStaysWithinBound) {
  QuantileSketchOptions options;
  options.relative_error = 0.02;
  QuantileSketch sketch(options);
  std::vector<double> values;
  std::mt19937_64 rng(11);
  std::lognormal_distribution<double> lognormal(0.0, 2.0);
  for (int i = 0; i < 20000; ++i) {
    const double v = lognormal(rng);
    values.push_back(v);
    sketch.Observe(v);
  }
  for (double q : {0.5, 0.95, 0.99}) {
    const double exact = ExactQuantile(values, q);
    EXPECT_LE(std::abs(sketch.Quantile(q) - exact),
              options.relative_error * exact)
        << "q=" << q;
  }
}

TEST(QuantileSketch, ZeroAndSubMinValuesLandInZeroBucket) {
  QuantileSketch sketch;
  sketch.Observe(0.0);
  sketch.Observe(-3.0);                 // clamped into the zero bucket
  sketch.Observe(1e-9);                 // below min_value
  EXPECT_EQ(sketch.count(), 3);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.0), 0.0);
}

TEST(QuantileSketch, EmptySketchReportsZero) {
  QuantileSketch sketch;
  EXPECT_EQ(sketch.count(), 0);
  EXPECT_DOUBLE_EQ(sketch.sum(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 0.0);
}

TEST(QuantileSketch, ValuesAboveMaxAreClampedNotLost) {
  QuantileSketchOptions options;
  options.max_value = 100.0;
  QuantileSketch sketch(options);
  sketch.Observe(1e9);
  EXPECT_EQ(sketch.count(), 1);
  // The estimate is capped near max_value but the sample is counted.
  EXPECT_LE(sketch.Quantile(1.0), 100.0 * (1.0 + options.relative_error));
  EXPECT_GT(sketch.Quantile(1.0), 0.0);
}

// Merging two sketches must be exactly equivalent to observing the union,
// bucket for bucket — this is what makes the window ring's merged read
// well-defined.
TEST(QuantileSketch, MergeMatchesUnionObservation) {
  QuantileSketch a, b, both;
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> uniform(0.5, 900.0);
  for (int i = 0; i < 5000; ++i) {
    const double v = uniform(rng);
    both.Observe(v);
    if (i % 2 == 0) {
      a.Observe(v);
    } else {
      b.Observe(v);
    }
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  // Summation order differs between the merged and union paths, so compare
  // sums to a relative tolerance; bucket counts (and thus quantiles) are
  // integer-exact.
  EXPECT_NEAR(a.sum(), both.sum(), 1e-9 * std::abs(both.sum()));
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), both.Quantile(q)) << "q=" << q;
  }
}

TEST(WindowedQuantileSketch, WindowCoversRecentIntervalsOnly) {
  WindowedQuantileSketch sketch("w_ms", /*window_intervals=*/3);
  // Interval 0: values around 1000. These must age out of the window after
  // 3 Advance() calls but stay in the cumulative sketch forever.
  for (int i = 0; i < 100; ++i) sketch.Observe(1000.0);
  sketch.Advance();
  for (int i = 0; i < 100; ++i) sketch.Observe(1.0);
  sketch.Advance();
  for (int i = 0; i < 100; ++i) sketch.Observe(1.0);
  sketch.Advance();
  for (int i = 0; i < 100; ++i) sketch.Observe(1.0);

  const SketchSnapshot snapshot = sketch.Snapshot();
  EXPECT_EQ(snapshot.name, "w_ms");
  EXPECT_EQ(snapshot.window_intervals, 3);
  EXPECT_EQ(snapshot.cumulative_count, 400);
  EXPECT_EQ(snapshot.window_count, 300);  // the 1000s aged out
  ASSERT_FALSE(snapshot.window_quantiles.empty());
  // Every window quantile is ~1.0; the cumulative p99 still sees the 1000s.
  for (const SketchQuantile& q : snapshot.window_quantiles) {
    EXPECT_NEAR(q.value, 1.0, 0.05) << "q=" << q.q;
  }
  double cumulative_p99 = 0.0;
  for (const SketchQuantile& q : snapshot.cumulative_quantiles) {
    if (q.q == 0.99) cumulative_p99 = q.value;
  }
  EXPECT_NEAR(cumulative_p99, 1000.0, 1000.0 * 0.015);
}

// Until the first window_intervals Advance() calls, window and cumulative
// views are identical — the property the mid-run /window acceptance check
// relies on (window_intervals defaults to 64, above any short run's batch
// count).
TEST(WindowedQuantileSketch, WindowEqualsCumulativeBeforeFirstRotationOut) {
  WindowedQuantileSketch sketch("w_ms", /*window_intervals=*/8);
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> uniform(0.5, 50.0);
  for (int interval = 0; interval < 5; ++interval) {
    for (int i = 0; i < 200; ++i) sketch.Observe(uniform(rng));
    sketch.Advance();
  }
  const SketchSnapshot snapshot = sketch.Snapshot();
  EXPECT_EQ(snapshot.window_count, snapshot.cumulative_count);
  EXPECT_DOUBLE_EQ(snapshot.window_sum, snapshot.cumulative_sum);
  ASSERT_EQ(snapshot.window_quantiles.size(),
            snapshot.cumulative_quantiles.size());
  for (size_t i = 0; i < snapshot.window_quantiles.size(); ++i) {
    EXPECT_DOUBLE_EQ(snapshot.window_quantiles[i].value,
                     snapshot.cumulative_quantiles[i].value);
  }
}

TEST(WindowedQuantileSketch, ResetClearsEverything) {
  WindowedQuantileSketch sketch("w_ms", /*window_intervals=*/2);
  sketch.Observe(5.0);
  sketch.Advance();
  sketch.Observe(7.0);
  sketch.Reset();
  const SketchSnapshot snapshot = sketch.Snapshot();
  EXPECT_EQ(snapshot.window_count, 0);
  EXPECT_EQ(snapshot.cumulative_count, 0);
}

// Ring wrap-around: after more Advance() calls than the ring holds, the
// window must cover exactly the last `window_intervals` periods (current
// open interval included) and nothing older. Verified against a brute-force
// sketch rebuilt from those periods' raw samples: ring merging is
// bucket-exact, so the quantiles must match to the bit, not within
// tolerance. The pre-wrap tests above never rotate a slot twice; this is
// the first coverage of a slot being cleared and refilled.
TEST(WindowedQuantileSketch, RingWrapAroundMatchesBruteForceRecompute) {
  constexpr int kRing = 64;
  constexpr int kIntervals = 80;  // > kRing: every early slot is overwritten
  constexpr int kPerInterval = 50;
  WindowedQuantileSketch sketch("w_ms", kRing);
  std::mt19937_64 rng(29);
  std::vector<std::vector<double>> by_interval(kIntervals);
  for (int interval = 0; interval < kIntervals; ++interval) {
    // Per-interval scale drifts upward so the aged-out early intervals
    // measurably separate the window view from the cumulative one.
    std::uniform_real_distribution<double> uniform(
        1.0 + interval, 2.0 * (1.0 + interval));
    for (int i = 0; i < kPerInterval; ++i) {
      const double v = uniform(rng);
      by_interval[static_cast<size_t>(interval)].push_back(v);
      sketch.Observe(v);
    }
    // The final interval stays open: the window includes it.
    if (interval + 1 < kIntervals) sketch.Advance();
  }

  const SketchSnapshot snapshot = sketch.Snapshot();
  EXPECT_EQ(snapshot.cumulative_count,
            static_cast<int64_t>(kIntervals) * kPerInterval);
  EXPECT_EQ(snapshot.window_count, static_cast<int64_t>(kRing) * kPerInterval);

  QuantileSketch brute;
  for (int interval = kIntervals - kRing; interval < kIntervals; ++interval) {
    for (double v : by_interval[static_cast<size_t>(interval)]) {
      brute.Observe(v);
    }
  }
  ASSERT_FALSE(snapshot.window_quantiles.empty());
  for (const SketchQuantile& q : snapshot.window_quantiles) {
    EXPECT_DOUBLE_EQ(q.value, brute.Quantile(q.q)) << "q=" << q.q;
  }

  // The window has genuinely diverged from the cumulative sketch — the
  // dropped small-valued intervals still weigh the cumulative p50 down.
  double window_p50 = 0.0;
  double cumulative_p50 = 0.0;
  for (const SketchQuantile& q : snapshot.window_quantiles) {
    if (q.q == 0.5) window_p50 = q.value;
  }
  for (const SketchQuantile& q : snapshot.cumulative_quantiles) {
    if (q.q == 0.5) cumulative_p50 = q.value;
  }
  EXPECT_GT(window_p50, cumulative_p50 * 1.2);
}

TEST(WindowedQuantileSketch, SnapshotRanksAreTheDocumentedSet) {
  const std::vector<double> ranks = SketchSnapshotRanks();
  ASSERT_EQ(ranks.size(), 4u);
  EXPECT_DOUBLE_EQ(ranks[0], 0.5);
  EXPECT_DOUBLE_EQ(ranks[1], 0.9);
  EXPECT_DOUBLE_EQ(ranks[2], 0.95);
  EXPECT_DOUBLE_EQ(ranks[3], 0.99);
}

}  // namespace
}  // namespace dasc::util
