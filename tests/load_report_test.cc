// Tests for the dasc-load-report/1 artifact: writer -> reader round trip,
// the multi-window SLO burn-rate math, and schema rejection. See
// DESIGN.md §15.5.
#include "sim/load_report.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace dasc::sim {
namespace {

LoadReport SampleReport() {
  LoadReport r;
  r.header.instance = "synthetic(workers=10,tasks=20,seed=3)";
  r.header.algorithm = "Greedy";
  r.header.process = "bursty";
  r.header.seed = 3;
  r.header.version = "0.8.0";
  r.header.git_sha = "abc123def456";
  r.header.build_type = "Release";
  r.rates = {12000.0, 11950.0, 11950.0 / 12000.0, 20, 0.1, 50.0};
  r.latency.push_back({"e2e_intended", 20, 3.0, 2.5, 8.0, 12.0, 13.0, 13.5});
  r.latency.push_back({"e2e_submit", 20, 2.8, 2.4, 7.5, 11.0, 12.0, 12.5});
  r.latency.push_back({"send_lag", 20, 0.1, 0.08, 0.2, 0.3, 0.4, 0.4});
  r.service = {15, 12, 18, 2, 0.1, 0.004};
  r.sketch = {"service_task_e2e_ms_window", 20, 2.4, 7.6, 11.2, true};
  r.reconcile = {7.5, 7.6, 0.013, 0.05, true};
  LoadSloDefinition def;
  def.name = "p99_e2e_ms";
  def.threshold_ms = 100.0;
  def.budget = 0.01;
  LoadSloResult slo;
  slo.def = def;
  slo.long_bad = 0.02;
  slo.short_bad = 0.04;
  slo.long_burn = 2.0;
  slo.short_burn = 4.0;
  slo.breached = true;
  r.slos.push_back(slo);
  r.queue_depth.push_back({0.01, 5.0});
  r.queue_depth.push_back({0.05, 2.0});
  r.anomalies.push_back({"heartbeat_stall", 7, 120.0, 50.0, 321.0});
  return r;
}

TEST(LoadReportRoundTrip, AllBlocksSurvive) {
  const LoadReport written = SampleReport();
  std::ostringstream out;
  WriteLoadReportJsonl(out, written);

  std::istringstream in(out.str());
  auto got = ReadLoadReportJsonl(in);
  ASSERT_TRUE(got.ok()) << got.status().message();

  EXPECT_EQ(got->header.instance, written.header.instance);
  EXPECT_EQ(got->header.algorithm, written.header.algorithm);
  EXPECT_EQ(got->header.process, written.header.process);
  EXPECT_EQ(got->header.seed, written.header.seed);
  EXPECT_EQ(got->header.version, written.header.version);
  EXPECT_EQ(got->header.git_sha, written.header.git_sha);
  EXPECT_EQ(got->header.build_type, written.header.build_type);

  EXPECT_DOUBLE_EQ(got->rates.offered_per_min, written.rates.offered_per_min);
  EXPECT_DOUBLE_EQ(got->rates.achieved_per_min,
                   written.rates.achieved_per_min);
  EXPECT_EQ(got->rates.sent, written.rates.sent);
  EXPECT_DOUBLE_EQ(got->rates.time_scale, written.rates.time_scale);

  ASSERT_EQ(got->latency.size(), written.latency.size());
  for (size_t i = 0; i < written.latency.size(); ++i) {
    EXPECT_EQ(got->latency[i].series, written.latency[i].series);
    EXPECT_EQ(got->latency[i].count, written.latency[i].count);
    EXPECT_DOUBLE_EQ(got->latency[i].p95_ms, written.latency[i].p95_ms);
    EXPECT_DOUBLE_EQ(got->latency[i].p999_ms, written.latency[i].p999_ms);
  }

  EXPECT_EQ(got->service.batches, written.service.batches);
  EXPECT_EQ(got->service.served, written.service.served);
  EXPECT_DOUBLE_EQ(got->service.unserved_rate, written.service.unserved_rate);

  EXPECT_EQ(got->sketch.name, written.sketch.name);
  EXPECT_EQ(got->sketch.scraped, written.sketch.scraped);
  EXPECT_DOUBLE_EQ(got->sketch.p95_ms, written.sketch.p95_ms);

  EXPECT_DOUBLE_EQ(got->reconcile.loadgen_p95_ms,
                   written.reconcile.loadgen_p95_ms);
  EXPECT_EQ(got->reconcile.agree, written.reconcile.agree);

  ASSERT_EQ(got->slos.size(), 1u);
  EXPECT_EQ(got->slos[0].def.name, "p99_e2e_ms");
  EXPECT_DOUBLE_EQ(got->slos[0].def.budget, 0.01);
  EXPECT_DOUBLE_EQ(got->slos[0].long_burn, 2.0);
  EXPECT_TRUE(got->slos[0].breached);

  ASSERT_EQ(got->queue_depth.size(), 2u);
  EXPECT_DOUBLE_EQ(got->queue_depth[1].depth, 2.0);

  ASSERT_EQ(got->anomalies.size(), 1u);
  EXPECT_EQ(got->anomalies[0].kind, "heartbeat_stall");
  EXPECT_EQ(got->anomalies[0].batch_seq, 7);
}

TEST(LoadReportSchema, RejectsUnknownSchemaAndMissingHeader) {
  std::istringstream wrong(
      "{\"type\":\"load_run\",\"schema\":\"dasc-load-report/999\"}\n");
  EXPECT_FALSE(ReadLoadReportJsonl(wrong).ok());

  std::istringstream headerless("{\"type\":\"rates\",\"sent\":5}\n");
  EXPECT_FALSE(ReadLoadReportJsonl(headerless).ok());
}

// The multi-window burn-rate rule: breached iff the whole run has spent its
// budget AND the trailing window is still burning. A recovered early spike
// trips only the long window; a late-developing problem under an intact
// overall budget trips only the short one; neither alone pages.
TEST(LoadSlo, MultiWindowBurnRateRule) {
  LoadSloDefinition def;
  def.name = "p99_e2e_ms";
  def.kind = LoadSloDefinition::Kind::kLatencyQuantile;
  def.threshold_ms = 100.0;
  def.budget = 0.10;
  def.short_window = 0.25;

  // 100 samples; the short window is the trailing 25.
  auto make = [](int total, int bad_prefix, int bad_suffix) {
    std::vector<LoadSample> samples;
    for (int i = 0; i < total; ++i) {
      const bool bad = i < bad_prefix || i >= total - bad_suffix;
      samples.push_back({bad ? 200.0 : 10.0, true});
    }
    return samples;
  };

  // Clean run: no burn anywhere.
  LoadSloResult clean = EvaluateLoadSlo(def, make(100, 0, 0));
  EXPECT_DOUBLE_EQ(clean.long_burn, 0.0);
  EXPECT_DOUBLE_EQ(clean.short_burn, 0.0);
  EXPECT_FALSE(clean.breached);

  // Early spike (30 bad, all recovered): long burn 3x but the short window
  // is quiet — no page.
  LoadSloResult early = EvaluateLoadSlo(def, make(100, 30, 0));
  EXPECT_DOUBLE_EQ(early.long_bad, 0.30);
  EXPECT_DOUBLE_EQ(early.long_burn, 3.0);
  EXPECT_DOUBLE_EQ(early.short_burn, 0.0);
  EXPECT_FALSE(early.breached);

  // Late trickle (5 bad at the tail): the short window burns 2x but the
  // overall budget is intact (5% < 10%) — no page yet.
  LoadSloResult late = EvaluateLoadSlo(def, make(100, 0, 5));
  EXPECT_DOUBLE_EQ(late.long_bad, 0.05);
  EXPECT_DOUBLE_EQ(late.short_bad, 0.20);
  EXPECT_FALSE(late.breached);

  // Sustained burn (20 bad at the tail): both windows over 1x — page.
  LoadSloResult sustained = EvaluateLoadSlo(def, make(100, 0, 20));
  EXPECT_DOUBLE_EQ(sustained.long_bad, 0.20);
  EXPECT_DOUBLE_EQ(sustained.short_bad, 0.80);
  EXPECT_TRUE(sustained.breached);
}

TEST(LoadSlo, UnservedRateKindCountsUnservedNotLatency) {
  LoadSloDefinition def;
  def.name = "unserved_rate";
  def.kind = LoadSloDefinition::Kind::kUnservedRate;
  def.budget = 0.25;
  def.short_window = 0.5;

  std::vector<LoadSample> samples;
  for (int i = 0; i < 10; ++i) {
    // High latencies everywhere; only the last four tasks are unserved.
    samples.push_back({1e6, /*served=*/i < 6});
  }
  const LoadSloResult result = EvaluateLoadSlo(def, samples);
  EXPECT_DOUBLE_EQ(result.long_bad, 0.4);
  EXPECT_DOUBLE_EQ(result.short_bad, 0.8);
  EXPECT_TRUE(result.breached);

  // Empty-sample evaluation is defined and unbreached.
  const LoadSloResult empty = EvaluateLoadSlo(def, {});
  EXPECT_FALSE(empty.breached);
}

}  // namespace
}  // namespace dasc::sim
