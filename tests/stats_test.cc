// Tests for the streaming statistics accumulators.
#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "util/stats.h"

namespace dasc::util {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(5.0);
  EXPECT_EQ(stats.count(), 1);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Population variance is 4 -> sample variance 4 * 8 / 7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, NumericallyStableOnLargeOffsets) {
  // Naive sum-of-squares loses precision at offset 1e9; Welford must not.
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) {
    stats.Add(1e9 + (i % 2 == 0 ? 1.0 : -1.0));
  }
  EXPECT_NEAR(stats.mean(), 1e9, 1e-3);
  EXPECT_NEAR(stats.variance(), 1.0, 1e-2);
}

TEST(PercentilesTest, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_EQ(p.Quantile(0.5), 0.0);
}

TEST(PercentilesTest, ExactRanksAndInterpolation) {
  Percentiles p;
  for (double v : {10.0, 20.0, 30.0, 40.0}) p.Add(v);
  EXPECT_DOUBLE_EQ(p.Quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(p.Quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(p.Median(), 25.0);           // between 20 and 30
  EXPECT_DOUBLE_EQ(p.Quantile(1.0 / 3.0), 20.0);
}

TEST(PercentilesTest, AddAfterQueryReSorts) {
  Percentiles p;
  p.Add(1.0);
  p.Add(3.0);
  EXPECT_DOUBLE_EQ(p.Median(), 2.0);
  p.Add(100.0);
  EXPECT_DOUBLE_EQ(p.Quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(p.Median(), 3.0);
}

TEST(PercentilesTest, MatchesRunningStatsOnUniformSamples) {
  Rng rng(5);
  Percentiles p;
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.UniformDouble(0, 1);
    p.Add(v);
    stats.Add(v);
  }
  EXPECT_NEAR(p.Median(), 0.5, 0.02);
  EXPECT_NEAR(p.Quantile(0.95), 0.95, 0.02);
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

}  // namespace
}  // namespace dasc::util
