// Fig. 9: effect of each worker's skill set size range [sp-,sp+] (synthetic).
// Paper sweep: [1,5], [1,10], [1,15], [1,20], [1,25].
#include "common/bench_util.h"
#include "gen/synthetic.h"

int main(int argc, char** argv) {
  using namespace dasc;
  bench::BenchConfig defaults;
  defaults.scale = 1.0;
  defaults.reps = 2;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv, defaults);
  std::vector<bench::SweepPoint> points;
  for (int hi : {5, 10, 15, 20, 25}) {
    gen::SyntheticParams params =
        bench::ScaledSynthetic(gen::SyntheticParams{}, config.scale);
    params.seed = config.seed;
    params.worker_skills = {1, hi};
    points.push_back({"[1," + std::to_string(hi) + "]",
                      bench::SyntheticFactory(params)});
  }
  bench::RunSimSweep("Fig. 9: worker skill set size [sp-,sp+] (synthetic)",
                     "|WS|", std::move(points), config);
  return 0;
}
