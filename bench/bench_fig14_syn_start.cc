// Fig. 14 (Appendix C): start timestamp range [st-,st+] (synthetic).
// Paper sweep: [0,65], [0,70], [0,75], [0,80], [0,85].
#include "common/bench_util.h"
#include "gen/synthetic.h"

int main(int argc, char** argv) {
  using namespace dasc;
  bench::BenchConfig defaults;
  defaults.scale = 1.0;
  defaults.reps = 2;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv, defaults);
  std::vector<bench::SweepPoint> points;
  for (double hi : {65.0, 70.0, 75.0, 80.0, 85.0}) {
    gen::SyntheticParams params =
        bench::ScaledSynthetic(gen::SyntheticParams{}, config.scale);
    params.seed = config.seed;
    params.start_time = {0.0, hi};
    points.push_back({"[0," + std::to_string(static_cast<int>(hi)) + "]",
                      bench::SyntheticFactory(params)});
  }
  bench::RunSimSweep("Fig. 14: start timestamp [st-,st+] (synthetic)",
                     "[st-,st+]", std::move(points), config);
  return 0;
}
