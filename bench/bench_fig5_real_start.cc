// Fig. 5: effect of the start timestamp range [st-,st+] (real data).
// Paper sweep: [0,150], [0,175], [0,200], [0,225], [0,250].
#include "common/bench_util.h"
#include "gen/meetup.h"

int main(int argc, char** argv) {
  using namespace dasc;
  bench::BenchConfig defaults;
  defaults.scale = 1.0;
  defaults.batch_interval = 1.0;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv, defaults);
  std::vector<bench::SweepPoint> points;
  for (double hi : {150.0, 175.0, 200.0, 225.0, 250.0}) {
    gen::MeetupParams params =
        bench::ScaledMeetup(gen::MeetupParams{}, config.scale);
    params.seed = config.seed;
    params.start_time = {0.0, hi};
    points.push_back({"[0," + std::to_string(static_cast<int>(hi)) + "]",
                      bench::MeetupFactory(params)});
  }
  bench::RunSimSweep("Fig. 5: start timestamp [st-,st+] (real)", "[st-,st+]",
                     std::move(points), config);
  return 0;
}
