#include "common/bench_util.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

#include <fstream>

#include "algo/registry.h"
#include "sim/metrics.h"
#include "sim/run_report.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/http_server.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace dasc::bench {

BenchConfig ParseBenchArgs(int argc, char** argv, BenchConfig defaults) {
  BenchConfig config = defaults;
  util::FlagParser parser;
  int64_t seed = static_cast<int64_t>(config.seed);
  int64_t reps = config.reps;
  int64_t threads = config.threads;
  parser.AddDouble("scale", &config.scale, "workload size multiplier");
  parser.AddInt("seed", &seed, "base RNG seed");
  parser.AddString("algos", &config.algos, "comma-separated allocator names");
  parser.AddInt("reps", &reps, "repetitions averaged per cell");
  parser.AddDouble("interval", &config.batch_interval,
                   "platform batch interval");
  parser.AddBool("csv", &config.csv, "emit CSV instead of aligned tables");
  parser.AddInt("threads", &threads,
                "worker threads (0 = hardware concurrency, 1 = serial)");
  parser.AddString("run-report", &config.run_report,
                   "write a JSONL run report to this path");
  parser.AddBool("audit", &config.audit,
                 "audit every batch (constraint re-check + optimality gap)");
  int64_t serve_port = config.serve_port;
  parser.AddInt("serve-metrics", &serve_port,
                "serve live telemetry on 127.0.0.1:PORT during the sweep "
                "(0 = ephemeral port; default off)");
  const util::Status status = parser.Parse(argc, argv);
  config.seed = static_cast<uint64_t>(seed);
  config.reps = static_cast<int>(reps);
  config.threads = static_cast<int>(threads);
  config.serve_port = serve_port;
  if (!status.ok() || !parser.positional().empty() || config.scale <= 0.0 ||
      config.reps < 1 || config.batch_interval <= 0.0 || config.threads < 0) {
    std::fprintf(stderr, "%s\nusage: %s [flags]\n%sknown algorithms:",
                 status.ToString().c_str(), argv[0],
                 parser.HelpText().c_str());
    for (const auto& name : algo::KnownAllocatorNames()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
  util::SetThreads(config.threads);
  return config;
}

int ScaleCount(int count, double scale) {
  return std::max(1, static_cast<int>(std::lround(count * scale)));
}

gen::SyntheticParams ScaledSynthetic(gen::SyntheticParams params,
                                     double scale) {
  params.num_workers = ScaleCount(params.num_workers, scale);
  params.num_tasks = ScaleCount(params.num_tasks, scale);
  return params;
}

gen::MeetupParams ScaledMeetup(gen::MeetupParams params, double scale) {
  params.num_workers = ScaleCount(params.num_workers, scale);
  params.num_tasks = ScaleCount(params.num_tasks, scale);
  params.num_groups = ScaleCount(params.num_groups, scale);
  return params;
}

InstanceFactory SyntheticFactory(gen::SyntheticParams params) {
  return [params](uint64_t seed) {
    gen::SyntheticParams p = params;
    p.seed = seed;
    return gen::GenerateSynthetic(p);
  };
}

InstanceFactory MeetupFactory(gen::MeetupParams params) {
  return [params](uint64_t seed) {
    gen::MeetupParams p = params;
    p.seed = seed;
    return gen::GenerateMeetup(p);
  };
}

void RunSimSweep(const std::string& title, const std::string& x_name,
                 std::vector<SweepPoint> points, const BenchConfig& config) {
  auto allocators_or = algo::CreateAllocators(config.algos, config.seed);
  if (!allocators_or.ok()) {
    std::fprintf(stderr, "%s\n", allocators_or.status().ToString().c_str());
    std::exit(2);
  }
  // Collect the display header once (allocator instances are re-created per
  // cell so stateful RNGs do not leak across cells).
  std::vector<std::string> names;
  {
    std::stringstream stream(config.algos);
    std::string token;
    while (std::getline(stream, token, ',')) {
      if (!token.empty()) names.push_back(token);
    }
  }

  sim::SimulatorOptions options;
  options.batch_interval = config.batch_interval;
  options.audit = config.audit;

  // Live telemetry for long sweeps: the exposition server reads the global
  // registry, which every concurrent cell's simulator writes into.
  util::MetricsHttpServer::Options server_options;
  server_options.port = static_cast<int>(config.serve_port);
  util::MetricsHttpServer server(server_options);
  if (config.serve_port >= 0) {
    const util::Status serve_status = server.Start();
    if (!serve_status.ok()) {
      std::fprintf(stderr, "--serve-metrics: %s\n",
                   serve_status.ToString().c_str());
      std::exit(2);
    }
    std::printf("serving telemetry on 127.0.0.1:%d\n", server.port());
    std::fflush(stdout);
  }

  util::TablePrinter score_table(title + " - score");
  util::TablePrinter time_table(title + " - running time (ms)");
  std::vector<std::string> header = {x_name};
  for (const auto& name : names) {
    auto allocator = algo::CreateAllocator(name, config.seed);
    header.push_back(std::string((*allocator)->name()));
  }
  score_table.AddRow(header);
  time_table.AddRow(header);

  // Flatten the sweep into independent (point, rep, algorithm) cells so the
  // pool can run them concurrently. Determinism: every cell's workload seed
  // (config.seed + rep) and allocator seed (config.seed + 1000*rep + 1) is
  // derived from the cell's indices *before* dispatch, each cell regenerates
  // its instance from that seed, and results land in a per-cell slot merged
  // below in the same (point, rep, algo) order the serial harness used — so
  // score tables are bit-identical for every thread count. Cell wall-clock
  // (the time tables) contends for cores when cells run concurrently.
  struct Cell {
    size_t point = 0;
    int rep = 0;
    size_t algo = 0;
  };
  std::vector<Cell> cells;
  cells.reserve(points.size() * static_cast<size_t>(config.reps) *
                names.size());
  for (size_t p = 0; p < points.size(); ++p) {
    for (int rep = 0; rep < config.reps; ++rep) {
      for (size_t a = 0; a < names.size(); ++a) {
        cells.push_back({p, rep, a});
      }
    }
  }
  std::vector<sim::RunStats> results(cells.size());
  util::ParallelFor(
      0, static_cast<int64_t>(cells.size()), 1, [&](int64_t lo, int64_t hi) {
        for (int64_t c = lo; c < hi; ++c) {
          const Cell& cell = cells[static_cast<size_t>(c)];
          auto instance = points[cell.point].make(
              config.seed + static_cast<uint64_t>(cell.rep));
          DASC_CHECK(instance.ok()) << instance.status().ToString();
          auto allocator = algo::CreateAllocator(
              names[cell.algo], config.seed + 1000 * cell.rep + 1);
          DASC_CHECK(allocator.ok());
          results[static_cast<size_t>(c)] =
              sim::MeasureSimulation(*instance, options, **allocator);
        }
      });

  for (size_t p = 0; p < points.size(); ++p) {
    std::vector<double> score_sum(names.size(), 0.0);
    std::vector<double> millis_sum(names.size(), 0.0);
    for (int rep = 0; rep < config.reps; ++rep) {
      for (size_t a = 0; a < names.size(); ++a) {
        const size_t c =
            (p * static_cast<size_t>(config.reps) + static_cast<size_t>(rep)) *
                names.size() +
            a;
        score_sum[a] += results[c].score;
        millis_sum[a] += results[c].millis;
      }
    }
    std::vector<std::string> score_row = {points[p].label};
    std::vector<std::string> time_row = {points[p].label};
    for (size_t a = 0; a < names.size(); ++a) {
      score_row.push_back(
          util::TablePrinter::Num(score_sum[a] / config.reps, 1));
      time_row.push_back(
          util::TablePrinter::Num(millis_sum[a] / config.reps, 1));
    }
    score_table.AddRow(std::move(score_row));
    time_table.AddRow(std::move(time_row));
  }

  std::printf("# %s  (scale=%g seed=%llu reps=%d interval=%g threads=%d)\n",
              title.c_str(), config.scale,
              static_cast<unsigned long long>(config.seed), config.reps,
              config.batch_interval, util::Threads());
  if (config.csv) {
    score_table.PrintCsv(std::cout);
    std::printf("\n");
    time_table.PrintCsv(std::cout);
  } else {
    score_table.Print(std::cout);
    std::printf("\n");
    time_table.Print(std::cout);
  }
  std::printf("\n");

  if (!config.run_report.empty()) {
    std::ofstream out(config.run_report);
    if (!out) {
      std::fprintf(stderr, "cannot open --run-report=%s\n",
                   config.run_report.c_str());
      std::exit(2);
    }
    sim::RunReportHeader report_header;
    report_header.kind = "bench_sweep";
    report_header.instance = title;
    sim::WriteRunReportJsonl(out, report_header, results,
                             util::GlobalMetrics());
  }
}

}  // namespace dasc::bench
