// Shared harness for the per-figure/per-table benchmark binaries.
//
// Every binary regenerates one table or figure of the paper's evaluation:
// it sweeps one workload parameter, runs the requested algorithms through
// the full dynamic simulation, and prints a `score` table and a `time (ms)`
// table whose rows/series match the paper's plots.
//
// Common flags (all binaries):
//   --scale=F     workload size multiplier (default per binary; 1 = paper)
//   --seed=N      base RNG seed
//   --algos=a,b   comma list from algo::KnownAllocatorNames()
//   --reps=N      repetitions averaged per cell (different seeds)
//   --interval=F  batch interval of the simulated platform
//   --csv         emit CSV instead of aligned tables
//   --threads=N   worker threads for the sweep and for candidate generation
//                 (util::SetThreads): 0 = hardware concurrency (default),
//                 1 = exact serial fallback reproducing the single-threaded
//                 harness bit-for-bit. Independent (sweep-point, rep,
//                 algorithm) simulation cells run concurrently; score tables
//                 are identical for every thread count (per-cell seeds are
//                 derived before dispatch and results merged in index
//                 order), but per-cell wall-clock in the time tables gets
//                 noisier as concurrent cells contend for cores — use
//                 --threads=1 for timing-fidelity runs.
//   --run-report=PATH  write a dasc-run-report/3 JSONL file (one stats line
//                 per simulation cell plus the metrics-registry dump; see
//                 src/sim/run_report.h) after the sweep.
//   --serve-metrics=PORT  serve live telemetry (Prometheus /metrics, JSON
//                 /snapshot, windowed quantiles /window) on 127.0.0.1:PORT
//                 for the duration of the sweep; 0 binds an ephemeral port
//                 (printed as "serving telemetry on ..."). Watch with
//                 `dasc_report live <port>`.
//   --audit=BOOL  run the allocation auditor on every batch (default true):
//                 independent constraint re-validation plus the
//                 dependency-relaxed optimality gap, so every bench run
//                 doubles as an empirical check of the paper's quality
//                 claims. Audit results ride along in the run report; any
//                 constraint violation aborts the bench.
#ifndef DASC_BENCH_COMMON_BENCH_UTIL_H_
#define DASC_BENCH_COMMON_BENCH_UTIL_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "gen/meetup.h"
#include "gen/params.h"
#include "gen/synthetic.h"
#include "sim/simulator.h"

namespace dasc::bench {

struct BenchConfig {
  double scale = 0.2;
  uint64_t seed = 42;
  std::string algos = "greedy,game,game5,gg,closest,random";
  int reps = 1;
  double batch_interval = 5.0;
  bool csv = false;
  // See the --threads flag comment above. ParseBenchArgs installs the value
  // globally via util::SetThreads.
  int threads = 0;
  // When non-empty, RunSimSweep appends a JSONL run report here.
  std::string run_report;
  // See the --audit flag comment above.
  bool audit = true;
  // --serve-metrics: when >= 0, RunSimSweep serves the global metrics
  // registry on 127.0.0.1:<port> (0 = ephemeral) for the duration of the
  // sweep, so long paper-figure runs can be watched with `dasc_report
  // live` or scraped by Prometheus. -1 (default) disables the server.
  int64_t serve_port = -1;
};

// Parses the common flags over `defaults`; prints usage and exits on bad
// input or --help.
BenchConfig ParseBenchArgs(int argc, char** argv, BenchConfig defaults);

// max(1, round(count * scale)).
int ScaleCount(int count, double scale);

// Applies --scale to the workload sizes of a parameterization.
gen::SyntheticParams ScaledSynthetic(gen::SyntheticParams params, double scale);
gen::MeetupParams ScaledMeetup(gen::MeetupParams params, double scale);

// Builds the workload of one sweep point for one repetition seed.
using InstanceFactory =
    std::function<util::Result<core::Instance>(uint64_t seed)>;

// One sweep point: x-axis label + the workload factory for it.
struct SweepPoint {
  std::string label;
  InstanceFactory make;
};

// Factories that re-seed a fixed parameterization per repetition.
InstanceFactory SyntheticFactory(gen::SyntheticParams params);
InstanceFactory MeetupFactory(gen::MeetupParams params);

// Runs every configured algorithm over every sweep point through the full
// simulation — regenerating the workload per repetition (seed, seed+1, ...)
// and averaging — and prints the paper-style score and time tables.
void RunSimSweep(const std::string& title, const std::string& x_name,
                 std::vector<SweepPoint> points, const BenchConfig& config);

}  // namespace dasc::bench

#endif  // DASC_BENCH_COMMON_BENCH_UTIL_H_
