// Table VI: small-scale comparison against the exact DFS optimum.
// Paper configuration: 20 workers, 40 tasks, skill universe 10, worker skill
// sets in [1,3], dependency sizes in [0,8]; a single batch containing the
// whole instance (everything appears at t=0) so the exact optimum is well
// defined. Reports score and running time for DFS, Game-5%, Greedy, Closest,
// Random, G-G and Game.
#include <cstdio>
#include <cstring>
#include <iostream>

#include "algo/exact.h"
#include "algo/registry.h"
#include "common/bench_util.h"
#include "gen/synthetic.h"
#include "sim/metrics.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace dasc;
  bench::BenchConfig defaults;
  defaults.scale = 1.0;
  defaults.algos = "dfs,game5,greedy,closest,random,gg,game";
  const bench::BenchConfig config =
      bench::ParseBenchArgs(argc, argv, defaults);

  gen::SyntheticParams params;
  params.seed = config.seed;
  params.num_workers = bench::ScaleCount(20, config.scale);
  params.num_tasks = bench::ScaleCount(40, config.scale);
  params.num_skills = 10;
  params.worker_skills = {1, 3};
  params.dependency_size = {0, 8};
  params.dependency_locality = 0;  // tiny instance: the whole past
  params.start_time = {0.0, 0.0};  // everything on the platform at t=0
  auto instance = gen::GenerateSynthetic(params);
  DASC_CHECK(instance.ok()) << instance.status().ToString();

  util::TablePrinter table("Table VI: small-scale vs. exact optimum");
  table.AddRow({"Algorithm", "Score", "Running Time (ms)", "optimal?"});
  std::stringstream stream(config.algos);
  std::string name;
  while (std::getline(stream, name, ',')) {
    if (name.empty()) continue;
    auto allocator = algo::CreateAllocator(name, config.seed + 1);
    DASC_CHECK(allocator.ok()) << allocator.status().ToString();
    const sim::RunStats stats = sim::MeasureSingleBatch(
        *instance, /*now=*/0.0, core::FeasibilityParams{}, **allocator);
    std::string note = "-";
    if (name == "dfs") {
      auto* exact = static_cast<algo::ExactAllocator*>(allocator->get());
      note = exact->last_run_complete() ? "proven optimal"
                                        : "time-limited incumbent";
    }
    table.AddRow({stats.algorithm, std::to_string(stats.score),
                  util::TablePrinter::Num(stats.millis, 1), note});
  }
  std::printf("# Table VI  (scale=%g seed=%llu: %d workers, %d tasks)\n",
              config.scale, static_cast<unsigned long long>(config.seed),
              params.num_workers, params.num_tasks);
  if (config.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  return 0;
}
