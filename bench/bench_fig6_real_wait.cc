// Fig. 6: effect of the waiting time range [wt-,wt+] (real data).
// Paper sweep: [1,3], [2,4], [3,5], [4,6], [5,7].
#include "common/bench_util.h"
#include "gen/meetup.h"

int main(int argc, char** argv) {
  using namespace dasc;
  bench::BenchConfig defaults;
  defaults.scale = 1.0;
  defaults.batch_interval = 1.0;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv, defaults);
  std::vector<bench::SweepPoint> points;
  for (auto [lo, hi] : {std::pair{1.0, 3.0}, {2.0, 4.0}, {3.0, 5.0},
                        {4.0, 6.0}, {5.0, 7.0}}) {
    gen::MeetupParams params =
        bench::ScaledMeetup(gen::MeetupParams{}, config.scale);
    params.seed = config.seed;
    params.wait_time = {lo, hi};
    char label[32];
    std::snprintf(label, sizeof(label), "[%.0f,%.0f]", lo, hi);
    points.push_back({label, bench::MeetupFactory(params)});
  }
  bench::RunSimSweep("Fig. 6: waiting time [wt-,wt+] (real)", "[wt-,wt+]",
                     std::move(points), config);
  return 0;
}
