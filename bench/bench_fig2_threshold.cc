// Fig. 2: effect of the DASC_Game termination threshold.
// The paper sweeps the utility-updating-ratio threshold 0 -> 10% on the real
// data and observes score dropping sharply past 5%. Our best-response loop
// converges in 2-4 rounds per batch, so the knee sits at a higher threshold;
// the sweep is extended to 50% to expose the same score/time trade-off on
// both workload families (see EXPERIMENTS.md E1).
#include <cstdio>
#include <iostream>

#include "algo/game.h"
#include "common/bench_util.h"
#include "gen/meetup.h"
#include "gen/synthetic.h"
#include "sim/metrics.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace dasc;
  bench::BenchConfig defaults;
  defaults.scale = 1.0;
  defaults.batch_interval = 1.0;
  const bench::BenchConfig config =
      bench::ParseBenchArgs(argc, argv, defaults);

  gen::MeetupParams meetup_params =
      bench::ScaledMeetup(gen::MeetupParams{}, config.scale);
  meetup_params.seed = config.seed;
  auto meetup = gen::GenerateMeetup(meetup_params);
  DASC_CHECK(meetup.ok()) << meetup.status().ToString();
  gen::SyntheticParams synthetic_params =
      bench::ScaledSynthetic(gen::SyntheticParams{}, config.scale);
  synthetic_params.seed = config.seed;
  auto synthetic = gen::GenerateSynthetic(synthetic_params);
  DASC_CHECK(synthetic.ok()) << synthetic.status().ToString();

  sim::SimulatorOptions meetup_options;
  meetup_options.batch_interval = config.batch_interval;
  sim::SimulatorOptions synthetic_options;
  synthetic_options.batch_interval = 5.0;

  util::TablePrinter table("Fig. 2: DASC_Game termination threshold");
  table.AddRow({"threshold", "score (real)", "time ms (real)",
                "score (syn)", "time ms (syn)"});
  for (double threshold : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20, 0.30, 0.50}) {
    double meetup_score = 0, meetup_ms = 0, syn_score = 0, syn_ms = 0;
    for (int rep = 0; rep < config.reps; ++rep) {
      algo::GameOptions game_options;
      game_options.threshold = threshold;
      game_options.seed = config.seed + 1000 * rep + 1;
      algo::GameAllocator g1(game_options), g2(game_options);
      const sim::RunStats real_stats =
          sim::MeasureSimulation(*meetup, meetup_options, g1);
      const sim::RunStats syn_stats =
          sim::MeasureSimulation(*synthetic, synthetic_options, g2);
      meetup_score += real_stats.score;
      meetup_ms += real_stats.millis;
      syn_score += syn_stats.score;
      syn_ms += syn_stats.millis;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f%%", threshold * 100.0);
    table.AddRow({label,
                  util::TablePrinter::Num(meetup_score / config.reps, 1),
                  util::TablePrinter::Num(meetup_ms / config.reps, 1),
                  util::TablePrinter::Num(syn_score / config.reps, 1),
                  util::TablePrinter::Num(syn_ms / config.reps, 1)});
  }
  std::printf("# Fig. 2  (scale=%g seed=%llu reps=%d interval=%g)\n",
              config.scale, static_cast<unsigned long long>(config.seed),
              config.reps, config.batch_interval);
  if (config.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  return 0;
}
