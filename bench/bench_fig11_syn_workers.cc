// Fig. 11: effect of the number of workers n (synthetic).
// Paper sweep: 3K, 4K, 5K, 6K, 7K.
#include "common/bench_util.h"
#include "gen/synthetic.h"

int main(int argc, char** argv) {
  using namespace dasc;
  bench::BenchConfig defaults;
  defaults.scale = 1.0;
  defaults.reps = 2;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv, defaults);
  std::vector<bench::SweepPoint> points;
  for (int n : {3000, 4000, 5000, 6000, 7000}) {
    gen::SyntheticParams params =
        bench::ScaledSynthetic(gen::SyntheticParams{}, config.scale);
    params.seed = config.seed;
    params.num_workers = bench::ScaleCount(n, config.scale);
    points.push_back({std::to_string(n / 1000) + "K", bench::SyntheticFactory(params)});
  }
  bench::RunSimSweep("Fig. 11: number of workers n (synthetic)", "n",
                     std::move(points), config);
  return 0;
}
