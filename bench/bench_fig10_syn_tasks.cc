// Fig. 10: effect of the number of tasks m (synthetic).
// Paper sweep: 2K, 3.5K, 5K, 6.5K, 8K.
#include "common/bench_util.h"
#include "gen/synthetic.h"

int main(int argc, char** argv) {
  using namespace dasc;
  bench::BenchConfig defaults;
  defaults.scale = 1.0;
  defaults.reps = 2;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv, defaults);
  std::vector<bench::SweepPoint> points;
  for (int m : {2000, 3500, 5000, 6500, 8000}) {
    gen::SyntheticParams params =
        bench::ScaledSynthetic(gen::SyntheticParams{}, config.scale);
    params.seed = config.seed;
    params.num_tasks = bench::ScaleCount(m, config.scale);
    points.push_back({std::to_string(m / 1000) + "K" +
                          (m % 1000 != 0 ? ".5" : ""),
                      bench::SyntheticFactory(params)});
  }
  bench::RunSimSweep("Fig. 10: number of tasks m (synthetic)", "m",
                     std::move(points), config);
  return 0;
}
