// Fig. 8: effect of the skill universe size r (synthetic).
// Paper sweep: 1100, 1300, 1500, 1700, 1900.
#include "common/bench_util.h"
#include "gen/synthetic.h"

int main(int argc, char** argv) {
  using namespace dasc;
  bench::BenchConfig defaults;
  defaults.scale = 1.0;
  defaults.reps = 2;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv, defaults);
  std::vector<bench::SweepPoint> points;
  for (int r : {1100, 1300, 1500, 1700, 1900}) {
    gen::SyntheticParams params =
        bench::ScaledSynthetic(gen::SyntheticParams{}, config.scale);
    params.seed = config.seed;
    params.num_skills = r;
    points.push_back({std::to_string(r), bench::SyntheticFactory(params)});
  }
  bench::RunSimSweep("Fig. 8: skill universe size r (synthetic)", "r",
                     std::move(points), config);
  return 0;
}
