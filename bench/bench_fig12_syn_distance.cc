// Fig. 12 (Appendix C): max moving distance range [d-,d+] (synthetic).
// Paper sweep: [1,2], [2,3], [3,4], [4,5], [5,6] (x 0.1).
#include "common/bench_util.h"
#include "gen/synthetic.h"

int main(int argc, char** argv) {
  using namespace dasc;
  bench::BenchConfig defaults;
  defaults.scale = 1.0;
  defaults.reps = 2;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv, defaults);
  std::vector<bench::SweepPoint> points;
  for (auto [lo, hi] : {std::pair{1.0, 2.0}, {2.0, 3.0}, {3.0, 4.0},
                        {4.0, 5.0}, {5.0, 6.0}}) {
    gen::SyntheticParams params =
        bench::ScaledSynthetic(gen::SyntheticParams{}, config.scale);
    params.seed = config.seed;
    params.max_distance = {lo * 0.1, hi * 0.1};
    char label[32];
    std::snprintf(label, sizeof(label), "[%.0f,%.0f]", lo, hi);
    points.push_back({label, bench::SyntheticFactory(params)});
  }
  bench::RunSimSweep("Fig. 12: max moving distance [d-,d+]*0.1 (synthetic)",
                     "[d-,d+]", std::move(points), config);
  return 0;
}
