// Ablations for the design decisions DESIGN.md calls out:
//   A. DASC_Game utility variant: marginal contribution (default) vs the
//      literal Eq. 3 expected shares vs Eq. 3 with uniform self-shares.
//   B. DASC_Greedy matching backend: Hungarian (min travel cost) vs
//      Hopcroft-Karp (feasibility only).
//   C. Invalid-pair handling in the platform: binding dispatch with camping
//      (paper narrative) vs free drop — how much the dependency-oblivious
//      baselines really pay.
//   D. Dependency credit: assignment-based (paper Definition 3) vs
//      completion-based.
// Run on both workload families at their defaults.
#include <cstdio>
#include <iostream>

#include "algo/baselines.h"
#include "algo/game.h"
#include "algo/greedy.h"
#include "common/bench_util.h"
#include "gen/meetup.h"
#include "gen/synthetic.h"
#include "geo/road_network.h"
#include "sim/metrics.h"
#include "util/csv.h"

namespace {

using namespace dasc;

struct Workload {
  const char* name;
  core::Instance instance;
  double interval;
};

void RunRow(util::TablePrinter& table, const Workload& w,
            const std::string& label, core::Allocator& allocator,
            sim::SimulatorOptions options) {
  options.batch_interval = w.interval;
  const sim::RunStats stats =
      sim::MeasureSimulation(w.instance, options, allocator);
  table.AddRow({w.name, label, std::to_string(stats.score),
                util::TablePrinter::Num(stats.millis, 1)});
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchConfig defaults;
  defaults.scale = 1.0;
  const bench::BenchConfig config =
      bench::ParseBenchArgs(argc, argv, defaults);

  gen::SyntheticParams sp =
      bench::ScaledSynthetic(gen::SyntheticParams{}, config.scale);
  sp.seed = config.seed;
  auto synthetic = gen::GenerateSynthetic(sp);
  DASC_CHECK(synthetic.ok());
  gen::MeetupParams mp = bench::ScaledMeetup(gen::MeetupParams{}, config.scale);
  mp.seed = config.seed;
  auto meetup = gen::GenerateMeetup(mp);
  DASC_CHECK(meetup.ok());

  std::vector<Workload> workloads;
  workloads.push_back({"synthetic", std::move(*synthetic), 5.0});
  workloads.push_back({"meetup", std::move(*meetup), 1.0});

  std::printf("# Design ablations (scale=%g seed=%llu)\n", config.scale,
              static_cast<unsigned long long>(config.seed));

  // --- A: game utility variants. ---
  util::TablePrinter a("A. DASC_Game utility variant");
  a.AddRow({"workload", "variant", "score", "time (ms)"});
  for (const auto& w : workloads) {
    for (auto [variant, label] :
         {std::pair{algo::GameOptions::UtilityVariant::kMarginal, "marginal"},
          {algo::GameOptions::UtilityVariant::kUniformSelf, "uniform-self"},
          {algo::GameOptions::UtilityVariant::kPaperEq3, "eq3-literal"}}) {
      algo::GameOptions options;
      options.utility_variant = variant;
      options.greedy_init = true;  // isolate dynamics quality from the seed
      options.seed = config.seed + 1;
      algo::GameAllocator game(options);
      RunRow(a, w, label, game, sim::SimulatorOptions{});
    }
  }
  a.Print(std::cout);
  std::printf("\n");

  // --- B: greedy matching backend. ---
  util::TablePrinter b("B. DASC_Greedy matching backend");
  b.AddRow({"workload", "backend", "score", "time (ms)"});
  for (const auto& w : workloads) {
    for (auto [backend, label] :
         {std::pair{algo::GreedyOptions::MatchingBackend::kHungarian,
                    "hungarian"},
          {algo::GreedyOptions::MatchingBackend::kHopcroftKarp,
           "hopcroft-karp"},
          {algo::GreedyOptions::MatchingBackend::kAuction, "auction"}}) {
      algo::GreedyOptions options;
      options.backend = backend;
      algo::GreedyAllocator greedy(options);
      RunRow(b, w, label, greedy, sim::SimulatorOptions{});
    }
  }
  b.Print(std::cout);
  std::printf("\n");

  // --- C: invalid-pair handling (baselines pay for camping). ---
  util::TablePrinter c("C. Invalid-pair handling (Closest baseline)");
  c.AddRow({"workload", "handling", "score", "time (ms)"});
  for (const auto& w : workloads) {
    for (auto [handling, label] :
         {std::pair{sim::SimulatorOptions::InvalidPairHandling::kWait,
                    "binding (camp)"},
          {sim::SimulatorOptions::InvalidPairHandling::kDrop, "free drop"}}) {
      sim::SimulatorOptions options;
      options.invalid_pair_handling = handling;
      algo::ClosestAllocator closest;
      RunRow(c, w, label, closest, options);
    }
  }
  c.Print(std::cout);
  std::printf("\n");

  // --- E: distance function (Euclidean vs road network), meetup workload. ---
  {
    util::TablePrinter e("E. Distance function (Greedy, meetup)");
    e.AddRow({"workload", "distance", "score", "time (ms)"});
    const Workload& w = workloads[1];
    {
      algo::GreedyAllocator greedy;
      RunRow(e, w, "euclidean", greedy, sim::SimulatorOptions{});
    }
    {
      const geo::RoadNetwork network = geo::RoadNetwork::MakeGrid(
          mp.lon_min, mp.lat_min, mp.lon_max, mp.lat_max, {});
      sim::SimulatorOptions options;
      options.params.distance_kind = geo::DistanceKind::kRoadNetwork;
      options.params.road_network = &network;
      algo::GreedyAllocator greedy;
      RunRow(e, w, "road network", greedy, options);
    }
    e.Print(std::cout);
    std::printf("\n");
  }

  // --- F: batch trigger policy (fixed intervals vs event-driven). The
  // synthetic workload is quarter-scale here: event-driven batching fires
  // ~3 batches per arrival/completion, which at 5K x 5K costs minutes. ---
  util::TablePrinter f("F. Batch trigger (Greedy)");
  f.AddRow({"workload", "trigger", "score", "time (ms)"});
  {
    gen::SyntheticParams fsp =
        bench::ScaledSynthetic(gen::SyntheticParams{}, 0.25 * config.scale);
    fsp.seed = config.seed;
    auto fsyn = gen::GenerateSynthetic(fsp);
    DASC_CHECK(fsyn.ok());
    std::vector<Workload> trigger_workloads;
    trigger_workloads.push_back({"syn-1.25K", std::move(*fsyn), 5.0});
    trigger_workloads.push_back({"meetup", std::move(workloads[1].instance),
                                 1.0});
    for (const auto& w : trigger_workloads) {
      auto run = [&](const char* label, sim::SimulatorOptions options) {
        algo::GreedyAllocator greedy;
        const sim::RunStats stats =
            sim::MeasureSimulation(w.instance, options, greedy);
        f.AddRow({w.name, label, std::to_string(stats.score),
                  util::TablePrinter::Num(stats.millis, 1)});
      };
      for (auto [interval, label] :
           {std::pair{10.0, "fixed 10"}, {5.0, "fixed 5"}, {1.0, "fixed 1"}}) {
        sim::SimulatorOptions options;
        options.batch_interval = interval;
        run(label, options);
      }
      sim::SimulatorOptions event_options;
      event_options.batch_trigger =
          sim::SimulatorOptions::BatchTrigger::kEventDriven;
      run("event-driven", event_options);
    }
    // Hand the meetup instance back for the remaining ablations.
    workloads[1].instance = std::move(trigger_workloads[1].instance);
  }
  f.Print(std::cout);
  std::printf("\n");

  // --- D: dependency credit mode. ---
  util::TablePrinter d("D. Dependency credit (Greedy)");
  d.AddRow({"workload", "mode", "score", "time (ms)"});
  for (const auto& w : workloads) {
    for (auto [mode, label] :
         {std::pair{sim::SimulatorOptions::DependencyMode::kAssigned,
                    "assigned (paper)"},
          {sim::SimulatorOptions::DependencyMode::kCompleted, "completed"}}) {
      sim::SimulatorOptions options;
      options.dependency_mode = mode;
      algo::GreedyAllocator greedy;
      RunRow(d, w, label, greedy, options);
    }
  }
  d.Print(std::cout);
  return 0;
}
