// Microbenchmarks (google-benchmark) for the substrate libraries: Hungarian
// assignment, Hopcroft-Karp matching, grid-index radius queries, dependency
// closure construction, one full greedy batch, and one game best-response
// batch. These quantify the building blocks behind the per-figure harnesses.
//
// Before the google-benchmark suite runs, main() writes BENCH_micro.json — a
// machine-readable perf-trajectory record with a stable schema: a JSON array
// of {name, threads, unit, ...} objects. Entries with unit "ms" carry
// ms_mean / ms_p95 (byte-compatible with the pre-`unit` schema); entries in
// any other unit (batches, pairs, rounds, ratio) carry value_mean /
// value_p95 — the old schema squeezed those through ms_* keys, which made
// score trajectories look like latency cliffs to schema-unaware tooling.
//   * per-phase wall-clock of one offline batch at the reduced Table V
//     workload: candidate build, matching (greedy on cached candidates),
//     best-response (game on cached candidates), and total (full G-G);
//   * the serial-vs-parallel BuildCandidates regression guard at scale 1.0
//     (paper-size 5000x5000 synthetic) for threads in {1, 2, 4, 8};
//   * the incremental-candidate comparison on a delta-dominated batch
//     sequence: candidate_build_scratch (per-batch from-scratch rebuilds)
//     vs candidate_build_incremental (one persistent
//     IncrementalCandidateView), acceptance floor >= 3x, plus the
//     candidate_zero_delta_ms bookkeeping guard budgeted at <= 3% of
//     sim_batch_ms;
//   * the observability overhead guard: the same full G-G batch with the
//     metrics runtime kill switch on (batch_metrics_on) vs off
//     (batch_metrics_off) — the acceptance budget is <= 3% overhead
//     enabled-but-unexported;
//   * the allocation-audit overhead guard: one full G-G batch of the
//     reduced Table V workload (sim_batch_ms) next to the auditor's step
//     alone on the same committed assignment (sim_audit_ms) — the
//     constraint re-check + relaxed-bound matching is budgeted at <= 5% of
//     batch time;
//   * the lifecycle-ledger overhead guard: the same committed G-G batch
//     with (sim_ledger_on) and without (sim_ledger_off) the ledger's
//     ObserveBatch/RecordAssigned/Finalize steps — the provenance
//     bookkeeping is budgeted at <= 3% of sim_batch_ms;
//   * the live-telemetry overhead guard: one batch boundary's sketch
//     observe + window advance + time-series delta snapshot + watchdog
//     heartbeat (sim_telemetry_on) against an empty loop
//     (sim_telemetry_off), per boundary, exporter idle — budgeted at <= 3%
//     of sim_batch_ms;
//   * the flight-recorder overhead guard: one batch's worth of black-box
//     events (batch begin/end, three phase spans, decisions, the tracer's
//     per-phase batch record) with the recorder on (flight_recorder_on) vs
//     the runtime kill switch off (flight_recorder_off), per batch —
//     budgeted at <= 3% of sim_batch_ms;
//   * full-simulation headline metrics from one audited G-G run of the
//     reduced Table V workload (sim_headline_*): batches, p95 batch
//     allocator ms, score, the game_rounds histogram summary pulled from
//     the metrics registry, and the audit's empirical approximation ratio.
// Flags (stripped before google-benchmark sees argv):
//   --micro_json=PATH  output path (default BENCH_micro.json)
//   --micro_reps=N     timed repetitions per entry (default 5)
//   --no_micro         skip the JSON report, run only google-benchmark
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "algo/game.h"
#include "algo/greedy.h"
#include "core/assignment.h"
#include "core/batch.h"
#include "core/candidate_view.h"
#include "sim/audit.h"
#include "sim/ledger.h"
#include "sim/metrics_timeseries.h"
#include "sim/service.h"
#include "sim/watchdog.h"
#include "gen/synthetic.h"
#include "geo/grid_index.h"
#include "graph/dag.h"
#include "matching/hopcroft_karp.h"
#include "matching/hungarian.h"
#include "sim/metrics.h"
#include "sim/task_trace.h"
#include "util/flight_recorder.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dasc {
namespace {

void BM_Hungarian(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(7);
  std::vector<std::vector<double>> cost(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
  for (auto& row : cost) {
    for (auto& c : row) c = rng.UniformDouble(0, 100);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::SolveAssignment(cost));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Hungarian)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_HopcroftKarp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(11);
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < n; ++u) {
    for (int k = 0; k < 8; ++k) {
      edges.emplace_back(u, static_cast<int>(rng.UniformInt(0, n - 1)));
    }
  }
  for (auto _ : state) {
    matching::HopcroftKarp hk(n, n);
    for (const auto& [u, v] : edges) hk.AddEdge(u, v);
    benchmark::DoNotOptimize(hk.MaxMatching());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_HopcroftKarp)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_GridIndexQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(13);
  std::vector<geo::Point> points(static_cast<size_t>(n));
  for (auto& p : points) {
    p = {rng.UniformDouble(0, 1), rng.UniformDouble(0, 1)};
  }
  geo::GridIndex index(points);
  std::vector<int32_t> hits;
  for (auto _ : state) {
    hits.clear();
    index.QueryRadius({rng.UniformDouble(0, 1), rng.UniformDouble(0, 1)},
                      0.05, &hits);
    benchmark::DoNotOptimize(hits.size());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_GridIndexQuery)->RangeMultiplier(8)->Range(1000, 64000);

void BM_DagClosure(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(17);
  for (auto _ : state) {
    state.PauseTiming();
    graph::Dag dag(n);
    for (int u = 1; u < n; ++u) {
      for (int k = 0; k < 3; ++k) {
        dag.AddDependency(u, static_cast<graph::NodeId>(
                                 rng.UniformInt(std::max(0, u - 50), u - 1)));
      }
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(dag.TransitiveClosure());
  }
}
BENCHMARK(BM_DagClosure)->RangeMultiplier(4)->Range(256, 4096);

// A single batch of the dynamic platform at Table V defaults (reduced size).
core::Instance MakeBatchInstance(int scale) {
  gen::SyntheticParams params;
  params.num_workers = 200 * scale;
  params.num_tasks = 200 * scale;
  params.num_skills = 60 * scale;
  params.dependency_size = {0, 8};
  params.worker_skills = {1, 5};
  params.start_time = {0.0, 0.0};
  params.wait_time = {10.0, 15.0};
  auto instance = gen::GenerateSynthetic(params);
  DASC_CHECK(instance.ok());
  return std::move(*instance);
}

void BM_GreedyBatch(benchmark::State& state) {
  const core::Instance instance =
      MakeBatchInstance(static_cast<int>(state.range(0)));
  const core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
  for (auto _ : state) {
    algo::GreedyAllocator greedy;
    benchmark::DoNotOptimize(greedy.Allocate(problem));
  }
}
BENCHMARK(BM_GreedyBatch)->RangeMultiplier(2)->Range(1, 4);

void BM_GameBatch(benchmark::State& state) {
  const core::Instance instance =
      MakeBatchInstance(static_cast<int>(state.range(0)));
  const core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
  for (auto _ : state) {
    algo::GameOptions options;
    options.threshold = 0.05;
    algo::GameAllocator game(options);
    benchmark::DoNotOptimize(game.Allocate(problem));
  }
}
BENCHMARK(BM_GameBatch)->RangeMultiplier(2)->Range(1, 4);

void BM_BuildCandidates(benchmark::State& state) {
  const core::Instance instance =
      MakeBatchInstance(static_cast<int>(state.range(0)));
  const core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildCandidates(problem));
  }
}
BENCHMARK(BM_BuildCandidates)->RangeMultiplier(2)->Range(1, 4);

// One full service lifecycle over the batch instance: stream every worker
// and task through the ingest API, drain to terminal decisions, shut the
// batch loop down. Times the service-shape overhead dasc_loadgen's latency
// numbers sit on top of (ingest queue, event-driven batch triggers,
// decision plumbing); BM_GreedyBatch above isolates the allocator's share.
// time_scale compresses the model deadlines so a drain takes milliseconds
// of wall clock instead of the instance's full model horizon.
void BM_ServiceDrain(benchmark::State& state) {
  const core::Instance instance =
      MakeBatchInstance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    algo::GreedyAllocator greedy;
    sim::ServiceOptions options;
    options.time_scale = 2000.0;
    options.min_batch_gap_ms = 0.5;
    options.max_batch_gap_ms = 2.0;
    sim::Service service(instance, greedy, options);
    service.Start();
    for (int w = 0; w < instance.num_workers(); ++w) {
      (void)service.SubmitWorker(w);
    }
    for (int t = 0; t < instance.num_tasks(); ++t) {
      (void)service.SubmitTask(t);
    }
    service.Drain();
    benchmark::DoNotOptimize(service.TakeDecisions());
    service.Shutdown();
  }
}
BENCHMARK(BM_ServiceDrain)->RangeMultiplier(2)->Range(1, 2);

// ---------------------------------------------------------------------------
// BENCH_micro.json: stable-schema perf-trajectory report.

struct MicroEntry {
  std::string name;
  int threads = 1;
  // "ms" entries serialize as ms_mean/ms_p95; any other unit (batches,
  // pairs, rounds, ratio) serializes as value_mean/value_p95.
  std::string unit = "ms";
  double ms_mean = 0.0;
  double ms_p95 = 0.0;
};

// Times `fn` (one warmup + `reps` measured runs) under the current global
// thread setting.
template <typename Fn>
MicroEntry TimeMicro(const std::string& name, int reps, Fn&& fn) {
  MicroEntry entry;
  entry.name = name;
  entry.threads = util::Threads();
  fn();  // warmup
  util::RunningStats stats;
  util::Percentiles percentiles;
  for (int r = 0; r < reps; ++r) {
    util::WallTimer timer;
    fn();
    const double ms = timer.ElapsedMillis();
    stats.Add(ms);
    percentiles.Add(ms);
  }
  entry.ms_mean = stats.mean();
  entry.ms_p95 = percentiles.Quantile(0.95);
  return entry;
}

std::vector<MicroEntry> CollectMicroEntries(int reps) {
  std::vector<MicroEntry> entries;

  // Per-phase wall-clock of one offline batch at the reduced Table V
  // workload (the BM_*Batch instance at range 4: 800 workers x 800 tasks).
  // Each phase isolates one layer via the BatchProblem candidate cache:
  // `matching` and `best_response` run on pre-built candidates, `total` is
  // the full G-G pipeline (candidate build + greedy seed + best response)
  // from a cold cache.
  {
    const core::Instance instance = MakeBatchInstance(4);
    entries.push_back(TimeMicro("candidate_build", reps, [&] {
      core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
      benchmark::DoNotOptimize(core::BuildCandidates(problem));
    }));
    core::BatchProblem cached = core::BatchProblem::AllAt(instance, 0.0);
    cached.Candidates();  // pre-build once; phases below reuse it
    entries.push_back(TimeMicro("matching", reps, [&] {
      algo::GreedyAllocator greedy;
      benchmark::DoNotOptimize(greedy.Allocate(cached));
    }));
    // Incremental-kernel modes of the same matching phase (DESIGN.md §13):
    //   * matching_cold — every knob off: the historical re-solve-everything
    //     scan over the CSR layout (the incremental kernel's control);
    //   * matching_warm — a persistent allocator re-allocating an identical
    //     batch, so every first evaluation hits the cross-batch warm store;
    //   * matching_delta — dual-certificate delta repair instead of cold
    //     re-solves after commits.
    entries.push_back(TimeMicro("matching_cold", reps, [&] {
      algo::GreedyOptions options;
      options.incremental_cache = false;
      options.warm_start = false;
      options.parallel_solve_threshold = 0;
      algo::GreedyAllocator greedy(options);
      benchmark::DoNotOptimize(greedy.Allocate(cached));
    }));
    {
      algo::GreedyAllocator warm;  // persists its warm store across reps
      warm.Allocate(cached);
      entries.push_back(TimeMicro("matching_warm", reps, [&] {
        benchmark::DoNotOptimize(warm.Allocate(cached));
      }));
    }
    entries.push_back(TimeMicro("matching_delta", reps, [&] {
      algo::GreedyOptions options;
      options.delta_repair = true;
      algo::GreedyAllocator greedy(options);
      benchmark::DoNotOptimize(greedy.Allocate(cached));
    }));
    entries.push_back(TimeMicro("best_response", reps, [&] {
      algo::GameOptions options;
      options.threshold = 0.05;
      algo::GameAllocator game(options);
      benchmark::DoNotOptimize(game.Allocate(cached));
    }));
    entries.push_back(TimeMicro("total", reps, [&] {
      core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
      algo::GameOptions options;
      options.threshold = 0.05;
      options.greedy_init = true;
      algo::GameAllocator gg(options);
      benchmark::DoNotOptimize(gg.Allocate(problem));
    }));
  }

  // Serial-vs-parallel BuildCandidates regression guard at scale 1.0: the
  // full Table V synthetic workload (5000 workers x 5000 tasks x 1500
  // skills). Thread counts beyond the machine's cores are still measured so
  // the record is comparable across hosts.
  {
    gen::SyntheticParams params;  // Table V defaults = scale 1.0
    auto instance = gen::GenerateSynthetic(params);
    DASC_CHECK(instance.ok());
    const core::BatchProblem problem =
        core::BatchProblem::AllAt(*instance, 0.0);
    const int saved_threads = util::Threads();
    for (int threads : {1, 2, 4, 8}) {
      util::SetThreads(threads);
      entries.push_back(TimeMicro("build_candidates_scale1", reps, [&] {
        benchmark::DoNotOptimize(core::BuildCandidates(problem));
      }));
    }
    util::SetThreads(saved_threads);
  }

  // Incremental-candidate maintenance vs scratch rebuilds (DESIGN.md §17) on
  // a delta-dominated batch sequence: staggered arrivals over 100 model time
  // units with ~70-unit lifetimes, batched at interval 1.0, so each batch
  // changes a few percent of a market of several hundred live workers and
  // open tasks — the regime the view is built for. candidate_build_scratch
  // runs BuildCandidates + BuildCandidateEdges from scratch on every batch
  // of the sequence; candidate_build_incremental drives one persistent
  // IncrementalCandidateView through the same sequence (first batch pays the
  // resync rebuild, every later batch is O(delta) probes + publish). Both
  // are reported as whole-sequence wall time; the acceptance floor is a
  // >= 3x ratio.
  {
    gen::SyntheticParams params;
    params.num_workers = 1500;
    params.num_tasks = 3000;
    params.num_skills = 50;
    params.dependency_size = {0, 4};
    params.worker_skills = {1, 5};
    params.start_time = {0.0, 100.0};
    params.wait_time = {60.0, 80.0};
    auto generated = gen::GenerateSynthetic(params);
    DASC_CHECK(generated.ok());
    const core::Instance& instance = *generated;
    std::vector<core::BatchProblem> sequence;
    for (double now = 0.0; now <= 180.0; now += 1.0) {
      core::BatchProblem problem;
      problem.instance = &instance;
      problem.now = now;
      for (const core::Worker& w : instance.workers()) {
        if (w.start_time <= now && now <= w.Deadline()) {
          problem.workers.push_back(core::WorkerState::Initial(w));
        }
      }
      for (int t = 0; t < instance.num_tasks(); ++t) {
        const core::Task& task = instance.task(t);
        if (task.start_time <= now && now <= task.Expiry()) {
          problem.open_tasks.push_back(t);
        }
      }
      if (problem.workers.empty() || problem.open_tasks.empty()) continue;
      problem.assigned_before.assign(
          static_cast<size_t>(instance.num_tasks()), 0);
      sequence.push_back(std::move(problem));
    }
    entries.push_back(TimeMicro("candidate_build_scratch", reps, [&] {
      for (const core::BatchProblem& problem : sequence) {
        benchmark::DoNotOptimize(core::BuildCandidates(problem));
        benchmark::DoNotOptimize(core::BuildCandidateEdges(problem));
      }
    }));
    entries.push_back(TimeMicro("candidate_build_incremental", reps, [&] {
      core::IncrementalCandidateView view(instance);
      for (core::BatchProblem& problem : sequence) {
        view.Update(problem);
        benchmark::DoNotOptimize(problem.edges_cache);
        // The simulator destroys each BatchProblem (and with it the cache
        // references) at batch end; dropping them here matches that and lets
        // the view recycle its retired publish buffers.
        problem.InvalidateCandidates();
      }
    }));
  }

  // Stamp-bookkeeping overhead guard for the incremental view: a zero-delta
  // Update on the reduced Table V batch (nothing arrived, moved, or
  // expired) still pays the full diff scan, the generation stamping, and
  // the publish copy — the per-batch floor the design budgets at <= 3% of
  // sim_batch_ms (DESIGN.md §17).
  {
    const core::Instance instance = MakeBatchInstance(4);
    core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
    core::IncrementalCandidateView view(instance);
    view.Update(problem);  // resync rebuild, outside the timed region
    entries.push_back(TimeMicro("candidate_zero_delta_ms", reps, [&] {
      view.Update(problem);
      benchmark::DoNotOptimize(problem.edges_cache);
    }));
  }

  // Observability overhead guard: the full G-G batch (reduced Table V, range
  // 4) with instrumentation enabled vs the runtime kill switch off. The two
  // entries share one binary, so the only delta is the macros' relaxed
  // atomic work (enabled) vs their single load + branch (disabled) — the
  // "enabled-but-unexported" cost the design budgets at <= 3%.
  {
    const core::Instance instance = MakeBatchInstance(4);
    const auto run_batch = [&] {
      core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
      algo::GameOptions options;
      options.threshold = 0.05;
      options.greedy_init = true;
      algo::GameAllocator gg(options);
      benchmark::DoNotOptimize(gg.Allocate(problem));
    };
    util::SetMetricsEnabled(true);
    entries.push_back(TimeMicro("batch_metrics_on", reps, run_batch));
    util::SetMetricsEnabled(false);
    entries.push_back(TimeMicro("batch_metrics_off", reps, run_batch));
    util::SetMetricsEnabled(true);
  }

  // Allocation-audit overhead guard: sim_batch_ms times one full G-G batch
  // (reduced Table V, range 4) — the denominator — and sim_audit_ms times
  // the auditor's step alone (constraint re-check + dependency-relaxed
  // Hopcroft-Karp bound) on the same precomputed committed assignment. The
  // budget is ratio <= 5% (DESIGN.md §10); timing the audit directly keeps
  // the guard well-conditioned, where subtracting two ~16 ms allocator
  // timings would drown the ~0.4 ms audit in allocator jitter. The
  // candidate sets are pre-built once and shared through the BatchProblem
  // cache, exactly as the simulator shares them between allocator and
  // auditor.
  {
    const core::Instance instance = MakeBatchInstance(4);
    core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
    problem.Candidates();
    const auto commit_batch = [&] {
      algo::GameOptions options;
      options.threshold = 0.05;
      options.greedy_init = true;
      algo::GameAllocator gg(options);
      return core::ValidPairs(problem, gg.Allocate(problem));
    };
    entries.push_back(TimeMicro("sim_batch_ms", reps, [&] {
      benchmark::DoNotOptimize(commit_batch());
    }));
    const core::Assignment valid = commit_batch();
    entries.push_back(TimeMicro("sim_audit_ms", reps, [&] {
      sim::BatchAuditor auditor;
      benchmark::DoNotOptimize(auditor.AuditBatch(problem, valid, 0));
    }));
  }

  // Lifecycle-ledger overhead guard: everything --ledger adds to one
  // simulation batch (LifecycleLedger construction + ObserveBatch on the
  // committed assignment + RecordAssigned per pair + Finalize), measured
  // with (sim_ledger_on) and without (sim_ledger_off) the ledger calls over
  // the same precomputed committed batch. The allocator run is hoisted out
  // of the timed region for the same reason sim_audit_ms times the auditor
  // directly: the ledger is ~0.04 ms, and subtracting two ~20 ms allocator
  // timings would drown it in jitter. Budget: the on/off delta is <= 3% of
  // sim_batch_ms (DESIGN.md §11).
  {
    const core::Instance instance = MakeBatchInstance(4);
    core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
    problem.Candidates();
    algo::GameOptions options;
    options.threshold = 0.05;
    options.greedy_init = true;
    algo::GameAllocator gg(options);
    const core::Assignment valid = core::ValidPairs(problem, gg.Allocate(problem));
    entries.push_back(TimeMicro("sim_ledger_off", reps, [&] {
      // Baseline: walk the committed pairs exactly as the ledger-on side
      // does, minus every ledger call.
      size_t committed = 0;
      for (const auto& pair : valid.pairs()) committed += pair.second >= 0;
      benchmark::DoNotOptimize(committed);
    }));
    entries.push_back(TimeMicro("sim_ledger_on", reps, [&] {
      sim::LifecycleLedger ledger(instance);
      ledger.ObserveBatch(problem, valid, 0, nullptr);
      for (const auto& [worker, task] : valid.pairs()) {
        ledger.RecordAssigned(task, 0, 0.0);
      }
      ledger.Finalize(0, nullptr);
      benchmark::DoNotOptimize(ledger.entries().size());
    }));
  }

  // Live-telemetry overhead guard: everything the telemetry plane adds to
  // one batch boundary — a sketch Observe, AdvanceSketchWindows over the
  // global registry (already populated by the preceding guard blocks), one
  // MetricsTimeSeries delta snapshot, and a watchdog Heartbeat — measured
  // per boundary with (sim_telemetry_on) and without (sim_telemetry_off)
  // the hooks, exporter idle. Like the ledger guard, the work is timed
  // directly because one boundary is tens of microseconds and an on/off
  // subtraction of two ~20 ms full-batch timings would drown it in
  // allocator jitter; many boundaries amortize the timer floor. Budget: the
  // on/off delta is <= 3% of sim_batch_ms (DESIGN.md §14).
  {
    constexpr int kBoundaries = 64;
    entries.push_back(TimeMicro("sim_telemetry_off", reps, [&] {
      // Baseline: the batch-boundary loop with every hook compiled to the
      // same shape but no telemetry calls.
      int64_t seq = 0;
      for (int b = 0; b < kBoundaries; ++b) seq += b;
      benchmark::DoNotOptimize(seq);
    }));
    sim::MetricsTimeSeries timeseries;
    sim::StallWatchdog watchdog;  // not Start()ed: heartbeat cost only
    entries.push_back(TimeMicro("sim_telemetry_on", reps, [&] {
      for (int b = 0; b < kBoundaries; ++b) {
        DASC_METRIC_SKETCH_OBSERVE("sim_batch_allocator_ms_window",
                                   static_cast<double>(b));
        util::GlobalMetrics().AdvanceSketchWindows();
        timeseries.RecordBatch(b, 5.0 * b, util::GlobalMetrics());
        watchdog.Heartbeat(b);
      }
      benchmark::DoNotOptimize(timeseries.recorded());
    }));
    // Rescale both entries to per-boundary cost so the <= 3% budget reads
    // directly against sim_batch_ms.
    for (auto it = entries.end() - 2; it != entries.end(); ++it) {
      it->ms_mean /= kBoundaries;
      it->ms_p95 /= kBoundaries;
    }
  }

  // Flight-recorder overhead guard: everything the black box adds to one
  // service/simulator batch — a batch_begin/batch_end pair, three phase
  // spans (with self-time accumulation), one decision event per committed
  // pair, and the tracer's OnBatchBegin/OnBatchEnd record built from the
  // TakeThreadPhaseNanos table — measured per batch with the recorder
  // enabled (flight_recorder_on) vs the runtime kill switch off
  // (flight_recorder_off). Timed directly for the same conditioning reason
  // as the ledger and telemetry guards: one batch's event traffic is
  // microseconds against a ~20 ms allocator. Budget: the on/off delta is
  // <= 3% of sim_batch_ms (DESIGN.md §16).
  {
    constexpr int kBatches = 64;
    constexpr int kDecisionsPerBatch = 32;
    util::FlightRecorder& recorder = util::FlightRecorder::Global();
    const uint32_t phase_a = recorder.InternLabel("bench_phase_a");
    const uint32_t phase_b = recorder.InternLabel("bench_phase_b");
    const uint32_t phase_c = recorder.InternLabel("bench_phase_c");
    sim::TaskTracer tracer;
    const auto run_batches = [&] {
      for (int b = 0; b < kBatches; ++b) {
        recorder.Record(util::FlightEventKind::kBatchBegin, 0, b);
        util::TakeThreadPhaseNanos();
        tracer.OnBatchBegin(b, 0.005 * b);
        {
          util::FlightSpan outer(phase_a);
          util::FlightSpan inner(phase_b);
          benchmark::DoNotOptimize(inner);
        }
        {
          util::FlightSpan commit(phase_c);
          for (int d = 0; d < kDecisionsPerBatch; ++d) {
            recorder.Record(util::FlightEventKind::kDecision, 0, d, 1);
          }
        }
        tracer.OnBatchEnd(b, 0.005 * b + 0.004, kDecisionsPerBatch, 0, 0,
                          util::TakeThreadPhaseNanos());
        recorder.Record(util::FlightEventKind::kBatchEnd, 0, b,
                        kDecisionsPerBatch);
      }
      benchmark::DoNotOptimize(recorder.recorded());
    };
    recorder.SetEnabled(true);
    entries.push_back(TimeMicro("flight_recorder_on", reps, run_batches));
    recorder.SetEnabled(false);
    entries.push_back(TimeMicro("flight_recorder_off", reps, run_batches));
    recorder.SetEnabled(true);
    // Per-batch cost, directly comparable to sim_batch_ms.
    for (auto it = entries.end() - 2; it != entries.end(); ++it) {
      it->ms_mean /= kBatches;
      it->ms_p95 /= kBatches;
    }
  }

  // Full-simulation headline metrics: one dynamic, audited G-G run over the
  // reduced Table V workload, reported partly from RunStats and partly from
  // the metrics registry (the game_rounds histogram the simulator's
  // allocator populated).
  {
    util::GlobalMetrics().Reset();
    gen::SyntheticParams params;
    params.num_workers = 400;
    params.num_tasks = 400;
    params.num_skills = 120;
    params.dependency_size = {0, 8};
    params.worker_skills = {1, 5};
    params.wait_time = {10.0, 15.0};
    auto instance = gen::GenerateSynthetic(params);
    DASC_CHECK(instance.ok());
    algo::GameOptions options;
    options.threshold = 0.05;
    options.greedy_init = true;
    algo::GameAllocator gg(options);
    sim::SimulatorOptions sim_options;
    sim_options.audit = true;
    const sim::RunStats stats =
        sim::MeasureSimulation(*instance, sim_options, gg);
    const auto headline = [&](const std::string& name, const std::string& unit,
                              double mean, double p95) {
      MicroEntry entry;
      entry.name = name;
      entry.threads = util::Threads();
      entry.unit = unit;
      entry.ms_mean = mean;
      entry.ms_p95 = p95;
      entries.push_back(entry);
    };
    headline("sim_headline_batches", "batches", stats.batches, 0.0);
    headline("sim_headline_batch_ms", "ms", stats.p50_batch_ms,
             stats.p95_batch_ms);
    headline("sim_headline_score", "pairs", stats.score, 0.0);
    const util::HistogramSnapshot rounds =
        util::GlobalMetrics().GetHistogram("game_rounds")->Snapshot();
    const double rounds_mean =
        rounds.count > 0 ? rounds.sum / static_cast<double>(rounds.count)
                         : 0.0;
    headline("sim_headline_game_rounds", "rounds", rounds_mean,
             util::HistogramQuantile(rounds, 0.95));
    headline("sim_headline_approx_ratio", "ratio", stats.approx_ratio,
             stats.min_batch_gap);
  }
  return entries;
}

void WriteMicroJson(const std::string& path, const std::vector<MicroEntry>& entries) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const MicroEntry& e = entries[i];
    const bool ms = e.unit == "ms";
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"threads\": %d, \"unit\": \"%s\", "
                 "\"%s\": %.3f, \"%s\": %.3f}%s\n",
                 e.name.c_str(), e.threads, e.unit.c_str(),
                 ms ? "ms_mean" : "value_mean", e.ms_mean,
                 ms ? "ms_p95" : "value_p95", e.ms_p95,
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu entries)\n", path.c_str(), entries.size());
}

}  // namespace
}  // namespace dasc

int main(int argc, char** argv) {
  // Split off the --micro_* flags; everything else goes to google-benchmark.
  std::string json_path = "BENCH_micro.json";
  int micro_reps = 5;
  bool run_micro = true;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--micro_json=", 13) == 0) {
      json_path = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--micro_reps=", 13) == 0) {
      micro_reps = std::max(1, std::atoi(argv[i] + 13));
    } else if (std::strcmp(argv[i], "--no_micro") == 0) {
      run_micro = false;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (run_micro) {
    dasc::WriteMicroJson(json_path, dasc::CollectMicroEntries(micro_reps));
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
