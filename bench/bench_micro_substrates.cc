// Microbenchmarks (google-benchmark) for the substrate libraries: Hungarian
// assignment, Hopcroft-Karp matching, grid-index radius queries, dependency
// closure construction, one full greedy batch, and one game best-response
// batch. These quantify the building blocks behind the per-figure harnesses.
#include <benchmark/benchmark.h>

#include "algo/game.h"
#include "algo/greedy.h"
#include "core/batch.h"
#include "gen/synthetic.h"
#include "geo/grid_index.h"
#include "graph/dag.h"
#include "matching/hopcroft_karp.h"
#include "matching/hungarian.h"
#include "util/rng.h"

namespace dasc {
namespace {

void BM_Hungarian(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(7);
  std::vector<std::vector<double>> cost(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
  for (auto& row : cost) {
    for (auto& c : row) c = rng.UniformDouble(0, 100);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::SolveAssignment(cost));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Hungarian)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_HopcroftKarp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(11);
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < n; ++u) {
    for (int k = 0; k < 8; ++k) {
      edges.emplace_back(u, static_cast<int>(rng.UniformInt(0, n - 1)));
    }
  }
  for (auto _ : state) {
    matching::HopcroftKarp hk(n, n);
    for (const auto& [u, v] : edges) hk.AddEdge(u, v);
    benchmark::DoNotOptimize(hk.MaxMatching());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_HopcroftKarp)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_GridIndexQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(13);
  std::vector<geo::Point> points(static_cast<size_t>(n));
  for (auto& p : points) {
    p = {rng.UniformDouble(0, 1), rng.UniformDouble(0, 1)};
  }
  geo::GridIndex index(points);
  std::vector<int32_t> hits;
  for (auto _ : state) {
    hits.clear();
    index.QueryRadius({rng.UniformDouble(0, 1), rng.UniformDouble(0, 1)},
                      0.05, &hits);
    benchmark::DoNotOptimize(hits.size());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_GridIndexQuery)->RangeMultiplier(8)->Range(1000, 64000);

void BM_DagClosure(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(17);
  for (auto _ : state) {
    state.PauseTiming();
    graph::Dag dag(n);
    for (int u = 1; u < n; ++u) {
      for (int k = 0; k < 3; ++k) {
        dag.AddDependency(u, static_cast<graph::NodeId>(
                                 rng.UniformInt(std::max(0, u - 50), u - 1)));
      }
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(dag.TransitiveClosure());
  }
}
BENCHMARK(BM_DagClosure)->RangeMultiplier(4)->Range(256, 4096);

// A single batch of the dynamic platform at Table V defaults (reduced size).
core::Instance MakeBatchInstance(int scale) {
  gen::SyntheticParams params;
  params.num_workers = 200 * scale;
  params.num_tasks = 200 * scale;
  params.num_skills = 60 * scale;
  params.dependency_size = {0, 8};
  params.worker_skills = {1, 5};
  params.start_time = {0.0, 0.0};
  params.wait_time = {10.0, 15.0};
  auto instance = gen::GenerateSynthetic(params);
  DASC_CHECK(instance.ok());
  return std::move(*instance);
}

void BM_GreedyBatch(benchmark::State& state) {
  const core::Instance instance =
      MakeBatchInstance(static_cast<int>(state.range(0)));
  const core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
  for (auto _ : state) {
    algo::GreedyAllocator greedy;
    benchmark::DoNotOptimize(greedy.Allocate(problem));
  }
}
BENCHMARK(BM_GreedyBatch)->RangeMultiplier(2)->Range(1, 4);

void BM_GameBatch(benchmark::State& state) {
  const core::Instance instance =
      MakeBatchInstance(static_cast<int>(state.range(0)));
  const core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
  for (auto _ : state) {
    algo::GameOptions options;
    options.threshold = 0.05;
    algo::GameAllocator game(options);
    benchmark::DoNotOptimize(game.Allocate(problem));
  }
}
BENCHMARK(BM_GameBatch)->RangeMultiplier(2)->Range(1, 4);

void BM_BuildCandidates(benchmark::State& state) {
  const core::Instance instance =
      MakeBatchInstance(static_cast<int>(state.range(0)));
  const core::BatchProblem problem = core::BatchProblem::AllAt(instance, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildCandidates(problem));
  }
}
BENCHMARK(BM_BuildCandidates)->RangeMultiplier(2)->Range(1, 4);

}  // namespace
}  // namespace dasc

BENCHMARK_MAIN();
