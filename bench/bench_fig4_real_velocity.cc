// Fig. 4: effect of the velocity range [v-,v+] (real data).
// Paper sweep: [0.1,0.5], [0.5,1], [1,1.5], [1.5,2], [2,2.5] (x 0.01).
#include "common/bench_util.h"
#include "gen/meetup.h"

int main(int argc, char** argv) {
  using namespace dasc;
  bench::BenchConfig defaults;
  defaults.scale = 1.0;
  defaults.batch_interval = 1.0;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv, defaults);
  std::vector<bench::SweepPoint> points;
  for (auto [lo, hi] : {std::pair{0.1, 0.5}, {0.5, 1.0}, {1.0, 1.5},
                        {1.5, 2.0}, {2.0, 2.5}}) {
    gen::MeetupParams params =
        bench::ScaledMeetup(gen::MeetupParams{}, config.scale);
    params.seed = config.seed;
    params.velocity = {lo * 0.01, hi * 0.01};
    char label[32];
    std::snprintf(label, sizeof(label), "[%.1f,%.1f]", lo, hi);
    points.push_back({label, bench::MeetupFactory(params)});
  }
  bench::RunSimSweep("Fig. 4: velocity [v-,v+]*0.01 (real)", "[v-,v+]",
                     std::move(points), config);
  return 0;
}
