// Fig. 7: effect of the dependency set size range |D| (synthetic).
// Paper sweep: [0,50], [0,60], [0,70], [0,80], [0,90].
#include "common/bench_util.h"
#include "gen/synthetic.h"

int main(int argc, char** argv) {
  using namespace dasc;
  bench::BenchConfig defaults;
  defaults.scale = 1.0;
  defaults.reps = 2;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv, defaults);
  std::vector<bench::SweepPoint> points;
  for (int hi : {50, 60, 70, 80, 90}) {
    gen::SyntheticParams params =
        bench::ScaledSynthetic(gen::SyntheticParams{}, config.scale);
    params.seed = config.seed;
    params.dependency_size = {0, hi};
    points.push_back({"[0," + std::to_string(hi) + "]",
                      bench::SyntheticFactory(params)});
  }
  bench::RunSimSweep("Fig. 7: dependency size range |D| (synthetic)", "|D|",
                     std::move(points), config);
  return 0;
}
