// Fig. 15 (Appendix C): waiting time range [wt-,wt+] (synthetic).
// Paper sweep: [8,13], [9,14], [10,15], [11,16], [12,17].
#include "common/bench_util.h"
#include "gen/synthetic.h"

int main(int argc, char** argv) {
  using namespace dasc;
  bench::BenchConfig defaults;
  defaults.scale = 1.0;
  defaults.reps = 2;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv, defaults);
  std::vector<bench::SweepPoint> points;
  for (auto [lo, hi] : {std::pair{8.0, 13.0}, {9.0, 14.0}, {10.0, 15.0},
                        {11.0, 16.0}, {12.0, 17.0}}) {
    gen::SyntheticParams params =
        bench::ScaledSynthetic(gen::SyntheticParams{}, config.scale);
    params.seed = config.seed;
    params.wait_time = {lo, hi};
    char label[32];
    std::snprintf(label, sizeof(label), "[%.0f,%.0f]", lo, hi);
    points.push_back({label, bench::SyntheticFactory(params)});
  }
  bench::RunSimSweep("Fig. 15: waiting time [wt-,wt+] (synthetic)",
                     "[wt-,wt+]", std::move(points), config);
  return 0;
}
