// Fig. 3: effect of the maximum moving distance range [d-,d+] (real data).
// Paper sweep: [2,2.5], [2.5,3], [3,3.5], [3.5,4], [4,4.5] (x 0.01 degrees).
#include "common/bench_util.h"
#include "gen/meetup.h"

int main(int argc, char** argv) {
  using namespace dasc;
  bench::BenchConfig defaults;
  defaults.scale = 1.0;
  defaults.batch_interval = 1.0;
  bench::BenchConfig config = bench::ParseBenchArgs(argc, argv, defaults);
  std::vector<bench::SweepPoint> points;
  for (auto [lo, hi] : {std::pair{2.0, 2.5}, {2.5, 3.0}, {3.0, 3.5},
                        {3.5, 4.0}, {4.0, 4.5}}) {
    gen::MeetupParams params =
        bench::ScaledMeetup(gen::MeetupParams{}, config.scale);
    params.seed = config.seed;
    params.max_distance = {lo * 0.01, hi * 0.01};
    char label[32];
    std::snprintf(label, sizeof(label), "[%.1f,%.1f]", lo, hi);
    points.push_back({label, bench::MeetupFactory(params)});
  }
  bench::RunSimSweep("Fig. 3: max moving distance [d-,d+]*0.01 (real)",
                     "[d-,d+]", std::move(points), config);
  return 0;
}
