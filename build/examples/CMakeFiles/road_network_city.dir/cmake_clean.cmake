file(REMOVE_RECURSE
  "CMakeFiles/road_network_city.dir/road_network_city.cc.o"
  "CMakeFiles/road_network_city.dir/road_network_city.cc.o.d"
  "road_network_city"
  "road_network_city.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_network_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
