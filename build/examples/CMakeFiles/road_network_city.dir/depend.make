# Empty dependencies file for road_network_city.
# This may be replaced when dependencies are built.
