# Empty dependencies file for meetup_city.
# This may be replaced when dependencies are built.
