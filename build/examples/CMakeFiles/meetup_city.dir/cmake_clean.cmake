file(REMOVE_RECURSE
  "CMakeFiles/meetup_city.dir/meetup_city.cc.o"
  "CMakeFiles/meetup_city.dir/meetup_city.cc.o.d"
  "meetup_city"
  "meetup_city.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meetup_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
