file(REMOVE_RECURSE
  "CMakeFiles/party_preparation.dir/party_preparation.cc.o"
  "CMakeFiles/party_preparation.dir/party_preparation.cc.o.d"
  "party_preparation"
  "party_preparation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/party_preparation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
