# Empty dependencies file for party_preparation.
# This may be replaced when dependencies are built.
