# Empty compiler generated dependencies file for house_repair.
# This may be replaced when dependencies are built.
