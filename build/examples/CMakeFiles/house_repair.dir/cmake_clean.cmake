file(REMOVE_RECURSE
  "CMakeFiles/house_repair.dir/house_repair.cc.o"
  "CMakeFiles/house_repair.dir/house_repair.cc.o.d"
  "house_repair"
  "house_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/house_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
