# Empty compiler generated dependencies file for streaming_platform.
# This may be replaced when dependencies are built.
