file(REMOVE_RECURSE
  "CMakeFiles/streaming_platform.dir/streaming_platform.cc.o"
  "CMakeFiles/streaming_platform.dir/streaming_platform.cc.o.d"
  "streaming_platform"
  "streaming_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
