
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/streaming_platform.cc" "examples/CMakeFiles/streaming_platform.dir/streaming_platform.cc.o" "gcc" "examples/CMakeFiles/streaming_platform.dir/streaming_platform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dasc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
