# Empty dependencies file for dasc_cli.
# This may be replaced when dependencies are built.
