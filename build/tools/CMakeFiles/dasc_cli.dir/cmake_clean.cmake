file(REMOVE_RECURSE
  "CMakeFiles/dasc_cli.dir/dasc_cli.cc.o"
  "CMakeFiles/dasc_cli.dir/dasc_cli.cc.o.d"
  "dasc_cli"
  "dasc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
