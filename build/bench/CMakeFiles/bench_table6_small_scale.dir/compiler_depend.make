# Empty compiler generated dependencies file for bench_table6_small_scale.
# This may be replaced when dependencies are built.
