file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_small_scale.dir/bench_table6_small_scale.cc.o"
  "CMakeFiles/bench_table6_small_scale.dir/bench_table6_small_scale.cc.o.d"
  "bench_table6_small_scale"
  "bench_table6_small_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_small_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
