file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_syn_skill_universe.dir/bench_fig8_syn_skill_universe.cc.o"
  "CMakeFiles/bench_fig8_syn_skill_universe.dir/bench_fig8_syn_skill_universe.cc.o.d"
  "bench_fig8_syn_skill_universe"
  "bench_fig8_syn_skill_universe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_syn_skill_universe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
