# Empty dependencies file for bench_fig8_syn_skill_universe.
# This may be replaced when dependencies are built.
