file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_syn_worker_skills.dir/bench_fig9_syn_worker_skills.cc.o"
  "CMakeFiles/bench_fig9_syn_worker_skills.dir/bench_fig9_syn_worker_skills.cc.o.d"
  "bench_fig9_syn_worker_skills"
  "bench_fig9_syn_worker_skills.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_syn_worker_skills.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
