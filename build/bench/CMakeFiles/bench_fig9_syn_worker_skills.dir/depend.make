# Empty dependencies file for bench_fig9_syn_worker_skills.
# This may be replaced when dependencies are built.
