# Empty dependencies file for bench_fig13_syn_velocity.
# This may be replaced when dependencies are built.
