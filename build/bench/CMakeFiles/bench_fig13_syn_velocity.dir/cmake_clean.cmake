file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_syn_velocity.dir/bench_fig13_syn_velocity.cc.o"
  "CMakeFiles/bench_fig13_syn_velocity.dir/bench_fig13_syn_velocity.cc.o.d"
  "bench_fig13_syn_velocity"
  "bench_fig13_syn_velocity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_syn_velocity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
