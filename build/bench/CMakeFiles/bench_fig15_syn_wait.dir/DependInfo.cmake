
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig15_syn_wait.cc" "bench/CMakeFiles/bench_fig15_syn_wait.dir/bench_fig15_syn_wait.cc.o" "gcc" "bench/CMakeFiles/bench_fig15_syn_wait.dir/bench_fig15_syn_wait.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dasc_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
