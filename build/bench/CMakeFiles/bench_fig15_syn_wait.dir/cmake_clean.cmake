file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_syn_wait.dir/bench_fig15_syn_wait.cc.o"
  "CMakeFiles/bench_fig15_syn_wait.dir/bench_fig15_syn_wait.cc.o.d"
  "bench_fig15_syn_wait"
  "bench_fig15_syn_wait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_syn_wait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
