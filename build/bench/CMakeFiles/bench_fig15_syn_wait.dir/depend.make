# Empty dependencies file for bench_fig15_syn_wait.
# This may be replaced when dependencies are built.
