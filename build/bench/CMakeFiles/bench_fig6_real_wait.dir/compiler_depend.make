# Empty compiler generated dependencies file for bench_fig6_real_wait.
# This may be replaced when dependencies are built.
