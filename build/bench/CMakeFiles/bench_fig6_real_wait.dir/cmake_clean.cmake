file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_real_wait.dir/bench_fig6_real_wait.cc.o"
  "CMakeFiles/bench_fig6_real_wait.dir/bench_fig6_real_wait.cc.o.d"
  "bench_fig6_real_wait"
  "bench_fig6_real_wait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_real_wait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
