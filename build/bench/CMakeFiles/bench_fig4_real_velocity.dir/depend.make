# Empty dependencies file for bench_fig4_real_velocity.
# This may be replaced when dependencies are built.
