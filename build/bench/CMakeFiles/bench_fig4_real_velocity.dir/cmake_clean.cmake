file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_real_velocity.dir/bench_fig4_real_velocity.cc.o"
  "CMakeFiles/bench_fig4_real_velocity.dir/bench_fig4_real_velocity.cc.o.d"
  "bench_fig4_real_velocity"
  "bench_fig4_real_velocity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_real_velocity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
