file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_syn_dep.dir/bench_fig7_syn_dep.cc.o"
  "CMakeFiles/bench_fig7_syn_dep.dir/bench_fig7_syn_dep.cc.o.d"
  "bench_fig7_syn_dep"
  "bench_fig7_syn_dep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_syn_dep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
