# Empty dependencies file for bench_fig7_syn_dep.
# This may be replaced when dependencies are built.
