file(REMOVE_RECURSE
  "CMakeFiles/dasc_bench_common.dir/common/bench_util.cc.o"
  "CMakeFiles/dasc_bench_common.dir/common/bench_util.cc.o.d"
  "libdasc_bench_common.a"
  "libdasc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
