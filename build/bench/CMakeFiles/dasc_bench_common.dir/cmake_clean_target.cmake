file(REMOVE_RECURSE
  "libdasc_bench_common.a"
)
