# Empty compiler generated dependencies file for dasc_bench_common.
# This may be replaced when dependencies are built.
