# Empty compiler generated dependencies file for bench_fig11_syn_workers.
# This may be replaced when dependencies are built.
