# Empty dependencies file for bench_fig14_syn_start.
# This may be replaced when dependencies are built.
