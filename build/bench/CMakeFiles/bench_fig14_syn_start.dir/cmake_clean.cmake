file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_syn_start.dir/bench_fig14_syn_start.cc.o"
  "CMakeFiles/bench_fig14_syn_start.dir/bench_fig14_syn_start.cc.o.d"
  "bench_fig14_syn_start"
  "bench_fig14_syn_start.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_syn_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
