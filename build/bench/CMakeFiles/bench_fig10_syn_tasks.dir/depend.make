# Empty dependencies file for bench_fig10_syn_tasks.
# This may be replaced when dependencies are built.
