file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_syn_tasks.dir/bench_fig10_syn_tasks.cc.o"
  "CMakeFiles/bench_fig10_syn_tasks.dir/bench_fig10_syn_tasks.cc.o.d"
  "bench_fig10_syn_tasks"
  "bench_fig10_syn_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_syn_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
