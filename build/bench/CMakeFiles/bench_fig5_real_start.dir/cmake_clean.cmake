file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_real_start.dir/bench_fig5_real_start.cc.o"
  "CMakeFiles/bench_fig5_real_start.dir/bench_fig5_real_start.cc.o.d"
  "bench_fig5_real_start"
  "bench_fig5_real_start.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_real_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
