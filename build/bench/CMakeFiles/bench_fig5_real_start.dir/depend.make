# Empty dependencies file for bench_fig5_real_start.
# This may be replaced when dependencies are built.
