
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assignment.cc" "src/CMakeFiles/dasc_core.dir/core/assignment.cc.o" "gcc" "src/CMakeFiles/dasc_core.dir/core/assignment.cc.o.d"
  "/root/repo/src/core/batch.cc" "src/CMakeFiles/dasc_core.dir/core/batch.cc.o" "gcc" "src/CMakeFiles/dasc_core.dir/core/batch.cc.o.d"
  "/root/repo/src/core/feasibility.cc" "src/CMakeFiles/dasc_core.dir/core/feasibility.cc.o" "gcc" "src/CMakeFiles/dasc_core.dir/core/feasibility.cc.o.d"
  "/root/repo/src/core/instance.cc" "src/CMakeFiles/dasc_core.dir/core/instance.cc.o" "gcc" "src/CMakeFiles/dasc_core.dir/core/instance.cc.o.d"
  "/root/repo/src/core/workload_stats.cc" "src/CMakeFiles/dasc_core.dir/core/workload_stats.cc.o" "gcc" "src/CMakeFiles/dasc_core.dir/core/workload_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dasc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
