# Empty dependencies file for dasc_core.
# This may be replaced when dependencies are built.
