file(REMOVE_RECURSE
  "libdasc_core.a"
)
