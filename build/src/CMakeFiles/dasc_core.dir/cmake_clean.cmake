file(REMOVE_RECURSE
  "CMakeFiles/dasc_core.dir/core/assignment.cc.o"
  "CMakeFiles/dasc_core.dir/core/assignment.cc.o.d"
  "CMakeFiles/dasc_core.dir/core/batch.cc.o"
  "CMakeFiles/dasc_core.dir/core/batch.cc.o.d"
  "CMakeFiles/dasc_core.dir/core/feasibility.cc.o"
  "CMakeFiles/dasc_core.dir/core/feasibility.cc.o.d"
  "CMakeFiles/dasc_core.dir/core/instance.cc.o"
  "CMakeFiles/dasc_core.dir/core/instance.cc.o.d"
  "CMakeFiles/dasc_core.dir/core/workload_stats.cc.o"
  "CMakeFiles/dasc_core.dir/core/workload_stats.cc.o.d"
  "libdasc_core.a"
  "libdasc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
