file(REMOVE_RECURSE
  "libdasc_io.a"
)
