# Empty dependencies file for dasc_io.
# This may be replaced when dependencies are built.
