file(REMOVE_RECURSE
  "CMakeFiles/dasc_io.dir/io/instance_io.cc.o"
  "CMakeFiles/dasc_io.dir/io/instance_io.cc.o.d"
  "CMakeFiles/dasc_io.dir/io/svg_render.cc.o"
  "CMakeFiles/dasc_io.dir/io/svg_render.cc.o.d"
  "libdasc_io.a"
  "libdasc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
