# Empty dependencies file for dasc_gen.
# This may be replaced when dependencies are built.
