file(REMOVE_RECURSE
  "CMakeFiles/dasc_gen.dir/gen/meetup.cc.o"
  "CMakeFiles/dasc_gen.dir/gen/meetup.cc.o.d"
  "CMakeFiles/dasc_gen.dir/gen/perturb.cc.o"
  "CMakeFiles/dasc_gen.dir/gen/perturb.cc.o.d"
  "CMakeFiles/dasc_gen.dir/gen/synthetic.cc.o"
  "CMakeFiles/dasc_gen.dir/gen/synthetic.cc.o.d"
  "libdasc_gen.a"
  "libdasc_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasc_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
