file(REMOVE_RECURSE
  "libdasc_gen.a"
)
