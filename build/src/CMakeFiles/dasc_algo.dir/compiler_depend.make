# Empty compiler generated dependencies file for dasc_algo.
# This may be replaced when dependencies are built.
