file(REMOVE_RECURSE
  "CMakeFiles/dasc_algo.dir/algo/baselines.cc.o"
  "CMakeFiles/dasc_algo.dir/algo/baselines.cc.o.d"
  "CMakeFiles/dasc_algo.dir/algo/exact.cc.o"
  "CMakeFiles/dasc_algo.dir/algo/exact.cc.o.d"
  "CMakeFiles/dasc_algo.dir/algo/game.cc.o"
  "CMakeFiles/dasc_algo.dir/algo/game.cc.o.d"
  "CMakeFiles/dasc_algo.dir/algo/greedy.cc.o"
  "CMakeFiles/dasc_algo.dir/algo/greedy.cc.o.d"
  "CMakeFiles/dasc_algo.dir/algo/heuristics.cc.o"
  "CMakeFiles/dasc_algo.dir/algo/heuristics.cc.o.d"
  "CMakeFiles/dasc_algo.dir/algo/local_search.cc.o"
  "CMakeFiles/dasc_algo.dir/algo/local_search.cc.o.d"
  "CMakeFiles/dasc_algo.dir/algo/registry.cc.o"
  "CMakeFiles/dasc_algo.dir/algo/registry.cc.o.d"
  "libdasc_algo.a"
  "libdasc_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasc_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
