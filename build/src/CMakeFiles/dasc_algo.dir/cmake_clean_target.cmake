file(REMOVE_RECURSE
  "libdasc_algo.a"
)
