
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/baselines.cc" "src/CMakeFiles/dasc_algo.dir/algo/baselines.cc.o" "gcc" "src/CMakeFiles/dasc_algo.dir/algo/baselines.cc.o.d"
  "/root/repo/src/algo/exact.cc" "src/CMakeFiles/dasc_algo.dir/algo/exact.cc.o" "gcc" "src/CMakeFiles/dasc_algo.dir/algo/exact.cc.o.d"
  "/root/repo/src/algo/game.cc" "src/CMakeFiles/dasc_algo.dir/algo/game.cc.o" "gcc" "src/CMakeFiles/dasc_algo.dir/algo/game.cc.o.d"
  "/root/repo/src/algo/greedy.cc" "src/CMakeFiles/dasc_algo.dir/algo/greedy.cc.o" "gcc" "src/CMakeFiles/dasc_algo.dir/algo/greedy.cc.o.d"
  "/root/repo/src/algo/heuristics.cc" "src/CMakeFiles/dasc_algo.dir/algo/heuristics.cc.o" "gcc" "src/CMakeFiles/dasc_algo.dir/algo/heuristics.cc.o.d"
  "/root/repo/src/algo/local_search.cc" "src/CMakeFiles/dasc_algo.dir/algo/local_search.cc.o" "gcc" "src/CMakeFiles/dasc_algo.dir/algo/local_search.cc.o.d"
  "/root/repo/src/algo/registry.cc" "src/CMakeFiles/dasc_algo.dir/algo/registry.cc.o" "gcc" "src/CMakeFiles/dasc_algo.dir/algo/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dasc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dasc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
