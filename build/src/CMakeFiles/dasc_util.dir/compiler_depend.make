# Empty compiler generated dependencies file for dasc_util.
# This may be replaced when dependencies are built.
