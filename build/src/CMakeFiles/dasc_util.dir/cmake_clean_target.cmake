file(REMOVE_RECURSE
  "libdasc_util.a"
)
