file(REMOVE_RECURSE
  "CMakeFiles/dasc_util.dir/util/csv.cc.o"
  "CMakeFiles/dasc_util.dir/util/csv.cc.o.d"
  "CMakeFiles/dasc_util.dir/util/flags.cc.o"
  "CMakeFiles/dasc_util.dir/util/flags.cc.o.d"
  "CMakeFiles/dasc_util.dir/util/rng.cc.o"
  "CMakeFiles/dasc_util.dir/util/rng.cc.o.d"
  "CMakeFiles/dasc_util.dir/util/stats.cc.o"
  "CMakeFiles/dasc_util.dir/util/stats.cc.o.d"
  "libdasc_util.a"
  "libdasc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
