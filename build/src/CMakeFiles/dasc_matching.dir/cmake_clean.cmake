file(REMOVE_RECURSE
  "CMakeFiles/dasc_matching.dir/matching/auction.cc.o"
  "CMakeFiles/dasc_matching.dir/matching/auction.cc.o.d"
  "CMakeFiles/dasc_matching.dir/matching/hopcroft_karp.cc.o"
  "CMakeFiles/dasc_matching.dir/matching/hopcroft_karp.cc.o.d"
  "CMakeFiles/dasc_matching.dir/matching/hungarian.cc.o"
  "CMakeFiles/dasc_matching.dir/matching/hungarian.cc.o.d"
  "libdasc_matching.a"
  "libdasc_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasc_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
