
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/auction.cc" "src/CMakeFiles/dasc_matching.dir/matching/auction.cc.o" "gcc" "src/CMakeFiles/dasc_matching.dir/matching/auction.cc.o.d"
  "/root/repo/src/matching/hopcroft_karp.cc" "src/CMakeFiles/dasc_matching.dir/matching/hopcroft_karp.cc.o" "gcc" "src/CMakeFiles/dasc_matching.dir/matching/hopcroft_karp.cc.o.d"
  "/root/repo/src/matching/hungarian.cc" "src/CMakeFiles/dasc_matching.dir/matching/hungarian.cc.o" "gcc" "src/CMakeFiles/dasc_matching.dir/matching/hungarian.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dasc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
