# Empty compiler generated dependencies file for dasc_matching.
# This may be replaced when dependencies are built.
