file(REMOVE_RECURSE
  "libdasc_matching.a"
)
