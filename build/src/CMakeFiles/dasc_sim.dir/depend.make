# Empty dependencies file for dasc_sim.
# This may be replaced when dependencies are built.
