file(REMOVE_RECURSE
  "CMakeFiles/dasc_sim.dir/sim/metrics.cc.o"
  "CMakeFiles/dasc_sim.dir/sim/metrics.cc.o.d"
  "CMakeFiles/dasc_sim.dir/sim/platform.cc.o"
  "CMakeFiles/dasc_sim.dir/sim/platform.cc.o.d"
  "CMakeFiles/dasc_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/dasc_sim.dir/sim/simulator.cc.o.d"
  "CMakeFiles/dasc_sim.dir/sim/trace.cc.o"
  "CMakeFiles/dasc_sim.dir/sim/trace.cc.o.d"
  "libdasc_sim.a"
  "libdasc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
