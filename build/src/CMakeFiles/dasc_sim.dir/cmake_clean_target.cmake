file(REMOVE_RECURSE
  "libdasc_sim.a"
)
