file(REMOVE_RECURSE
  "CMakeFiles/dasc_geo.dir/geo/distance.cc.o"
  "CMakeFiles/dasc_geo.dir/geo/distance.cc.o.d"
  "CMakeFiles/dasc_geo.dir/geo/grid_index.cc.o"
  "CMakeFiles/dasc_geo.dir/geo/grid_index.cc.o.d"
  "CMakeFiles/dasc_geo.dir/geo/kdtree.cc.o"
  "CMakeFiles/dasc_geo.dir/geo/kdtree.cc.o.d"
  "CMakeFiles/dasc_geo.dir/geo/road_network.cc.o"
  "CMakeFiles/dasc_geo.dir/geo/road_network.cc.o.d"
  "libdasc_geo.a"
  "libdasc_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasc_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
