# Empty dependencies file for dasc_geo.
# This may be replaced when dependencies are built.
