
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/distance.cc" "src/CMakeFiles/dasc_geo.dir/geo/distance.cc.o" "gcc" "src/CMakeFiles/dasc_geo.dir/geo/distance.cc.o.d"
  "/root/repo/src/geo/grid_index.cc" "src/CMakeFiles/dasc_geo.dir/geo/grid_index.cc.o" "gcc" "src/CMakeFiles/dasc_geo.dir/geo/grid_index.cc.o.d"
  "/root/repo/src/geo/kdtree.cc" "src/CMakeFiles/dasc_geo.dir/geo/kdtree.cc.o" "gcc" "src/CMakeFiles/dasc_geo.dir/geo/kdtree.cc.o.d"
  "/root/repo/src/geo/road_network.cc" "src/CMakeFiles/dasc_geo.dir/geo/road_network.cc.o" "gcc" "src/CMakeFiles/dasc_geo.dir/geo/road_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dasc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
