file(REMOVE_RECURSE
  "libdasc_geo.a"
)
