# Empty dependencies file for dasc_graph.
# This may be replaced when dependencies are built.
