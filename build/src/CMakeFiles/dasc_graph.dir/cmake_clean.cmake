file(REMOVE_RECURSE
  "CMakeFiles/dasc_graph.dir/graph/dag.cc.o"
  "CMakeFiles/dasc_graph.dir/graph/dag.cc.o.d"
  "CMakeFiles/dasc_graph.dir/graph/dag_stats.cc.o"
  "CMakeFiles/dasc_graph.dir/graph/dag_stats.cc.o.d"
  "libdasc_graph.a"
  "libdasc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
