file(REMOVE_RECURSE
  "libdasc_graph.a"
)
