
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dag.cc" "src/CMakeFiles/dasc_graph.dir/graph/dag.cc.o" "gcc" "src/CMakeFiles/dasc_graph.dir/graph/dag.cc.o.d"
  "/root/repo/src/graph/dag_stats.cc" "src/CMakeFiles/dasc_graph.dir/graph/dag_stats.cc.o" "gcc" "src/CMakeFiles/dasc_graph.dir/graph/dag_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dasc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
