file(REMOVE_RECURSE
  "CMakeFiles/exact_baselines_test.dir/exact_baselines_test.cc.o"
  "CMakeFiles/exact_baselines_test.dir/exact_baselines_test.cc.o.d"
  "exact_baselines_test"
  "exact_baselines_test.pdb"
  "exact_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
