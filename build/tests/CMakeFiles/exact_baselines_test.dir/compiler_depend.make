# Empty compiler generated dependencies file for exact_baselines_test.
# This may be replaced when dependencies are built.
