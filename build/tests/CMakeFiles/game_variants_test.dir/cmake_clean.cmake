file(REMOVE_RECURSE
  "CMakeFiles/game_variants_test.dir/game_variants_test.cc.o"
  "CMakeFiles/game_variants_test.dir/game_variants_test.cc.o.d"
  "game_variants_test"
  "game_variants_test.pdb"
  "game_variants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
