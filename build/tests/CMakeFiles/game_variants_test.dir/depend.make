# Empty dependencies file for game_variants_test.
# This may be replaced when dependencies are built.
