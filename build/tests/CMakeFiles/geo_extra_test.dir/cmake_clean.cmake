file(REMOVE_RECURSE
  "CMakeFiles/geo_extra_test.dir/geo_extra_test.cc.o"
  "CMakeFiles/geo_extra_test.dir/geo_extra_test.cc.o.d"
  "geo_extra_test"
  "geo_extra_test.pdb"
  "geo_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
