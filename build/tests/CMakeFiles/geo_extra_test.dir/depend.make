# Empty dependencies file for geo_extra_test.
# This may be replaced when dependencies are built.
