# Empty compiler generated dependencies file for fuzz_io_test.
# This may be replaced when dependencies are built.
