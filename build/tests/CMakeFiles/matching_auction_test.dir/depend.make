# Empty dependencies file for matching_auction_test.
# This may be replaced when dependencies are built.
