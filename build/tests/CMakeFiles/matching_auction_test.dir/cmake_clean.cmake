file(REMOVE_RECURSE
  "CMakeFiles/matching_auction_test.dir/matching_auction_test.cc.o"
  "CMakeFiles/matching_auction_test.dir/matching_auction_test.cc.o.d"
  "matching_auction_test"
  "matching_auction_test.pdb"
  "matching_auction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_auction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
