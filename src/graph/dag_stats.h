// Structural analytics over dependency DAGs: chain depths, fan-in/fan-out,
// level widths. Used by the CLI's `stats` command and by workload analyses
// in EXPERIMENTS.md (closure sizes drive everything in DA-SC).
#ifndef DASC_GRAPH_DAG_STATS_H_
#define DASC_GRAPH_DAG_STATS_H_

#include <string>
#include <vector>

#include "graph/dag.h"

namespace dasc::graph {

struct DagStats {
  int num_nodes = 0;
  int64_t num_direct_edges = 0;
  int64_t total_closure_size = 0;
  int num_roots = 0;        // nodes with no dependencies
  int num_leaves = 0;       // nodes nothing depends on
  int max_depth = 0;        // longest dependency chain (edges)
  double mean_depth = 0.0;
  int max_closure = 0;      // largest transitive dependency set
  double mean_closure = 0.0;
  int max_dependents = 0;   // most-depended-upon node's dependent count
  // width[d] = number of nodes at depth d.
  std::vector<int> width_by_depth;

  // Multi-line human-readable summary.
  std::string ToString() const;
};

// Computes stats for an acyclic graph. Error if cyclic.
util::Result<DagStats> ComputeDagStats(const Dag& dag);

// depth[v] = length (in edges) of the longest dependency chain below v.
// Error if cyclic.
util::Result<std::vector<int>> DependencyDepths(const Dag& dag);

}  // namespace dasc::graph

#endif  // DASC_GRAPH_DAG_STATS_H_
