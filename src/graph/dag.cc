#include "graph/dag.h"

#include <algorithm>

#include "util/logging.h"

namespace dasc::graph {

Dag::Dag(NodeId num_nodes) : deps_(static_cast<size_t>(num_nodes)) {
  DASC_CHECK_GE(num_nodes, 0);
}

void Dag::AddDependency(NodeId node, NodeId dependency) {
  DASC_CHECK_GE(node, 0);
  DASC_CHECK_LT(node, num_nodes());
  DASC_CHECK_GE(dependency, 0);
  DASC_CHECK_LT(dependency, num_nodes());
  deps_[static_cast<size_t>(node)].push_back(dependency);
  ++num_edges_;
}

const std::vector<NodeId>& Dag::DepsOf(NodeId node) const {
  DASC_CHECK_GE(node, 0);
  DASC_CHECK_LT(node, num_nodes());
  return deps_[static_cast<size_t>(node)];
}

void Dag::Canonicalize() {
  num_edges_ = 0;
  for (auto& adj : deps_) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    num_edges_ += static_cast<int64_t>(adj.size());
  }
}

bool Dag::HasCycle() const { return !TopologicalOrder().ok(); }

util::Result<std::vector<NodeId>> Dag::TopologicalOrder() const {
  // Kahn's algorithm on the depends-on relation: a node is emitted once all
  // of its dependencies have been emitted.
  const size_t n = deps_.size();
  std::vector<int32_t> unmet(n, 0);
  std::vector<std::vector<NodeId>> dependents(n);
  for (size_t u = 0; u < n; ++u) {
    unmet[u] = static_cast<int32_t>(deps_[u].size());
    for (NodeId v : deps_[u]) {
      dependents[static_cast<size_t>(v)].push_back(static_cast<NodeId>(u));
    }
  }
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> frontier;
  for (size_t u = 0; u < n; ++u) {
    if (unmet[u] == 0) frontier.push_back(static_cast<NodeId>(u));
  }
  while (!frontier.empty()) {
    const NodeId v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (NodeId u : dependents[static_cast<size_t>(v)]) {
      if (--unmet[static_cast<size_t>(u)] == 0) frontier.push_back(u);
    }
  }
  if (order.size() != n) {
    return util::Status::InvalidArgument(
        "dependency graph contains a cycle");
  }
  return order;
}

util::Result<std::vector<std::vector<NodeId>>> Dag::TransitiveClosure() const {
  auto order = TopologicalOrder();
  if (!order.ok()) return order.status();
  const size_t n = deps_.size();
  std::vector<std::vector<NodeId>> closure(n);
  // Process in topological order so every dependency's closure is final when
  // merged. Merge = union of direct deps and their closures.
  for (NodeId u : *order) {
    const auto& direct = deps_[static_cast<size_t>(u)];
    if (direct.empty()) continue;
    std::vector<NodeId>& out = closure[static_cast<size_t>(u)];
    out = direct;
    for (NodeId v : direct) {
      const auto& sub = closure[static_cast<size_t>(v)];
      out.insert(out.end(), sub.begin(), sub.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return closure;
}

std::vector<std::vector<NodeId>> Dag::Dependents(
    const std::vector<std::vector<NodeId>>& closure) {
  std::vector<std::vector<NodeId>> dependents(closure.size());
  for (size_t u = 0; u < closure.size(); ++u) {
    for (NodeId v : closure[u]) {
      dependents[static_cast<size_t>(v)].push_back(static_cast<NodeId>(u));
    }
  }
  return dependents;
}

}  // namespace dasc::graph
