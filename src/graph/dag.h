// Dependency DAG utilities.
//
// Task dependencies in DA-SC form a directed acyclic graph: edge u -> v means
// "u depends on v" (v must be assigned before u can be conducted). This module
// provides validation (cycle detection), topological ordering, transitive
// closure (ancestor/dependency sets), and the reverse relation (dependents),
// which the greedy and game algorithms consume.
#ifndef DASC_GRAPH_DAG_H_
#define DASC_GRAPH_DAG_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace dasc::graph {

using NodeId = int32_t;

// A directed graph over nodes [0, n). Edges are "depends-on" arcs.
class Dag {
 public:
  explicit Dag(NodeId num_nodes);

  // Adds the arc `node` depends-on `dependency`. Duplicate arcs are kept
  // (callers typically deduplicate via Canonicalize()).
  void AddDependency(NodeId node, NodeId dependency);

  NodeId num_nodes() const { return static_cast<NodeId>(deps_.size()); }
  int64_t num_edges() const { return num_edges_; }

  // Direct dependencies of `node`.
  const std::vector<NodeId>& DepsOf(NodeId node) const;

  // Sorts and deduplicates every adjacency list.
  void Canonicalize();

  // True if the dependency relation contains a cycle.
  bool HasCycle() const;

  // Nodes ordered so that every node appears after all of its dependencies.
  // Error if cyclic.
  util::Result<std::vector<NodeId>> TopologicalOrder() const;

  // For every node, the full set of transitive dependencies (ancestors in the
  // depends-on relation), sorted ascending and excluding the node itself.
  // Error if cyclic. O(V * closure size) time via bitset-free merge in
  // topological order.
  util::Result<std::vector<std::vector<NodeId>>> TransitiveClosure() const;

  // Reverse adjacency of a closure: out[v] lists every node whose closure
  // contains v. `closure` must come from TransitiveClosure() of a graph with
  // the same node count.
  static std::vector<std::vector<NodeId>> Dependents(
      const std::vector<std::vector<NodeId>>& closure);

 private:
  std::vector<std::vector<NodeId>> deps_;
  int64_t num_edges_ = 0;
};

}  // namespace dasc::graph

#endif  // DASC_GRAPH_DAG_H_
