#include "graph/dag_stats.h"

#include <algorithm>
#include <sstream>

namespace dasc::graph {

util::Result<std::vector<int>> DependencyDepths(const Dag& dag) {
  auto order = dag.TopologicalOrder();
  if (!order.ok()) return order.status();
  std::vector<int> depth(static_cast<size_t>(dag.num_nodes()), 0);
  for (NodeId v : *order) {
    int d = 0;
    for (NodeId u : dag.DepsOf(v)) {
      d = std::max(d, depth[static_cast<size_t>(u)] + 1);
    }
    depth[static_cast<size_t>(v)] = d;
  }
  return depth;
}

util::Result<DagStats> ComputeDagStats(const Dag& dag) {
  auto depths = DependencyDepths(dag);
  if (!depths.ok()) return depths.status();
  auto closure = dag.TransitiveClosure();
  if (!closure.ok()) return closure.status();

  DagStats stats;
  stats.num_nodes = dag.num_nodes();
  stats.num_direct_edges = dag.num_edges();
  std::vector<int> dependents(static_cast<size_t>(dag.num_nodes()), 0);
  int64_t depth_sum = 0;
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    const int d = (*depths)[static_cast<size_t>(v)];
    depth_sum += d;
    stats.max_depth = std::max(stats.max_depth, d);
    if (static_cast<int>(stats.width_by_depth.size()) <= d) {
      stats.width_by_depth.resize(static_cast<size_t>(d) + 1, 0);
    }
    ++stats.width_by_depth[static_cast<size_t>(d)];
    const auto& deps = (*closure)[static_cast<size_t>(v)];
    stats.total_closure_size += static_cast<int64_t>(deps.size());
    stats.max_closure =
        std::max(stats.max_closure, static_cast<int>(deps.size()));
    if (dag.DepsOf(v).empty()) ++stats.num_roots;
    for (NodeId u : deps) ++dependents[static_cast<size_t>(u)];
  }
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (dependents[static_cast<size_t>(v)] == 0) ++stats.num_leaves;
    stats.max_dependents =
        std::max(stats.max_dependents, dependents[static_cast<size_t>(v)]);
  }
  if (stats.num_nodes > 0) {
    stats.mean_depth = static_cast<double>(depth_sum) / stats.num_nodes;
    stats.mean_closure =
        static_cast<double>(stats.total_closure_size) / stats.num_nodes;
  }
  return stats;
}

std::string DagStats::ToString() const {
  std::ostringstream out;
  out << "nodes=" << num_nodes << " direct_edges=" << num_direct_edges
      << " roots=" << num_roots << " leaves=" << num_leaves << "\n"
      << "closure: mean=" << mean_closure << " max=" << max_closure
      << " total=" << total_closure_size << "\n"
      << "depth: mean=" << mean_depth << " max=" << max_depth << "\n"
      << "width by depth:";
  for (size_t d = 0; d < width_by_depth.size(); ++d) {
    out << " " << width_by_depth[d];
  }
  return out.str();
}

}  // namespace dasc::graph
