// Synthetic road network with shortest-path distances.
//
// The paper notes that its approaches "can also be used with other distance
// functions (e.g., road-network distance)". This module provides that
// substrate: a connected grid road graph over a bounding box whose edge
// lengths carry per-street detour factors (and some blocked streets), with
// point-to-point distances computed by snapping to the nearest junction and
// running cached single-source Dijkstra.
#ifndef DASC_GEO_ROAD_NETWORK_H_
#define DASC_GEO_ROAD_NETWORK_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "geo/point.h"

namespace dasc::geo {

class RoadNetwork {
 public:
  struct Options {
    int grid_width = 48;   // junction columns
    int grid_height = 48;  // junction rows
    // Edge length = Euclidean length * U[detour_min, detour_max].
    double detour_min = 1.0;
    double detour_max = 1.5;
    // Fraction of non-spanning-tree streets removed (connectivity is always
    // preserved via a random spanning tree).
    double blocked_fraction = 0.15;
    uint64_t seed = 42;
  };

  // Builds a connected grid network covering [min_x, max_x] x [min_y, max_y].
  static RoadNetwork MakeGrid(double min_x, double min_y, double max_x,
                              double max_y, const Options& options);

  // Network distance between arbitrary points: walk to the nearest junction,
  // shortest path through the network, walk from the nearest junction.
  // Not thread-safe (maintains an internal SSSP cache).
  double Distance(const Point& a, const Point& b) const;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int64_t num_edges() const { return num_edges_; }
  const Point& node(int id) const { return nodes_[static_cast<size_t>(id)]; }

  // Nearest junction to `p` (O(1), grid arithmetic).
  int SnapToNode(const Point& p) const;

 private:
  RoadNetwork() = default;

  const std::vector<double>& ShortestPathsFrom(int source) const;

  struct Edge {
    int to;
    double length;
  };

  int width_ = 0, height_ = 0;
  double min_x_ = 0, min_y_ = 0, step_x_ = 1, step_y_ = 1;
  std::vector<Point> nodes_;
  std::vector<std::vector<Edge>> adjacency_;
  int64_t num_edges_ = 0;

  // SSSP cache; bounded, cleared wholesale when it overflows.
  mutable std::unordered_map<int, std::vector<double>> sssp_cache_;
  static constexpr size_t kMaxCachedSources = 2048;
};

}  // namespace dasc::geo

#endif  // DASC_GEO_ROAD_NETWORK_H_
