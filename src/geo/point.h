// 2-D point in the model space.
#ifndef DASC_GEO_POINT_H_
#define DASC_GEO_POINT_H_

namespace dasc::geo {

// Planar coordinates. For synthetic workloads this is the unit square of the
// paper's Table V; for the Meetup-like workload it holds (longitude, latitude)
// degrees inside the Hong Kong bounding box, matching the paper's use of
// raw coordinates with Euclidean distance.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

}  // namespace dasc::geo

#endif  // DASC_GEO_POINT_H_
