// Static 2-d tree for radius and nearest-neighbor queries.
//
// Alternative to GridIndex for non-uniform (clustered) point sets, where a
// uniform grid degenerates: construction is O(n log n), radius queries are
// output-sensitive, nearest-neighbor is O(log n) expected.
#ifndef DASC_GEO_KDTREE_H_
#define DASC_GEO_KDTREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace dasc::geo {

class KdTree {
 public:
  // Builds over `points`; element i keeps external id i.
  explicit KdTree(const std::vector<Point>& points);

  // Appends ids of all points within `radius` (inclusive, Euclidean) of
  // `center` to `out`, in unspecified order.
  void QueryRadius(const Point& center, double radius,
                   std::vector<int32_t>* out) const;
  std::vector<int32_t> QueryRadius(const Point& center, double radius) const;

  // Id of the closest point to `center` (ties broken arbitrarily), or -1 on
  // an empty tree.
  int32_t Nearest(const Point& center) const;

  size_t size() const { return points_.size(); }

 private:
  struct Node {
    int32_t point = -1;  // index into points_
    int32_t left = -1;
    int32_t right = -1;
    bool split_x = true;
  };

  int32_t Build(std::vector<int32_t>& ids, int lo, int hi, bool split_x);
  void RadiusSearch(int32_t node, const Point& center, double r2,
                    std::vector<int32_t>* out) const;
  void NearestSearch(int32_t node, const Point& center, int32_t* best,
                     double* best_d2) const;

  std::vector<Point> points_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace dasc::geo

#endif  // DASC_GEO_KDTREE_H_
