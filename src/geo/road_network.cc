#include "geo/road_network.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

#include "geo/distance.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dasc::geo {

namespace {

// Union-find for the spanning-tree construction.
class DisjointSets {
 public:
  explicit DisjointSets(int n) : parent_(static_cast<size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[static_cast<size_t>(a)] = b;
    return true;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

RoadNetwork RoadNetwork::MakeGrid(double min_x, double min_y, double max_x,
                                  double max_y, const Options& options) {
  DASC_CHECK_GE(options.grid_width, 2);
  DASC_CHECK_GE(options.grid_height, 2);
  DASC_CHECK_GT(max_x, min_x);
  DASC_CHECK_GT(max_y, min_y);
  DASC_CHECK_GE(options.detour_min, 1.0);
  DASC_CHECK_GE(options.detour_max, options.detour_min);
  DASC_CHECK_GE(options.blocked_fraction, 0.0);
  DASC_CHECK_LE(options.blocked_fraction, 1.0);

  RoadNetwork network;
  network.width_ = options.grid_width;
  network.height_ = options.grid_height;
  network.min_x_ = min_x;
  network.min_y_ = min_y;
  network.step_x_ = (max_x - min_x) / (options.grid_width - 1);
  network.step_y_ = (max_y - min_y) / (options.grid_height - 1);

  const int n = options.grid_width * options.grid_height;
  network.nodes_.reserve(static_cast<size_t>(n));
  for (int row = 0; row < options.grid_height; ++row) {
    for (int col = 0; col < options.grid_width; ++col) {
      network.nodes_.push_back(
          {min_x + col * network.step_x_, min_y + row * network.step_y_});
    }
  }
  network.adjacency_.resize(static_cast<size_t>(n));

  // Candidate streets: 4-neighbor grid edges, shuffled. A random spanning
  // tree is always kept; the remainder are blocked with the configured
  // probability, so the network stays connected but is not a plain grid.
  util::Rng rng(options.seed);
  struct Candidate {
    int a, b;
  };
  std::vector<Candidate> candidates;
  auto id = [&](int col, int row) { return row * options.grid_width + col; };
  for (int row = 0; row < options.grid_height; ++row) {
    for (int col = 0; col < options.grid_width; ++col) {
      if (col + 1 < options.grid_width) {
        candidates.push_back({id(col, row), id(col + 1, row)});
      }
      if (row + 1 < options.grid_height) {
        candidates.push_back({id(col, row), id(col, row + 1)});
      }
    }
  }
  rng.Shuffle(candidates);
  DisjointSets components(n);
  for (const Candidate& c : candidates) {
    const bool tree_edge = components.Union(c.a, c.b);
    if (!tree_edge && rng.Bernoulli(options.blocked_fraction)) continue;
    const double detour =
        rng.UniformDouble(options.detour_min, options.detour_max);
    const double length =
        EuclideanDistance(network.nodes_[static_cast<size_t>(c.a)],
                          network.nodes_[static_cast<size_t>(c.b)]) *
        detour;
    network.adjacency_[static_cast<size_t>(c.a)].push_back({c.b, length});
    network.adjacency_[static_cast<size_t>(c.b)].push_back({c.a, length});
    ++network.num_edges_;
  }
  return network;
}

int RoadNetwork::SnapToNode(const Point& p) const {
  const int col = std::clamp(
      static_cast<int>((p.x - min_x_) / step_x_ + 0.5), 0, width_ - 1);
  const int row = std::clamp(
      static_cast<int>((p.y - min_y_) / step_y_ + 0.5), 0, height_ - 1);
  return row * width_ + col;
}

const std::vector<double>& RoadNetwork::ShortestPathsFrom(int source) const {
  auto it = sssp_cache_.find(source);
  if (it != sssp_cache_.end()) return it->second;
  if (sssp_cache_.size() >= kMaxCachedSources) sssp_cache_.clear();

  std::vector<double> dist(nodes_.size(),
                           std::numeric_limits<double>::infinity());
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  dist[static_cast<size_t>(source)] = 0.0;
  frontier.emplace(0.0, source);
  while (!frontier.empty()) {
    const auto [d, u] = frontier.top();
    frontier.pop();
    if (d > dist[static_cast<size_t>(u)]) continue;
    for (const Edge& e : adjacency_[static_cast<size_t>(u)]) {
      const double candidate = d + e.length;
      if (candidate < dist[static_cast<size_t>(e.to)]) {
        dist[static_cast<size_t>(e.to)] = candidate;
        frontier.emplace(candidate, e.to);
      }
    }
  }
  return sssp_cache_.emplace(source, std::move(dist)).first->second;
}

double RoadNetwork::Distance(const Point& a, const Point& b) const {
  const int na = SnapToNode(a);
  const int nb = SnapToNode(b);
  const double walk_a = EuclideanDistance(a, node(na));
  const double walk_b = EuclideanDistance(b, node(nb));
  if (na == nb) return walk_a + walk_b;
  const double through = ShortestPathsFrom(na)[static_cast<size_t>(nb)];
  return walk_a + through + walk_b;
}

}  // namespace dasc::geo
