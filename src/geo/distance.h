// Distance functions over geo::Point.
//
// The DA-SC definitions use Euclidean distance but explicitly allow other
// metrics ("our proposed approaches can also be used with other distance
// functions"); everything downstream takes a DistanceKind.
#ifndef DASC_GEO_DISTANCE_H_
#define DASC_GEO_DISTANCE_H_

#include "geo/point.h"

namespace dasc::geo {

enum class DistanceKind {
  kEuclidean,    // sqrt(dx^2 + dy^2); the paper's default.
  kManhattan,    // |dx| + |dy|; grid/road-network proxy.
  kHaversineKm,  // great-circle km treating (x, y) as (lon, lat) degrees.
  kRoadNetwork,  // shortest path through a geo::RoadNetwork (needs one;
                 // dispatched by core::PairDistance, not geo::Distance).
};

double EuclideanDistance(const Point& a, const Point& b);
double ManhattanDistance(const Point& a, const Point& b);
double HaversineDistanceKm(const Point& a, const Point& b);

// Dispatches on `kind`.
double Distance(DistanceKind kind, const Point& a, const Point& b);

}  // namespace dasc::geo

#endif  // DASC_GEO_DISTANCE_H_
