#include "geo/kdtree.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace dasc::geo {

namespace {

double Sq(double v) { return v * v; }

double Dist2(const Point& a, const Point& b) {
  return Sq(a.x - b.x) + Sq(a.y - b.y);
}

}  // namespace

KdTree::KdTree(const std::vector<Point>& points) : points_(points) {
  if (points_.empty()) return;
  nodes_.reserve(points_.size());
  std::vector<int32_t> ids(points_.size());
  std::iota(ids.begin(), ids.end(), 0);
  root_ = Build(ids, 0, static_cast<int>(ids.size()), /*split_x=*/true);
}

int32_t KdTree::Build(std::vector<int32_t>& ids, int lo, int hi,
                      bool split_x) {
  if (lo >= hi) return -1;
  const int mid = lo + (hi - lo) / 2;
  std::nth_element(ids.begin() + lo, ids.begin() + mid, ids.begin() + hi,
                   [&](int32_t a, int32_t b) {
                     const Point& pa = points_[static_cast<size_t>(a)];
                     const Point& pb = points_[static_cast<size_t>(b)];
                     return split_x ? pa.x < pb.x : pa.y < pb.y;
                   });
  const int32_t node_index = static_cast<int32_t>(nodes_.size());
  nodes_.push_back({ids[static_cast<size_t>(mid)], -1, -1, split_x});
  const int32_t left = Build(ids, lo, mid, !split_x);
  const int32_t right = Build(ids, mid + 1, hi, !split_x);
  nodes_[static_cast<size_t>(node_index)].left = left;
  nodes_[static_cast<size_t>(node_index)].right = right;
  return node_index;
}

void KdTree::QueryRadius(const Point& center, double radius,
                         std::vector<int32_t>* out) const {
  if (root_ < 0 || radius < 0.0) return;
  RadiusSearch(root_, center, radius * radius, out);
}

std::vector<int32_t> KdTree::QueryRadius(const Point& center,
                                         double radius) const {
  std::vector<int32_t> out;
  QueryRadius(center, radius, &out);
  return out;
}

void KdTree::RadiusSearch(int32_t node, const Point& center, double r2,
                          std::vector<int32_t>* out) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  const Point& p = points_[static_cast<size_t>(n.point)];
  if (Dist2(p, center) <= r2) out->push_back(n.point);
  const double plane_delta = n.split_x ? center.x - p.x : center.y - p.y;
  const int32_t near_child = plane_delta <= 0.0 ? n.left : n.right;
  const int32_t far_child = plane_delta <= 0.0 ? n.right : n.left;
  if (near_child >= 0) RadiusSearch(near_child, center, r2, out);
  if (far_child >= 0 && Sq(plane_delta) <= r2) {
    RadiusSearch(far_child, center, r2, out);
  }
}

int32_t KdTree::Nearest(const Point& center) const {
  if (root_ < 0) return -1;
  int32_t best = -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  NearestSearch(root_, center, &best, &best_d2);
  return best;
}

void KdTree::NearestSearch(int32_t node, const Point& center, int32_t* best,
                           double* best_d2) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  const Point& p = points_[static_cast<size_t>(n.point)];
  const double d2 = Dist2(p, center);
  if (d2 < *best_d2) {
    *best_d2 = d2;
    *best = n.point;
  }
  const double plane_delta = n.split_x ? center.x - p.x : center.y - p.y;
  const int32_t near_child = plane_delta <= 0.0 ? n.left : n.right;
  const int32_t far_child = plane_delta <= 0.0 ? n.right : n.left;
  if (near_child >= 0) NearestSearch(near_child, center, best, best_d2);
  if (far_child >= 0 && Sq(plane_delta) < *best_d2) {
    NearestSearch(far_child, center, best, best_d2);
  }
}

}  // namespace dasc::geo
