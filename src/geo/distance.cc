#include "geo/distance.h"

#include <cmath>

#include "util/logging.h"

namespace dasc::geo {

namespace {
constexpr double kEarthRadiusKm = 6371.0088;
double DegToRad(double deg) { return deg * M_PI / 180.0; }
}  // namespace

double EuclideanDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double ManhattanDistance(const Point& a, const Point& b) {
  return std::fabs(a.x - b.x) + std::fabs(a.y - b.y);
}

double HaversineDistanceKm(const Point& a, const Point& b) {
  const double lat1 = DegToRad(a.y);
  const double lat2 = DegToRad(b.y);
  const double dlat = lat2 - lat1;
  const double dlon = DegToRad(b.x - a.x);
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(std::min(1.0, h)));
}

double Distance(DistanceKind kind, const Point& a, const Point& b) {
  switch (kind) {
    case DistanceKind::kEuclidean:
      return EuclideanDistance(a, b);
    case DistanceKind::kManhattan:
      return ManhattanDistance(a, b);
    case DistanceKind::kHaversineKm:
      return HaversineDistanceKm(a, b);
    case DistanceKind::kRoadNetwork:
      DASC_CHECK(false)
          << "kRoadNetwork needs a network; use core::PairDistance";
      return 0.0;
  }
  DASC_CHECK(false) << "unknown DistanceKind";
  return 0.0;
}

}  // namespace dasc::geo
