// Uniform grid spatial index.
//
// Candidate generation for feasibility ("which tasks can worker w reach?")
// is a radius query; a uniform grid over the workload's bounding box gives
// O(1) insertion and output-sensitive radius queries, which is what spatial
// crowdsourcing platforms use at this scale.
#ifndef DASC_GEO_GRID_INDEX_H_
#define DASC_GEO_GRID_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geo/distance.h"
#include "geo/point.h"

namespace dasc::geo {

// Static grid over id->point data. Build once, query many times.
class GridIndex {
 public:
  // Builds an index over `points`; element i keeps external id i. `cell_size`
  // <= 0 picks a heuristic cell size (~sqrt(area / n)). The bounding box is
  // derived from the data.
  explicit GridIndex(const std::vector<Point>& points, double cell_size = 0.0);

  // Appends to `out` the ids of all points within `radius` (inclusive,
  // Euclidean) of `center`. Results are in unspecified order.
  void QueryRadius(const Point& center, double radius,
                   std::vector<int32_t>* out) const;

  // Convenience wrapper returning a fresh vector.
  std::vector<int32_t> QueryRadius(const Point& center, double radius) const;

  size_t size() const { return points_.size(); }
  double cell_size() const { return cell_size_; }

 private:
  int CellX(double x) const;
  int CellY(double y) const;
  size_t CellIndex(int cx, int cy) const;

  std::vector<Point> points_;
  double min_x_ = 0.0, min_y_ = 0.0;
  double cell_size_ = 1.0;
  int cells_x_ = 1, cells_y_ = 1;
  // CSR layout: cell_start_[c]..cell_start_[c+1] indexes into cell_items_.
  std::vector<int32_t> cell_start_;
  std::vector<int32_t> cell_items_;
};

}  // namespace dasc::geo

#endif  // DASC_GEO_GRID_INDEX_H_
