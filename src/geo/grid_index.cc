#include "geo/grid_index.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dasc::geo {

GridIndex::GridIndex(const std::vector<Point>& points, double cell_size)
    : points_(points) {
  if (points_.empty()) {
    cell_start_.assign(2, 0);
    return;
  }
  double max_x = points_[0].x, max_y = points_[0].y;
  min_x_ = points_[0].x;
  min_y_ = points_[0].y;
  for (const Point& p : points_) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const double width = std::max(max_x - min_x_, 1e-12);
  const double height = std::max(max_y - min_y_, 1e-12);
  if (cell_size > 0.0) {
    cell_size_ = cell_size;
  } else {
    // Aim for ~1 point per cell on average, bounded to keep memory sane.
    const double area = width * height;
    cell_size_ = std::sqrt(area / static_cast<double>(points_.size()));
    if (cell_size_ <= 0.0) cell_size_ = 1.0;
  }
  cells_x_ = std::max(1, static_cast<int>(width / cell_size_) + 1);
  cells_y_ = std::max(1, static_cast<int>(height / cell_size_) + 1);
  // Clamp total cells to 4M to bound memory for adversarial cell sizes.
  while (static_cast<int64_t>(cells_x_) * cells_y_ > (1 << 22)) {
    cell_size_ *= 2.0;
    cells_x_ = std::max(1, static_cast<int>(width / cell_size_) + 1);
    cells_y_ = std::max(1, static_cast<int>(height / cell_size_) + 1);
  }

  const size_t num_cells = static_cast<size_t>(cells_x_) * cells_y_;
  std::vector<int32_t> counts(num_cells, 0);
  for (const Point& p : points_) {
    ++counts[CellIndex(CellX(p.x), CellY(p.y))];
  }
  cell_start_.assign(num_cells + 1, 0);
  for (size_t c = 0; c < num_cells; ++c) {
    cell_start_[c + 1] = cell_start_[c] + counts[c];
  }
  cell_items_.assign(points_.size(), 0);
  std::vector<int32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (size_t i = 0; i < points_.size(); ++i) {
    const size_t c = CellIndex(CellX(points_[i].x), CellY(points_[i].y));
    cell_items_[static_cast<size_t>(cursor[c]++)] = static_cast<int32_t>(i);
  }
}

int GridIndex::CellX(double x) const {
  int cx = static_cast<int>((x - min_x_) / cell_size_);
  return std::clamp(cx, 0, cells_x_ - 1);
}

int GridIndex::CellY(double y) const {
  int cy = static_cast<int>((y - min_y_) / cell_size_);
  return std::clamp(cy, 0, cells_y_ - 1);
}

size_t GridIndex::CellIndex(int cx, int cy) const {
  return static_cast<size_t>(cy) * cells_x_ + cx;
}

void GridIndex::QueryRadius(const Point& center, double radius,
                            std::vector<int32_t>* out) const {
  DASC_CHECK(out != nullptr);
  if (points_.empty() || radius < 0.0) return;
  const int cx_lo = CellX(center.x - radius);
  const int cx_hi = CellX(center.x + radius);
  const int cy_lo = CellY(center.y - radius);
  const int cy_hi = CellY(center.y + radius);
  const double r2 = radius * radius;
  for (int cy = cy_lo; cy <= cy_hi; ++cy) {
    for (int cx = cx_lo; cx <= cx_hi; ++cx) {
      const size_t c = CellIndex(cx, cy);
      for (int32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
        const int32_t id = cell_items_[static_cast<size_t>(k)];
        const Point& p = points_[static_cast<size_t>(id)];
        const double dx = p.x - center.x;
        const double dy = p.y - center.y;
        if (dx * dx + dy * dy <= r2) out->push_back(id);
      }
    }
  }
}

std::vector<int32_t> GridIndex::QueryRadius(const Point& center,
                                            double radius) const {
  std::vector<int32_t> out;
  QueryRadius(center, radius, &out);
  return out;
}

}  // namespace dasc::geo
