#include "sim/run_report_reader.h"

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/json.h"

namespace dasc::sim {

namespace {

using util::JsonValue;
using util::Result;
using util::Status;

Status LineError(int line_no, const std::string& message) {
  return Status::InvalidArgument("run report line " + std::to_string(line_no) +
                                 ": " + message);
}

// Fetches a required numeric field; `required` = false turns absence into
// `fallback` (used for the v2-only fields when reading a /1 report).
Status GetNumberField(const JsonValue& obj, const std::string& key,
                      bool required, double fallback, int line_no,
                      double* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    if (!required) {
      *out = fallback;
      return Status::OK();
    }
    return LineError(line_no, "missing required field \"" + key + "\"");
  }
  if (!v->is_number()) {
    return LineError(line_no, "field \"" + key + "\" is not a number");
  }
  *out = v->AsDouble();
  return Status::OK();
}

Status ParseHeader(const JsonValue& obj, int line_no, RunReport* report) {
  const std::string schema = obj.GetString("schema", "");
  constexpr const char* kPrefix = "dasc-run-report/";
  int version = 0;
  if (schema.rfind(kPrefix, 0) == 0) {
    version = std::atoi(schema.c_str() + std::string(kPrefix).size());
  }
  if (version < 1 || version > 5) {
    return LineError(line_no,
                     "unsupported schema \"" + schema +
                         "\" (this reader supports dasc-run-report/1 "
                         "through dasc-run-report/5)");
  }
  report->schema_version = version;
  report->header.kind = obj.GetString("kind", "");
  report->header.instance = obj.GetString("instance", "");
  report->declared_runs = static_cast<int>(obj.GetNumber("runs", 0));
  return Status::OK();
}

Status ParseStats(const JsonValue& obj, int version, int line_no,
                  RunStats* stats) {
  const JsonValue* algorithm = obj.Find("algorithm");
  if (algorithm == nullptr || !algorithm->is_string()) {
    return LineError(line_no, "stats line missing \"algorithm\"");
  }
  stats->algorithm = algorithm->AsString();

  const bool v2 = version >= 2;
  const bool v3 = version >= 3;
  struct Field {
    const char* key;
    double* out;
    bool required;
  };
  double score = 0, batches = 0, nonempty = 0, empty = 0, completed = 0,
         wasted = 0, audited = 0, violations = 0, total_tasks = 0,
         ledger_mismatches = 0;
  const Field fields[] = {
      {"score", &score, true},
      {"batches", &batches, true},
      {"nonempty_batches", &nonempty, true},
      {"empty_batches", &empty, v2},
      {"completed_tasks", &completed, true},
      {"wasted_dispatches", &wasted, true},
      {"allocator_ms", &stats->millis, true},
      {"p50_batch_ms", &stats->p50_batch_ms, true},
      {"p95_batch_ms", &stats->p95_batch_ms, true},
      {"max_batch_ms", &stats->max_batch_ms, true},
      {"mean_assignment_latency", &stats->mean_assignment_latency, true},
      {"last_completion_time", &stats->last_completion_time, true},
      {"audited_batches", &audited, v2},
      {"audit_violations", &violations, v2},
      {"min_batch_gap", &stats->min_batch_gap, v2},
      {"mean_batch_gap", &stats->mean_batch_gap, v2},
      {"approx_ratio", &stats->approx_ratio, v2},
      {"total_tasks", &total_tasks, v3},
      {"ledger_mismatches", &ledger_mismatches, v3},
  };
  for (const Field& f : fields) {
    Status status =
        GetNumberField(obj, f.key, f.required, 0.0, line_no, f.out);
    if (!status.ok()) return status;
  }
  stats->score = static_cast<int>(score);
  stats->batches = static_cast<int>(batches);
  stats->nonempty_batches = static_cast<int>(nonempty);
  stats->empty_batches = static_cast<int>(empty);
  stats->completed_tasks = static_cast<int>(completed);
  stats->wasted_dispatches = static_cast<int>(wasted);
  stats->audited_batches = static_cast<int>(audited);
  stats->audit_violations = static_cast<int>(violations);
  stats->total_tasks = static_cast<int>(total_tasks);
  stats->ledger_mismatches = static_cast<int>(ledger_mismatches);
  return Status::OK();
}

// Attaches a "ledger" summary line to its algorithm's RunStats: rebuilds
// unserved_by_reason (index 0 = completed, the rest from the closed-enum
// "reasons" object).
Status ParseLedger(const JsonValue& obj, int line_no, RunStats* stats) {
  stats->unserved_by_reason.assign(kNumUnservedReasons, 0);
  stats->unserved_by_reason[0] =
      static_cast<int64_t>(obj.GetNumber("completed_tasks", 0));
  const JsonValue* reasons = obj.Find("reasons");
  if (reasons == nullptr || !reasons->is_object()) {
    return LineError(line_no, "ledger line missing \"reasons\" object");
  }
  for (const auto& [name, value] : reasons->members()) {
    UnservedReason reason;
    if (!UnservedReasonFromName(name, &reason) ||
        reason == UnservedReason::kServed) {
      return LineError(line_no, "unknown unserved reason \"" + name + "\"");
    }
    if (!value.is_number()) {
      return LineError(line_no, "reason \"" + name + "\" is not a number");
    }
    stats->unserved_by_reason[static_cast<size_t>(reason)] =
        static_cast<int64_t>(value.AsDouble());
  }
  return Status::OK();
}

// One per-task "task" line back into a TaskLedgerEntry.
Status ParseTaskEntry(const JsonValue& obj, int line_no,
                      TaskLedgerEntry* entry) {
  const JsonValue* reason = obj.Find("reason");
  if (reason == nullptr || !reason->is_string()) {
    return LineError(line_no, "task line with missing \"reason\"");
  }
  if (!UnservedReasonFromName(reason->AsString(), &entry->reason)) {
    return LineError(line_no, "task line with unknown reason \"" +
                                  reason->AsString() + "\"");
  }
  double task = 0, dep_depth = 0, batches_open = 0, candidate_batches = 0,
         first_open = 0, last_open = 0, assigned = 0;
  struct Field {
    const char* key;
    double* out;
  };
  const Field fields[] = {
      {"task", &task},
      {"arrival", &entry->arrival},
      {"expiry", &entry->expiry},
      {"dep_depth", &dep_depth},
      {"batches_open", &batches_open},
      {"candidate_batches", &candidate_batches},
      {"first_open_batch", &first_open},
      {"last_open_batch", &last_open},
      {"assigned_batch", &assigned},
      {"completion_time", &entry->completion_time},
  };
  for (const Field& f : fields) {
    Status status = GetNumberField(obj, f.key, true, 0.0, line_no, f.out);
    if (!status.ok()) return status;
  }
  entry->task = static_cast<core::TaskId>(task);
  entry->dep_depth = static_cast<int>(dep_depth);
  entry->batches_open = static_cast<int>(batches_open);
  entry->candidate_batches = static_cast<int>(candidate_batches);
  entry->first_open_batch = static_cast<int>(first_open);
  entry->last_open_batch = static_cast<int>(last_open);
  entry->assigned_batch = static_cast<int>(assigned);
  const JsonValue* camp = obj.Find("camp_expired");
  entry->camp_expired = camp != nullptr && camp->AsBool();
  entry->completed = entry->reason == UnservedReason::kServed;
  // /5 task lines carry the task's causal-trace id; it is a pure function
  // of the task id, so a value that disagrees means the report was
  // hand-edited or the writer regressed — either way fail loudly.
  const JsonValue* trace_id = obj.Find("trace_id");
  if (trace_id != nullptr &&
      util::ParseTraceId(trace_id->AsString()) != TaskTraceId(entry->task)) {
    return LineError(line_no, "task line trace_id \"" + trace_id->AsString() +
                                  "\" does not match TaskTraceId(task)");
  }
  return Status::OK();
}

Status ParseHistogram(const JsonValue& obj, int line_no,
                      util::HistogramSnapshot* hist) {
  hist->name = obj.GetString("name", "");
  hist->count = static_cast<int64_t>(obj.GetNumber("count", 0));
  hist->sum = obj.GetNumber("sum", 0.0);
  const JsonValue* buckets = obj.Find("buckets");
  if (buckets == nullptr || !buckets->is_array()) {
    return LineError(line_no, "histogram line missing \"buckets\" array");
  }
  bool saw_overflow = false;
  for (const JsonValue& bucket : buckets->items()) {
    if (!bucket.is_object()) {
      return LineError(line_no, "histogram bucket is not an object");
    }
    const JsonValue* le = bucket.Find("le");
    const int64_t count = static_cast<int64_t>(bucket.GetNumber("count", 0));
    if (le != nullptr && le->is_number()) {
      if (saw_overflow) {
        return LineError(line_no, "finite bucket after the +Inf bucket");
      }
      hist->bounds.push_back(le->AsDouble());
      hist->counts.push_back(count);
    } else if (le != nullptr && le->is_string() && le->AsString() == "+Inf") {
      saw_overflow = true;
      hist->counts.push_back(count);
    } else {
      return LineError(line_no, "histogram bucket with invalid \"le\"");
    }
  }
  if (!saw_overflow) {
    return LineError(line_no, "histogram without a +Inf overflow bucket");
  }
  return Status::OK();
}

Status ParseQuantileArray(const JsonValue* arr, int line_no,
                          std::vector<util::SketchQuantile>* out) {
  if (arr == nullptr || !arr->is_array()) {
    return LineError(line_no, "sketch block missing \"quantiles\" array");
  }
  for (const JsonValue& item : arr->items()) {
    if (!item.is_object()) {
      return LineError(line_no, "sketch quantile is not an object");
    }
    out->push_back({item.GetNumber("q", 0.0), item.GetNumber("value", 0.0)});
  }
  return Status::OK();
}

Status ParseSketch(const JsonValue& obj, int line_no,
                   util::SketchSnapshot* sketch) {
  sketch->name = obj.GetString("name", "");
  sketch->relative_error = obj.GetNumber("relative_error", 0.0);
  sketch->window_intervals =
      static_cast<int>(obj.GetNumber("window_intervals", 0));
  // /5 exemplars (absent on older reports and exemplar-free sketches).
  const JsonValue* exemplars = obj.Find("exemplars");
  if (exemplars != nullptr) {
    if (!exemplars->is_array()) {
      return LineError(line_no, "sketch \"exemplars\" is not an array");
    }
    for (const JsonValue& item : exemplars->items()) {
      if (!item.is_object()) {
        return LineError(line_no, "sketch exemplar is not an object");
      }
      util::SketchExemplar exemplar;
      exemplar.value = item.GetNumber("value", 0.0);
      exemplar.trace_id = util::ParseTraceId(item.GetString("trace_id", ""));
      if (exemplar.trace_id == 0) {
        return LineError(line_no, "sketch exemplar with invalid trace_id");
      }
      sketch->exemplars.push_back(exemplar);
    }
  }
  const JsonValue* window = obj.Find("window");
  const JsonValue* cumulative = obj.Find("cumulative");
  if (window == nullptr || !window->is_object() || cumulative == nullptr ||
      !cumulative->is_object()) {
    return LineError(line_no,
                     "sketch line missing \"window\"/\"cumulative\" objects");
  }
  sketch->window_count = static_cast<int64_t>(window->GetNumber("count", 0));
  sketch->window_sum = window->GetNumber("sum", 0.0);
  sketch->cumulative_count =
      static_cast<int64_t>(cumulative->GetNumber("count", 0));
  sketch->cumulative_sum = cumulative->GetNumber("sum", 0.0);
  Status status = ParseQuantileArray(window->Find("quantiles"), line_no,
                                     &sketch->window_quantiles);
  if (!status.ok()) return status;
  return ParseQuantileArray(cumulative->Find("quantiles"), line_no,
                            &sketch->cumulative_quantiles);
}

Status ParseTimeSeriesHeader(const JsonValue& obj, int line_no,
                             RunReportTimeSeries* ts) {
  const JsonValue* columns = obj.Find("columns");
  if (columns == nullptr || !columns->is_array()) {
    return LineError(line_no, "timeseries line missing \"columns\" array");
  }
  for (const JsonValue& col : columns->items()) {
    if (!col.is_string()) {
      return LineError(line_no, "timeseries column is not a string");
    }
    ts->columns.push_back(col.AsString());
  }
  ts->recorded = static_cast<int64_t>(obj.GetNumber("recorded", 0));
  ts->dropped = static_cast<int64_t>(obj.GetNumber("dropped", 0));
  ts->max_samples = static_cast<int>(obj.GetNumber("max_samples", 0));
  ts->present = true;
  return Status::OK();
}

Status ParseTimeSeriesSample(const JsonValue& obj, int line_no,
                             RunReportTimeSeries* ts) {
  if (!ts->present) {
    return LineError(line_no,
                     "\"ts\" line before the \"timeseries\" header line");
  }
  TimeSeriesSample sample;
  sample.batch_seq = static_cast<int64_t>(obj.GetNumber("batch", 0));
  sample.sim_now = obj.GetNumber("now", 0.0);
  const JsonValue* values = obj.Find("v");
  if (values == nullptr || !values->is_array()) {
    return LineError(line_no, "ts line missing \"v\" array");
  }
  for (const JsonValue& v : values->items()) {
    if (!v.is_number()) return LineError(line_no, "ts value is not a number");
    sample.values.push_back(v.AsDouble());
  }
  if (sample.values.size() != ts->columns.size()) {
    return LineError(line_no, "ts line width " +
                                  std::to_string(sample.values.size()) +
                                  " != declared column count " +
                                  std::to_string(ts->columns.size()));
  }
  ts->samples.push_back(std::move(sample));
  return Status::OK();
}

Status ParseAnomaliesSummary(const JsonValue& obj, int line_no,
                             RunReportAnomalies* anomalies) {
  anomalies->present = true;
  anomalies->count = static_cast<int64_t>(obj.GetNumber("count", 0));
  const JsonValue* by_kind = obj.Find("by_kind");
  if (by_kind == nullptr || !by_kind->is_object()) {
    return LineError(line_no, "anomalies line missing \"by_kind\" object");
  }
  for (const auto& [kind, value] : by_kind->members()) {
    if (!value.is_number()) {
      return LineError(line_no, "anomaly kind count is not a number");
    }
    anomalies->by_kind[kind] = static_cast<int64_t>(value.AsDouble());
  }
  return Status::OK();
}

Status ParseAnomaly(const JsonValue& obj, int line_no,
                    RunReportAnomalies* anomalies) {
  if (!anomalies->present) {
    return LineError(line_no,
                     "\"anomaly\" line before the \"anomalies\" summary line");
  }
  WatchdogAnomaly anomaly;
  anomaly.kind = obj.GetString("kind", "");
  if (anomaly.kind.empty()) {
    return LineError(line_no, "anomaly line missing \"kind\"");
  }
  anomaly.batch_seq = static_cast<int64_t>(obj.GetNumber("batch", 0));
  anomaly.value = obj.GetNumber("value", 0.0);
  anomaly.threshold = obj.GetNumber("threshold", 0.0);
  anomaly.wall_ms = obj.GetNumber("wall_ms", 0.0);
  anomalies->entries.push_back(std::move(anomaly));
  return Status::OK();
}

Status ParseTraceSummary(const JsonValue& obj, int line_no,
                         RunReportTraces* traces) {
  (void)line_no;
  traces->present = true;
  TaskTracerStats& s = traces->summary;
  s.traces_started = static_cast<int64_t>(obj.GetNumber("started", 0));
  s.traces_decided = static_cast<int64_t>(obj.GetNumber("decided", 0));
  s.traces_retained = static_cast<int64_t>(obj.GetNumber("retained", 0));
  s.head_retained = static_cast<int64_t>(obj.GetNumber("head", 0));
  s.tail_retained = static_cast<int64_t>(obj.GetNumber("tail", 0));
  s.flagged_retained = static_cast<int64_t>(obj.GetNumber("flagged", 0));
  s.batches = static_cast<int64_t>(obj.GetNumber("batches", 0));
  s.flagged_batches =
      static_cast<int64_t>(obj.GetNumber("flagged_batches", 0));
  s.dropped_batches =
      static_cast<int64_t>(obj.GetNumber("dropped_batches", 0));
  return Status::OK();
}

Status ParseTrace(const JsonValue& obj, int line_no, RunReportTraces* traces) {
  if (!traces->present) {
    return LineError(line_no,
                     "\"trace\" line before the \"trace_summary\" line");
  }
  TaskTraceRecord t;
  t.trace_id = util::ParseTraceId(obj.GetString("trace_id", ""));
  if (t.trace_id == 0) {
    return LineError(line_no, "trace line with invalid \"trace_id\"");
  }
  t.task = static_cast<core::TaskId>(obj.GetNumber("task", -1));
  t.retained_reason = obj.GetString("retained", "");
  if (t.retained_reason != "head" && t.retained_reason != "tail" &&
      t.retained_reason != "flagged") {
    return LineError(line_no, "trace line with unknown \"retained\" value \"" +
                                  t.retained_reason + "\"");
  }
  t.submit_wall_s = obj.GetNumber("submit_s", 0.0);
  t.first_admit_batch =
      static_cast<int64_t>(obj.GetNumber("first_admit_batch", -1));
  t.last_admit_batch =
      static_cast<int64_t>(obj.GetNumber("last_admit_batch", -1));
  t.admitted_batches =
      static_cast<int64_t>(obj.GetNumber("admitted_batches", 0));
  t.camp_batch = static_cast<int64_t>(obj.GetNumber("camp_batch", -1));
  t.decide_batch = static_cast<int64_t>(obj.GetNumber("decide_batch", -1));
  t.decide_wall_s = obj.GetNumber("decide_s", 0.0);
  const JsonValue* served = obj.Find("served");
  t.served = served != nullptr && served->AsBool();
  t.decided = true;
  traces->traces.push_back(std::move(t));
  return Status::OK();
}

Status ParseTraceBatch(const JsonValue& obj, int line_no,
                       RunReportTraces* traces) {
  if (!traces->present) {
    return LineError(line_no,
                     "\"trace_batch\" line before the \"trace_summary\" line");
  }
  TraceBatchRecord b;
  b.seq = static_cast<int64_t>(obj.GetNumber("seq", -1));
  if (b.seq < 0) {
    return LineError(line_no, "trace_batch line with invalid \"seq\"");
  }
  b.begin_wall_s = obj.GetNumber("begin_s", 0.0);
  b.end_wall_s = obj.GetNumber("end_s", 0.0);
  b.decisions = static_cast<int64_t>(obj.GetNumber("decisions", 0));
  b.open_tasks = static_cast<int64_t>(obj.GetNumber("open_tasks", 0));
  b.idle_workers = static_cast<int64_t>(obj.GetNumber("idle_workers", 0));
  const JsonValue* flagged = obj.Find("flagged");
  b.flagged = flagged != nullptr && flagged->AsBool();
  const JsonValue* phases = obj.Find("phases");
  if (phases == nullptr || !phases->is_object()) {
    return LineError(line_no, "trace_batch line missing \"phases\" object");
  }
  for (const auto& [label, ms] : phases->members()) {
    if (!ms.is_number()) {
      return LineError(line_no, "trace_batch phase \"" + label +
                                    "\" is not a number");
    }
    b.phases.push_back({label, ms.AsDouble()});
  }
  traces->batches.push_back(std::move(b));
  return Status::OK();
}

}  // namespace

Result<RunReport> ParseRunReport(std::istream& in) {
  RunReport report;
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Result<JsonValue> parsed = util::ParseJson(line);
    if (!parsed.ok()) return LineError(line_no, parsed.status().message());
    const JsonValue& obj = parsed.value();
    if (!obj.is_object()) {
      return LineError(line_no, "expected a JSON object");
    }
    const std::string type = obj.GetString("type", "");
    if (!saw_header) {
      if (type != "run") {
        return LineError(line_no,
                         "first line must be the {\"type\":\"run\"} header");
      }
      Status status = ParseHeader(obj, line_no, &report);
      if (!status.ok()) return status;
      saw_header = true;
      continue;
    }
    if (type == "run") {
      return LineError(line_no, "duplicate run header");
    }
    if (type == "stats") {
      RunStats stats;
      Status status =
          ParseStats(obj, report.schema_version, line_no, &stats);
      if (!status.ok()) return status;
      report.stats.push_back(std::move(stats));
    } else if (type == "ledger" || type == "task") {
      // Ledger block lines attach to their algorithm's stats entry; the
      // writer always emits them after that stats line.
      const std::string algorithm = obj.GetString("algorithm", "");
      RunStats* stats = nullptr;
      for (RunStats& s : report.stats) {
        if (s.algorithm == algorithm) {
          stats = &s;
          break;
        }
      }
      if (stats == nullptr) {
        return LineError(line_no, "\"" + type +
                                      "\" line for unknown algorithm \"" +
                                      algorithm + "\"");
      }
      if (type == "ledger") {
        Status status = ParseLedger(obj, line_no, stats);
        if (!status.ok()) return status;
      } else {
        TaskLedgerEntry entry;
        Status status = ParseTaskEntry(obj, line_no, &entry);
        if (!status.ok()) return status;
        stats->ledger.push_back(entry);
      }
    } else if (type == "counter") {
      report.metrics.counters.emplace_back(
          obj.GetString("name", ""),
          static_cast<int64_t>(obj.GetNumber("value", 0)));
    } else if (type == "gauge") {
      report.metrics.gauges.emplace_back(obj.GetString("name", ""),
                                         obj.GetNumber("value", 0.0));
    } else if (type == "histogram") {
      util::HistogramSnapshot hist;
      Status status = ParseHistogram(obj, line_no, &hist);
      if (!status.ok()) return status;
      report.metrics.histograms.push_back(std::move(hist));
    } else if (type == "sketch") {
      util::SketchSnapshot sketch;
      Status status = ParseSketch(obj, line_no, &sketch);
      if (!status.ok()) return status;
      report.metrics.sketches.push_back(std::move(sketch));
    } else if (type == "timeseries") {
      Status status = ParseTimeSeriesHeader(obj, line_no, &report.timeseries);
      if (!status.ok()) return status;
    } else if (type == "ts") {
      Status status = ParseTimeSeriesSample(obj, line_no, &report.timeseries);
      if (!status.ok()) return status;
    } else if (type == "anomalies") {
      Status status = ParseAnomaliesSummary(obj, line_no, &report.anomalies);
      if (!status.ok()) return status;
    } else if (type == "anomaly") {
      Status status = ParseAnomaly(obj, line_no, &report.anomalies);
      if (!status.ok()) return status;
    } else if (type == "trace_summary") {
      Status status = ParseTraceSummary(obj, line_no, &report.traces);
      if (!status.ok()) return status;
    } else if (type == "trace") {
      Status status = ParseTrace(obj, line_no, &report.traces);
      if (!status.ok()) return status;
    } else if (type == "trace_batch") {
      Status status = ParseTraceBatch(obj, line_no, &report.traces);
      if (!status.ok()) return status;
    }
    // Unknown types are skipped: minor-version writers may add line kinds.
  }
  if (!saw_header) {
    return Status::InvalidArgument("run report is empty (no header line)");
  }
  if (report.declared_runs != static_cast<int>(report.stats.size())) {
    return Status::InvalidArgument(
        "run report declares " + std::to_string(report.declared_runs) +
        " runs but contains " + std::to_string(report.stats.size()) +
        " stats lines");
  }
  return report;
}

Result<RunReport> ReadRunReportFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open run report: " + path);
  Result<RunReport> report = ParseRunReport(in);
  if (!report.ok()) {
    return Status(report.status().code(),
                  path + ": " + report.status().message());
  }
  return report;
}

const RunStats* FindStats(const RunReport& report,
                          const std::string& algorithm) {
  for (const RunStats& stats : report.stats) {
    if (stats.algorithm == algorithm) return &stats;
  }
  return nullptr;
}

}  // namespace dasc::sim
