#include "sim/audit.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "matching/hopcroft_karp.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace dasc::sim {

namespace {

// Bucketing for the per-batch gap histogram: gaps live in [0, 1], so the
// default exponential-from-1ms layout is useless. start=0.05 / growth=1.2
// puts ~10 buckets across [0.2, 1.1] — enough to resolve whether a run sits
// above or below the paper's 0.5 bound and how tightly it hugs 1.0.
const util::HistogramOptions kGapHistogramOptions{0.05, 1.2, 18};

// The auditor's own re-implementation of the validity constraints. This
// intentionally does NOT call core::CanServe / core::ValidateAssignment: the
// point of the audit is that allocator-path code and checker code fail
// independently. Semantics mirror the paper's Definition 3 exactly (same
// boundary comparisons as the allocator path).
std::string CheckPairConstraints(const core::BatchProblem& problem,
                                 const core::WorkerState& state,
                                 core::TaskId t) {
  const core::Instance& instance = *problem.instance;
  const core::Worker& w = instance.worker(state.id);
  const core::Task& task = instance.task(t);

  // Skill constraint: the worker must practice the task's required skill.
  const auto& skills = w.skills;
  if (std::find(skills.begin(), skills.end(), task.required_skill) ==
      skills.end()) {
    return "skill: worker " + std::to_string(state.id) + " lacks skill " +
           std::to_string(task.required_skill) + " of task " +
           std::to_string(t);
  }
  // Deadline constraint, worker side: the worker must still be on the
  // platform at dispatch time.
  if (problem.now > w.start_time + w.wait_time) {
    return "deadline: worker " + std::to_string(state.id) +
           " left the platform before t=" + std::to_string(problem.now);
  }
  // Deadline constraint, task side: the task must have appeared.
  if (task.start_time > problem.now) {
    return "deadline: task " + std::to_string(t) + " not yet on platform at t=" +
           std::to_string(problem.now);
  }
  // Reachability: travel must fit the remaining budget and arrive before the
  // task's service-start deadline.
  const double dist =
      core::PairDistance(problem.params, state.location, task.location);
  if (dist > state.remaining_distance) {
    return "distance: pair (" + std::to_string(state.id) + ", " +
           std::to_string(t) + ") needs " + std::to_string(dist) +
           " > budget " + std::to_string(state.remaining_distance);
  }
  if (problem.now + dist / w.velocity > task.start_time + task.wait_time) {
    return "deadline: pair (" + std::to_string(state.id) + ", " +
           std::to_string(t) + ") arrives after task expiry";
  }
  return "";
}

// The auditor's own pair-level failure staging for the ledger cross-check:
// same comparisons as CheckPairConstraints (not core::ClassifyServe), folded
// straight to the task-level taxonomy. Returns kServed for a feasible pair.
// The check order matches the taxonomy's progress order, so the first failing
// check IS the pair's stage.
UnservedReason ShadowPairStage(const core::BatchProblem& problem,
                               const core::WorkerState& state, core::TaskId t) {
  const core::Instance& instance = *problem.instance;
  const core::Worker& w = instance.worker(state.id);
  const core::Task& task = instance.task(t);
  const auto& skills = w.skills;
  if (std::find(skills.begin(), skills.end(), task.required_skill) ==
      skills.end()) {
    return UnservedReason::kNoSkilledWorker;
  }
  if (problem.now > w.start_time + w.wait_time ||
      task.start_time > w.start_time + w.wait_time ||
      task.start_time > problem.now) {
    return UnservedReason::kTravelDeadline;
  }
  const double dist =
      core::PairDistance(problem.params, state.location, task.location);
  if (dist > state.remaining_distance) return UnservedReason::kOutOfRange;
  if (problem.now + dist / w.velocity > task.start_time + task.wait_time) {
    return UnservedReason::kArrivalDeadline;
  }
  return UnservedReason::kServed;
}

}  // namespace

int RelaxedBatchUpperBound(const core::BatchProblem& problem,
                           const AuditOptions& options,
                           int skip_probes_at_or_below) {
  DASC_CHECK(problem.instance != nullptr);
  const core::Instance& instance = *problem.instance;
  if (problem.workers.empty() || problem.open_tasks.empty()) return 0;
  const core::CandidateSets& cand = problem.Candidates();
  if (cand.num_pairs == 0) return 0;

  const size_t m = static_cast<size_t>(instance.num_tasks());
  std::vector<uint8_t> open(m, 0);
  for (core::TaskId t : problem.open_tasks) open[static_cast<size_t>(t)] = 1;

  // An open task is "in-batch assignable" when some idle worker can serve it
  // this batch, dependency aside.
  auto assignable = [&](core::TaskId t) {
    return open[static_cast<size_t>(t)] != 0 &&
           !cand.task_workers[static_cast<size_t>(t)].empty();
  };

  // Credibility filter: a task can only appear in a valid assignment when
  // every transitive dependency is already assigned, or (under the paper's
  // in-batch credit semantics) could itself be assigned this batch. Each
  // clause is a necessary condition, so dropping non-credible tasks keeps
  // the bound an upper bound.
  std::vector<core::TaskId> credible;
  std::vector<uint8_t> has_unassigned_deps;
  for (core::TaskId t : problem.open_tasks) {
    if (!assignable(t)) continue;
    bool ok = true;
    bool unassigned_deps = false;
    for (core::TaskId f : instance.DepClosure(t)) {
      if (problem.TaskAssignedBefore(f)) continue;
      if (!problem.in_batch_dependency_credit || !assignable(f)) {
        ok = false;
        break;
      }
      unassigned_deps = true;
    }
    if (ok) {
      credible.push_back(t);
      has_unassigned_deps.push_back(unassigned_deps ? 1 : 0);
    }
  }
  if (credible.empty()) return 0;

  // Dependency-relaxed maximum matching over (idle workers) x (credible
  // tasks) on the skill/deadline/distance-feasible candidate edges.
  std::vector<int> local_of(m, -1);
  auto bound_over = [&](const std::vector<core::TaskId>& tasks) {
    std::fill(local_of.begin(), local_of.end(), -1);
    for (size_t i = 0; i < tasks.size(); ++i) {
      local_of[static_cast<size_t>(tasks[i])] = static_cast<int>(i);
    }
    std::vector<std::vector<int>> adj(problem.workers.size());
    for (size_t i = 0; i < problem.workers.size(); ++i) {
      for (core::TaskId t : cand.worker_tasks[i]) {
        const int local = local_of[static_cast<size_t>(t)];
        if (local >= 0) adj[i].push_back(local);
      }
    }
    return matching::MaxMatchingSize(adj, static_cast<int>(tasks.size()));
  };

  const int ub = bound_over(credible);
  if (!options.closure_feasibility_filter) return ub;
  if (ub <= skip_probes_at_or_below) return ub;
  bool any_probe = false;
  for (uint8_t flag : has_unassigned_deps) any_probe |= (flag != 0);
  if (!any_probe) return ub;

  // Associative-set probes: {t} together with its unassigned closure must be
  // simultaneously matchable in isolation — DASC_Greedy's set feasibility
  // question. Failing the probe proves no valid assignment of this batch can
  // contain t, so dropping it keeps the bound an upper bound. Cost control:
  // a stamped greedy first-fit settles the overwhelming majority of probes
  // in O(set size); a per-set Hopcroft-Karp run is the fallback when greedy
  // fails to complete the matching.
  std::vector<int> used_stamp(problem.workers.size(), -1);
  std::vector<core::TaskId> set_tasks;
  std::vector<core::TaskId> surviving;
  surviving.reserve(credible.size());
  int probe_id = 0;
  for (size_t i = 0; i < credible.size(); ++i) {
    const core::TaskId t = credible[i];
    if (!has_unassigned_deps[i]) {
      surviving.push_back(t);
      continue;
    }
    set_tasks.clear();
    set_tasks.push_back(t);
    for (core::TaskId f : instance.DepClosure(t)) {
      if (!problem.TaskAssignedBefore(f)) set_tasks.push_back(f);
    }
    ++probe_id;
    bool matched_all = true;
    for (core::TaskId s : set_tasks) {
      bool matched = false;
      for (int wi : cand.task_workers[static_cast<size_t>(s)]) {
        if (used_stamp[static_cast<size_t>(wi)] != probe_id) {
          used_stamp[static_cast<size_t>(wi)] = probe_id;
          matched = true;
          break;
        }
      }
      if (!matched) {
        matched_all = false;
        break;
      }
    }
    if (!matched_all) {
      // Greedy left a task unmatched; only a maximum matching can tell
      // whether the set is genuinely infeasible.
      std::unordered_map<int, int> worker_local;
      std::vector<std::vector<int>> adj;
      for (size_t s = 0; s < set_tasks.size(); ++s) {
        for (int wi : cand.task_workers[static_cast<size_t>(set_tasks[s])]) {
          auto [it, inserted] =
              worker_local.emplace(wi, static_cast<int>(adj.size()));
          if (inserted) adj.emplace_back();
          adj[static_cast<size_t>(it->second)].push_back(static_cast<int>(s));
        }
      }
      matched_all = matching::MaxMatchingSize(
                        adj, static_cast<int>(set_tasks.size())) ==
                    static_cast<int>(set_tasks.size());
    }
    if (matched_all) surviving.push_back(t);
  }
  if (surviving.size() == credible.size()) return ub;
  if (surviving.empty()) return 0;
  return bound_over(surviving);
}

BatchAudit BatchAuditor::AuditBatch(const core::BatchProblem& problem,
                                    const core::Assignment& committed,
                                    int batch_seq) {
  DASC_CHECK(problem.instance != nullptr);
  const core::Instance& instance = *problem.instance;
  util::WallTimer timer;

  BatchAudit audit;
  audit.batch_seq = batch_seq;

  // Index the batch context once.
  const size_t m = static_cast<size_t>(instance.num_tasks());
  std::unordered_map<core::WorkerId, const core::WorkerState*> states;
  for (const core::WorkerState& s : problem.workers) states[s.id] = &s;
  std::vector<uint8_t> open(m, 0);
  for (core::TaskId t : problem.open_tasks) open[static_cast<size_t>(t)] = 1;
  std::vector<uint8_t> in_batch(m, 0);
  if (problem.in_batch_dependency_credit) {
    for (const auto& [w, t] : committed.pairs()) {
      in_batch[static_cast<size_t>(t)] = 1;
    }
  }

  std::vector<uint8_t> used_workers;
  std::vector<uint8_t> used_tasks(m, 0);
  used_workers.assign(static_cast<size_t>(instance.num_workers()), 0);

  auto record_violation = [&](const std::string& message) {
    ++audit.violations;
    if (audit.first_violation.empty()) audit.first_violation = message;
    DASC_CHECK(!options_.fail_hard)
        << "allocation audit: batch " << batch_seq << ": " << message;
  };

  for (const auto& [w, t] : committed.pairs()) {
    // Scope: the pair must reference this batch's idle workers / open tasks.
    const auto it = states.find(w);
    if (it == states.end()) {
      record_violation("worker " + std::to_string(w) + " not in batch");
      continue;
    }
    if (t < 0 || static_cast<size_t>(t) >= m || !open[static_cast<size_t>(t)]) {
      record_violation("task " + std::to_string(t) + " not open in batch");
      continue;
    }
    // Exclusivity constraint: each worker and task at most once.
    if (used_workers[static_cast<size_t>(w)]) {
      record_violation("exclusivity: worker " + std::to_string(w) +
                       " assigned twice");
      continue;
    }
    if (used_tasks[static_cast<size_t>(t)]) {
      record_violation("exclusivity: task " + std::to_string(t) +
                       " assigned twice");
      continue;
    }
    used_workers[static_cast<size_t>(w)] = 1;
    used_tasks[static_cast<size_t>(t)] = 1;
    // Skill + deadline + reachability constraints.
    const std::string problem_found =
        CheckPairConstraints(problem, *it->second, t);
    if (!problem_found.empty()) {
      record_violation(problem_found);
      continue;
    }
    // Dependency constraint: the full transitive closure must be assigned
    // before this batch or within this very assignment.
    bool deps_met = true;
    for (core::TaskId f : instance.DepClosure(t)) {
      if (!problem.TaskAssignedBefore(f) && !in_batch[static_cast<size_t>(f)]) {
        record_violation("dependency: task " + std::to_string(t) +
                         " misses dependency " + std::to_string(f));
        deps_met = false;
        break;
      }
    }
    if (!deps_met) continue;
    ++audit.achieved;
  }

  audit.upper_bound =
      RelaxedBatchUpperBound(problem, options_,
                             /*skip_probes_at_or_below=*/audit.achieved);
  if (audit.violations == 0 && audit.achieved > audit.upper_bound) {
    // The bound proof (DESIGN.md §10) guarantees achieved <= upper_bound for
    // any assignment that passes the constraint re-check; a breach means the
    // checker and the bound disagree, which is itself an audit failure.
    record_violation("auditor invariant: achieved " +
                     std::to_string(audit.achieved) + " exceeds upper bound " +
                     std::to_string(audit.upper_bound));
  }

  if (audit.upper_bound > 0) {
    audit.gap = static_cast<double>(audit.achieved) /
                static_cast<double>(audit.upper_bound);
    ++summary_.audited_batches;
    summary_.achieved_total += audit.achieved;
    summary_.upper_bound_total += audit.upper_bound;
    summary_.gap_sum += audit.gap;
    summary_.min_gap = std::min(summary_.min_gap, audit.gap);
    DASC_METRIC_HISTOGRAM_OBSERVE("audit_batch_gap", audit.gap,
                                  kGapHistogramOptions);
    // Level form of the same signal, for live monitors (the stall watchdog
    // alerts when this drops below its min_audit_gap threshold mid-run).
    DASC_METRIC_GAUGE_SET("audit_last_batch_gap", audit.gap);
  }
  summary_.violations += audit.violations;

  DASC_METRIC_COUNTER_INC("audit_batches_total");
  DASC_METRIC_COUNTER_ADD("audit_achieved_total", audit.achieved);
  DASC_METRIC_COUNTER_ADD("audit_upper_bound_total", audit.upper_bound);
  if (audit.violations > 0) {
    DASC_METRIC_COUNTER_ADD("audit_violations_total", audit.violations);
  }
  DASC_METRIC_HISTOGRAM_OBSERVE("audit_batch_ms", timer.ElapsedMillis());
  return audit;
}

void BatchAuditor::ObserveLedgerBatch(const core::BatchProblem& problem,
                                      const core::Assignment& committed) {
  DASC_CHECK(problem.instance != nullptr);
  const core::Instance& instance = *problem.instance;
  const size_t m = static_cast<size_t>(instance.num_tasks());
  if (shadow_stage_.empty()) {
    shadow_stage_.assign(m, UnservedReason::kNeverOpen);
    shadow_seen_.assign(m, 0);
  }
  DASC_CHECK_EQ(shadow_stage_.size(), m);

  std::vector<uint8_t> in_batch(m, 0);
  for (const auto& [w, t] : committed.pairs()) {
    in_batch[static_cast<size_t>(t)] = 1;
  }

  for (core::TaskId t : problem.open_tasks) {
    shadow_seen_[static_cast<size_t>(t)] = 1;
    if (in_batch[static_cast<size_t>(t)]) continue;
    UnservedReason stage = UnservedReason::kWorkerExhausted;
    if (!problem.workers.empty()) {
      UnservedReason best = UnservedReason::kNeverOpen;
      bool feasible = false;
      for (const core::WorkerState& state : problem.workers) {
        const UnservedReason s = ShadowPairStage(problem, state, t);
        if (s == UnservedReason::kServed) {
          feasible = true;
          break;
        }
        best = std::max(best, s);
      }
      if (feasible) {
        bool deps_met = true;
        for (core::TaskId f : instance.DepClosure(t)) {
          if (problem.TaskAssignedBefore(f)) continue;
          if (problem.in_batch_dependency_credit &&
              in_batch[static_cast<size_t>(f)]) {
            continue;
          }
          deps_met = false;
          break;
        }
        stage = deps_met ? UnservedReason::kLostInMatching
                         : UnservedReason::kDependencyUnmet;
      } else {
        stage = best;
      }
    }
    shadow_stage_[static_cast<size_t>(t)] =
        std::max(shadow_stage_[static_cast<size_t>(t)], stage);
  }
}

int BatchAuditor::CrossCheckLedger(
    const std::vector<TaskLedgerEntry>& entries) {
  int mismatches = 0;
  for (const TaskLedgerEntry& e : entries) {
    if (e.completed) {
      if (e.reason != UnservedReason::kServed) ++mismatches;
      continue;
    }
    UnservedReason expected;
    const size_t t = static_cast<size_t>(e.task);
    if (e.camp_expired) {
      // A binding camp that died is dependency_unmet by definition — the
      // shadow maximum may sit higher (lost_in_matching from earlier
      // batches), which the ledger deliberately overrides.
      expected = UnservedReason::kDependencyUnmet;
    } else if (shadow_seen_.empty() || t >= shadow_seen_.size() ||
               shadow_seen_[t] == 0) {
      expected = UnservedReason::kNeverOpen;
    } else {
      expected = shadow_stage_[t];
    }
    if (e.reason != expected) {
      ++mismatches;
      DASC_LOG(WARNING) << "ledger cross-check: task " << e.task
                        << " recorded reason " << UnservedReasonName(e.reason)
                        << " but the audit shadow derives "
                        << UnservedReasonName(expected);
    }
  }
  summary_.ledger_mismatches += mismatches;
  if (mismatches > 0) {
    DASC_METRIC_COUNTER_ADD("audit_ledger_mismatches_total", mismatches);
  }
  return mismatches;
}

namespace {

// First divergence between the published candidate caches and a from-scratch
// rebuild; "" when bit-identical. The rebuild runs on a shallow copy with
// reset caches, so the incremental view's published objects are untouched.
std::string CompareCandidatesToScratch(const core::BatchProblem& problem) {
  const core::CandidateSets& got = problem.Candidates();
  const core::CandidateEdges& got_edges = problem.Edges();

  core::BatchProblem scratch = problem;
  scratch.InvalidateCandidates();
  const core::CandidateSets& want = scratch.Candidates();
  const core::CandidateEdges& want_edges = scratch.Edges();

  if (got.num_pairs != want.num_pairs) {
    return "num_pairs " + std::to_string(got.num_pairs) + " != scratch " +
           std::to_string(want.num_pairs);
  }
  if (got.worker_tasks != want.worker_tasks) {
    for (size_t i = 0; i < want.worker_tasks.size(); ++i) {
      if (got.worker_tasks[i] != want.worker_tasks[i]) {
        return "worker_tasks[" + std::to_string(i) + "] (worker " +
               std::to_string(problem.workers[i].id) + "): " +
               std::to_string(got.worker_tasks[i].size()) +
               " tasks != scratch " +
               std::to_string(want.worker_tasks[i].size());
      }
    }
    return "worker_tasks shape mismatch";
  }
  if (got.task_workers != want.task_workers) {
    for (size_t t = 0; t < want.task_workers.size(); ++t) {
      if (got.task_workers[t] != want.task_workers[t]) {
        return "task_workers[" + std::to_string(t) + "]: " +
               std::to_string(got.task_workers[t].size()) +
               " workers != scratch " +
               std::to_string(want.task_workers[t].size());
      }
    }
    return "task_workers shape mismatch";
  }
  if (got_edges.num_workers != want_edges.num_workers ||
      got_edges.row_begin != want_edges.row_begin ||
      got_edges.workers != want_edges.workers) {
    return "edge CSR layout diverges from scratch";
  }
  // Bit-equal travel times: the whole equivalence argument rests on the
  // matching step seeing identical cost bits (DESIGN.md §17).
  for (size_t e = 0; e < want_edges.travel_time.size(); ++e) {
    if (got_edges.travel_time[e] != want_edges.travel_time[e]) {
      return "travel_time[" + std::to_string(e) + "] " +
             std::to_string(got_edges.travel_time[e]) + " != scratch " +
             std::to_string(want_edges.travel_time[e]);
    }
  }
  return "";
}

}  // namespace

bool BatchAuditor::AuditCandidates(const core::BatchProblem& problem,
                                   int batch_seq) {
  util::WallTimer timer;
  const std::string diff = CompareCandidatesToScratch(problem);
  ++summary_.candidate_checks;
  DASC_METRIC_COUNTER_INC("audit_candidate_checks_total");
  DASC_METRIC_HISTOGRAM_OBSERVE("audit_candidate_check_ms",
                                timer.ElapsedMillis());
  if (diff.empty()) return true;
  ++summary_.candidate_mismatches;
  DASC_METRIC_COUNTER_INC("audit_candidate_mismatches_total");
  if (summary_.first_candidate_mismatch.empty()) {
    summary_.first_candidate_mismatch =
        "batch " + std::to_string(batch_seq) + ": " + diff;
  }
  DASC_LOG(WARNING) << "candidate conformance: batch " << batch_seq
                    << " incremental view diverges from scratch rebuild: "
                    << diff;
  return false;
}

}  // namespace dasc::sim
