#include "sim/run_report.h"

#include <cstdio>

namespace dasc::sim {

namespace {

// Shortest round-trippable-ish representation, matching the registry's
// JSONL number formatting.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

// Minimal JSON string escaping: quotes, backslashes, and control bytes.
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void WriteRunStatsJsonl(std::ostream& out, const RunStats& stats) {
  out << "{\"type\":\"stats\",\"algorithm\":\"" << EscapeJson(stats.algorithm)
      << "\",\"score\":" << stats.score << ",\"batches\":" << stats.batches
      << ",\"nonempty_batches\":" << stats.nonempty_batches
      << ",\"completed_tasks\":" << stats.completed_tasks
      << ",\"wasted_dispatches\":" << stats.wasted_dispatches
      << ",\"allocator_ms\":" << FormatDouble(stats.millis)
      << ",\"p50_batch_ms\":" << FormatDouble(stats.p50_batch_ms)
      << ",\"p95_batch_ms\":" << FormatDouble(stats.p95_batch_ms)
      << ",\"max_batch_ms\":" << FormatDouble(stats.max_batch_ms)
      << ",\"mean_assignment_latency\":"
      << FormatDouble(stats.mean_assignment_latency)
      << ",\"last_completion_time\":"
      << FormatDouble(stats.last_completion_time) << "}\n";
}

void WriteRunReportJsonl(std::ostream& out, const RunReportHeader& header,
                         const std::vector<RunStats>& stats,
                         const util::MetricsRegistry& registry) {
  out << "{\"type\":\"run\",\"schema\":\"" << kRunReportSchema
      << "\",\"kind\":\"" << EscapeJson(header.kind) << "\",\"instance\":\""
      << EscapeJson(header.instance) << "\",\"runs\":" << stats.size()
      << "}\n";
  for (const RunStats& s : stats) {
    WriteRunStatsJsonl(out, s);
  }
  registry.WriteJsonl(out);
}

}  // namespace dasc::sim
