#include "sim/run_report.h"

#include <map>

#include "util/json.h"

namespace dasc::sim {

using util::JsonEscape;
using util::JsonNumber;

void WriteRunStatsJsonl(std::ostream& out, const RunStats& stats) {
  out << "{\"type\":\"stats\",\"algorithm\":\"" << JsonEscape(stats.algorithm)
      << "\",\"score\":" << stats.score << ",\"batches\":" << stats.batches
      << ",\"nonempty_batches\":" << stats.nonempty_batches
      << ",\"empty_batches\":" << stats.empty_batches
      << ",\"completed_tasks\":" << stats.completed_tasks
      << ",\"wasted_dispatches\":" << stats.wasted_dispatches
      << ",\"allocator_ms\":" << JsonNumber(stats.millis)
      << ",\"p50_batch_ms\":" << JsonNumber(stats.p50_batch_ms)
      << ",\"p95_batch_ms\":" << JsonNumber(stats.p95_batch_ms)
      << ",\"max_batch_ms\":" << JsonNumber(stats.max_batch_ms)
      << ",\"mean_assignment_latency\":"
      << JsonNumber(stats.mean_assignment_latency)
      << ",\"last_completion_time\":" << JsonNumber(stats.last_completion_time)
      << ",\"audited_batches\":" << stats.audited_batches
      << ",\"audit_violations\":" << stats.audit_violations
      << ",\"min_batch_gap\":" << JsonNumber(stats.min_batch_gap)
      << ",\"mean_batch_gap\":" << JsonNumber(stats.mean_batch_gap)
      << ",\"approx_ratio\":" << JsonNumber(stats.approx_ratio)
      << ",\"total_tasks\":" << stats.total_tasks
      << ",\"ledger_mismatches\":" << stats.ledger_mismatches << "}\n";
}

void WriteTaskEntryJsonl(std::ostream& out, const std::string& algorithm,
                         const TaskLedgerEntry& entry) {
  out << "{\"type\":\"task\",\"algorithm\":\"" << JsonEscape(algorithm)
      << "\",\"task\":" << entry.task << ",\"reason\":\""
      << UnservedReasonName(entry.reason)
      << "\",\"arrival\":" << JsonNumber(entry.arrival)
      << ",\"expiry\":" << JsonNumber(entry.expiry)
      << ",\"dep_depth\":" << entry.dep_depth
      << ",\"batches_open\":" << entry.batches_open
      << ",\"candidate_batches\":" << entry.candidate_batches
      << ",\"first_open_batch\":" << entry.first_open_batch
      << ",\"last_open_batch\":" << entry.last_open_batch
      << ",\"assigned_batch\":" << entry.assigned_batch
      << ",\"camp_expired\":" << (entry.camp_expired ? "true" : "false")
      << ",\"completion_time\":" << JsonNumber(entry.completion_time)
      // The trace id is a pure function of the task id (sim/task_trace.h),
      // so ledger task lines cross-navigate to traces even in runs where no
      // tracer was attached.
      << ",\"trace_id\":\"" << util::FormatTraceId(TaskTraceId(entry.task))
      << "\"}\n";
}

void WriteTraceJsonl(std::ostream& out, const TaskTracer& tracer) {
  const TaskTracerStats stats = tracer.stats();
  const std::vector<TaskTraceRecord> traces = tracer.RetainedTraces();
  const std::vector<TraceBatchRecord> batches = tracer.BatchRecords();
  out << "{\"type\":\"trace_summary\",\"started\":" << stats.traces_started
      << ",\"decided\":" << stats.traces_decided
      << ",\"retained\":" << stats.traces_retained
      << ",\"head\":" << stats.head_retained
      << ",\"tail\":" << stats.tail_retained
      << ",\"flagged\":" << stats.flagged_retained
      << ",\"batches\":" << stats.batches
      << ",\"flagged_batches\":" << stats.flagged_batches
      << ",\"dropped_batches\":" << stats.dropped_batches
      << ",\"traces\":" << traces.size()
      << ",\"batch_records\":" << batches.size() << "}\n";
  for (const TaskTraceRecord& t : traces) {
    out << "{\"type\":\"trace\",\"trace_id\":\""
        << util::FormatTraceId(t.trace_id) << "\",\"task\":" << t.task
        << ",\"retained\":\"" << JsonEscape(t.retained_reason)
        << "\",\"submit_s\":" << JsonNumber(t.submit_wall_s)
        << ",\"first_admit_batch\":" << t.first_admit_batch
        << ",\"last_admit_batch\":" << t.last_admit_batch
        << ",\"admitted_batches\":" << t.admitted_batches
        << ",\"camp_batch\":" << t.camp_batch
        << ",\"decide_batch\":" << t.decide_batch
        << ",\"decide_s\":" << JsonNumber(t.decide_wall_s)
        << ",\"served\":" << (t.served ? "true" : "false")
        << ",\"e2e_ms\":" << JsonNumber(t.e2e_ms()) << "}\n";
  }
  for (const TraceBatchRecord& b : batches) {
    out << "{\"type\":\"trace_batch\",\"seq\":" << b.seq
        << ",\"begin_s\":" << JsonNumber(b.begin_wall_s)
        << ",\"end_s\":" << JsonNumber(b.end_wall_s)
        << ",\"decisions\":" << b.decisions
        << ",\"open_tasks\":" << b.open_tasks
        << ",\"idle_workers\":" << b.idle_workers
        << ",\"flagged\":" << (b.flagged ? "true" : "false") << ",\"phases\":{";
    bool first = true;
    for (const TraceBatchPhase& p : b.phases) {
      if (!first) out << ",";
      first = false;
      out << "\"" << JsonEscape(p.label) << "\":" << JsonNumber(p.ms);
    }
    out << "}}\n";
  }
}

void WriteLedgerJsonl(std::ostream& out, const RunStats& stats) {
  if (stats.ledger.empty()) return;
  int64_t completed = 0;
  if (!stats.unserved_by_reason.empty()) {
    completed = stats.unserved_by_reason[0];
  }
  int64_t unserved = 0;
  for (size_t r = 1; r < stats.unserved_by_reason.size(); ++r) {
    unserved += stats.unserved_by_reason[r];
  }
  out << "{\"type\":\"ledger\",\"algorithm\":\"" << JsonEscape(stats.algorithm)
      << "\",\"total_tasks\":" << stats.ledger.size()
      << ",\"completed_tasks\":" << completed << ",\"unserved\":" << unserved
      << ",\"reasons\":{";
  bool first = true;
  for (size_t r = 1; r < stats.unserved_by_reason.size(); ++r) {
    if (stats.unserved_by_reason[r] == 0) continue;
    if (!first) out << ",";
    first = false;
    out << "\"" << UnservedReasonName(static_cast<UnservedReason>(r))
        << "\":" << stats.unserved_by_reason[r];
  }
  out << "}}\n";
  for (const TaskLedgerEntry& entry : stats.ledger) {
    WriteTaskEntryJsonl(out, stats.algorithm, entry);
  }
}

void WriteAnomaliesJsonl(std::ostream& out, const StallWatchdog& watchdog) {
  const std::vector<WatchdogAnomaly> anomalies = watchdog.anomalies();
  // Per-kind totals for the summary line (counters survive even when the
  // bounded anomaly list dropped entries).
  std::map<std::string, int64_t> by_kind;
  for (const WatchdogAnomaly& a : anomalies) ++by_kind[a.kind];
  out << "{\"type\":\"anomalies\",\"count\":" << watchdog.anomaly_count()
      << ",\"recorded\":" << anomalies.size() << ",\"by_kind\":{";
  bool first = true;
  for (const auto& [kind, count] : by_kind) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(kind) << "\":" << count;
  }
  out << "}}\n";
  for (const WatchdogAnomaly& a : anomalies) {
    out << "{\"type\":\"anomaly\",\"kind\":\"" << JsonEscape(a.kind)
        << "\",\"batch\":" << a.batch_seq
        << ",\"value\":" << JsonNumber(a.value)
        << ",\"threshold\":" << JsonNumber(a.threshold)
        << ",\"wall_ms\":" << JsonNumber(a.wall_ms) << "}\n";
  }
}

void WriteRunReportJsonl(std::ostream& out, const RunReportHeader& header,
                         const std::vector<RunStats>& stats,
                         const util::MetricsRegistry& registry,
                         const RunReportExtras& extras) {
  out << "{\"type\":\"run\",\"schema\":\"" << kRunReportSchema
      << "\",\"kind\":\"" << JsonEscape(header.kind) << "\",\"instance\":\""
      << JsonEscape(header.instance) << "\",\"runs\":" << stats.size()
      << "}\n";
  for (const RunStats& s : stats) {
    WriteRunStatsJsonl(out, s);
    WriteLedgerJsonl(out, s);
  }
  registry.WriteJsonl(out);
  if (extras.timeseries != nullptr) extras.timeseries->WriteJsonl(out);
  if (extras.watchdog != nullptr) WriteAnomaliesJsonl(out, *extras.watchdog);
  if (extras.tracer != nullptr) WriteTraceJsonl(out, *extras.tracer);
}

void WriteRunReportJsonl(std::ostream& out, const RunReportHeader& header,
                         const std::vector<RunStats>& stats,
                         const util::MetricsRegistry& registry) {
  WriteRunReportJsonl(out, header, stats, registry, RunReportExtras{});
}

}  // namespace dasc::sim
