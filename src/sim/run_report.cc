#include "sim/run_report.h"

#include "util/json.h"

namespace dasc::sim {

using util::JsonEscape;
using util::JsonNumber;

void WriteRunStatsJsonl(std::ostream& out, const RunStats& stats) {
  out << "{\"type\":\"stats\",\"algorithm\":\"" << JsonEscape(stats.algorithm)
      << "\",\"score\":" << stats.score << ",\"batches\":" << stats.batches
      << ",\"nonempty_batches\":" << stats.nonempty_batches
      << ",\"empty_batches\":" << stats.empty_batches
      << ",\"completed_tasks\":" << stats.completed_tasks
      << ",\"wasted_dispatches\":" << stats.wasted_dispatches
      << ",\"allocator_ms\":" << JsonNumber(stats.millis)
      << ",\"p50_batch_ms\":" << JsonNumber(stats.p50_batch_ms)
      << ",\"p95_batch_ms\":" << JsonNumber(stats.p95_batch_ms)
      << ",\"max_batch_ms\":" << JsonNumber(stats.max_batch_ms)
      << ",\"mean_assignment_latency\":"
      << JsonNumber(stats.mean_assignment_latency)
      << ",\"last_completion_time\":" << JsonNumber(stats.last_completion_time)
      << ",\"audited_batches\":" << stats.audited_batches
      << ",\"audit_violations\":" << stats.audit_violations
      << ",\"min_batch_gap\":" << JsonNumber(stats.min_batch_gap)
      << ",\"mean_batch_gap\":" << JsonNumber(stats.mean_batch_gap)
      << ",\"approx_ratio\":" << JsonNumber(stats.approx_ratio) << "}\n";
}

void WriteRunReportJsonl(std::ostream& out, const RunReportHeader& header,
                         const std::vector<RunStats>& stats,
                         const util::MetricsRegistry& registry) {
  out << "{\"type\":\"run\",\"schema\":\"" << kRunReportSchema
      << "\",\"kind\":\"" << JsonEscape(header.kind) << "\",\"instance\":\""
      << JsonEscape(header.instance) << "\",\"runs\":" << stats.size()
      << "}\n";
  for (const RunStats& s : stats) {
    WriteRunStatsJsonl(out, s);
  }
  registry.WriteJsonl(out);
}

}  // namespace dasc::sim
