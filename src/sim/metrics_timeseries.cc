#include "sim/metrics_timeseries.h"

#include <utility>

#include "util/json.h"
#include "util/logging.h"

namespace dasc::sim {

MetricsTimeSeries::MetricsTimeSeries(int max_samples)
    : max_samples_(max_samples) {
  DASC_CHECK_GT(max_samples, 0);
}

size_t MetricsTimeSeries::ColumnIndex(const std::string& name) {
  const auto it = column_index_.find(name);
  if (it != column_index_.end()) return it->second;
  const size_t idx = columns_.size();
  columns_.push_back(name);
  column_index_.emplace(name, idx);
  return idx;
}

void MetricsTimeSeries::AppendDelta(const std::string& name, double value,
                                    std::vector<double>* row) {
  const size_t idx = ColumnIndex(name);
  double& last = last_cumulative_[name];  // starts at 0 for new columns
  const double delta = value - last;
  last = value;
  if (row->size() <= idx) row->resize(idx + 1, 0.0);
  (*row)[idx] = delta;
}

void MetricsTimeSeries::RecordBatch(int64_t batch_seq, double sim_now,
                                    const util::MetricsRegistry& registry) {
  const util::MetricsSnapshot snap = registry.Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  TimeSeriesSample sample;
  sample.batch_seq = batch_seq;
  sample.sim_now = sim_now;
  for (const auto& [name, value] : snap.counters) {
    AppendDelta(name, static_cast<double>(value), &sample.values);
  }
  for (const auto& [name, value] : snap.gauges) {
    const size_t idx = ColumnIndex(name);
    if (sample.values.size() <= idx) sample.values.resize(idx + 1, 0.0);
    sample.values[idx] = value;
  }
  for (const util::HistogramSnapshot& h : snap.histograms) {
    AppendDelta(h.name + "_count", static_cast<double>(h.count),
                &sample.values);
    AppendDelta(h.name + "_sum", h.sum, &sample.values);
  }
  samples_.push_back(std::move(sample));
  if (samples_.size() > static_cast<size_t>(max_samples_)) {
    samples_.pop_front();
    ++dropped_;
  }
}

std::vector<std::string> MetricsTimeSeries::Columns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return columns_;
}

std::vector<TimeSeriesSample> MetricsTimeSeries::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TimeSeriesSample>(samples_.begin(), samples_.end());
}

int64_t MetricsTimeSeries::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

int64_t MetricsTimeSeries::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void MetricsTimeSeries::WriteJsonl(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"type\":\"timeseries\",\"columns\":[";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << util::JsonEscape(columns_[i]) << "\"";
  }
  out << "],\"samples\":" << samples_.size() << ",\"recorded\":" << recorded_
      << ",\"dropped\":" << dropped_ << ",\"max_samples\":" << max_samples_
      << "}\n";
  for (const TimeSeriesSample& sample : samples_) {
    out << "{\"type\":\"ts\",\"batch\":" << sample.batch_seq
        << ",\"now\":" << util::JsonNumber(sample.sim_now) << ",\"v\":[";
    // Samples taken before later columns registered are padded with zeros
    // so every "ts" row is aligned to the header's column list.
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (i > 0) out << ",";
      out << util::JsonNumber(i < sample.values.size() ? sample.values[i]
                                                       : 0.0);
    }
    out << "]}\n";
  }
}

}  // namespace dasc::sim
