// Structured JSONL run reports.
//
// A run report is a machine-readable record of one experiment invocation:
// one header line identifying the run, one "stats" line per RunStats, then
// the metrics-registry dump (counters, gauges, histograms) captured at the
// end of the run. Each line is a self-contained JSON object, so reports can
// be streamed, concatenated, and grepped. tools/check_run_report.py
// validates the schema.
#ifndef DASC_SIM_RUN_REPORT_H_
#define DASC_SIM_RUN_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "sim/metrics.h"
#include "sim/metrics_timeseries.h"
#include "sim/task_trace.h"
#include "sim/watchdog.h"
#include "util/metrics.h"

namespace dasc::sim {

// Schema tag written in the header line; bump on incompatible changes.
// History:
//   /1 — header + stats + registry dump.
//   /2 — stats lines gain the empty-batch count and the allocation-audit
//        block (audited_batches, audit_violations, min/mean_batch_gap,
//        approx_ratio).
//   /3 — stats lines gain total_tasks and ledger_mismatches; runs with the
//        lifecycle ledger enabled additionally emit one "ledger" line per
//        algorithm (per-reason unserved totals from the closed taxonomy of
//        sim/ledger.h) followed by one "task" line per task (the per-task
//        lifecycle block: reason, arrival/expiry, open-batch range,
//        dep_depth, ...).
//   /4 — live-telemetry blocks: the registry dump gains "sketch" lines
//        (windowed quantile sketches); runs with a MetricsTimeSeries
//        attached emit one "timeseries" header line plus one "ts" line per
//        retained sample; runs with a StallWatchdog attached emit one
//        "anomalies" summary line plus one "anomaly" line per recorded
//        breach.
//   /5 — causal-trace blocks: "task" lines gain a "trace_id" (16-hex-char
//        string; deterministic per task id), "sketch" lines gain an
//        "exemplars" array (one sampled trace id per touched cumulative
//        bucket), and runs with a TaskTracer attached emit one
//        "trace_summary" line, one "trace" line per retained trace (head /
//        tail / flagged sampling), and one "trace_batch" line per batch
//        record (wall extent + per-phase self-time breakdown). Readers
//        (sim/run_report_reader.h, tools/check_run_report.py) accept /1
//        through /5; older stats default the newer fields to zero and carry
//        no newer blocks.
inline constexpr const char* kRunReportSchema = "dasc-run-report/5";

// Identity of the run being reported.
struct RunReportHeader {
  std::string kind;      // e.g. "simulate", "bench_sweep"
  std::string instance;  // workload path or generator description
};

// Optional /4-/5 telemetry blocks (all may be nullptr; pointers not owned).
struct RunReportExtras {
  const MetricsTimeSeries* timeseries = nullptr;
  const StallWatchdog* watchdog = nullptr;
  const TaskTracer* tracer = nullptr;
};

// Writes the full report:
//   {"type":"run","schema":"dasc-run-report/4","kind":...,"instance":...,
//    "runs":N}
//   {"type":"stats","algorithm":...,"score":...,...}        (one per entry)
//   {"type":"ledger","algorithm":...,"reasons":{...}}       (ledger runs)
//   {"type":"task","algorithm":...,"task":N,"reason":...}   (one per task)
//   {"type":"counter"|"gauge"|"histogram"|"sketch",...}     (registry dump)
//   {"type":"timeseries",...} + {"type":"ts",...}           (extras)
//   {"type":"anomalies",...} + {"type":"anomaly",...}       (extras)
void WriteRunReportJsonl(std::ostream& out, const RunReportHeader& header,
                         const std::vector<RunStats>& stats,
                         const util::MetricsRegistry& registry,
                         const RunReportExtras& extras);
void WriteRunReportJsonl(std::ostream& out, const RunReportHeader& header,
                         const std::vector<RunStats>& stats,
                         const util::MetricsRegistry& registry);

// The watchdog's "anomalies" summary line plus one "anomaly" line per
// recorded breach. Written whenever a watchdog is attached (count may be 0).
void WriteAnomaliesJsonl(std::ostream& out, const StallWatchdog& watchdog);

// One "stats" line; exposed for tests and incremental writers.
void WriteRunStatsJsonl(std::ostream& out, const RunStats& stats);

// The ledger block for one RunStats: the per-reason "ledger" summary line
// plus one "task" line per entry. No-op when stats.ledger is empty.
void WriteLedgerJsonl(std::ostream& out, const RunStats& stats);

// One per-task "task" line; exposed for dasc_cli --explain streaming.
void WriteTaskEntryJsonl(std::ostream& out, const std::string& algorithm,
                         const TaskLedgerEntry& entry);

// The /5 causal-trace block: the "trace_summary" line, one "trace" line per
// retained trace, one "trace_batch" line per batch record.
void WriteTraceJsonl(std::ostream& out, const TaskTracer& tracer);

}  // namespace dasc::sim

#endif  // DASC_SIM_RUN_REPORT_H_
