// Structured JSONL run reports.
//
// A run report is a machine-readable record of one experiment invocation:
// one header line identifying the run, one "stats" line per RunStats, then
// the metrics-registry dump (counters, gauges, histograms) captured at the
// end of the run. Each line is a self-contained JSON object, so reports can
// be streamed, concatenated, and grepped. tools/check_run_report.py
// validates the schema.
#ifndef DASC_SIM_RUN_REPORT_H_
#define DASC_SIM_RUN_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "sim/metrics.h"
#include "util/metrics.h"

namespace dasc::sim {

// Schema tag written in the header line; bump on incompatible changes.
// History:
//   /1 — header + stats + registry dump.
//   /2 — stats lines gain the empty-batch count and the allocation-audit
//        block (audited_batches, audit_violations, min/mean_batch_gap,
//        approx_ratio). Readers (sim/run_report_reader.h,
//        tools/check_run_report.py) accept both; /1 stats default the new
//        fields to zero.
inline constexpr const char* kRunReportSchema = "dasc-run-report/2";

// Identity of the run being reported.
struct RunReportHeader {
  std::string kind;      // e.g. "simulate", "bench_sweep"
  std::string instance;  // workload path or generator description
};

// Writes the full report:
//   {"type":"run","schema":"dasc-run-report/2","kind":...,"instance":...,
//    "runs":N}
//   {"type":"stats","algorithm":...,"score":...,...}        (one per entry)
//   {"type":"counter"|"gauge"|"histogram",...}              (registry dump)
void WriteRunReportJsonl(std::ostream& out, const RunReportHeader& header,
                         const std::vector<RunStats>& stats,
                         const util::MetricsRegistry& registry);

// One "stats" line; exposed for tests and incremental writers.
void WriteRunStatsJsonl(std::ostream& out, const RunStats& stats);

}  // namespace dasc::sim

#endif  // DASC_SIM_RUN_REPORT_H_
