// Batch-based dynamic spatial-crowdsourcing platform simulator.
//
// Replays an Instance's worker/task arrivals over time, invoking an
// Allocator every `batch_interval` (Section II-D: "platforms assign workers
// to tasks batch-by-batch for every constant time interval"), committing the
// valid pairs, moving workers, and releasing them when they finish.
#ifndef DASC_SIM_SIMULATOR_H_
#define DASC_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "core/allocator.h"
#include "core/instance.h"
#include "sim/audit.h"
#include "sim/ledger.h"
#include "sim/trace.h"

namespace dasc::sim {

class MetricsTimeSeries;
class StallWatchdog;
class TaskTracer;

struct SimulatorOptions {
  // When are batches run? kFixedInterval fires every `batch_interval` (the
  // paper's model); kEventDriven fires exactly at arrival and completion
  // instants (plus camped-task expiries), the latency-optimal schedule a
  // reactive platform would use.
  enum class BatchTrigger { kFixedInterval, kEventDriven };
  BatchTrigger batch_trigger = BatchTrigger::kFixedInterval;
  double batch_interval = 5.0;
  core::FeasibilityParams params;

  // When does an assigned task start satisfying its dependents' dependency
  // constraints? The paper's Definition 3 uses assignment indicators
  // (kAssigned); kCompleted is the stricter physical-completion variant.
  enum class DependencyMode { kAssigned, kCompleted };
  DependencyMode dependency_mode = DependencyMode::kAssigned;

  // d_w as a per-trip reach limit (default; each batch re-evaluates reach
  // from the worker's current position) or as a cumulative travel budget.
  enum class BudgetMode { kPerTrip, kCumulative };
  BudgetMode budget_mode = BudgetMode::kPerTrip;

  // What happens to an assigned pair whose dependency constraint is unmet
  // (dependency-oblivious baselines produce them)? kWait reproduces the
  // paper's motivation ("some assigned workers need to wait until the
  // dependencies of their subtasks are satisfied"): the assignment is
  // binding — the worker travels to the task and camps there, the task is
  // locked, and the pair completes (scoring late) only once the dependencies
  // are satisfied, or dissolves when the task expires. kDrop pretends the
  // platform filtered the pair out for free.
  enum class InvalidPairHandling { kWait, kDrop };
  InvalidPairHandling invalid_pair_handling = InvalidPairHandling::kWait;

  // Time spent on site before the worker becomes available again.
  double service_time = 0.0;

  // Re-audits every committed batch with ValidateAssignment (slow; tests).
  bool paranoid_checks = false;

  // Runs the independent allocation auditor (sim/audit.h) on every committed
  // batch: re-validates the four DA-SC constraints with checker code disjoint
  // from the allocator path, and measures the per-batch optimality gap
  // against a dependency-relaxed Hopcroft-Karp upper bound. Results land in
  // SimulationResult::audit and the audit_* metrics.
  bool audit = false;
  AuditOptions audit_options;

  // Keeps the per-task lifecycle ledger (sim/ledger.h) and copies it into
  // SimulationResult::ledger_entries / unserved_by_reason: every unserved
  // task gets exactly one reason from the closed failure taxonomy. The
  // ledger also runs implicitly whenever `trace` is set (it emits the
  // kArrival / kExpired events); this flag additionally exports the entries.
  // When `audit` is also set, the auditor shadow-derives every stage and
  // cross-checks the recorded reasons (AuditSummary::ledger_mismatches).
  bool ledger = false;

  // Optional event sink (not owned); records dispatches, camping,
  // completions and batch boundaries when set.
  Trace* trace = nullptr;

  // Live-telemetry hooks (sim/metrics_timeseries.h, sim/watchdog.h; not
  // owned). At every batch boundary the simulator advances the registry's
  // sketch windows, records one delta snapshot into `timeseries`, and
  // heartbeats `watchdog` — so "window" means "last N batches" and a
  // heartbeat that stops aging means the batch loop is stuck.
  MetricsTimeSeries* timeseries = nullptr;
  StallWatchdog* watchdog = nullptr;

  // Causal task tracer (sim/task_trace.h; not owned). Every task starts a
  // pending trace at its arrival instant (model time doubles as the wall
  // stamp in replay mode), batches record admission/camp/decision events,
  // and retained traces land in the run report's trace blocks.
  TaskTracer* tracer = nullptr;

  // Candidate construction strategy (DESIGN.md §17). kScratch rebuilds the
  // worker→task candidate sets from scratch every batch (the historical
  // path); kIncremental maintains them as a stateful
  // core::IncrementalCandidateView diffed batch-to-batch — bit-identical
  // published candidates, O(delta) probe work.
  enum class CandidateMode { kScratch, kIncremental };
  CandidateMode candidates = CandidateMode::kScratch;

  // Differential conformance: with kIncremental, compare the published view
  // against a disjoint from-scratch rebuild after every non-empty batch
  // (BatchAuditor::AuditCandidates). Results land in
  // SimulationResult::audit.candidate_checks / candidate_mismatches. Costs
  // one scratch candidate build per batch; meant for tests, the stress
  // oracle, and CI gates, not production runs.
  bool verify_candidates = false;

  // Fault injection for the conformance harness: silently skip one
  // retraction inside the incremental view, leaving one stale candidate row
  // for verify_candidates / the equivalence oracle to catch. No effect with
  // kScratch.
  bool inject_stale_candidate = false;
};

struct SimulationResult {
  // Σ_b |ValidPairs(M_b)| — the paper's assignment score.
  int score = 0;
  int completed_tasks = 0;
  int batches = 0;
  int nonempty_batches = 0;
  // Dependency-violating dispatches (kWait mode): worker-batches wasted.
  int wasted_dispatches = 0;
  // Mean time a task waited on the platform before being (validly)
  // assigned; the latency face of the batch-trigger trade-off.
  double mean_assignment_latency = 0.0;
  // Wall time spent inside Allocator::Allocate (the paper's running time).
  double allocator_seconds = 0.0;
  double last_completion_time = 0.0;
  std::vector<int> per_batch_scores;
  // Per-invocation allocator wall times (ms), one entry per batch in which
  // the allocator produced at least one pair. Batches where either market
  // side was empty, or where the allocator ran but returned nothing, are
  // counted in `empty_batches` instead of polluting the timing distribution
  // with ~0 ms samples.
  std::vector<double> per_batch_allocator_ms;
  int empty_batches = 0;
  // Populated when SimulatorOptions::audit is set; the candidate_* fields
  // are also populated by SimulatorOptions::verify_candidates alone.
  AuditSummary audit;
  // Populated when SimulatorOptions::ledger is set: one entry per task, and
  // per-reason totals indexed by UnservedReason (index 0 = served, equal to
  // completed_tasks; the rest sum to the unserved count).
  std::vector<TaskLedgerEntry> ledger_entries;
  std::vector<int64_t> unserved_by_reason;
};

class Simulator {
 public:
  Simulator(const core::Instance& instance, SimulatorOptions options);

  // Runs the full timeline with `allocator` deciding each batch.
  SimulationResult Run(core::Allocator& allocator) const;

 private:
  const core::Instance& instance_;
  SimulatorOptions options_;
};

}  // namespace dasc::sim

#endif  // DASC_SIM_SIMULATOR_H_
