#include "sim/task_trace.h"

#include <algorithm>

#include "util/flight_recorder.h"

namespace dasc::sim {

uint64_t TaskTraceId(core::TaskId task) {
  // SplitMix64 finalizer over task+1 (so task 0 hashes away from 0).
  uint64_t z = static_cast<uint64_t>(static_cast<int64_t>(task)) + 1;
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return z == 0 ? 1 : z;
}

TaskTracer::TaskTracer(const TaskTracerOptions& options) : options_(options) {
  if (options_.max_batches > 0) {
    batches_.resize(static_cast<size_t>(options_.max_batches));
  }
}

void TaskTracer::OnSubmit(core::TaskId task, double wall_s) {
  std::lock_guard<std::mutex> lock(mu_);
  TaskTraceRecord& rec = pending_[task];
  rec.task = task;
  rec.trace_id = TaskTraceId(task);
  rec.submit_wall_s = wall_s;
  if (options_.head_sample_every > 0 &&
      stats_.traces_started % options_.head_sample_every == 0) {
    rec.head_sampled = true;
  }
  ++stats_.traces_started;
}

void TaskTracer::OnBatchBegin(int64_t seq, double wall_s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_batches <= 0) return;
  TraceBatchRecord& rec =
      batches_[static_cast<size_t>(seq % options_.max_batches)];
  if (rec.seq >= 0 && rec.seq != seq) ++stats_.dropped_batches;
  rec = TraceBatchRecord{};
  rec.seq = seq;
  rec.begin_wall_s = wall_s;
  rec.flagged = flagged_.count(seq) > 0;
}

void TaskTracer::OnAdmit(core::TaskId task, int64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(task);
  if (it == pending_.end()) return;
  TaskTraceRecord& rec = it->second;
  if (rec.first_admit_batch < 0) rec.first_admit_batch = seq;
  rec.last_admit_batch = seq;
  ++rec.admitted_batches;
}

void TaskTracer::OnCamp(core::TaskId task, int64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(task);
  if (it == pending_.end()) return;
  if (it->second.camp_batch < 0) it->second.camp_batch = seq;
}

bool TaskTracer::BatchRangeFlaggedLocked(int64_t first, int64_t last) const {
  if (flagged_.empty() || last < first) return false;
  auto it = flagged_.lower_bound(first);
  return it != flagged_.end() && *it <= last;
}

uint64_t TaskTracer::OnDecision(core::TaskId task, int64_t seq, double wall_s,
                                bool served) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(task);
  if (it == pending_.end()) return 0;
  TaskTraceRecord rec = it->second;
  pending_.erase(it);
  rec.decide_batch = seq;
  rec.decide_wall_s = wall_s;
  rec.served = served;
  rec.decided = true;
  ++stats_.traces_decided;

  // Tail window bookkeeping runs for every decision (retained or not): the
  // window's top-K is a property of the population.
  bool tail_hit = false;
  if (options_.tail_k > 0 && options_.window_batches > 0) {
    const int64_t window = seq / options_.window_batches;
    if (window != window_index_) {
      window_index_ = window;
      window_top_.clear();
    }
    const double e2e = rec.e2e_ms();
    if (static_cast<int>(window_top_.size()) < options_.tail_k) {
      tail_hit = true;
      window_top_.insert(
          std::lower_bound(window_top_.begin(), window_top_.end(), e2e), e2e);
    } else if (e2e > window_top_.front()) {
      tail_hit = true;
      window_top_.erase(window_top_.begin());
      window_top_.insert(
          std::lower_bound(window_top_.begin(), window_top_.end(), e2e), e2e);
    }
  }

  const int64_t range_first =
      rec.first_admit_batch >= 0 ? rec.first_admit_batch : seq;
  const bool flagged_hit = BatchRangeFlaggedLocked(range_first, seq);

  const char* reason = nullptr;
  if (rec.head_sampled) {
    reason = "head";
  } else if (tail_hit) {
    reason = "tail";
  } else if (flagged_hit) {
    reason = "flagged";
  }
  if (reason == nullptr) return 0;
  if (options_.max_traces > 0 &&
      static_cast<int>(retained_.size()) >= options_.max_traces) {
    return 0;
  }
  rec.retained_reason = reason;
  ++stats_.traces_retained;
  if (rec.head_sampled) {
    ++stats_.head_retained;
  } else if (tail_hit) {
    ++stats_.tail_retained;
  } else {
    ++stats_.flagged_retained;
  }
  retained_by_id_[rec.trace_id] = retained_.size();
  retained_.push_back(std::move(rec));
  return retained_.back().trace_id;
}

void TaskTracer::OnBatchEnd(
    int64_t seq, double end_wall_s, int64_t decisions, int64_t open_tasks,
    int64_t idle_workers,
    const std::vector<std::pair<uint32_t, int64_t>>& phase_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.batches;
  batch_count_ = std::max(batch_count_, seq + 1);
  if (options_.max_batches <= 0) return;
  TraceBatchRecord& rec =
      batches_[static_cast<size_t>(seq % options_.max_batches)];
  if (rec.seq != seq) return;  // already overwritten (shouldn't happen)
  rec.end_wall_s = end_wall_s;
  rec.decisions = decisions;
  rec.open_tasks = open_tasks;
  rec.idle_workers = idle_workers;
  if (flagged_.count(seq) > 0) rec.flagged = true;
  rec.phases.reserve(phase_ns.size());
  for (const auto& [label, ns] : phase_ns) {
    TraceBatchPhase phase;
    phase.label = util::FlightRecorder::Global().LabelName(label);
    phase.ms = static_cast<double>(ns) * 1e-6;
    if (!phase.label.empty() && phase.ms > 0.0) {
      rec.phases.push_back(std::move(phase));
    }
  }
  std::sort(rec.phases.begin(), rec.phases.end(),
            [](const TraceBatchPhase& x, const TraceBatchPhase& y) {
              return x.label < y.label;
            });
}

void TaskTracer::FlagBatch(int64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int>(flagged_.size()) >= options_.max_flagged &&
      flagged_.count(seq) == 0) {
    return;
  }
  if (flagged_.insert(seq).second) ++stats_.flagged_batches;
  if (options_.max_batches > 0 && !batches_.empty()) {
    TraceBatchRecord& rec =
        batches_[static_cast<size_t>(seq % options_.max_batches)];
    if (rec.seq == seq) rec.flagged = true;
  }
}

std::vector<TaskTraceRecord> TaskTracer::RetainedTraces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_;
}

std::vector<TraceBatchRecord> TaskTracer::BatchRecords() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceBatchRecord> out;
  out.reserve(batches_.size());
  for (const TraceBatchRecord& rec : batches_) {
    if (rec.seq >= 0) out.push_back(rec);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceBatchRecord& x, const TraceBatchRecord& y) {
              return x.seq < y.seq;
            });
  return out;
}

TaskTracerStats TaskTracer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

bool TaskTracer::Lookup(uint64_t trace_id, TaskTraceRecord* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = retained_by_id_.find(trace_id);
  if (it == retained_by_id_.end()) return false;
  if (out != nullptr) *out = retained_[it->second];
  return true;
}

}  // namespace dasc::sim
