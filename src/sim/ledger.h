// Per-task lifecycle ledger: allocation decision provenance for the
// simulator (DESIGN.md §11).
//
// The trace stream records positive events (dispatch, camp, completion); the
// ledger answers the complementary question the paper's evaluation hinges on
// — *why* did every other task go unserved? Each task accumulates one entry
// across the run (arrival, batches open, candidate batches, dependency-chain
// depth) and every unserved task ends with exactly one reason from a closed
// taxonomy:
//
//   never_open        never appeared in any batch (arrived and expired
//                     between batch instants, or outside the timeline)
//   worker_exhausted  open only in batches with no idle worker at all
//   no_skilled_worker every idle worker failed the skill constraint
//   travel_deadline   best stage reached: a worker-window mismatch (the
//                     worker departs before service could begin)
//   out_of_range      best stage reached: travel exceeds the distance budget
//   arrival_deadline  best stage reached: the worker would arrive after the
//                     task expires
//   dependency_unmet  a feasible worker existed, but the task's dependency
//                     closure was never satisfied (includes camped dispatches
//                     that expired waiting — camp_expired marks those)
//   lost_in_matching  fully feasible and dependency-credible in some batch;
//                     the allocator simply chose other pairs
//
// Attribution rule: reasons are ordered by progress toward service (the enum
// order below), a task's per-batch stage is computed from the batch context
// (ClassifyBatchTaskFailure for candidate-less tasks, the dependency-credit
// check otherwise), and the final reason is the maximum stage over all
// batches the task was open in — "how close did this task ever get?". The
// audit layer (sim/audit.h) re-derives every stage with its own disjoint
// checker code and cross-checks the recorded reasons at end of run.
#ifndef DASC_SIM_LEDGER_H_
#define DASC_SIM_LEDGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/assignment.h"
#include "core/batch.h"
#include "sim/trace.h"

namespace dasc::sim {

// Closed unserved-task taxonomy; the enum order is the attribution
// precedence (later = the task got further). kServed is the sentinel for
// completed tasks so one counts array covers every task.
enum class UnservedReason : int {
  kServed = 0,
  kNeverOpen,
  kWorkerExhausted,
  kNoSkilledWorker,
  kTravelDeadline,
  kOutOfRange,
  kArrivalDeadline,
  kDependencyUnmet,
  kLostInMatching,
};
inline constexpr int kNumUnservedReasons = 9;  // including kServed

// Stable lowercase name ("dependency_unmet", ...). Inverse returns false for
// names outside the closed taxonomy.
const char* UnservedReasonName(UnservedReason reason);
bool UnservedReasonFromName(const std::string& name, UnservedReason* out);

// Folds a pair-level ServeFailure into the task-level taxonomy. Monotone in
// the ServeFailure order, so max-over-workers commutes with the mapping.
UnservedReason UnservedReasonFromServeFailure(core::ServeFailure failure);

// One task's lifecycle across a simulation run.
struct TaskLedgerEntry {
  core::TaskId task = core::kInvalidId;
  double arrival = 0.0;  // the task's start_time
  double expiry = 0.0;
  int dep_depth = 0;  // longest dependency chain below the task (0 = root)
  int batches_open = 0;       // batches the task appeared in as open
  int candidate_batches = 0;  // ... of which some idle worker could serve it
  int first_open_batch = -1;  // -1 = never open
  int last_open_batch = -1;
  int assigned_batch = -1;  // -1 = never (validly) assigned
  bool completed = false;
  bool camp_expired = false;  // expired under a camped worker (kWait mode)
  double completion_time = 0.0;
  UnservedReason reason = UnservedReason::kNeverOpen;  // kServed if completed
};

// Accumulates TaskLedgerEntry state batch by batch. The simulator drives it:
// ObserveBatch on every batch (including empty-market ones — the ledger must
// see worker droughts), Record* as pairs commit/camp/resolve, Finalize after
// the last batch. When `trace` is non-null the ledger emits the kArrival /
// kExpired trace events (reason code in TraceEvent::reason).
class LifecycleLedger {
 public:
  explicit LifecycleLedger(const core::Instance& instance);

  // Classifies this batch: sweeps expiries since the last batch, records
  // arrivals, and merges a failure stage for every open task not assigned in
  // `valid`. Call after the allocator ran (empty `valid` for empty batches).
  void ObserveBatch(const core::BatchProblem& problem,
                    const core::Assignment& valid, int batch_seq,
                    Trace* trace);

  // A valid (scoring) assignment of `task` committed this batch.
  void RecordAssigned(core::TaskId task, int batch_seq, double completion_time);

  // A binding dependency-blocked dispatch camped on `task` (kWait mode).
  void RecordCamped(core::TaskId task, int batch_seq);

  // The camped task expired un-unblocked; forces reason dependency_unmet.
  void RecordCampExpired(core::TaskId task, int batch_seq, Trace* trace);

  // Expires every remaining unserved task (tasks outliving the last batch
  // instant, still-pending camps) and freezes the per-reason counts.
  void Finalize(int final_batch_seq, Trace* trace);

  const std::vector<TaskLedgerEntry>& entries() const { return entries_; }

  // Per-reason totals, indexed by UnservedReason; counts_[kServed] equals
  // the completed-task count and the rest sum to the unserved count. Valid
  // after Finalize.
  const std::vector<int64_t>& reason_counts() const { return counts_; }

 private:
  void MarkExpired(core::TaskId task, int batch_seq, Trace* trace);

  const core::Instance& instance_;
  std::vector<TaskLedgerEntry> entries_;
  std::vector<uint8_t> camped_;
  std::vector<uint8_t> expired_;
  std::vector<uint8_t> assigned_in_batch_;  // per-batch scratch
  std::vector<int64_t> counts_;
  bool finalized_ = false;
};

// Longest dependency chain below each task in `instance` (0 for tasks with
// no dependencies). Exposed for the ledger and dasc_report explain tests.
std::vector<int> DependencyDepths(const core::Instance& instance);

}  // namespace dasc::sim

#endif  // DASC_SIM_LEDGER_H_
