#include "sim/simulator.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <memory>
#include <queue>

#include "core/candidate_view.h"
#include "sim/metrics_timeseries.h"
#include "sim/task_trace.h"
#include "sim/watchdog.h"
#include "util/flight_recorder.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/tracing.h"

namespace dasc::sim {

namespace {

// Dynamic per-worker runtime state.
struct WorkerRuntime {
  geo::Point location;
  double budget = 0.0;  // remaining distance (kCumulative mode)
  double busy_until = -std::numeric_limits<double>::infinity();
  bool camped = false;  // committed to a dependency-blocked task (kWait)
};

// A binding dispatch to a dependency-blocked task (kWait mode).
struct PendingDispatch {
  core::WorkerId worker = core::kInvalidId;
  core::TaskId task = core::kInvalidId;
  double arrival = 0.0;  // when the worker reaches the task site
};

}  // namespace

Simulator::Simulator(const core::Instance& instance, SimulatorOptions options)
    : instance_(instance), options_(options) {
  DASC_CHECK_GT(options_.batch_interval, 0.0);
  DASC_CHECK_GE(options_.service_time, 0.0);
}

SimulationResult Simulator::Run(core::Allocator& allocator) const {
  SimulationResult result;
  const int n = instance_.num_workers();
  const int m = instance_.num_tasks();
  if (n == 0 || m == 0) return result;
  double latency_sum = 0.0;

  std::vector<WorkerRuntime> runtime(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const core::Worker& w = instance_.worker(i);
    runtime[static_cast<size_t>(i)].location = w.location;
    runtime[static_cast<size_t>(i)].budget = w.max_distance;
  }

  std::vector<uint8_t> task_assigned(static_cast<size_t>(m), 0);
  std::vector<uint8_t> task_locked(static_cast<size_t>(m), 0);
  std::vector<uint8_t> task_expired_traced(static_cast<size_t>(m), 0);
  // Completion time of each assigned task (+inf when unassigned).
  std::vector<double> completion(
      static_cast<size_t>(m), std::numeric_limits<double>::infinity());
  std::vector<PendingDispatch> pending;

  // The timeline: from the earliest arrival to the latest moment anything
  // can still be started.
  double t_begin = std::numeric_limits<double>::infinity();
  double t_end = -std::numeric_limits<double>::infinity();
  for (const core::Worker& w : instance_.workers()) {
    t_begin = std::min(t_begin, w.start_time);
    t_end = std::max(t_end, w.Deadline());
  }
  for (const core::Task& t : instance_.tasks()) {
    t_begin = std::min(t_begin, t.start_time);
    t_end = std::max(t_end, t.Expiry());
  }

  const bool completed_mode =
      options_.dependency_mode == SimulatorOptions::DependencyMode::kCompleted;
  const bool event_driven =
      options_.batch_trigger == SimulatorOptions::BatchTrigger::kEventDriven;

  // Event-driven agenda: batch instants seeded with every arrival; commits
  // and camps push completion / expiry instants as they happen.
  std::priority_queue<double, std::vector<double>, std::greater<>> agenda;
  if (event_driven) {
    for (const core::Worker& w : instance_.workers()) {
      agenda.push(w.start_time);
    }
    for (const core::Task& t : instance_.tasks()) {
      agenda.push(t.start_time);
    }
  }

  BatchAuditor auditor(options_.audit_options);

  // Incremental candidate maintenance (DESIGN.md §17): the view diffs each
  // batch problem against the previous one and publishes bit-identical
  // candidate caches with O(delta) probe work. Empty-market batches skip the
  // update — the diff simply spans more than one batch interval then.
  std::unique_ptr<core::IncrementalCandidateView> candidate_view;
  if (options_.candidates == SimulatorOptions::CandidateMode::kIncremental) {
    candidate_view = std::make_unique<core::IncrementalCandidateView>(instance_);
    if (options_.inject_stale_candidate) {
      candidate_view->InjectStaleCandidate();
    }
  }

  TaskTracer* const tracer = options_.tracer;
  if (tracer != nullptr) {
    // Replay mode knows every arrival up front; model time is the wall
    // stamp, so trace latencies line up with ledger/score semantics.
    for (int t = 0; t < m; ++t) {
      tracer->OnSubmit(t, instance_.task(t).start_time);
    }
  }

  // The ledger runs whenever its entries are wanted (options_.ledger) or a
  // trace sink needs the kArrival / kExpired events it emits.
  std::unique_ptr<LifecycleLedger> ledger;
  if (options_.ledger || options_.trace != nullptr) {
    ledger = std::make_unique<LifecycleLedger>(instance_);
  }

  double now = t_begin;
  // Runs once per batch boundary (before the clock advances): rotates the
  // sketch windows so windowed quantiles mean "last N batches", feeds the
  // time series one delta snapshot, and heartbeats the watchdog.
  auto batch_boundary = [&](int batch_seq) {
    if (util::MetricsEnabled()) util::GlobalMetrics().AdvanceSketchWindows();
    if (options_.timeseries != nullptr) {
      options_.timeseries->RecordBatch(batch_seq, now, util::GlobalMetrics());
    }
    if (options_.watchdog != nullptr) options_.watchdog->Heartbeat(batch_seq);
  };
  // Advances the clock to the next batch instant; false = simulation over.
  auto advance = [&]() {
    if (event_driven) {
      while (!agenda.empty() && agenda.top() <= now + 1e-9) agenda.pop();
      if (agenda.empty()) return false;
      const double next = agenda.top();
      agenda.pop();
      if (next > t_end + 1e-9) return false;
      now = next;
    } else {
      now += options_.batch_interval;
      if (now > t_end + 1e-9) return false;
    }
    return true;
  };

  // Shared per-batch epilogue for the tracer: the batch record takes this
  // thread's per-phase self-time table (flight spans inside the allocator)
  // plus the batch's market shape.
  int batch_decisions = 0;
  auto tracer_batch_end = [&](int batch_seq, const core::BatchProblem& problem) {
    util::FlightRecorder::Global().Record(util::FlightEventKind::kBatchEnd,
                                          /*label=*/0, batch_seq,
                                          batch_decisions);
    if (tracer != nullptr) {
      tracer->OnBatchEnd(batch_seq, now, batch_decisions,
                         static_cast<int64_t>(problem.open_tasks.size()),
                         static_cast<int64_t>(problem.workers.size()),
                         util::TakeThreadPhaseNanos());
    }
  };

  while (true) {
    const int batch_seq = result.batches;
    ++result.batches;
    DASC_METRIC_COUNTER_INC("sim_batches_total");
    DASC_TRACE_SPAN_N("batch", batch_seq);
    util::FlightRecorder::Global().Record(util::FlightEventKind::kBatchBegin,
                                          /*label=*/0, batch_seq);
    if (tracer != nullptr) {
      util::TakeThreadPhaseNanos();  // start this batch's attribution at zero
      tracer->OnBatchBegin(batch_seq, now);
    }
    batch_decisions = 0;
    int batch_score = 0;

    // Dependency credit available at this batch.
    std::vector<uint8_t> credited(static_cast<size_t>(m), 0);
    for (int t = 0; t < m; ++t) {
      if (!task_assigned[static_cast<size_t>(t)]) continue;
      if (!completed_mode || completion[static_cast<size_t>(t)] <= now) {
        credited[static_cast<size_t>(t)] = 1;
      }
    }

    // Resolve binding dispatches to blocked tasks (kWait): conduct the task
    // if its dependencies are now satisfied and it has not expired; dissolve
    // the pair when the task expires un-unblocked.
    if (!pending.empty()) {
      std::vector<PendingDispatch> still_pending;
      for (const PendingDispatch& pd : pending) {
        const core::Task& task = instance_.task(pd.task);
        WorkerRuntime& rt = runtime[static_cast<size_t>(pd.worker)];
        bool deps_met = true;
        for (core::TaskId f : instance_.DepClosure(pd.task)) {
          if (!credited[static_cast<size_t>(f)]) {
            deps_met = false;
            break;
          }
        }
        if (deps_met && now >= pd.arrival && now <= task.Expiry()) {
          // Service finally starts; the late pair scores now.
          const double done = now + options_.service_time;
          task_assigned[static_cast<size_t>(pd.task)] = 1;
          task_locked[static_cast<size_t>(pd.task)] = 0;
          completion[static_cast<size_t>(pd.task)] = done;
          rt.busy_until = done;
          rt.camped = false;
          ++batch_score;
          ++result.completed_tasks;
          latency_sum += now - task.start_time;
          result.last_completion_time =
              std::max(result.last_completion_time, done);
          if (event_driven) agenda.push(done);
          DASC_METRIC_COUNTER_INC("sim_camps_resolved_total");
          DASC_METRIC_COUNTER_INC("sim_completions_total");
          if (options_.trace != nullptr) {
            options_.trace->Record({now, TraceEventKind::kCampResolved,
                                    pd.worker, pd.task, done, batch_seq});
          }
          if (ledger != nullptr) {
            ledger->RecordAssigned(pd.task, batch_seq, done);
          }
          ++batch_decisions;
          if (tracer != nullptr) {
            tracer->OnDecision(pd.task, batch_seq, now, /*served=*/true);
          }
        } else if (now > task.Expiry()) {
          // The task expired under the camped worker; both are wasted.
          task_locked[static_cast<size_t>(pd.task)] = 0;
          rt.camped = false;
          rt.busy_until = now;
          DASC_METRIC_COUNTER_INC("sim_camps_expired_total");
          if (options_.trace != nullptr) {
            options_.trace->Record({now, TraceEventKind::kCampExpired,
                                    pd.worker, pd.task, 0.0, batch_seq});
          }
          if (ledger != nullptr) {
            ledger->RecordCampExpired(pd.task, batch_seq, options_.trace);
          }
          ++batch_decisions;
          if (tracer != nullptr) {
            tracer->OnDecision(pd.task, batch_seq, now, /*served=*/false);
          }
        } else {
          still_pending.push_back(pd);
        }
      }
      pending.swap(still_pending);
    }

    core::BatchProblem problem;
    problem.instance = &instance_;
    problem.now = now;
    problem.params = options_.params;
    problem.in_batch_dependency_credit = !completed_mode;

    for (int i = 0; i < n; ++i) {
      const core::Worker& w = instance_.worker(i);
      const WorkerRuntime& rt = runtime[static_cast<size_t>(i)];
      if (w.start_time > now || w.Deadline() < now) continue;  // not present
      if (rt.camped || rt.busy_until > now) continue;          // committed
      core::WorkerState state;
      state.id = i;
      state.location = rt.location;
      state.remaining_distance =
          options_.budget_mode == SimulatorOptions::BudgetMode::kCumulative
              ? rt.budget
              : w.max_distance;
      problem.workers.push_back(state);
    }

    problem.assigned_before = credited;
    for (int t = 0; t < m; ++t) {
      const core::Task& task = instance_.task(t);
      if (task_assigned[static_cast<size_t>(t)] ||
          task_locked[static_cast<size_t>(t)]) {
        continue;
      }
      if (task.start_time > now || task.Expiry() < now) {
        // Open-window expiry is the simulator's unserved terminal (recorded
        // on the first batch that sees the task dead).
        if (tracer != nullptr && task.Expiry() < now &&
            !task_expired_traced[static_cast<size_t>(t)]) {
          task_expired_traced[static_cast<size_t>(t)] = 1;
          tracer->OnDecision(t, batch_seq, now, /*served=*/false);
          ++batch_decisions;
        }
        continue;
      }
      problem.open_tasks.push_back(t);
      if (tracer != nullptr) tracer->OnAdmit(t, batch_seq);
    }

    // Queue depths an ops dashboard would alert on: how many idle workers
    // and open tasks this batch saw.
    DASC_METRIC_GAUGE_SET("sim_queue_depth_workers",
                          static_cast<double>(problem.workers.size()));
    DASC_METRIC_GAUGE_SET("sim_queue_depth_tasks",
                          static_cast<double>(problem.open_tasks.size()));
    if (options_.trace != nullptr) {
      options_.trace->Record(
          {now, TraceEventKind::kBatch,
           static_cast<core::WorkerId>(problem.workers.size()),
           static_cast<core::TaskId>(problem.open_tasks.size()), 0.0,
           batch_seq});
    }
    if (problem.workers.empty() || problem.open_tasks.empty()) {
      // The ledger still observes empty-market batches: worker droughts are
      // exactly where worker_exhausted attribution comes from.
      if (ledger != nullptr) {
        const core::Assignment empty;
        ledger->ObserveBatch(problem, empty, batch_seq, options_.trace);
        if (options_.audit) auditor.ObserveLedgerBatch(problem, empty);
      }
      ++result.empty_batches;
      DASC_METRIC_COUNTER_INC("sim_empty_batches_total");
      if (batch_score > 0) {
        result.per_batch_scores.push_back(batch_score);
        result.score += batch_score;
        DASC_METRIC_COUNTER_ADD("sim_score_total", batch_score);
      }
      tracer_batch_end(batch_seq, problem);
      batch_boundary(batch_seq);
      if (!advance()) break;
      continue;
    }
    ++result.nonempty_batches;
    DASC_METRIC_COUNTER_INC("sim_nonempty_batches_total");

    if (candidate_view != nullptr) {
      candidate_view->Update(problem);
      if (options_.verify_candidates) {
        auditor.AuditCandidates(problem, batch_seq);
      }
    }

    util::WallTimer timer;
    const core::Assignment raw = [&] {
      DASC_TRACE_SPAN("allocate");
      return allocator.Allocate(problem);
    }();
    const double batch_seconds = timer.ElapsedSeconds();
    result.allocator_seconds += batch_seconds;
    if (raw.empty()) {
      // The allocator saw a live market but produced nothing (typically all
      // candidates are dependency-blocked). Recording these as ~0 ms samples
      // would drag the timing percentiles toward zero, so they are tallied
      // separately; allocator_seconds still accumulates the (real) cost.
      ++result.empty_batches;
      DASC_METRIC_COUNTER_INC("sim_empty_batches_total");
    } else {
      result.per_batch_allocator_ms.push_back(batch_seconds * 1e3);
      DASC_METRIC_HISTOGRAM_OBSERVE("sim_batch_allocator_ms",
                                    batch_seconds * 1e3);
      // Windowed twin of the histogram above (distinct name: a summary and
      // a histogram cannot share _sum/_count sample names).
      DASC_METRIC_SKETCH_OBSERVE("sim_batch_allocator_ms_window",
                                 batch_seconds * 1e3);
    }

    const core::SplitAssignment split = core::SplitPairs(problem, raw);
    const core::Assignment& valid = split.valid;
    if (options_.paranoid_checks) {
      const util::Status audit = core::ValidateAssignment(problem, valid);
      DASC_CHECK(audit.ok()) << allocator.name() << ": " << audit.ToString();
    }
    if (options_.audit) {
      DASC_TRACE_SPAN("audit");
      auditor.AuditBatch(problem, valid, batch_seq);
    }
    if (ledger != nullptr) {
      ledger->ObserveBatch(problem, valid, batch_seq, options_.trace);
      if (options_.audit) auditor.ObserveLedgerBatch(problem, valid);
    }

    batch_score += valid.size();
    result.per_batch_scores.push_back(batch_score);
    result.score += batch_score;
    DASC_METRIC_COUNTER_ADD("sim_score_total", batch_score);
    DASC_METRIC_COUNTER_ADD("sim_dispatches_total",
                            static_cast<int64_t>(valid.size()));

    for (const auto& [wid, tid] : valid.pairs()) {
      WorkerRuntime& rt = runtime[static_cast<size_t>(wid)];
      const core::Worker& w = instance_.worker(wid);
      const core::Task& task = instance_.task(tid);
      const double dist =
          core::PairDistance(options_.params, rt.location, task.location);
      const double arrival = now + dist / w.velocity;
      const double done = arrival + options_.service_time;
      rt.location = task.location;
      rt.budget -= dist;
      rt.busy_until = done;
      task_assigned[static_cast<size_t>(tid)] = 1;
      completion[static_cast<size_t>(tid)] = done;
      ++result.completed_tasks;
      latency_sum += now - task.start_time;
      result.last_completion_time =
          std::max(result.last_completion_time, done);
      if (event_driven) agenda.push(done);
      DASC_METRIC_COUNTER_INC("sim_completions_total");
      if (options_.trace != nullptr) {
        options_.trace->Record(
            {now, TraceEventKind::kDispatch, wid, tid, dist, batch_seq});
        options_.trace->Record(
            {done, TraceEventKind::kCompletion, wid, tid, done, batch_seq});
      }
      if (ledger != nullptr) ledger->RecordAssigned(tid, batch_seq, done);
      ++batch_decisions;
      if (tracer != nullptr) {
        tracer->OnDecision(tid, batch_seq, now, /*served=*/true);
      }
    }

    if (options_.invalid_pair_handling ==
        SimulatorOptions::InvalidPairHandling::kWait) {
      // Dependency-violating pairs are binding: the worker travels to the
      // task and camps there until the dependencies are satisfied or the
      // task expires; the task is locked away from other workers meanwhile.
      for (const auto& [wid, tid] : split.invalid.pairs()) {
        WorkerRuntime& rt = runtime[static_cast<size_t>(wid)];
        const core::Worker& w = instance_.worker(wid);
        const core::Task& task = instance_.task(tid);
        const double dist =
            core::PairDistance(options_.params, rt.location, task.location);
        rt.location = task.location;
        rt.budget -= dist;
        rt.camped = true;
        task_locked[static_cast<size_t>(tid)] = 1;
        pending.push_back({wid, tid, now + dist / w.velocity});
        ++result.wasted_dispatches;
        DASC_METRIC_COUNTER_INC("sim_camp_dispatches_total");
        if (event_driven) {
          agenda.push(now + dist / w.velocity);  // camper reaches the site
          agenda.push(task.Expiry() + 1e-9);     // ... or the task dies
        }
        if (options_.trace != nullptr) {
          options_.trace->Record(
              {now, TraceEventKind::kCamp, wid, tid, dist, batch_seq});
        }
        if (ledger != nullptr) ledger->RecordCamped(tid, batch_seq);
        if (tracer != nullptr) tracer->OnCamp(tid, batch_seq);
      }
    }

    tracer_batch_end(batch_seq, problem);
    batch_boundary(batch_seq);
    if (!advance()) break;
  }
  if (result.completed_tasks > 0) {
    result.mean_assignment_latency = latency_sum / result.completed_tasks;
  }
  if (ledger != nullptr) {
    // Expires still-pending camps and every task outliving the last batch
    // instant, then freezes the per-reason counts.
    ledger->Finalize(result.batches - 1, options_.trace);
    if (options_.audit) auditor.CrossCheckLedger(ledger->entries());
    if (options_.ledger) {
      result.ledger_entries = ledger->entries();
      result.unserved_by_reason = ledger->reason_counts();
    }
  }
  result.audit = auditor.summary();
  return result;
}

}  // namespace dasc::sim
