#include "sim/platform.h"

#include <algorithm>
#include <limits>
#include <string>

#include "util/logging.h"

namespace dasc::sim {

Platform::Platform(int num_skills) : Platform(num_skills, Options()) {}

Platform::Platform(int num_skills, Options options)
    : num_skills_(num_skills),
      options_(options),
      instance_(util::Status::FailedPrecondition("no batch run yet")) {
  DASC_CHECK_GT(num_skills, 0);
}

util::Result<core::WorkerId> Platform::AddWorker(core::Worker worker) {
  if (worker.velocity <= 0.0) {
    return util::Status::InvalidArgument("worker velocity must be positive");
  }
  if (worker.wait_time < 0.0 || worker.max_distance < 0.0) {
    return util::Status::InvalidArgument(
        "worker wait_time and max_distance must be non-negative");
  }
  if (worker.skills.empty()) {
    return util::Status::InvalidArgument("worker needs at least one skill");
  }
  for (core::SkillId s : worker.skills) {
    if (s < 0 || s >= num_skills_) {
      return util::Status::OutOfRange("unknown skill " + std::to_string(s));
    }
  }
  const auto id = static_cast<core::WorkerId>(workers_.size());
  worker.id = id;
  runtime_.push_back(
      {worker.location, worker.max_distance,
       -std::numeric_limits<double>::infinity()});
  workers_.push_back(std::move(worker));
  dirty_ = true;
  return id;
}

util::Result<core::TaskId> Platform::AddTask(core::Task task) {
  if (task.wait_time < 0.0) {
    return util::Status::InvalidArgument("task wait_time must be non-negative");
  }
  if (task.required_skill < 0 || task.required_skill >= num_skills_) {
    return util::Status::OutOfRange(
        "unknown skill " + std::to_string(task.required_skill));
  }
  for (core::TaskId d : task.dependencies) {
    if (d < 0 || d >= static_cast<core::TaskId>(tasks_.size())) {
      return util::Status::InvalidArgument(
          "dependency " + std::to_string(d) +
          " is not a registered task (online tasks may only depend on "
          "earlier tasks)");
    }
  }
  const auto id = static_cast<core::TaskId>(tasks_.size());
  task.id = id;
  task_assigned_.push_back(0);
  completion_.push_back(std::numeric_limits<double>::infinity());
  tasks_.push_back(std::move(task));
  dirty_ = true;
  return id;
}

util::Status Platform::Refresh() {
  if (!dirty_) return util::Status::OK();
  instance_ = core::Instance::Create(workers_, tasks_, num_skills_);
  if (!instance_.ok()) return instance_.status();
  dirty_ = false;
  return util::Status::OK();
}

util::Result<core::Assignment> Platform::RunBatch(
    double now, core::Allocator& allocator) {
  if (any_batch_run_ && now < last_batch_time_) {
    return util::Status::FailedPrecondition(
        "batch times must be non-decreasing");
  }
  const util::Status refreshed = Refresh();
  if (!refreshed.ok()) return refreshed;
  last_batch_time_ = now;
  any_batch_run_ = true;
  const core::Instance& instance = *instance_;

  core::BatchProblem problem;
  problem.instance = &instance;
  problem.now = now;
  problem.params = options_.params;
  // Completion-based credit also forbids in-batch co-assignment: a dependent
  // cannot start while its dependency is still being served.
  problem.in_batch_dependency_credit =
      options_.in_batch_dependency_credit &&
      !options_.credit_requires_completion;
  for (size_t i = 0; i < workers_.size(); ++i) {
    const core::Worker& w = workers_[i];
    const WorkerRuntime& rt = runtime_[i];
    if (w.start_time > now || w.Deadline() < now) continue;
    if (rt.busy_until > now) continue;
    core::WorkerState state;
    state.id = w.id;
    state.location = rt.location;
    state.remaining_distance =
        options_.cumulative_budget ? rt.budget : w.max_distance;
    problem.workers.push_back(state);
  }
  problem.assigned_before.assign(tasks_.size(), 0);
  for (size_t t = 0; t < tasks_.size(); ++t) {
    if (!task_assigned_[t]) continue;
    if (!options_.credit_requires_completion || completion_[t] <= now) {
      problem.assigned_before[t] = 1;
    }
  }
  for (size_t t = 0; t < tasks_.size(); ++t) {
    const core::Task& task = tasks_[t];
    if (task_assigned_[t]) continue;
    if (task.start_time > now || task.Expiry() < now) continue;
    problem.open_tasks.push_back(task.id);
  }

  core::Assignment valid;
  if (!problem.workers.empty() && !problem.open_tasks.empty()) {
    valid = core::ValidPairs(problem, allocator.Allocate(problem));
  }
  for (const auto& [wid, tid] : valid.pairs()) {
    WorkerRuntime& rt = runtime_[static_cast<size_t>(wid)];
    const core::Worker& w = workers_[static_cast<size_t>(wid)];
    const core::Task& task = tasks_[static_cast<size_t>(tid)];
    const double dist =
        core::PairDistance(options_.params, rt.location, task.location);
    const double done = now + dist / w.velocity + options_.service_time;
    rt.location = task.location;
    rt.budget -= dist;
    rt.busy_until = done;
    task_assigned_[static_cast<size_t>(tid)] = 1;
    completion_[static_cast<size_t>(tid)] = done;
  }
  total_score_ += valid.size();
  return valid;
}

bool Platform::TaskAssigned(core::TaskId task) const {
  DASC_CHECK_GE(task, 0);
  DASC_CHECK_LT(task, num_tasks());
  return task_assigned_[static_cast<size_t>(task)] != 0;
}

double Platform::TaskCompletionTime(core::TaskId task) const {
  DASC_CHECK_GE(task, 0);
  DASC_CHECK_LT(task, num_tasks());
  return completion_[static_cast<size_t>(task)];
}

bool Platform::WorkerBusy(core::WorkerId worker, double now) const {
  DASC_CHECK_GE(worker, 0);
  DASC_CHECK_LT(worker, num_workers());
  return runtime_[static_cast<size_t>(worker)].busy_until > now;
}

}  // namespace dasc::sim
