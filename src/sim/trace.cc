#include "sim/trace.h"

#include <ostream>

#include "util/logging.h"

namespace dasc::sim {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kBatch:
      return "batch";
    case TraceEventKind::kDispatch:
      return "dispatch";
    case TraceEventKind::kCamp:
      return "camp";
    case TraceEventKind::kCampResolved:
      return "camp_resolved";
    case TraceEventKind::kCampExpired:
      return "camp_expired";
    case TraceEventKind::kCompletion:
      return "completion";
    case TraceEventKind::kArrival:
      return "arrival";
    case TraceEventKind::kExpired:
      return "expired";
  }
  DASC_CHECK(false) << "unknown TraceEventKind";
  return "?";
}

int Trace::Count(TraceEventKind kind) const {
  int count = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) ++count;
  }
  return count;
}

void Trace::WriteCsv(std::ostream& out) const {
  out << "time,kind,worker,task,detail\n";
  for (const TraceEvent& e : events_) {
    out << e.time << "," << TraceEventKindName(e.kind) << "," << e.worker
        << "," << e.task << "," << e.detail << "\n";
  }
}

void Trace::WriteJsonl(std::ostream& out) const {
  for (const TraceEvent& e : events_) {
    out << "{\"time\":" << e.time << ",\"kind\":\"" << TraceEventKindName(e.kind)
        << "\",\"worker\":" << e.worker << ",\"task\":" << e.task
        << ",\"detail\":" << e.detail << ",\"batch_seq\":" << e.batch_seq;
    // The trace layer stays ledger-agnostic: the reason travels as its enum
    // code; the run report carries the string names.
    if (e.reason >= 0) out << ",\"reason\":" << e.reason;
    out << "}\n";
  }
}

}  // namespace dasc::sim
