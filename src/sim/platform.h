// Online DA-SC platform.
//
// The embedding API a live service would use: workers and tasks stream in
// (AddWorker/AddTask), and the service calls RunBatch(now, allocator) on its
// batch timer. The offline Simulator replays a fixed Instance through the
// same semantics; Platform owns a growing workload and keeps worker runtime
// state (position, busy-until, travel budget) across batches.
#ifndef DASC_SIM_PLATFORM_H_
#define DASC_SIM_PLATFORM_H_

#include <vector>

#include "core/allocator.h"
#include "core/instance.h"

namespace dasc::sim {

class Platform {
 public:
  struct Options {
    core::FeasibilityParams params;
    // Paper Definition 3 semantics: in-batch co-assignment satisfies
    // dependencies. Disable for completion-based dependencies.
    bool in_batch_dependency_credit = true;
    // Dependency credit requires completion (not just assignment) when true.
    bool credit_requires_completion = false;
    // Time spent on site after arrival.
    double service_time = 0.0;
    // d_w as cumulative budget rather than per-trip reach.
    bool cumulative_budget = false;
  };

  explicit Platform(int num_skills);
  Platform(int num_skills, Options options);

  // Registers a worker; its id field is overwritten with the platform id.
  // Validation errors (bad velocity, unknown skills, ...) reject the worker.
  util::Result<core::WorkerId> AddWorker(core::Worker worker);

  // Registers a task; its id field is overwritten. Dependencies must
  // reference already-registered tasks (an online stream cannot depend on
  // the future, which also guarantees acyclicity).
  util::Result<core::TaskId> AddTask(core::Task task);

  // Runs one batch at time `now` (non-decreasing across calls) and commits
  // the valid pairs. Returns the committed assignment.
  util::Result<core::Assignment> RunBatch(double now,
                                          core::Allocator& allocator);

  // --- Introspection ---
  int num_workers() const { return static_cast<int>(workers_.size()); }
  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  // Σ_b |valid pairs| so far.
  int total_score() const { return total_score_; }
  bool TaskAssigned(core::TaskId task) const;
  // Completion time of an assigned task (+inf if unassigned).
  double TaskCompletionTime(core::TaskId task) const;
  // Whether the worker is currently travelling/serving at `now`.
  bool WorkerBusy(core::WorkerId worker, double now) const;

 private:
  // Rebuilds the validated Instance if inserts happened since the last batch.
  util::Status Refresh();

  int num_skills_;
  Options options_;
  std::vector<core::Worker> workers_;
  std::vector<core::Task> tasks_;
  bool dirty_ = true;
  util::Result<core::Instance> instance_;

  struct WorkerRuntime {
    geo::Point location;
    double budget = 0.0;
    double busy_until = 0.0;
  };
  std::vector<WorkerRuntime> runtime_;
  std::vector<uint8_t> task_assigned_;
  std::vector<double> completion_;
  double last_batch_time_ = 0.0;
  bool any_batch_run_ = false;
  int total_score_ = 0;
};

}  // namespace dasc::sim

#endif  // DASC_SIM_PLATFORM_H_
