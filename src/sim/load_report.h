// Structured JSONL load reports (schema dasc-load-report/1).
//
// A load report is the artifact of one open-loop load-generation run
// (tools/dasc_loadgen): offered vs achieved rate, coordinated-omission-free
// latency summaries per series, the service's own scraped sketch view and
// the reconciliation verdict between the two estimators, SLO evaluations
// with multi-window error-budget burn rates, the ingest-queue depth series,
// and any watchdog anomalies — each line a self-contained JSON object, as
// in sim/run_report.h. tools/check_load_report.py validates the schema;
// `dasc_report load` summarizes, diffs, and gates on it. DESIGN.md §15.
//
// Line types:
//   {"type":"load_run","schema":"dasc-load-report/1","instance":...,
//    "algorithm":...,"process":...,"seed":...,"build":{...}}
//   {"type":"rates","offered_per_min":...,"achieved_per_min":...,
//    "ratio":...,"sent":N,"duration_s":...,"time_scale":...}
//   {"type":"latency","series":"e2e_intended"|"e2e_submit"|"send_lag",
//    "count":N,"mean_ms":..,"p50_ms":..,"p95_ms":..,"p99_ms":..,
//    "p999_ms":..,"max_ms":..}
//   {"type":"service_stats","batches":..,"nonempty_batches":..,"served":..,
//    "expired":..,"unserved_rate":..,"allocator_seconds":..}
//   {"type":"service_sketch","name":...,"count":N,"p50_ms":..,"p95_ms":..,
//    "p99_ms":..,"scraped":bool}
//   {"type":"reconcile","loadgen_p95_ms":..,"service_p95_ms":..,
//    "rel_diff":..,"tolerance":..,"agree":bool}
//   {"type":"slo","name":...,"kind":...,"threshold_ms":..,"budget":..,
//    "long_bad":..,"short_bad":..,"long_burn":..,"short_burn":..,
//    "breached":bool}
//   {"type":"queue_depth","t_s":..,"depth":..}            (one per sample)
//   {"type":"anomalies","count":N} + {"type":"anomaly",...}
#ifndef DASC_SIM_LOAD_REPORT_H_
#define DASC_SIM_LOAD_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace dasc::sim {

inline constexpr const char* kLoadReportSchema = "dasc-load-report/1";

struct LoadReportHeader {
  std::string instance;   // generator description or workload path
  std::string algorithm;  // allocator under test
  std::string process;    // arrival process name
  uint64_t seed = 0;
  // Build provenance (util::GetBuildInfo()), echoed so report diffs can
  // tell "code changed" from "load changed".
  std::string version;
  std::string git_sha;
  std::string build_type;
};

struct LoadRates {
  double offered_per_min = 0.0;
  double achieved_per_min = 0.0;
  double ratio = 0.0;  // achieved / offered
  int64_t sent = 0;
  double duration_s = 0.0;
  double time_scale = 0.0;  // model units per wall second
};

struct LatencySeriesSummary {
  std::string series;  // "e2e_intended" | "e2e_submit" | "send_lag"
  int64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
};

struct LoadServiceStats {
  int64_t batches = 0;
  int64_t nonempty_batches = 0;
  int64_t served = 0;
  int64_t expired = 0;
  double unserved_rate = 0.0;
  double allocator_seconds = 0.0;
};

struct ServiceSketchSummary {
  std::string name;
  int64_t count = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  bool scraped = false;  // false = read in-process (no /metrics endpoint)
};

struct ReconcileResult {
  double loadgen_p95_ms = 0.0;
  double service_p95_ms = 0.0;
  double rel_diff = 0.0;  // |loadgen - service| / max(service, eps)
  double tolerance = 0.0;
  bool agree = false;
};

// One SLO over the run, in error-budget form: the fraction of bad events
// must stay below `budget`. kLatencyQuantile counts a task bad when its
// CO-corrected end-to-end latency exceeds threshold_ms (so budget = 0.01
// states "p99 of e2e < threshold"); kUnservedRate counts unserved tasks.
struct LoadSloDefinition {
  std::string name;
  enum class Kind { kLatencyQuantile, kUnservedRate };
  Kind kind = Kind::kLatencyQuantile;
  double threshold_ms = 250.0;  // kLatencyQuantile only
  double budget = 0.01;         // allowed bad-event fraction
  // Short-window fraction of the run (by decision order, most recent
  // portion) for the fast burn signal.
  double short_window = 0.25;
};

struct LoadSloResult {
  LoadSloDefinition def;
  double long_bad = 0.0;    // bad fraction over the whole run
  double short_bad = 0.0;   // bad fraction over the trailing window
  double long_burn = 0.0;   // long_bad / budget
  double short_burn = 0.0;  // short_bad / budget
  // Multi-window rule: breached iff both windows burn at >= 1x — the whole
  // run has spent its budget AND it is still burning now (a transient
  // early spike that recovered does not page).
  bool breached = false;
};

// One terminal decision as the load generator saw it, in decision order.
struct LoadSample {
  double e2e_intended_ms = 0.0;  // decide - intended send (CO-corrected)
  bool served = false;
};

// Evaluates `def` over `samples` (decision order; the short window is the
// trailing short_window fraction, at least one sample).
LoadSloResult EvaluateLoadSlo(const LoadSloDefinition& def,
                              const std::vector<LoadSample>& samples);

struct QueueDepthSample {
  double t_s = 0.0;
  double depth = 0.0;
};

struct LoadAnomaly {
  std::string kind;
  int64_t batch_seq = 0;
  double value = 0.0;
  double threshold = 0.0;
  double wall_ms = 0.0;
};

struct LoadReport {
  LoadReportHeader header;
  LoadRates rates;
  std::vector<LatencySeriesSummary> latency;
  LoadServiceStats service;
  ServiceSketchSummary sketch;
  ReconcileResult reconcile;
  std::vector<LoadSloResult> slos;
  std::vector<QueueDepthSample> queue_depth;
  std::vector<LoadAnomaly> anomalies;
};

void WriteLoadReportJsonl(std::ostream& out, const LoadReport& report);

// Parses a serialized report back (unknown line types are ignored so /1
// readers survive additive schema growth). Errors name the offending line.
util::Result<LoadReport> ReadLoadReportJsonl(std::istream& in);
util::Result<LoadReport> ReadLoadReportFile(const std::string& path);

}  // namespace dasc::sim

#endif  // DASC_SIM_LOAD_REPORT_H_
