// Simulation event traces.
//
// The simulator can record a structured event stream (dispatches, arrivals,
// completions, camping, expiries) for debugging, visualization, and the
// per-batch analyses in EXPERIMENTS.md. Traces export to CSV and JSONL.
#ifndef DASC_SIM_TRACE_H_
#define DASC_SIM_TRACE_H_

#include <ostream>
#include <string>
#include <vector>

#include "core/types.h"

namespace dasc::sim {

enum class TraceEventKind {
  kBatch,          // a batch boundary (worker = open tasks, task = idle workers)
  kDispatch,       // valid pair committed; detail = travel distance
  kCamp,           // dependency-blocked binding dispatch; detail = distance
  kCampResolved,   // camped pair finally conducted
  kCampExpired,    // camped task expired under its worker
  kCompletion,     // task completed; detail = completion time
  kArrival,        // task first open in a batch; detail = dep-closure size
  kExpired,        // task left the system unserved; detail/reason = taxonomy
};

// Returns a stable lowercase name ("dispatch", "camp", ...).
const char* TraceEventKindName(TraceEventKind kind);

struct TraceEvent {
  double time = 0.0;
  TraceEventKind kind = TraceEventKind::kBatch;
  core::WorkerId worker = core::kInvalidId;
  core::TaskId task = core::kInvalidId;
  double detail = 0.0;
  // Index of the batch that produced the event (0-based). Events are not
  // segmentable by scanning for kBatch markers alone: kCompletion events
  // carry their *future* completion time, so they sort out of batch order.
  int batch_seq = 0;
  // UnservedReason code for kExpired events (sim/ledger.h enum value);
  // -1 = not applicable. Kept last so existing aggregate initializers with
  // fewer fields stay valid.
  int reason = -1;
};

// Append-only event sink. Pass to Simulator via SimulatorOptions::trace.
class Trace {
 public:
  void Record(TraceEvent event) { events_.push_back(event); }

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  void Clear() { events_.clear(); }

  // Number of events of one kind.
  int Count(TraceEventKind kind) const;

  // CSV: time,kind,worker,task,detail. (batch_seq is intentionally omitted
  // to keep the historical column set byte-identical; use WriteJsonl for
  // per-batch analyses.)
  void WriteCsv(std::ostream& out) const;

  // One JSON object per event per line:
  //   {"time":...,"kind":"dispatch","worker":2,"task":3,"detail":4.5,
  //    "batch_seq":0}
  void WriteJsonl(std::ostream& out) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace dasc::sim

#endif  // DASC_SIM_TRACE_H_
