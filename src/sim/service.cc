#include "sim/service.h"

#include <algorithm>
#include <limits>
#include <thread>

#include "sim/metrics_timeseries.h"
#include "sim/task_trace.h"
#include "sim/watchdog.h"
#include "util/flight_recorder.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace dasc::sim {

namespace {
constexpr double kEps = 1e-9;
}  // namespace

Service::Service(const core::Instance& instance, core::Allocator& allocator,
                 ServiceOptions options)
    : instance_(instance), allocator_(allocator), options_(options) {
  DASC_CHECK_GT(options_.time_scale, 0.0);
  DASC_CHECK_GE(options_.service_time, 0.0);
  DASC_CHECK_GT(options_.min_batch_gap_ms, 0.0);
  DASC_CHECK_GE(options_.max_batch_gap_ms, options_.min_batch_gap_ms);
  const auto n = static_cast<size_t>(instance_.num_workers());
  const auto m = static_cast<size_t>(instance_.num_tasks());
  runtime_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    runtime_[i].location = instance_.worker(static_cast<int>(i)).location;
    runtime_[i].busy_until = -std::numeric_limits<double>::infinity();
  }
  task_live_.assign(m, 0);
  task_submitted_.assign(m, 0);
  task_assigned_.assign(m, 0);
  task_locked_.assign(m, 0);
  task_decided_.assign(m, 0);
  task_submit_wall_.assign(m, 0.0);
  credited_.assign(m, 0);
  if (options_.incremental_candidates) {
    candidate_view_ = std::make_unique<core::IncrementalCandidateView>(instance_);
  }
}

Service::~Service() { Shutdown(); }

void Service::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  epoch_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { Loop(); });
}

double Service::NowWallLocked() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

double Service::ElapsedWallSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_) return 0.0;
  return NowWallLocked();
}

util::Status Service::SubmitWorker(core::WorkerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || stop_) {
    return util::Status::FailedPrecondition("service is not running");
  }
  if (id < 0 || id >= instance_.num_workers()) {
    return util::Status::InvalidArgument("worker id out of range");
  }
  ingest_.push_back({/*is_task=*/false, id, NowWallLocked()});
  ++stats_.submitted_workers;
  cv_.notify_one();
  return util::Status::OK();
}

util::Status Service::SubmitTask(core::TaskId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || stop_) {
    return util::Status::FailedPrecondition("service is not running");
  }
  if (id < 0 || id >= instance_.num_tasks()) {
    return util::Status::InvalidArgument("task id out of range");
  }
  if (task_submitted_[static_cast<size_t>(id)] != 0) {
    return util::Status::FailedPrecondition("task already submitted");
  }
  task_submitted_[static_cast<size_t>(id)] = 1;
  const double now = NowWallLocked();
  task_submit_wall_[static_cast<size_t>(id)] = now;
  if (options_.tracer != nullptr) options_.tracer->OnSubmit(id, now);
  ingest_.push_back({/*is_task=*/true, id, now});
  ++stats_.submitted_tasks;
  cv_.notify_one();
  return util::Status::OK();
}

void Service::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] {
    return stop_ ||
           (ingest_.empty() && decided_tasks_ == stats_.submitted_tasks);
  });
}

void Service::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
    cv_.notify_all();
    drain_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

std::vector<DecisionRecord> Service::TakeDecisions() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DecisionRecord> out;
  out.swap(decisions_);
  return out;
}

ServiceStats Service::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int64_t Service::pending_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.submitted_tasks - decided_tasks_;
}

int64_t Service::ingest_queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(ingest_.size());
}

void Service::Loop() {
  const auto min_gap = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(options_.min_batch_gap_ms));
  const auto max_gap = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(options_.max_batch_gap_ms));
  std::unique_lock<std::mutex> lock(mu_);
  auto last_batch = std::chrono::steady_clock::now() - max_gap;
  while (!stop_) {
    const bool work_pending =
        !ingest_.empty() || decided_tasks_ < stats_.submitted_tasks;
    if (!work_pending) {
      // Fully idle: nothing can change until an ingest event or shutdown.
      cv_.wait(lock, [this] { return stop_ || !ingest_.empty(); });
      continue;
    }
    // Event-driven with coalescing: run min_gap after the last batch when
    // ingest is waiting, and no later than max_gap regardless (camps
    // resolve and tasks expire on the clock, not on ingest). An ingest
    // event during a max_gap wait re-evaluates at the shorter gap.
    const bool had_ingest = !ingest_.empty();
    const auto next = last_batch + (had_ingest ? min_gap : max_gap);
    if (std::chrono::steady_clock::now() < next) {
      cv_.wait_until(lock, next, [&] {
        return stop_ || (!had_ingest && !ingest_.empty());
      });
      if (stop_) break;
      if (!had_ingest && !ingest_.empty() &&
          std::chrono::steady_clock::now() < next) {
        continue;
      }
    }
    const double now_wall = NowWallLocked();
    // Drain ingest into the live sets.
    while (!ingest_.empty()) {
      const Ingest ev = ingest_.front();
      ingest_.pop_front();
      if (ev.is_task) {
        task_live_[static_cast<size_t>(ev.id)] = 1;
      } else {
        runtime_[static_cast<size_t>(ev.id)].live = true;
      }
    }
    DASC_METRIC_GAUGE_SET("service_ingest_queue_depth",
                          static_cast<double>(ingest_.size()));
    last_batch = std::chrono::steady_clock::now();
    lock.unlock();
    RunBatch(now_wall);
    lock.lock();
    // Publish this batch's decisions and stats.
    for (const DecisionRecord& d : batch_decisions_) {
      if (d.served) {
        ++stats_.served;
      } else {
        ++stats_.expired;
      }
      ++decided_tasks_;
      decisions_.push_back(d);
    }
    batch_decisions_.clear();
    ++stats_.batches;
    if (batch_nonempty_) ++stats_.nonempty_batches;
    stats_.allocator_seconds += batch_allocator_seconds_;
    stats_.wasted_dispatches += batch_wasted_dispatches_;
    batch_nonempty_ = false;
    batch_allocator_seconds_ = 0.0;
    batch_wasted_dispatches_ = 0;
    if (decided_tasks_ == stats_.submitted_tasks && ingest_.empty()) {
      drain_cv_.notify_all();
    }
  }
  drain_cv_.notify_all();
}

void Service::RunBatch(double now_wall) {
  const int64_t batch_seq = batch_seq_++;
  const double now = now_wall * options_.time_scale;
  const int n = instance_.num_workers();
  const int m = instance_.num_tasks();
  DASC_METRIC_COUNTER_INC("service_batches_total");
  util::FlightRecorder::Global().Record(util::FlightEventKind::kBatchBegin,
                                        /*label=*/0, batch_seq);
  if (options_.tracer != nullptr) {
    // Clear any phase time the loop thread accumulated outside a batch so
    // this batch's attribution starts from zero.
    util::TakeThreadPhaseNanos();
    options_.tracer->OnBatchBegin(batch_seq, now_wall);
  }

  if (options_.inject_batch_delay_ms > 0.0) {
    DASC_FLIGHT_SPAN("inject_delay");
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.inject_batch_delay_ms));
  }

  // Dependency credit from earlier batches.
  for (int t = 0; t < m; ++t) {
    credited_[static_cast<size_t>(t)] = task_assigned_[static_cast<size_t>(t)];
  }

  auto decide = [&](core::TaskId tid, core::WorkerId wid, bool served) {
    task_decided_[static_cast<size_t>(tid)] = 1;
    DecisionRecord d;
    d.task = tid;
    d.worker = wid;
    d.served = served;
    d.submit_wall_s = task_submit_wall_[static_cast<size_t>(tid)];
    d.decide_wall_s = now_wall;
    d.batch_seq = batch_seq;
    batch_decisions_.push_back(d);
    DASC_METRIC_COUNTER_INC("service_decisions_total");
    DASC_METRIC_COUNTER_INC(served ? "service_tasks_served_total"
                                   : "service_tasks_expired_total");
    util::FlightRecorder::Global().Record(util::FlightEventKind::kDecision,
                                          /*label=*/0, tid, served ? 1 : 0);
    const uint64_t exemplar =
        options_.tracer != nullptr
            ? options_.tracer->OnDecision(tid, batch_seq, now_wall, served)
            : 0;
    DASC_METRIC_SKETCH_OBSERVE_EX("service_task_e2e_ms_window",
                                  (d.decide_wall_s - d.submit_wall_s) * 1e3,
                                  exemplar);
  };

  // Shared batch epilogue for both the empty-market early return and the
  // full path: batch-end flight event plus the tracer's batch record (with
  // this thread's per-phase self-time table for the batch).
  auto finish_batch = [&] {
    util::FlightRecorder::Global().Record(
        util::FlightEventKind::kBatchEnd, /*label=*/0, batch_seq,
        static_cast<int64_t>(batch_decisions_.size()));
    if (options_.tracer != nullptr) {
      options_.tracer->OnBatchEnd(batch_seq, NowWallLocked(),
                                  static_cast<int64_t>(batch_decisions_.size()),
                                  static_cast<int64_t>(problem_.open_tasks.size()),
                                  static_cast<int64_t>(problem_.workers.size()),
                                  util::TakeThreadPhaseNanos());
    }
  };

  // Resolve binding camp dispatches (Simulator's kWait semantics): conduct
  // when the dependencies are satisfied, dissolve when the task expires.
  if (!camps_.empty()) {
    std::vector<PendingCamp> still;
    still.reserve(camps_.size());
    for (const PendingCamp& pc : camps_) {
      const core::Task& task = instance_.task(pc.task);
      WorkerRuntime& rt = runtime_[static_cast<size_t>(pc.worker)];
      bool deps_met = true;
      for (core::TaskId f : instance_.DepClosure(pc.task)) {
        if (!credited_[static_cast<size_t>(f)]) {
          deps_met = false;
          break;
        }
      }
      if (deps_met && now >= pc.arrival && now <= task.Expiry()) {
        const double done = now + options_.service_time;
        task_assigned_[static_cast<size_t>(pc.task)] = 1;
        task_locked_[static_cast<size_t>(pc.task)] = 0;
        rt.busy_until = done;
        rt.camped = false;
        decide(pc.task, pc.worker, /*served=*/true);
        DASC_METRIC_COUNTER_INC("service_camps_resolved_total");
      } else if (now > task.Expiry()) {
        task_locked_[static_cast<size_t>(pc.task)] = 0;
        rt.camped = false;
        rt.busy_until = now;
        decide(pc.task, core::kInvalidId, /*served=*/false);
        DASC_METRIC_COUNTER_INC("service_camps_expired_total");
      } else {
        still.push_back(pc);
      }
    }
    camps_.swap(still);
  }

  // Expire undecided open tasks whose service window closed.
  for (int t = 0; t < m; ++t) {
    const auto ti = static_cast<size_t>(t);
    if (!task_live_[ti] || task_decided_[ti] || task_locked_[ti]) continue;
    if (task_assigned_[ti]) continue;
    if (now > instance_.task(t).Expiry() + kEps) {
      decide(t, core::kInvalidId, /*served=*/false);
    }
  }

  // Assemble the batch problem into the reused arena.
  {
    DASC_FLIGHT_SPAN("problem_build");
    problem_.instance = &instance_;
    problem_.now = now;
    problem_.params = options_.params;
    problem_.in_batch_dependency_credit = options_.in_batch_dependency_credit;
    problem_.workers.clear();
    problem_.open_tasks.clear();
    problem_.InvalidateCandidates();

    for (int i = 0; i < n; ++i) {
      const auto wi = static_cast<size_t>(i);
      const core::Worker& w = instance_.worker(i);
      const WorkerRuntime& rt = runtime_[wi];
      if (!rt.live || w.start_time > now || w.Deadline() < now) continue;
      if (rt.camped || rt.busy_until > now) continue;
      core::WorkerState state;
      state.id = i;
      state.location = rt.location;
      state.remaining_distance = w.max_distance;
      problem_.workers.push_back(state);
    }
    problem_.assigned_before = credited_;
    for (int t = 0; t < m; ++t) {
      const auto ti = static_cast<size_t>(t);
      if (!task_live_[ti] || task_decided_[ti] || task_assigned_[ti] ||
          task_locked_[ti]) {
        continue;
      }
      const core::Task& task = instance_.task(t);
      if (task.start_time > now || task.Expiry() < now) continue;
      problem_.open_tasks.push_back(t);
    }
  }
  if (options_.tracer != nullptr) {
    for (core::TaskId t : problem_.open_tasks) {
      options_.tracer->OnAdmit(t, batch_seq);
    }
  }

  DASC_METRIC_GAUGE_SET("service_queue_depth_workers",
                        static_cast<double>(problem_.workers.size()));
  DASC_METRIC_GAUGE_SET("service_queue_depth_tasks",
                        static_cast<double>(problem_.open_tasks.size()));

  auto batch_boundary = [&] {
    if (util::MetricsEnabled()) util::GlobalMetrics().AdvanceSketchWindows();
    if (options_.timeseries != nullptr) {
      options_.timeseries->RecordBatch(batch_seq, now, util::GlobalMetrics());
    }
    if (options_.watchdog != nullptr) options_.watchdog->Heartbeat(batch_seq);
  };

  if (problem_.workers.empty() || problem_.open_tasks.empty()) {
    DASC_METRIC_COUNTER_INC("service_empty_batches_total");
    finish_batch();
    batch_boundary();
    return;
  }
  batch_nonempty_ = true;  // published into stats_ by Loop(), under mu_

  if (candidate_view_ != nullptr) {
    DASC_FLIGHT_SPAN("candidate_apply_delta");
    candidate_view_->Update(problem_);
  }

  util::WallTimer timer;
  core::Assignment raw;
  {
    DASC_FLIGHT_SPAN("allocate");
    raw = allocator_.Allocate(problem_);
  }
  const double batch_seconds = timer.ElapsedSeconds();
  batch_allocator_seconds_ += batch_seconds;
  if (!raw.empty()) {
    DASC_METRIC_HISTOGRAM_OBSERVE("service_batch_allocator_ms",
                                  batch_seconds * 1e3);
    DASC_METRIC_SKETCH_OBSERVE("service_batch_allocator_ms_window",
                               batch_seconds * 1e3);
  }

  {
    DASC_FLIGHT_SPAN("commit");
    const core::SplitAssignment split = core::SplitPairs(problem_, raw);
    for (const auto& [wid, tid] : split.valid.pairs()) {
      WorkerRuntime& rt = runtime_[static_cast<size_t>(wid)];
      const core::Worker& w = instance_.worker(wid);
      const core::Task& task = instance_.task(tid);
      const double dist =
          core::PairDistance(options_.params, rt.location, task.location);
      const double arrival = now + dist / w.velocity;
      rt.location = task.location;
      rt.busy_until = arrival + options_.service_time;
      task_assigned_[static_cast<size_t>(tid)] = 1;
      decide(tid, wid, /*served=*/true);
    }
    // Dependency-violating pairs are binding (kWait): the worker camps at
    // the locked task until its dependencies are satisfied or it expires.
    for (const auto& [wid, tid] : split.invalid.pairs()) {
      WorkerRuntime& rt = runtime_[static_cast<size_t>(wid)];
      const core::Worker& w = instance_.worker(wid);
      const core::Task& task = instance_.task(tid);
      const double dist =
          core::PairDistance(options_.params, rt.location, task.location);
      rt.location = task.location;
      rt.camped = true;
      task_locked_[static_cast<size_t>(tid)] = 1;
      camps_.push_back({wid, tid, now + dist / w.velocity});
      ++batch_wasted_dispatches_;
      if (options_.tracer != nullptr) options_.tracer->OnCamp(tid, batch_seq);
      DASC_METRIC_COUNTER_INC("service_camp_dispatches_total");
    }
  }

  finish_batch();
  batch_boundary();
}

}  // namespace dasc::sim
