// Experiment-level helpers: run allocators over an instance and collect the
// (score, running time) measurements the paper's figures plot.
#ifndef DASC_SIM_METRICS_H_
#define DASC_SIM_METRICS_H_

#include <string>
#include <vector>

#include "sim/simulator.h"

namespace dasc::sim {

// One algorithm's measurement for one workload configuration.
struct RunStats {
  std::string algorithm;
  int score = 0;
  double millis = 0.0;  // time spent inside the allocator across all batches
  int batches = 0;
  int nonempty_batches = 0;
  int completed_tasks = 0;
  // Dependency-violating dispatches (kWait mode): worker-batches wasted.
  int wasted_dispatches = 0;
  // Distribution of per-batch allocator wall times (ops view): a platform
  // cares about tail latency, not just the total.
  double p50_batch_ms = 0.0;
  double p95_batch_ms = 0.0;
  double max_batch_ms = 0.0;
  double mean_assignment_latency = 0.0;
  double last_completion_time = 0.0;
};

// Runs `allocator` through a full simulation of `instance`.
RunStats MeasureSimulation(const core::Instance& instance,
                           const SimulatorOptions& options,
                           core::Allocator& allocator);

// Runs `allocator` on the single-batch (offline) problem containing the
// whole instance at time `now` — the small-scale experiment setting.
RunStats MeasureSingleBatch(const core::Instance& instance, double now,
                            const core::FeasibilityParams& params,
                            core::Allocator& allocator);

}  // namespace dasc::sim

#endif  // DASC_SIM_METRICS_H_
