// Experiment-level helpers: run allocators over an instance and collect the
// (score, running time) measurements the paper's figures plot.
#ifndef DASC_SIM_METRICS_H_
#define DASC_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace dasc::sim {

// One algorithm's measurement for one workload configuration.
struct RunStats {
  std::string algorithm;
  int score = 0;
  double millis = 0.0;  // time spent inside the allocator across all batches
  int batches = 0;
  int nonempty_batches = 0;
  int completed_tasks = 0;
  // Dependency-violating dispatches (kWait mode): worker-batches wasted.
  int wasted_dispatches = 0;
  // Distribution of per-batch allocator wall times (ops view): a platform
  // cares about tail latency, not just the total.
  double p50_batch_ms = 0.0;
  double p95_batch_ms = 0.0;
  double max_batch_ms = 0.0;
  double mean_assignment_latency = 0.0;
  double last_completion_time = 0.0;
  // Batches skipped by the allocator: empty market or an empty assignment.
  int empty_batches = 0;
  // Allocation-audit results (SimulatorOptions::audit); all zero when the
  // audit was off. `approx_ratio` is the run-level empirical approximation
  // ratio achieved_total / upper_bound_total against the dependency-relaxed
  // per-batch bound; the paper's 1/2 guarantee predicts >= 0.5 for gg.
  int audited_batches = 0;
  int audit_violations = 0;
  double min_batch_gap = 0.0;
  double mean_batch_gap = 0.0;
  double approx_ratio = 0.0;
  // Instance size; total_tasks - completed_tasks = unserved (run-report /3).
  int total_tasks = 0;
  // Audit cross-check of the lifecycle ledger (0 unless a bug, or when the
  // ledger/audit combination was off).
  int ledger_mismatches = 0;
  // Incremental-candidate conformance (SimulatorOptions::verify_candidates):
  // batches differentially checked against a from-scratch rebuild, and how
  // many diverged (0 unless a bug or injected staleness).
  int64_t candidate_checks = 0;
  int64_t candidate_mismatches = 0;
  // Lifecycle ledger export (SimulatorOptions::ledger): per-reason totals
  // indexed by UnservedReason, and one entry per task. Empty when off.
  std::vector<int64_t> unserved_by_reason;
  std::vector<TaskLedgerEntry> ledger;
};

// Runs `allocator` through a full simulation of `instance`.
RunStats MeasureSimulation(const core::Instance& instance,
                           const SimulatorOptions& options,
                           core::Allocator& allocator);

// Runs `allocator` on the single-batch (offline) problem containing the
// whole instance at time `now` — the small-scale experiment setting.
RunStats MeasureSingleBatch(const core::Instance& instance, double now,
                            const core::FeasibilityParams& params,
                            core::Allocator& allocator);

}  // namespace dasc::sim

#endif  // DASC_SIM_METRICS_H_
