#include "sim/ledger.h"

#include <algorithm>

#include "util/logging.h"
#include "util/metrics.h"

namespace dasc::sim {

const char* UnservedReasonName(UnservedReason reason) {
  switch (reason) {
    case UnservedReason::kServed:
      return "served";
    case UnservedReason::kNeverOpen:
      return "never_open";
    case UnservedReason::kWorkerExhausted:
      return "worker_exhausted";
    case UnservedReason::kNoSkilledWorker:
      return "no_skilled_worker";
    case UnservedReason::kTravelDeadline:
      return "travel_deadline";
    case UnservedReason::kOutOfRange:
      return "out_of_range";
    case UnservedReason::kArrivalDeadline:
      return "arrival_deadline";
    case UnservedReason::kDependencyUnmet:
      return "dependency_unmet";
    case UnservedReason::kLostInMatching:
      return "lost_in_matching";
  }
  DASC_CHECK(false) << "unknown UnservedReason";
  return "?";
}

bool UnservedReasonFromName(const std::string& name, UnservedReason* out) {
  for (int i = 0; i < kNumUnservedReasons; ++i) {
    const UnservedReason reason = static_cast<UnservedReason>(i);
    if (name == UnservedReasonName(reason)) {
      *out = reason;
      return true;
    }
  }
  return false;
}

UnservedReason UnservedReasonFromServeFailure(core::ServeFailure failure) {
  switch (failure) {
    case core::ServeFailure::kNone:
      // Defensive: a candidate-less task should never classify feasible; the
      // candidate builder and ClassifyServe share semantics by construction.
      return UnservedReason::kLostInMatching;
    case core::ServeFailure::kSkillMismatch:
      return UnservedReason::kNoSkilledWorker;
    case core::ServeFailure::kWorkerDeparted:
    case core::ServeFailure::kWindowMismatch:
    case core::ServeFailure::kTaskNotArrived:
      return UnservedReason::kTravelDeadline;
    case core::ServeFailure::kOutOfRange:
      return UnservedReason::kOutOfRange;
    case core::ServeFailure::kArrivalDeadline:
      return UnservedReason::kArrivalDeadline;
  }
  DASC_CHECK(false) << "unknown ServeFailure";
  return UnservedReason::kLostInMatching;
}

std::vector<int> DependencyDepths(const core::Instance& instance) {
  const int m = instance.num_tasks();
  std::vector<int> depth(static_cast<size_t>(m), -1);
  // Iterative memoized DFS over the direct-dependency DAG (recursion could
  // overflow on deep chains).
  std::vector<core::TaskId> stack;
  for (core::TaskId root = 0; root < m; ++root) {
    if (depth[static_cast<size_t>(root)] >= 0) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      const core::TaskId t = stack.back();
      if (depth[static_cast<size_t>(t)] >= 0) {
        stack.pop_back();
        continue;
      }
      int best = 0;
      bool ready = true;
      for (core::TaskId d : instance.task(t).dependencies) {
        const int dd = depth[static_cast<size_t>(d)];
        if (dd < 0) {
          stack.push_back(d);
          ready = false;
        } else {
          best = std::max(best, dd + 1);
        }
      }
      if (ready) {
        depth[static_cast<size_t>(t)] = best;
        stack.pop_back();
      }
    }
  }
  return depth;
}

LifecycleLedger::LifecycleLedger(const core::Instance& instance)
    : instance_(instance) {
  const int m = instance.num_tasks();
  entries_.resize(static_cast<size_t>(m));
  camped_.assign(static_cast<size_t>(m), 0);
  expired_.assign(static_cast<size_t>(m), 0);
  assigned_in_batch_.assign(static_cast<size_t>(m), 0);
  counts_.assign(kNumUnservedReasons, 0);
  const std::vector<int> depths = DependencyDepths(instance);
  for (int t = 0; t < m; ++t) {
    TaskLedgerEntry& e = entries_[static_cast<size_t>(t)];
    e.task = t;
    e.arrival = instance.task(t).start_time;
    e.expiry = instance.task(t).Expiry();
    e.dep_depth = depths[static_cast<size_t>(t)];
  }
}

void LifecycleLedger::MarkExpired(core::TaskId task, int batch_seq,
                                  Trace* trace) {
  expired_[static_cast<size_t>(task)] = 1;
  const TaskLedgerEntry& e = entries_[static_cast<size_t>(task)];
  if (trace != nullptr) {
    TraceEvent event;
    event.time = e.expiry;
    event.kind = TraceEventKind::kExpired;
    event.task = task;
    event.detail = static_cast<double>(static_cast<int>(e.reason));
    event.batch_seq = batch_seq;
    event.reason = static_cast<int>(e.reason);
    trace->Record(event);
  }
}

void LifecycleLedger::ObserveBatch(const core::BatchProblem& problem,
                                   const core::Assignment& valid,
                                   int batch_seq, Trace* trace) {
  DASC_CHECK(!finalized_);
  const double now = problem.now;
  const int m = instance_.num_tasks();

  // Tasks whose deadline passed since the last batch (camped tasks are the
  // pending-dispatch loop's business; completed tasks are done).
  for (int t = 0; t < m; ++t) {
    const TaskLedgerEntry& e = entries_[static_cast<size_t>(t)];
    if (e.completed || expired_[static_cast<size_t>(t)] != 0 ||
        camped_[static_cast<size_t>(t)] != 0) {
      continue;
    }
    if (e.expiry < now) MarkExpired(t, batch_seq, trace);
  }

  std::fill(assigned_in_batch_.begin(), assigned_in_batch_.end(), 0);
  for (const auto& [w, t] : valid.pairs()) {
    assigned_in_batch_[static_cast<size_t>(t)] = 1;
  }

  const bool have_workers = !problem.workers.empty();
  const core::CandidateSets* cand =
      have_workers && !problem.open_tasks.empty() ? &problem.Candidates()
                                                  : nullptr;
  for (core::TaskId t : problem.open_tasks) {
    TaskLedgerEntry& e = entries_[static_cast<size_t>(t)];
    if (e.first_open_batch < 0) {
      e.first_open_batch = batch_seq;
      if (trace != nullptr) {
        TraceEvent event;
        event.time = e.arrival;
        event.kind = TraceEventKind::kArrival;
        event.task = t;
        event.detail = static_cast<double>(instance_.DepClosure(t).size());
        event.batch_seq = batch_seq;
        trace->Record(event);
      }
    }
    e.last_open_batch = batch_seq;
    ++e.batches_open;
    const bool has_candidate =
        cand != nullptr && !cand->task_workers[static_cast<size_t>(t)].empty();
    if (has_candidate) ++e.candidate_batches;
    if (assigned_in_batch_[static_cast<size_t>(t)] != 0) continue;

    UnservedReason stage;
    if (!have_workers) {
      stage = UnservedReason::kWorkerExhausted;
    } else if (!has_candidate) {
      stage = UnservedReasonFromServeFailure(
          core::ClassifyBatchTaskFailure(problem, t));
    } else {
      bool deps_met = true;
      for (core::TaskId f : instance_.DepClosure(t)) {
        if (problem.TaskAssignedBefore(f)) continue;
        if (problem.in_batch_dependency_credit &&
            assigned_in_batch_[static_cast<size_t>(f)] != 0) {
          continue;
        }
        deps_met = false;
        break;
      }
      stage = deps_met ? UnservedReason::kLostInMatching
                       : UnservedReason::kDependencyUnmet;
    }
    e.reason = std::max(e.reason, stage);
  }
}

void LifecycleLedger::RecordAssigned(core::TaskId task, int batch_seq,
                                     double completion_time) {
  TaskLedgerEntry& e = entries_[static_cast<size_t>(task)];
  e.completed = true;
  e.assigned_batch = batch_seq;
  e.completion_time = completion_time;
  e.reason = UnservedReason::kServed;
  camped_[static_cast<size_t>(task)] = 0;
}

void LifecycleLedger::RecordCamped(core::TaskId task, int batch_seq) {
  camped_[static_cast<size_t>(task)] = 1;
  TaskLedgerEntry& e = entries_[static_cast<size_t>(task)];
  e.reason = std::max(e.reason, UnservedReason::kDependencyUnmet);
  (void)batch_seq;
}

void LifecycleLedger::RecordCampExpired(core::TaskId task, int batch_seq,
                                        Trace* trace) {
  camped_[static_cast<size_t>(task)] = 0;
  TaskLedgerEntry& e = entries_[static_cast<size_t>(task)];
  e.camp_expired = true;
  // A binding dispatch died waiting on dependencies: dependency_unmet by
  // definition, regardless of any later-looking stage from earlier batches.
  e.reason = UnservedReason::kDependencyUnmet;
  MarkExpired(task, batch_seq, trace);
}

void LifecycleLedger::Finalize(int final_batch_seq, Trace* trace) {
  DASC_CHECK(!finalized_);
  finalized_ = true;
  const int m = instance_.num_tasks();
  for (int t = 0; t < m; ++t) {
    TaskLedgerEntry& e = entries_[static_cast<size_t>(t)];
    if (e.completed) continue;
    if (camped_[static_cast<size_t>(t)] != 0) {
      // A camp still pending when the simulation ended: the dependencies
      // never cleared within the timeline.
      RecordCampExpired(t, final_batch_seq, trace);
      continue;
    }
    if (expired_[static_cast<size_t>(t)] == 0) {
      // Expired at/after the last batch instant, or never on the timeline.
      MarkExpired(t, final_batch_seq, trace);
    }
  }
  std::fill(counts_.begin(), counts_.end(), 0);
  for (const TaskLedgerEntry& e : entries_) {
    ++counts_[static_cast<size_t>(e.reason)];
  }
#if DASC_METRICS_ENABLED
  // Per-reason counters use a dynamic name, so the cached-pointer macros do
  // not apply; this is a once-per-run path.
  if (util::MetricsEnabled()) {
    int64_t unserved = 0;
    for (int r = 1; r < kNumUnservedReasons; ++r) {
      const int64_t count = counts_[static_cast<size_t>(r)];
      if (count == 0) continue;
      unserved += count;
      util::GlobalMetrics()
          .GetCounter(std::string("sim_unserved_total{reason=") +
                      UnservedReasonName(static_cast<UnservedReason>(r)) + "}")
          ->Increment(count);
    }
    util::GlobalMetrics().GetCounter("sim_unserved_total")->Increment(unserved);
  }
#endif
}

}  // namespace dasc::sim
