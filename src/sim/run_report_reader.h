// Reader for dasc-run-report JSONL files (sim/run_report.h writes them).
//
// The reader is the ingestion side of tools/dasc_report: it parses a whole
// report back into the same structs the writer consumed (RunStats per
// "stats" line, util::MetricsSnapshot for the registry dump), so the two
// sides can be round-tripped field-for-field in tests.
//
// Schema handling: the header's "dasc-run-report/<v>" tag is dispatched on.
//   /1 — pre-audit stats lines; the v2/v3-only fields default to zero.
//   /2 — the audit block fields are required; no ledger lines.
//   /3 — stats additionally require total_tasks and ledger_mismatches, and
//        optional "ledger" / "task" lines carry the per-task lifecycle
//        block back into RunStats::unserved_by_reason / RunStats::ledger.
//   /4 — optional live-telemetry blocks: "sketch" lines land in
//        MetricsSnapshot::sketches, "timeseries"/"ts" lines in
//        RunReport::timeseries, "anomalies"/"anomaly" lines in
//        RunReport::anomalies.
//   /5 — current; causal-trace blocks: sketch "exemplars" land in
//        SketchSnapshot::exemplars, and "trace_summary" / "trace" /
//        "trace_batch" lines land in RunReport::traces (the structs of
//        sim/task_trace.h round-trip through the report).
// Any other tag is rejected with an error naming the supported versions —
// a report from a newer writer must fail loudly, not half-parse.
#ifndef DASC_SIM_RUN_REPORT_READER_H_
#define DASC_SIM_RUN_REPORT_READER_H_

#include <istream>
#include <map>
#include <string>
#include <vector>

#include "sim/metrics_timeseries.h"
#include "sim/run_report.h"
#include "sim/watchdog.h"
#include "util/status.h"

namespace dasc::sim {

// The "timeseries" block (one header line + one "ts" line per sample).
struct RunReportTimeSeries {
  bool present = false;
  std::vector<std::string> columns;
  int64_t recorded = 0;
  int64_t dropped = 0;
  int max_samples = 0;
  std::vector<TimeSeriesSample> samples;
};

// The "anomalies" block (summary line + one "anomaly" line per breach).
struct RunReportAnomalies {
  bool present = false;
  int64_t count = 0;  // total breaches (>= entries.size())
  std::map<std::string, int64_t> by_kind;
  std::vector<WatchdogAnomaly> entries;
};

// The /5 causal-trace block ("trace_summary" + "trace" + "trace_batch").
struct RunReportTraces {
  bool present = false;
  TaskTracerStats summary;
  std::vector<TaskTraceRecord> traces;
  std::vector<TraceBatchRecord> batches;
};

// A fully-parsed run report.
struct RunReport {
  int schema_version = 0;  // 1 through 5
  RunReportHeader header;
  int declared_runs = 0;  // the header's "runs" field
  std::vector<RunStats> stats;
  util::MetricsSnapshot metrics;
  RunReportTimeSeries timeseries;  // /4 runs with a MetricsTimeSeries
  RunReportAnomalies anomalies;    // /4 runs with a StallWatchdog
  RunReportTraces traces;          // /5 runs with a TaskTracer
};

// Parses one report from `in`. Fails on: missing/malformed header line,
// unsupported schema version, malformed JSON, a stats line missing a
// required field, or a declared-runs / stats-line count mismatch.
util::Result<RunReport> ParseRunReport(std::istream& in);

// Convenience: open + ParseRunReport, with the path prefixed to errors.
util::Result<RunReport> ReadRunReportFile(const std::string& path);

// The stats entry for `algorithm`, or nullptr when the report has none.
const RunStats* FindStats(const RunReport& report,
                          const std::string& algorithm);

}  // namespace dasc::sim

#endif  // DASC_SIM_RUN_REPORT_READER_H_
