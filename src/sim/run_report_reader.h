// Reader for dasc-run-report JSONL files (sim/run_report.h writes them).
//
// The reader is the ingestion side of tools/dasc_report: it parses a whole
// report back into the same structs the writer consumed (RunStats per
// "stats" line, util::MetricsSnapshot for the registry dump), so the two
// sides can be round-tripped field-for-field in tests.
//
// Schema handling: the header's "dasc-run-report/<v>" tag is dispatched on.
//   /1 — pre-audit stats lines; the v2/v3-only fields default to zero.
//   /2 — the audit block fields are required; no ledger lines.
//   /3 — current; stats additionally require total_tasks and
//        ledger_mismatches, and optional "ledger" / "task" lines carry the
//        per-task lifecycle block back into RunStats::unserved_by_reason /
//        RunStats::ledger.
// Any other tag is rejected with an error naming the supported versions —
// a report from a newer writer must fail loudly, not half-parse.
#ifndef DASC_SIM_RUN_REPORT_READER_H_
#define DASC_SIM_RUN_REPORT_READER_H_

#include <istream>
#include <string>
#include <vector>

#include "sim/run_report.h"
#include "util/status.h"

namespace dasc::sim {

// A fully-parsed run report.
struct RunReport {
  int schema_version = 0;  // 1, 2, or 3
  RunReportHeader header;
  int declared_runs = 0;  // the header's "runs" field
  std::vector<RunStats> stats;
  util::MetricsSnapshot metrics;
};

// Parses one report from `in`. Fails on: missing/malformed header line,
// unsupported schema version, malformed JSON, a stats line missing a
// required field, or a declared-runs / stats-line count mismatch.
util::Result<RunReport> ParseRunReport(std::istream& in);

// Convenience: open + ParseRunReport, with the path prefixed to errors.
util::Result<RunReport> ReadRunReportFile(const std::string& path);

// The stats entry for `algorithm`, or nullptr when the report has none.
const RunStats* FindStats(const RunReport& report,
                          const std::string& algorithm);

}  // namespace dasc::sim

#endif  // DASC_SIM_RUN_REPORT_READER_H_
