#include "sim/load_report.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/json.h"

namespace dasc::sim {

using util::JsonEscape;
using util::JsonNumber;

LoadSloResult EvaluateLoadSlo(const LoadSloDefinition& def,
                              const std::vector<LoadSample>& samples) {
  LoadSloResult result;
  result.def = def;
  if (samples.empty()) return result;
  auto is_bad = [&](const LoadSample& s) {
    if (def.kind == LoadSloDefinition::Kind::kUnservedRate) return !s.served;
    return s.e2e_intended_ms > def.threshold_ms;
  };
  const size_t n = samples.size();
  const size_t short_n = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(n) * def.short_window));
  size_t long_bad = 0;
  size_t short_bad = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!is_bad(samples[i])) continue;
    ++long_bad;
    if (i >= n - short_n) ++short_bad;
  }
  result.long_bad = static_cast<double>(long_bad) / static_cast<double>(n);
  result.short_bad =
      static_cast<double>(short_bad) / static_cast<double>(short_n);
  if (def.budget > 0.0) {
    result.long_burn = result.long_bad / def.budget;
    result.short_burn = result.short_bad / def.budget;
  }
  result.breached = result.long_burn >= 1.0 && result.short_burn >= 1.0;
  return result;
}

namespace {

const char* SloKindName(LoadSloDefinition::Kind kind) {
  return kind == LoadSloDefinition::Kind::kUnservedRate ? "unserved_rate"
                                                        : "latency_quantile";
}

void WriteLatencyLine(std::ostream& out, const LatencySeriesSummary& s) {
  out << "{\"type\":\"latency\",\"series\":\"" << JsonEscape(s.series)
      << "\",\"count\":" << s.count << ",\"mean_ms\":" << JsonNumber(s.mean_ms)
      << ",\"p50_ms\":" << JsonNumber(s.p50_ms)
      << ",\"p95_ms\":" << JsonNumber(s.p95_ms)
      << ",\"p99_ms\":" << JsonNumber(s.p99_ms)
      << ",\"p999_ms\":" << JsonNumber(s.p999_ms)
      << ",\"max_ms\":" << JsonNumber(s.max_ms) << "}\n";
}

}  // namespace

void WriteLoadReportJsonl(std::ostream& out, const LoadReport& report) {
  const LoadReportHeader& h = report.header;
  out << "{\"type\":\"load_run\",\"schema\":\"" << kLoadReportSchema
      << "\",\"instance\":\"" << JsonEscape(h.instance)
      << "\",\"algorithm\":\"" << JsonEscape(h.algorithm)
      << "\",\"process\":\"" << JsonEscape(h.process) << "\",\"seed\":" << h.seed
      << ",\"build\":{\"version\":\"" << JsonEscape(h.version)
      << "\",\"git_sha\":\"" << JsonEscape(h.git_sha)
      << "\",\"build_type\":\"" << JsonEscape(h.build_type) << "\"}}\n";

  const LoadRates& r = report.rates;
  out << "{\"type\":\"rates\",\"offered_per_min\":"
      << JsonNumber(r.offered_per_min)
      << ",\"achieved_per_min\":" << JsonNumber(r.achieved_per_min)
      << ",\"ratio\":" << JsonNumber(r.ratio) << ",\"sent\":" << r.sent
      << ",\"duration_s\":" << JsonNumber(r.duration_s)
      << ",\"time_scale\":" << JsonNumber(r.time_scale) << "}\n";

  for (const LatencySeriesSummary& s : report.latency) {
    WriteLatencyLine(out, s);
  }

  const LoadServiceStats& sv = report.service;
  out << "{\"type\":\"service_stats\",\"batches\":" << sv.batches
      << ",\"nonempty_batches\":" << sv.nonempty_batches
      << ",\"served\":" << sv.served << ",\"expired\":" << sv.expired
      << ",\"unserved_rate\":" << JsonNumber(sv.unserved_rate)
      << ",\"allocator_seconds\":" << JsonNumber(sv.allocator_seconds)
      << "}\n";

  const ServiceSketchSummary& sk = report.sketch;
  out << "{\"type\":\"service_sketch\",\"name\":\"" << JsonEscape(sk.name)
      << "\",\"count\":" << sk.count << ",\"p50_ms\":" << JsonNumber(sk.p50_ms)
      << ",\"p95_ms\":" << JsonNumber(sk.p95_ms)
      << ",\"p99_ms\":" << JsonNumber(sk.p99_ms)
      << ",\"scraped\":" << (sk.scraped ? "true" : "false") << "}\n";

  const ReconcileResult& rc = report.reconcile;
  out << "{\"type\":\"reconcile\",\"loadgen_p95_ms\":"
      << JsonNumber(rc.loadgen_p95_ms)
      << ",\"service_p95_ms\":" << JsonNumber(rc.service_p95_ms)
      << ",\"rel_diff\":" << JsonNumber(rc.rel_diff)
      << ",\"tolerance\":" << JsonNumber(rc.tolerance)
      << ",\"agree\":" << (rc.agree ? "true" : "false") << "}\n";

  for (const LoadSloResult& slo : report.slos) {
    out << "{\"type\":\"slo\",\"name\":\"" << JsonEscape(slo.def.name)
        << "\",\"kind\":\"" << SloKindName(slo.def.kind)
        << "\",\"threshold_ms\":" << JsonNumber(slo.def.threshold_ms)
        << ",\"budget\":" << JsonNumber(slo.def.budget)
        << ",\"short_window\":" << JsonNumber(slo.def.short_window)
        << ",\"long_bad\":" << JsonNumber(slo.long_bad)
        << ",\"short_bad\":" << JsonNumber(slo.short_bad)
        << ",\"long_burn\":" << JsonNumber(slo.long_burn)
        << ",\"short_burn\":" << JsonNumber(slo.short_burn)
        << ",\"breached\":" << (slo.breached ? "true" : "false") << "}\n";
  }

  for (const QueueDepthSample& q : report.queue_depth) {
    out << "{\"type\":\"queue_depth\",\"t_s\":" << JsonNumber(q.t_s)
        << ",\"depth\":" << JsonNumber(q.depth) << "}\n";
  }

  out << "{\"type\":\"anomalies\",\"count\":" << report.anomalies.size()
      << "}\n";
  for (const LoadAnomaly& a : report.anomalies) {
    out << "{\"type\":\"anomaly\",\"kind\":\"" << JsonEscape(a.kind)
        << "\",\"batch_seq\":" << a.batch_seq
        << ",\"value\":" << JsonNumber(a.value)
        << ",\"threshold\":" << JsonNumber(a.threshold)
        << ",\"wall_ms\":" << JsonNumber(a.wall_ms) << "}\n";
  }
}

util::Result<LoadReport> ReadLoadReportJsonl(std::istream& in) {
  LoadReport report;
  bool saw_header = false;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    auto parsed = util::ParseJson(line);
    if (!parsed.ok()) {
      return util::Status::InvalidArgument(
          "load report line " + std::to_string(lineno) + ": " +
          parsed.status().message());
    }
    const util::JsonValue& v = *parsed;
    const std::string type = v.GetString("type");
    if (type == "load_run") {
      const std::string schema = v.GetString("schema");
      if (schema != kLoadReportSchema) {
        return util::Status::InvalidArgument("unsupported schema '" + schema +
                                             "'");
      }
      saw_header = true;
      report.header.instance = v.GetString("instance");
      report.header.algorithm = v.GetString("algorithm");
      report.header.process = v.GetString("process");
      report.header.seed = static_cast<uint64_t>(v.GetNumber("seed"));
      if (const util::JsonValue* build = v.Find("build")) {
        report.header.version = build->GetString("version");
        report.header.git_sha = build->GetString("git_sha");
        report.header.build_type = build->GetString("build_type");
      }
    } else if (type == "rates") {
      report.rates.offered_per_min = v.GetNumber("offered_per_min");
      report.rates.achieved_per_min = v.GetNumber("achieved_per_min");
      report.rates.ratio = v.GetNumber("ratio");
      report.rates.sent = static_cast<int64_t>(v.GetNumber("sent"));
      report.rates.duration_s = v.GetNumber("duration_s");
      report.rates.time_scale = v.GetNumber("time_scale");
    } else if (type == "latency") {
      LatencySeriesSummary s;
      s.series = v.GetString("series");
      s.count = static_cast<int64_t>(v.GetNumber("count"));
      s.mean_ms = v.GetNumber("mean_ms");
      s.p50_ms = v.GetNumber("p50_ms");
      s.p95_ms = v.GetNumber("p95_ms");
      s.p99_ms = v.GetNumber("p99_ms");
      s.p999_ms = v.GetNumber("p999_ms");
      s.max_ms = v.GetNumber("max_ms");
      report.latency.push_back(std::move(s));
    } else if (type == "service_stats") {
      report.service.batches = static_cast<int64_t>(v.GetNumber("batches"));
      report.service.nonempty_batches =
          static_cast<int64_t>(v.GetNumber("nonempty_batches"));
      report.service.served = static_cast<int64_t>(v.GetNumber("served"));
      report.service.expired = static_cast<int64_t>(v.GetNumber("expired"));
      report.service.unserved_rate = v.GetNumber("unserved_rate");
      report.service.allocator_seconds = v.GetNumber("allocator_seconds");
    } else if (type == "service_sketch") {
      report.sketch.name = v.GetString("name");
      report.sketch.count = static_cast<int64_t>(v.GetNumber("count"));
      report.sketch.p50_ms = v.GetNumber("p50_ms");
      report.sketch.p95_ms = v.GetNumber("p95_ms");
      report.sketch.p99_ms = v.GetNumber("p99_ms");
      const util::JsonValue* scraped = v.Find("scraped");
      report.sketch.scraped = scraped != nullptr && scraped->AsBool();
    } else if (type == "reconcile") {
      report.reconcile.loadgen_p95_ms = v.GetNumber("loadgen_p95_ms");
      report.reconcile.service_p95_ms = v.GetNumber("service_p95_ms");
      report.reconcile.rel_diff = v.GetNumber("rel_diff");
      report.reconcile.tolerance = v.GetNumber("tolerance");
      const util::JsonValue* agree = v.Find("agree");
      report.reconcile.agree = agree != nullptr && agree->AsBool();
    } else if (type == "slo") {
      LoadSloResult slo;
      slo.def.name = v.GetString("name");
      slo.def.kind = v.GetString("kind") == "unserved_rate"
                         ? LoadSloDefinition::Kind::kUnservedRate
                         : LoadSloDefinition::Kind::kLatencyQuantile;
      slo.def.threshold_ms = v.GetNumber("threshold_ms");
      slo.def.budget = v.GetNumber("budget");
      slo.def.short_window = v.GetNumber("short_window");
      slo.long_bad = v.GetNumber("long_bad");
      slo.short_bad = v.GetNumber("short_bad");
      slo.long_burn = v.GetNumber("long_burn");
      slo.short_burn = v.GetNumber("short_burn");
      const util::JsonValue* breached = v.Find("breached");
      slo.breached = breached != nullptr && breached->AsBool();
      report.slos.push_back(std::move(slo));
    } else if (type == "queue_depth") {
      report.queue_depth.push_back(
          {v.GetNumber("t_s"), v.GetNumber("depth")});
    } else if (type == "anomaly") {
      LoadAnomaly a;
      a.kind = v.GetString("kind");
      a.batch_seq = static_cast<int64_t>(v.GetNumber("batch_seq"));
      a.value = v.GetNumber("value");
      a.threshold = v.GetNumber("threshold");
      a.wall_ms = v.GetNumber("wall_ms");
      report.anomalies.push_back(std::move(a));
    }
    // "anomalies" and unknown future types: skipped (additive growth).
  }
  if (!saw_header) {
    return util::Status::InvalidArgument("missing load_run header line");
  }
  return report;
}

util::Result<LoadReport> ReadLoadReportFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return util::Status::NotFound("cannot open load report '" + path + "'");
  }
  return ReadLoadReportJsonl(in);
}

}  // namespace dasc::sim
