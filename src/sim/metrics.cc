#include "sim/metrics.h"

#include "util/stats.h"
#include "util/timer.h"

namespace dasc::sim {

RunStats MeasureSimulation(const core::Instance& instance,
                           const SimulatorOptions& options,
                           core::Allocator& allocator) {
  Simulator simulator(instance, options);
  const SimulationResult result = simulator.Run(allocator);
  RunStats stats;
  stats.algorithm = std::string(allocator.name());
  stats.score = result.score;
  stats.millis = result.allocator_seconds * 1e3;
  stats.batches = result.batches;
  stats.nonempty_batches = result.nonempty_batches;
  stats.completed_tasks = result.completed_tasks;
  stats.wasted_dispatches = result.wasted_dispatches;
  stats.mean_assignment_latency = result.mean_assignment_latency;
  stats.last_completion_time = result.last_completion_time;
  stats.empty_batches = result.empty_batches;
  stats.total_tasks = instance.num_tasks();
  stats.audited_batches = result.audit.audited_batches;
  stats.audit_violations = result.audit.violations;
  stats.ledger_mismatches = result.audit.ledger_mismatches;
  stats.candidate_checks = result.audit.candidate_checks;
  stats.candidate_mismatches = result.audit.candidate_mismatches;
  stats.unserved_by_reason = result.unserved_by_reason;
  stats.ledger = result.ledger_entries;
  if (result.audit.audited_batches > 0) {
    stats.min_batch_gap = result.audit.min_gap;
    stats.mean_batch_gap = result.audit.MeanGap();
    stats.approx_ratio = result.audit.ApproxRatio();
  }
  if (!result.per_batch_allocator_ms.empty()) {
    util::Percentiles percentiles;
    util::RunningStats batch_ms;
    for (double ms : result.per_batch_allocator_ms) {
      percentiles.Add(ms);
      batch_ms.Add(ms);
    }
    stats.p50_batch_ms = percentiles.Median();
    stats.p95_batch_ms = percentiles.Quantile(0.95);
    stats.max_batch_ms = batch_ms.max();
  }
  return stats;
}

RunStats MeasureSingleBatch(const core::Instance& instance, double now,
                            const core::FeasibilityParams& params,
                            core::Allocator& allocator) {
  core::BatchProblem problem = core::BatchProblem::AllAt(instance, now);
  problem.params = params;
  util::WallTimer timer;
  const core::Assignment raw = allocator.Allocate(problem);
  RunStats stats;
  stats.algorithm = std::string(allocator.name());
  stats.millis = timer.ElapsedMillis();
  stats.score = core::ValidScore(problem, raw);
  stats.batches = 1;
  stats.total_tasks = instance.num_tasks();
  return stats;
}

}  // namespace dasc::sim
