#include "sim/watchdog.h"

#include "util/flight_recorder.h"
#include "util/logging.h"

namespace dasc::sim {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StallWatchdog::StallWatchdog(const WatchdogOptions& options,
                             util::MetricsRegistry* registry)
    : options_(options),
      registry_(registry != nullptr ? registry : &util::GlobalMetrics()),
      start_(std::chrono::steady_clock::now()) {
  DASC_CHECK_GT(options_.poll_interval_ms, 0);
  DASC_CHECK_GT(options_.heartbeat_timeout_ms, 0.0);
  DASC_CHECK_GT(options_.max_anomalies, 0);
}

StallWatchdog::~StallWatchdog() { Stop(); }

void StallWatchdog::Start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  stop_requested_.store(false, std::memory_order_release);
  thread_ = std::thread([this] {
    while (!stop_requested_.load(std::memory_order_acquire)) {
      CheckOnce();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.poll_interval_ms));
    }
  });
}

void StallWatchdog::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void StallWatchdog::Heartbeat(int64_t batch_seq) {
  last_heartbeat_seq_.store(batch_seq, std::memory_order_relaxed);
  last_heartbeat_ns_.store(NowNs(), std::memory_order_relaxed);
}

double StallWatchdog::WallMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void StallWatchdog::SetOnAnomaly(
    std::function<void(const WatchdogAnomaly&)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  on_anomaly_ = std::move(hook);
}

void StallWatchdog::RecordAnomaly(const std::string& kind, double value,
                                  double threshold) {
  // mu_ is held by CheckOnce().
  ++total_anomalies_;
  const WatchdogAnomaly anomaly{
      kind, last_heartbeat_seq_.load(std::memory_order_relaxed), value,
      threshold, WallMs()};
  if (anomalies_.size() < static_cast<size_t>(options_.max_anomalies)) {
    anomalies_.push_back(anomaly);
  }
  fired_.push_back(anomaly);  // hook fires after CheckOnce drops mu_
  registry_->GetCounter("watchdog_anomalies_total{kind=\"" + kind + "\"}")
      ->Increment();
  // The black box remembers the anomaly even if no dump follows: the next
  // dump (for any reason) shows what was breached and when.
  util::FlightRecorder::Global().Record(
      util::FlightEventKind::kAnomaly,
      util::FlightRecorder::Global().InternLabel(kind), anomaly.batch_seq);
  DASC_LOG(WARNING) << "watchdog anomaly kind=" << kind << " value=" << value
                    << " threshold=" << threshold << " batch="
                    << last_heartbeat_seq_.load(std::memory_order_relaxed);
}

int StallWatchdog::CheckOnce() {
  std::vector<WatchdogAnomaly> fired;
  std::function<void(const WatchdogAnomaly&)> hook;
  const int recorded = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t before = total_anomalies_;
    CheckOnceLocked();
    fired.swap(fired_);
    hook = on_anomaly_;
    return static_cast<int>(total_anomalies_ - before);
  }();
  // Fire the anomaly hook outside mu_: hooks dump the flight recorder and
  // poke the tracer, neither of which may run under the watchdog lock.
  if (hook) {
    for (const WatchdogAnomaly& anomaly : fired) hook(anomaly);
  }
  return recorded;
}

void StallWatchdog::CheckOnceLocked() {

  // Heartbeat age (armed after the first heartbeat). Edge-triggered per
  // heartbeat: once a stall fires for heartbeat N, it stays quiet until
  // heartbeat N+1 arrives and stalls in turn.
  const int64_t hb_ns = last_heartbeat_ns_.load(std::memory_order_relaxed);
  if (hb_ns >= 0) {
    const double age_ms = static_cast<double>(NowNs() - hb_ns) / 1e6;
    const int64_t hb_seq = last_heartbeat_seq_.load(std::memory_order_relaxed);
    if (age_ms > options_.heartbeat_timeout_ms) {
      if (!heartbeat_breached_ || heartbeat_breach_seq_ != hb_seq) {
        heartbeat_breached_ = true;
        heartbeat_breach_seq_ = hb_seq;
        RecordAnomaly("heartbeat_stall", age_ms, options_.heartbeat_timeout_ms);
      }
    } else {
      heartbeat_breached_ = false;
    }
  }

  // ThreadPool backlog.
  const double depth =
      registry_->GetGauge("threadpool_queue_depth")->value();
  if (depth > options_.queue_depth_limit) {
    if (!queue_breached_) {
      queue_breached_ = true;
      RecordAnomaly("queue_depth", depth, options_.queue_depth_limit);
    }
  } else {
    queue_breached_ = false;
  }

  // Audit optimality gap, meaningful only once the auditor has run.
  if (registry_->GetCounter("audit_batches_total")->value() > 0) {
    const double gap = registry_->GetGauge("audit_last_batch_gap")->value();
    if (gap < options_.min_audit_gap) {
      if (!gap_breached_) {
        gap_breached_ = true;
        RecordAnomaly("audit_gap", gap, options_.min_audit_gap);
      }
    } else {
      gap_breached_ = false;
    }
  }
}

std::vector<WatchdogAnomaly> StallWatchdog::anomalies() const {
  std::lock_guard<std::mutex> lock(mu_);
  return anomalies_;
}

int64_t StallWatchdog::anomaly_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_anomalies_;
}

}  // namespace dasc::sim
