// Online allocation auditor: an independent per-batch quality and
// correctness checker for the simulator (DESIGN.md §10).
//
// After the platform commits a batch assignment, the auditor
//   1. re-validates every committed pair against the four DA-SC validity
//      constraints (skill, deadline/reachability, exclusivity, dependency)
//      with its own checking code — a deliberate re-implementation, so a bug
//      in the allocator path and a bug in the checker must coincide before a
//      violation slips through — and
//   2. computes a cheap dependency-relaxed Hopcroft-Karp upper bound on the
//      batch's achievable valid-pair count, turning the paper's Sum(M)
//      quality claims (DASC_Game's 1/2-approximation in particular) into a
//      measured per-batch `gap = achieved / upper_bound` instead of a
//      theorem taken on faith.
//
// The bound: take the batch's candidate pairs (skill + deadline + distance
// feasible; dependency-free by construction), keep only "credible" open
// tasks — every dependency in the task's transitive closure is either
// already assigned or itself in-batch assignable — and optionally require
// that each task's unassigned closure could be matched simultaneously in
// isolation (the associative-set probe DASC_Greedy uses). Every filter is a
// necessary condition for a valid assignment of the task, so the maximum
// matching over the surviving bipartite graph can only overestimate what any
// allocator could have scored; see DESIGN.md §10 for the proof sketch.
//
// Cost: the candidate sets are shared with the allocator through the
// BatchProblem cache, so the auditor's own work is one Hopcroft-Karp run
// (O(E sqrt(V))) plus the closure probes — bounded at <= 5% of batch time by
// the bench_micro_substrates guard. Metrics emitted through the DASC_METRIC_*
// macros follow the PR 2 conventions (runtime kill switch, -DDASC_METRICS=OFF
// compile-out); the audit itself runs only when the simulator is configured
// with SimulatorOptions::audit.
#ifndef DASC_SIM_AUDIT_H_
#define DASC_SIM_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/assignment.h"
#include "core/batch.h"
#include "sim/ledger.h"

namespace dasc::sim {

struct AuditOptions {
  // Abort (DASC_CHECK) on the first constraint violation — a violation means
  // the platform committed an invalid pair, which must never reach
  // production scoring. Tests of the violation path disable this and read
  // BatchAudit::violations instead.
  bool fail_hard = true;

  // Tightens the upper bound: drop open tasks whose unassigned dependency
  // closure cannot be fully matched even in isolation (a per-task
  // Hopcroft-Karp feasibility probe on the candidate subgraph). Still an
  // upper bound — the probe is a necessary condition — just a sharper one on
  // dependency-heavy early batches.
  bool closure_feasibility_filter = true;
};

// One batch's audit verdict.
struct BatchAudit {
  int batch_seq = 0;
  int achieved = 0;     // committed pairs that passed re-validation
  int upper_bound = 0;  // dependency-relaxed HK bound on the batch
  double gap = 1.0;     // achieved / upper_bound; 1.0 when upper_bound == 0
  int violations = 0;   // constraint violations found (0 unless a bug)
  std::string first_violation;  // human-readable description, empty if none
};

// Accumulated audit state across a run. A batch is "audited" when its upper
// bound is positive; vacuous batches (nothing achievable) carry no quality
// signal and are excluded from the gap statistics.
struct AuditSummary {
  int audited_batches = 0;
  int violations = 0;
  // Unserved tasks whose ledger-recorded reason disagrees with the auditor's
  // independently re-derived stage (CrossCheckLedger); 0 unless a bug.
  int ledger_mismatches = 0;
  int64_t achieved_total = 0;
  int64_t upper_bound_total = 0;
  double min_gap = 1.0;  // over audited batches; 1.0 when none audited
  double gap_sum = 0.0;  // over audited batches
  // Incremental-candidate conformance (AuditCandidates): batches whose
  // published candidate view was compared against a disjoint from-scratch
  // rebuild, and how many diverged (0 unless a bug or injected staleness).
  int64_t candidate_checks = 0;
  int64_t candidate_mismatches = 0;
  std::string first_candidate_mismatch;

  double MeanGap() const {
    return audited_batches > 0 ? gap_sum / audited_batches : 0.0;
  }
  // Run-level empirical approximation ratio: total achieved over total
  // achievable (relaxed). The paper's 1/2 bound predicts >= 0.5 for
  // DASC_Game; 0.0 when nothing was audited.
  double ApproxRatio() const {
    return upper_bound_total > 0
               ? static_cast<double>(achieved_total) /
                     static_cast<double>(upper_bound_total)
               : 0.0;
  }
};

class BatchAuditor {
 public:
  explicit BatchAuditor(AuditOptions options = {}) : options_(options) {}

  // Audits one committed batch assignment (the valid pairs the simulator
  // scored; camped dependency-violating dispatches are not part of it).
  // Accumulates into summary() and emits audit_* metrics.
  BatchAudit AuditBatch(const core::BatchProblem& problem,
                        const core::Assignment& committed, int batch_seq);

  // Shadow re-derivation of the lifecycle ledger's per-batch failure stages
  // (DESIGN.md §11): for every open task not in `committed`, recomputes the
  // attribution stage with the auditor's own feasibility code (disjoint from
  // core::ClassifyServe) and folds it into a per-task shadow maximum. Call
  // on every batch the ledger observes, including empty-market ones.
  void ObserveLedgerBatch(const core::BatchProblem& problem,
                          const core::Assignment& committed);

  // Compares each unserved task's final ledger reason against the shadow
  // stages (camp-expired tasks are dependency_unmet by definition; tasks the
  // shadow never saw must be never_open). Logs each disagreement via
  // DASC_LOG(WARNING), accumulates summary().ledger_mismatches, and returns
  // the mismatch count for this call.
  int CrossCheckLedger(const std::vector<TaskLedgerEntry>& entries);

  // Differential conformance check for the incremental candidate view
  // (DESIGN.md §17): rebuilds the batch's candidates from scratch with the
  // stateless path and compares them bitwise against the caches published
  // into `problem`. Same disjoint-checker pattern as the validity re-check:
  // the view's own bookkeeping is never consulted. Accumulates
  // summary().candidate_checks / candidate_mismatches, emits
  // audit_candidate_* metrics, and returns true when equivalent. Never
  // fail-hard: staleness is a conformance signal, not a committed-pair bug.
  bool AuditCandidates(const core::BatchProblem& problem, int batch_seq);

  const AuditSummary& summary() const { return summary_; }

 private:
  AuditOptions options_;
  AuditSummary summary_;
  // Shadow attribution state, lazily sized on the first ObserveLedgerBatch.
  std::vector<UnservedReason> shadow_stage_;
  std::vector<uint8_t> shadow_seen_;
};

// The dependency-relaxed upper bound on `problem`'s achievable valid-pair
// count (exposed for tests; AuditBatch uses it internally).
//
// `skip_probes_at_or_below`: when the bound before closure-probe tightening
// is already <= this value, it is returned as-is — the probes only ever
// lower the bound, and AuditBatch has no use for a bound tighter than the
// committed size it compares against. This is the auditor's main cost lever:
// on well-served batches (gap 1.0) the per-task probes never run. -1 always
// probes.
int RelaxedBatchUpperBound(const core::BatchProblem& problem,
                           const AuditOptions& options = {},
                           int skip_probes_at_or_below = -1);

}  // namespace dasc::sim

#endif  // DASC_SIM_AUDIT_H_
