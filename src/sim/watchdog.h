// Stall watchdog: a background thread that notices when the batch loop
// stops making progress or degrades, while the process is still alive.
//
// The simulator calls Heartbeat() at every batch boundary; the watchdog
// polls three signals from its own thread:
//
//   kind="heartbeat_stall"  wall-clock age of the last heartbeat exceeds
//                           heartbeat_timeout_ms (armed after the first
//                           heartbeat; a hung allocator or deadlocked pool
//                           shows up here first)
//   kind="queue_depth"      threadpool_queue_depth gauge exceeds
//                           queue_depth_limit (the pool is falling behind)
//   kind="audit_gap"        audit_last_batch_gap gauge drops below
//                           min_audit_gap while the auditor is running
//                           (allocation quality collapsed mid-run)
//
// Each breach is edge-triggered: one anomaly per excursion, re-armed when
// the signal recovers (a stalled heartbeat re-arms on the next heartbeat).
// On breach the watchdog emits a structured DASC_LOG(WARNING), increments
// watchdog_anomalies_total{kind="..."} in the registry, and appends a
// WatchdogAnomaly to its bounded in-memory list, which the run-report
// writer serializes as the "anomalies" block (schema dasc-run-report/4).
//
// CheckOnce() exposes a single deterministic evaluation for tests (the
// injected-stall test calls it instead of racing the poll thread); the
// background thread is just CheckOnce() in a loop. See DESIGN.md §14.
#ifndef DASC_SIM_WATCHDOG_H_
#define DASC_SIM_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.h"

namespace dasc::sim {

struct WatchdogOptions {
  int poll_interval_ms = 100;
  // Max wall-clock age of the last heartbeat before a stall is declared.
  double heartbeat_timeout_ms = 5000.0;
  // Max tolerated threadpool_queue_depth.
  double queue_depth_limit = 4096.0;
  // Min tolerated audit_last_batch_gap (achieved / upper bound); only
  // checked once audit_batches_total > 0.
  double min_audit_gap = 0.25;
  // Retention bound on the recorded anomaly list (counters keep counting).
  int max_anomalies = 1024;
};

struct WatchdogAnomaly {
  std::string kind;       // "heartbeat_stall" | "queue_depth" | "audit_gap"
  int64_t batch_seq = 0;  // last heartbeat batch at detection time
  double value = 0.0;     // observed signal value
  double threshold = 0.0;
  double wall_ms = 0.0;  // since watchdog construction
};

class StallWatchdog {
 public:
  // `registry` defaults to GlobalMetrics() when nullptr.
  explicit StallWatchdog(const WatchdogOptions& options = {},
                         util::MetricsRegistry* registry = nullptr);
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  // Starts / stops the poll thread. Both idempotent; Stop() joins.
  void Start();
  void Stop();

  // Progress signal from the batch loop: lock-free (two relaxed stores).
  void Heartbeat(int64_t batch_seq);

  // One threshold evaluation; returns the number of anomalies recorded by
  // this call. Thread-safe (the poll thread and tests may both call it).
  int CheckOnce();

  // Anomaly hook, fired once per recorded anomaly with no watchdog lock
  // held (after CheckOnce's evaluation completes). Callers use it to dump
  // the flight recorder and pin the anomalous batch in the task tracer.
  // Every RecordAnomaly also appends a kAnomaly event to the global flight
  // recorder regardless of the hook. Set before Start().
  void SetOnAnomaly(std::function<void(const WatchdogAnomaly&)> hook);

  std::vector<WatchdogAnomaly> anomalies() const;
  int64_t anomaly_count() const;

 private:
  void CheckOnceLocked();  // requires mu_ held
  void RecordAnomaly(const std::string& kind, double value, double threshold);
  double WallMs() const;

  WatchdogOptions options_;
  util::MetricsRegistry* registry_;
  std::function<void(const WatchdogAnomaly&)> on_anomaly_;

  std::atomic<int64_t> last_heartbeat_seq_{-1};
  std::atomic<int64_t> last_heartbeat_ns_{-1};  // steady clock; -1 = unarmed
  const std::chrono::steady_clock::time_point start_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread thread_;

  mutable std::mutex mu_;  // guards anomalies_ + edge state
  std::vector<WatchdogAnomaly> anomalies_;
  std::vector<WatchdogAnomaly> fired_;  // staged for the post-lock hook
  int64_t total_anomalies_ = 0;
  bool heartbeat_breached_ = false;
  int64_t heartbeat_breach_seq_ = -2;  // heartbeat seq the breach fired on
  bool queue_breached_ = false;
  bool gap_breached_ = false;
};

}  // namespace dasc::sim

#endif  // DASC_SIM_WATCHDOG_H_
