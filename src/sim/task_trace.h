// Causal task traces: one record per task stitching its lifecycle across
// batches — arrival, batch admissions, camping, and the terminal decision —
// under a stable trace id, plus one record per batch attributing that
// batch's wall time to named phases (candidate build, matching, game
// rounds, injected delay, ...).
//
// Sampling (see DESIGN.md §16). Tracing every task at load-generator rates
// is unaffordable, but the tail is where the explanations live, and the
// tail is only known *after* a task is decided. The tracer therefore keeps
// a lightweight pending record for every submitted task (a few dozen bytes;
// bounded by the undecided-task count) and applies retention at decision
// time:
//
//   head      1-in-N by submission order (population baseline)
//   tail      the task's end-to-end latency ranks among the K slowest seen
//             so far in the current window of batches
//   flagged   some batch in [first admission, decision] was flagged by the
//             stall watchdog (FlagBatch)
//
// Retention is monotone: once OnDecision returns a nonzero trace id the
// trace is retained for the run (never evicted), so every exemplar trace id
// exported into metric sketches resolves to a complete trace. The tail rule
// uses "top K so far" rather than an exact end-of-window top K precisely to
// keep that promise — it over-retains early-window tasks slightly and is
// exact for the slowest task per window.
//
// Memory bounds: retained traces are capped (max_traces), batch records
// live in a ring (max_batches, evictions counted), flagged-batch marks are
// capped. All methods are thread-safe behind one mutex; callers are the
// batch loop (hot path: one small critical section per event), the
// watchdog (FlagBatch), and export threads (snapshots).
#ifndef DASC_SIM_TASK_TRACE_H_
#define DASC_SIM_TASK_TRACE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/types.h"

namespace dasc::sim {

// Deterministic trace id for a task: SplitMix64 of the task id, so trace
// ids are stable across runs of the same instance (byte-stable goldens) and
// never 0 (0 means "no exemplar" everywhere).
uint64_t TaskTraceId(core::TaskId task);

struct TaskTracerOptions {
  // Head sampling: retain every Nth submitted task. 0 disables.
  int head_sample_every = 64;
  // Tail sampling: retain tasks whose e2e latency ranks in the slowest K
  // seen so far within the current window. 0 disables.
  int tail_k = 8;
  // Tail window length, in batches.
  int window_batches = 64;
  // Bound on the batch-record ring (oldest evicted, eviction counted).
  int max_batches = 4096;
  // Cap on retained traces (head/tail/flagged stop retaining past this).
  int max_traces = 4096;
  // Cap on remembered flagged-batch marks.
  int max_flagged = 1024;
};

// One named phase's self time within a batch.
struct TraceBatchPhase {
  std::string label;
  double ms = 0.0;
};

// One batch's causal context: wall extent, market size, decisions, and the
// per-phase self-time breakdown (from util::TakeThreadPhaseNanos).
struct TraceBatchRecord {
  int64_t seq = -1;
  double begin_wall_s = 0.0;  // decision stamps share this instant
  double end_wall_s = 0.0;
  int64_t decisions = 0;
  int64_t open_tasks = 0;
  int64_t idle_workers = 0;
  bool flagged = false;
  std::vector<TraceBatchPhase> phases;
};

// One task's causal trace across batches.
struct TaskTraceRecord {
  core::TaskId task = core::kInvalidId;
  uint64_t trace_id = 0;
  double submit_wall_s = 0.0;
  int64_t first_admit_batch = -1;  // -1 = decided without ever being open
  int64_t last_admit_batch = -1;
  int64_t admitted_batches = 0;  // batches the task was open in
  int64_t camp_batch = -1;       // -1 = never camped under a worker
  int64_t decide_batch = -1;
  double decide_wall_s = 0.0;
  bool served = false;
  bool decided = false;
  bool head_sampled = false;
  // "head" | "tail" | "flagged" (first rule that retained it).
  std::string retained_reason;

  double e2e_ms() const { return (decide_wall_s - submit_wall_s) * 1e3; }
};

struct TaskTracerStats {
  int64_t traces_started = 0;   // OnSubmit calls
  int64_t traces_decided = 0;   // OnDecision calls
  int64_t traces_retained = 0;  // retained at decision time
  int64_t head_retained = 0;
  int64_t tail_retained = 0;
  int64_t flagged_retained = 0;
  int64_t batches = 0;          // OnBatchEnd calls
  int64_t flagged_batches = 0;  // distinct batches flagged
  int64_t dropped_batches = 0;  // batch records evicted from the ring
};

class TaskTracer {
 public:
  explicit TaskTracer(const TaskTracerOptions& options = {});

  TaskTracer(const TaskTracer&) = delete;
  TaskTracer& operator=(const TaskTracer&) = delete;

  // Task submitted (service) / arrived (simulator) at `wall_s`.
  void OnSubmit(core::TaskId task, double wall_s);

  // Batch `seq` begins processing; `wall_s` is the instant decision stamps
  // in this batch will carry.
  void OnBatchBegin(int64_t seq, double wall_s);

  // Task appeared as open in batch `seq`.
  void OnAdmit(core::TaskId task, int64_t seq);

  // A worker camped on the task in batch `seq` (binding dependency wait).
  void OnCamp(core::TaskId task, int64_t seq);

  // Terminal decision for the task. Returns its trace id iff the trace is
  // retained (head/tail/flagged), else 0 — callers thread the return value
  // straight into DASC_METRIC_SKETCH_OBSERVE_EX as the exemplar id, so a
  // nonzero exemplar always resolves to a retained trace.
  uint64_t OnDecision(core::TaskId task, int64_t seq, double wall_s,
                      bool served);

  // Batch `seq` finished at `end_wall_s`; `phase_ns` is the batch thread's
  // (flight label id, self ns) table for the batch (labels resolved via
  // util::FlightRecorder::LabelName).
  void OnBatchEnd(int64_t seq, double end_wall_s, int64_t decisions,
                  int64_t open_tasks, int64_t idle_workers,
                  const std::vector<std::pair<uint32_t, int64_t>>& phase_ns);

  // Watchdog hook: marks batch `seq` anomalous. Traces open at (or decided
  // in) a flagged batch are retained at decision time; the batch record's
  // flagged bit is set retroactively if still in the ring.
  void FlagBatch(int64_t seq);

  // Snapshots (traces in retention order, batches in seq order).
  std::vector<TaskTraceRecord> RetainedTraces() const;
  std::vector<TraceBatchRecord> BatchRecords() const;
  TaskTracerStats stats() const;

  // Finds a retained trace by id. False if the id was never retained.
  bool Lookup(uint64_t trace_id, TaskTraceRecord* out) const;

 private:
  // Requires mu_ held.
  bool BatchRangeFlaggedLocked(int64_t first, int64_t last) const;

  const TaskTracerOptions options_;

  mutable std::mutex mu_;
  std::map<core::TaskId, TaskTraceRecord> pending_;
  std::vector<TaskTraceRecord> retained_;
  std::map<uint64_t, size_t> retained_by_id_;
  std::vector<TraceBatchRecord> batches_;  // ring, slot = seq % capacity
  int64_t batch_count_ = 0;                // OnBatchEnd calls ever
  std::set<int64_t> flagged_;
  // Tail window state: the K largest e2e values seen so far this window
  // (min-heap in a sorted vector, smallest first).
  int64_t window_index_ = -1;
  std::vector<double> window_top_;
  TaskTracerStats stats_;
};

}  // namespace dasc::sim

#endif  // DASC_SIM_TASK_TRACE_H_
