// Bounded per-batch time series of every registered metric.
//
// The metrics registry is cumulative: counters only grow and histograms
// only fill. MetricsTimeSeries turns that into a navigable history by
// recording, at each batch boundary, a *delta* snapshot — counter and
// histogram increments since the previous sample, gauge levels as-is — into
// a bounded ring (oldest samples are evicted once `max_samples` is
// reached, with the eviction count reported, so long runs stay O(1) in
// memory). Each sample costs O(registered metrics): one registry snapshot,
// one subtraction pass, no allocation churn beyond the stored row.
//
// Columns are discovered lazily (metrics register on first use), so early
// samples can be shorter than the final column list; serialization pads
// them with zeros. Serialized into run reports (schema dasc-run-report/4)
// as one "timeseries" header line plus one "ts" line per sample — see
// DESIGN.md §14.
#ifndef DASC_SIM_METRICS_TIMESERIES_H_
#define DASC_SIM_METRICS_TIMESERIES_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace dasc::sim {

struct TimeSeriesSample {
  int64_t batch_seq = 0;
  double sim_now = 0.0;
  // Aligned to columns() prefixes; may be shorter than the final column
  // list when metrics registered after this sample was taken.
  std::vector<double> values;
};

class MetricsTimeSeries {
 public:
  explicit MetricsTimeSeries(int max_samples = 4096);

  // Records one delta snapshot of `registry`. Called by the simulator at
  // every batch boundary (empty batches included).
  void RecordBatch(int64_t batch_seq, double sim_now,
                   const util::MetricsRegistry& registry);

  // Column names, in registration-discovery order: counter names carry
  // their per-batch delta, gauge names their level, histogram names expand
  // to "<name>_count" and "<name>_sum" deltas.
  std::vector<std::string> Columns() const;
  std::vector<TimeSeriesSample> Samples() const;
  int64_t recorded() const;  // total RecordBatch calls
  int64_t dropped() const;   // samples evicted by the retention bound

  // The run-report block:
  //   {"type":"timeseries","columns":[...],"samples":N,"recorded":R,
  //    "dropped":D,"max_samples":M}
  //   {"type":"ts","batch":B,"now":T,"v":[...]}   (one per retained sample)
  void WriteJsonl(std::ostream& out) const;

 private:
  // Appends the delta of `name` (current cumulative `value` minus the last
  // seen cumulative) to `row`. Requires mu_.
  void AppendDelta(const std::string& name, double value,
                   std::vector<double>* row);
  // Column slot of `name`, registering it on first use. Requires mu_.
  size_t ColumnIndex(const std::string& name);

  const int max_samples_;

  mutable std::mutex mu_;
  std::vector<std::string> columns_;
  std::map<std::string, size_t> column_index_;
  std::map<std::string, double> last_cumulative_;
  std::deque<TimeSeriesSample> samples_;
  int64_t recorded_ = 0;
  int64_t dropped_ = 0;
};

}  // namespace dasc::sim

#endif  // DASC_SIM_METRICS_TIMESERIES_H_
