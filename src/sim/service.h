// Long-lived in-process allocation service.
//
// The Simulator replays a complete Instance file-in/file-out: every arrival
// is known up front and "time" is the model clock. Service is the same
// batch-by-batch platform promoted to a *service* shape: callers stream
// worker/task ingest events in while a background batch-loop thread runs
// allocations against the wall clock, and per-task decisions stream back
// out. This is the system-under-test that tools/dasc_loadgen drives
// open-loop (DESIGN.md §15).
//
// Time. The service maps wall time to model time linearly: model `now` at a
// batch is elapsed_wall_seconds * time_scale. Callers (the load generator)
// rewrite task start times so scheduled arrival offsets land at the right
// model instants; worker windows and per-task wait durations keep their
// model-time semantics, so feasibility and dependency structure are exactly
// the Simulator's.
//
// Ingest. SubmitWorker/SubmitTask enqueue catalog ids (the Instance is the
// universe; submission makes an entity live). Both are cheap and
// thread-safe; each submission nudges the batch loop, so batches are
// event-driven with a min_batch_gap_ms coalescing window, plus an idle
// flush every max_batch_gap_ms while undecided tasks remain (camp
// resolution and expiry need no ingest event to make progress).
//
// Decisions. Every submitted task gets exactly one DecisionRecord: served
// (committed to a worker, possibly after camping) or unserved (expired
// open, or expired under a camped worker). decide_wall_s - submit_wall_s is
// the task's end-to-end service latency; the service feeds it into the
// registry sketch `service_task_e2e_ms_window` so a scraper sees the same
// distribution the caller can compute from TakeDecisions().
//
// Steady state. The batch loop reuses its problem/scratch buffers across
// batches (vector capacity is the arena); per-batch allocation settles to
// zero once the market size peaks.
#ifndef DASC_SIM_SERVICE_H_
#define DASC_SIM_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/allocator.h"
#include "core/candidate_view.h"
#include "core/instance.h"
#include "util/status.h"

namespace dasc::sim {

class MetricsTimeSeries;
class StallWatchdog;
class TaskTracer;

struct ServiceOptions {
  core::FeasibilityParams params;
  // Model time units per wall-clock second (model_now = elapsed * scale).
  double time_scale = 1.0;
  // Time spent on site before a worker becomes available again (model
  // units), as SimulatorOptions::service_time.
  double service_time = 0.0;
  // Paper Definition 3 semantics: in-batch assignments satisfy dependency
  // constraints of same-batch dependents.
  bool in_batch_dependency_credit = true;
  // Event-driven trigger shape: a submission schedules a batch no sooner
  // than min_batch_gap_ms after the previous one (coalescing burst
  // arrivals); while undecided tasks remain, a batch runs at least every
  // max_batch_gap_ms even with no ingest (camps resolve, tasks expire).
  double min_batch_gap_ms = 1.0;
  double max_batch_gap_ms = 25.0;
  // Test hook: sleep this long inside every batch, before the allocator
  // runs. Seeds deterministic latency for the SLO-gate WILL_FAIL test;
  // never set in real runs.
  double inject_batch_delay_ms = 0.0;
  // Live-telemetry hooks (not owned), as SimulatorOptions: each batch
  // boundary advances the registry sketch windows, records one time-series
  // sample, and heartbeats the watchdog.
  MetricsTimeSeries* timeseries = nullptr;
  StallWatchdog* watchdog = nullptr;
  // Causal task tracer (not owned). When set, every submission starts a
  // pending trace, batch lifecycle events are recorded, and decisions carry
  // the retained trace id into the e2e sketch as an exemplar.
  TaskTracer* tracer = nullptr;
  // Maintain the per-batch candidate sets incrementally
  // (core::IncrementalCandidateView, DESIGN.md §17) instead of rebuilding
  // from scratch: identical published candidates, O(delta) probe work. The
  // service's delta feed is exactly its batch-loop state — submissions,
  // decisions, camp resolutions, busy-worker releases.
  bool incremental_candidates = false;
};

// One task's terminal outcome. worker == kInvalidId iff !served.
struct DecisionRecord {
  core::TaskId task = core::kInvalidId;
  core::WorkerId worker = core::kInvalidId;
  bool served = false;
  double submit_wall_s = 0.0;  // when SubmitTask accepted it
  double decide_wall_s = 0.0;  // batch instant of the terminal outcome
  int64_t batch_seq = 0;
};

struct ServiceStats {
  int64_t batches = 0;
  int64_t nonempty_batches = 0;
  int64_t submitted_workers = 0;
  int64_t submitted_tasks = 0;
  int64_t served = 0;
  int64_t expired = 0;
  int64_t wasted_dispatches = 0;  // dependency-violating camps dispatched
  double allocator_seconds = 0.0;
};

class Service {
 public:
  // `instance` and `allocator` must outlive the service; the allocator is
  // only ever called from the batch-loop thread.
  Service(const core::Instance& instance, core::Allocator& allocator,
          ServiceOptions options);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Starts the batch-loop thread and the wall clock. Idempotent.
  void Start();

  // Makes a catalog entity live. Thread-safe; returns InvalidArgument for
  // out-of-range ids, FailedPrecondition after Shutdown or for duplicate
  // submission.
  util::Status SubmitWorker(core::WorkerId id);
  util::Status SubmitTask(core::TaskId id);

  // Blocks until every submitted task has a decision (the batch loop keeps
  // running; more work may be submitted afterwards).
  void Drain();

  // Stops the batch loop (does not drain) and joins the thread. Idempotent;
  // the destructor calls it.
  void Shutdown();

  // Pops the decisions accumulated since the last call, in decision order.
  std::vector<DecisionRecord> TakeDecisions();

  ServiceStats stats() const;
  // Submitted-but-undecided tasks.
  int64_t pending_tasks() const;
  // Submissions not yet drained into the batch loop's live sets.
  int64_t ingest_queue_depth() const;
  // Wall seconds since Start() on the service's steady clock; submit/decide
  // stamps share this origin.
  double ElapsedWallSeconds() const;

 private:
  struct Ingest {
    bool is_task = false;
    int32_t id = 0;
    double wall_s = 0.0;
  };

  void Loop();
  void RunBatch(double now_wall);
  double NowWallLocked() const;

  const core::Instance& instance_;
  core::Allocator& allocator_;
  const ServiceOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // batch loop wakeups
  std::condition_variable drain_cv_;  // Drain() waiters
  std::deque<Ingest> ingest_;
  std::vector<DecisionRecord> decisions_;
  ServiceStats stats_;
  int64_t decided_tasks_ = 0;
  bool started_ = false;
  bool stop_ = false;
  std::chrono::steady_clock::time_point epoch_;

  // Batch-loop state: touched only by the loop thread after Start().
  struct WorkerRuntime {
    geo::Point location;
    double busy_until = 0.0;
    bool live = false;
    bool camped = false;
  };
  struct PendingCamp {
    core::WorkerId worker = core::kInvalidId;
    core::TaskId task = core::kInvalidId;
    double arrival = 0.0;  // model time the worker reaches the site
  };
  std::vector<WorkerRuntime> runtime_;
  std::vector<uint8_t> task_live_;
  std::vector<uint8_t> task_submitted_;  // guarded by mu_ (dup detection)
  std::vector<uint8_t> task_assigned_;
  std::vector<uint8_t> task_locked_;
  std::vector<uint8_t> task_decided_;
  std::vector<double> task_submit_wall_;
  std::vector<PendingCamp> camps_;
  // Reused across batches (the per-batch arena).
  core::BatchProblem problem_;
  // Non-null iff options_.incremental_candidates: stateful candidate view
  // updated by RunBatch on every non-empty batch.
  std::unique_ptr<core::IncrementalCandidateView> candidate_view_;
  std::vector<uint8_t> credited_;
  std::vector<DecisionRecord> batch_decisions_;
  int64_t batch_seq_ = 0;
  // Per-batch deltas RunBatch accumulates lock-free; Loop() folds them into
  // stats_ under mu_ after each batch.
  bool batch_nonempty_ = false;
  double batch_allocator_seconds_ = 0.0;
  int64_t batch_wasted_dispatches_ = 0;

  std::thread thread_;
};

}  // namespace dasc::sim

#endif  // DASC_SIM_SERVICE_H_
