// Instance-level workload analysis.
//
// Quantifies the structural properties that drive DA-SC outcomes — skill
// coverage, temporal co-presence, spatial reachability, dependency load —
// for the CLI `stats` command and the workload discussions in
// EXPERIMENTS.md.
#ifndef DASC_CORE_WORKLOAD_STATS_H_
#define DASC_CORE_WORKLOAD_STATS_H_

#include <string>

#include "core/feasibility.h"
#include "core/instance.h"

namespace dasc::core {

struct WorkloadStats {
  int num_workers = 0;
  int num_tasks = 0;
  int num_skills = 0;

  // Skill structure.
  double mean_worker_skills = 0.0;
  // Tasks with at least one skill-compatible worker anywhere.
  int skill_coverable_tasks = 0;

  // Temporal structure.
  double horizon_begin = 0.0;
  double horizon_end = 0.0;
  double mean_task_window = 0.0;
  double mean_worker_window = 0.0;

  // Offline feasibility (CanServeOffline over all pairs): tasks with at
  // least one feasible worker, and the mean candidate count.
  int feasible_tasks = 0;
  double mean_candidates_per_task = 0.0;

  // Dependency structure.
  double mean_closure = 0.0;
  int max_closure = 0;
  int dependency_free_tasks = 0;
  // Tasks whose every closure dependency *temporally precedes* them (the
  // dependency can expire no later than the dependent's own expiry).
  int temporally_ordered_tasks = 0;

  std::string ToString() const;
};

// Computes the full analysis. O(workers * tasks) for the feasibility block;
// intended for offline inspection, not hot paths.
WorkloadStats AnalyzeWorkload(const Instance& instance,
                              const FeasibilityParams& params = {});

}  // namespace dasc::core

#endif  // DASC_CORE_WORKLOAD_STATS_H_
