// Fundamental identifier types of the DA-SC model.
#ifndef DASC_CORE_TYPES_H_
#define DASC_CORE_TYPES_H_

#include <cstdint>

namespace dasc::core {

// Dense ids: the i-th worker/task of an Instance has id i.
using WorkerId = int32_t;
using TaskId = int32_t;
using SkillId = int32_t;

inline constexpr int32_t kInvalidId = -1;

}  // namespace dasc::core

#endif  // DASC_CORE_TYPES_H_
