// Batch problem: what an allocator sees in one batch process, plus candidate
// (feasible worker-task pair) construction shared by all algorithms.
#ifndef DASC_CORE_BATCH_H_
#define DASC_CORE_BATCH_H_

#include <memory>
#include <vector>

#include "core/feasibility.h"
#include "core/instance.h"

namespace dasc::core {

struct CandidateSets;
struct CandidateEdges;

// One batch of the dynamic platform (Section II-D: "the spatial crowdsourcing
// platforms assign workers to tasks batch-by-batch").
struct BatchProblem {
  const Instance* instance = nullptr;
  // Batch timestamp.
  double now = 0.0;
  // Idle, unexpired workers with their current positions / travel budgets.
  std::vector<WorkerState> workers;
  // Arrived, unexpired, not-yet-assigned tasks.
  std::vector<TaskId> open_tasks;
  // assigned_before[t] != 0 iff task t was assigned in an earlier batch;
  // such tasks satisfy dependency constraints of their dependents. Sized
  // instance->num_tasks().
  std::vector<uint8_t> assigned_before;
  // Paper semantics (Definition 3): a dependency is satisfied by being
  // assigned *within the same batch assignment*. Set false for the stricter
  // completion-based dependency mode, where only assigned_before counts.
  bool in_batch_dependency_credit = true;
  FeasibilityParams params;

  // Builds the single-batch ("offline") problem over a whole instance at
  // time `now` = 0 semantics where every worker/task is present: used by the
  // small-scale experiment and unit tests. Workers depart from their initial
  // state; feasibility uses CanServe at `now`.
  static BatchProblem AllAt(const Instance& instance, double now);

  bool TaskAssignedBefore(TaskId t) const {
    return assigned_before[static_cast<size_t>(t)] != 0;
  }

  // Lazily-built, memoized candidate sets shared by every allocator that
  // looks at this batch (G-G's greedy seed and its own game loop, the exact
  // solver's pruning, ...). Built on first call via BuildCandidates.
  //
  // Invalidation rules: the cache snapshots workers / open_tasks / params /
  // now at first call. Mutating any of those afterwards requires
  // InvalidateCandidates(); copies of the problem share the cache, so a
  // mutated copy must invalidate as well. Building the cache is not safe
  // concurrently from multiple threads on the *same* problem object; build
  // it once (or call Candidates() eagerly) before sharing across threads.
  const CandidateSets& Candidates() const;
  void InvalidateCandidates() {
    candidates_cache.reset();
    edges_cache.reset();
  }

  // Lazily-built CSR (struct-of-arrays) view of the candidate bipartite
  // graph with precomputed travel times, derived from Candidates(). Built
  // once per batch and shared by every matching backend, replacing the
  // historical per-solve cost-matrix materialization. Same invalidation and
  // thread-safety rules as Candidates().
  const CandidateEdges& Edges() const;

  // Fills Edges().row_unchanged: row t is marked unchanged iff its edge list
  // is identical to `prev`'s row t — same length, same workers (compared by
  // instance-global WorkerId via `prev_worker_ids`, since worker *indices*
  // shift between batches), and bit-equal travel times. Warm-start callers
  // (algo/greedy.cc) pass the previous batch's edges so per-set snapshot
  // rebuilds can be skipped for provably-unchanged inputs. Rows are compared
  // independently, so a prev from a different-shape problem simply marks
  // everything changed. Requires Edges() built (builds it if not).
  void MarkEdgesUnchangedSince(const CandidateEdges& prev,
                               const std::vector<WorkerId>& prev_worker_ids)
      const;

  // Internal cache storage for Candidates()/Edges(); treat as private.
  // edges_cache's pointee is non-const so MarkEdgesUnchangedSince can stamp
  // the epoch bits in place; everyone else sees it through const refs.
  mutable std::shared_ptr<const CandidateSets> candidates_cache;
  mutable std::shared_ptr<CandidateEdges> edges_cache;
};

// Feasible-pair candidate sets for one batch.
struct CandidateSets {
  // worker_tasks[i]: open tasks servable by problem.workers[i] (sorted).
  std::vector<std::vector<TaskId>> worker_tasks;
  // task_workers[t]: indices into problem.workers that can serve global task
  // t (sized instance->num_tasks(); empty for non-open tasks).
  std::vector<std::vector<int>> task_workers;
  int64_t num_pairs = 0;
};

// Row-compressed candidate edges for one batch: row = global task id,
// column = index into problem.workers, cost = travel time (ServeDistance /
// worker velocity — the exact arithmetic the matching step charges). Rows of
// non-open tasks are empty; columns within a row are in the deterministic
// task_workers order (ascending worker index).
struct CandidateEdges {
  // Edge range of global task t is [row_begin[t], row_begin[t + 1]).
  // Sized instance->num_tasks() + 1.
  std::vector<int64_t> row_begin;
  std::vector<int32_t> workers;     // per edge: index into problem.workers
  std::vector<double> travel_time;  // per edge: ServeDistance / velocity
  int num_workers = 0;              // column-space size (problem.workers)
  // Batch-epoch dirty bits, filled by MarkEdgesUnchangedSince (empty until
  // then): row_unchanged[t] != 0 iff task t's edge list is identical to the
  // previous batch's, letting warm-start consumers skip snapshot compares.
  // core::IncrementalCandidateView prefills them at publish time.
  std::vector<uint8_t> row_unchanged;
  // Monotone publish id stamped by core::IncrementalCandidateView (-1 for
  // scratch-built edges). When two batches carry consecutive publish_seq
  // values, any prefilled row_unchanged bits are relative to exactly the
  // previous publish, so warm-start consumers (algo/greedy.cc) can trust
  // them without re-running MarkEdgesUnchangedSince.
  int64_t publish_seq = -1;

  int64_t num_edges() const { return static_cast<int64_t>(workers.size()); }
};

// Computes the CSR edge layout from the (possibly cached) candidate sets.
// Deterministic for every thread count.
CandidateEdges BuildCandidateEdges(const BatchProblem& problem);

// Computes candidate sets, using a grid index over open-task locations for
// Euclidean workloads and a skill-inverted-index scan otherwise. Workers are
// partitioned across the global thread pool (util::ParallelFor); the output
// is bit-identical for every thread count, including the --threads=1 serial
// fallback.
CandidateSets BuildCandidates(const BatchProblem& problem);

// The most advanced ServeFailure any idle worker reaches against `task`
// (kNone when some worker is fully feasible this batch). The lifecycle
// ledger (sim/ledger.h) uses this to attribute candidate-less open tasks;
// requires a non-empty problem.workers.
ServeFailure ClassifyBatchTaskFailure(const BatchProblem& problem,
                                      TaskId task);

}  // namespace dasc::core

#endif  // DASC_CORE_BATCH_H_
