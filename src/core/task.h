// Dependency-aware spatial task (paper Definition 2).
#ifndef DASC_CORE_TASK_H_
#define DASC_CORE_TASK_H_

#include <vector>

#include "core/types.h"
#include "geo/point.h"

namespace dasc::core {

// t = <l_t, s_t, w_t, rs_t, D_t>: a task appears at `location` at
// `start_time`, must be *started* (worker on site) within `wait_time`,
// requires exactly one skill, and may only be conducted once every task in
// `dependencies` has been assigned.
struct Task {
  TaskId id = kInvalidId;
  geo::Point location;
  double start_time = 0.0;
  double wait_time = 0.0;
  SkillId required_skill = kInvalidId;
  // Direct dependencies; Instance::Create computes the transitive closure.
  std::vector<TaskId> dependencies;

  // Latest service start time (s_t + w_t).
  double Expiry() const { return start_time + wait_time; }
};

}  // namespace dasc::core

#endif  // DASC_CORE_TASK_H_
