// Worker-task assignments, validity filtering (the dependency-closed subset
// whose size is the paper's objective Sum(M)), and full constraint audits.
#ifndef DASC_CORE_ASSIGNMENT_H_
#define DASC_CORE_ASSIGNMENT_H_

#include <utility>
#include <vector>

#include "core/batch.h"
#include "util/status.h"

namespace dasc::core {

// An ordered set of (worker, task) pairs produced by an allocator for one
// batch. Baselines may emit pairs that violate the dependency constraint;
// ValidPairs() extracts the subset that counts.
class Assignment {
 public:
  Assignment() = default;

  void Add(WorkerId worker, TaskId task) { pairs_.emplace_back(worker, task); }

  const std::vector<std::pair<WorkerId, TaskId>>& pairs() const {
    return pairs_;
  }
  int size() const { return static_cast<int>(pairs_.size()); }
  bool empty() const { return pairs_.empty(); }

 private:
  std::vector<std::pair<WorkerId, TaskId>> pairs_;
};

// Returns the subset of `assignment` whose pairs satisfy the dependency
// constraint given the batch context: a pair (w, t) is kept iff every task
// in the transitive dependency closure of t is either assigned in an earlier
// batch or assigned (to some worker) within `assignment` itself. Exclusivity
// is also enforced (first pair wins for a duplicated worker or task).
Assignment ValidPairs(const BatchProblem& problem,
                      const Assignment& assignment);

// Like ValidPairs but also returns the exclusivity-deduplicated pairs whose
// dependency constraint is NOT met. These are the assignments the paper's
// baselines waste: the worker is dispatched but cannot conduct the task
// ("assigned workers need to wait until the dependencies ... are satisfied").
struct SplitAssignment {
  Assignment valid;
  Assignment invalid;
};
SplitAssignment SplitPairs(const BatchProblem& problem,
                           const Assignment& assignment);

// |ValidPairs(...)| — the batch contribution to the paper's Sum(M).
int ValidScore(const BatchProblem& problem, const Assignment& assignment);

// Audits all four DA-SC constraints (skill, deadline, exclusive, dependency)
// for `assignment` in the batch context. Used by tests and by the simulator
// in debug builds; returns the first violation found.
util::Status ValidateAssignment(const BatchProblem& problem,
                                const Assignment& assignment);

}  // namespace dasc::core

#endif  // DASC_CORE_ASSIGNMENT_H_
