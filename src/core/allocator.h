// Allocator interface: one batch in, one assignment out.
#ifndef DASC_CORE_ALLOCATOR_H_
#define DASC_CORE_ALLOCATOR_H_

#include <string_view>

#include "core/assignment.h"
#include "core/batch.h"

namespace dasc::core {

// A batch allocation policy. Implementations may be stateful (e.g., carry an
// RNG); the platform calls Allocate once per batch. The returned assignment
// may contain dependency-violating pairs (the paper's baselines do); the
// platform commits ValidPairs() of it, and scores |ValidPairs()|.
class Allocator {
 public:
  virtual ~Allocator() = default;

  // Short stable name used in experiment tables ("Greedy", "Game-5%", ...).
  virtual std::string_view name() const = 0;

  // Computes the batch assignment.
  virtual Assignment Allocate(const BatchProblem& problem) = 0;
};

}  // namespace dasc::core

#endif  // DASC_CORE_ALLOCATOR_H_
