#include "core/instance.h"

#include <algorithm>
#include <string>

#include "graph/dag.h"
#include "util/logging.h"

namespace dasc::core {

util::Result<Instance> Instance::Create(std::vector<Worker> workers,
                                        std::vector<Task> tasks,
                                        int num_skills) {
  if (num_skills <= 0) {
    return util::Status::InvalidArgument("num_skills must be positive");
  }
  for (size_t i = 0; i < workers.size(); ++i) {
    Worker& w = workers[i];
    if (w.id != static_cast<WorkerId>(i)) {
      return util::Status::InvalidArgument(
          "worker ids must be dense: worker at index " + std::to_string(i) +
          " has id " + std::to_string(w.id));
    }
    if (w.velocity <= 0.0) {
      return util::Status::InvalidArgument(
          "worker " + std::to_string(w.id) + " has non-positive velocity");
    }
    if (w.wait_time < 0.0 || w.max_distance < 0.0) {
      return util::Status::InvalidArgument(
          "worker " + std::to_string(w.id) +
          " has negative wait_time or max_distance");
    }
    if (w.skills.empty()) {
      return util::Status::InvalidArgument(
          "worker " + std::to_string(w.id) + " has an empty skill set");
    }
    std::sort(w.skills.begin(), w.skills.end());
    w.skills.erase(std::unique(w.skills.begin(), w.skills.end()),
                   w.skills.end());
    for (SkillId s : w.skills) {
      if (s < 0 || s >= num_skills) {
        return util::Status::OutOfRange(
            "worker " + std::to_string(w.id) + " has skill " +
            std::to_string(s) + " outside [0, " + std::to_string(num_skills) +
            ")");
      }
    }
  }

  graph::Dag dag(static_cast<graph::NodeId>(tasks.size()));
  for (size_t i = 0; i < tasks.size(); ++i) {
    Task& t = tasks[i];
    if (t.id != static_cast<TaskId>(i)) {
      return util::Status::InvalidArgument(
          "task ids must be dense: task at index " + std::to_string(i) +
          " has id " + std::to_string(t.id));
    }
    if (t.wait_time < 0.0) {
      return util::Status::InvalidArgument(
          "task " + std::to_string(t.id) + " has negative wait_time");
    }
    if (t.required_skill < 0 || t.required_skill >= num_skills) {
      return util::Status::OutOfRange(
          "task " + std::to_string(t.id) + " requires skill " +
          std::to_string(t.required_skill) + " outside [0, " +
          std::to_string(num_skills) + ")");
    }
    std::sort(t.dependencies.begin(), t.dependencies.end());
    t.dependencies.erase(
        std::unique(t.dependencies.begin(), t.dependencies.end()),
        t.dependencies.end());
    for (TaskId d : t.dependencies) {
      if (d < 0 || d >= static_cast<TaskId>(tasks.size())) {
        return util::Status::OutOfRange("task " + std::to_string(t.id) +
                                        " depends on unknown task " +
                                        std::to_string(d));
      }
      if (d == t.id) {
        return util::Status::InvalidArgument(
            "task " + std::to_string(t.id) + " depends on itself");
      }
      dag.AddDependency(t.id, d);
    }
  }

  auto closure = dag.TransitiveClosure();
  if (!closure.ok()) return closure.status();

  Instance instance;
  instance.workers_ = std::move(workers);
  instance.tasks_ = std::move(tasks);
  instance.num_skills_ = num_skills;
  instance.closure_ = std::move(*closure);
  instance.dependents_ = graph::Dag::Dependents(instance.closure_);
  for (const auto& deps : instance.closure_) {
    instance.total_closure_size_ += static_cast<int64_t>(deps.size());
  }
  return instance;
}

const Worker& Instance::worker(WorkerId id) const {
  DASC_CHECK_GE(id, 0);
  DASC_CHECK_LT(id, num_workers());
  return workers_[static_cast<size_t>(id)];
}

const Task& Instance::task(TaskId id) const {
  DASC_CHECK_GE(id, 0);
  DASC_CHECK_LT(id, num_tasks());
  return tasks_[static_cast<size_t>(id)];
}

const std::vector<TaskId>& Instance::DepClosure(TaskId t) const {
  DASC_CHECK_GE(t, 0);
  DASC_CHECK_LT(t, num_tasks());
  return closure_[static_cast<size_t>(t)];
}

const std::vector<TaskId>& Instance::Dependents(TaskId t) const {
  DASC_CHECK_GE(t, 0);
  DASC_CHECK_LT(t, num_tasks());
  return dependents_[static_cast<size_t>(t)];
}

}  // namespace dasc::core
