#include "core/feasibility.h"

#include <algorithm>

namespace dasc::core {

double PairDistance(const FeasibilityParams& params, const geo::Point& a,
                    const geo::Point& b) {
  if (params.distance_kind == geo::DistanceKind::kRoadNetwork) {
    DASC_CHECK(params.road_network != nullptr)
        << "kRoadNetwork requires FeasibilityParams::road_network";
    return params.road_network->Distance(a, b);
  }
  return geo::Distance(params.distance_kind, a, b);
}

double ServeDistance(const Instance& instance, const WorkerState& state,
                     TaskId task, const FeasibilityParams& params) {
  return PairDistance(params, state.location, instance.task(task).location);
}

bool CanServe(const Instance& instance, const WorkerState& state, TaskId task,
              double now, const FeasibilityParams& params) {
  const Worker& w = instance.worker(state.id);
  const Task& t = instance.task(task);
  if (!w.HasSkill(t.required_skill)) return false;
  if (now > w.Deadline()) return false;       // worker already left
  if (t.start_time > w.Deadline()) return false;  // task appears after worker leaves
  if (t.start_time > now) return false;       // task not on platform yet
  const double dist = ServeDistance(instance, state, task, params);
  if (dist > state.remaining_distance) return false;
  const double arrival = now + dist / w.velocity;
  return arrival <= t.Expiry();
}

bool CanServeOffline(const Instance& instance, WorkerId worker, TaskId task,
                     const FeasibilityParams& params) {
  const Worker& w = instance.worker(worker);
  const Task& t = instance.task(task);
  if (!w.HasSkill(t.required_skill)) return false;
  if (t.start_time > w.Deadline()) return false;
  // The worker cannot depart before both parties are on the platform.
  const double depart = std::max(w.start_time, t.start_time);
  if (depart > w.Deadline()) return false;
  const double dist = PairDistance(params, w.location, t.location);
  if (dist > w.max_distance) return false;
  return depart + dist / w.velocity <= t.Expiry();
}

}  // namespace dasc::core
