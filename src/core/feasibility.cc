#include "core/feasibility.h"

#include <algorithm>

namespace dasc::core {

double PairDistance(const FeasibilityParams& params, const geo::Point& a,
                    const geo::Point& b) {
  if (params.distance_kind == geo::DistanceKind::kRoadNetwork) {
    DASC_CHECK(params.road_network != nullptr)
        << "kRoadNetwork requires FeasibilityParams::road_network";
    return params.road_network->Distance(a, b);
  }
  return geo::Distance(params.distance_kind, a, b);
}

double ServeDistance(const Instance& instance, const WorkerState& state,
                     TaskId task, const FeasibilityParams& params) {
  return PairDistance(params, state.location, instance.task(task).location);
}

const char* ServeFailureName(ServeFailure failure) {
  switch (failure) {
    case ServeFailure::kNone:
      return "none";
    case ServeFailure::kSkillMismatch:
      return "skill_mismatch";
    case ServeFailure::kWorkerDeparted:
      return "worker_departed";
    case ServeFailure::kWindowMismatch:
      return "window_mismatch";
    case ServeFailure::kTaskNotArrived:
      return "task_not_arrived";
    case ServeFailure::kOutOfRange:
      return "out_of_range";
    case ServeFailure::kArrivalDeadline:
      return "arrival_deadline";
  }
  DASC_CHECK(false) << "unknown ServeFailure";
  return "?";
}

ServeFailure ClassifyServe(const Instance& instance, const WorkerState& state,
                           TaskId task, double now,
                           const FeasibilityParams& params) {
  const Worker& w = instance.worker(state.id);
  const Task& t = instance.task(task);
  if (!w.HasSkill(t.required_skill)) return ServeFailure::kSkillMismatch;
  if (now > w.Deadline()) return ServeFailure::kWorkerDeparted;
  if (t.start_time > w.Deadline()) return ServeFailure::kWindowMismatch;
  if (t.start_time > now) return ServeFailure::kTaskNotArrived;
  const double dist = ServeDistance(instance, state, task, params);
  if (dist > state.remaining_distance) return ServeFailure::kOutOfRange;
  const double arrival = now + dist / w.velocity;
  if (arrival > t.Expiry()) return ServeFailure::kArrivalDeadline;
  return ServeFailure::kNone;
}

bool CanServe(const Instance& instance, const WorkerState& state, TaskId task,
              double now, const FeasibilityParams& params) {
  return ClassifyServe(instance, state, task, now, params) ==
         ServeFailure::kNone;
}

ServeFailure ClassifyServeOffline(const Instance& instance, WorkerId worker,
                                  TaskId task,
                                  const FeasibilityParams& params) {
  const Worker& w = instance.worker(worker);
  const Task& t = instance.task(task);
  if (!w.HasSkill(t.required_skill)) return ServeFailure::kSkillMismatch;
  if (t.start_time > w.Deadline()) return ServeFailure::kWindowMismatch;
  // The worker cannot depart before both parties are on the platform.
  const double depart = std::max(w.start_time, t.start_time);
  if (depart > w.Deadline()) return ServeFailure::kWorkerDeparted;
  const double dist = PairDistance(params, w.location, t.location);
  if (dist > w.max_distance) return ServeFailure::kOutOfRange;
  if (depart + dist / w.velocity > t.Expiry()) {
    return ServeFailure::kArrivalDeadline;
  }
  return ServeFailure::kNone;
}

bool CanServeOffline(const Instance& instance, WorkerId worker, TaskId task,
                     const FeasibilityParams& params) {
  return ClassifyServeOffline(instance, worker, task, params) ==
         ServeFailure::kNone;
}

}  // namespace dasc::core
