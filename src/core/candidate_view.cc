#include "core/candidate_view.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/tracing.h"

namespace dasc::core {

namespace {

// Tasks per ParallelFor chunk in the publish fill — same grain as
// BuildCandidateEdges so the CSR materialization parallelizes identically.
constexpr int64_t kTaskGrain = 256;

// Pop margin for the deadline heap. Keys are Expiry - travel_time computed
// in floating point, so the true flip time of `now + tt > Expiry` can sit up
// to a few ulps away from the key; popping a hair early and re-checking with
// CanServe's exact arithmetic keeps the retraction decision bit-faithful to
// the from-scratch build. 1e-9 relative is ~1e7 ulps of slack — vastly
// conservative, and edges popped early merely get re-pushed.
double PopMargin(double now) { return 1e-9 * (1.0 + std::abs(now)); }

bool SameParams(const FeasibilityParams& a, const FeasibilityParams& b) {
  return a.distance_kind == b.distance_kind && a.road_network == b.road_network;
}

}  // namespace

IncrementalCandidateView::IncrementalCandidateView(const Instance& instance)
    : instance_(&instance) {
  const size_t n = static_cast<size_t>(instance.num_workers());
  const size_t m = static_cast<size_t>(instance.num_tasks());
  const size_t s = static_cast<size_t>(instance.num_skills());
  rows_.resize(m);
  worker_rows_.resize(n);
  worker_gen_.assign(n, 0);
  task_gen_.assign(m, 0);
  worker_state_.resize(n);
  worker_present_.assign(n, 0);
  seen_stamp_.assign(n, 0);
  open_.assign(m, 0);
  deferred_.assign(m, 0);
  skill_workers_.resize(s);
  skill_tasks_.resize(s);
  stale_worker_postings_.assign(s, 0);
  stale_task_postings_.assign(s, 0);
  touched_.assign(m, 0);
}

void IncrementalCandidateView::Touch(TaskId t) {
  if (touched_[static_cast<size_t>(t)] == 0) {
    touched_[static_cast<size_t>(t)] = 1;
    touched_list_.push_back(t);
  }
}

void IncrementalCandidateView::PushExpiry(TaskId t, WorkerId w, double tt) {
  expiry_.push({instance_->task(t).Expiry() - tt, t, w});
}

bool IncrementalCandidateView::PreconditionsHold(
    const BatchProblem& problem) const {
  if (problem.now < last_now_) return false;
  if (!SameParams(problem.params, params_)) return false;
  WorkerId prev_w = -1;
  for (const WorkerState& s : problem.workers) {
    if (s.id <= prev_w || s.id >= instance_->num_workers()) return false;
    prev_w = s.id;
  }
  TaskId prev_t = -1;
  for (TaskId t : problem.open_tasks) {
    if (t <= prev_t || t >= instance_->num_tasks()) return false;
    prev_t = t;
  }
  return true;
}

void IncrementalCandidateView::Update(BatchProblem& problem) {
  DASC_CHECK(problem.instance == instance_);
  util::WallTimer timer;
  DASC_TRACE_SPAN_N("candidate_apply_delta",
                    static_cast<int64_t>(problem.workers.size()));
  ++updates_total_;
  ++generation_;
  const int64_t adds_before = adds_total_;
  const int64_t retracts_before = retracts_total_;

  if (!synced_ || !PreconditionsHold(problem)) {
    FullRebuild(problem);
  } else {
    IncrementalUpdate(problem);
    if (CanReusePublish(problem)) {
      ReusePublish(problem);
    } else {
      Publish(problem);
    }
  }
  last_now_ = problem.now;

  DASC_METRIC_COUNTER_ADD("candidate_incremental_adds_total",
                          adds_total_ - adds_before);
  DASC_METRIC_COUNTER_ADD("candidate_incremental_retracts_total",
                          retracts_total_ - retracts_before);
  DASC_METRIC_HISTOGRAM_OBSERVE("candidate_apply_delta_ms",
                                timer.ElapsedMillis());
}

void IncrementalCandidateView::FullRebuild(BatchProblem& problem) {
  ++rebuilds_total_;
  DASC_METRIC_COUNTER_INC("candidate_incremental_rebuilds_total");
  params_ = problem.params;
  const double now = problem.now;
  const int m = instance_->num_tasks();

  for (auto& row : rows_) row.clear();
  for (auto& wr : worker_rows_) wr.clear();
  for (auto& p : skill_workers_) p.clear();
  for (auto& p : skill_tasks_) p.clear();
  std::fill(stale_worker_postings_.begin(), stale_worker_postings_.end(), 0);
  std::fill(stale_task_postings_.begin(), stale_task_postings_.end(), 0);
  std::fill(worker_present_.begin(), worker_present_.end(), 0);
  std::fill(open_.begin(), open_.end(), 0);
  std::fill(deferred_.begin(), deferred_.end(), 0);
  std::fill(touched_.begin(), touched_.end(), 0);
  deferred_list_.clear();
  touched_list_.clear();
  present_list_.clear();
  expiry_ = {};

  // The from-scratch path both defines the answer and publishes it; the view
  // resyncs its store from that result.
  problem.InvalidateCandidates();
  const CandidateEdges& edges = problem.Edges();  // builds Candidates() too

  for (const WorkerState& s : problem.workers) {
    const Worker& wk = instance_->worker(s.id);
    worker_state_[static_cast<size_t>(s.id)] = s;
    if (now > wk.Deadline()) continue;  // departed: never holds edges
    worker_present_[static_cast<size_t>(s.id)] = 1;
    present_list_.push_back(s.id);
    for (SkillId skill : wk.skills) {
      skill_workers_[static_cast<size_t>(skill)].push_back(
          {s.id, worker_gen_[static_cast<size_t>(s.id)]});
    }
  }
  std::sort(present_list_.begin(), present_list_.end());

  for (TaskId t : problem.open_tasks) {
    const Task& task = instance_->task(t);
    open_[static_cast<size_t>(t)] = 1;
    if (task.start_time > now) {
      deferred_[static_cast<size_t>(t)] = 1;
      deferred_list_.push_back(t);
    } else {
      skill_tasks_[static_cast<size_t>(task.required_skill)].push_back(
          {t, task_gen_[static_cast<size_t>(t)]});
    }
  }
  open_list_ = problem.open_tasks;

  for (TaskId t = 0; t < m; ++t) {
    const int64_t b = edges.row_begin[static_cast<size_t>(t)];
    const int64_t e = edges.row_begin[static_cast<size_t>(t) + 1];
    auto& row = rows_[static_cast<size_t>(t)];
    row.reserve(static_cast<size_t>(e - b));
    for (int64_t k = b; k < e; ++k) {
      const WorkerId w =
          problem.workers[static_cast<size_t>(edges.workers[static_cast<size_t>(k)])]
              .id;
      const double tt = edges.travel_time[static_cast<size_t>(k)];
      row.push_back({w, tt});
      worker_rows_[static_cast<size_t>(w)].push_back(t);
      PushExpiry(t, w, tt);
    }
    // Ascending-WorkerId row invariant; scratch columns are ascending worker
    // *index*, which only coincides when the problem's workers were sorted —
    // the rebuild path must not assume that.
    std::sort(row.begin(), row.end(),
              [](const Edge& a, const Edge& b) { return a.worker < b.worker; });
    adds_total_ += e - b;
  }

  problem.edges_cache->publish_seq = ++publish_seq_;
  RememberPublish(problem);
  synced_ = true;
}

void IncrementalCandidateView::RememberPublish(const BatchProblem& problem) {
  last_sets_ = problem.candidates_cache;
  last_edges_ = problem.edges_cache;
  last_worker_ids_.resize(problem.workers.size());
  for (size_t i = 0; i < problem.workers.size(); ++i) {
    last_worker_ids_[i] = problem.workers[i].id;
  }
}

bool IncrementalCandidateView::CanReusePublish(
    const BatchProblem& problem) const {
  if (last_sets_ == nullptr || last_edges_ == nullptr) return false;
  if (!touched_list_.empty()) return false;
  if (problem.workers.size() != last_worker_ids_.size()) return false;
  for (size_t i = 0; i < last_worker_ids_.size(); ++i) {
    if (problem.workers[i].id != last_worker_ids_[i]) return false;
  }
  return true;
}

void IncrementalCandidateView::ReusePublish(BatchProblem& problem) {
  ++publish_reuses_;
  DASC_METRIC_COUNTER_INC("candidate_publish_reuses_total");
  // Nothing Publish derives its output from changed (rows_ untouched, same
  // worker-id column space), so the retained objects are already
  // bit-identical to what it would rebuild. Re-stamp the epoch metadata —
  // every row trivially matches the previous publish — and republish.
  last_edges_->row_unchanged.assign(
      static_cast<size_t>(instance_->num_tasks()), 1);
  last_edges_->publish_seq = ++publish_seq_;
  problem.candidates_cache = last_sets_;
  problem.edges_cache = last_edges_;
}

void IncrementalCandidateView::RetractWorker(WorkerId w) {
  const size_t wi = static_cast<size_t>(w);
  ++worker_gen_[wi];
  for (SkillId s : instance_->worker(w).skills) {
    ++stale_worker_postings_[static_cast<size_t>(s)];
  }
  for (TaskId t : worker_rows_[wi]) {
    auto& row = rows_[static_cast<size_t>(t)];
    auto it = std::lower_bound(
        row.begin(), row.end(), w,
        [](const Edge& e, WorkerId id) { return e.worker < id; });
    if (it != row.end() && it->worker == w) {
      row.erase(it);
      Touch(t);
      ++retracts_total_;
    }
  }
  worker_rows_[wi].clear();
  worker_present_[wi] = 0;
}

void IncrementalCandidateView::RetractTask(TaskId t) {
  const size_t ti = static_cast<size_t>(t);
  const Task& task = instance_->task(t);
  open_[ti] = 0;
  if (deferred_[ti]) {
    deferred_[ti] = 0;  // never posted, never probed: nothing to retract
    return;
  }
  ++task_gen_[ti];
  ++stale_task_postings_[static_cast<size_t>(task.required_skill)];
  if (rows_[ti].empty()) return;
  if (inject_pending_) {
    inject_pending_ = false;  // fault injection: leave the stale row behind
    return;
  }
  retracts_total_ += static_cast<int64_t>(rows_[ti].size());
  rows_[ti].clear();
  Touch(t);
}

void IncrementalCandidateView::CompactWorkerPosting(SkillId s) {
  const size_t si = static_cast<size_t>(s);
  auto& post = skill_workers_[si];
  if (stale_worker_postings_[si] * 2 <= static_cast<int32_t>(post.size())) {
    return;
  }
  post.erase(std::remove_if(post.begin(), post.end(),
                            [&](const Posting& p) {
                              return p.gen !=
                                     worker_gen_[static_cast<size_t>(p.id)];
                            }),
             post.end());
  stale_worker_postings_[si] = 0;
}

void IncrementalCandidateView::CompactTaskPosting(SkillId s) {
  const size_t si = static_cast<size_t>(s);
  auto& post = skill_tasks_[si];
  if (stale_task_postings_[si] * 2 <= static_cast<int32_t>(post.size())) {
    return;
  }
  post.erase(std::remove_if(post.begin(), post.end(),
                            [&](const Posting& p) {
                              return p.gen !=
                                     task_gen_[static_cast<size_t>(p.id)];
                            }),
             post.end());
  stale_task_postings_[si] = 0;
}

void IncrementalCandidateView::ProbeWorker(WorkerId w, double now,
                                           const FeasibilityParams& params) {
  const size_t wi = static_cast<size_t>(w);
  const Worker& wk = instance_->worker(w);
  const WorkerState& state = worker_state_[wi];
  for (SkillId s : wk.skills) {
    CompactTaskPosting(s);
    for (const Posting& p : skill_tasks_[static_cast<size_t>(s)]) {
      if (p.gen != task_gen_[static_cast<size_t>(p.id)]) continue;
      const TaskId t = p.id;
      if (!CanServe(*instance_, state, t, now, params)) continue;
      const double dist = ServeDistance(*instance_, state, t, params);
      const double tt = dist / wk.velocity;
      auto& row = rows_[static_cast<size_t>(t)];
      auto it = std::lower_bound(
          row.begin(), row.end(), w,
          [](const Edge& e, WorkerId id) { return e.worker < id; });
      if (it != row.end() && it->worker == w) {
        it->travel_time = tt;  // reachable only after an injected skip
      } else {
        row.insert(it, {w, tt});
      }
      Touch(t);
      ++adds_total_;
      worker_rows_[wi].push_back(t);
      PushExpiry(t, w, tt);
    }
    skill_workers_[static_cast<size_t>(s)].push_back({w, worker_gen_[wi]});
  }
  worker_present_[wi] = 1;
}

void IncrementalCandidateView::ProbeTask(TaskId t, double now,
                                         const FeasibilityParams& params) {
  const size_t ti = static_cast<size_t>(t);
  const Task& task = instance_->task(t);
  auto& row = rows_[ti];
  DASC_CHECK(row.empty());
  const SkillId s = task.required_skill;
  CompactWorkerPosting(s);
  for (const Posting& p : skill_workers_[static_cast<size_t>(s)]) {
    if (p.gen != worker_gen_[static_cast<size_t>(p.id)]) continue;
    const WorkerId w = p.id;
    const WorkerState& state = worker_state_[static_cast<size_t>(w)];
    if (!CanServe(*instance_, state, t, now, params)) continue;
    const double dist = ServeDistance(*instance_, state, t, params);
    const double tt = dist / instance_->worker(w).velocity;
    row.push_back({w, tt});
    worker_rows_[static_cast<size_t>(w)].push_back(t);
    PushExpiry(t, w, tt);
    ++adds_total_;
  }
  std::sort(row.begin(), row.end(),
            [](const Edge& a, const Edge& b) { return a.worker < b.worker; });
  if (!row.empty()) Touch(t);
  skill_tasks_[static_cast<size_t>(s)].push_back({t, task_gen_[ti]});
}

void IncrementalCandidateView::ExpireEdges(double now) {
  const double cutoff = now + PopMargin(now);
  expiry_survivors_.clear();
  while (!expiry_.empty() && expiry_.top().key <= cutoff) {
    const ExpiryEntry e = expiry_.top();
    expiry_.pop();
    auto& row = rows_[static_cast<size_t>(e.task)];
    auto it = std::lower_bound(
        row.begin(), row.end(), e.worker,
        [](const Edge& edge, WorkerId id) { return edge.worker < id; });
    if (it == row.end() || it->worker != e.worker) continue;  // stale entry
    const double tt = it->travel_time;
    // Exact re-check, same arithmetic as CanServe's arrival-deadline clause.
    if (now + tt > instance_->task(e.task).Expiry()) {
      if (inject_pending_) {
        inject_pending_ = false;  // fault injection: keep the expired edge
        continue;
      }
      row.erase(it);
      Touch(e.task);
      ++retracts_total_;
    } else {
      expiry_survivors_.push_back(
          {instance_->task(e.task).Expiry() - tt, e.task, e.worker});
    }
  }
  for (const ExpiryEntry& e : expiry_survivors_) expiry_.push(e);
}

void IncrementalCandidateView::IncrementalUpdate(BatchProblem& problem) {
  const double now = problem.now;
  const uint32_t stamp = generation_;

  // Worker diff: retract departures and state changes, queue (re-)probes.
  probe_workers_.clear();
  for (const WorkerState& s : problem.workers) {
    const size_t wi = static_cast<size_t>(s.id);
    seen_stamp_[wi] = stamp;
    const bool active = !(now > instance_->worker(s.id).Deadline());
    if (worker_present_[wi] != 0) {
      const WorkerState& old = worker_state_[wi];
      if (!active) {
        RetractWorker(s.id);
      } else if (old.location.x != s.location.x ||
                 old.location.y != s.location.y ||
                 old.remaining_distance != s.remaining_distance) {
        RetractWorker(s.id);
        worker_state_[wi] = s;
        probe_workers_.push_back(s.id);
      }
    } else if (active) {
      worker_state_[wi] = s;
      probe_workers_.push_back(s.id);
    }
  }
  for (WorkerId w : present_list_) {
    if (seen_stamp_[static_cast<size_t>(w)] != stamp &&
        worker_present_[static_cast<size_t>(w)] != 0) {
      RetractWorker(w);  // left the market (busy, camped, or filtered out)
    }
  }

  // Task diff (both lists sorted ascending): closes retract, arrivals queue
  // probes, deferred tasks whose start time has passed get their probe now.
  probe_tasks_.clear();
  size_t io = 0;
  size_t in = 0;
  const std::vector<TaskId>& cur = problem.open_tasks;
  while (io < open_list_.size() || in < cur.size()) {
    if (in >= cur.size() ||
        (io < open_list_.size() && open_list_[io] < cur[in])) {
      RetractTask(open_list_[io]);
      ++io;
    } else if (io >= open_list_.size() || cur[in] < open_list_[io]) {
      const TaskId t = cur[in];
      open_[static_cast<size_t>(t)] = 1;
      if (instance_->task(t).start_time > now) {
        deferred_[static_cast<size_t>(t)] = 1;
        deferred_list_.push_back(t);
      } else {
        probe_tasks_.push_back(t);
      }
      ++in;
    } else {
      const TaskId t = cur[in];
      if (deferred_[static_cast<size_t>(t)] != 0 &&
          instance_->task(t).start_time <= now) {
        deferred_[static_cast<size_t>(t)] = 0;
        probe_tasks_.push_back(t);
      }
      ++io;
      ++in;
    }
  }
  open_list_ = cur;
  if (!deferred_list_.empty()) {
    deferred_list_.erase(
        std::remove_if(deferred_list_.begin(), deferred_list_.end(),
                       [&](TaskId t) {
                         return deferred_[static_cast<size_t>(t)] == 0;
                       }),
        deferred_list_.end());
  }

  // Deadline passage retracts edges whose arrival time slipped past expiry.
  ExpireEdges(now);

  // Probe order matters for no-duplicates: new/changed workers first (they
  // scan only tasks already posted), then new tasks (they scan the full
  // worker postings, including workers probed just above).
  for (WorkerId w : probe_workers_) ProbeWorker(w, now, problem.params);
  for (TaskId t : probe_tasks_) ProbeTask(t, now, problem.params);

  present_list_.clear();
  for (const WorkerState& s : problem.workers) {
    if (worker_present_[static_cast<size_t>(s.id)] != 0) {
      present_list_.push_back(s.id);
    }
  }
}

void IncrementalCandidateView::Publish(BatchProblem& problem) {
  const size_t m = static_cast<size_t>(instance_->num_tasks());
  const size_t nw = problem.workers.size();

  // Recycle a retired publish slot when nothing outside the ring still
  // references it (problem caches and warm-start consumers hold for a batch
  // or two); a still-aliased slot is replaced, never mutated. Every field is
  // overwritten below, so recycling only reuses allocation capacity.
  if (sets_ring_.size() != kPublishRing) {
    sets_ring_.resize(kPublishRing);
    edges_ring_.resize(kPublishRing);
  }
  std::shared_ptr<CandidateSets>& sets_slot = sets_ring_[ring_next_];
  std::shared_ptr<CandidateEdges>& edges_slot = edges_ring_[ring_next_];
  ring_next_ = (ring_next_ + 1) % kPublishRing;
  if (sets_slot == nullptr || sets_slot.use_count() > 1) {
    sets_slot = std::make_shared<CandidateSets>();
  }
  if (edges_slot == nullptr || edges_slot.use_count() > 1) {
    edges_slot = std::make_shared<CandidateEdges>();
  }
  const std::shared_ptr<CandidateSets>& sets = sets_slot;
  const std::shared_ptr<CandidateEdges>& edges = edges_slot;
  for (auto& row : sets->worker_tasks) row.clear();

  index_of_worker_.assign(static_cast<size_t>(instance_->num_workers()), -1);
  for (size_t i = 0; i < nw; ++i) {
    index_of_worker_[static_cast<size_t>(problem.workers[i].id)] =
        static_cast<int32_t>(i);
  }

  edges->num_workers = static_cast<int>(nw);
  edges->row_begin.assign(m + 1, 0);
  for (size_t t = 0; t < m; ++t) {
    edges->row_begin[t + 1] =
        edges->row_begin[t] + static_cast<int64_t>(rows_[t].size());
  }
  const int64_t total = edges->row_begin[m];
  edges->workers.resize(static_cast<size_t>(total));
  edges->travel_time.resize(static_cast<size_t>(total));
  sets->worker_tasks.resize(nw);
  sets->task_workers.resize(m);

  // Rows are disjoint, so the fill parallelizes bit-identically — the same
  // layout contract as BuildCandidateEdges. Rows are stored ascending by
  // WorkerId and problem.workers is ascending by id (precondition), so the
  // mapped columns come out in ascending worker-index order, exactly the
  // deterministic task_workers order of the scratch path.
  util::ParallelFor(
      0, static_cast<int64_t>(m), kTaskGrain, [&](int64_t lo, int64_t hi) {
        for (int64_t t = lo; t < hi; ++t) {
          const auto& row = rows_[static_cast<size_t>(t)];
          int64_t e = edges->row_begin[static_cast<size_t>(t)];
          auto& tw = sets->task_workers[static_cast<size_t>(t)];
          tw.clear();  // recycled slots keep stale rows until overwritten
          tw.reserve(row.size());
          for (const Edge& edge : row) {
            const int32_t col =
                index_of_worker_[static_cast<size_t>(edge.worker)];
            DASC_CHECK(col >= 0);
            edges->workers[static_cast<size_t>(e)] = col;
            edges->travel_time[static_cast<size_t>(e)] = edge.travel_time;
            tw.push_back(col);
            ++e;
          }
        }
      });

  // worker_tasks[i] ascending by TaskId: outer loop over tasks ascending.
  for (size_t t = 0; t < m; ++t) {
    for (const Edge& edge : rows_[t]) {
      sets->worker_tasks[static_cast<size_t>(
                             index_of_worker_[static_cast<size_t>(edge.worker)])]
          .push_back(static_cast<TaskId>(t));
    }
  }
  sets->num_pairs = total;

  // Dirty-bit prefill: a row untouched since the previous publish has the
  // same (WorkerId, travel_time) edge list, which is exactly the
  // MarkEdgesUnchangedSince contract — warm-start consumers can skip the
  // O(edges) compare when publish_seq is consecutive (algo/greedy.cc).
  edges->row_unchanged.assign(m, 1);
  for (TaskId t : touched_list_) {
    edges->row_unchanged[static_cast<size_t>(t)] = 0;
    touched_[static_cast<size_t>(t)] = 0;
  }
  touched_list_.clear();
  edges->publish_seq = ++publish_seq_;

  problem.candidates_cache = sets;
  problem.edges_cache = edges;
  RememberPublish(problem);
}

}  // namespace dasc::core
